(* fi-cli: command-line front-end to the fault-injection toolkit.

   Subcommands:
     run       execute a benchmark (or an .s file) and show its behaviour
     trace     golden run + def/use statistics
     campaign  full pruned FI campaign (memory or register space), CSV out
     matrix    a whole benchmark matrix through one shared worker pool
     sample    sampling-based estimation with confidence intervals
     compare   objective comparison of a baseline/hardened pair
     asm       assemble / disassemble / encode a .s file
     poisson   Table-I style Poisson fault-count probabilities
     list      available benchmarks and variants *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Benchmark lookup                                                   *)
(* ------------------------------------------------------------------ *)

let builders =
  [
    ("hi", fun () -> Hi.program ());
    ("hi+dft", fun () -> Hi.dft ());
    ("hi+dft'", fun () -> Hi.dft' ());
    ("hi+pad", fun () -> Hi.dft_memory ());
  ]
  @ List.map
      (fun (e : Suite.entry) ->
        ( Printf.sprintf "%s/%s" e.Suite.benchmark
            (Suite.variant_name e.Suite.variant),
          e.Suite.build ))
      Suite.all

let program_names = List.map fst builders

let load_program spec =
  match List.assoc_opt spec builders with
  | Some build -> Ok (build ())
  | None ->
      if Sys.file_exists spec then begin
        let ic = open_in spec in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Assembler.assemble ~name:(Filename.basename spec) text with
        | Ok image -> Ok image
        | Error e ->
            Error (Format.asprintf "%s: %a" spec Assembler.pp_error e)
      end
      else
        Error
          (Printf.sprintf
             "unknown program %S (try `fi-cli list`, or pass a .s file)" spec)

let program_arg =
  let doc =
    "Benchmark name (e.g. bin_sem2/baseline, sync2/sum+dmr, hi) or path to \
     an assembly file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "fi-cli: %s\n" msg;
      exit 2

(* ------------------------------------------------------------------ *)
(* Campaign-engine options (campaign / matrix / compare / sample)     *)
(* ------------------------------------------------------------------ *)

(* One cmdliner term shared by every engine-backed subcommand, so
   -j/--journal/--resume/--shard-size/--weighted-shards mean the same
   thing everywhere. *)
type engine_opts = {
  backend : Pool.backend;
  workers : string option;
  jobs : int;
  journal : string option;
  resume : bool;
  shard_size : int option;
  weighted : bool;
  shard_timeout : float option;
  max_retries : int;
  no_quarantine : bool;
  no_cache : bool;
  checkpoint_stride : int option;
  secret : string option;
  fault_model : Faultspace.model;
}

let fault_model_conv =
  let parse s =
    match Faultspace.of_tag s with Ok m -> Ok m | Error e -> Error (`Msg e)
  in
  let print ppf m = Format.pp_print_string ppf (Faultspace.tag m) in
  Arg.conv (parse, print)

let fault_model_arg =
  let doc =
    Printf.sprintf
      "Fault model of the campaign: %s.  Every model shards, journals,        resumes, caches and distributes identically; the model tag is part        of the campaign fingerprint, so journals and cache entries never        cross models."
      (String.concat "; "
         (List.map
            (fun (t, d) -> Printf.sprintf "$(b,%s) (%s)" t d)
            Faultspace.known))
  in
  Arg.(
    value
    & opt fault_model_conv Faultspace.Bitflip_mem
    & info [ "fault-model" ] ~docv:"MODEL" ~doc)

(* The legacy --registers flag is an alias for --fault-model reg; naming
   both (with different models) is a contradiction, not a preference. *)
let model_of ~registers (fault_model : Faultspace.model) =
  match (registers, fault_model) with
  | false, m -> m
  | true, (Faultspace.Bitflip_mem | Faultspace.Bitflip_reg) ->
      Faultspace.Bitflip_reg
  | true, m ->
      or_die
        (Error
           (Printf.sprintf "--registers conflicts with --fault-model %s"
              (Faultspace.tag m)))

let engine_opts_term =
  let backend =
    let doc =
      "Campaign execution backend: $(b,domains) (shared-memory OCaml \
       domains in this process), $(b,processes) (fork/exec'd worker \
       processes, one crash-isolated journal segment each — a killed \
       worker only costs its unfinished shards, which $(b,--resume) \
       replays) or $(b,sockets) (remote worker daemons — requires \
       $(b,--workers)).  Results are bit-identical in every case."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("domains", Pool.Domains);
               ("processes", Pool.Processes);
               ("sockets", Pool.Sockets []);
             ])
          Pool.Domains
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let workers =
    let doc =
      "Comma-separated $(b,HOST:PORT) addresses of remote worker daemons \
       (each started with $(b,fi-cli worker serve)).  Implies $(b,--backend \
       sockets).  Jobs and journal-segment records cross the connections; \
       the journal stays the only shared state, so $(b,--resume) heals a \
       campaign whose remote workers vanished."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "workers" ] ~docv:"HOST:PORT[,HOST:PORT...]" ~doc)
  in
  let jobs =
    let doc =
      "Workers (domains or processes, per $(b,--backend)) for the \
       campaign engine; 0 means all cores \
       ($(b,Domain.recommended_domain_count)).  With $(b,--workers), \
       bounds $(i,per-remote-host) concurrency instead, and 0 lets each \
       daemon decide (its advertised capacity).  Results are \
       bit-identical for every value."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let journal =
    let doc =
      "Write an append-only, fsync'd campaign journal to $(docv) (one \
       CRC-guarded record per completed shard), enabling $(b,--resume) \
       after a crash or kill.  Without this flag the engine journals to \
       a fingerprint-derived path under $(b,_artifacts/) and indexes it \
       in $(b,_artifacts/journals.idx)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume =
    let doc =
      "Recover already-completed shards from the journal instead of \
       re-conducting them.  The journal is found at $(b,--journal) when \
       given, otherwise by campaign fingerprint in the journal catalogue \
       ($(b,_artifacts/journals.idx))."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let shard_size =
    let doc =
      "Experiment classes per shard (default: about 1/128th of the \
       campaign).  Part of the campaign fingerprint: a journal's writer \
       and resumer must agree on it."
    in
    Arg.(value & opt (some int) None & info [ "shard-size" ] ~docv:"N" ~doc)
  in
  let weighted =
    let doc =
      "Size shards by estimated conducted cycles instead of class count \
       (balances wall-clock across workers when data lifetimes are \
       skewed).  Part of the campaign fingerprint."
    in
    Arg.(value & flag & info [ "weighted-shards" ] ~doc)
  in
  let shard_timeout =
    let doc =
      "Supervision deadline in seconds ($(b,--backend processes)): a \
       worker that completes no shard for $(docv) is declared hung (or \
       stalled, if it still heartbeats), SIGKILLed, and its shards \
       retried.  Default: derived from the observed shard rate (8× the \
       mean per-worker shard time)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "shard-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let max_retries =
    let doc =
      "Retry budget per shard: how many times a shard whose worker died \
       (crash, hang, stall) is re-dispatched to a fresh worker, with \
       exponential backoff, before it is quarantined (or, with \
       $(b,--no-quarantine), fails the campaign).  0 disables automatic \
       retry — recovery is then a manual $(b,--resume)."
    in
    Arg.(value & opt int 2 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let no_quarantine =
    let doc =
      "Fail the campaign ($(b,Worker_failed), nonzero exit) when a shard \
       exhausts its retry budget, instead of quarantining the shard and \
       completing the campaign without it."
    in
    Arg.(value & flag & info [ "no-quarantine" ] ~doc)
  in
  let no_cache =
    let doc =
      "Skip the content-addressed result cache \
       ($(b,_artifacts/results.idx)): always conduct every shard, and \
       do not publish this run's journals for future reuse.  Without \
       this flag a cell whose (program image × fault space × policy) \
       key is already cached replays the finished journal — \
       bit-identical results, zero shard executions."
    in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let checkpoint_stride =
    let doc =
      "Checkpoint ladder stride in cycles for the snapshot-accelerated \
       injection hot path: the golden execution is checkpointed every \
       $(docv) cycles and each experiment starts from the nearest \
       checkpoint at or below its injection cycle (and stops as soon as \
       it provably re-converges with the golden run).  0 disables the \
       ladder (restart-from-reset reference semantics).  A pure \
       performance knob: results are bit-identical at every stride, so \
       it is not part of the campaign fingerprint and does not affect \
       $(b,--resume) or the result cache."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-stride" ] ~docv:"CYCLES" ~doc)
  in
  let secret =
    let doc =
      "Shared-secret file for fleet authentication: every handshake \
       with a remote worker (or campaign service) carries an HMAC tag \
       derived from $(docv)'s contents, and peers without the same \
       secret are refused.  Both ends must pass $(b,--secret)."
    in
    Arg.(value & opt (some string) None & info [ "secret" ] ~docv:"FILE" ~doc)
  in
  Term.(
    const (fun backend workers jobs journal resume shard_size weighted
               shard_timeout max_retries no_quarantine no_cache
               checkpoint_stride secret fault_model ->
        {
          backend;
          workers;
          jobs;
          journal;
          resume;
          shard_size;
          weighted;
          shard_timeout;
          max_retries;
          no_quarantine;
          no_cache;
          checkpoint_stride;
          secret;
          fault_model;
        })
    $ backend $ workers $ jobs $ journal $ resume $ shard_size $ weighted
    $ shard_timeout $ max_retries $ no_quarantine $ no_cache
    $ checkpoint_stride $ secret $ fault_model_arg)

let policy_of opts =
  Spec.make_policy ?shard_size:opts.shard_size ~weighted:opts.weighted
    ?journal:opts.journal ~resume:opts.resume ~catalogue:Catalog.default_dir
    ?shard_timeout:opts.shard_timeout ~max_retries:opts.max_retries
    ~quarantine:(not opts.no_quarantine)
    ?cache:(if opts.no_cache then None else Some Catalog.default_dir)
    ?checkpoint_stride:opts.checkpoint_stride ()

let secret_of opts =
  match opts.secret with
  | None -> None
  | Some file -> Some (or_die (Hmac.load_secret file))

(* --workers names hosts, --backend names a strategy; together they
   resolve to one backend value here, so every engine subcommand agrees
   on what the pair means: --workers implies sockets, sockets without
   --workers is an error (there is nothing to connect to). *)
let backend_of opts =
  match (opts.backend, opts.workers) with
  | (Pool.Domains | Pool.Processes), None -> opts.backend
  | _, Some hosts -> (
      match Addr.parse_list hosts with
      | Ok addrs -> Pool.Sockets (List.map Addr.to_string addrs)
      | Error msg -> or_die (Error msg))
  | Pool.Sockets _, None ->
      or_die
        (Error
           "--backend sockets needs --workers HOST:PORT[,HOST:PORT...] (start \
            daemons with `fi-cli worker serve`)")

(* Jobs resolution lives in Pool.resolve_jobs — the engine uses the very
   same function, so `-j 0` can never mean different things to different
   subcommands (or to the backends). *)
let resolve_jobs ?backend jobs =
  match Pool.resolve_jobs ?backend ~jobs () with
  | n -> n
  | exception Invalid_argument _ ->
      or_die (Error (Printf.sprintf "invalid job count %d" jobs))

let engine_progress ~quiet =
  if quiet then fun _ -> ()
  else
    Progress.throttled (fun snap ->
        Printf.eprintf "\r%s%!" (Progress.render snap);
        if Progress.finished snap then prerr_newline ())

(* Supervision events (worker killed, shard retried/quarantined) go to
   stderr as they happen; a final quarantine report follows the run, so
   a degraded campaign is impossible to mistake for a complete one. *)
let report_quarantine results =
  let qs =
    List.concat_map (fun (r : Engine.result) -> r.Engine.quarantined) results
  in
  if qs <> [] then begin
    Printf.eprintf
      "fi-cli: WARNING: %d shard%s quarantined — the classes below were \
       never conducted and hold No_effect placeholders:\n"
      (List.length qs)
      (if List.length qs > 1 then "s" else "");
    List.iter
      (fun (q : Engine.quarantined) ->
        Printf.eprintf
          "  %s: shard %d (%d classes) after %d attempt%s: %s\n"
          q.Engine.q_cell q.Engine.q_shard q.Engine.q_classes
          q.Engine.q_attempts
          (if q.Engine.q_attempts > 1 then "s" else "")
          q.Engine.q_cause)
      qs;
    Printf.eprintf
      "fi-cli: re-run with --resume to give quarantined shards another \
       chance.\n%!"
  end

(* An existing journal written under a different fault model is a user
   error, not a fresh campaign: refuse loudly up front instead of
   truncating the file (without --resume) or surfacing a bare
   fingerprint mismatch (with --resume). *)
let check_journal_models specs =
  List.iter
    (fun (s : Spec.t) ->
      match s.Spec.policy.Spec.durability.Spec.journal with
      | Some path when Sys.file_exists path -> (
          let want = Faultspace.tag s.Spec.model in
          match Runcell.journal_model_tag path with
          | Some have when have <> want ->
              or_die
                (Error
                   (Printf.sprintf
                      "journal %s was written under fault model %s, but this \
                       run requests --fault-model %s for %s; refusing to %s \
                       it — pass a different --journal or delete the file"
                      path have want (Spec.label s)
                      (if s.Spec.policy.Spec.durability.Spec.resume then
                         "resume"
                       else "overwrite")))
          | Some _ | None -> ())
      | Some _ | None -> ())
    specs

let engine_matrix ~opts ~quiet specs =
  check_journal_models specs;
  let backend = backend_of opts in
  match
    Engine.run_matrix_results ~backend
      ~jobs:(resolve_jobs ~backend opts.jobs)
      ~observe:(engine_progress ~quiet)
      ~on_event:(fun msg -> Printf.eprintf "\n[supervision] %s\n%!" msg)
      ?secret:(secret_of opts) specs
  with
  | results ->
      report_quarantine results;
      (match List.filter (fun (r : Engine.result) -> r.Engine.cached) results with
      | [] -> ()
      | hits when not quiet ->
          Printf.eprintf "fi-cli: %d of %d cell%s served from the result cache\n%!"
            (List.length hits) (List.length results)
            (if List.length results > 1 then "s" else "")
      | _ -> ());
      List.map (fun (r : Engine.result) -> r.Engine.scan) results
  | exception Engine.Journal_mismatch msg -> or_die (Error msg)
  | exception Engine.Worker_failed msg -> or_die (Error msg)

let engine_spec ~opts ~quiet spec =
  match engine_matrix ~opts ~quiet [ spec ] with
  | [ scan ] -> scan
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* run                                                                *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let listing =
    Arg.(value & flag & info [ "listing" ] ~doc:"Print the disassembly first.")
  in
  let limit =
    Arg.(
      value & opt int 50_000_000
      & info [ "limit" ] ~docv:"CYCLES" ~doc:"Watchdog cycle limit.")
  in
  let action spec listing limit =
    let image = or_die (load_program spec) in
    if listing then Format.printf "%a@." Program.pp_listing image;
    let m = Machine.create image in
    let reason = Machine.run m ~limit in
    Format.printf "stop     : %a@." Machine.pp_stop_reason reason;
    Format.printf "cycles   : %d@." (Machine.cycle m);
    Format.printf "output   : %S@." (Machine.serial_output m);
    List.iter
      (fun (cycle, code) ->
        Format.printf "event    : cycle %d, %a@." cycle Event_codes.pp code)
      (Machine.detection_events m)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program and report its behaviour.")
    Term.(const action $ program_arg $ listing $ limit)

(* ------------------------------------------------------------------ *)
(* trace                                                              *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let map_flag =
    Arg.(
      value & flag
      & info [ "map" ]
          ~doc:"Render the fault-space map (tiny programs only).")
  in
  let action spec map_flag =
    let image = or_die (load_program spec) in
    let golden = Golden.run image in
    Format.printf "%a@." Golden.pp_summary golden;
    let d = golden.Golden.defuse in
    Format.printf "accesses           : %d@." (Trace.length golden.Golden.trace);
    Format.printf "def/use classes    : %d@." (Array.length (Defuse.classes d));
    Format.printf "experiment classes : %d (x8 bits = %d experiments)@."
      (Array.length (Defuse.experiment_classes d))
      (Defuse.experiment_count d);
    Format.printf "a-priori benign    : %d bit-cycles@."
      (Defuse.known_benign_weight d);
    if map_flag then print_string (Faultmap.access_map_golden golden)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Golden run and def/use pruning statistics.")
    Term.(const action $ program_arg $ map_flag)

(* ------------------------------------------------------------------ *)
(* campaign                                                           *)
(* ------------------------------------------------------------------ *)

(* Suite builder specs are "bench/variant"; carrying the real hardening
   variant into the spec keeps register/burst/skip cells honestly
   labelled in reports (hardening does not rename the program, so the
   image name alone cannot distinguish baseline from SUM+DMR). *)
let variant_of_program_spec spec =
  if List.mem_assoc spec builders then
    match String.index_opt spec '/' with
    | Some i -> String.sub spec (i + 1) (String.length spec - i - 1)
    | None -> "baseline"
  else "baseline"

let campaign_cmd =
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Save results as CSV.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress.") in
  let registers =
    Arg.(
      value & flag
      & info [ "registers" ]
          ~doc:
            "Campaign over the register fault space (Section VI-B) instead \
             of main memory — an alias for $(b,--fault-model reg).")
  in
  let breakdown =
    Arg.(
      value & flag
      & info [ "breakdown" ]
          ~doc:"Also attribute the failure mass to data regions.")
  in
  let action spec out quiet registers breakdown opts =
    let image = or_die (load_program spec) in
    let model = model_of ~registers opts.fault_model in
    let policy = policy_of opts in
    let variant = variant_of_program_spec spec in
    let campaign_spec =
      match model with
      | Faultspace.Bitflip_reg ->
          Spec.of_regspace ~variant ~policy (Regspace.analyze image)
      | m -> Spec.of_golden ~variant ~policy ~model:m (Golden.run image)
    in
    (match campaign_spec.Spec.source with
    | Spec.Analysed_memory g | Spec.Analysed_registers { Regspace.golden = g; _ }
      ->
        Format.printf "%a@." Golden.pp_summary g
    | Spec.Build _ -> ());
    (match model with
    | Faultspace.Bitflip_mem -> ()
    | m -> Format.printf "fault model: %s@." (Faultspace.describe m));
    let scan = engine_spec ~opts ~quiet campaign_spec in
    (match model with
    | Faultspace.Bitflip_reg ->
        Format.printf "register fault space: w = %d bit-cycles@."
          (Scan.fault_space_size scan)
    | _ -> ());
    let t =
      Table.create
        ~columns:
          [ ("metric", Table.Left); ("weighted/full", Table.Right);
            ("unweighted (pitfall 1)", Table.Right) ]
    in
    Table.row t
      [ "fault coverage";
        Printf.sprintf "%.3f%%" (100.0 *. Metrics.coverage scan);
        Printf.sprintf "%.3f%%"
          (100.0 *. Metrics.coverage ~policy:Accounting.pitfall1 scan) ];
    Table.row t
      [ "failure count";
        string_of_int (Metrics.failure_count scan);
        string_of_int (Metrics.failure_count ~policy:Accounting.pitfall1 scan) ];
    Table.print t;
    Format.printf "@.P(Failure) per run at %.3f FIT/Mbit: %.3e  (MWTF %.3e runs)@."
      (Fit_rate.to_float Fit_rate.mean_published)
      (Metrics.failure_probability scan)
      (Mwtf.runs_to_failure scan);
    Format.printf "outcome histogram (weighted, full space):@.";
    List.iter
      (fun (o, n) -> Format.printf "  %-20s %12d@." (Outcome.to_string o) n)
      (Metrics.outcome_histogram scan);
    (* The region breakdown attributes failure mass to RAM data regions,
       which only makes sense for models whose rows are real memory
       bytes. *)
    (match model with
    | (Faultspace.Bitflip_mem | Faultspace.Burst _) when breakdown ->
        print_string (Figures.breakdown scan image)
    | _ -> ());
    match out with
    | Some path ->
        Csv_io.save path scan;
        Format.printf "results written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a full pruned fault-injection campaign.")
    Term.(
      const action $ program_arg $ out $ quiet $ registers $ breakdown
      $ engine_opts_term)

(* ------------------------------------------------------------------ *)
(* matrix                                                             *)
(* ------------------------------------------------------------------ *)

let matrix_cmd =
  let pairs =
    Arg.(
      value & flag
      & info [ "pairs" ]
          ~doc:
            "Only the paper's Figure 2 pairs (bin_sem2 and sync2, baseline \
             vs SUM+DMR) instead of the whole suite.")
  in
  let registers =
    Arg.(
      value & flag
      & info [ "registers" ]
          ~doc:"Campaign every cell over the register fault space \
                (Section VI-B) instead of main memory — an alias for \
                $(b,--fault-model reg).")
  in
  let outdir =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output-dir" ] ~docv:"DIR"
          ~doc:"Save one CSV per cell into $(docv).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress.") in
  let sanitize label =
    String.map (function '/' | '@' -> '-' | c -> c) label
  in
  let action pairs registers outdir quiet opts =
    let model = model_of ~registers opts.fault_model in
    let policy = policy_of opts in
    let specs =
      (if pairs then Suite.paper_specs ~model ~policy ()
       else Suite.spec_matrix ~model ~policy ())
      |> List.map (fun s ->
             (* An explicit --journal is a stem: one journal per cell. *)
             match opts.journal with
             | None -> s
             | Some stem ->
                 Spec.with_policy
                   { policy with
                     Spec.durability =
                       { policy.Spec.durability with
                         Spec.journal =
                           Some (stem ^ "." ^ sanitize (Spec.label s));
                       };
                   }
                   s)
    in
    (if not quiet then
       match resolve_jobs ~backend:(backend_of opts) opts.jobs with
       | 0 ->
           Printf.eprintf
             "matrix: %d cells on remote workers (daemon-decided concurrency)\n\
              %!"
             (List.length specs)
       | n ->
           Printf.eprintf "matrix: %d cells on %d worker(s)\n%!"
             (List.length specs) n);
    let scans = engine_matrix ~opts ~quiet specs in
    let t =
      Table.create
        ~columns:
          [ ("cell", Table.Left); ("experiments", Table.Right);
            ("coverage", Table.Right); ("failures", Table.Right);
            ("P(Failure)", Table.Right) ]
    in
    List.iter2
      (fun spec scan ->
        Table.row t
          [ Spec.label spec;
            string_of_int (Array.length scan.Scan.experiments);
            Printf.sprintf "%.3f%%" (100.0 *. Metrics.coverage scan);
            string_of_int (Metrics.failure_count scan);
            Printf.sprintf "%.3e" (Metrics.failure_probability scan) ])
      specs scans;
    Table.print t;
    match outdir with
    | None -> ()
    | Some dir ->
        Catalog.ensure_dir dir;
        List.iter2
          (fun spec scan ->
            let path =
              Filename.concat dir (sanitize (Spec.label spec) ^ ".csv")
            in
            Csv_io.save path scan;
            Format.printf "results written to %s@." path)
          specs scans
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Run a whole benchmark matrix (suite × variants, or the paper \
          pairs) through one shared worker pool, with per-cell journals \
          and aggregate progress.  With --resume, every cell with a \
          catalogued journal picks up where it left off.")
    Term.(
      const action $ pairs $ registers $ outdir $ quiet $ engine_opts_term)

(* ------------------------------------------------------------------ *)
(* sample                                                             *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let samples =
    Arg.(
      value & opt int 10_000
      & info [ "n"; "samples" ] ~docv:"N" ~doc:"Number of samples.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let biased =
    Arg.(
      value & flag
      & info [ "biased" ]
          ~doc:"Sample def/use classes uniformly instead (Pitfall 2) — for \
                demonstration only.")
  in
  let action spec samples seed biased opts =
    let image = or_die (load_program spec) in
    let model = opts.fault_model in
    (* Sampling draws from the raw (row × cycle × bit) grid, which the
       skip model's synthetic cycle-indexed classes do not cover. *)
    (match model with
    | Faultspace.Skip ->
        or_die
          (Error
             "the skip model has no raw-coordinate fault-space geometry to \
              sample; run a full campaign instead (fi-cli campaign \
              --fault-model skip)")
    | _ -> ());
    (match (biased, model) with
    | true, Faultspace.Bitflip_mem -> ()
    | true, m ->
        or_die
          (Error
             (Printf.sprintf
                "--biased needs the memory def/use class inventory and is \
                 only defined for --fault-model mem (got %s)"
                (Faultspace.tag m)))
    | false, _ -> ());
    let golden = Golden.run image in
    Format.printf "%a@." Golden.pp_summary golden;
    let rng = Prng.create ~seed:(Int64.of_int seed) in
    let variant = variant_of_program_spec spec in
    (* With engine options — or any non-memory model, whose direct
       samplers do not exist — conduct (or resume) the full pruned
       campaign in parallel once and answer every sample from that
       oracle — the estimates are identical to conducting each sample
       (deterministic machine, lossless pruning), but the heavy lifting
       shards, runs on all requested domains, and survives crashes. *)
    let oracle =
      if
        model <> Faultspace.Bitflip_mem
        || opts.jobs <> 1 || opts.backend <> Pool.Domains
        || opts.workers <> None || opts.journal <> None
        || opts.resume || opts.shard_size <> None || opts.weighted
        || opts.shard_timeout <> None
      then
        let spec =
          match model with
          | Faultspace.Bitflip_reg ->
              Spec.of_regspace ~variant ~policy:(policy_of opts)
                (Regspace.analyze image)
          | m ->
              Spec.of_golden ~variant ~policy:(policy_of opts) ~model:m golden
        in
        Some (engine_spec ~opts ~quiet:false spec)
      else None
    in
    let est =
      match oracle with
      | None ->
          if biased then Sampler.biased_per_class rng ~samples golden
          else Sampler.uniform_raw rng ~samples golden
      | Some scan ->
          if biased then Sampler.biased_per_class_oracle rng ~samples golden scan
          else Sampler.uniform_raw_oracle rng ~samples scan
    in
    let interval =
      Confidence.wilson ~fails:est.Sampler.failures ~trials:est.Sampler.samples
        ~confidence:0.95
    in
    Format.printf "sampler            : %s%s@."
      (if biased then "per-class (BIASED, pitfall 2)" else "uniform raw space")
      (if oracle <> None then " via parallel campaign oracle" else "");
    Format.printf "samples            : %d (%d experiments conducted)@."
      est.Sampler.samples est.Sampler.conducted;
    Format.printf "failure fraction   : %.5f  95%% CI %a@."
      (Sampler.failure_fraction est)
      Confidence.pp_interval interval;
    Format.printf "extrapolated F     : %.0f  (corollary 2 of pitfall 3)@."
      (Metrics.extrapolated_failures est)
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Sampling-based campaign with extrapolation.")
    Term.(
      const action $ program_arg $ samples $ seed $ biased $ engine_opts_term)

(* ------------------------------------------------------------------ *)
(* compare                                                            *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let hardened_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"HARDENED" ~doc:"Hardened variant.")
  in
  let action base_spec hard_spec opts =
    let base = or_die (load_program base_spec) in
    let hard = or_die (load_program hard_spec) in
    let spec_of name image =
      let golden = Golden.run image in
      (match opts.fault_model with
      | Faultspace.Bitflip_reg -> ()
      | m ->
          Printf.eprintf "[%s] %d experiments...\n%!" name
            (Faultspace.experiments (Faultspace.of_golden m golden)));
      (* One journal per side, derived from the --journal stem (the
         catalogue keys each side by its own fingerprint anyway). *)
      let policy =
        let p = policy_of opts in
        { p with
          Spec.durability =
            { p.Spec.durability with
              Spec.journal =
                Option.map
                  (fun stem -> stem ^ "." ^ name)
                  p.Spec.durability.Spec.journal;
            };
        }
      in
      match opts.fault_model with
      | Faultspace.Bitflip_reg ->
          Spec.of_regspace ~variant:name ~policy (Regspace.analyze image)
      | m -> Spec.of_golden ~variant:name ~policy ~model:m golden
    in
    (* Both sides share one worker pool: the hardened cell's shards start
       as soon as baseline shards stop saturating it. *)
    let sb, sh =
      match
        engine_matrix ~opts ~quiet:false
          [ spec_of "baseline" base; spec_of "hardened" hard ]
      with
      | [ sb; sh ] -> (sb, sh)
      | _ -> assert false
    in
    let p3 = Pitfalls.analyze_pitfall3 ~baseline:sb ~hardened:sh in
    Format.printf "%a@." Pitfalls.pp_pitfall3 p3;
    Format.printf "pitfall 1 view of the baseline: %a@." Pitfalls.pp_pitfall1
      (Pitfalls.analyze_pitfall1 sb);
    Format.printf "pitfall 1 view of the hardened: %a@." Pitfalls.pp_pitfall1
      (Pitfalls.analyze_pitfall1 sh);
    Format.printf "MWTF ratio: %.3f@." (Mwtf.relative ~baseline:sb ~hardened:sh ())
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare a baseline and a hardened program with the objective \
             metric.  With --journal STEM, each side journals to \
             STEM.baseline / STEM.hardened and --resume recovers both.")
    Term.(const action $ program_arg $ hardened_arg $ engine_opts_term)

(* ------------------------------------------------------------------ *)
(* asm                                                                *)
(* ------------------------------------------------------------------ *)

let asm_cmd =
  let encode =
    Arg.(value & flag & info [ "encode" ] ~doc:"Also dump binary encoding.")
  in
  let action spec encode =
    let image = or_die (load_program spec) in
    Format.printf "%a@." Program.pp_listing image;
    if encode then
      match Encoding.encode_program image.Program.code with
      | Ok words ->
          Array.iteri (fun i w -> Format.printf "%4d: %08lx@." i w) words
      | Error e -> Format.printf "encoding error: %a@." Encoding.pp_error e
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble and list a program.")
    Term.(const action $ program_arg $ encode)

(* ------------------------------------------------------------------ *)
(* poisson                                                            *)
(* ------------------------------------------------------------------ *)

let poisson_cmd =
  let cycles =
    Arg.(
      value
      & opt int 1_000_000_000
      & info [ "cycles" ] ~docv:"N" ~doc:"Benchmark runtime in cycles.")
  in
  let bytes_ =
    Arg.(
      value & opt int 131072
      & info [ "bytes" ] ~docv:"N" ~doc:"Benchmark memory usage in bytes.")
  in
  let rate =
    Arg.(
      value & opt float 0.057
      & info [ "fit" ] ~docv:"RATE" ~doc:"Soft-error rate in FIT/Mbit.")
  in
  let action cycles bytes_ rate =
    let rate = Fit_rate.of_fit_per_mbit rate in
    let lambda =
      Fit_rate.lambda rate ~cycles ~ns_per_cycle:1.0 ~bits:(8 * bytes_)
    in
    Format.printf "lambda = %.4e@." lambda;
    for k = 0 to 5 do
      Format.printf "P(%d faults) = %.4e@." k (Poisson.pmf ~lambda k)
    done
  in
  Cmd.v
    (Cmd.info "poisson"
       ~doc:"Poisson fault-count probabilities for a benchmark (Table I).")
    Term.(const action $ cycles $ bytes_ $ rate)

(* ------------------------------------------------------------------ *)
(* report                                                             *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let which =
    Arg.(
      value
      & pos_all (enum [ ("table1", `Table1); ("figure1", `Figure1);
                        ("figure3", `Figure3) ])
          [ `Table1; `Figure1; `Figure3 ]
      & info [] ~docv:"ARTIFACT"
          ~doc:"Artifacts to print: table1, figure1, figure3 (the cheap, \
                campaign-free ones; the full set lives in bench/main.exe).")
  in
  let action which =
    List.iter
      (fun artifact ->
        print_string
          (match artifact with
          | `Table1 -> Figures.table1 ()
          | `Figure1 -> Figures.figure1 ()
          | `Figure3 -> Figures.figure3 ()))
      which
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Print campaign-free paper artifacts.")
    Term.(const action $ which)

(* ------------------------------------------------------------------ *)
(* journal (maintenance of the catalogue)                             *)
(* ------------------------------------------------------------------ *)

let journal_cmd =
  let dir =
    Arg.(
      value
      & opt string Catalog.default_dir
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Journal-catalogue directory (default $(b,_artifacts)).")
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Report what compaction would do without deleting or \
                rewriting anything.")
  in
  let compact_cmd =
    let action dir dry_run =
      let c =
        (* Journals the result cache still points at must survive
           compaction: folding one into CSV would turn every future
           cache hit on that cell into a miss. *)
        Catalog.compact ~dry_run ~finished:Runcell.journal_finished
          ~protect:(Cache.referenced ~dir) ~dir ()
      in
      Format.printf
        "%s%d entries examined: %d finished journal%s %s, %d superseded \
         entr%s and %d dangling entr%s pruned, %d kept@."
        (if dry_run then "[dry run] " else "")
        c.Catalog.examined c.Catalog.folded
        (if c.Catalog.folded = 1 then "" else "s")
        (if dry_run then "would be folded" else "folded")
        c.Catalog.superseded
        (if c.Catalog.superseded = 1 then "y" else "ies")
        c.Catalog.dangling
        (if c.Catalog.dangling = 1 then "y" else "ies")
        c.Catalog.kept
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Fold finished campaign journals into the CSV store and prune \
            superseded or dangling $(b,journals.idx) entries.  A journal \
            is finished when it replays cleanly and every plan shard has \
            a record; unfinished ones — including quarantine-degraded \
            journals, which $(b,--resume) can still heal — are kept.")
      Term.(const action $ dir $ dry_run)
  in
  Cmd.group
    (Cmd.info "journal" ~doc:"Maintain the journal catalogue.")
    [ compact_cmd ]

(* ------------------------------------------------------------------ *)
(* worker                                                             *)
(* ------------------------------------------------------------------ *)

let worker_cmd =
  let serve_cmd =
    let listen =
      let doc =
        "Address to listen on.  Port $(b,0) lets the kernel pick one; the \
         actual address is announced on stdout as $(b,fi-net listening \
         HOST:PORT ...)."
      in
      Arg.(
        value
        & opt string "127.0.0.1:0"
        & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
    in
    let workers =
      let doc =
        "Concurrent conducting workers (one forked child per accepted \
         connection); this is also the capacity advertised in the \
         handshake, which a conductor running $(b,-j 0) adopts.  0 means \
         all cores."
      in
      Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N" ~doc)
    in
    let secret =
      let doc =
        "Arm shared-secret handshake authentication: every connecting \
         conductor must present an HMAC tag derived from the secret in \
         $(docv) (first line, whitespace-trimmed).  Conductors pass the \
         same file via $(b,--secret)."
      in
      Arg.(
        value
        & opt (some string) None
        & info [ "secret" ] ~docv:"FILE" ~doc)
    in
    let action listen workers secret =
      let listen =
        match Addr.parse listen with Ok a -> a | Error e -> or_die (Error e)
      in
      let workers =
        if workers = 0 then Pool.default_jobs ()
        else if workers < 0 then
          or_die (Error (Printf.sprintf "invalid worker count %d" workers))
        else workers
      in
      let secret =
        Option.map (fun file -> or_die (Hmac.load_secret file)) secret
      in
      Remote.serve ~listen ~workers ?secret
        ~announce:(fun line ->
          print_endline line;
          flush stdout)
        ()
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Run a remote campaign-worker daemon: accept framed-TCP \
            connections from a conductor ($(b,--workers HOST:PORT)), \
            authenticate each via the protocol-version + binary-digest \
            handshake (both ends must run the byte-identical fi-cli \
            binary), and conduct the shipped shards exactly as a local \
            $(b,--backend processes) worker would, streaming journal \
            records back over the connection.  Runs until killed.")
      Term.(const action $ listen $ workers $ secret)
  in
  let stdio_action () = Worker.serve ~input:stdin ~output:stdout in
  Cmd.group
    ~default:Term.(const stdio_action $ const ())
    (Cmd.info "worker"
       ~doc:
         "Campaign worker entry points: the default serves one job over \
          stdin/stdout (the $(b,--backend processes) child protocol, \
          normally entered automatically via the $(b,FI_ENGINE_WORKER) \
          environment variable); $(b,worker serve) runs a remote worker \
          daemon for $(b,--backend sockets).")
    [ serve_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / submit / status — the campaign service                     *)
(* ------------------------------------------------------------------ *)

let svc_secret_arg =
  let doc =
    "Shared-secret file for handshake authentication (HMAC over the \
     hello).  Both the service and its clients — and, when the service \
     drives a worker fleet, the workers — must name byte-identical \
     secrets."
  in
  Arg.(value & opt (some string) None & info [ "secret" ] ~docv:"FILE" ~doc)

let svc_addr_arg =
  let doc = "Campaign-service address (from its announce line)." in
  Arg.(
    required
    & opt (some string) None
    & info [ "to" ] ~docv:"HOST:PORT" ~doc)

let svc_secret_of file = Option.map (fun f -> or_die (Hmac.load_secret f)) file

let serve_cmd =
  let listen =
    let doc =
      "Address to listen on.  Port $(b,0) lets the kernel pick; the \
       actual address is announced on stdout as $(b,fi-svc listening \
       HOST:PORT ...)."
    in
    Arg.(
      value
      & opt string Service.default_config.Service.listen
      & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
  in
  let workers =
    let doc =
      "Comma-separated $(b,HOST:PORT) worker daemons the service conducts \
       campaigns on (each started with $(b,fi-cli worker serve)).  \
       Without it, campaigns run locally on $(b,--local-backend)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "workers" ] ~docv:"HOST:PORT[,HOST:PORT...]" ~doc)
  in
  let local_backend =
    Arg.(
      value & opt string "domains"
      & info [ "local-backend" ] ~docv:"BACKEND"
          ~doc:
            "Backend for fleet-less operation: $(b,domains) or \
             $(b,processes).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker parallelism per campaign; 0 = all cores.")
  in
  let window =
    Arg.(
      value
      & opt int Service.default_config.Service.window
      & info [ "window" ] ~docv:"N"
          ~doc:
            "Admission window: how many jobs one client host may have \
             queued before further submissions are refused.")
  in
  let dir =
    Arg.(
      value
      & opt string Catalog.default_dir
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Artifact directory: campaign journals, the journal \
             catalogue and the content-addressed result store all live \
             here.")
  in
  let action listen workers local_backend jobs window dir secret_file =
    let workers =
      match workers with
      | None -> []
      | Some hosts -> (
          match Addr.parse_list hosts with
          | Ok addrs -> List.map Addr.to_string addrs
          | Error msg -> or_die (Error msg))
    in
    (if Pool.backend_of_string local_backend = None then
       or_die (Error (Printf.sprintf "unknown --local-backend %S" local_backend)));
    if jobs < 0 then
      or_die (Error (Printf.sprintf "invalid job count %d" jobs));
    if window < 1 then
      or_die (Error (Printf.sprintf "invalid admission window %d" window));
    let config =
      {
        Service.listen;
        workers;
        local_backend;
        jobs;
        window;
        artifacts = dir;
        secret_file;
      }
    in
    match Service.serve ~config ~announce:(fun line ->
        print_endline line;
        flush stdout) ()
    with
    | () -> ()
    | exception Failure msg -> or_die (Error msg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the campaign service: a resident daemon that accepts \
          campaign submissions ($(b,fi-cli submit)) over framed TCP, \
          queues them fairly per client host, conducts them on its \
          backend, streams progress back, and answers submissions whose \
          every cell is already in the content-addressed result store \
          instantly — without occupying the worker fleet.")
    Term.(
      const action $ listen $ workers $ local_backend $ jobs $ window $ dir
      $ svc_secret_arg)

let submit_cmd =
  let pairs =
    Arg.(
      value & flag
      & info [ "pairs" ]
          ~doc:"Submit only the paper's Figure 2 pairs instead of the \
                whole suite.")
  in
  let registers =
    Arg.(
      value & flag
      & info [ "registers" ]
          ~doc:"Campaign over the register fault space instead of main \
                memory — an alias for $(b,--fault-model reg).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress.") in
  let action addr pairs registers quiet secret_file fault_model =
    let addr = or_die (Addr.parse addr) in
    let secret = svc_secret_of secret_file in
    let model = model_of ~registers fault_model in
    let specs =
      if pairs then Suite.paper_specs ~model ()
      else Suite.spec_matrix ~model ()
    in
    let cells = List.map Service.cell_of_spec specs in
    if not quiet then
      Printf.eprintf "submit: %d cell%s to %s\n%!" (List.length cells)
        (if List.length cells > 1 then "s" else "")
        (Addr.to_string addr);
    let on_progress line =
      if not quiet then Printf.eprintf "\r%s%!" line
    in
    let results = or_die (Service.submit ?secret ~on_progress ~addr cells) in
    if not quiet then prerr_newline ();
    let t =
      Table.create
        ~columns:
          [ ("cell", Table.Left); ("experiments", Table.Right);
            ("coverage", Table.Right); ("failures", Table.Right);
            ("P(Failure)", Table.Right); ("origin", Table.Left) ]
    in
    List.iter
      (fun (r : Service.wire_result) ->
        let scan = r.Service.r_scan in
        Table.row t
          [ r.Service.r_label;
            string_of_int (Array.length scan.Scan.experiments);
            Printf.sprintf "%.3f%%" (100.0 *. Metrics.coverage scan);
            string_of_int (Metrics.failure_count scan);
            Printf.sprintf "%.3e" (Metrics.failure_probability scan);
            (if r.Service.r_cached then "cache" else "run") ])
      results;
    Table.print t;
    let qs = List.concat_map (fun r -> r.Service.r_quarantined) results in
    if qs <> [] then
      Printf.eprintf
        "fi-cli: WARNING: the service quarantined %d shard%s — those \
         classes hold No_effect placeholders.\n%!"
        (List.length qs)
        (if List.length qs > 1 then "s" else "")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a benchmark matrix to a running campaign service \
          ($(b,fi-cli serve)) and await its results.  Cells the service \
          has already conducted — for you or anyone else — come back \
          instantly from its result store, marked $(b,cache) in the \
          origin column.")
    Term.(
      const action $ svc_addr_arg $ pairs $ registers $ quiet
      $ svc_secret_arg $ fault_model_arg)

let status_cmd =
  let action addr secret_file =
    let addr = or_die (Addr.parse addr) in
    let secret = svc_secret_of secret_file in
    print_endline (or_die (Service.status ?secret ~addr ()))
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"One-line status of a running campaign service: connected \
             clients, queue depth, fleet busyness, published result-store \
             cells.")
    Term.(const action $ svc_addr_arg $ svc_secret_arg)

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let action () =
    List.iter print_endline program_names
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List built-in benchmarks and variants.")
    Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* fuzz                                                               *)
(* ------------------------------------------------------------------ *)

let fuzz_corpus_arg =
  let doc =
    "Corpus directory: mined counterexamples are stored here as \
     content-addressed text entries, and $(b,fuzz replay) re-verifies \
     every entry found here."
  in
  Arg.(
    value
    & opt string Corpus.default_dir
    & info [ "o"; "corpus" ] ~docv:"DIR" ~doc)

let fuzz_cmd =
  let hunt_term =
    let budget =
      let doc = "Random programs to generate and evaluate." in
      Arg.(value & opt int 8 & info [ "budget" ] ~docv:"N" ~doc)
    in
    let seed =
      let doc =
        "Master PRNG seed.  The whole hunt — programs, campaigns, \
         shrinking — is a pure function of this value, so a corpus mined \
         on one host reproduces anywhere."
      in
      Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)
    in
    let variants =
      let doc =
        "Comma-separated hardening variants to pit against the baseline: \
         $(b,sumdmr), $(b,tmr), $(b,dft:N) (N NOP cycles prepended).  \
         Default: sumdmr,tmr,dft:4,dft:16."
      in
      Arg.(value & opt (some string) None & info [ "variants" ] ~docv:"LIST" ~doc)
    in
    let samples =
      let doc =
        "Also draw an N-sample uniform raw-space estimate per cell \
         (reported as the sampled extrapolation ratio; the predicate \
         always uses the exact full scans)."
      in
      Arg.(value & opt (some int) None & info [ "samples" ] ~docv:"N" ~doc)
    in
    let min_found =
      let doc =
        "Exit nonzero unless at least $(docv) dilution-delusion findings \
         were mined (CI gate)."
      in
      Arg.(value & opt int 0 & info [ "min-found" ] ~docv:"N" ~doc)
    in
    let shrink_budget =
      let doc = "Campaign-pair evaluations the shrinker may spend per finding." in
      Arg.(value & opt int 200 & info [ "shrink-budget" ] ~docv:"N" ~doc)
    in
    let action budget seed variants samples min_found shrink_budget dir opts =
      let backend = backend_of opts in
      let variants =
        match variants with
        | None -> Delta.default_variants
        | Some s ->
            List.map
              (fun v -> or_die (Delta.variant_of_string (String.trim v)))
              (String.split_on_char ',' s)
      in
      let hunt =
        Delta.run ~backend ~jobs:opts.jobs ~variants ?samples
          ~shrink_budget
          ~log:(fun line -> Printf.eprintf "%s\n%!" line)
          ~seed:(Int64.of_int seed) ~budget ()
      in
      List.iter
        (fun f ->
          let path = Corpus.store ~dir (Corpus.of_finding f) in
          Format.printf "%s %s %a%s@." path
            (Delta.variant_to_string f.Delta.variant)
            Pitfalls.pp_dilution
            {
              Pitfalls.baseline_failures = f.Delta.baseline.Delta.failures;
              hardened_failures = f.Delta.hardened.Delta.failures;
              baseline_space = f.Delta.baseline.Delta.space;
              hardened_space = f.Delta.hardened.Delta.space;
            }
            (match f.Delta.sampled_failure_ratio with
            | None -> ""
            | Some r -> Printf.sprintf " (sampled ratio %.3f)" r))
        hunt.Delta.findings;
      let found = List.length hunt.Delta.findings in
      Printf.printf
        "%d programs evaluated, %d dilution-delusion findings stored under %s\n"
        hunt.Delta.tried found dir;
      if found < min_found then begin
        Printf.eprintf "fi-cli: fuzz found %d < --min-found %d\n" found
          min_found;
        exit 1
      end
    in
    Term.(
      const action $ budget $ seed $ variants $ samples $ min_found
      $ shrink_budget $ fuzz_corpus_arg $ engine_opts_term)
  in
  let replay_cmd =
    let action dir opts =
      let backend = backend_of opts in
      let paths = Corpus.list ~dir in
      if paths = [] then
        or_die (Error (Printf.sprintf "no corpus entries under %s" dir));
      let failed = ref 0 in
      List.iter
        (fun path ->
          match Corpus.load_file path with
          | Error msg ->
              incr failed;
              Printf.printf "FAIL %s: %s\n%!" path msg
          | Ok e -> (
              match Corpus.verify ~backend ~jobs:opts.jobs e with
              | Ok () ->
                  Printf.printf "ok   %s (%s, F %d/%d -> %d/%d)\n%!" path
                    (Delta.variant_to_string e.Corpus.variant)
                    e.Corpus.baseline.Delta.failures
                    e.Corpus.baseline.Delta.space
                    e.Corpus.hardened.Delta.failures
                    e.Corpus.hardened.Delta.space
              | Error msg ->
                  incr failed;
                  Printf.printf "FAIL %s: %s\n%!" path msg))
        paths;
      Printf.printf "%d/%d corpus entries verified\n" (List.length paths - !failed)
        (List.length paths);
      if !failed > 0 then exit 1
    in
    Cmd.v
      (Cmd.info "replay"
         ~doc:"Re-verify every corpus entry bit-identically: recompile each \
               program from its stored text, re-conduct both campaigns on \
               the chosen backend, and require the stored tallies exactly \
               plus the coverage-vs-failures inversion.  Nonzero exit on \
               any mismatch.")
      Term.(const action $ fuzz_corpus_arg $ engine_opts_term)
  in
  Cmd.group
    (Cmd.info "fuzz"
       ~doc:"Mine dilution-delusion counterexamples: generate random MIR \
             programs, campaign them against SUM+DMR/TMR/DFT hardened \
             variants on any backend, flag cells where fault coverage \
             improves while extrapolated absolute failures rise, shrink \
             each finding, and store it in a replayable regression corpus.")
    ~default:hunt_term [ replay_cmd ]

let () =
  (* Must run before anything else: a process exec'd with
     FI_ENGINE_WORKER=1 is a campaign worker, not a CLI, one exec'd
     with FI_ENGINE_NET_SERVE is a remote-worker daemon, and one with
     FI_ENGINE_SVC_SERVE is a campaign-service daemon. *)
  Worker.guard ();
  Remote.guard ();
  Service.guard ();
  let doc =
    "fault-injection campaigns, metrics and pitfall analyses on the \
     deterministic RISC simulator"
  in
  let info = Cmd.info "fi-cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ run_cmd; trace_cmd; campaign_cmd; matrix_cmd; sample_cmd; compare_cmd;
      asm_cmd; poisson_cmd; report_cmd; journal_cmd; list_cmd; worker_cmd;
      serve_cmd; submit_cmd; status_cmd; fuzz_cmd ]))
