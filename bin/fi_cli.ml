(* fi-cli: command-line front-end to the fault-injection toolkit.

   Subcommands:
     run       execute a benchmark (or an .s file) and show its behaviour
     trace     golden run + def/use statistics
     campaign  full pruned FI campaign, optionally saved as CSV
     sample    sampling-based estimation with confidence intervals
     compare   objective comparison of a baseline/hardened pair
     asm       assemble / disassemble / encode a .s file
     poisson   Table-I style Poisson fault-count probabilities
     list      available benchmarks and variants *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Benchmark lookup                                                   *)
(* ------------------------------------------------------------------ *)

let builders =
  [
    ("hi", fun () -> Hi.program ());
    ("hi+dft", fun () -> Hi.dft ());
    ("hi+dft'", fun () -> Hi.dft' ());
    ("hi+pad", fun () -> Hi.dft_memory ());
  ]
  @ List.map
      (fun (e : Suite.entry) ->
        ( Printf.sprintf "%s/%s" e.Suite.benchmark
            (Suite.variant_name e.Suite.variant),
          e.Suite.build ))
      Suite.all

let program_names = List.map fst builders

let load_program spec =
  match List.assoc_opt spec builders with
  | Some build -> Ok (build ())
  | None ->
      if Sys.file_exists spec then begin
        let ic = open_in spec in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Assembler.assemble ~name:(Filename.basename spec) text with
        | Ok image -> Ok image
        | Error e ->
            Error (Format.asprintf "%s: %a" spec Assembler.pp_error e)
      end
      else
        Error
          (Printf.sprintf
             "unknown program %S (try `fi-cli list`, or pass a .s file)" spec)

let program_arg =
  let doc =
    "Benchmark name (e.g. bin_sem2/baseline, sync2/sum+dmr, hi) or path to \
     an assembly file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM" ~doc)

let or_die = function
  | Ok v -> v
  | Error msg ->
      Printf.eprintf "fi-cli: %s\n" msg;
      exit 2

(* ------------------------------------------------------------------ *)
(* Campaign-engine options (campaign / compare / sample)              *)
(* ------------------------------------------------------------------ *)

let jobs_arg =
  let doc =
    "Worker domains for the campaign engine; 0 means all cores \
     ($(b,Domain.recommended_domain_count)).  Results are bit-identical \
     for every value."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let journal_arg =
  let doc =
    "Write an append-only, fsync'd campaign journal to $(docv) (one \
     CRC-guarded record per completed shard), enabling $(b,--resume) \
     after a crash or kill."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "With $(b,--journal), recover already-completed shards from the \
     journal instead of re-conducting them."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let resolve_jobs = function
  | 0 -> Pool.default_jobs ()
  | j when j >= 1 -> j
  | j -> or_die (Error (Printf.sprintf "invalid job count %d" j))

let engine_progress ~quiet =
  if quiet then fun _ -> ()
  else
    Progress.throttled (fun snap ->
        Printf.eprintf "\r%s%!" (Progress.render snap);
        if Progress.finished snap then prerr_newline ())

let engine_run ?variant ~jobs ~journal ~resume ~quiet golden =
  if resume && journal = None then
    or_die (Error "--resume requires --journal FILE");
  match
    Engine.run ?variant ~jobs:(resolve_jobs jobs) ?journal ~resume
      ~observe:(engine_progress ~quiet) golden
  with
  | scan -> scan
  | exception Engine.Journal_mismatch msg -> or_die (Error msg)

(* ------------------------------------------------------------------ *)
(* run                                                                *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let listing =
    Arg.(value & flag & info [ "listing" ] ~doc:"Print the disassembly first.")
  in
  let limit =
    Arg.(
      value & opt int 50_000_000
      & info [ "limit" ] ~docv:"CYCLES" ~doc:"Watchdog cycle limit.")
  in
  let action spec listing limit =
    let image = or_die (load_program spec) in
    if listing then Format.printf "%a@." Program.pp_listing image;
    let m = Machine.create image in
    let reason = Machine.run m ~limit in
    Format.printf "stop     : %a@." Machine.pp_stop_reason reason;
    Format.printf "cycles   : %d@." (Machine.cycle m);
    Format.printf "output   : %S@." (Machine.serial_output m);
    List.iter
      (fun (cycle, code) ->
        Format.printf "event    : cycle %d, %a@." cycle Event_codes.pp code)
      (Machine.detection_events m)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a program and report its behaviour.")
    Term.(const action $ program_arg $ listing $ limit)

(* ------------------------------------------------------------------ *)
(* trace                                                              *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let map_flag =
    Arg.(
      value & flag
      & info [ "map" ]
          ~doc:"Render the fault-space map (tiny programs only).")
  in
  let action spec map_flag =
    let image = or_die (load_program spec) in
    let golden = Golden.run image in
    Format.printf "%a@." Golden.pp_summary golden;
    let d = golden.Golden.defuse in
    Format.printf "accesses           : %d@." (Trace.length golden.Golden.trace);
    Format.printf "def/use classes    : %d@." (Array.length (Defuse.classes d));
    Format.printf "experiment classes : %d (x8 bits = %d experiments)@."
      (Array.length (Defuse.experiment_classes d))
      (Defuse.experiment_count d);
    Format.printf "a-priori benign    : %d bit-cycles@."
      (Defuse.known_benign_weight d);
    if map_flag then print_string (Faultmap.access_map_golden golden)
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Golden run and def/use pruning statistics.")
    Term.(const action $ program_arg $ map_flag)

(* ------------------------------------------------------------------ *)
(* campaign                                                           *)
(* ------------------------------------------------------------------ *)

let campaign_cmd =
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Save results as CSV.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress.") in
  let registers =
    Arg.(
      value & flag
      & info [ "registers" ]
          ~doc:
            "Campaign over the register fault space (Section VI-B) instead \
             of main memory.")
  in
  let breakdown =
    Arg.(
      value & flag
      & info [ "breakdown" ]
          ~doc:"Also attribute the failure mass to data regions.")
  in
  let action spec out quiet registers breakdown jobs journal resume =
    let image = or_die (load_program spec) in
    let golden = Golden.run image in
    Format.printf "%a@." Golden.pp_summary golden;
    let progress ~done_ ~total ~tally =
      if not quiet then begin
        if done_ mod 500 = 0 || done_ = total then begin
          Printf.eprintf "\r%d/%d classes (%d failures)" done_ total
            (Outcome.tally_failures tally);
          if done_ = total then prerr_newline ();
          flush stderr
        end
      end
    in
    let scan =
      if registers then begin
        if jobs <> 1 || journal <> None then
          or_die
            (Error
               "register campaigns do not go through the parallel engine \
                yet; drop -j/--journal (see ROADMAP)");
        Regspace.scan ~progress (Regspace.analyze image)
      end
      else engine_run ~jobs ~journal ~resume ~quiet golden
    in
    if registers then
      Format.printf "register fault space: w = %d bit-cycles@."
        (Scan.fault_space_size scan);
    let t =
      Table.create
        ~columns:
          [ ("metric", Table.Left); ("weighted/full", Table.Right);
            ("unweighted (pitfall 1)", Table.Right) ]
    in
    Table.row t
      [ "fault coverage";
        Printf.sprintf "%.3f%%" (100.0 *. Metrics.coverage scan);
        Printf.sprintf "%.3f%%"
          (100.0 *. Metrics.coverage ~policy:Accounting.pitfall1 scan) ];
    Table.row t
      [ "failure count";
        string_of_int (Metrics.failure_count scan);
        string_of_int (Metrics.failure_count ~policy:Accounting.pitfall1 scan) ];
    Table.print t;
    Format.printf "@.P(Failure) per run at %.3f FIT/Mbit: %.3e  (MWTF %.3e runs)@."
      (Fit_rate.to_float Fit_rate.mean_published)
      (Metrics.failure_probability scan)
      (Mwtf.runs_to_failure scan);
    Format.printf "outcome histogram (weighted, full space):@.";
    List.iter
      (fun (o, n) -> Format.printf "  %-20s %12d@." (Outcome.to_string o) n)
      (Metrics.outcome_histogram scan);
    if breakdown && not registers then
      print_string (Figures.breakdown scan image);
    match out with
    | Some path ->
        Csv_io.save path scan;
        Format.printf "results written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a full pruned fault-injection campaign.")
    Term.(
      const action $ program_arg $ out $ quiet $ registers $ breakdown
      $ jobs_arg $ journal_arg $ resume_arg)

(* ------------------------------------------------------------------ *)
(* sample                                                             *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let samples =
    Arg.(
      value & opt int 10_000
      & info [ "n"; "samples" ] ~docv:"N" ~doc:"Number of samples.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let biased =
    Arg.(
      value & flag
      & info [ "biased" ]
          ~doc:"Sample def/use classes uniformly instead (Pitfall 2) — for \
                demonstration only.")
  in
  let action spec samples seed biased jobs journal resume =
    let image = or_die (load_program spec) in
    let golden = Golden.run image in
    Format.printf "%a@." Golden.pp_summary golden;
    let rng = Prng.create ~seed:(Int64.of_int seed) in
    (* With engine options, conduct (or resume) the full pruned campaign
       in parallel once and answer every sample from that oracle — the
       estimates are identical to conducting each sample (deterministic
       machine, lossless pruning), but the heavy lifting shards, runs on
       all requested domains, and survives crashes. *)
    let oracle =
      if jobs <> 1 || journal <> None then
        Some (engine_run ~jobs ~journal ~resume ~quiet:false golden)
      else None
    in
    let est =
      match oracle with
      | None ->
          if biased then Sampler.biased_per_class rng ~samples golden
          else Sampler.uniform_raw rng ~samples golden
      | Some scan ->
          if biased then Sampler.biased_per_class_oracle rng ~samples golden scan
          else Sampler.uniform_raw_oracle rng ~samples scan
    in
    let interval =
      Confidence.wilson ~fails:est.Sampler.failures ~trials:est.Sampler.samples
        ~confidence:0.95
    in
    Format.printf "sampler            : %s%s@."
      (if biased then "per-class (BIASED, pitfall 2)" else "uniform raw space")
      (if oracle <> None then " via parallel campaign oracle" else "");
    Format.printf "samples            : %d (%d experiments conducted)@."
      est.Sampler.samples est.Sampler.conducted;
    Format.printf "failure fraction   : %.5f  95%% CI %a@."
      (Sampler.failure_fraction est)
      Confidence.pp_interval interval;
    Format.printf "extrapolated F     : %.0f  (corollary 2 of pitfall 3)@."
      (Metrics.extrapolated_failures est)
  in
  Cmd.v
    (Cmd.info "sample" ~doc:"Sampling-based campaign with extrapolation.")
    Term.(
      const action $ program_arg $ samples $ seed $ biased $ jobs_arg
      $ journal_arg $ resume_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                            *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let hardened_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"HARDENED" ~doc:"Hardened variant.")
  in
  let action base_spec hard_spec jobs journal resume =
    let base = or_die (load_program base_spec) in
    let hard = or_die (load_program hard_spec) in
    let scan_of name image =
      let golden = Golden.run image in
      Printf.eprintf "[%s] %d experiments...\n%!" name
        (Defuse.experiment_count golden.Golden.defuse);
      (* One journal per side, derived from the --journal stem. *)
      let journal = Option.map (fun stem -> stem ^ "." ^ name) journal in
      engine_run ~variant:name ~jobs ~journal ~resume ~quiet:false golden
    in
    let sb = scan_of "baseline" base in
    let sh = scan_of "hardened" hard in
    let p3 = Pitfalls.analyze_pitfall3 ~baseline:sb ~hardened:sh in
    Format.printf "%a@." Pitfalls.pp_pitfall3 p3;
    Format.printf "pitfall 1 view of the baseline: %a@." Pitfalls.pp_pitfall1
      (Pitfalls.analyze_pitfall1 sb);
    Format.printf "pitfall 1 view of the hardened: %a@." Pitfalls.pp_pitfall1
      (Pitfalls.analyze_pitfall1 sh);
    Format.printf "MWTF ratio: %.3f@." (Mwtf.relative ~baseline:sb ~hardened:sh ())
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare a baseline and a hardened program with the objective \
             metric.  With --journal STEM, each side journals to \
             STEM.baseline / STEM.hardened and --resume recovers both.")
    Term.(
      const action $ program_arg $ hardened_arg $ jobs_arg $ journal_arg
      $ resume_arg)

(* ------------------------------------------------------------------ *)
(* asm                                                                *)
(* ------------------------------------------------------------------ *)

let asm_cmd =
  let encode =
    Arg.(value & flag & info [ "encode" ] ~doc:"Also dump binary encoding.")
  in
  let action spec encode =
    let image = or_die (load_program spec) in
    Format.printf "%a@." Program.pp_listing image;
    if encode then
      match Encoding.encode_program image.Program.code with
      | Ok words ->
          Array.iteri (fun i w -> Format.printf "%4d: %08lx@." i w) words
      | Error e -> Format.printf "encoding error: %a@." Encoding.pp_error e
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble and list a program.")
    Term.(const action $ program_arg $ encode)

(* ------------------------------------------------------------------ *)
(* poisson                                                            *)
(* ------------------------------------------------------------------ *)

let poisson_cmd =
  let cycles =
    Arg.(
      value
      & opt int 1_000_000_000
      & info [ "cycles" ] ~docv:"N" ~doc:"Benchmark runtime in cycles.")
  in
  let bytes_ =
    Arg.(
      value & opt int 131072
      & info [ "bytes" ] ~docv:"N" ~doc:"Benchmark memory usage in bytes.")
  in
  let rate =
    Arg.(
      value & opt float 0.057
      & info [ "fit" ] ~docv:"RATE" ~doc:"Soft-error rate in FIT/Mbit.")
  in
  let action cycles bytes_ rate =
    let rate = Fit_rate.of_fit_per_mbit rate in
    let lambda =
      Fit_rate.lambda rate ~cycles ~ns_per_cycle:1.0 ~bits:(8 * bytes_)
    in
    Format.printf "lambda = %.4e@." lambda;
    for k = 0 to 5 do
      Format.printf "P(%d faults) = %.4e@." k (Poisson.pmf ~lambda k)
    done
  in
  Cmd.v
    (Cmd.info "poisson"
       ~doc:"Poisson fault-count probabilities for a benchmark (Table I).")
    Term.(const action $ cycles $ bytes_ $ rate)

(* ------------------------------------------------------------------ *)
(* report                                                             *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let which =
    Arg.(
      value
      & pos_all (enum [ ("table1", `Table1); ("figure1", `Figure1);
                        ("figure3", `Figure3) ])
          [ `Table1; `Figure1; `Figure3 ]
      & info [] ~docv:"ARTIFACT"
          ~doc:"Artifacts to print: table1, figure1, figure3 (the cheap, \
                campaign-free ones; the full set lives in bench/main.exe).")
  in
  let action which =
    List.iter
      (fun artifact ->
        print_string
          (match artifact with
          | `Table1 -> Figures.table1 ()
          | `Figure1 -> Figures.figure1 ()
          | `Figure3 -> Figures.figure3 ()))
      which
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Print campaign-free paper artifacts.")
    Term.(const action $ which)

(* ------------------------------------------------------------------ *)
(* list                                                               *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let action () =
    List.iter print_endline program_names
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List built-in benchmarks and variants.")
    Term.(const action $ const ())

let () =
  let doc =
    "fault-injection campaigns, metrics and pitfall analyses on the \
     deterministic RISC simulator"
  in
  let info = Cmd.info "fi-cli" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ run_cmd; trace_cmd; campaign_cmd; sample_cmd; compare_cmd; asm_cmd;
      poisson_cmd; report_cmd; list_cmd ]))
