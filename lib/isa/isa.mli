(** The instruction set of the simulated RISC machine.

    The paper's machine model (Section II-C) is a simple in-order RISC CPU
    executing one instruction per cycle from fault-immune ROM, attached to
    wait-free main memory.  This ISA is deliberately small but complete
    enough to compile an operating-system kernel onto: 16 general-purpose
    32-bit registers, three-operand ALU instructions, byte and word
    loads/stores, compare-and-branch, and jump-and-link for calls.

    Register conventions used by the MIR compiler (the hardware does not
    enforce them):
    - [r0] always reads as zero; writes are ignored.
    - [r1]–[r9] expression temporaries / argument registers,
    - [r10]–[r12] callee-saved scratch,
    - [r13] stack pointer, [r14] frame pointer, [r15] link register. *)

type reg = R of int
(** A register index in [\[0, 15\]].  Use {!reg} to construct. *)

val reg : int -> reg
(** [reg i] is register [i].

    @raise Invalid_argument outside [\[0, 15\]]. *)

val reg_index : reg -> int
(** Underlying index. *)

val r0 : reg
val sp : reg
(** [r13], the conventional stack pointer. *)

val fp : reg
(** [r14], the conventional frame pointer. *)

val ra : reg
(** [r15], the conventional link register. *)

(** Arithmetic-logic operations, all on 32-bit two's-complement words. *)
type alu_op =
  | Add
  | Sub
  | Mul
  | Divu  (** Unsigned division; division by zero traps. *)
  | Remu  (** Unsigned remainder; division by zero traps. *)
  | And
  | Or
  | Xor
  | Shl   (** Shift left by [rs2 land 31]. *)
  | Shr   (** Logical shift right by [rs2 land 31]. *)
  | Sar   (** Arithmetic shift right by [rs2 land 31]. *)
  | Slt   (** Signed set-less-than: 1 or 0. *)
  | Sltu  (** Unsigned set-less-than: 1 or 0. *)

(** Branch conditions comparing two registers. *)
type cond =
  | Eq
  | Ne
  | Lt   (** Signed. *)
  | Ge   (** Signed. *)
  | Ltu
  | Geu

type instr =
  | Nop
  | Halt                                (** Stop the machine; normal exit. *)
  | Li of reg * int32                   (** [rd <- imm] (no memory access). *)
  | Alu of alu_op * reg * reg * reg     (** [rd <- rs1 op rs2]. *)
  | Alui of alu_op * reg * reg * int32  (** [rd <- rs1 op imm]. *)
  | Lb of reg * reg * int32             (** [rd <- zero_extend mem8(rs + off)]. *)
  | Lw of reg * reg * int32             (** [rd <- mem32(rs + off)]; must be 4-aligned. *)
  | Sb of reg * reg * int32             (** [mem8(rs + off) <- low byte of rd]. *)
  | Sw of reg * reg * int32             (** [mem32(rs + off) <- rd]; must be 4-aligned. *)
  | Beq of reg * reg * int * cond       (** [if rs1 cond rs2 then pc <- target]; the [int] is an absolute instruction index. *)
  | Jmp of int                          (** Unconditional jump to instruction index. *)
  | Jal of reg * int                    (** [rd <- pc + 1; pc <- target]. *)
  | Jr of reg                           (** [pc <- rd] (indirect jump / return). *)

val pp_reg : Format.formatter -> reg -> unit
(** Prints as [r4], or the aliases [sp]/[fp]/[ra]. *)

val pp_alu_op : Format.formatter -> alu_op -> unit
val pp_cond : Format.formatter -> cond -> unit

val pp_instr : Format.formatter -> instr -> unit
(** One-line assembly rendering, e.g. ["lw r3, 8(sp)"]. *)

val equal_instr : instr -> instr -> bool
(** Structural equality. *)

val is_load : instr -> bool
(** True for [Lb]/[Lw] — the "use"/"R" events of def/use analysis. *)

val is_store : instr -> bool
(** True for [Sb]/[Sw] — the "def"/"W" events of def/use analysis. *)

val branch_targets : instr -> int list
(** Instruction indices this instruction can jump to (empty for
    fall-through-only instructions). *)

val defs_uses : instr -> reg list * reg list
(** [(writes, reads)] of one instruction — the registers it defines and
    uses, [r0] excluded from both (it is hardwired to zero).  Within one
    cycle, reads happen before the write.  Shared by the register
    fault-space extension ({!Fi_campaign.Regspace}) and the checkpoint
    plan's register-liveness masks ({!Fi_campaign.Injector}). *)
