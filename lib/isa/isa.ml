type reg = R of int

let reg i =
  if i < 0 || i > 15 then invalid_arg "Isa.reg: index outside [0,15]";
  R i

let reg_index (R i) = i
let r0 = R 0
let sp = R 13
let fp = R 14
let ra = R 15

type alu_op =
  | Add
  | Sub
  | Mul
  | Divu
  | Remu
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sar
  | Slt
  | Sltu

type cond = Eq | Ne | Lt | Ge | Ltu | Geu

type instr =
  | Nop
  | Halt
  | Li of reg * int32
  | Alu of alu_op * reg * reg * reg
  | Alui of alu_op * reg * reg * int32
  | Lb of reg * reg * int32
  | Lw of reg * reg * int32
  | Sb of reg * reg * int32
  | Sw of reg * reg * int32
  | Beq of reg * reg * int * cond
  | Jmp of int
  | Jal of reg * int
  | Jr of reg

let pp_reg ppf (R i) =
  match i with
  | 13 -> Format.pp_print_string ppf "sp"
  | 14 -> Format.pp_print_string ppf "fp"
  | 15 -> Format.pp_print_string ppf "ra"
  | i -> Format.fprintf ppf "r%d" i

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Divu -> "divu"
  | Remu -> "remu"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Slt -> "slt"
  | Sltu -> "sltu"

let cond_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Ge -> "bge"
  | Ltu -> "bltu"
  | Geu -> "bgeu"

let pp_alu_op ppf op = Format.pp_print_string ppf (alu_op_name op)
let pp_cond ppf c = Format.pp_print_string ppf (cond_name c)

let pp_instr ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"
  | Li (rd, imm) -> Format.fprintf ppf "li %a, %ld" pp_reg rd imm
  | Alu (op, rd, rs1, rs2) ->
      Format.fprintf ppf "%s %a, %a, %a" (alu_op_name op) pp_reg rd pp_reg rs1
        pp_reg rs2
  | Alui (op, rd, rs1, imm) ->
      Format.fprintf ppf "%si %a, %a, %ld" (alu_op_name op) pp_reg rd pp_reg
        rs1 imm
  | Lb (rd, rs, off) -> Format.fprintf ppf "lb %a, %ld(%a)" pp_reg rd off pp_reg rs
  | Lw (rd, rs, off) -> Format.fprintf ppf "lw %a, %ld(%a)" pp_reg rd off pp_reg rs
  | Sb (rd, rs, off) -> Format.fprintf ppf "sb %a, %ld(%a)" pp_reg rd off pp_reg rs
  | Sw (rd, rs, off) -> Format.fprintf ppf "sw %a, %ld(%a)" pp_reg rd off pp_reg rs
  | Beq (rs1, rs2, target, c) ->
      Format.fprintf ppf "%s %a, %a, %d" (cond_name c) pp_reg rs1 pp_reg rs2
        target
  | Jmp target -> Format.fprintf ppf "jmp %d" target
  | Jal (rd, target) -> Format.fprintf ppf "jal %a, %d" pp_reg rd target
  | Jr rs -> Format.fprintf ppf "jr %a" pp_reg rs

let equal_instr (a : instr) (b : instr) = a = b

let is_load = function Lb _ | Lw _ -> true | _ -> false
let is_store = function Sb _ | Sw _ -> true | _ -> false

let branch_targets = function
  | Beq (_, _, t, _) -> [ t ]
  | Jmp t | Jal (_, t) -> [ t ]
  | Nop | Halt | Li _ | Alu _ | Alui _ | Lb _ | Lw _ | Sb _ | Sw _ | Jr _ -> []

let defs_uses instr =
  let writes, reads =
    match instr with
    | Nop | Halt -> ([], [])
    | Li (rd, _) -> ([ rd ], [])
    | Alu (_, rd, rs1, rs2) -> ([ rd ], [ rs1; rs2 ])
    | Alui (_, rd, rs1, _) -> ([ rd ], [ rs1 ])
    | Lb (rd, rs, _) | Lw (rd, rs, _) -> ([ rd ], [ rs ])
    | Sb (rv, rs, _) | Sw (rv, rs, _) -> ([], [ rv; rs ])
    | Beq (rs1, rs2, _, _) -> ([], [ rs1; rs2 ])
    | Jmp _ -> ([], [])
    | Jal (rd, _) -> ([ rd ], [])
    | Jr rs -> ([], [ rs ])
  in
  let non_zero r = reg_index r <> 0 in
  (List.filter non_zero writes, List.filter non_zero reads)
