(** Sound non-termination proofs for loop-bound faulty runs.

    Exact state-recurrence detection ({!Machine.hunt_loops}) only
    catches loops whose machine state repeats verbatim.  Most
    watchdog-bound faulty runs are not like that: a corrupted loop
    bound leaves the program iterating with a counter (and often a
    chaotically drifting accumulator) that never revisits a state.
    This module proves non-termination for exactly that shape of loop
    by abstract interpretation of a single recorded period: each
    register and touched RAM cell is modelled as constant, exactly
    affine in the period index, or opaque, and the proof succeeds only
    if every branch in the period is decided the same way for every
    period up to the cycle limit, no instruction can trap, and the
    period's end state provably reproduces the model advanced by one
    period.  By induction, the machine then repeats the same pc
    sequence until the limit.

    The proof deliberately ignores serial output and detection events
    emitted inside the loop: its only legitimate use is classifying
    the run as {!Machine.Cycle_limit}, an outcome that depends on
    neither (see {!Fi_campaign.Outcome.classify}). *)

val prove_no_halt : Machine.t -> limit:int -> bool
(** [prove_no_halt m ~limit] — can machine [m] (running, typically
    parked at a loop head by {!Machine.probe_pc_recurrence}) be proven
    never to stop before having executed [limit] total cycles?

    [true] is a proof: the caller may classify the run as the watchdog
    would at [limit] without simulating it.  [false] is merely "could
    not prove it" — the run may or may not halt.

    The machine is advanced a bounded number of cycles (at most a few
    loop periods, capped well below typical watchdog budgets) while
    the proof anchors and records a period; these are real, faithful
    execution steps, so the caller can simply resume simulating from
    wherever the machine ends up — including re-checking
    [Machine.stopped], since an analysis attempt may legitimately step
    the machine to a stop.  Stopped machines return [false]. *)
