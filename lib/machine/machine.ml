type trap =
  | Misaligned_access of int
  | Unmapped_access of int
  | Rom_write of int
  | Division_by_zero
  | Bad_pc of int

let pp_trap ppf = function
  | Misaligned_access a -> Format.fprintf ppf "misaligned access at 0x%x" a
  | Unmapped_access a -> Format.fprintf ppf "unmapped access at 0x%x" a
  | Rom_write a -> Format.fprintf ppf "write to ROM at 0x%x" a
  | Division_by_zero -> Format.pp_print_string ppf "division by zero"
  | Bad_pc pc -> Format.fprintf ppf "control transfer to bad pc %d" pc

type stop_reason =
  | Halted
  | Trapped of trap
  | Panicked of int32
  | Cycle_limit

let pp_stop_reason ppf = function
  | Halted -> Format.pp_print_string ppf "halted"
  | Trapped t -> Format.fprintf ppf "trapped: %a" pp_trap t
  | Panicked code -> Format.fprintf ppf "panicked (code %ld)" code
  | Cycle_limit -> Format.pp_print_string ppf "cycle limit exceeded"

type access_kind = Read | Write

type tracer = cycle:int -> addr:int -> width:int -> kind:access_kind -> unit

type exec_tracer = cycle:int -> Isa.instr -> unit

type t = {
  prog : Program.t;
  code : Isa.instr array;
  xcode : (t -> unit) array; (* closure-compiled code, shared by forks *)
  rom : bytes;
  ram : Bytes.t;
  regs : int array; (* values masked to 32 bits, unsigned representation *)
  mutable pc : int;
  mutable cyc : int;
  serial_pre : string; (* immutable serial prefix, shared across restores *)
  serial_pre_len : int; (* live bytes of [serial_pre] *)
  serial : Buffer.t; (* bytes emitted past the shared prefix *)
  mutable events : (int * int32) list; (* reversed *)
  mutable stop : stop_reason option;
  mutable hunt : hunt option;
  mutable serial_trap : Bytes.t;
      (* bitmap over output byte positions; emitting a flagged byte
         suspends the run for a rendezvous-anchor check (empty = off) *)
  tracer : tracer option;
  exec_tracer : exec_tracer option;
}

(* Brent-style recurrence detector: one tortoise state, recaptured with
   exponentially growing windows.  The hot loop pays one [pc] compare
   per cycle.  In full mode ([h_full]) a hit additionally compares the
   complete execution state (pc, regs, RAM — everything the transition
   function reads), short-circuiting on the first differing register; a
   match proves the state recurred, which on this deterministic machine
   proves the run can never halt.  In probe mode a bare pc revisit
   suspends the run: it proves nothing by itself, but hands the caller
   a loop-period candidate for deeper analysis (see {!Loopproof}). *)
and hunt = {
  h_full : bool; (* full-state proof mode vs. pc-recurrence probe *)
  h_serial : bool; (* suspension raised by the serial-position trap *)
  mutable h_pc : int;
  h_regs : int array; (* empty in probe mode *)
  h_ram : Bytes.t; (* empty in probe mode *)
  mutable h_window : int; (* current Brent window, in cycles *)
  mutable h_left : int; (* cycles left before the tortoise moves *)
  mutable h_dist : int; (* cycles since the tortoise was (re)captured *)
  mutable h_stop : bool; (* suspend the run loop *)
}

let program m = m.prog
let cycle m = m.cyc
let pc m = m.pc
let stopped m = m.stop

let serial_output m =
  if m.serial_pre_len = 0 then Buffer.contents m.serial
  else if
    Buffer.length m.serial = 0 && m.serial_pre_len = String.length m.serial_pre
  then m.serial_pre
  else begin
    let tail = Buffer.length m.serial in
    let b = Bytes.create (m.serial_pre_len + tail) in
    Bytes.blit_string m.serial_pre 0 b 0 m.serial_pre_len;
    Buffer.blit m.serial 0 b m.serial_pre_len tail;
    Bytes.unsafe_to_string b
  end

let serial_length m = m.serial_pre_len + Buffer.length m.serial

let serial_agrees m ~prefix ~len =
  serial_length m = len
  && String.length prefix >= len
  &&
  if m.serial_pre == prefix then begin
    (* Shared prefix: only the buffered tail needs comparing. *)
    let tail = Buffer.length m.serial in
    let off = m.serial_pre_len in
    let rec go i =
      i >= tail
      || Char.equal (Buffer.nth m.serial i) (String.unsafe_get prefix (off + i))
         && go (i + 1)
    in
    go 0
  end
  else begin
    let s = serial_output m in
    if String.length prefix = len then String.equal s prefix
    else String.equal s (String.sub prefix 0 len)
  end

let detection_events m = List.rev m.events
let event_count m = List.length m.events

let mask32 = 0xFFFFFFFF
let to_u32 v = v land mask32

(* Signed view of a 32-bit unsigned representation. *)
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let reg m r =
  let i = Isa.reg_index r in
  if i = 0 then 0l else Int32.of_int (signed m.regs.(i))

let set_reg m r v =
  let i = Isa.reg_index r in
  if i <> 0 then m.regs.(i) <- to_u32 (Int32.to_int v land mask32)

let check_ram m off what =
  if off < 0 || off >= Bytes.length m.ram then
    invalid_arg (Printf.sprintf "Machine.%s: offset %d outside RAM" what off)

let read_ram_byte m off =
  check_ram m off "read_ram_byte";
  Char.code (Bytes.get m.ram off)

let write_ram_byte m off v =
  check_ram m off "write_ram_byte";
  Bytes.set m.ram off (Char.chr (v land 0xFF))

let flip_bit m bit =
  let off = bit / 8 in
  check_ram m off "flip_bit";
  let b = Char.code (Bytes.get m.ram off) in
  Bytes.set m.ram off (Char.chr (b lxor (1 lsl (bit mod 8))))

let flip_reg_bit m ~reg ~bit =
  if reg < 1 || reg > 15 then
    invalid_arg "Machine.flip_reg_bit: register outside [1,15]";
  if bit < 0 || bit > 31 then
    invalid_arg "Machine.flip_reg_bit: bit outside [0,31]";
  m.regs.(reg) <- m.regs.(reg) lxor (1 lsl bit)

(* ------------------------------------------------------------------ *)
(* Memory system                                                      *)
(* ------------------------------------------------------------------ *)

exception Stop of stop_reason

let trace m ~addr ~width ~kind =
  match m.tracer with
  | Some f -> f ~cycle:m.cyc ~addr ~width ~kind
  | None -> ()

let rom_byte m off = if off < Bytes.length m.rom then Char.code (Bytes.get m.rom off) else 0

let load_byte m addr =
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      trace m ~addr ~width:1 ~kind:Read;
      (* classify proved the bound *)
      Char.code (Bytes.unsafe_get m.ram addr)
  | Memmap.Rom -> rom_byte m (addr - Memmap.rom_base)
  | Memmap.Mmio -> 0
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

let load_word m addr =
  if addr land 3 <> 0 then raise (Stop (Trapped (Misaligned_access addr)));
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      if addr + 3 >= Bytes.length m.ram then
        raise (Stop (Trapped (Unmapped_access addr)));
      trace m ~addr ~width:4 ~kind:Read;
      let b i = Char.code (Bytes.unsafe_get m.ram (addr + i)) in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  | Memmap.Rom ->
      let off = addr - Memmap.rom_base in
      let b i = rom_byte m (off + i) in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  | Memmap.Mmio -> 0
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

let mmio_store m addr value =
  if addr = Memmap.serial_port then begin
    Buffer.add_char m.serial (Char.chr (value land 0xFF));
    let bits = m.serial_trap in
    if Bytes.length bits > 0 then begin
      (* position of the byte just emitted *)
      let n = m.serial_pre_len + Buffer.length m.serial - 1 in
      if
        n < 8 * Bytes.length bits
        && Char.code (Bytes.unsafe_get bits (n lsr 3)) land (1 lsl (n land 7))
           <> 0
      then
        m.hunt <-
          Some
            {
              h_full = false;
              h_serial = true;
              h_pc = m.pc;
              h_regs = [||];
              h_ram = Bytes.empty;
              h_window = 0;
              h_left = max_int;
              h_dist = 0;
              h_stop = true;
            }
    end
  end
  else if addr = Memmap.detect_port then
    m.events <- (m.cyc, Int32.of_int (signed value)) :: m.events
  else if addr = Memmap.panic_port then
    raise (Stop (Panicked (Int32.of_int (signed value))))
  else () (* other MMIO slots: ignored *)

let store_byte m addr value =
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      trace m ~addr ~width:1 ~kind:Write;
      Bytes.set m.ram addr (Char.chr (value land 0xFF))
  | Memmap.Rom -> raise (Stop (Trapped (Rom_write addr)))
  | Memmap.Mmio -> mmio_store m addr value
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

let store_word m addr value =
  if addr land 3 <> 0 then raise (Stop (Trapped (Misaligned_access addr)));
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      if addr + 3 >= Bytes.length m.ram then
        raise (Stop (Trapped (Unmapped_access addr)));
      trace m ~addr ~width:4 ~kind:Write;
      Bytes.set m.ram addr (Char.chr (value land 0xFF));
      Bytes.set m.ram (addr + 1) (Char.chr ((value lsr 8) land 0xFF));
      Bytes.set m.ram (addr + 2) (Char.chr ((value lsr 16) land 0xFF));
      Bytes.set m.ram (addr + 3) (Char.chr ((value lsr 24) land 0xFF))
  | Memmap.Rom -> raise (Stop (Trapped (Rom_write addr)))
  | Memmap.Mmio -> mmio_store m addr value
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

let alu_eval op a b =
  (* a, b are unsigned 32-bit representations; result likewise. *)
  match (op : Isa.alu_op) with
  | Add -> to_u32 (a + b)
  | Sub -> to_u32 (a - b)
  | Mul -> to_u32 (a * b)
  | Divu ->
      if b = 0 then raise (Stop (Trapped Division_by_zero)) else to_u32 (a / b)
  | Remu ->
      if b = 0 then raise (Stop (Trapped Division_by_zero))
      else to_u32 (a mod b)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> to_u32 (a lsl (b land 31))
  | Shr -> a lsr (b land 31)
  | Sar -> to_u32 (signed a asr (b land 31))
  | Slt -> if signed a < signed b then 1 else 0
  | Sltu -> if a < b then 1 else 0

let cond_eval c a b =
  match (c : Isa.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> signed a < signed b
  | Ge -> signed a >= signed b
  | Ltu -> a < b
  | Geu -> a >= b

let get m i = if i = 0 then 0 else m.regs.(i)
let set m i v = if i <> 0 then m.regs.(i) <- v

let jump_to m target =
  if target < 0 || target >= Array.length m.code then
    raise (Stop (Trapped (Bad_pc target)))
  else m.pc <- target

let imm32 v = to_u32 (Int32.to_int v land mask32)

let execute m instr =
  let ri r = Isa.reg_index r in
  match (instr : Isa.instr) with
  | Nop -> m.pc <- m.pc + 1
  | Halt -> raise (Stop Halted)
  | Li (rd, imm) ->
      set m (ri rd) (imm32 imm);
      m.pc <- m.pc + 1
  | Alu (op, rd, rs1, rs2) ->
      set m (ri rd) (alu_eval op (get m (ri rs1)) (get m (ri rs2)));
      m.pc <- m.pc + 1
  | Alui (op, rd, rs1, imm) ->
      set m (ri rd) (alu_eval op (get m (ri rs1)) (imm32 imm));
      m.pc <- m.pc + 1
  | Lb (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      set m (ri rd) (load_byte m addr);
      m.pc <- m.pc + 1
  | Lw (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      set m (ri rd) (load_word m addr);
      m.pc <- m.pc + 1
  | Sb (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      store_byte m addr (get m (ri rd));
      m.pc <- m.pc + 1
  | Sw (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      store_word m addr (get m (ri rd));
      m.pc <- m.pc + 1
  | Beq (rs1, rs2, target, c) ->
      if cond_eval c (get m (ri rs1)) (get m (ri rs2)) then jump_to m target
      else m.pc <- m.pc + 1
  | Jmp target -> jump_to m target
  | Jal (rd, target) ->
      set m (ri rd) (m.pc + 1);
      jump_to m target
  | Jr rs ->
      let target = get m (ri rs) in
      jump_to m target

let step m =
  match m.stop with
  | Some _ -> ()
  | None ->
      if m.pc < 0 || m.pc >= Array.length m.code then
        m.stop <- Some (Trapped (Bad_pc m.pc))
      else (
        match m.exec_tracer with
        | Some f ->
            let instr = Array.unsafe_get m.code m.pc in
            m.cyc <- m.cyc + 1;
            f ~cycle:m.cyc instr;
            (try execute m instr with Stop reason -> m.stop <- Some reason)
        | None ->
            (* untraced: dispatch through the compiled code, same as the
               run loops (the closures are bit-identical to [execute]) *)
            let f = Array.unsafe_get m.xcode m.pc in
            m.cyc <- m.cyc + 1;
            (try f m with Stop reason -> m.stop <- Some reason))

let skip_next m =
  match m.stop with
  | Some _ -> ()
  | None ->
      if m.pc < 0 || m.pc >= Array.length m.code then
        m.stop <- Some (Trapped (Bad_pc m.pc))
      else (
        (* the fetched instruction executes as [Nop]: one cycle elapses,
           pc advances, no architectural state changes *)
        m.cyc <- m.cyc + 1;
        m.pc <- m.pc + 1)

(* ------------------------------------------------------------------ *)
(* Closure compilation                                                *)
(* ------------------------------------------------------------------ *)

(* The campaign hot path simulates hundreds of millions of cycles, so
   per-cycle decode — the [Isa.instr] match, operand index lookups,
   [int32] immediate conversions — is a measurable fraction of a whole
   campaign.  Each instruction therefore compiles once, per program,
   into a closure specialised on its operands: register indices,
   immediates and branch targets are resolved at compile time, static
   control transfers are bounds-checked at compile time, and RAM
   loads/stores test the common in-RAM case inline before falling back
   to the full memory system.  The closure observes exactly the
   semantics of [execute] per instruction; [step] keeps the
   interpretive path (it must consult the exec tracer anyway).

   The closure array is indexed by pc and shared by every machine
   forked from the same creation (safe: closures capture no machine).
   A sentinel closure at index [length code] turns falling off the end
   of the program into the same [Bad_pc] trap the stepper raises, so
   the driver loop needs no per-cycle pc bounds check: every compiled
   transfer either validates its target or leaves [pc <= length code],
   and no other pc values are reachable while the machine runs. *)

let compile_instr ~ram_size ~code_len instr =
  let ri = Isa.reg_index in
  let valid t = t >= 0 && t < code_len in
  match (instr : Isa.instr) with
  | Nop -> fun m -> m.pc <- m.pc + 1
  | Halt -> fun _ -> raise (Stop Halted)
  | Li (rd, imm) ->
      let d = ri rd and v = imm32 imm in
      fun m ->
        set m d v;
        m.pc <- m.pc + 1
  | Alu (op, rd, rs1, rs2) -> (
      let d = ri rd and a = ri rs1 and b = ri rs2 in
      match (op : Isa.alu_op) with
      | Add ->
          fun m ->
            set m d (to_u32 (get m a + get m b));
            m.pc <- m.pc + 1
      | Sub ->
          fun m ->
            set m d (to_u32 (get m a - get m b));
            m.pc <- m.pc + 1
      | And ->
          fun m ->
            set m d (get m a land get m b);
            m.pc <- m.pc + 1
      | Or ->
          fun m ->
            set m d (get m a lor get m b);
            m.pc <- m.pc + 1
      | Xor ->
          fun m ->
            set m d (get m a lxor get m b);
            m.pc <- m.pc + 1
      | op ->
          fun m ->
            set m d (alu_eval op (get m a) (get m b));
            m.pc <- m.pc + 1)
  | Alui (op, rd, rs1, imm) -> (
      let d = ri rd and a = ri rs1 and v = imm32 imm in
      match (op : Isa.alu_op) with
      | Add ->
          fun m ->
            set m d (to_u32 (get m a + v));
            m.pc <- m.pc + 1
      | Sub ->
          fun m ->
            set m d (to_u32 (get m a - v));
            m.pc <- m.pc + 1
      | And ->
          fun m ->
            set m d (get m a land v);
            m.pc <- m.pc + 1
      | Or ->
          fun m ->
            set m d (get m a lor v);
            m.pc <- m.pc + 1
      | Xor ->
          fun m ->
            set m d (get m a lxor v);
            m.pc <- m.pc + 1
      | op ->
          fun m ->
            set m d (alu_eval op (get m a) v);
            m.pc <- m.pc + 1)
  | Lb (rd, rs, off) ->
      let d = ri rd and s = ri rs and off = Int32.to_int off in
      fun m ->
        let addr = to_u32 (get m s + off) in
        let v =
          if addr < ram_size then begin
            (match m.tracer with
            | Some f -> f ~cycle:m.cyc ~addr ~width:1 ~kind:Read
            | None -> ());
            Char.code (Bytes.unsafe_get m.ram addr)
          end
          else load_byte m addr
        in
        set m d v;
        m.pc <- m.pc + 1
  | Lw (rd, rs, off) ->
      let d = ri rd and s = ri rs and off = Int32.to_int off in
      fun m ->
        let addr = to_u32 (get m s + off) in
        let v =
          if addr land 3 = 0 && addr + 3 < ram_size then begin
            (match m.tracer with
            | Some f -> f ~cycle:m.cyc ~addr ~width:4 ~kind:Read
            | None -> ());
            let ram = m.ram in
            Char.code (Bytes.unsafe_get ram addr)
            lor (Char.code (Bytes.unsafe_get ram (addr + 1)) lsl 8)
            lor (Char.code (Bytes.unsafe_get ram (addr + 2)) lsl 16)
            lor (Char.code (Bytes.unsafe_get ram (addr + 3)) lsl 24)
          end
          else load_word m addr
        in
        set m d v;
        m.pc <- m.pc + 1
  | Sb (rd, rs, off) ->
      let d = ri rd and s = ri rs and off = Int32.to_int off in
      fun m ->
        let addr = to_u32 (get m s + off) in
        (if addr < ram_size then begin
           (match m.tracer with
           | Some f -> f ~cycle:m.cyc ~addr ~width:1 ~kind:Write
           | None -> ());
           Bytes.unsafe_set m.ram addr (Char.unsafe_chr (get m d land 0xFF))
         end
         else store_byte m addr (get m d));
        m.pc <- m.pc + 1
  | Sw (rd, rs, off) ->
      let d = ri rd and s = ri rs and off = Int32.to_int off in
      fun m ->
        let addr = to_u32 (get m s + off) in
        (if addr land 3 = 0 && addr + 3 < ram_size then begin
           (match m.tracer with
           | Some f -> f ~cycle:m.cyc ~addr ~width:4 ~kind:Write
           | None -> ());
           let v = get m d and ram = m.ram in
           Bytes.unsafe_set ram addr (Char.unsafe_chr (v land 0xFF));
           Bytes.unsafe_set ram (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
           Bytes.unsafe_set ram (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
           Bytes.unsafe_set ram (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
         end
         else store_word m addr (get m d));
        m.pc <- m.pc + 1
  | Beq (rs1, rs2, target, c) ->
      let a = ri rs1 and b = ri rs2 in
      let taken : t -> unit =
        if valid target then fun m -> m.pc <- target
        else fun _ -> raise (Stop (Trapped (Bad_pc target)))
      in
      (match (c : Isa.cond) with
      | Eq -> fun m -> if get m a = get m b then taken m else m.pc <- m.pc + 1
      | Ne -> fun m -> if get m a <> get m b then taken m else m.pc <- m.pc + 1
      | Lt ->
          fun m ->
            if signed (get m a) < signed (get m b) then taken m
            else m.pc <- m.pc + 1
      | Ge ->
          fun m ->
            if signed (get m a) >= signed (get m b) then taken m
            else m.pc <- m.pc + 1
      | Ltu -> fun m -> if get m a < get m b then taken m else m.pc <- m.pc + 1
      | Geu -> fun m -> if get m a >= get m b then taken m else m.pc <- m.pc + 1)
  | Jmp target ->
      if valid target then fun m -> m.pc <- target
      else fun _ -> raise (Stop (Trapped (Bad_pc target)))
  | Jal (rd, target) ->
      let d = ri rd in
      if valid target then fun m ->
        set m d (m.pc + 1);
        m.pc <- target
      else fun m ->
        set m d (m.pc + 1);
        raise (Stop (Trapped (Bad_pc target)))
  | Jr rs ->
      let s = ri rs in
      fun m ->
        let target = get m s in
        if target >= code_len then raise (Stop (Trapped (Bad_pc target)))
        else m.pc <- target

let compile_program (prog : Program.t) =
  let code = prog.Program.code in
  let code_len = Array.length code in
  let ram_size = prog.Program.ram_size in
  Array.init (code_len + 1) (fun i ->
      if i = code_len then fun _ -> raise (Stop (Trapped (Bad_pc code_len)))
      else compile_instr ~ram_size ~code_len code.(i))

let create ?tracer ?exec_tracer prog =
  let regs = Array.make 16 0 in
  List.iter
    (fun (r, v) ->
      let i = Isa.reg_index r in
      if i <> 0 then regs.(i) <- Int32.to_int v land 0xFFFFFFFF)
    prog.Program.reg_init;
  {
    prog;
    code = prog.Program.code;
    xcode = compile_program prog;
    rom = prog.Program.rom;
    ram = Program.initial_ram prog;
    regs;
    pc = 0;
    cyc = 0;
    serial_pre = "";
    serial_pre_len = 0;
    serial = Buffer.create 64;
    events = [];
    stop = None;
    hunt = None;
    serial_trap = Bytes.empty;
    tracer;
    exec_tracer;
  }

(* ------------------------------------------------------------------ *)
(* Recurrence detection                                               *)
(* ------------------------------------------------------------------ *)

let hunt_window0 = 32

let arm_hunt m ~full ~window0 =
  m.hunt <-
    Some
      {
        h_full = full;
        h_serial = false;
        h_pc = m.pc;
        h_regs = (if full then Array.copy m.regs else [||]);
        h_ram = (if full then Bytes.copy m.ram else Bytes.empty);
        h_window = window0;
        h_left = window0;
        h_dist = 0;
        h_stop = false;
      }

(* Bulk stepping for loop analysis: the per-step [try]/bounds overhead
   of [step] is hoisted out, like the run loops do, with the observed
   pc sequence landing in [buf].  Loop detectors are deliberately not
   consulted — the caller is already past detection. *)
let scan_pcs m buf =
  let n = Array.length buf in
  let i = ref 0 in
  (match (m.stop, m.exec_tracer) with
  | Some _, _ -> ()
  | None, Some _ ->
      (* traced machines are off the hot path: plain stepping *)
      while !i < n && m.stop == None do
        buf.(!i) <- m.pc;
        step m;
        incr i
      done
  | None, None -> (
      let xcode = m.xcode in
      try
        while !i < n do
          buf.(!i) <- m.pc;
          let f = Array.unsafe_get xcode m.pc in
          m.cyc <- m.cyc + 1;
          f m;
          incr i
        done
      with Stop reason ->
        m.stop <- Some reason;
        incr i));
  !i

let hunt_loops m = arm_hunt m ~full:true ~window0:hunt_window0

let probe_pc_recurrence ?(window0 = hunt_window0) m =
  arm_hunt m ~full:false ~window0:(max 1 window0)

let loop_proven m =
  match m.hunt with Some h -> h.h_full && h.h_stop | None -> false

let pc_recurrence m =
  match m.hunt with
  | Some h when (not h.h_full) && (not h.h_serial) && h.h_stop -> Some h.h_dist
  | Some _ | None -> None

let state_hash m =
  let h = ref (m.pc + 0x9E3779B9) in
  let regs = m.regs in
  for i = 1 to 15 do
    h := (!h lxor Array.unsafe_get regs i) * 0x01000193 land max_int
  done;
  !h

let trap_serial m ~positions = m.serial_trap <- positions

let take_serial_trap m =
  match m.hunt with
  | Some h when h.h_serial && h.h_stop ->
      m.hunt <- None;
      true
  | Some _ | None -> false

let hunt_step m h =
  if h.h_stop then ()
  else if h.h_left = 0 then begin
    h.h_pc <- m.pc;
    if h.h_full then begin
      Array.blit m.regs 0 h.h_regs 0 16;
      Bytes.blit m.ram 0 h.h_ram 0 (Bytes.length m.ram)
    end;
    h.h_window <- h.h_window * 2;
    h.h_left <- h.h_window;
    h.h_dist <- 0
  end
  else begin
    h.h_left <- h.h_left - 1;
    h.h_dist <- h.h_dist + 1;
    if m.pc = h.h_pc then
      if h.h_full then begin
        let regs = m.regs and tregs = h.h_regs in
        let rec eq i =
          i >= 16
          || (Array.unsafe_get regs i = Array.unsafe_get tregs i && eq (i + 1))
        in
        if eq 0 && Bytes.equal m.ram h.h_ram then h.h_stop <- true
      end
      else h.h_stop <- true
  end

(* ------------------------------------------------------------------ *)
(* Run loops                                                          *)
(* ------------------------------------------------------------------ *)

(* The compiled hot loop.  The pc is always within [0, length code]
   while the machine is unstopped (see [compile_instr]), so the
   closure fetch needs no bounds check; the [Stop] handler is hoisted
   into [run_to] — one handler per span instead of one per cycle. *)
let rec exec_loop m xcode stop_at =
  if m.cyc < stop_at then begin
    let f = Array.unsafe_get xcode m.pc in
    m.cyc <- m.cyc + 1;
    f m;
    match m.hunt with
    | None -> exec_loop m xcode stop_at
    | Some h ->
        hunt_step m h;
        if not h.h_stop then exec_loop m xcode stop_at
  end

(* Machines with an exec tracer (golden analysis) take the stepper so
   the tracer observes every instruction; they run exactly once per
   campaign, off the hot path. *)
let rec traced_loop m stop_at =
  if m.cyc < stop_at && m.stop == None then begin
    step m;
    if m.stop == None then
      match m.hunt with
      | None -> traced_loop m stop_at
      | Some h ->
          hunt_step m h;
          if not h.h_stop then traced_loop m stop_at
  end

let run_to m stop_at =
  match m.stop with
  | Some _ -> ()
  | None -> (
      match m.exec_tracer with
      | None -> (
          try exec_loop m m.xcode stop_at
          with Stop reason -> m.stop <- Some reason)
      | Some _ -> traced_loop m stop_at)

let run m ~limit =
  (* [run] ignores an armed recurrence detector: the detector's clients
     drive bounded spans with [run_until] (see the .mli contract). *)
  let saved = m.hunt in
  m.hunt <- None;
  run_to m limit;
  m.hunt <- saved;
  match m.stop with
  | Some reason -> reason
  | None ->
      m.stop <- Some Cycle_limit;
      Cycle_limit

let run_until m ~cycle = run_to m cycle

let fork ?tracer m =
  let serial = Buffer.create (Buffer.length m.serial + 64) in
  Buffer.add_buffer serial m.serial;
  {
    m with
    ram = Bytes.copy m.ram;
    regs = Array.copy m.regs;
    serial;
    hunt = None;
    serial_trap = Bytes.empty;
    tracer;
    exec_tracer = None;
  }


module Snapshot = struct
  type machine = t

  type t = {
    s_prog : Program.t;
    s_xcode : (machine -> unit) array; (* shared, compiled once per program *)
    s_ram : bytes;
    s_regs : int array;
    s_pc : int;
    s_cyc : int;
    s_serial_pre : string; (* immutable shared prefix *)
    s_serial_pre_len : int; (* live bytes of [s_serial_pre] *)
    s_serial_tail : string; (* bytes past the prefix at capture time *)
    s_events : (int * int32) list;
    s_event_count : int;
    s_stop : stop_reason option;
  }

  let capture (m : machine) =
    {
      s_prog = m.prog;
      s_xcode = m.xcode;
      s_ram = Bytes.copy m.ram;
      s_regs = Array.copy m.regs;
      s_pc = m.pc;
      s_cyc = m.cyc;
      s_serial_pre = m.serial_pre;
      s_serial_pre_len = m.serial_pre_len;
      s_serial_tail = Buffer.contents m.serial;
      s_events = m.events;
      s_event_count = List.length m.events;
      s_stop = m.stop;
    }

  let restore s ~tracer : machine =
    let serial = Buffer.create (String.length s.s_serial_tail + 64) in
    Buffer.add_string serial s.s_serial_tail;
    {
      prog = s.s_prog;
      code = s.s_prog.Program.code;
      xcode = s.s_xcode;
      rom = s.s_prog.Program.rom;
      ram = Bytes.copy s.s_ram;
      regs = Array.copy s.s_regs;
      pc = s.s_pc;
      cyc = s.s_cyc;
      serial_pre = s.s_serial_pre;
      serial_pre_len = s.s_serial_pre_len;
      serial;
      events = s.s_events;
      stop = s.s_stop;
      hunt = None;
      serial_trap = Bytes.empty;
      tracer;
      exec_tracer = None;
    }

  let cycle s = s.s_cyc
  let serial_length s = s.s_serial_pre_len + String.length s.s_serial_tail
  let event_count s = s.s_event_count
end

let run_checkpointed m ~stride ~limit =
  if stride <= 0 then
    invalid_arg "Machine.run_checkpointed: stride must be positive";
  let marks = ref [] in
  let rec go () =
    let next = m.cyc + stride in
    if next >= limit then run m ~limit
    else begin
      run_until m ~cycle:next;
      match m.stop with
      | Some r -> r
      | None ->
          marks :=
            ( Bytes.copy m.ram,
              Array.copy m.regs,
              m.pc,
              m.cyc,
              serial_length m,
              m.events,
              List.length m.events )
            :: !marks;
          go ()
    end
  in
  let stop = go () in
  (* Serial state was recorded as a length watermark; resolve every
     checkpoint against the run's final output (serial output is
     append-only, so the first [mark] bytes are the capture-time
     content), sharing one string across the whole ladder. *)
  let full = serial_output m in
  let snaps =
    List.rev_map
      (fun (ram, regs, pc, cyc, mark, events, evn) ->
        {
          Snapshot.s_prog = m.prog;
          s_xcode = m.xcode;
          s_ram = ram;
          s_regs = regs;
          s_pc = pc;
          s_cyc = cyc;
          s_serial_pre = full;
          s_serial_pre_len = mark;
          s_serial_tail = "";
          s_events = events;
          s_event_count = evn;
          s_stop = None;
        })
      !marks
  in
  (stop, Array.of_list snaps)

(* Shared by [converges_with] (which additionally requires equal cycle
   counts) and [rendezvous_with] (which deliberately does not: a
   cycle-shifted run replays the golden tail just the same — only its
   cycle numbering differs). *)
let state_agrees m (s : Snapshot.t) ~ram_live ~reg_mask =
  m.pc = s.Snapshot.s_pc
  && (match (m.stop, s.Snapshot.s_stop) with
     | None, None -> true
     | _, _ -> false)
  && (let sregs = s.Snapshot.s_regs in
      let regs = m.regs in
      let rec go r =
        r >= 16
        || ((reg_mask land (1 lsl r) = 0
            || Array.unsafe_get regs r = Array.unsafe_get sregs r)
           && go (r + 1))
      in
      go 1)
  &&
  let sram = s.Snapshot.s_ram in
  let ram = m.ram in
  let n = Array.length ram_live in
  let rec go i =
    i >= n
    ||
    let b = Array.unsafe_get ram_live i in
    Char.equal (Bytes.unsafe_get ram b) (Bytes.unsafe_get sram b) && go (i + 1)
  in
  go 0

let converges_with m (s : Snapshot.t) ~ram_live ~reg_mask =
  m.cyc = s.Snapshot.s_cyc && state_agrees m s ~ram_live ~reg_mask

let rendezvous_with m (s : Snapshot.t) ~ram_live ~reg_mask =
  state_agrees m s ~ram_live ~reg_mask
