(* Sound non-termination proofs for loop-bound faulty runs.

   Fault campaigns spend a large share of their simulated cycles on
   runs whose corrupted loop bound or round counter sends them spinning
   until the watchdog: the drifting state (a chaotically "churned"
   accumulator, a counter stepping past its exit value) defeats exact
   state-recurrence detection, so those runs simulate tens of
   thousands of cycles each just to be classified Timeout.

   This module proves, from a machine parked at a loop head, that the
   run cannot stop before a given cycle limit — in which case the
   caller may classify it exactly as the watchdog would.  The proof is
   a one-period abstract interpretation:

   1. Find the loop period [p] by stepping to the first return of the
      current pc, then record one full period concretely: the pc
      sequence and every memory access (address, width), noting each
      touched RAM cell's value before and after the period.
   2. Build a per-cell model from the observed period delta: Const
      (unchanged), Affine (value b + k·d at period k — an exact,
      non-wrapping linear recurrence hypothesis), or Opaque (anything).
      The observed delta is only a hypothesis; soundness comes from
      step 3.
   3. Execute the recorded period once abstractly over
      {Const, Affine, Bounded, Opaque} values.  The proof succeeds iff
      every branch outcome is decided constant for all periods within
      the horizon, every memory address is exact (or provably confined
      to RAM and aligned), no instruction can trap, and the period's
      end state reproduces the model advanced by one period.  By
      induction the machine then executes the same pc sequence for the
      whole horizon without stopping.

   Serial output and detection events emitted inside the loop are not
   modelled: the proof's only legitimate use is classifying the run as
   [Cycle_limit], an outcome that depends on neither. *)

type abs =
  | Const of int (* exact unsigned 32-bit value, the same every period *)
  | Affine of int * int
      (* (b, d): exactly b + k·d at period k; validated non-wrapping
         over the horizon, d <> 0 *)
  | Bounded of int * int * int
      (* (lo, hi, step): some value in {lo, lo+step, …} ∩ [lo, hi];
         may differ from period to period *)
  | Opaque

exception Abort
exception Restart

let abort () = raise Abort

let two32 = 0x1_0000_0000
let fits v = v >= 0 && v < two32
let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let gcd a b = max 1 (gcd (abs a) (abs b))

(* Smart constructors: anything unrepresentable degrades to Opaque. *)

let affine ~k_max b d =
  if d = 0 then if fits b then Const b else Opaque
  else
    let e = b + (k_max * d) in
    if fits b && fits e then Affine (b, d)
    else if b < 0 && e < 0 && b + two32 >= 0 && e + two32 >= 0 then
      (* uniformly negative: the 32-bit representation is the same
         affine sequence shifted by 2^32 *)
      Affine (b + two32, d)
    else Opaque

let bounded lo hi step =
  if lo = hi && fits lo then Const lo
  else if fits lo && fits hi && lo < hi then Bounded (lo, hi, max 1 step)
  else Opaque

(* Exact affine view (b, d), if any. *)
let lin = function
  | Const v -> Some (v, 0)
  | Affine (b, d) -> Some (b, d)
  | Bounded _ | Opaque -> None

(* Enclosing interval with a stride witness: every attainable value is
   in [lo, hi] and ≡ lo (mod step). *)
let interval ~k_max = function
  | Const v -> Some (v, v, 1)
  | Affine (b, d) ->
      let e = b + (k_max * d) in
      if d > 0 then Some (b, e, d) else Some (e, b, -d)
  | Bounded (l, h, s) -> Some (l, h, s)
  | Opaque -> None

let mul_exact x y =
  if x = 0 || y = 0 then Some 0
  else
    let p = x * y in
    if p / x = y then Some p else None

(* ------------------------------------------------------------------ *)
(* Branch decision                                                    *)
(* ------------------------------------------------------------------ *)

(* Integer views for comparisons: either an exact affine sequence in k
   or a plain interval, over ℤ (no wrapping — enforced upstream). *)
type zview = Lin of int * int | Rng of int * int

let zbounds ~k_max = function
  | Lin (b, d) ->
      let e = b + (k_max * d) in
      (min b e, max b e)
  | Rng (l, h) -> (l, h)

let zview_u ~k_max v =
  match lin v with
  | Some (b, d) -> Some (Lin (b, d))
  | None -> (
      match interval ~k_max v with
      | Some (l, h, _) -> Some (Rng (l, h))
      | None -> None)

let zshift delta = function
  | Lin (b, d) -> Lin (b + delta, d)
  | Rng (l, h) -> Rng (l + delta, h + delta)

(* Signed view: valid only when the whole range sits on one side of the
   sign boundary, where the signed value is the unsigned one (or
   uniformly shifted by −2^32) — still affine / an interval in ℤ. *)
let zview_s ~k_max v =
  match zview_u ~k_max v with
  | None -> None
  | Some z ->
      let lo, hi = zbounds ~k_max z in
      if hi < 0x8000_0000 then Some z
      else if lo >= 0x8000_0000 then Some (zshift (-two32) z)
      else None

(* a < b for every period in the horizon: Some true/false if constant,
   None if it can change (or is undecidable). *)
let zlt ~k_max a b =
  match (a, b) with
  | Lin (b1, d1), Lin (b2, d2) ->
      (* exact difference — handles correlated operands *)
      let db = b1 - b2 and dd = d1 - d2 in
      let e0 = db and e1 = db + (k_max * dd) in
      if e0 < 0 && e1 < 0 then Some true
      else if e0 >= 0 && e1 >= 0 then Some false
      else None
  | _ ->
      let alo, ahi = zbounds ~k_max a and blo, bhi = zbounds ~k_max b in
      if ahi < blo then Some true
      else if alo >= bhi then Some false
      else None

let zeq ~k_max a b =
  match (a, b) with
  | Lin (b1, d1), Lin (b2, d2) ->
      let db = b1 - b2 and dd = d1 - d2 in
      if db = 0 && dd = 0 then Some true
      else if dd = 0 then Some false
      else
        (* equal only at k* = −db/dd, if that is an integer in range *)
        let hits = db mod dd = 0 && -(db / dd) >= 0 && -(db / dd) <= k_max in
        if hits then None else Some false
  | _ ->
      let alo, ahi = zbounds ~k_max a and blo, bhi = zbounds ~k_max b in
      if ahi < blo || bhi < alo then Some false else None

let decide ~k_max (c : Isa.cond) a b =
  let u f = match (zview_u ~k_max a, zview_u ~k_max b) with
    | Some za, Some zb -> f za zb
    | _ -> None
  and s f = match (zview_s ~k_max a, zview_s ~k_max b) with
    | Some za, Some zb -> f za zb
    | _ -> None
  in
  match c with
  | Eq -> u (zeq ~k_max)
  | Ne -> Option.map not (u (zeq ~k_max))
  | Ltu -> u (zlt ~k_max)
  | Geu -> Option.map not (u (zlt ~k_max))
  | Lt -> s (zlt ~k_max)
  | Ge -> Option.map not (s (zlt ~k_max))

(* ------------------------------------------------------------------ *)
(* Abstract ALU                                                       *)
(* ------------------------------------------------------------------ *)

let add_const ~k_max v c =
  match lin v with
  | Some (b, d) -> affine ~k_max (b + c) d
  | None -> (
      match interval ~k_max v with
      | Some (l, h, s) -> bounded (l + c) (h + c) s
      | None -> Opaque)

let add_abs ~k_max a b =
  match (lin a, lin b) with
  | Some (b1, d1), Some (b2, d2) -> affine ~k_max (b1 + b2) (d1 + d2)
  | _ -> (
      match (a, b) with
      (* a constant only shifts the other operand — keep its stride *)
      | Const c, v | v, Const c -> add_const ~k_max v c
      | _ -> (
          match (interval ~k_max a, interval ~k_max b) with
          | Some (l1, h1, s1), Some (l2, h2, s2) ->
              bounded (l1 + l2) (h1 + h2) (gcd s1 s2)
          | _ -> Opaque))

let sub_abs ~k_max a b =
  match (lin a, lin b) with
  | Some (b1, d1), Some (b2, d2) -> affine ~k_max (b1 - b2) (d1 - d2)
  | _ -> (
      match (a, b) with
      | v, Const c -> add_const ~k_max v (-c)
      | Const c, v -> (
          match interval ~k_max v with
          | Some (l, h, s) -> bounded (c - h) (c - l) s
          | None -> Opaque)
      | _ -> (
          match (interval ~k_max a, interval ~k_max b) with
          | Some (l1, h1, s1), Some (l2, h2, s2) ->
              bounded (l1 - h2) (h1 - l2) (gcd s1 s2)
          | _ -> Opaque))

let mul_abs ~k_max a b =
  let by_const c v =
    if c < 0 then Opaque
    else
      match lin v with
      | Some (b, d) -> (
          match (mul_exact c b, mul_exact c d) with
          | Some b', Some d' -> affine ~k_max b' d'
          | _ -> Opaque)
      | None -> (
          match interval ~k_max v with
          | Some (l, h, s) -> (
              match (mul_exact c l, mul_exact c h, mul_exact c s) with
              | Some l', Some h', Some s' -> bounded l' h' s'
              | _ -> Opaque)
          | None -> Opaque)
  in
  match (a, b) with
  | Const x, v | v, Const x -> by_const x v
  | _ -> Opaque

(* Division and remainder can trap: the divisor must be provably
   nonzero for the whole horizon. *)
let check_divisor ~k_max b =
  match interval ~k_max b with
  | Some (lo, _, _) when lo > 0 -> ()
  | Some _ | None -> abort ()

let div_abs ~k_max a b =
  check_divisor ~k_max b;
  match (a, b) with
  | Const x, Const y -> Const (x / y)
  | _, Const y -> (
      match interval ~k_max a with
      | Some (l, h, _) -> bounded (l / y) (h / y) 1
      | None -> Opaque)
  | _ -> Opaque

let rem_abs ~k_max a b =
  check_divisor ~k_max b;
  match (a, b) with
  | Const x, Const y -> Const (x mod y)
  | _ -> (
      match interval ~k_max b with
      | Some (_, hi, _) -> bounded 0 (hi - 1) 1
      | None -> Opaque (* unreachable: check_divisor needs an interval *))

let hi_bound ~k_max v =
  match interval ~k_max v with Some (_, h, _) -> Some h | None -> None

let and_abs ~k_max a b =
  match (a, b) with
  | Const x, Const y -> Const (x land y)
  | Const mask, v | v, Const mask ->
      if mask = 0 then Const 0
      else
        (* masking clears the bits below the mask's lowest set bit, so
           the result is a multiple of it — the stride witness that
           keeps masked word addresses provably aligned *)
        let h =
          match hi_bound ~k_max v with Some h -> min mask h | None -> mask
        in
        bounded 0 h (mask land -mask)
  | _ -> (
      match (hi_bound ~k_max a, hi_bound ~k_max b) with
      | Some ha, Some hb -> bounded 0 (min ha hb) 1
      | Some h, None | None, Some h -> bounded 0 h 1
      | None, None -> Opaque)

let bits_above v =
  let rec go m = if m >= v then m else go ((m * 2) + 1) in
  go 0

let orx_abs ~k_max exact a b =
  match (a, b) with
  | Const x, Const y -> Const (exact x y)
  | _ -> (
      match (hi_bound ~k_max a, hi_bound ~k_max b) with
      | Some ha, Some hb -> bounded 0 (bits_above (max ha hb)) 1
      | _ -> Opaque)

let shl_abs ~k_max a b =
  match b with
  | Const s ->
      let s = s land 31 in
      mul_abs ~k_max (Const (1 lsl s)) a
  | _ -> Opaque

let shr_abs ~k_max a b =
  match (a, b) with
  | Const x, Const s -> Const (x lsr (s land 31))
  | _, Const s -> (
      let s = s land 31 in
      match interval ~k_max a with
      | Some (l, h, _) -> bounded (l lsr s) (h lsr s) 1
      | None -> Opaque)
  | _ -> Opaque

let signed_const v = if v land 0x8000_0000 <> 0 then v - two32 else v

let setcc_abs ~k_max c a b =
  match decide ~k_max c a b with
  | Some true -> Const 1
  | Some false -> Const 0
  | None -> bounded 0 1 1

let alu_abs ~k_max (op : Isa.alu_op) a b =
  match op with
  | Add -> add_abs ~k_max a b
  | Sub -> sub_abs ~k_max a b
  | Mul -> mul_abs ~k_max a b
  | Divu -> div_abs ~k_max a b
  | Remu -> rem_abs ~k_max a b
  | And -> and_abs ~k_max a b
  | Or -> orx_abs ~k_max ( lor ) a b
  | Xor -> orx_abs ~k_max ( lxor ) a b
  | Shl -> shl_abs ~k_max a b
  | Shr -> shr_abs ~k_max a b
  | Sar -> (
      match (a, b) with
      | Const x, Const s ->
          Const ((signed_const x asr (s land 31)) land 0xFFFFFFFF)
      | _ -> Opaque)
  | Slt -> setcc_abs ~k_max Lt a b
  | Sltu -> setcc_abs ~k_max Ltu a b

(* ------------------------------------------------------------------ *)
(* The prover                                                         *)
(* ------------------------------------------------------------------ *)

let max_period = 2048

(* One tracked RAM cell, at the granularity it is accessed with. *)
type cell = {
  c_addr : int;
  c_width : int;
  mutable c_pre : int; (* concrete value at the period's start *)
  mutable c_model : abs;
  mutable c_cur : abs;
  mutable c_poison : bool; (* overlapping mixed-granularity access *)
  mutable c_live : bool; (* first access in the period is a read *)
}

let imm32 v = Int32.to_int v land 0xFFFFFFFF

let attempt m ~limit ~fuel ~scan_cap =
  let prog = Machine.program m in
  let code = prog.Program.code in
  let ram_size = prog.Program.ram_size in
  let ri = Isa.reg_index in
  let regv r = Int32.to_int (Machine.reg m r) land 0xFFFFFFFF in
  let read_cell addr width =
    if width = 1 then Machine.read_ram_byte m addr
    else
      Machine.read_ram_byte m addr
      lor (Machine.read_ram_byte m (addr + 1) lsl 8)
      lor (Machine.read_ram_byte m (addr + 2) lsl 16)
      lor (Machine.read_ram_byte m (addr + 3) lsl 24)
  in
  let burn () =
    decr fuel;
    if !fuel < 0 then abort ();
    Machine.step m;
    if Machine.stopped m <> None then abort ()
  in
  (* 1. Scan a window of execution and pick the outermost stable loop.
     Anchoring at the first pc revisit would latch onto the innermost
     loop — whose branches legitimately flip when it exits — while the
     non-termination often lives in an enclosing loop.  In the scan,
     inner-loop pcs recur with short gaps and an enclosing loop's body
     pcs recur once per full iteration, so: prefer pcs whose last three
     visits are evenly spaced (a stable period; filters out one-off
     entry-path pcs), and among those take the longest period. *)
  let code_len = Array.length code in
  let scan = min (min scan_cap max_period) !fuel in
  if scan < 8 then abort ();
  let buf = Array.make scan 0 in
  let taken = Machine.scan_pcs m buf in
  fuel := !fuel - taken;
  if taken < scan then abort ();
  let occ1 = Array.make code_len (-1) (* latest visit index *)
  and occ2 = Array.make code_len (-1)
  and occ3 = Array.make code_len (-1) in
  for i = 0 to scan - 1 do
    let pc = buf.(i) in
    if pc >= 0 && pc < code_len then begin
      occ3.(pc) <- occ2.(pc);
      occ2.(pc) <- occ1.(pc);
      occ1.(pc) <- i
    end
  done;
  let anchor = ref (-1) and best = ref 0 and best_stable = ref false in
  for pc = 0 to code_len - 1 do
    if occ2.(pc) >= 0 then begin
      let g = occ1.(pc) - occ2.(pc) in
      let st = occ3.(pc) >= 0 && occ2.(pc) - occ3.(pc) = g in
      if
        (st && not !best_stable)
        || (st = !best_stable && g > !best)
      then begin
        anchor := pc;
        best := g;
        best_stable := st
      end
    end
  done;
  if !anchor < 0 then abort ();
  let p0 = !anchor and period = !best in
  (* Step to the anchor's next visit — at most one period away while
     the loop is still live. *)
  let rec align k =
    if Machine.pc m <> p0 then
      if k > period + 8 then abort ()
      else begin
        burn ();
        align (k + 1)
      end
  in
  align 0;
  (* 2. Record one period concretely. *)
  let pcs = Array.make period 0 in
  let addrs = Array.make period (-1) in
  let cells : (int, cell) Hashtbl.t = Hashtbl.create 64 in
  let owner : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let touch addr width ~is_load =
    let key = (addr lsl 1) lor (if width = 4 then 1 else 0) in
    (if not (Hashtbl.mem cells key) then begin
       let c =
         {
           c_addr = addr;
           c_width = width;
           c_pre = read_cell addr width;
           c_model = Opaque;
           c_cur = Opaque;
           c_poison = false;
           c_live = is_load;
         }
       in
       Hashtbl.add cells key c;
       for b = addr to addr + width - 1 do
         match Hashtbl.find_opt owner b with
         | None -> Hashtbl.add owner b key
         | Some key' when key' <> key ->
             c.c_poison <- true;
             (Hashtbl.find cells key').c_poison <- true
         | Some _ -> ()
       done
     end)
  in
  let regs2 = Array.init 16 (fun i -> if i = 0 then 0 else regv (Isa.reg i)) in
  for i = 0 to period - 1 do
    let pc = Machine.pc m in
    pcs.(i) <- pc;
    (if pc >= 0 && pc < Array.length code then
       match code.(pc) with
       | Isa.Lb (_, rs, off) ->
           let addr = (regv rs + Int32.to_int off) land 0xFFFFFFFF in
           addrs.(i) <- addr;
           if addr + 1 <= ram_size then touch addr 1 ~is_load:true
       | Isa.Sb (_, rs, off) ->
           let addr = (regv rs + Int32.to_int off) land 0xFFFFFFFF in
           addrs.(i) <- addr;
           if addr + 1 <= ram_size then touch addr 1 ~is_load:false
       | Isa.Lw (_, rs, off) ->
           let addr = (regv rs + Int32.to_int off) land 0xFFFFFFFF in
           addrs.(i) <- addr;
           if addr + 4 <= ram_size then touch addr 4 ~is_load:true
       | Isa.Sw (_, rs, off) ->
           let addr = (regv rs + Int32.to_int off) land 0xFFFFFFFF in
           addrs.(i) <- addr;
           if addr + 4 <= ram_size then touch addr 4 ~is_load:false
       | _ -> ());
    burn ()
  done;
  if Machine.pc m <> p0 then abort ();
  (* 3. Models from the observed period delta (hypotheses only — the
     abstract run below is what validates them). *)
  let remaining = limit - Machine.cycle m in
  if remaining <= 0 then abort () (* nothing left to prove *)
  else begin
    let k_max = (remaining / period) + 1 in
    (* The induction only constrains registers the period reads before
       writing (its live-in set): a scratch register is rewritten from
       fresh values every period, so its start-of-period value is
       irrelevant — model it Opaque and exempt it from the end-of-period
       consistency check. *)
    let reg_live = Array.make 16 false in
    let () =
      let written = Array.make 16 false in
      for i = 0 to period - 1 do
        let pc = pcs.(i) in
        if pc >= 0 && pc < code_len then begin
          let writes, reads = Isa.defs_uses code.(pc) in
          List.iter
            (fun r ->
              let j = ri r in
              if not written.(j) then reg_live.(j) <- true)
            reads;
          List.iter (fun r -> written.(ri r) <- true) writes
        end
      done
    in
    let reg_model =
      Array.init 16 (fun i ->
          if i = 0 then Const 0
          else if not reg_live.(i) then Opaque
          else
            let v3 = regv (Isa.reg i) in
            affine ~k_max v3 (v3 - regs2.(i)))
    in
    Hashtbl.iter
      (fun _ c ->
        if c.c_poison || not c.c_live then c.c_model <- Opaque
        else begin
          let v3 = read_cell c.c_addr c.c_width in
          c.c_model <- affine ~k_max v3 (v3 - c.c_pre)
        end;
        c.c_cur <- c.c_model)
      cells;
    (* 4. Abstract execution of the recorded period.  A store through a
       varying (affine-swept) address may clobber tracked cells — e.g. a
       round loop appending to [out[c]] with [c] advancing each period.
       When that happens the overlapped cells' models are demoted to
       Opaque and the pass restarts with the weaker models; poisoning is
       monotone, so the fixpoint is reached in at most #cells passes. *)
    let abstract_pass () =
      let regs_abs = Array.copy reg_model in
      Hashtbl.iter (fun _ c -> c.c_cur <- c.c_model) cells;
      let aval i = if i = 0 then Const 0 else regs_abs.(i) in
      let aset i v = if i <> 0 then regs_abs.(i) <- v in
      let cell_at addr width =
        match
          Hashtbl.find_opt cells ((addr lsl 1) lor (if width = 4 then 1 else 0))
        with
        | Some c -> c
        | None -> abort ()
      in
      let addr_abs rs off = add_const ~k_max (aval (ri rs)) (Int32.to_int off) in
      let load_abs i width rs off =
        match addr_abs rs off with
        | Const a ->
            if a <> addrs.(i) then abort ();
            if a + width <= ram_size then begin
              let c = cell_at a width in
              if c.c_poison then Opaque else c.c_cur
            end
            else if a >= Memmap.rom_base && a + width <= Memmap.rom_limit
            then begin
              let rom = prog.Program.rom in
              let b j =
                let o = a - Memmap.rom_base + j in
                if o < Bytes.length rom then Char.code (Bytes.get rom o) else 0
              in
              if width = 1 then Const (b 0)
              else Const (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24))
            end
            else (
              match Memmap.classify ~ram_size a with
              | Memmap.Mmio -> Const 0
              | Memmap.Ram | Memmap.Rom | Memmap.Unmapped -> abort ())
        | v -> (
            (* varying address: sound only if provably confined to RAM
               (and aligned, for words) for the whole horizon *)
            match interval ~k_max v with
            | Some (lo, hi, step)
              when lo >= 0
                   && hi + width <= ram_size
                   && (width = 1 || (lo land 3 = 0 && step land 3 = 0)) ->
                Opaque
            | _ -> abort ())
      in
      let store_abs i width rs off value =
        match addr_abs rs off with
        | Const a ->
            if a <> addrs.(i) then abort ();
            if a + width <= ram_size then begin
              let c = cell_at a width in
              if not c.c_poison then c.c_cur <- value
            end
            else if a = Memmap.panic_port then abort ()
            else (
              match Memmap.classify ~ram_size a with
              | Memmap.Mmio -> () (* serial/detect: irrelevant to Cycle_limit *)
              | Memmap.Ram | Memmap.Rom | Memmap.Unmapped -> abort ())
        | v -> (
            match interval ~k_max v with
            | Some (lo, hi, step)
              when lo >= 0
                   && hi + width <= ram_size
                   && (width = 1 || (lo land 3 = 0 && step land 3 = 0)) ->
                (* in-RAM aligned sweep: sound iff no tracked cell keeps
                   a non-trivial model the sweep could invalidate *)
                let dirty = ref false in
                Hashtbl.iter
                  (fun _ c ->
                    if
                      (not c.c_poison)
                      && c.c_addr <= hi + width - 1
                      && lo <= c.c_addr + c.c_width - 1
                    then begin
                      c.c_poison <- true;
                      c.c_model <- Opaque;
                      dirty := true
                    end)
                  cells;
                if !dirty then raise Restart
            | Some _ | None -> abort ())
      in
      for i = 0 to period - 1 do
        let pc = pcs.(i) in
        let next = if i + 1 < period then pcs.(i + 1) else p0 in
        match code.(pc) with
        | Isa.Nop | Isa.Jmp _ -> ()
        | Isa.Halt -> abort () (* cannot occur in a trace that ran *)
        | Isa.Li (rd, imm) -> aset (ri rd) (Const (imm32 imm))
        | Isa.Alu (op, rd, a, b) ->
            aset (ri rd) (alu_abs ~k_max op (aval (ri a)) (aval (ri b)))
        | Isa.Alui (op, rd, a, imm) ->
            aset (ri rd) (alu_abs ~k_max op (aval (ri a)) (Const (imm32 imm)))
        | Isa.Lb (rd, rs, off) -> aset (ri rd) (load_abs i 1 rs off)
        | Isa.Lw (rd, rs, off) -> aset (ri rd) (load_abs i 4 rs off)
        | Isa.Sb (rd, rs, off) -> store_abs i 1 rs off (aval (ri rd))
        | Isa.Sw (rd, rs, off) -> store_abs i 4 rs off (aval (ri rd))
        | Isa.Beq (a, b, target, c) -> (
            let expected = next = target in
            if target = pc + 1 then () (* both arms agree *)
            else
              match decide ~k_max c (aval (ri a)) (aval (ri b)) with
              | Some t when t = expected -> ()
              | Some _ | None -> abort ())
        | Isa.Jal (rd, _) -> aset (ri rd) (Const (pc + 1))
        | Isa.Jr rs -> (
            match aval (ri rs) with
            | Const t when t = next -> ()
            | _ -> abort ())
      done;
      (* 5. The period's end state must be the model advanced one period. *)
      let consistent model cur =
        match model with
        | Opaque -> true
        | Const v -> ( match cur with Const v' -> v' = v | _ -> false)
        | Affine (b, d) -> (
            match cur with Affine (b', d') -> d' = d && b' = b + d | _ -> false)
        | Bounded _ -> false (* never constructed as a model *)
      in
      for r = 1 to 15 do
        if not (consistent reg_model.(r) regs_abs.(r)) then abort ()
      done;
      Hashtbl.iter
        (fun _ c -> if not (consistent c.c_model c.c_cur) then abort ())
        cells
    in
    let rec fixpoint () =
      match abstract_pass () with () -> () | exception Restart -> fixpoint ()
    in
    fixpoint ()
  end

let prove_no_halt m ~limit =
  match Machine.stopped m with
  | Some _ -> false
  | None ->
      let fuel = ref (min 8192 (max 64 (limit - Machine.cycle m))) in
      (* Most loops are short: a cheap first attempt with a small scan
         window proves them at a fraction of the full window's cost,
         and a failure only spends those few hundred (real, resumable)
         cycles before the wide attempts run. *)
      let rec attempts = function
        | [] -> false
        | scan_cap :: rest -> (
            match attempt m ~limit ~fuel ~scan_cap with
            | () -> true
            | exception Abort ->
                Machine.stopped m = None && !fuel > 0 && attempts rest)
      in
      attempts [ 256; max_period; max_period ]
