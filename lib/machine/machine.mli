(** The deterministic machine simulator.

    This is the substrate the paper assumes (Section II-C): a simple RISC
    CPU with classic in-order execution, no caches, a wait-free main
    memory, one cycle per instruction, executing its program from
    fault-immune ROM.  Benchmark runs are fully deterministic: the same
    program and initial state produce the exact same instruction and
    memory-access sequence, and the machine can be paused at an arbitrary
    cycle to inject a fault (flip a RAM bit) and resumed afterwards.

    Cycle numbering: the [t]-th executed instruction (1-indexed) executes
    *at* cycle [t].  A fault at coordinate [(t, bit)] is injected after
    [t−1] instructions have executed, i.e. immediately before instruction
    [t]; see {!Fi_trace.Coordspace} for the geometry. *)

(** CPU traps (abnormal termination causes). *)
type trap =
  | Misaligned_access of int  (** Word access to a non-4-aligned address. *)
  | Unmapped_access of int    (** Access outside RAM, ROM and MMIO. *)
  | Rom_write of int          (** Store into the ROM window. *)
  | Division_by_zero
  | Bad_pc of int             (** Control transfer outside the code. *)

val pp_trap : Format.formatter -> trap -> unit

(** Why a run stopped. *)
type stop_reason =
  | Halted              (** The program executed [halt] — normal exit. *)
  | Trapped of trap     (** CPU exception. *)
  | Panicked of int32   (** Software fail-stop via the panic MMIO port. *)
  | Cycle_limit         (** Watchdog: the cycle budget was exhausted. *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit

type access_kind = Read | Write

type tracer = cycle:int -> addr:int -> width:int -> kind:access_kind -> unit
(** Called once per RAM access (ROM and MMIO accesses are not part of the
    fault space and are not traced).  [addr] is the RAM byte offset of the
    first byte touched; [width] is 1 or 4. *)

type exec_tracer = cycle:int -> Isa.instr -> unit
(** Called once per executed instruction, before it executes.  Used by the
    register fault-space extension (Section VI-B of the paper) to derive
    per-cycle register def/use sets. *)

type t
(** A machine instance. *)

val create : ?tracer:tracer -> ?exec_tracer:exec_tracer -> Program.t -> t
(** [create program] is a machine reset to the program's initial state:
    [pc = 0], registers zero, RAM zeroed then initialised from
    [program.ram_init].  The optional [tracer] observes every RAM access;
    [exec_tracer] observes every executed instruction. *)

val program : t -> Program.t
val cycle : t -> int
(** Number of instructions executed so far. *)

val pc : t -> int
val stopped : t -> stop_reason option
val serial_output : t -> string
(** Bytes written to the serial port so far.  Machines restored from a
    {!Snapshot} share their pre-restore serial history as an immutable
    prefix, so this materialises a fresh string; call it once per
    classification, not per cycle. *)

val serial_length : t -> int
(** [String.length (serial_output m)], without materialising the
    output. *)

val serial_agrees : t -> prefix:string -> len:int -> bool
(** [serial_agrees m ~prefix ~len] is
    [String.equal (serial_output m) (String.sub prefix 0 len)], computed
    without materialising the output when the machine's shared serial
    prefix is physically [prefix] (the common case for machines restored
    from a golden checkpoint ladder). *)

val detection_events : t -> (int * int32) list
(** Detection events [(cycle, code)] recorded through the detect port, in
    chronological order.  By convention the kernel writes
    {!Event_codes.corrected} when a fault-tolerance mechanism repaired an error
    and {!Event_codes.detected} when it only detected one. *)

val event_count : t -> int
(** [List.length (detection_events m)], without the reversal copy. *)

val reg : t -> Isa.reg -> int32
(** Current register value ([r0] always reads 0). *)

val set_reg : t -> Isa.reg -> int32 -> unit
(** Poke a register (used by tests; not by campaigns). *)

val read_ram_byte : t -> int -> int
(** [read_ram_byte m off] inspects RAM without tracing.

    @raise Invalid_argument outside RAM. *)

val write_ram_byte : t -> int -> int -> unit
(** Poke RAM without tracing (used by tests). *)

val flip_bit : t -> int -> unit
(** [flip_bit m bit] flips RAM bit [bit] (byte [bit / 8], bit
    [bit mod 8]) — the fault-injection primitive.  Not traced: a fault is
    not a program memory access.

    @raise Invalid_argument outside RAM. *)

val flip_reg_bit : t -> reg:int -> bit:int -> unit
(** [flip_reg_bit m ~reg ~bit] flips bit [bit] (0–31) of register [reg]
    (1–15) — the injection primitive of the register fault-space
    extension.  Flips of [r0] are rejected: it is hardwired to zero.

    @raise Invalid_argument outside the register file. *)

val step : t -> unit
(** Execute one instruction (no-op if the machine has stopped). *)

val skip_next : t -> unit
(** Execute the next fetched instruction as if it were [Nop]: one cycle
    elapses and pc advances, but no architectural state changes — the
    instruction-skip fault-injection primitive ([Faultspace.Skip]).
    Subsequent instructions shift one slot earlier in time, exactly the
    divergent control flow the replay/convergence machinery already
    handles for register faults.  No-op if the machine has stopped; an
    out-of-range pc stops with [Bad_pc], as {!step} would. *)

val scan_pcs : t -> int array -> int
(** [scan_pcs m buf] executes up to [Array.length buf] instructions,
    recording in [buf.(i)] the pc {e before} the [i]-th one, and
    returns the number of steps taken (short only if the machine
    stopped).  Equivalent to calling {!step} in a loop but at the run
    loops' per-cycle cost.  Armed loop detectors are not consulted —
    the caller ({!Loopproof}) is already past detection. *)

val run : t -> limit:int -> stop_reason
(** [run m ~limit] executes until the machine stops or [limit] total
    cycles have been executed; in the latter case the machine is stopped
    with [Cycle_limit].  Idempotent on stopped machines. *)

val run_until : t -> cycle:int -> unit
(** [run_until m ~cycle] executes until [cycle m = cycle] (i.e. exactly
    [cycle] instructions have executed) or the machine stops earlier.
    Used to position the machine just before a fault-injection point. *)

val fork : ?tracer:tracer -> t -> t
(** [fork m] is an independent machine with identical state — the
    one-copy fusion of {!Snapshot.capture} followed by
    {!Snapshot.restore}.  The fork does not inherit [m]'s tracers. *)

(** Deep-copyable machine state, for checkpoint-based campaign
    acceleration.  Serial output is stored as an immutable shared prefix
    plus the bytes buffered past it, so capturing and restoring machines
    that descend from a common checkpoint ladder never copies the full
    output. *)
module Snapshot : sig
  type machine := t
  type t

  val capture : machine -> t
  (** Freeze the complete machine state. *)

  val restore : t -> tracer:tracer option -> machine
  (** Materialise a fresh machine from the snapshot; the new machine is
      independent of both the snapshot and the original. *)

  val cycle : t -> int
  (** Cycle count at capture. *)

  val serial_length : t -> int
  (** Serial bytes emitted at capture — the length watermark. *)

  val event_count : t -> int
  (** Detection events recorded at capture. *)
end

val run_checkpointed :
  t -> stride:int -> limit:int -> stop_reason * Snapshot.t array
(** Interval-checkpointing driver: run [m] to completion (or [limit],
    as {!run}) capturing a snapshot after every [stride] executed cycles
    while the machine is still running.  Serial state is recorded per
    checkpoint as a length watermark and resolved against the run's
    final output once it stops, so the whole ladder shares one string —
    no per-checkpoint output copies.  Snapshots are returned in
    ascending cycle order.

    @raise Invalid_argument if [stride <= 0]. *)

val converges_with :
  t -> Snapshot.t -> ram_live:int array -> reg_mask:int -> bool
(** [converges_with m snap ~ram_live ~reg_mask]: does running machine
    [m] agree with checkpoint [snap] on everything that can influence
    future execution — pc, cycle count, the registers whose bit is set
    in [reg_mask] and the RAM bytes listed in [ram_live]?  The masks
    must name (at least) every location the checkpoint's run still
    {e reads before overwriting} — its live-in set; locations the run
    overwrites first, or never touches again, may disagree freely.  On
    a deterministic machine, agreement then proves both executions
    evolve identically from this point on: every future read sees the
    same value (live-in locations agree now; everything else is
    rewritten — identically, by induction — before being read), so the
    same instructions run with the same operands.  Serial output and
    detection events are deliberately not compared — they record the
    past, not the future. *)

val rendezvous_with :
  t -> Snapshot.t -> ram_live:int array -> reg_mask:int -> bool
(** {!converges_with} without the cycle-count conjunct.  Sound for the
    same reason — the machine has no way to observe its own cycle
    counter, so two states agreeing on pc and live-ins evolve
    identically even when their cycle numbering differs — but the
    conclusions differ: the run replays the checkpoint's {e tail of
    instructions}, shifted in time, rather than finishing at the
    checkpoint run's cycle count.  The caller must separately check
    that the shifted finish still beats the watchdog. *)

val state_hash : t -> int
(** A cheap fingerprint of the machine's register state and pc (RAM is
    deliberately excluded — hashing it would cost more than it saves).
    Two machines executing the same instruction stream hash equal at
    corresponding points; the converse does not hold, so a hash match
    is a {e hypothesis} to be verified with {!rendezvous_with}, never a
    proof. *)

val trap_serial : t -> positions:Bytes.t -> unit
(** Arm the serial rendezvous trap: [positions] is a bitmap over
    serial-output byte positions (bit [n] of byte [n/8]); when the
    machine emits the byte at a flagged position, the run suspends
    right after the emitting instruction ({!stopped} stays [None]).
    Emitting a serial byte is the one hot-path event that pins a
    cycle-shifted run to a known golden position, so it is the natural
    trigger for a {!rendezvous_with} check.  The empty bitmap (the
    default; never inherited by {!fork} or restored machines) disarms
    the trap at zero per-cycle cost. *)

val take_serial_trap : t -> bool
(** Consume a pending serial-trap suspension: [true] iff the trap
    fired, in which case the suspension is cleared and the run can be
    resumed.  The caller should check this before {!pc_recurrence} —
    a firing trap displaces an armed probe, which then needs
    re-arming. *)

val hunt_loops : t -> unit
(** Arm the livelock detector on [m]: subsequent {!run_until} spans
    watch for a recurrence of the execution state (pc, registers, RAM —
    everything the transition function reads) via Brent's algorithm —
    one tortoise state, recaptured with exponentially growing windows,
    compared against the hare at one [pc] equality per cycle.  When a
    recurrence is found the run suspends ({!loop_proven} becomes true,
    {!stopped} stays [None]): on a deterministic machine a repeated
    state proves the run can never halt, so the caller may classify it
    as the watchdog would without simulating up to the cycle limit.
    Forked and restored machines never inherit an armed detector. *)

val loop_proven : t -> bool
(** Whether the armed detector has proven an infinite loop ([false] if
    {!hunt_loops} was never called). *)

val probe_pc_recurrence : ?window0:int -> t -> unit
(** Arm the detector in {e probe} mode: the same Brent tortoise as
    {!hunt_loops}, but a bare [pc] revisit suspends the run without
    comparing (or copying) any state.  A pc recurrence proves nothing
    by itself — it is a cheap trigger for deeper loop analysis
    ({!Loopproof}): the suspension hands the caller a machine parked at
    a loop head together with a period candidate.  [window0] sets the
    initial Brent window (default 32); re-arming with a larger window
    spaces successive triggers out geometrically.  Replaces any
    previously armed detector. *)

val pc_recurrence : t -> int option
(** [Some d] iff an armed {!probe_pc_recurrence} detector suspended the
    run: the current [pc] was last visited [d] cycles ago ([d] is a
    loop-period candidate, possibly a multiple or fraction of the true
    period).  [None] for full-mode detectors and unarmed machines. *)
