let version_line = "fi-corpus v1"

type entry = {
  seed : int64;
  variant : Delta.variant;
  program : Mir.prog;
  baseline : Delta.tally;
  hardened : Delta.tally;
}

let of_finding (f : Delta.finding) =
  {
    seed = f.Delta.seed;
    variant = f.Delta.variant;
    program = f.Delta.program;
    baseline = f.Delta.baseline;
    hardened = f.Delta.hardened;
  }

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let hist_to_string hist =
  if hist = [] then "-"
  else
    String.concat ","
      (List.map
         (fun (o, n) -> Printf.sprintf "%s=%d" (Outcome.to_string o) n)
         hist)

let hist_of_string s =
  if s = "-" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match String.index_opt p '=' with
          | None -> Error (Printf.sprintf "bad histogram item %S" p)
          | Some i -> (
              let name = String.sub p 0 i in
              let count = String.sub p (i + 1) (String.length p - i - 1) in
              match (Outcome.of_string name, int_of_string_opt count) with
              | Some o, Some n -> go ((o, n) :: acc) rest
              | None, _ -> Error (Printf.sprintf "unknown outcome %S" name)
              | _, None -> Error (Printf.sprintf "bad count %S" count)))
    in
    go [] parts

let tally_line label (t : Delta.tally) =
  Printf.sprintf "%s %d %d %s" label t.Delta.space t.Delta.failures
    (hist_to_string t.Delta.histogram)

let tally_of_line label line =
  match String.split_on_char ' ' line with
  | [ l; space; failures; hist ] when l = label -> (
      match (int_of_string_opt space, int_of_string_opt failures) with
      | Some space, Some failures ->
          Result.map
            (fun histogram -> { Delta.space; failures; histogram })
            (hist_of_string hist)
      | _ -> Error (Printf.sprintf "bad %s line %S" label line))
  | _ -> Error (Printf.sprintf "expected %S line, got %S" label line)

let to_text e =
  String.concat "\n"
    [
      version_line;
      Printf.sprintf "seed %Ld" e.seed;
      Printf.sprintf "variant %s" (Delta.variant_to_string e.variant);
      tally_line "baseline" e.baseline;
      tally_line "hardened" e.hardened;
      "program:";
      Mir_text.to_string e.program;
    ]

let ( let* ) = Result.bind

let of_text text =
  let fail fmt = Printf.ksprintf (fun m -> Error ("corpus: " ^ m)) fmt in
  match String.index_opt text '\n' with
  | None -> fail "empty entry"
  | Some _ -> (
      let lines = String.split_on_char '\n' text in
      match lines with
      | v :: seed_l :: variant_l :: base_l :: hard_l :: marker :: rest ->
          if v <> version_line then fail "version %S, want %S" v version_line
          else if marker <> "program:" then
            fail "expected \"program:\" marker, got %S" marker
          else
            let* seed =
              match String.split_on_char ' ' seed_l with
              | [ "seed"; s ] -> (
                  match Int64.of_string_opt s with
                  | Some v -> Ok v
                  | None -> fail "bad seed %S" s)
              | _ -> fail "expected seed line, got %S" seed_l
            in
            let* variant =
              match String.split_on_char ' ' variant_l with
              | [ "variant"; s ] ->
                  Result.map_error (fun m -> "corpus: " ^ m)
                    (Delta.variant_of_string s)
              | _ -> fail "expected variant line, got %S" variant_l
            in
            let* baseline =
              Result.map_error (fun m -> "corpus: " ^ m)
                (tally_of_line "baseline" base_l)
            in
            let* hardened =
              Result.map_error (fun m -> "corpus: " ^ m)
                (tally_of_line "hardened" hard_l)
            in
            let* program = Mir_text.of_string (String.concat "\n" rest) in
            Ok { seed; variant; program; baseline; hardened }
      | _ -> fail "truncated entry")

let key e = Digest.to_hex (Digest.string (to_text e))

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

let default_dir = Filename.concat "_artifacts" "corpus"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let store ~dir e =
  mkdir_p dir;
  let path = Filename.concat dir (key e ^ ".fz") in
  if not (Sys.file_exists path) then begin
    (* Write-then-rename so a crashed writer never leaves a torn entry
       under a valid content address. *)
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (to_text e);
    close_out oc;
    Sys.rename tmp path
  end;
  path

let load_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error m -> Error ("corpus: " ^ m)
  | text -> of_text text

let list ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let paths =
        Array.to_list names
        |> List.filter (fun n -> Filename.check_suffix n ".fz")
        |> List.map (Filename.concat dir)
      in
      List.sort String.compare paths

let verify ?backend ?jobs e =
  Delta.verify ?backend ?jobs
    {
      Delta.program = e.program;
      seed = e.seed;
      variant = e.variant;
      baseline = e.baseline;
      hardened = e.hardened;
      sampled_failure_ratio = None;
    }
