(** Random MIR program generation for the susceptibility fuzzer.

    The generator emits programs that are {e valid by construction}
    (every output passes {!Check.check} — property-tested) and
    {e terminate by construction}: the only loops are counted loops with
    constant bounds, division and remainder take nonzero constant
    divisors, array indices are masked into bounds with [Remu], and the
    call graph is [main → tick] with no recursion.  All randomness flows
    through {!Prng}, so a corpus seed reproduces the identical program
    on every host.

    The shape is tuned to make dilution-delusion instances reachable:
    initialised globals (some protected, so SUM+DMR/TMR have something
    to weave around), an overwrite phase that kills part of the initial
    state, hot accumulator loops that keep mid-run state live, and an
    emission epilogue that prints every byte lane of the final state —
    so most surviving corruptions classify as SDC. *)

type cfg = {
  max_scalars : int;  (** Scalar globals, [1 ..] this. *)
  max_arrays : int;  (** Word arrays, [0 ..] this. *)
  max_array_len : int;  (** Words per array, [2 ..] this. *)
  max_block : int;  (** Statements per generated block. *)
  max_iters : int;  (** Constant loop bound, [1 ..] this. *)
  max_depth : int;  (** Expression nesting depth. *)
}

val default_cfg : cfg
(** Sized for CI: golden runtimes of a few thousand cycles, full pruned
    campaigns well under a second per variant. *)

val program : ?cfg:cfg -> Prng.t -> Mir.prog
(** Draw one program.  The name encodes nothing; callers rename via
    {!rename} to tie a program to its seed. *)

val rename : string -> Mir.prog -> Mir.prog

val shrink : Mir.prog -> Mir.prog list
(** QCheck-style shrink candidates, most aggressive first: statement
    deletions, branch/loop body promotion, expression simplification,
    unused-global and unused-function removal.  Candidates are {e not}
    guaranteed valid or terminating — the caller re-checks and
    re-evaluates its predicate on each (a candidate whose golden run
    fails is simply rejected), which is exactly the shrinker-soundness
    contract the test suite enforces. *)
