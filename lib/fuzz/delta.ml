type variant = Sum_dmr | Tmr | Dft of int

let variant_to_string = function
  | Sum_dmr -> "sumdmr"
  | Tmr -> "tmr"
  | Dft n -> Printf.sprintf "dft:%d" n

let variant_of_string s =
  match s with
  | "sumdmr" -> Ok Sum_dmr
  | "tmr" -> Ok Tmr
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "dft" -> (
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt rest with
          | Some n when n > 0 -> Ok (Dft n)
          | _ -> Error (Printf.sprintf "bad dft cycle count %S" rest))
      | _ -> Error (Printf.sprintf "unknown variant %S" s))

let default_variants = [ Sum_dmr; Tmr; Dft 4; Dft 16 ]
let compile_baseline prog = Codegen.compile prog

let compile_variant v prog =
  match v with
  | Sum_dmr -> Codegen.compile (Harden.sum_dmr prog)
  | Tmr -> Codegen.compile (Harden.tmr prog)
  | Dft n -> Transform.dilute_nops ~cycles:n (Codegen.compile prog)

type tally = {
  space : int;
  failures : int;
  histogram : (Outcome.t * int) list;
}

let tally_of_scan scan =
  {
    space = Metrics.experiment_total scan;
    failures = Metrics.failure_count scan;
    histogram = Metrics.outcome_histogram scan;
  }

let is_dilution ~baseline h =
  h.failures > baseline.failures
  && h.failures * baseline.space < baseline.failures * h.space

type finding = {
  program : Mir.prog;
  seed : int64;
  variant : variant;
  baseline : tally;
  hardened : tally;
  sampled_failure_ratio : float option;
}

(* ------------------------------------------------------------------ *)
(* Serial predicate evaluation (shrink steps)                          *)
(* ------------------------------------------------------------------ *)

let evaluate ?limit ~variant prog =
  match Check.check prog with
  | Error _ -> None
  | Ok () -> (
      match
        let base = compile_baseline prog in
        let hard = compile_variant variant prog in
        let gb = Golden.run ?limit base in
        let gh = Golden.run ?limit hard in
        (Scan.pruned gb, Scan.pruned gh)
      with
      | sb, sh -> Some (tally_of_scan sb, tally_of_scan sh)
      | exception Golden.Golden_failed _ -> None
      | exception Invalid_argument _ -> None)

(* ------------------------------------------------------------------ *)
(* Engine-backed evaluation                                            *)
(* ------------------------------------------------------------------ *)

let specs_for ?variants:(vs = default_variants) prog =
  Spec.memory ~benchmark:prog.Mir.p_name ~variant:"baseline" (fun () ->
      compile_baseline prog)
  :: List.map
       (fun v ->
         Spec.memory ~benchmark:prog.Mir.p_name ~variant:(variant_to_string v)
           (fun () -> compile_variant v prog))
       vs

let hunt_program ?backend ?jobs ?(variants = default_variants) ?samples ~seed
    prog =
  let scans = Engine.run_matrix ?backend ?jobs (specs_for ~variants prog) in
  match scans with
  | [] -> assert false
  | base_scan :: variant_scans ->
      let baseline = tally_of_scan base_scan in
      let sampled_ratio scan_b scan_h =
        match samples with
        | None -> None
        | Some n ->
            (* Oracle estimates against the already-conducted scans:
               identical to what a conducting sampler would return. *)
            let est_b =
              Sampler.uniform_raw_oracle (Prng.create ~seed) ~samples:n scan_b
            in
            let est_h =
              Sampler.uniform_raw_oracle (Prng.create ~seed) ~samples:n scan_h
            in
            let fb = Metrics.extrapolated_failures est_b in
            if fb = 0.0 then None
            else Some (Metrics.extrapolated_failures est_h /. fb)
      in
      List.concat
        (List.map2
           (fun v scan ->
             let hardened = tally_of_scan scan in
             if is_dilution ~baseline hardened then
               [
                 {
                   program = prog;
                   seed;
                   variant = v;
                   baseline;
                   hardened;
                   sampled_failure_ratio = sampled_ratio base_scan scan;
                 };
               ]
             else [])
           variants variant_scans)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

let shrink ?(budget = 200) finding =
  (* Candidate edits routinely break termination (e.g. deleting a loop
     increment); cap their golden runs at a small multiple of the
     original finding's runtime so a non-terminating candidate is
     rejected in microseconds, not at the 50M-cycle default watchdog. *)
  let limit =
    match
      Golden.run (compile_variant finding.variant finding.program)
    with
    | g -> (8 * g.Golden.cycles) + 20_000
    | exception Golden.Golden_failed _ -> 200_000
  in
  let evals = ref 0 in
  let rec descend current =
    let rec try_candidates = function
      | [] -> current
      | cand :: rest ->
          if !evals >= budget then current
          else begin
            incr evals;
            match evaluate ~limit ~variant:finding.variant cand with
            | Some (b, h) when is_dilution ~baseline:b h ->
                descend { current with program = cand; baseline = b; hardened = h }
            | Some _ | None -> try_candidates rest
          end
    in
    if !evals >= budget then current
    else try_candidates (Gen.shrink current.program)
  in
  descend finding

(* ------------------------------------------------------------------ *)
(* Fresh-engine verification                                           *)
(* ------------------------------------------------------------------ *)

let pp_hist ppf hist =
  List.iter
    (fun (o, n) -> Format.fprintf ppf " %s=%d" (Outcome.to_string o) n)
    hist

let verify ?backend ?jobs finding =
  match Check.check finding.program with
  | Error errs ->
      Error
        (Format.asprintf "program rejected by Check:@ %a"
           (Format.pp_print_list Check.pp_error)
           errs)
  | Ok () -> (
      let specs = specs_for ~variants:[ finding.variant ] finding.program in
      match List.map (Engine.run_spec ?backend ?jobs) specs with
      | exception Golden.Golden_failed _ -> Error "golden run failed"
      | [ sb; sh ] ->
          let b = tally_of_scan sb and h = tally_of_scan sh in
          let mismatch side want got =
            Error
              (Format.asprintf
                 "%s tally mismatch: stored F %d/%d{%a} vs replayed F %d/%d{%a}"
                 side want.failures want.space pp_hist want.histogram
                 got.failures got.space pp_hist got.histogram)
          in
          if b <> finding.baseline then mismatch "baseline" finding.baseline b
          else if h <> finding.hardened then mismatch "hardened" finding.hardened h
          else if not (is_dilution ~baseline:b h) then
            Error "dilution predicate no longer holds"
          else Ok ()
      | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* The mining loop                                                     *)
(* ------------------------------------------------------------------ *)

type hunt = { tried : int; findings : finding list }

let run ?cfg ?backend ?jobs ?(variants = default_variants) ?samples
    ?shrink_budget ?(log = ignore) ~seed ~budget () =
  let master = Prng.create ~seed in
  let findings = ref [] in
  for i = 1 to budget do
    let pseed = Prng.next_int64 master in
    let prog =
      Gen.rename
        (Printf.sprintf "fz%Lx" (Int64.logand pseed 0xFFFFFFFFL))
        (Gen.program ?cfg (Prng.create ~seed:pseed))
    in
    let found =
      hunt_program ?backend ?jobs ~variants ?samples ~seed:pseed prog
    in
    log
      (Printf.sprintf "[%d/%d] %s: %d dilution cell%s" i budget prog.Mir.p_name
         (List.length found)
         (if List.length found = 1 then "" else "s"));
    List.iter
      (fun f ->
        let shrunk = shrink ?budget:shrink_budget f in
        match verify ?backend ?jobs shrunk with
        | Ok () ->
            log
              (Printf.sprintf "  %s %s: F %d/%d -> %d/%d (shrunk, verified)"
                 shrunk.program.Mir.p_name
                 (variant_to_string shrunk.variant)
                 shrunk.baseline.failures shrunk.baseline.space
                 shrunk.hardened.failures shrunk.hardened.space);
            findings := shrunk :: !findings
        | Error msg ->
            (* A shrunk finding that fails fresh-engine verification
               would be a bug in the shrinker or engine; keep the
               unshrunk original, which the engine itself produced. *)
            log
              (Printf.sprintf "  %s: shrunk verification failed (%s); keeping unshrunk"
                 prog.Mir.p_name msg);
            findings := f :: !findings)
      found
  done;
  { tried = budget; findings = List.rev !findings }
