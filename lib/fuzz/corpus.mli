(** Content-addressed regression corpus of mined counterexamples.

    Each entry is one dilution-delusion finding, stored as a single
    self-describing text file: a versioned header (seed, variant, both
    exact tallies) followed by the program in {!Mir_text} form.  The
    file name is the hex MD5 of the entry's canonical text, so the store
    is content-addressed: storing the same finding twice is a no-op, and
    any on-disk corruption is detectable by re-keying.

    Entries are plain text precisely so they can be checked into version
    control and replayed {e bit-identically} on another host, OCaml
    version or engine backend: {!verify} recompiles the program from
    text, re-conducts both campaigns on a fresh engine, and requires
    exact tally equality plus the dilution predicate. *)

type entry = {
  seed : int64;  (** Per-program generator seed (provenance). *)
  variant : Delta.variant;
  program : Mir.prog;
  baseline : Delta.tally;
  hardened : Delta.tally;
}

val of_finding : Delta.finding -> entry

val to_text : entry -> string
(** Canonical rendering; [of_text (to_text e) = Ok e]. *)

val of_text : string -> (entry, string) result

val key : entry -> string
(** Hex MD5 of {!to_text} — the entry's content address. *)

val default_dir : string
(** ["_artifacts/corpus"]. *)

val store : dir:string -> entry -> string
(** Write the entry to [dir/<key>.fz] (creating [dir]) and return the
    path.  Idempotent: an existing file with the same key is left
    untouched. *)

val load_file : string -> (entry, string) result

val list : dir:string -> string list
(** All [*.fz] paths under [dir], sorted; [[]] if [dir] is missing. *)

val verify : ?backend:Pool.backend -> ?jobs:int -> entry -> (unit, string) result
(** {!Delta.verify} of the entry's finding: fresh campaigns on [backend]
    must reproduce both stored tallies exactly and re-establish the
    inversion. *)
