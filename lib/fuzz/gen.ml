open Mir

type cfg = {
  max_scalars : int;
  max_arrays : int;
  max_array_len : int;
  max_block : int;
  max_iters : int;
  max_depth : int;
}

let default_cfg =
  {
    max_scalars = 4;
    max_arrays = 2;
    max_array_len = 4;
    max_block = 4;
    max_iters = 8;
    max_depth = 2;
  }

(* All drawing goes through explicit sequential [let]s: OCaml evaluates
   constructor arguments right-to-left, which would make the stream
   order (and thus the corpus) compiler-dependent otherwise. *)

(* [w_scalars]/[w_arrays] are the globals the function under
   construction may WRITE; reads draw from the full [scalars]/[arrays].
   GOP weaving updates replicas only at function exit, so a write to a
   protected object followed by a call would present a stale checksum
   to the callee's entry check, which would "correct" the value back
   and change golden behaviour.  Confining protected writes to [tick]
   (which makes no calls) keeps all variants output-identical. *)
type ctx = {
  cfg : cfg;
  rng : Prng.t;
  scalars : string array;
  arrays : (string * int) array;  (* name, length in words *)
  w_scalars : string array;
  w_arrays : (string * int) array;
  locals : string array;  (* value locals, always declared *)
}

let counted_loop var bound body =
  [
    Set_local (var, Int 0l);
    While
      ( Cmp (Lt, Local var, Int (Int32.of_int bound)),
        body @ [ Set_local (var, Bin (Add, Local var, Int 1l)) ] );
  ]

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let small_const rng =
  match Prng.int rng 5 with
  | 0 -> Int32.of_int (Prng.int rng 8)
  | 1 -> Int32.of_int (Prng.int rng 256)
  | 2 -> Int32.of_int (1 + Prng.int rng 65535)
  | 3 -> Int32.lognot (Int32.of_int (Prng.int rng 255)) (* negative *)
  | _ -> Int32.of_int (1 + Prng.int rng 9)

let rec leaf ctx =
  match Prng.int ctx.rng 8 with
  | 0 | 1 -> Int (small_const ctx.rng)
  | 2 | 3 | 4 ->
      let s = Prng.choose ctx.rng ctx.scalars in
      Global s
  | 5 | 6 -> Local (Prng.choose ctx.rng ctx.locals)
  | _ ->
      if Array.length ctx.arrays = 0 then Local (Prng.choose ctx.rng ctx.locals)
      else
        let a, len = Prng.choose ctx.rng ctx.arrays in
        let idx = masked_index ctx (a, len) in
        Elem (a, idx)

(* Indices are always [e % len]: Remu is unsigned, the divisor is a
   positive constant, so the access is in bounds and trap-free. *)
and masked_index ctx (_, len) =
  let e = leaf ctx in
  Bin (Remu, e, Int (Int32.of_int len))

let rec expr ctx depth =
  if depth = 0 || Prng.int ctx.rng 3 = 0 then leaf ctx
  else
    match Prng.int ctx.rng 10 with
    | 0 ->
        let a = expr ctx (depth - 1) in
        let b = expr ctx (depth - 1) in
        Bin (Add, a, b)
    | 1 ->
        let a = expr ctx (depth - 1) in
        let b = expr ctx (depth - 1) in
        Bin (Sub, a, b)
    | 2 ->
        let a = expr ctx (depth - 1) in
        let b = expr ctx (depth - 1) in
        Bin (Mul, a, b)
    | 3 ->
        let a = expr ctx (depth - 1) in
        let b = expr ctx (depth - 1) in
        Bin (Xor, a, b)
    | 4 ->
        let a = expr ctx (depth - 1) in
        let b = expr ctx (depth - 1) in
        Bin (And, a, b)
    | 5 ->
        let a = expr ctx (depth - 1) in
        let b = expr ctx (depth - 1) in
        Bin (Or, a, b)
    | 6 ->
        let a = expr ctx (depth - 1) in
        let sh = Prng.int ctx.rng 16 in
        Bin ((if Prng.bool ctx.rng then Shl else Shr), a, Int (Int32.of_int sh))
    | 7 ->
        (* Division/remainder only by nonzero constants: trap-free. *)
        let a = expr ctx (depth - 1) in
        let d = 1 + Prng.int ctx.rng 9 in
        Bin ((if Prng.bool ctx.rng then Divu else Remu), a, Int (Int32.of_int d))
    | _ ->
        let ops = [| Eq; Ne; Lt; Ge; Ltu; Geu |] in
        let op = Prng.choose ctx.rng ops in
        let a = expr ctx (depth - 1) in
        let b = expr ctx (depth - 1) in
        Cmp (op, a, b)

let condition ctx =
  let op = Prng.choose ctx.rng [| Eq; Ne; Lt; Geu |] in
  let a = expr ctx 1 in
  let b = expr ctx 1 in
  Cmp (op, a, b)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

(* [loop_depth] indexes the dedicated loop counters i0/i1, so nested
   loops never clobber each other's counter; value locals are separate. *)
let rec stmt ctx ~depth ~loop_depth ~allow_call : stmt list =
  match Prng.int ctx.rng 12 with
  | 0 | 1 ->
      let l = Prng.choose ctx.rng ctx.locals in
      let e = expr ctx ctx.cfg.max_depth in
      [ Set_local (l, e) ]
  | 2 | 3 when Array.length ctx.w_scalars > 0 ->
      let s = Prng.choose ctx.rng ctx.w_scalars in
      let e = expr ctx ctx.cfg.max_depth in
      [ Set_global (s, e) ]
  | 4 when Array.length ctx.w_arrays > 0 ->
      let a, len = Prng.choose ctx.rng ctx.w_arrays in
      let idx = masked_index ctx (a, len) in
      let v = expr ctx (ctx.cfg.max_depth - 1) in
      [ Set_elem (a, idx, v) ]
  | 5 ->
      let e = expr ctx 1 in
      [ Out e ]
  | 6 | 7 when depth > 0 ->
      let c = condition ctx in
      let t = block ctx ~depth:(depth - 1) ~loop_depth ~allow_call in
      let e =
        if Prng.bool ctx.rng then
          block ctx ~depth:(depth - 1) ~loop_depth ~allow_call
        else []
      in
      [ If (c, t, e) ]
  | 8 when depth > 0 && loop_depth < 2 ->
      let bound = 1 + Prng.int ctx.rng ctx.cfg.max_iters in
      let body =
        block ctx ~depth:(depth - 1) ~loop_depth:(loop_depth + 1) ~allow_call
      in
      counted_loop (Printf.sprintf "i%d" loop_depth) bound body
  | 9 when allow_call -> [ Do_call ("tick", []) ]
  | _ ->
      (* Hot accumulator: the local state the dilution argument needs
         live through the middle of the run. *)
      let l = Prng.choose ctx.rng ctx.locals in
      let e = expr ctx (ctx.cfg.max_depth - 1) in
      [ Set_local (l, Bin (Add, Local l, e)) ]

and block ctx ~depth ~loop_depth ~allow_call =
  let n = 1 + Prng.int ctx.rng ctx.cfg.max_block in
  List.concat
    (List.init n (fun _ -> stmt ctx ~depth ~loop_depth ~allow_call))

(* ------------------------------------------------------------------ *)
(* Programs                                                           *)
(* ------------------------------------------------------------------ *)

let loop_locals = [ "i0"; "i1" ]
let value_locals = [ "v0"; "v1"; "v2" ]

(* Generated code reads value locals freely, so they must be written
   first: locals live in stack slots, and the hardened variants' helper
   functions leave different residue at the addresses a later frame
   overlaps.  An uninitialized read would make golden behaviour differ
   across variants (and depend on call history in general). *)
let init_locals = List.map (fun l -> Set_local (l, Int 0l)) value_locals

(* Print every byte lane of an expression, so any surviving corruption
   of the value becomes an output difference (SDC). *)
let emit_lanes e =
  [
    Out e;
    Out (Bin (Shr, e, Int 8l));
    Out (Bin (Shr, e, Int 16l));
    Out (Bin (Shr, e, Int 24l));
  ]

let scalar_name specs k =
  let n, _, _ = List.nth specs k in
  n

let program ?(cfg = default_cfg) rng =
  let n_scalars = 1 + Prng.int rng cfg.max_scalars in
  let scalar_specs =
    List.init n_scalars (fun k ->
        let name = Printf.sprintf "s%d" k in
        let init = small_const rng in
        let protected = k = 0 || Prng.int rng 2 = 0 in
        (name, init, protected))
  in
  let n_arrays = Prng.int rng (cfg.max_arrays + 1) in
  let array_specs =
    List.init n_arrays (fun k ->
        let name = Printf.sprintf "a%d" k in
        let len = 2 + Prng.int rng (cfg.max_array_len - 1) in
        let init = List.init len (fun _ -> small_const rng) in
        let protected = Prng.int rng 3 = 0 in
        (name, len, init, protected))
  in
  let globals =
    List.map
      (fun (name, init, protected) ->
        { g_name = name; g_ty = I32; g_init = [ init ]; g_protected = protected })
      scalar_specs
    @ List.map
        (fun (name, len, init, protected) ->
          { g_name = name; g_ty = Words len; g_init = init; g_protected = protected })
        array_specs
  in
  let protected_names =
    List.filter_map
      (fun g -> if g.g_protected then Some g.g_name else None)
      globals
  in
  let all_scalars = Array.of_list (List.map (fun (n, _, _) -> n) scalar_specs) in
  let all_arrays =
    Array.of_list (List.map (fun (n, len, _, _) -> (n, len)) array_specs)
  in
  (* tick may write anything; main only unprotected globals (see [ctx]). *)
  let ctx =
    {
      cfg;
      rng;
      scalars = all_scalars;
      arrays = all_arrays;
      w_scalars = all_scalars;
      w_arrays = all_arrays;
      locals = Array.of_list value_locals;
    }
  in
  let main_ctx =
    {
      ctx with
      w_scalars =
        Array.of_list
          (List.filter_map
             (fun (n, _, protected) -> if protected then None else Some n)
             scalar_specs);
      w_arrays =
        Array.of_list
          (List.filter_map
             (fun (n, len, _, protected) ->
               if protected then None else Some (n, len))
             array_specs);
    }
  in
  (* tick: the instrumented worker (its protects trigger GOP weaving in
     the hardened variants).  No loops, no calls: termination is main's
     loop bounds alone. *)
  let tick_writes =
    let p = List.nth protected_names (Prng.int rng (List.length protected_names)) in
    match List.find (fun g -> g.g_name = p) globals with
    | { g_ty = I32; _ } ->
        let e = expr ctx cfg.max_depth in
        [ Set_global (p, e) ]
    | { g_ty = Words len; _ } ->
        let idx = masked_index ctx (p, len) in
        let e = expr ctx (cfg.max_depth - 1) in
        [ Set_elem (p, idx, e) ]
    | { g_ty = Byte_array _; _ } -> assert false (* never generated *)
  in
  let tick_body =
    init_locals
    @ block ctx ~depth:1 ~loop_depth:2 ~allow_call:false
    @ tick_writes
    @ [ Return None ]
  in
  let tick =
    {
      f_name = "tick";
      f_params = [];
      f_locals = value_locals;
      f_body = tick_body;
      f_protects = protected_names;
    }
  in
  (* Overwrite phase: each unprotected scalar except one survivor is
     clobbered with a constant with probability 1/2, killing its initial
     value (the cycle-0 fault-space columns over it turn a-priori
     benign).  Protected scalars are spared: main must not write them
     (see [ctx]). *)
  let survivor = Prng.int rng n_scalars in
  let overwrites =
    List.concat
      (List.mapi
         (fun k (name, _, protected) ->
           if k <> survivor && (not protected) && Prng.bool rng then
             let c = small_const rng in
             [ Set_global (name, Int c) ]
           else [])
         scalar_specs)
  in
  let main_mid = block main_ctx ~depth:2 ~loop_depth:0 ~allow_call:true in
  let hot_bound = 2 + Prng.int rng cfg.max_iters in
  let hot_body =
    block main_ctx ~depth:1 ~loop_depth:1 ~allow_call:true
    @ [
        Set_local
          ("v0", Bin (Add, Local "v0", Global (scalar_name scalar_specs survivor)));
      ]
  in
  let hot_loop = counted_loop "i0" hot_bound hot_body in
  let emission =
    List.concat_map (fun (name, _, _) -> emit_lanes (Global name)) scalar_specs
    @ List.concat_map
        (fun (name, len, _, _) ->
          List.concat (List.init len (fun k ->
              emit_lanes (Elem (name, Int (Int32.of_int k))))))
        array_specs
    @ List.concat_map (fun l -> emit_lanes (Local l)) value_locals
  in
  let main =
    {
      f_name = "main";
      f_params = [];
      f_locals = value_locals @ loop_locals;
      f_body =
        init_locals @ overwrites @ main_mid @ hot_loop @ emission
        @ [ Return None ];
      (* main reads protected state, so it gets the check-only "get"
         weaving; listing the names is required for the entry check. *)
      f_protects = protected_names;
    }
  in
  let prog =
    {
      p_name = "fuzz";
      p_globals = globals;
      p_funcs = [ tick; main ];
      p_stack_bytes = 192;
    }
  in
  Check.check_exn prog;
  prog

let rename name p = { p with p_name = name }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let rec shrink_expr = function
  | Int 0l -> []
  | Int n -> [ Int 0l ] @ (if n <> Int32.div n 2l then [ Int (Int32.div n 2l) ] else [])
  | Global _ | Local _ -> [ Int 0l ]
  | Elem (_, idx) | Byte (_, idx) -> [ idx; Int 0l ]
  | Bin (op, a, b) ->
      let keep_rhs = match op with Divu | Remu -> true | _ -> false in
      [ a ]
      @ (if keep_rhs then [] else [ b ])
      @ List.map (fun a' -> Bin (op, a', b)) (shrink_expr a)
      @
      if keep_rhs then []
      else List.map (fun b' -> Bin (op, a, b')) (shrink_expr b)
  | Cmp (op, a, b) ->
      [ Int 0l; Int 1l; a; b ]
      @ List.map (fun a' -> Cmp (op, a', b)) (shrink_expr a)
      @ List.map (fun b' -> Cmp (op, a, b')) (shrink_expr b)
  | Call _ -> []

(* Replacements for one statement: each candidate is a statement list
   spliced in place of the original. *)
let rec shrink_stmt = function
  | If (c, t, e) ->
      [ t; e ]
      @ List.map (fun c' -> [ If (c', t, e) ]) (shrink_expr c)
      @ List.map (fun t' -> [ If (c, t', e) ]) (shrink_stmts t)
      @ List.map (fun e' -> [ If (c, t, e') ]) (shrink_stmts e)
  | While (c, b) ->
      [ b ] (* run the body once: terminating by construction *)
      @ List.map (fun b' -> [ While (c, b') ]) (shrink_stmts b)
      @ List.map (fun c' -> [ While (c', b) ]) (shrink_expr c)
  | Set_global (g, e) -> List.map (fun e' -> [ Set_global (g, e') ]) (shrink_expr e)
  | Set_local (l, e) -> List.map (fun e' -> [ Set_local (l, e') ]) (shrink_expr e)
  | Set_elem (a, i, v) ->
      List.map (fun v' -> [ Set_elem (a, i, v') ]) (shrink_expr v)
  | Set_byte (a, i, v) ->
      List.map (fun v' -> [ Set_byte (a, i, v') ]) (shrink_expr v)
  | Out e -> List.map (fun e' -> [ Out e' ]) (shrink_expr e)
  | Do_call _ | Return _ | Out_str _ | Detect _ | Panic _ -> []

(* All one-edit variants of a statement list: one deletion or one
   in-place replacement. *)
and shrink_stmts (ss : Mir.stmt list) : Mir.stmt list list =
  let rec go prefix = function
    | [] -> []
    | s :: rest ->
        let deleted = List.rev_append prefix rest in
        let replaced =
          List.map
            (fun repl -> List.rev_append prefix (repl @ rest))
            (shrink_stmt s)
        in
        (deleted :: replaced) @ go (s :: prefix) rest
  in
  go [] ss

let used_names prog =
  let tbl = Hashtbl.create 16 in
  let mark n = Hashtbl.replace tbl n () in
  let rec expr_uses = function
    | Int _ -> ()
    | Global g -> mark g
    | Elem (a, e) | Byte (a, e) ->
        mark a;
        expr_uses e
    | Local _ -> ()
    | Bin (_, a, b) | Cmp (_, a, b) ->
        expr_uses a;
        expr_uses b
    | Call (f, args) ->
        mark f;
        List.iter expr_uses args
  in
  let rec stmt_uses = function
    | Set_global (g, e) ->
        mark g;
        expr_uses e
    | Set_elem (a, i, v) | Set_byte (a, i, v) ->
        mark a;
        expr_uses i;
        expr_uses v
    | Set_local (_, e) | Out e -> expr_uses e
    | If (c, t, e) ->
        expr_uses c;
        List.iter stmt_uses t;
        List.iter stmt_uses e
    | While (c, b) ->
        expr_uses c;
        List.iter stmt_uses b
    | Do_call (f, args) ->
        mark f;
        List.iter expr_uses args
    | Return (Some e) -> expr_uses e
    | Return None | Out_str _ | Detect _ | Panic _ -> ()
  in
  List.iter (fun f -> List.iter stmt_uses f.f_body) prog.p_funcs;
  tbl

let shrink prog =
  let body_edits =
    List.concat_map
      (fun f ->
        List.map
          (fun body' ->
            {
              prog with
              p_funcs =
                List.map
                  (fun f' -> if f'.f_name = f.f_name then { f' with f_body = body' } else f')
                  prog.p_funcs;
            })
          (shrink_stmts f.f_body))
      prog.p_funcs
  in
  let used = used_names prog in
  let drop_globals =
    List.filter_map
      (fun g ->
        if Hashtbl.mem used g.g_name then None
        else
          Some
            {
              prog with
              p_globals = List.filter (fun g' -> g'.g_name <> g.g_name) prog.p_globals;
              p_funcs =
                List.map
                  (fun f ->
                    {
                      f with
                      f_protects = List.filter (fun n -> n <> g.g_name) f.f_protects;
                    })
                  prog.p_funcs;
            })
      prog.p_globals
  in
  let drop_funcs =
    List.filter_map
      (fun f ->
        if f.f_name = "main" || Hashtbl.mem used f.f_name then None
        else
          Some
            { prog with p_funcs = List.filter (fun f' -> f'.f_name <> f.f_name) prog.p_funcs })
      prog.p_funcs
  in
  let unprotect =
    List.filter_map
      (fun g ->
        if not g.g_protected then None
        else
          Some
            {
              prog with
              p_globals =
                List.map
                  (fun g' ->
                    if g'.g_name = g.g_name then { g' with g_protected = false } else g')
                  prog.p_globals;
              p_funcs =
                List.map
                  (fun f ->
                    {
                      f with
                      f_protects = List.filter (fun n -> n <> g.g_name) f.f_protects;
                    })
                  prog.p_funcs;
            })
      prog.p_globals
  in
  drop_funcs @ drop_globals @ body_edits @ unprotect
