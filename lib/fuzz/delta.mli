(** Differential-hardening driver: the fuzzer's oracle.

    One generated program is compiled as a baseline and under a set of
    hardening {!variant}s (the paper's SUM+DMR and TMR passes, plus the
    Section-IV DFT dilution), full pruned campaigns are conducted per
    cell, and cells where fault coverage {e improves} while the weighted
    absolute failure count {e rises} — the dilution delusion — are
    flagged as {!finding}s.  The predicate is decided on exact integers
    ({!Metrics.coverage_improves} /
    {!Pitfalls.dilution_delusion}), so a finding replays bit-identically
    on every backend and host. *)

type variant =
  | Sum_dmr  (** {!Harden.sum_dmr}: replica + additive checksum. *)
  | Tmr  (** {!Harden.tmr}: two replicas, majority vote. *)
  | Dft of int  (** {!Transform.dilute_nops}: [n] NOP cycles prepended. *)

val variant_to_string : variant -> string
(** ["sumdmr"], ["tmr"], ["dft:N"]; inverse of {!variant_of_string}. *)

val variant_of_string : string -> (variant, string) result

val default_variants : variant list
(** [[Sum_dmr; Tmr; Dft 4; Dft 16]]. *)

val compile_baseline : Mir.prog -> Program.t
val compile_variant : variant -> Mir.prog -> Program.t

type tally = {
  space : int;  (** w — the full-space denominator N. *)
  failures : int;  (** Weighted F. *)
  histogram : (Outcome.t * int) list;
      (** Weighted full-space outcome totals; sums to [space]. *)
}

val tally_of_scan : Scan.t -> tally
(** Exact {!Accounting.correct} accounting of a completed scan. *)

val is_dilution : baseline:tally -> tally -> bool
(** [F_h > F_b] and [F_h·w_b < F_b·w_h] (integer cross-multiplication —
    coverage improves).  Same verdict as {!Pitfalls.dilution_delusion}
    on the underlying scans. *)

type finding = {
  program : Mir.prog;
  seed : int64;
      (** The per-program seed: [Gen.program (Prng.create ~seed)]
          reproduces the {e unshrunk} ancestor of [program]. *)
  variant : variant;
  baseline : tally;
  hardened : tally;
  sampled_failure_ratio : float option;
      (** When the hunt sampled: extrapolated-F ratio hardened/baseline
          from {!Engine.run_sampled} estimates (diagnostic only — the
          predicate always uses the exact tallies). *)
}

val evaluate :
  ?limit:int -> variant:variant -> Mir.prog -> (tally * tally) option
(** Serial predicate evaluation: compile baseline and variant, golden-run
    both, conduct full pruned campaigns ({!Scan.pruned} — bit-identical
    to any engine backend), return both tallies.  [None] when the
    program is rejected by {!Check}, fails to assemble, or either golden
    run does not halt (shrink candidates routinely trip these). *)

val hunt_program :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?variants:variant list ->
  ?samples:int ->
  seed:int64 ->
  Mir.prog ->
  finding list
(** Conduct baseline plus every variant cell through one
    {!Engine.run_matrix} call on the chosen backend and return the cells
    that exhibit the dilution delusion.  With [samples] set, each cell
    additionally runs through {!Engine.run_sampled} (seeded from [seed])
    and findings carry the sampled extrapolation ratio. *)

val shrink : ?budget:int -> finding -> finding
(** Greedy QCheck-style minimisation: repeatedly take the first
    {!Gen.shrink} candidate on which the dilution predicate still holds
    (re-evaluated from scratch via {!evaluate} — every accepted step is
    a fresh pair of campaigns), until no candidate survives or [budget]
    evaluations (default 200) are spent.  The returned finding's
    tallies are those of the minimised program. *)

val verify :
  ?backend:Pool.backend -> ?jobs:int -> finding -> (unit, string) result
(** Re-establish a finding end to end on a fresh engine: recompile both
    cells, conduct them through {!Engine.run_spec} on [backend], and
    require the resulting tallies to equal the finding's {e exactly}
    (histograms included) with the predicate holding.  This is the
    bit-identical replay check the corpus and CI lean on. *)

type hunt = {
  tried : int;  (** Programs generated and evaluated. *)
  findings : finding list;  (** Shrunk and verified, in discovery order. *)
}

val run :
  ?cfg:Gen.cfg ->
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?variants:variant list ->
  ?samples:int ->
  ?shrink_budget:int ->
  ?log:(string -> unit) ->
  seed:int64 ->
  budget:int ->
  unit ->
  hunt
(** The full mining loop: [budget] programs are drawn from a master
    {!Prng} stream seeded with [seed] (each program's own seed is one
    [next_int64] draw, recorded in its findings), hunted, shrunk, and
    re-verified through a fresh engine.  [log] receives one line per
    program and finding. *)
