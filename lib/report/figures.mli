(** Generators for every table and figure of the paper.

    Each function renders one artifact as plain text; the benchmark
    harness ([bench/main.exe]) and the CLI ([fi-cli report]) both drive
    these.  Campaign-backed artifacts take the scans as input — use
    {!run_pair} (which caches results as CSV) to obtain them. *)

val table1 : unit -> string
(** Table I: Poisson probabilities for k = 0…5 independent faults hitting
    one benchmark run (Δt = 10⁹ cycles at 1 GHz, Δm = 2²⁰ bit,
    g = mean of the three published DRAM rates). *)

val figure1 : unit -> string
(** Figure 1: the illustrative fault space (a store at cycle 4, a load at
    cycle 11, twelve cycles total) before/after def/use pruning, with the
    class inventory and the 108-coordinates-to-8-experiments reduction
    (our byte-granular machine tracks 2 bytes ⇒ 192 coordinates, 8
    experiments, same structure). *)

val figure3 : unit -> string
(** Figure 3 and the Section IV numbers: full fault-space scans of the
    "Hi" program and its DFT/DFT′/memory-diluted variants; outcome maps;
    fault coverage inflating 62.5 % → 75.0 % while F stays 48. *)

val run_pair :
  ?cache_dir:string ->
  ?progress:(string -> Scan.progress) ->
  name:string ->
  baseline:(unit -> Program.t) ->
  hardened:(unit -> Program.t) ->
  unit ->
  Scan.t * Scan.t
(** Full pruned campaigns for a baseline/hardened pair.  With
    [cache_dir], results are stored as CSV and reloaded on the next call
    (campaigns take minutes; the cache makes reports cheap). *)

val figure2 : (string * Scan.t * Scan.t) list -> string
(** Figure 2, all panels the paper's text references, from the given
    [(benchmark, baseline scan, hardened scan)] list:
    (a) unweighted coverage, (b) weighted coverage, (d) unweighted
    failure counts, (e) weighted failure counts, (g) runtime and memory
    usage — plus the comparison ratios r and the per-pair pitfall-3
    verdicts. *)

val pruning_stats : (string * Golden.t) list -> string
(** Section III-C: raw fault-space size vs. pruned experiment count and
    the reduction factor, per benchmark. *)

val pitfall2 : ?samples:int -> ?seed:int64 -> Scan.t -> Golden.t -> string
(** Pitfall 2 demonstration on one fully-scanned benchmark: ground-truth
    failure fraction vs. correct raw-space sampling vs. biased per-class
    sampling, at increasing sample counts (default max [samples] 4096). *)

val pitfall3_extrapolation :
  ?samples:int ->
  ?seed:int64 ->
  (string * Scan.t * Golden.t) list ->
  string
(** Pitfall 3, corollary 2: raw sampled failure counts vs. extrapolated
    counts across variants with different fault-space sizes, showing the
    raw counts inverting the verdict. *)

val ablation : (string * Scan.t) list -> string
(** Extension table: any set of scans compared by weighted/unweighted
    coverage, failure count, failure probability (Equation 5) and MWTF. *)

val figure2_sampled :
  ?samples:int ->
  ?seed:int64 ->
  (string * Scan.t * Scan.t) list ->
  string
(** Figure 2(e) as most published studies would obtain it — by sampling
    rather than full scans: extrapolated failure counts with 95 % Wilson
    intervals, next to the full-scan truth.  Demonstrates that the
    correct sampling procedure reaches the paper's conclusions at a
    fraction of the experiment count. *)

val breakdown : Scan.t -> Program.t -> string
(** Table rendering of {!Breakdown.by_region}: where the failure mass
    lives (per global, plus the stack). *)

val cross_layer : (string * Regspace.t) list -> string
(** Section VI-B/VI-C extension: for each benchmark, full campaigns over
    {e both} fault spaces — main memory and the register file — showing
    that coverage percentages across layers (different w!) are
    incomparable while per-layer absolute failure counts remain
    meaningful. *)
