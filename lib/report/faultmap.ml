let event_grid ~trace ~defuse =
  (* grid.(bit).(cycle-1) *)
  let ram = Defuse.ram_size defuse in
  let cycles = Defuse.total_cycles defuse in
  let grid = Array.make_matrix (ram * 8) cycles ' ' in
  (* Mark def/use structure first. *)
  Array.iter
    (fun (c : Defuse.byte_class) ->
      let mark =
        match c.Defuse.kind with
        | Defuse.Experiment -> '.'
        | Defuse.Overwritten | Defuse.Dormant -> ' '
      in
      for bit_in_byte = 0 to 7 do
        let row = (c.Defuse.byte * 8) + bit_in_byte in
        for t = c.Defuse.t_start to c.Defuse.t_end do
          grid.(row).(t - 1) <- mark
        done
      done)
    (Defuse.classes defuse);
  (* Overlay access events. *)
  Trace.iter_byte_accesses trace (fun ~byte ~cycle ~kind ->
      let ch = match kind with Trace.Read -> 'R' | Trace.Write -> 'W' in
      for bit_in_byte = 0 to 7 do
        grid.((byte * 8) + bit_in_byte).(cycle - 1) <- ch
      done);
  grid

let render_grid ~cycles grid =
  let buf = Buffer.create 1024 in
  ignore cycles;
  Buffer.add_string buf "        cycle 1..\n";
  Array.iteri
    (fun row line ->
      Buffer.add_string buf (Printf.sprintf "bit %3d " row);
      Array.iter (Buffer.add_char buf) line;
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let access_map ~trace ~defuse =
  render_grid ~cycles:(Defuse.total_cycles defuse) (event_grid ~trace ~defuse)

let access_map_golden (golden : Golden.t) =
  access_map ~trace:golden.Golden.trace ~defuse:golden.Golden.defuse

let outcome_map (golden : Golden.t) scan =
  let trace = golden.Golden.trace and defuse = golden.Golden.defuse in
  let grid = event_grid ~trace ~defuse in
  let expand = Scan.expander scan in
  let cycles = Defuse.total_cycles defuse in
  Array.iteri
    (fun row line ->
      for t = 0 to cycles - 1 do
        match line.(t) with
        | '.' ->
            let outcome = expand { Coordspace.cycle = t + 1; bit = row } in
            line.(t) <- (if Outcome.is_failure outcome then 'X' else 'o')
        | 'R' | 'W' | ' ' | _ -> ()
      done)
    grid;
  render_grid ~cycles grid

let legend =
  "R/W: read/write of the byte at that cycle; '.': experiment coordinate\n\
   (def/use class ending in a read); ' ': a-priori benign (overwritten or\n\
   dormant); 'X': experiment failed; 'o': experiment benign.\n"
