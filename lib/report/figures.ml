let heading title =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "%s\n%s\n" title bar

(* ------------------------------------------------------------------ *)
(* Table I                                                            *)
(* ------------------------------------------------------------------ *)

let table1 () =
  let rate = Fit_rate.mean_published in
  let cycles = 1_000_000_000 in
  let bits = 1 lsl 20 in
  let lambda = Fit_rate.lambda rate ~cycles ~ns_per_cycle:1.0 ~bits in
  let t =
    Table.create ~columns:[ ("k", Table.Right); ("P(k faults)", Table.Right) ]
  in
  for k = 0 to 5 do
    Table.row t [ string_of_int k; Printf.sprintf "%.4e" (Poisson.pmf ~lambda k) ]
  done;
  Table.rule t;
  (* 1 - cdf underflows at this lambda; the k=2..8 pmf sum is exact to
     double precision. *)
  let tail = ref 0.0 in
  for k = 2 to 8 do
    tail := !tail +. Poisson.pmf ~lambda k
  done;
  Table.row t [ ">=2"; Printf.sprintf "%.4e" !tail ];
  heading
    "Table I: Poisson probabilities for k independent faults per run"
  ^ Printf.sprintf
      "g = %.3f FIT/Mbit = %.3e /(ns*bit); benchmark: dt = 1e9 cycles @ \
       1 GHz, dm = 2^20 bit; lambda = g*dt*dm = %.3e\n\n"
      (Fit_rate.to_float rate)
      (Fit_rate.per_bit_per_ns rate)
      lambda
  ^ Table.render t
  ^ Printf.sprintf
      "\nP(2 faults) / P(1 fault) = %.2e: multi-fault runs are negligible;\n\
       injecting a single fault per experiment is justified (Section III-A).\n"
      (Poisson.pmf ~lambda 2 /. Poisson.pmf ~lambda 1)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                           *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  (* The paper's illustration: one byte written at cycle 4 and read back
     at cycle 11, in a 12-cycle run. *)
  let trace = Trace.create ~ram_size:2 in
  Trace.add trace ~cycle:4 ~addr:0 ~width:1 ~kind:Trace.Write;
  Trace.add trace ~cycle:11 ~addr:0 ~width:1 ~kind:Trace.Read;
  Trace.seal trace ~total_cycles:12;
  let defuse = Defuse.analyze trace in
  let classes = Defuse.classes defuse in
  let t =
    Table.create
      ~columns:
        [ ("byte", Table.Right); ("interval", Table.Left);
          ("kind", Table.Left); ("weight/bit", Table.Right) ]
  in
  Array.iter
    (fun (c : Defuse.byte_class) ->
      Table.row t
        [
          string_of_int c.Defuse.byte;
          Printf.sprintf "[%d, %d]" c.Defuse.t_start c.Defuse.t_end;
          Format.asprintf "%a" Defuse.pp_class_kind c.Defuse.kind;
          string_of_int (Defuse.weight c);
        ])
    classes;
  heading "Figure 1: def/use pruning of an illustrative fault space"
  ^ Faultmap.access_map ~trace ~defuse
  ^ "\n" ^ Table.render t
  ^ Printf.sprintf
      "\nraw fault space: %d coordinates (12 cycles x 16 bits; the paper \
       draws 9 bits => 108);\nexperiments after pruning: %d (the paper's \
       example: 8);\nknown-benign coordinates: %d; pruning factor %.0f.\n"
      (Defuse.fault_space_size defuse)
      (Defuse.experiment_count defuse)
      (Defuse.known_benign_weight defuse)
      (Defuse.pruning_factor defuse)

(* ------------------------------------------------------------------ *)
(* Figure 3 / Section IV                                              *)
(* ------------------------------------------------------------------ *)

let scan_stats name scan =
  Printf.sprintf
    "%-12s dt=%3d cycles  dm=%2d bytes  w=%4d  F(weighted)=%3d  coverage=%.1f%%\n"
    name scan.Scan.cycles scan.Scan.ram_bytes
    (Scan.fault_space_size scan)
    (Metrics.failure_count scan)
    (100.0 *. Metrics.coverage scan)

let figure3 () =
  let variants =
    [
      ("baseline", Hi.program ());
      ("DFT", Hi.dft ());
      ("DFT'", Hi.dft' ());
      ("DFT-mem", Hi.dft_memory ());
    ]
  in
  let scans =
    List.map
      (fun (name, image) ->
        let golden = Golden.run image in
        (name, golden, Scan.pruned ~variant:name golden))
      variants
  in
  let maps =
    List.concat_map
      (fun (name, golden, scan) ->
        [
          Printf.sprintf "\n-- %s (output %S) --\n" name golden.Golden.output;
          Faultmap.outcome_map golden scan;
        ])
      scans
  in
  let base_scan =
    match scans with (_, _, s) :: _ -> s | [] -> assert false
  in
  let activated =
    List.map
      (fun (name, _, scan) ->
        Printf.sprintf
          "%-12s activated-only coverage (Barbosa et al. restriction): %.1f%%\n"
          name
          (100.0 *. Metrics.coverage ~policy:Accounting.activated_only scan))
      scans
  in
  heading "Figure 3 / Section IV: the dilution delusion on the Hi program"
  ^ String.concat "" (List.map (fun (n, _, s) -> scan_stats n s) scans)
  ^ String.concat "" maps
  ^ "\n" ^ Faultmap.legend ^ "\n"
  ^ String.concat "" activated
  ^ Printf.sprintf
      "\nEvery dilution variant leaves the absolute failure count at F = %d\n\
       while inflating coverage — coverage is unfit for program comparison\n\
       (r = F_hardened/F_baseline = %.2f says: no improvement).\n"
      (Metrics.failure_count base_scan)
      (Compare.ratio ~baseline:base_scan
         ~hardened:(match scans with _ :: (_, _, s) :: _ -> s | _ -> base_scan))

(* ------------------------------------------------------------------ *)
(* Figure 2 (campaign-backed)                                         *)
(* ------------------------------------------------------------------ *)

let run_pair ?cache_dir ?(progress = fun _ -> Scan.no_progress) ~name
    ~baseline ~hardened () =
  let run variant build =
    let cache_file =
      Option.map
        (fun dir -> Filename.concat dir (Printf.sprintf "%s-%s.csv" name variant))
        cache_dir
    in
    let cached =
      match cache_file with
      | Some f when Sys.file_exists f -> (
          match Csv_io.load f with Ok scan -> Some scan | Error _ -> None)
      | Some _ | None -> None
    in
    match cached with
    | Some scan -> scan
    | None ->
        let golden = Golden.run (build ()) in
        let scan =
          Scan.pruned ~variant
            ~progress:(progress (name ^ "/" ^ variant))
            golden
        in
        (match cache_file with
        | Some f ->
            (try Csv_io.save f scan
             with Sys_error _ -> () (* cache is best-effort *))
        | None -> ());
        scan
  in
  (run "baseline" baseline, run "sum+dmr" hardened)

let figure2 pairs =
  let buf = Buffer.create 4096 in
  let panel title render =
    Buffer.add_string buf ("\n-- " ^ title ^ " --\n");
    Buffer.add_string buf render
  in
  let bars f =
    Barchart.render
      (List.concat_map
         (fun (name, sb, sh) ->
           [ (name ^ "/baseline", f sb); (name ^ "/sum+dmr", f sh) ])
         pairs)
  in
  Buffer.add_string buf
    (heading "Figure 2: metrics for the benchmark pairs, all accountings");
  panel "(a) fault coverage, unweighted (Pitfall 1)"
    (bars (fun s ->
         100.0 *. Metrics.coverage ~policy:Accounting.pitfall1 s));
  panel "(b) fault coverage, weighted"
    (bars (fun s -> 100.0 *. Metrics.coverage s));
  panel
    "(c) fault coverage, weighted but conducted-only (Barbosa et al. \
     restriction) [reconstructed panel]"
    (bars (fun s ->
         100.0 *. Metrics.coverage ~policy:Accounting.activated_only s));
  panel "(d) absolute failure counts, unweighted"
    (bars (fun s ->
         float_of_int (Metrics.failure_count ~policy:Accounting.pitfall1 s)));
  panel "(e) absolute failure counts, weighted (the objective metric)"
    (bars (fun s -> float_of_int (Metrics.failure_count s)));
  panel
    "(f) absolute failure probability per run, Equation 5 [reconstructed \
     panel]"
    (bars (fun s -> Metrics.failure_probability s *. 1e24));
  Buffer.add_string buf
    "   (unit: 1e-24 per run at 0.057 FIT/Mbit, 1 GHz)\n";
  let t =
    Table.create
      ~columns:
        [ ("benchmark", Table.Left); ("variant", Table.Left);
          ("runtime (cycles)", Table.Right); ("memory (bytes)", Table.Right) ]
  in
  List.iter
    (fun (name, sb, sh) ->
      Table.row t
        [ name; "baseline"; string_of_int sb.Scan.cycles;
          string_of_int sb.Scan.ram_bytes ];
      Table.row t
        [ name; "sum+dmr"; string_of_int sh.Scan.cycles;
          string_of_int sh.Scan.ram_bytes ])
    pairs;
  panel "(g) runtime and memory usage" (Table.render t);
  Buffer.add_string buf "\n-- comparison ratios (Section V) --\n";
  List.iter
    (fun (name, sb, sh) ->
      let p3 = Pitfalls.analyze_pitfall3 ~baseline:sb ~hardened:sh in
      Buffer.add_string buf
        (Format.asprintf "%-10s %a@." name Pitfalls.pp_pitfall3 p3))
    pairs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Other artifacts                                                    *)
(* ------------------------------------------------------------------ *)

let pruning_stats goldens =
  let t =
    Table.create
      ~columns:
        [ ("benchmark", Table.Left); ("raw fault space w", Table.Right);
          ("experiments", Table.Right); ("factor", Table.Right) ]
  in
  List.iter
    (fun (name, g) ->
      let d = g.Golden.defuse in
      Table.row t
        [
          name;
          string_of_int (Defuse.fault_space_size d);
          string_of_int (Defuse.experiment_count d);
          Printf.sprintf "%.0f" (Defuse.pruning_factor d);
        ])
    goldens;
  heading
    "Section III-C: def/use pruning effectiveness (paper: sync2 1.5e8 -> \
     19,553)"
  ^ Table.render t

let pitfall2 ?(samples = 4096) ?(seed = 42L) scan golden =
  let truth =
    float_of_int (Metrics.failure_count scan)
    /. float_of_int (Scan.fault_space_size scan)
  in
  let t =
    Table.create
      ~columns:
        [ ("N samples", Table.Right); ("correct (raw space)", Table.Right);
          ("biased (per class)", Table.Right); ("truth", Table.Right) ]
  in
  let n = ref 256 in
  while !n <= samples do
    let rng_c = Prng.create ~seed in
    let rng_b = Prng.create ~seed:(Int64.add seed 1L) in
    let correct = Sampler.uniform_raw rng_c ~samples:!n golden in
    let biased = Sampler.biased_per_class rng_b ~samples:!n golden in
    Table.row t
      [
        string_of_int !n;
        Printf.sprintf "%.5f" (Sampler.failure_fraction correct);
        Printf.sprintf "%.5f" (Sampler.failure_fraction biased);
        Printf.sprintf "%.5f" truth;
      ];
    n := !n * 4
  done;
  heading "Pitfall 2: biased (per-class) sampling vs. correct sampling"
  ^ Table.render t
  ^ "\nPer-class sampling ignores equivalence-class weights and converges\n\
     to the wrong value; raw-space sampling converges to the truth.\n"

let pitfall3_extrapolation ?(samples = 2048) ?(seed = 7L) entries =
  let t =
    Table.create
      ~columns:
        [ ("variant", Table.Left); ("w", Table.Right);
          ("F_sampled (raw)", Table.Right); ("F_extrapolated", Table.Right);
          ("F full scan", Table.Right) ]
  in
  List.iter
    (fun (name, scan, golden) ->
      let rng = Prng.create ~seed in
      let est = Sampler.uniform_raw rng ~samples golden in
      Table.row t
        [
          name;
          string_of_int (Scan.fault_space_size scan);
          string_of_int est.Sampler.failures;
          Printf.sprintf "%.0f" (Metrics.extrapolated_failures est);
          string_of_int (Metrics.failure_count scan);
        ])
    entries;
  heading
    "Pitfall 3 (corollary 2): raw sample counts vs. extrapolated counts"
  ^ Table.render t
  ^ Printf.sprintf
      "\nAll variants were sampled with the same N = %d: raw F_sampled \
       ignores\nthe differing fault-space sizes w and is meaningless across \
       variants;\nextrapolation recovers the full-scan counts.\n"
      samples

let ablation entries =
  let t =
    Table.create
      ~columns:
        [ ("variant", Table.Left); ("cycles", Table.Right);
          ("RAM", Table.Right); ("coverage", Table.Right);
          ("F (weighted)", Table.Right); ("P(Failure)", Table.Right);
          ("MWTF (runs)", Table.Right) ]
  in
  List.iter
    (fun (name, scan) ->
      Table.row t
        [
          name;
          string_of_int scan.Scan.cycles;
          string_of_int scan.Scan.ram_bytes;
          Printf.sprintf "%.2f%%" (100.0 *. Metrics.coverage scan);
          string_of_int (Metrics.failure_count scan);
          Printf.sprintf "%.3e" (Metrics.failure_probability scan);
          Printf.sprintf "%.3e" (Mwtf.runs_to_failure scan);
        ])
    entries;
  heading "Hardening-mechanism ablation (extension)" ^ Table.render t

let figure2_sampled ?(samples = 20_000) ?(seed = 2015L) pairs =
  let t =
    Table.create
      ~columns:
        [ ("variant", Table.Left); ("N", Table.Right);
          ("conducted", Table.Right); ("F_extrapolated", Table.Right);
          ("95% CI", Table.Left); ("F full scan", Table.Right) ]
  in
  let rebuild name variant =
    (* The golden runs are cheap to reproduce from the benchmark suite;
       scans passed in supply the ground truth. *)
    match Suite.find ~benchmark:name ~variant with
    | Some e -> Golden.run (e.Suite.build ())
    | None -> invalid_arg ("figure2_sampled: unknown benchmark " ^ name)
  in
  List.iter
    (fun (name, sb, sh) ->
      List.iter
        (fun (variant_name, variant, scan) ->
          let golden = rebuild name variant in
          let rng = Prng.create ~seed in
          let est = Sampler.uniform_raw rng ~samples golden in
          let ci =
            Confidence.wilson ~fails:est.Sampler.failures
              ~trials:est.Sampler.samples ~confidence:0.95
          in
          let w = float_of_int est.Sampler.population in
          Table.row t
            [
              Printf.sprintf "%s/%s" name variant_name;
              string_of_int samples;
              string_of_int est.Sampler.conducted;
              Printf.sprintf "%.0f" (Metrics.extrapolated_failures est);
              Printf.sprintf "[%.0f, %.0f]"
                (w *. ci.Confidence.lower)
                (w *. ci.Confidence.upper);
              string_of_int (Metrics.failure_count scan);
            ])
        [ ("baseline", Suite.Baseline, sb); ("sum+dmr", Suite.Sum_dmr, sh) ])
    pairs;
  heading
    "Figure 2(e) by sampling: extrapolated failure counts with confidence \
     intervals"
  ^ Table.render t
  ^ "\nSampling reaches the same verdicts as the full scans at a small\n\
     fraction of the conducted experiments (compare the 'conducted' column\n\
     with the full campaigns' class counts).\n"

let cross_layer entries =
  let t =
    Table.create
      ~columns:
        [ ("benchmark", Table.Left); ("layer", Table.Left);
          ("w", Table.Right); ("coverage", Table.Right);
          ("F (weighted)", Table.Right) ]
  in
  List.iter
    (fun (name, rs) ->
      let mem_scan = Scan.pruned ~variant:"memory" rs.Regspace.golden in
      let reg_scan = Regspace.scan rs in
      List.iter
        (fun (layer, scan) ->
          Table.row t
            [
              name; layer;
              string_of_int (Scan.fault_space_size scan);
              Printf.sprintf "%.2f%%" (100.0 *. Metrics.coverage scan);
              string_of_int (Metrics.failure_count scan);
            ])
        [ ("memory", mem_scan); ("registers", reg_scan) ])
    entries;
  heading
    "Cross-layer fault spaces (Sections VI-B/VI-C): memory vs. register file"
  ^ Table.render t
  ^ "\nThe two layers have vastly different fault-space sizes, so their\n\
     coverage percentages are not comparable (the trap behind the 'high-\n\
     level FI is inaccurate by 45x' conclusions the paper re-examines);\n\
     absolute failure counts remain meaningful per layer and can be summed\n\
     after weighting each layer by its physical fault rate.\n"

let breakdown scan image =
  let t =
    Table.create
      ~columns:
        [ ("region", Table.Left); ("bytes", Table.Right);
          ("failure mass", Table.Right); ("byte-equivalents", Table.Right) ]
  in
  List.iter
    (fun (r : Breakdown.region) ->
      Table.row t
        [
          r.Breakdown.name;
          string_of_int r.Breakdown.bytes;
          string_of_int r.Breakdown.failure_mass;
          Printf.sprintf "%.1f" r.Breakdown.byte_equivalents;
        ])
    (Breakdown.by_region scan image);
  heading "Failure-mass breakdown by data region" ^ Table.render t
