type burst_pattern = Adjacent | Row of int

type model =
  | Bitflip_mem
  | Bitflip_reg
  | Burst of { width : int; pattern : burst_pattern }
  | Skip

let check_burst ~width ~pattern =
  if width < 2 || width > 8 then
    invalid_arg
      (Printf.sprintf "Faultspace.burst: width %d outside 2..8" width);
  match pattern with
  | Adjacent -> ()
  | Row s ->
      if s < 2 || s > 7 then
        invalid_arg
          (Printf.sprintf "Faultspace.burst: row stride %d outside 2..7" s)

let burst ?row width =
  let pattern = match row with None -> Adjacent | Some s -> Row s in
  check_burst ~width ~pattern;
  Burst { width; pattern }

let tag = function
  | Bitflip_mem -> "mem"
  | Bitflip_reg -> "reg"
  | Burst { width; pattern = Adjacent } -> Printf.sprintf "burst%d" width
  | Burst { width; pattern = Row s } -> Printf.sprintf "burst%dr%d" width s
  | Skip -> "skip"

let known =
  [
    ("mem", "single-bit memory flips, def/use pruned (the paper's model)");
    ("reg", "single-bit register-file flips (Section VI-B)");
    ("burst<w>", "<w>-adjacent-bit burst within one byte, 2 <= w <= 8");
    ( "burst<w>r<s>",
      "<w>-bit burst at SRAM row stride <s> (bit-interleaved adjacency), \
       2 <= s <= 7" );
    ("skip", "one-cycle instruction skip (fetched instruction becomes a nop)");
  ]

let describe = function
  | Bitflip_mem -> "single-bit memory flips, def/use pruned"
  | Bitflip_reg -> "single-bit register-file flips"
  | Burst { width; pattern = Adjacent } ->
      Printf.sprintf "%d-adjacent-bit burst within one data byte" width
  | Burst { width; pattern = Row s } ->
      Printf.sprintf
        "%d-bit spatially-correlated burst within one data byte (row stride \
         %d)"
        width s
  | Skip -> "one-cycle instruction skip"

let of_tag s =
  let fail () =
    Error
      (Printf.sprintf
         "unknown fault model %S (expected %s)" s
         (String.concat ", " (List.map fst known)))
  in
  match s with
  | "mem" -> Ok Bitflip_mem
  | "reg" -> Ok Bitflip_reg
  | "skip" -> Ok Skip
  | _ when String.length s > 5 && String.sub s 0 5 = "burst" -> (
      let rest = String.sub s 5 (String.length s - 5) in
      let parse_burst width pattern =
        if width < 2 || width > 8 then
          Error (Printf.sprintf "burst width in %S outside 2..8" s)
        else
          match pattern with
          | Row stride when stride < 2 || stride > 7 ->
              Error (Printf.sprintf "burst row stride in %S outside 2..7" s)
          | _ -> Ok (Burst { width; pattern })
      in
      match String.index_opt rest 'r' with
      | None -> (
          match int_of_string_opt rest with
          | Some w -> parse_burst w Adjacent
          | None -> fail ())
      | Some i -> (
          let w = String.sub rest 0 i in
          let r = String.sub rest (i + 1) (String.length rest - i - 1) in
          match (int_of_string_opt w, int_of_string_opt r) with
          | Some w, Some r -> parse_burst w (Row r)
          | _ -> fail ()))
  | _ -> fail ()

let legacy = function
  | Bitflip_mem | Bitflip_reg -> true
  | Burst _ | Skip -> false

type cell = {
  golden : Golden.t;
  classes : Defuse.byte_class array;
  ram_bytes : int;
  benign_weight : int;
  conduct :
    Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t;
}

let experiments cell = 8 * Array.length cell.classes

(* ------------------------------------------------------------------ *)
(* Burst                                                              *)
(* ------------------------------------------------------------------ *)

(* The burst stays within the addressed byte, so the def/use partition
   of the single-bit model carries over unchanged: equivalence intervals
   are byte-access boundaries, and flipping [width] bits anywhere in an
   untouched interval is equivalent to flipping them at its canonical
   [t_end].  Benign classes stay benign — an overwritten or dormant byte
   is overwritten or dormant no matter how many of its bits flipped. *)
let conduct_burst ~width ~step session (c : Defuse.byte_class)
    ~bit_in_byte =
  Injector.session_run_flip session ~cycle:c.Defuse.t_end ~flip:(fun m ->
      for j = 0 to width - 1 do
        Machine.flip_bit m ((c.Defuse.byte * 8) + ((bit_in_byte + (j * step)) mod 8))
      done)

(* ------------------------------------------------------------------ *)
(* Skip                                                               *)
(* ------------------------------------------------------------------ *)

(* The skip space is the cycle axis: one experiment per executed cycle,
   no equivalence pruning.  The journal records exactly 8 outcome slots
   per class, so cycles pack 8 per synthetic class: class [i] holds
   cycles [8i+1 .. 8i+8], slot [s] injecting at cycle [8i+1+s].  The
   class is encoded [{byte = i; t_start = t_end = 8i+1}] so each slot's
   span-derived experiment weight is 1 (each cycle is its own class) and
   [t_end] stays strictly increasing — shard order therefore visits
   injection cycles non-decreasingly, the session invariant. *)
let skip_classes cycles =
  Array.init
    ((cycles + 7) / 8)
    (fun i ->
      {
        Defuse.byte = i;
        t_start = (8 * i) + 1;
        t_end = (8 * i) + 1;
        kind = Defuse.Experiment;
      })

let conduct_skip ~cycles session (c : Defuse.byte_class) ~bit_in_byte =
  let cycle = c.Defuse.t_start + bit_in_byte in
  if cycle > cycles then
    (* padding slot of the last class, past the golden runtime *)
    Outcome.No_effect
  else Injector.session_run_flip session ~cycle ~flip:Machine.skip_next

(* ------------------------------------------------------------------ *)
(* Cells                                                              *)
(* ------------------------------------------------------------------ *)

let of_golden model (golden : Golden.t) =
  match model with
  | Bitflip_reg ->
      invalid_arg "Faultspace.of_golden: Bitflip_reg needs a Regspace.t"
  | Bitflip_mem ->
      {
        golden;
        classes = Defuse.experiment_classes golden.Golden.defuse;
        ram_bytes = golden.Golden.program.Program.ram_size;
        benign_weight = Defuse.known_benign_weight golden.Golden.defuse;
        conduct = Scan.conduct_class;
      }
  | Burst { width; pattern } ->
      check_burst ~width ~pattern;
      let step = match pattern with Adjacent -> 1 | Row s -> s in
      {
        golden;
        classes = Defuse.experiment_classes golden.Golden.defuse;
        ram_bytes = golden.Golden.program.Program.ram_size;
        benign_weight = Defuse.known_benign_weight golden.Golden.defuse;
        conduct = conduct_burst ~width ~step;
      }
  | Skip ->
      let cycles = golden.Golden.cycles in
      let classes = skip_classes cycles in
      {
        golden;
        classes;
        ram_bytes = Array.length classes;
        benign_weight = 0;
        conduct = conduct_skip ~cycles;
      }

let of_regspace (r : Regspace.t) =
  {
    golden = r.Regspace.golden;
    classes = Defuse.experiment_classes r.Regspace.reg_defuse;
    ram_bytes = Regspace.pseudo_ram_bytes;
    benign_weight = Defuse.known_benign_weight r.Regspace.reg_defuse;
    conduct = Regspace.conduct;
  }

let analyse ?limit model program =
  match model with
  | Bitflip_reg -> of_regspace (Regspace.analyze ?limit program)
  | _ -> of_golden model (Golden.run ?limit program)
