(** Pluggable fault models.

    The paper's pitfalls (result dilution, biased sampling, unfair
    cross-layer comparison) are all stated over a {e fault space}, yet
    until this module the reproduction hard-coded exactly two — single-bit
    memory flips and single-bit register flips.  A {!model} is a
    first-class value describing {e which} faults a campaign injects; a
    {!cell} is that model analysed against one program: the experiment
    equivalence classes to shard, the a-priori-benign weight, and the
    per-experiment conductor over the {!Injector.provider} session API.

    Every model reuses the engine's whole execution stack unchanged —
    sharding, journaling, [--resume], the result cache, and all four
    backends — because each one presents its space as an array of
    {!Defuse.byte_class}es (8 experiment slots per class, the journal's
    record granularity) whose canonical injection cycles are
    non-decreasing in [t_end] order, the only invariant the engine's
    per-shard sessions require.

    The four models:

    - {!Bitflip_mem} — the paper's model: one bit of data memory, def/use
      pruned ({!Scan.pruned}).  Bit-identical to the legacy memory path.
    - {!Bitflip_reg} — the Section VI-B register file space
      ({!Regspace.scan}).  Bit-identical to the legacy register path.
    - {!Burst} — [width] bits of one data byte flip together, adjacent or
      interleaved by a row stride, modelling the spatially-correlated
      multi-bit upsets observed in undervolted SRAMs (Soyturk et al.).
      Def/use pruning stays sound because the burst never leaves the
      addressed byte: equivalence intervals are per-byte access
      boundaries, independent of how many bits flip inside the byte.
    - {!Skip} — instruction skip (InjectV-style, Lentini et al.): a
      cycle-indexed space where the instruction fetched at the injection
      cycle executes as a no-op ({!Machine.skip_next}).  Cycles are packed
      8 per synthetic class to fit the journal's 8-slots-per-class record
      format; see {!of_golden}. *)

type burst_pattern =
  | Adjacent  (** Bits [b, b+1, …] (mod 8) flip together. *)
  | Row of int
      (** Bits [b, b+s, b+2s, …] (mod 8) for row stride [s] — the
          bit-interleaved physical-row adjacency of real SRAM arrays,
          where logically distant bits are physical neighbours. *)

type model =
  | Bitflip_mem  (** Single-bit memory flips (the paper's model). *)
  | Bitflip_reg  (** Single-bit register-file flips (Section VI-B). *)
  | Burst of { width : int; pattern : burst_pattern }
      (** [width]-bit multi-bit upset within one byte (2–8 bits). *)
  | Skip  (** One-cycle instruction skip. *)

val burst : ?row:int -> int -> model
(** [burst width] is [Burst {width; pattern = Adjacent}]; [burst ~row:s
    width] uses [Row s].  @raise Invalid_argument unless [2 <= width <= 8]
    and [2 <= s <= 7]. *)

val tag : model -> string
(** The stable fingerprint tag: ["mem"], ["reg"], ["burst<w>"],
    ["burst<w>r<s>"], ["skip"].  Recorded in journal fingerprints,
    journal headers and result-cache keys — two campaigns with different
    tags never cross-resume and never share cache entries.  The legacy
    models keep their pre-subsystem tags, so their fingerprints, journals
    and cache keys are byte-identical to before. *)

val of_tag : string -> (model, string) result
(** Parse a {!tag} back (the CLI's [--fault-model] parser); [Error]
    carries a human-readable message listing the known forms. *)

val describe : model -> string
(** One-line human description, for reports and [--help]. *)

val legacy : model -> bool
(** [true] for {!Bitflip_mem}/{!Bitflip_reg} — the models whose journal
    headers keep the pre-subsystem ["fi-engine v2"] version string (new
    models write ["fi-engine v3"], see {!DESIGN.md} §15). *)

val known : (string * string) list
(** [(tag form, description)] pairs for help output. *)

type cell = {
  golden : Golden.t;  (** The shared fault-free reference run. *)
  classes : Defuse.byte_class array;
      (** Experiment equivalence classes, [t_end]-sorted by construction
          (the engine's shard-contiguity invariant).  8 experiment slots
          per class. *)
  ram_bytes : int;
      (** Real ({!Bitflip_mem}/{!Burst}), pseudo ({!Bitflip_reg}: 60) or
          synthetic ({!Skip}: class count) row footprint — the
          fingerprint's and {!Scan.t}'s [ram_bytes]. *)
  benign_weight : int;
      (** Fault-space coordinates known benign a priori (overwritten or
          dormant classes); [0] for {!Skip}, whose space has no pruning. *)
  conduct :
    Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t;
      (** Conduct one experiment slot on a session over [golden]'s
          provider.  Injection cycles are non-decreasing when classes are
          visited in [t_end] order with ascending slots. *)
}

val of_golden : model -> Golden.t -> cell
(** Analyse a memory-indexed model against an existing golden run.

    {!Bitflip_mem} and {!Burst} share the def/use partition (classes,
    weights and benign weight are identical — a burst only widens what
    flips {e inside} the addressed byte).  {!Skip} builds a synthetic
    partition over the cycle axis: class [i] covers cycles
    [8i+1 … 8i+8], encoded as [{byte = i; t_start = t_end = 8i+1}] so
    each slot's {!Defuse.weight}-derived experiment weight is 1 (every
    cycle is its own equivalence class — no pruning), and slot [s]
    injects at cycle [8i+1+s].  Trailing slots of the last class that
    fall beyond the golden runtime are conducted as {!Outcome.No_effect}
    without running the machine.

    @raise Invalid_argument for {!Bitflip_reg} (use {!of_regspace}) or a
    malformed {!Burst}. *)

val of_regspace : Regspace.t -> cell
(** The {!Bitflip_reg} cell of an existing register analysis. *)

val analyse : ?limit:int -> model -> Program.t -> cell
(** Analyse from scratch: {!Golden.run} (plus {!Regspace.analyze} for
    {!Bitflip_reg}) and dispatch to {!of_golden}/{!of_regspace}. *)

val experiments : cell -> int
(** [8 × Array.length classes] — the campaign's experiment count. *)
