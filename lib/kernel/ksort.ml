(* A compute kernel for the model × kernel × hardening matrix: in-place
   selection sort of a protected word table.  Unlike the OS-object
   benchmarks, the long-lived critical data here is the {e payload}
   itself — every element is read and rewritten many times across the
   run, so the def/use profile (and therefore the dilution behaviour)
   is very different from bin_sem2-style idle-object kernels. *)

let words_default = 10

let build words =
  let open Builder in
  (* A fixed pseudo-random permutation seed — deterministic, unsorted. *)
  let data_init = List.init words (fun k -> ((k * 37) + 11) mod 97) in
  let globals =
    [
      array ~protected:true "data" words ~init:data_init;
      global ~protected:true "chk";
    ]
  in
  (* One outer selection step: find the minimum of data[i..] and swap it
     into slot i.  Declared over the protected table so SUM+DMR checks
     at entry and updates replicas at exit, exactly like the OS kernels'
     critical sections. *)
  let select =
    func "select_min" ~params:[ "lo" ] ~locals:[ "m"; "j"; "t" ]
      ~protects:[ "data" ]
      ([ set "m" (l "lo") ]
      @ for_ "j" ~from:(l "lo" +: i 1) ~below:(i words)
          (if_ (elem "data" (l "j") <: elem "data" (l "m"))
             [ set "m" (l "j") ])
      @ [
          set "t" (elem "data" (l "lo"));
          set_elem "data" (l "lo") (elem "data" (l "m"));
          set_elem "data" (l "m") (l "t");
          ret_unit;
        ])
  in
  (* Fold the sorted table into a checksum the output depends on — an
     SDC anywhere in the table surfaces in the serial output. *)
  let checksum =
    func "checksum" ~locals:[ "j" ] ~protects:[ "data"; "chk" ]
      ([ setg "chk" (i 0) ]
      @ for_ "j" ~from:(i 0) ~below:(i words)
          [ setg "chk" (((g "chk" *: i 31) +: elem "data" (l "j")) &: i 0xFFFF) ]
      @ [ ret_unit ])
  in
  let main =
    func "main" ~locals:[ "k" ]
      (for_ "k" ~from:(i 0) ~below:(i (words - 1))
         [ call_ "select_min" [ l "k" ] ]
      @ [
          call_ "checksum" [];
          out_str "sort ";
          call_ out_dec [ elem "data" (i 0) ];
          out (i 32);
          call_ out_dec [ elem "data" (i (words - 1)) ];
          out (i 32);
          call_ out_dec [ g "chk" ];
          out_str " done\n";
          ret_unit;
        ])
  in
  prog ~name:"sort" ~stack:128 globals ([ select; checksum; main ] @ stdlib)

let program ?(words = words_default) () = build words
let baseline ?words () = Codegen.compile (program ?words ())
let sum_dmr ?words () = Codegen.compile (Harden.sum_dmr (program ?words ()))
let tmr ?words () = Codegen.compile (Harden.tmr (program ?words ()))
