type variant = Baseline | Sum_dmr | Tmr

let variant_name = function
  | Baseline -> "baseline"
  | Sum_dmr -> "sum+dmr"
  | Tmr -> "tmr"

type entry = {
  benchmark : string;
  variant : variant;
  build : unit -> Program.t;
}

let all =
  [
    { benchmark = "bin_sem2"; variant = Baseline;
      build = (fun () -> Bin_sem2.baseline ()) };
    { benchmark = "bin_sem2"; variant = Sum_dmr;
      build = (fun () -> Bin_sem2.sum_dmr ()) };
    { benchmark = "bin_sem2"; variant = Tmr;
      build = (fun () -> Bin_sem2.tmr ()) };
    { benchmark = "sync2"; variant = Baseline;
      build = (fun () -> Sync2.baseline ()) };
    { benchmark = "sync2"; variant = Sum_dmr;
      build = (fun () -> Sync2.sum_dmr ()) };
    { benchmark = "sync2"; variant = Tmr; build = (fun () -> Sync2.tmr ()) };
    { benchmark = "mutex1"; variant = Baseline;
      build = (fun () -> Mutex1.baseline ()) };
    { benchmark = "mutex1"; variant = Sum_dmr;
      build = (fun () -> Mutex1.sum_dmr ()) };
    { benchmark = "mutex1"; variant = Tmr;
      build = (fun () -> Mutex1.tmr ()) };
    { benchmark = "flag1"; variant = Baseline;
      build = (fun () -> Flag1.baseline ()) };
    { benchmark = "flag1"; variant = Sum_dmr;
      build = (fun () -> Flag1.sum_dmr ()) };
    { benchmark = "flag1"; variant = Tmr; build = (fun () -> Flag1.tmr ()) };
    { benchmark = "mbox1"; variant = Baseline;
      build = (fun () -> Mbox1.baseline ()) };
    { benchmark = "mbox1"; variant = Sum_dmr;
      build = (fun () -> Mbox1.sum_dmr ()) };
    { benchmark = "mbox1"; variant = Tmr; build = (fun () -> Mbox1.tmr ()) };
    { benchmark = "sort"; variant = Baseline;
      build = (fun () -> Ksort.baseline ()) };
    { benchmark = "sort"; variant = Sum_dmr;
      build = (fun () -> Ksort.sum_dmr ()) };
    { benchmark = "sort"; variant = Tmr; build = (fun () -> Ksort.tmr ()) };
    { benchmark = "crc"; variant = Baseline;
      build = (fun () -> Kcrc.baseline ()) };
    { benchmark = "crc"; variant = Sum_dmr;
      build = (fun () -> Kcrc.sum_dmr ()) };
    { benchmark = "crc"; variant = Tmr; build = (fun () -> Kcrc.tmr ()) };
  ]

let paper_pairs =
  [
    ( "bin_sem2",
      (fun () -> Bin_sem2.baseline ()),
      fun () -> Bin_sem2.sum_dmr () );
    ("sync2", (fun () -> Sync2.baseline ()), fun () -> Sync2.sum_dmr ());
  ]

let find ~benchmark ~variant =
  List.find_opt (fun e -> e.benchmark = benchmark && e.variant = variant) all

(* ------------------------------------------------------------------ *)
(* Campaign specs over the suite                                      *)
(* ------------------------------------------------------------------ *)

let spec_of ?(model = Faultspace.Bitflip_mem) ?policy entry =
  Spec.build ~model ~variant:(variant_name entry.variant) ?policy
    ~benchmark:entry.benchmark entry.build

let spec_matrix ?model ?policy () =
  List.map (fun e -> spec_of ?model ?policy e) all

let paper_specs ?(model = Faultspace.Bitflip_mem) ?policy () =
  List.concat_map
    (fun (benchmark, baseline, sum_dmr) ->
      [
        Spec.build ~model ~variant:"baseline" ?policy ~benchmark baseline;
        Spec.build ~model ~variant:"sum+dmr" ?policy ~benchmark sum_dmr;
      ])
    paper_pairs
