type variant = Baseline | Sum_dmr | Tmr

let variant_name = function
  | Baseline -> "baseline"
  | Sum_dmr -> "sum+dmr"
  | Tmr -> "tmr"

type entry = {
  benchmark : string;
  variant : variant;
  build : unit -> Program.t;
}

let all =
  [
    { benchmark = "bin_sem2"; variant = Baseline;
      build = (fun () -> Bin_sem2.baseline ()) };
    { benchmark = "bin_sem2"; variant = Sum_dmr;
      build = (fun () -> Bin_sem2.sum_dmr ()) };
    { benchmark = "bin_sem2"; variant = Tmr;
      build = (fun () -> Bin_sem2.tmr ()) };
    { benchmark = "sync2"; variant = Baseline;
      build = (fun () -> Sync2.baseline ()) };
    { benchmark = "sync2"; variant = Sum_dmr;
      build = (fun () -> Sync2.sum_dmr ()) };
    { benchmark = "sync2"; variant = Tmr; build = (fun () -> Sync2.tmr ()) };
    { benchmark = "mutex1"; variant = Baseline;
      build = (fun () -> Mutex1.baseline ()) };
    { benchmark = "mutex1"; variant = Sum_dmr;
      build = (fun () -> Mutex1.sum_dmr ()) };
    { benchmark = "mutex1"; variant = Tmr;
      build = (fun () -> Mutex1.tmr ()) };
    { benchmark = "flag1"; variant = Baseline;
      build = (fun () -> Flag1.baseline ()) };
    { benchmark = "flag1"; variant = Sum_dmr;
      build = (fun () -> Flag1.sum_dmr ()) };
    { benchmark = "flag1"; variant = Tmr; build = (fun () -> Flag1.tmr ()) };
    { benchmark = "mbox1"; variant = Baseline;
      build = (fun () -> Mbox1.baseline ()) };
    { benchmark = "mbox1"; variant = Sum_dmr;
      build = (fun () -> Mbox1.sum_dmr ()) };
    { benchmark = "mbox1"; variant = Tmr; build = (fun () -> Mbox1.tmr ()) };
  ]

let paper_pairs =
  [
    ( "bin_sem2",
      (fun () -> Bin_sem2.baseline ()),
      fun () -> Bin_sem2.sum_dmr () );
    ("sync2", (fun () -> Sync2.baseline ()), fun () -> Sync2.sum_dmr ());
  ]

let find ~benchmark ~variant =
  List.find_opt (fun e -> e.benchmark = benchmark && e.variant = variant) all

(* ------------------------------------------------------------------ *)
(* Campaign specs over the suite                                      *)
(* ------------------------------------------------------------------ *)

let spec_of ?(space = Spec.Memory) ?policy entry =
  let mk =
    match space with Spec.Memory -> Spec.memory | Spec.Registers -> Spec.registers
  in
  mk ~variant:(variant_name entry.variant) ?policy ~benchmark:entry.benchmark
    entry.build

let spec_matrix ?space ?policy () =
  List.map (fun e -> spec_of ?space ?policy e) all

let paper_specs ?(space = Spec.Memory) ?policy () =
  List.concat_map
    (fun (benchmark, baseline, sum_dmr) ->
      let mk =
        match space with
        | Spec.Memory -> Spec.memory
        | Spec.Registers -> Spec.registers
      in
      [
        mk ~variant:"baseline" ?policy ~benchmark baseline;
        mk ~variant:"sum+dmr" ?policy ~benchmark sum_dmr;
      ])
    paper_pairs
