(** The benchmark suite: every program/variant pair used by tests,
    examples and the benchmark harness. *)

type variant = Baseline | Sum_dmr | Tmr

val variant_name : variant -> string
(** ["baseline"], ["sum+dmr"], ["tmr"]. *)

type entry = {
  benchmark : string;  (** e.g. ["bin_sem2"]. *)
  variant : variant;
  build : unit -> Program.t;  (** Compile the image. *)
}

val all : entry list
(** The kernel benchmarks × variants — the five OS-object kernels
    (bin_sem2, sync2, mutex1, flag1, mbox1) plus the two compute
    kernels (sort, crc), each as baseline / SUM+DMR / TMR. *)

val paper_pairs : (string * (unit -> Program.t) * (unit -> Program.t)) list
(** The paper's Figure 2 pairs: (name, baseline, SUM+DMR) for bin_sem2
    and sync2. *)

val find : benchmark:string -> variant:variant -> entry option

val spec_of :
  ?model:Faultspace.model -> ?policy:Spec.policy -> entry -> Spec.t
(** Campaign spec for one suite cell (default
    [Faultspace.Bitflip_mem]; pass any other {!Faultspace.model} for
    its space).  The spec's variant is {!variant_name}[ entry.variant]
    under every model. *)

val spec_matrix :
  ?model:Faultspace.model -> ?policy:Spec.policy -> unit -> Spec.t list
(** One spec per {!all} cell, ready for [Engine.run_matrix]. *)

val paper_specs :
  ?model:Faultspace.model -> ?policy:Spec.policy -> unit -> Spec.t list
(** The {!paper_pairs} matrix flattened to specs (baseline and SUM+DMR
    cells for bin_sem2 and sync2) — the cells behind Figure 2 and the
    benchmark harness's matrix artifact. *)
