(* CRC compute kernel for the model × kernel × hardening matrix:
   bitwise CRC-16/CCITT over a protected message table.  The message is
   read-only after initialisation (check-only under SUM+DMR, like
   bin_sem2's parameter table) while the running checksum is a hot
   read-modify-write scalar — the two extremes of data lifetime in one
   kernel, which is exactly what the burst and skip models stress
   differently than single-bit flips. *)

let words_default = 16

let build words =
  let open Builder in
  let msg_init = List.init words (fun k -> ((k * 53) + 29) land 0xFF) in
  let globals =
    [
      array ~protected:true "msg" words ~init:msg_init;
      global ~protected:true "crc";
    ]
  in
  (* Fold one message byte into the checksum: 8 shift/xor rounds of the
     CCITT polynomial 0x1021. *)
  let step =
    func "crc_step" ~params:[ "b" ] ~locals:[ "k" ] ~protects:[ "crc" ]
      ([ setg "crc" ((g "crc" ^: (l "b" <<: i 8)) &: i 0xFFFF) ]
      @ for_ "k" ~from:(i 0) ~below:(i 8)
          (if_else
             ((g "crc" &: i 0x8000) <>: i 0)
             [ setg "crc" (((g "crc" <<: i 1) ^: i 0x1021) &: i 0xFFFF) ]
             [ setg "crc" ((g "crc" <<: i 1) &: i 0xFFFF) ])
      @ [ ret_unit ])
  in
  let main =
    func "main" ~locals:[ "j" ] ~protects:[ "msg" ]
      ([ setg "crc" (i 0xFFFF) ]
      @ for_ "j" ~from:(i 0) ~below:(i words)
          [ call_ "crc_step" [ elem "msg" (l "j") ] ]
      @ [
          out_str "crc ";
          call_ out_dec [ g "crc" ];
          out_str " done\n";
          ret_unit;
        ])
  in
  prog ~name:"crc" ~stack:128 globals ([ step; main ] @ stdlib)

let program ?(words = words_default) () = build words
let baseline ?words () = Codegen.compile (program ?words ())
let sum_dmr ?words () = Codegen.compile (Harden.sum_dmr (program ?words ()))
let tmr ?words () = Codegen.compile (Harden.tmr (program ?words ()))
