let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let write_string fd s = write_all fd s 0 (String.length s)

let rec read_once fd buf off len =
  match Unix.read fd buf off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once fd buf off len

let read_avail fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> `Eof
  | k -> `Data k
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Nothing
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Nothing
  | exception Unix.Unix_error _ -> `Eof

let really_read fd buf off len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    match read_once fd buf (off + !got) (len - !got) with
    | 0 -> eof := true
    | n -> got := !got + n
  done;
  not !eof

let select_read fds timeout =
  match Unix.select fds [] [] timeout with
  | readable, _, _ -> readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let rec wait_readable fd timeout =
  let t0 = Unix.gettimeofday () in
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      let left = timeout -. (Unix.gettimeofday () -. t0) in
      if left <= 0. then false else wait_readable fd left

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()
