(** TCP connections carrying {!Frame}s.

    A {!conn} owns a socket, a frame {!Frame.decoder} and a read buffer.
    The two consumption styles match the two ends of the campaign
    protocol: a worker blocks in {!recv}; the engine's supervision loop
    [select]s over many connections and {!pump}s the readable ones. *)

type conn

val fd : conn -> Unix.file_descr
(** For [select]; do not read from it directly — {!pump} owns the
    decoder state. *)

val peer : conn -> string

val of_fd : peer:string -> Unix.file_descr -> conn
(** Wrap an already-connected descriptor (tests, exotic transports). *)

val connect : ?timeout:float -> Addr.t -> (conn, string) result
(** Connect with [TCP_NODELAY] (doorbell frames are latency-bound).
    [timeout] (default 10 s) bounds the attempt — an unreachable host is
    an [Error], never a minutes-long kernel SYN stall. *)

val listen : Addr.t -> (Unix.file_descr * Addr.t, string) result
(** Bind + listen (with [SO_REUSEADDR]); returns the listening socket
    and the address with the {e actual} port (port [0] asks the kernel
    to pick one — how tests avoid collisions). *)

val accept : Unix.file_descr -> conn
(** Accept one connection ([EINTR]-retried, blocking). *)

val send : conn -> Frame.kind -> string -> unit
val recv : ?timeout:float -> conn -> (Frame.kind * string) option
(** Blocking {!Frame.recv}. *)

val pump :
  conn ->
  [ `Frames of (Frame.kind * string) list | `Eof | `Corrupt of string ]
(** One non-blocking-ish pump for a select loop: a single
    {!Sysio.read_avail}, then every frame it completed.  [`Frames []]
    means "nothing yet"; [`Eof] is the peer's death notice; [`Corrupt]
    is a framing violation (tear the connection down). *)

val close : conn -> unit
(** Shutdown + close, idempotent.  This is also the supervisor's kill
    switch for a remote worker: teardown replaces [SIGKILL]. *)
