let protocol_version = 1

let self_digest_memo = ref None

let self_digest () =
  match !self_digest_memo with
  | Some d -> d
  | None ->
      let d =
        try Digest.to_hex (Digest.file Sys.executable_name)
        with Sys_error _ -> "unknown"
      in
      self_digest_memo := Some d;
      d

type hello = {
  version : int;
  digest : string;
  fingerprint : string;  (** Campaign CRC hex (client), [""] otherwise. *)
  capacity : int;  (** Worker slots advertised (server), [0] otherwise. *)
  mac : string;  (** HMAC tag over the rest of the hello, [""] if unkeyed. *)
}

(* The MAC covers everything else in the hello, so a keyed peer cannot
   have its advertised digest or capacity tampered with in transit. *)
let encode_base h =
  Printf.sprintf "fi-net hello version=%d digest=%s cap=%d fp=%s" h.version
    h.digest h.capacity h.fingerprint

let hello ?(fingerprint = "") ?(capacity = 0) ?secret () =
  let h =
    {
      version = protocol_version;
      digest = self_digest ();
      fingerprint;
      capacity;
      mac = "";
    }
  in
  match secret with
  | None -> h
  | Some key -> { h with mac = Hmac.mac ~key (encode_base h) }

let encode h =
  if h.mac = "" then encode_base h
  else Printf.sprintf "%s mac=%s" (encode_base h) h.mac

let key_value tok =
  match String.index_opt tok '=' with
  | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  | None -> None

let decode s =
  match String.split_on_char ' ' s with
  | "fi-net" :: "hello" :: fields ->
      let assoc = List.filter_map key_value fields in
      let int_field k =
        Option.bind (List.assoc_opt k assoc) int_of_string_opt
      in
      let str_field k = Option.value ~default:"" (List.assoc_opt k assoc) in
      (match (int_field "version", List.assoc_opt "digest" assoc) with
      | Some version, Some digest ->
          Some
            {
              version;
              digest;
              fingerprint = str_field "fp";
              capacity = Option.value ~default:0 (int_field "cap");
              mac = str_field "mac";
            }
      | _ -> None)
  | _ -> None

(* The binary digest is the load-bearing check: job payloads are
   marshalled plain data, sound only between identical executables —
   and identical executables also guarantee identical analyses, which
   is what keeps remote results bit-identical.  An "unknown" digest
   (unreadable executable) must therefore refuse, not match: two
   different binaries that both failed to hash would otherwise compare
   equal and wave unsound Marshal data through. *)
let check_identity ~mine ~theirs =
  if mine.digest = "unknown" || theirs.digest = "unknown" then
    Error
      (Printf.sprintf
         "binary digest unavailable (%s executable unreadable) — refusing: \
          the digest check is what makes shipped jobs safe to unmarshal"
         (if mine.digest = "unknown" then "our" else "peer's"))
  else if theirs.digest <> mine.digest then
    Error
      (Printf.sprintf
         "binary digest mismatch: peer runs %s, we run %s — deploy the same \
          executable on every host"
         theirs.digest mine.digest)
  else Ok ()

(* Auth is checked before identity: a peer outside the deployment's
   trust domain learns nothing about which binary we run from the
   refusal.  The three auth failures are deliberately distinct — "you
   sent no tag", "you demand a secret we lack", "our secrets differ" —
   because they call for three different operator fixes. *)
let check ?secret ~mine ~theirs () =
  if theirs.version <> mine.version then
    Error
      (Printf.sprintf "protocol version mismatch: peer speaks v%d, we speak v%d"
         theirs.version mine.version)
  else
    match (secret, theirs.mac) with
    | Some _, "" ->
        Error
          "peer sent no auth tag but this end requires a shared secret \
           (--secret) — refusing"
    | None, tag when tag <> "" ->
        Error
          "peer requires a shared secret this end was not given (--secret) — \
           refusing"
    | Some key, tag when not (Hmac.verify ~key (encode_base theirs) tag) ->
        Error
          "shared-secret mismatch: peer's auth tag does not verify — the two \
           ends hold different secrets"
    | _ -> check_identity ~mine ~theirs
