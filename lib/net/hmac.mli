(** HMAC-MD5 (RFC 2104) over the stdlib [Digest] — the shared-secret
    tag carried in authenticated {!Handshake} hellos.

    MD5's collision weakness does not reach inside HMAC's keyed
    construction; this is fleet-hygiene authentication (refuse peers
    that don't hold the deployment's secret file), not a defence
    against cryptanalytic adversaries. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the lowercase-hex HMAC-MD5 tag of [msg]. *)

val verify : key:string -> string -> string -> bool
(** [verify ~key msg tag]: does [tag] match {!mac}[ ~key msg]?
    Constant-time over the tag bytes. *)

val load_secret : string -> (string, string) result
(** Read a shared secret from a file, trimming surrounding whitespace.
    [Error] if the file is unreadable or holds only whitespace. *)
