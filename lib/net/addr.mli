(** [HOST:PORT] endpoint addresses for the socket transport. *)

type t = { host : string; port : int }

val to_string : t -> string
(** Inverse of {!parse}: a host containing colons (an IPv6 literal) is
    re-bracketed as ["[HOST]:PORT"]. *)

val parse : string -> (t, string) result
(** Parse ["HOST:PORT"] (split on the {e last} colon) or the bracketed
    IPv6 form ["[::1]:PORT"] (brackets stripped before resolution).  A
    bare IPv6 literal is rejected with a pointer at the bracketed form —
    its last hextet would otherwise be misread as the port. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a malformed address. *)

val parse_list : string -> (t list, string) result
(** Parse a comma-separated ["HOST:PORT,HOST:PORT,…"] list (empty
    elements skipped; an empty list is an error). *)

val inet_addr : t -> Unix.inet_addr option
(** Resolve the host (dotted quad first, then [gethostbyname]). *)

val sockaddr : t -> Unix.sockaddr option
