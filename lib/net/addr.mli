(** [HOST:PORT] endpoint addresses for the socket transport. *)

type t = { host : string; port : int }

val to_string : t -> string

val parse : string -> (t, string) result
(** Parse ["HOST:PORT"].  The split is on the {e last} colon. *)

val parse_exn : string -> t
(** @raise Invalid_argument on a malformed address. *)

val parse_list : string -> (t list, string) result
(** Parse a comma-separated ["HOST:PORT,HOST:PORT,…"] list (empty
    elements skipped; an empty list is an error). *)

val inet_addr : t -> Unix.inet_addr option
(** Resolve the host (dotted quad first, then [gethostbyname]). *)

val sockaddr : t -> Unix.sockaddr option
