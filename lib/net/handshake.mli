(** The connection preamble: protocol version + binary digest +
    campaign fingerprint.

    Both ends exchange a {!hello} frame first.  {!check} refuses a peer
    whose protocol version or executable digest differs — the wire job
    format is marshalled plain data, sound only between byte-identical
    binaries, and byte-identical binaries are also what makes remote
    analysis (and therefore campaign results) bit-identical.  The
    campaign fingerprint travels in the client's hello as an advisory
    label; the authoritative check is the worker's own re-analysis
    (see {!Remote}). *)

val protocol_version : int

val self_digest : unit -> string
(** Hex MD5 of [Sys.executable_name], memoized ("unknown" if the
    executable cannot be read — {!check} refuses such hellos, on either
    side, so two unhashable binaries can never pass as identical). *)

type hello = {
  version : int;
  digest : string;
  fingerprint : string;  (** Campaign CRC hex (client side), else [""]. *)
  capacity : int;  (** Advertised worker slots (server side), else [0]. *)
}

val hello : ?fingerprint:string -> ?capacity:int -> unit -> hello
(** This process's hello: {!protocol_version} + {!self_digest}. *)

val encode : hello -> string
val decode : string -> hello option

val check : mine:hello -> theirs:hello -> (unit, string) result
(** Version and digest equality; the error names the mismatch.  An
    ["unknown"] digest on either side is itself a refusal — the digest
    guard is what makes the wire job's [Marshal] payload safe. *)
