(** The connection preamble: protocol version + binary digest +
    campaign fingerprint.

    Both ends exchange a {!hello} frame first.  {!check} refuses a peer
    whose protocol version or executable digest differs — the wire job
    format is marshalled plain data, sound only between byte-identical
    binaries, and byte-identical binaries are also what makes remote
    analysis (and therefore campaign results) bit-identical.  The
    campaign fingerprint travels in the client's hello as an advisory
    label; the authoritative check is the worker's own re-analysis
    (see {!Remote}). *)

val protocol_version : int

val self_digest : unit -> string
(** Hex MD5 of [Sys.executable_name], memoized ("unknown" if the
    executable cannot be read — {!check} refuses such hellos, on either
    side, so two unhashable binaries can never pass as identical). *)

type hello = {
  version : int;
  digest : string;
  fingerprint : string;  (** Campaign CRC hex (client side), else [""]. *)
  capacity : int;  (** Advertised worker slots (server side), else [0]. *)
  mac : string;
      (** {!Hmac} tag over the rest of the hello when a shared secret is
          in force, [""] otherwise. *)
}

val hello : ?fingerprint:string -> ?capacity:int -> ?secret:string -> unit -> hello
(** This process's hello: {!protocol_version} + {!self_digest}.  With
    [?secret], the hello carries an HMAC tag over its other fields. *)

val encode : hello -> string
val decode : string -> hello option

val check : ?secret:string -> mine:hello -> theirs:hello -> unit -> (unit, string) result
(** Version, shared-secret, and digest equality; the error names the
    mismatch.  Auth failures are distinct: a peer that sent no tag while
    we hold a secret, a peer that demands a secret we lack, and a tag
    that fails to verify each refuse with their own message.  An
    ["unknown"] digest on either side is itself a refusal — the digest
    guard is what makes the wire job's [Marshal] payload safe. *)
