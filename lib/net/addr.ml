type t = { host : string; port : int }

let to_string { host; port } =
  (* An IPv6 literal's own colons would make HOST:PORT ambiguous:
     re-bracket it so to_string/parse roundtrip. *)
  if String.contains host ':' then Printf.sprintf "[%s]:%d" host port
  else Printf.sprintf "%s:%d" host port

let split_host_port s =
  if String.length s > 0 && s.[0] = '[' then
    (* [V6LITERAL]:PORT — brackets delimit the host, colons and all. *)
    match String.index_opt s ']' with
    | None -> Error (Printf.sprintf "address %S: missing ']'" s)
    | Some j when j + 1 >= String.length s || s.[j + 1] <> ':' ->
        Error (Printf.sprintf "address %S: expected [HOST]:PORT" s)
    | Some j ->
        Ok (String.sub s 1 (j - 1), String.sub s (j + 2) (String.length s - j - 2))
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "address %S: expected HOST:PORT" s)
    | Some i ->
        let host = String.sub s 0 i in
        if String.contains host ':' then
          (* A bare IPv6 literal: splitting on the last colon would eat
             its final hextet as the port. *)
          Error
            (Printf.sprintf
               "address %S: bracket IPv6 literals as [HOST]:PORT" s)
        else Ok (host, String.sub s (i + 1) (String.length s - i - 1))

let parse s =
  match split_host_port s with
  | Error _ as e -> e
  | Ok (host, port) -> (
      if host = "" then Error (Printf.sprintf "address %S: empty host" s)
      else
        (* int_of_string accepts 0x/0o/_ literal syntax; a port is plain
           decimal only. *)
        let decimal =
          port <> "" && String.for_all (fun c -> c >= '0' && c <= '9') port
        in
        match (if decimal then int_of_string_opt port else None) with
        | Some p when p >= 0 && p <= 65535 -> Ok { host; port = p }
        | Some p -> Error (Printf.sprintf "address %S: port %d out of range" s p)
        | None -> Error (Printf.sprintf "address %S: bad port %S" s port))

let parse_exn s =
  match parse s with Ok a -> a | Error msg -> invalid_arg ("Addr." ^ msg)

let parse_list s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> go acc rest
    | one :: rest -> (
        match parse one with
        | Ok a -> go (a :: acc) rest
        | Error _ as e -> e)
  in
  match go [] (List.map String.trim (String.split_on_char ',' s)) with
  | Ok [] -> Error (Printf.sprintf "address list %S: no addresses" s)
  | r -> r

let inet_addr { host; _ } =
  match Unix.inet_addr_of_string host with
  | addr -> Some addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> None
      | { Unix.h_addr_list; _ } -> Some h_addr_list.(0)
      | exception Not_found -> None)

let sockaddr t =
  match inet_addr t with
  | Some a -> Some (Unix.ADDR_INET (a, t.port))
  | None -> None
