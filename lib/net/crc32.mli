(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial).

    Guards every record of the campaign {!Journal} against torn writes
    and bit rot, and fingerprints campaign identities so a [--resume]
    never mixes shards of two different campaigns.  Pure stdlib,
    table-driven; digests are non-negative ints in [0, 2{^32}). *)

val string : string -> int
(** CRC-32 of a whole string. *)

val update : int -> string -> pos:int -> len:int -> int
(** Fold a substring into a running digest (start from [0]). *)

val to_hex : int -> string
(** Fixed-width lowercase hex, e.g. ["cbf43926"]. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] unless exactly 8 hex digits. *)
