(** Length-prefixed, CRC-framed messages — the socket transport's unit
    of exchange.

    A frame is [kind (1 byte) · payload length (u32 BE) · CRC-32 of
    kind + payload (u32 BE) · payload].  The CRC extends the campaign
    journal's per-record guard to the wire: a flipped bit in transit —
    in the payload or in the kind byte itself — surfaces as {!Corrupt},
    never as a silently wrong (or wrongly typed) shard record.  TCP
    preserves order but not boundaries, so receiving is split into
    {!feed} (append raw bytes) and {!next} (peel one complete frame),
    with partial frames staying buffered. *)

type kind =
  | Hello  (** Handshake, both directions ({!Handshake}). *)
  | Job  (** One campaign job, client → worker ({!Remote} wire format). *)
  | Door  (** Doorbell line, worker → client: [h], [s <id>], [end]. *)
  | Seg  (** One journal-segment line (CRC-hex + payload), worker → client. *)
  | Err  (** Human-readable refusal/failure, either direction, then close. *)
  | Submit  (** One campaign/matrix submission, client → service ({!Service}). *)
  | Stat  (** Service status line, service → client. *)
  | Prog  (** Rendered {!Progress} snapshot for a running cell, service → client. *)
  | Res  (** Final result payload for a submission, service → client, then close. *)

exception Corrupt of string
(** A frame-level violation: unknown kind, oversized length, payload CRC
    mismatch, EOF mid-frame, or a receive timeout.  The connection is
    unusable afterwards — tear it down. *)

val kind_tag : kind -> string
val max_payload : int

val header_len : int
(** Bytes before the payload: kind + length + CRC. *)

val encode : kind -> string -> string
(** @raise Invalid_argument if the payload exceeds {!max_payload}. *)

val send : Unix.file_descr -> kind -> string -> unit
(** [encode] + {!Sysio.write_string}. *)

type decoder

val decoder : unit -> decoder
val feed : decoder -> bytes -> int -> int -> unit
val feed_string : decoder -> string -> unit

val buffered : decoder -> int
(** Bytes currently buffered (partial frame included). *)

val next : decoder -> (kind * string) option
(** Peel the next complete frame, or [None] if more bytes are needed.
    @raise Corrupt on a framing violation (the decoder is then stuck —
    discard the connection). *)

val recv : ?timeout:float -> Unix.file_descr -> decoder -> (kind * string) option
(** Blocking receive: read and {!feed} until one frame completes.
    [None] on clean EOF between frames.  [timeout] is a budget for the
    whole frame (an absolute deadline), not per read — dribbling bytes
    cannot stretch it.
    @raise Corrupt on a framing violation, EOF inside a frame, or when
    [timeout] seconds pass without a complete frame. *)
