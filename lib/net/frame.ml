type kind =
  | Hello
  | Job
  | Door
  | Seg
  | Err
  | Submit
  | Stat
  | Prog
  | Res

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let kind_byte = function
  | Hello -> '\001'
  | Job -> '\002'
  | Door -> '\003'
  | Seg -> '\004'
  | Err -> '\005'
  | Submit -> '\006'
  | Stat -> '\007'
  | Prog -> '\008'
  | Res -> '\009'

let kind_of_byte = function
  | '\001' -> Some Hello
  | '\002' -> Some Job
  | '\003' -> Some Door
  | '\004' -> Some Seg
  | '\005' -> Some Err
  | '\006' -> Some Submit
  | '\007' -> Some Stat
  | '\008' -> Some Prog
  | '\009' -> Some Res
  | _ -> None

let kind_tag = function
  | Hello -> "hello"
  | Job -> "job"
  | Door -> "door"
  | Seg -> "seg"
  | Err -> "err"
  | Submit -> "submit"
  | Stat -> "stat"
  | Prog -> "prog"
  | Res -> "res"

(* A frame that claims to be bigger than any message the protocol ships
   is garbage (or an attack), not a message: refuse before allocating. *)
let max_payload = 64 * 1024 * 1024

let header_len = 9 (* kind byte + 4-byte BE length + 4-byte BE CRC-32 *)

let put_u32 b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code (Bytes.get s off) lsl 24)
  lor (Char.code (Bytes.get s (off + 1)) lsl 16)
  lor (Char.code (Bytes.get s (off + 2)) lsl 8)
  lor Char.code (Bytes.get s (off + 3))

(* The CRC covers the kind byte as well as the payload: a bit flip that
   turns one valid kind into another must surface as [Corrupt], never as
   a well-formed frame of the wrong kind. *)
let frame_crc kind_ch payload =
  let seed = Crc32.update 0 (String.make 1 kind_ch) ~pos:0 ~len:1 in
  Crc32.update seed payload ~pos:0 ~len:(String.length payload)

let encode kind payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg (Printf.sprintf "Frame.encode: payload of %d bytes" n);
  let b = Bytes.create (header_len + n) in
  Bytes.set b 0 (kind_byte kind);
  put_u32 b 1 n;
  put_u32 b 5 (frame_crc (kind_byte kind) payload);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

let send fd kind payload = Sysio.write_string fd (encode kind payload)

(* ------------------------------------------------------------------ *)
(* Incremental decoding                                               *)
(* ------------------------------------------------------------------ *)

(* The decoder owns a growable byte buffer: [feed] appends raw socket
   data, [next] peels complete frames off the front.  TCP gives no
   message boundaries, so a frame routinely arrives split across reads
   — partial frames simply stay buffered. *)
type decoder = { mutable buf : Bytes.t; mutable len : int }

let decoder () = { buf = Bytes.create 4096; len = 0 }

let buffered d = d.len

let feed d data off len =
  let need = d.len + len in
  if need > Bytes.length d.buf then begin
    let cap = ref (max 4096 (2 * Bytes.length d.buf)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit d.buf 0 bigger 0 d.len;
    d.buf <- bigger
  end;
  Bytes.blit data off d.buf d.len len;
  d.len <- need

let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)

let next d =
  if d.len < header_len then None
  else begin
    let kind =
      match kind_of_byte (Bytes.get d.buf 0) with
      | Some k -> k
      | None -> corrupt "unknown frame kind %d" (Char.code (Bytes.get d.buf 0))
    in
    let n = get_u32 d.buf 1 in
    if n > max_payload then corrupt "frame claims %d-byte payload" n;
    if d.len < header_len + n then None
    else begin
      let crc = get_u32 d.buf 5 in
      let payload = Bytes.sub_string d.buf header_len n in
      if frame_crc (Bytes.get d.buf 0) payload <> crc then
        corrupt "frame CRC mismatch (%s, %d bytes)" (kind_tag kind) n;
      let rest = d.len - header_len - n in
      Bytes.blit d.buf (header_len + n) d.buf 0 rest;
      d.len <- rest;
      Some (kind, payload)
    end
  end

(* ------------------------------------------------------------------ *)
(* Blocking receive (the worker side's simple loop)                   *)
(* ------------------------------------------------------------------ *)

let recv ?timeout fd d =
  let chunk = Bytes.create 65536 in
  (* The timeout is a budget for the WHOLE frame, not per read: an
     absolute deadline shrinks the wait each round, so a peer dribbling
     one byte per near-timeout interval (a slow loris) cannot keep the
     receive — and a daemon worker's seat — alive forever. *)
  let deadline = Option.map (fun t -> Unix.gettimeofday () +. t) timeout in
  let rec go () =
    match next d with
    | Some frame -> Some frame
    | None -> (
        (match (deadline, timeout) with
        | Some dl, Some t ->
            let left = dl -. Unix.gettimeofday () in
            if left <= 0. || not (Sysio.wait_readable fd left) then
              corrupt "timed out waiting for a frame (%.1fs)" t
        | _ -> ());
        match Sysio.read_avail fd chunk with
        | `Eof -> if buffered d > 0 then corrupt "EOF inside a frame" else None
        | `Data k ->
            feed d chunk 0 k;
            go ()
        | `Nothing -> go ())
  in
  go ()
