(** EINTR/EAGAIN-hardened system-call wrappers.

    The campaign engine's supervision loop and the socket transport both
    live on raw [Unix] descriptors, where a stray signal turns into a
    spurious [EINTR] and a non-blocking peer into [EAGAIN].  Each
    call-site once carried its own retry loop; this module is the single
    shared set (PR 4's hardening sweep, promoted to a library because
    {!Frame}/{!Transport} need the same discipline).

    Only [EINTR]/[EAGAIN] are absorbed.  Real errors propagate — except
    in {!read_avail}, whose callers (supervision loops) treat any hard
    read error as the peer's death notice. *)

val write_all : Unix.file_descr -> string -> int -> int -> unit
(** [write_all fd s off len] writes the whole range, retrying short
    writes and [EINTR].  [EPIPE] propagates (callers supervising workers
    ignore [SIGPIPE] and treat it as a death notice). *)

val write_string : Unix.file_descr -> string -> unit
(** [write_all fd s 0 (String.length s)]. *)

val read_once : Unix.file_descr -> bytes -> int -> int -> int
(** One blocking [read], retrying [EINTR] only; returns the byte count
    ([0] at EOF). *)

val read_avail : Unix.file_descr -> bytes -> [ `Eof | `Data of int | `Nothing ]
(** One read of whatever is available: [`Data n] bytes at the front of
    [buf], [`Nothing] on [EINTR]/[EAGAIN]/[EWOULDBLOCK] (nothing yet —
    a live peer), [`Eof] on end-of-file {e or any hard error} (the
    peer's death notice; mapping errors to EOF is deliberate — see the
    engine's supervision loop). *)

val really_read : Unix.file_descr -> bytes -> int -> int -> bool
(** Read exactly [len] bytes (blocking, [EINTR]-retried); [false] if EOF
    arrives first. *)

val select_read : Unix.file_descr list -> float -> Unix.file_descr list
(** [Unix.select] on the read set only; [EINTR] yields [[]] (the caller
    loops anyway). *)

val wait_readable : Unix.file_descr -> float -> bool
(** Block until [fd] is readable or [timeout] seconds pass ([EINTR]
    retried with the remaining budget); [true] iff readable. *)

val close_quietly : Unix.file_descr -> unit
(** [Unix.close], ignoring errors (already-closed descriptors). *)
