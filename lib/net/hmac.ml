(* HMAC-MD5 (RFC 2104) over the stdlib's Digest.  MD5's collision
   weakness is irrelevant inside HMAC's keyed construction, and the
   stdlib ships nothing stronger — this guards a lab fleet's front
   door against accidental cross-talk and drive-by connections, not
   nation states. *)

let block_size = 64

let normalise_key key =
  let key = if String.length key > block_size then Digest.string key else key in
  let b = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 b 0 (String.length key);
  b

let xor_with pad key =
  String.init block_size (fun i ->
      Char.chr (Char.code (Bytes.get key i) lxor pad))

let mac ~key msg =
  let key = normalise_key key in
  let inner = Digest.string (xor_with 0x36 key ^ msg) in
  Digest.to_hex (Digest.string (xor_with 0x5c key ^ inner))

(* Compare without short-circuiting: an attacker timing a byte-by-byte
   [String.equal] could recover a valid tag prefix by prefix. *)
let verify ~key msg tag =
  let expect = mac ~key msg in
  String.length tag = String.length expect
  &&
  let diff = ref 0 in
  String.iteri
    (fun i c -> diff := !diff lor (Char.code c lxor Char.code expect.[i]))
    tag;
  !diff = 0

let load_secret path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | raw -> (
      match String.trim raw with
      | "" -> Error (Printf.sprintf "%s: secret file is empty" path)
      | secret -> Ok secret)
