type conn = {
  fd : Unix.file_descr;
  peer : string;
  decoder : Frame.decoder;
  chunk : Bytes.t;
  mutable closed : bool;
}

let fd c = c.fd
let peer c = c.peer

let of_fd ~peer fd =
  { fd; peer; decoder = Frame.decoder (); chunk = Bytes.create 65536;
    closed = false }

let close c =
  if not c.closed then begin
    c.closed <- true;
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Sysio.close_quietly c.fd
  end

let connect ?(timeout = 10.) addr =
  match Addr.sockaddr addr with
  | None -> Error (Printf.sprintf "cannot resolve host %S" addr.Addr.host)
  | Some sa -> (
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      Unix.set_close_on_exec fd;
      (* Connect non-blocking so an unreachable host costs [timeout],
         not the kernel's multi-minute SYN retry budget. *)
      Unix.set_nonblock fd;
      let finish () =
        match Unix.getsockopt_error fd with
        | Some err ->
            Sysio.close_quietly fd;
            Error
              (Printf.sprintf "connect %s: %s" (Addr.to_string addr)
                 (Unix.error_message err))
        | None ->
            Unix.clear_nonblock fd;
            Unix.setsockopt fd Unix.TCP_NODELAY true;
            Ok (of_fd ~peer:(Addr.to_string addr) fd)
      in
      match Unix.connect fd sa with
      | () ->
          Unix.clear_nonblock fd;
          Unix.setsockopt fd Unix.TCP_NODELAY true;
          Ok (of_fd ~peer:(Addr.to_string addr) fd)
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EINTR), _, _) -> (
          match Unix.select [] [ fd ] [] timeout with
          | _, [ _ ], _ -> finish ()
          | _ ->
              Sysio.close_quietly fd;
              Error
                (Printf.sprintf "connect %s: timed out after %.1fs"
                   (Addr.to_string addr) timeout)
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              Sysio.close_quietly fd;
              Error
                (Printf.sprintf "connect %s: interrupted" (Addr.to_string addr))
          )
      | exception Unix.Unix_error (err, _, _) ->
          Sysio.close_quietly fd;
          Error
            (Printf.sprintf "connect %s: %s" (Addr.to_string addr)
               (Unix.error_message err)))

let listen addr =
  match Addr.sockaddr addr with
  | None -> Error (Printf.sprintf "cannot resolve host %S" addr.Addr.host)
  | Some sa -> (
      let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
      Unix.set_close_on_exec fd;
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      match
        Unix.bind fd sa;
        Unix.listen fd 64
      with
      | () ->
          let port =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> p
            | Unix.ADDR_UNIX _ -> addr.Addr.port
          in
          Ok (fd, { addr with Addr.port })
      | exception Unix.Unix_error (err, _, _) ->
          Sysio.close_quietly fd;
          Error
            (Printf.sprintf "listen %s: %s" (Addr.to_string addr)
               (Unix.error_message err)))

let rec accept listen_fd =
  match Unix.accept ~cloexec:true listen_fd with
  | fd, sa ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      let peer =
        match sa with
        | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX p -> p
      in
      of_fd ~peer fd
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept listen_fd

let send c kind payload = Frame.send c.fd kind payload

let recv ?timeout c = Frame.recv ?timeout c.fd c.decoder

(* One non-blocking-ish pump for a select loop: a single read of
   whatever is available, then every frame it completed. *)
let pump c =
  match Sysio.read_avail c.fd c.chunk with
  | `Eof -> if Frame.buffered c.decoder > 0 then `Corrupt "EOF inside a frame" else `Eof
  | `Nothing -> `Frames []
  | `Data k -> (
      Frame.feed c.decoder c.chunk 0 k;
      let rec drain acc =
        match Frame.next c.decoder with
        | Some f -> drain (f :: acc)
        | None -> `Frames (List.rev acc)
      in
      try drain [] with Frame.Corrupt msg -> `Corrupt msg)
