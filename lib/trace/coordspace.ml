type coord = { cycle : int; bit : int }

let pp_coord ppf { cycle; bit } = Format.fprintf ppf "(%d, %d)" cycle bit

let compare_coord a b =
  match compare a.cycle b.cycle with 0 -> compare a.bit b.bit | c -> c

let size ~total_cycles ~ram_size = total_cycles * ram_size * 8

let contains ~total_cycles ~ram_size { cycle; bit } =
  cycle >= 1 && cycle <= total_cycles && bit >= 0 && bit < ram_size * 8

let iter ~total_cycles ~ram_size f =
  for cycle = 1 to total_cycles do
    for bit = 0 to (ram_size * 8) - 1 do
      f { cycle; bit }
    done
  done

let sample_uniform rng ~total_cycles ~ram_size =
  let cycle = 1 + Prng.int rng total_cycles in
  let bit = Prng.int rng (ram_size * 8) in
  { cycle; bit }

let class_and_bit defuse { cycle; bit } =
  let byte = bit / 8 in
  (Defuse.find defuse ~cycle ~byte, bit mod 8)

let canonical_injection (c : Defuse.byte_class) ~bit_in_byte =
  if bit_in_byte < 0 || bit_in_byte > 7 then
    invalid_arg "Coordspace.canonical_injection: bit outside byte";
  { cycle = c.Defuse.t_end; bit = (c.Defuse.byte * 8) + bit_in_byte }
