(** Fault-space geometry: coordinates, enumeration and uniform sampling.

    A coordinate [(cycle, bit)] means: flip RAM bit [bit] immediately
    before the instruction executing at [cycle] (1-indexed).  The space is
    the grid [\[1, Δt\] × \[0, 8·Δm)] — Figure 1a of the paper. *)

type coord = { cycle : int; bit : int }

val pp_coord : Format.formatter -> coord -> unit
(** Prints as ["(cycle, bit)"]. *)

val compare_coord : coord -> coord -> int
(** Lexicographic by [(cycle, bit)]. *)

val size : total_cycles:int -> ram_size:int -> int
(** [Δt × 8·Δm], the paper's raw fault-space size [w]. *)

val contains : total_cycles:int -> ram_size:int -> coord -> bool

val iter : total_cycles:int -> ram_size:int -> (coord -> unit) -> unit
(** Visit every coordinate (cycle-major).  Only sensible for the tiny
    programs used in brute-force validation. *)

val sample_uniform :
  Prng.t -> total_cycles:int -> ram_size:int -> coord
(** One coordinate uniform over the {e raw} fault space — the correct
    sampling procedure (avoiding Pitfall 2). *)

val class_and_bit : Defuse.t -> coord -> Defuse.byte_class * int
(** The def/use equivalence class containing the coordinate, plus the
    bit-within-byte (0–7). *)

val canonical_injection : Defuse.byte_class -> bit_in_byte:int -> coord
(** The single coordinate at which the experiment for this class is
    actually conducted: the {e latest} cycle of the interval (directly
    before the activating read), as in Figure 1b. *)
