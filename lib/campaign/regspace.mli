(** The register fault space — the Section VI-B extension of the paper.

    "Every bit in […] the CPU registers […] could be part of the fault
    space — requiring to also record read and write accesses to these
    bits for def/use pruning."  This module does exactly that: it derives
    per-cycle register def/use sets from the executed instruction stream,
    reuses the def/use machinery by mapping register [i] (1–15; [r0] is
    hardwired and immune) onto a 60-byte pseudo-memory at bytes
    [4·(i−1) … 4·i), and runs campaigns that flip register bits.

    The resulting {!Scan.t} is fully compatible with the metrics layer,
    so fault coverage, weighted failure counts and the pitfall analyses
    apply unchanged — which is how the [registers] bench artifact
    demonstrates the paper's Section VI-C warning about comparing
    coverage across layers with different fault-space sizes. *)

val register_count : int
(** 15 — registers [r1]–[r15]. *)

val pseudo_ram_bytes : int
(** 60 — the pseudo-memory footprint (4 bytes per register). *)

val defs_uses : Isa.instr -> Isa.reg list * Isa.reg list
(** [(writes, reads)] of one instruction, [r0] excluded from both
    (an alias of {!Isa.defs_uses}, kept here for discoverability). *)

type t = {
  golden : Golden.t;
      (** The memory-space golden run of the same program (output,
          runtime, RAM def/use) — shared by both layers. *)
  reg_defuse : Defuse.t;
      (** Register def/use partition over the pseudo-memory. *)
}

val analyze : ?limit:int -> Program.t -> t
(** Run the program twice (deterministically identical): once for the
    memory-space golden, once tracing register accesses. *)

val fault_space_size : t -> int
(** Δt × 480 — the register-layer [w]. *)

val classes : t -> Defuse.byte_class array
(** The register-space experiment classes over the pseudo-memory —
    the class provider the campaign engine shards exactly like a memory
    campaign's (same [t_end]-contiguity invariant: {!conduct} uses
    {!Injector.session_run_flip}, whose cycles must be non-decreasing
    per session). *)

val conduct :
  Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t
(** Conduct the canonical register-space experiment of one
    (byte-class, bit) pair: flip the mapped [(register, bit)] at the
    class's [t_end] on the session's machine — the single-experiment
    kernel shared by the serial {!scan} and the parallel engine. *)

val scan :
  ?variant:string ->
  ?provider:Injector.provider ->
  ?progress:Scan.progress ->
  t ->
  Scan.t
(** Full pruned campaign over the register fault space, conducted
    through [provider] as in {!Scan.pruned} (default: a fresh checkpoint
    plan over the shared golden run).  The returned scan's [ram_bytes]
    is the 60-byte pseudo-memory, so [Scan.fault_space_size] and all
    metrics are consistent.  [variant] is the program's {e hardening}
    variant (default ["baseline"]) — the fault space is already in the
    scan's identity, so labelling register scans ["registers"] only
    mislabelled hardened cells in matrix reports.

    @raise Invalid_argument if [provider] was built over a different
    golden run. *)

val coord_of_bit : int -> int * int
(** Map a pseudo-memory bit index to [(register, bit-in-register)]. *)
