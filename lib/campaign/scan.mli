(** Campaign execution: full fault-space scans.

    A {e pruned scan} conducts one experiment per def/use equivalence
    class and bit — everything a full fault-space scan can learn, at a
    tiny fraction of the cost (Section III-C).  A {e brute-force scan}
    conducts one experiment per raw fault-space coordinate; it exists to
    validate pruning losslessly on small programs and as the ground truth
    for the "Hi" Gedankenexperiment of Section IV. *)

type experiment = {
  byte : int;  (** RAM byte offset of the class. *)
  t_start : int;  (** First cycle of the class interval. *)
  t_end : int;  (** Last cycle — also the canonical injection cycle. *)
  bit_in_byte : int;  (** 0–7. *)
  outcome : Outcome.t;
}

val experiment_weight : experiment -> int
(** Equivalence-class size [t_end − t_start + 1] — the weight Pitfall 1
    requires each result to carry. *)

type t = {
  name : string;  (** Program name. *)
  variant : string;  (** e.g. ["baseline"] or ["sum+dmr"]. *)
  cycles : int;  (** Benchmark runtime Δt. *)
  ram_bytes : int;  (** Benchmark memory usage Δm in bytes. *)
  experiments : experiment array;  (** All conducted experiments. *)
  benign_weight : int;
      (** Fault-space coordinates (bit·cycles) known a-priori benign
          (overwritten or dormant), {e not} conducted. *)
}

val fault_space_size : t -> int
(** w = Δt × 8·Δm; equals the sum of all experiment weights plus
    [benign_weight] (invariant, property-tested). *)

type progress = done_:int -> total:int -> tally:Outcome.tally -> unit
(** Campaign progress callback, shared by every campaign conductor
    (serial {!pruned}, {!Regspace.scan} and the parallel
    [Fi_engine.Engine]): [done_] classes out of [total] are complete and
    [tally] carries the running outcome counts of all experiments
    conducted so far.  The tally is live — read it, don't keep it (use
    {!Outcome.tally_copy} to retain a snapshot).  Serial conductors call
    it once per class in t_end-sorted rank order; the parallel engine
    calls it in completion order (still monotonic in [done_]). *)

val no_progress : progress
(** The silent callback (default). *)

val conduct_class :
  Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t
(** Conduct the canonical memory-space experiment of one
    (byte-class, bit) pair on an injection session — the single-
    experiment kernel shared by the serial {!pruned} and the parallel
    engine (which is what makes their results bit-identical).  Injection
    cycles must be presented in non-decreasing order per session
    ({!Injector.session_run_at}). *)

val pruned :
  ?variant:string ->
  ?provider:Injector.provider ->
  ?progress:progress ->
  Golden.t ->
  t
(** [pruned golden] runs the complete pruned campaign: one experiment per
    (experiment-class, bit), conducted through [provider] (default: a
    fresh checkpoint plan at {!Injector.default_stride} — pass
    {!Injector.replay} for the reference restart semantics; outcomes are
    bit-identical either way).  [progress] is called after every class.

    @raise Invalid_argument if [provider] was built over a different
    golden run. *)

val brute_force :
  ?variant:string -> Golden.t -> (Coordspace.coord * Outcome.t) array
(** One experiment per raw coordinate, cycle-major.  Cost is
    [w] full machine runs — only for tiny validation programs. *)

val outcome_at : t -> Coordspace.coord -> Outcome.t
(** Expand pruned results back over the raw fault space: the outcome at
    any coordinate (a-priori-benign coordinates yield [No_effect]).
    Builds a lookup table on first use per call — for repeated queries use
    {!expander}. *)

val expander : t -> Coordspace.coord -> Outcome.t
(** Pre-indexed version of {!outcome_at} for bulk queries. *)
