type t =
  | No_effect
  | Corrected
  | Sdc
  | Output_truncated
  | Detected_fail_stop
  | Trap_memory
  | Trap_cpu
  | Timeout

let all =
  [ No_effect; Corrected; Sdc; Output_truncated; Detected_fail_stop;
    Trap_memory; Trap_cpu; Timeout ]

let to_string = function
  | No_effect -> "no_effect"
  | Corrected -> "corrected"
  | Sdc -> "sdc"
  | Output_truncated -> "output_truncated"
  | Detected_fail_stop -> "detected_fail_stop"
  | Trap_memory -> "trap_memory"
  | Trap_cpu -> "trap_cpu"
  | Timeout -> "timeout"

let of_string = function
  | "no_effect" -> Some No_effect
  | "corrected" -> Some Corrected
  | "sdc" -> Some Sdc
  | "output_truncated" -> Some Output_truncated
  | "detected_fail_stop" -> Some Detected_fail_stop
  | "trap_memory" -> Some Trap_memory
  | "trap_cpu" -> Some Trap_cpu
  | "timeout" -> Some Timeout
  | _ -> None

let index = function
  | No_effect -> 0
  | Corrected -> 1
  | Sdc -> 2
  | Output_truncated -> 3
  | Detected_fail_stop -> 4
  | Trap_memory -> 5
  | Trap_cpu -> 6
  | Timeout -> 7

let count = 8

let of_index = function
  | 0 -> No_effect
  | 1 -> Corrected
  | 2 -> Sdc
  | 3 -> Output_truncated
  | 4 -> Detected_fail_stop
  | 5 -> Trap_memory
  | 6 -> Trap_cpu
  | 7 -> Timeout
  | n -> invalid_arg (Printf.sprintf "Outcome.of_index: %d" n)

let to_char = function
  | No_effect -> 'n'
  | Corrected -> 'c'
  | Sdc -> 's'
  | Output_truncated -> 'o'
  | Detected_fail_stop -> 'd'
  | Trap_memory -> 'm'
  | Trap_cpu -> 'p'
  | Timeout -> 't'

let of_char = function
  | 'n' -> Some No_effect
  | 'c' -> Some Corrected
  | 's' -> Some Sdc
  | 'o' -> Some Output_truncated
  | 'd' -> Some Detected_fail_stop
  | 'm' -> Some Trap_memory
  | 'p' -> Some Trap_cpu
  | 't' -> Some Timeout
  | _ -> None

let pp ppf o = Format.pp_print_string ppf (to_string o)

let is_benign = function
  | No_effect | Corrected -> true
  | Sdc | Output_truncated | Detected_fail_stop | Trap_memory | Trap_cpu
  | Timeout ->
      false

let is_failure o = not (is_benign o)

(* ------------------------------------------------------------------ *)
(* Running outcome tallies                                            *)
(* ------------------------------------------------------------------ *)

type tally = int array (* indexed by [index] *)

let tally_create () = Array.make count 0
let tally_add t o = t.(index o) <- t.(index o) + 1
let tally_count t o = t.(index o)
let tally_total (t : tally) = Array.fold_left ( + ) 0 t
let tally_copy = Array.copy

let tally_failures t =
  List.fold_left
    (fun acc o -> if is_failure o then acc + t.(index o) else acc)
    0 all

let tally_merge ~into:(dst : tally) (src : tally) =
  Array.iteri (fun i n -> dst.(i) <- dst.(i) + n) src

let tally_to_list t =
  List.filter_map
    (fun o ->
      let n = t.(index o) in
      if n > 0 then Some (o, n) else None)
    all

let pp_tally ppf t =
  Format.fprintf ppf "%d benign / %d failures"
    (tally_total t - tally_failures t)
    (tally_failures t)

let is_prefix ~prefix s =
  String.length prefix < String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

let classify ~golden_output ~golden_event_count ~stop ~output ~event_count =
  match (stop : Machine.stop_reason) with
  | Machine.Trapped (Misaligned_access _ | Unmapped_access _ | Rom_write _) ->
      Trap_memory
  | Machine.Trapped (Bad_pc _ | Division_by_zero) -> Trap_cpu
  | Machine.Panicked _ -> Detected_fail_stop
  | Machine.Cycle_limit -> Timeout
  | Machine.Halted ->
      if String.equal output golden_output then
        if event_count > golden_event_count then Corrected else No_effect
      else if is_prefix ~prefix:output golden_output then Output_truncated
      else Sdc
