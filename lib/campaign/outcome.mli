(** Experiment-outcome classification.

    The paper's campaigns (Section II-D) distinguish eight experiment
    outcome types, two of which — "No Effect" and "Detected & Corrected"
    — are benign (no externally visible deviation); the other six are
    coalesced into "Failure".  This module defines the same taxonomy for
    our machine. *)

type t =
  | No_effect
      (** Run indistinguishable from the golden run. *)
  | Corrected
      (** Output correct, but a fault-tolerance mechanism reported a
          detected-and-corrected event: benign. *)
  | Sdc
      (** Silent data corruption: run terminated normally but the serial
          output differs from the golden run. *)
  | Output_truncated
      (** Terminated normally with a proper prefix of the golden output —
          separated from {!Sdc} because it usually indicates a skipped
          computation rather than corrupted data. *)
  | Detected_fail_stop
      (** A mechanism detected an unrecoverable error and stopped the
          machine through the panic port. *)
  | Trap_memory
      (** CPU exception: unmapped/misaligned access or ROM write. *)
  | Trap_cpu
      (** CPU exception: bad jump target or division by zero. *)
  | Timeout
      (** Watchdog expired (e.g. a corrupted loop bound). *)

val all : t list
(** All outcomes, in the order above. *)

val to_string : t -> string
(** Stable identifier, e.g. ["sdc"]; inverse of {!of_string}. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val is_benign : t -> bool
(** [No_effect] and [Corrected] — "can be interpreted as a benign
    behavior that has no visible effect from the outside". *)

val is_failure : t -> bool
(** Negation of {!is_benign}; the paper's coalesced "Failure" type. *)

val index : t -> int
(** Stable dense index, [0 .. count-1], in the order of {!all}. *)

val count : int
(** Number of outcome types ([8]). *)

val of_index : int -> t
(** Inverse of {!index}.  @raise Invalid_argument outside [0 .. count-1]. *)

val to_char : t -> char
(** One-character code used by the campaign-engine journal; inverse of
    {!of_char}. *)

val of_char : char -> t option

(** {1 Running tallies}

    A mutable per-outcome experiment counter, used by campaign progress
    reporting (both the serial {!Scan.pruned} loop and the parallel
    engine) and cheap to update once per experiment. *)

type tally

val tally_create : unit -> tally
(** All-zero tally. *)

val tally_add : tally -> t -> unit
(** Count one experiment with the given outcome. *)

val tally_count : tally -> t -> int
val tally_total : tally -> int

val tally_failures : tally -> int
(** Experiments whose outcome {!is_failure}. *)

val tally_copy : tally -> tally

val tally_merge : into:tally -> tally -> unit
(** [tally_merge ~into src] adds [src]'s counts into [into]. *)

val tally_to_list : tally -> (t * int) list
(** Non-zero counts in the order of {!all}. *)

val pp_tally : Format.formatter -> tally -> unit
(** e.g. ["1234 benign / 56 failures"]. *)

val classify :
  golden_output:string ->
  golden_event_count:int ->
  stop:Machine.stop_reason ->
  output:string ->
  event_count:int ->
  t
(** Classify one finished experiment run against its golden run. *)
