type estimate = {
  population : int;
  samples : int;
  failures : int;
  outcome_counts : (Outcome.t * int) list;
  conducted : int;
}

let failure_fraction e =
  if e.samples = 0 then 0.0
  else float_of_int e.failures /. float_of_int e.samples

(* Tally a list of outcomes (one per sample). *)
let tally outcomes =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun o ->
      Hashtbl.replace counts o (1 + Option.value ~default:0 (Hashtbl.find_opt counts o)))
    outcomes;
  List.filter_map
    (fun o ->
      match Hashtbl.find_opt counts o with
      | Some n -> Some (o, n)
      | None -> None)
    Outcome.all

(* Run the distinct experiments behind a list of sample keys.

   [keys] pairs an opaque per-sample tag with the (class, bit) it fell
   into; benign samples carry no class and classify as No_effect without
   execution.  Distinct (class, bit) pairs are deduplicated, ordered by
   injection cycle and executed through a checkpoint session. *)
type sample_target =
  | Benign
  | Class of Defuse.byte_class * int (* bit_in_byte *)

let provider_for golden = function
  | Some p ->
      if Injector.provider_golden p != golden then
        invalid_arg "Sampler: provider was built over a different golden run";
      p
  | None -> Injector.plan golden

let resolve ?provider golden targets =
  (* Memoisation key: (byte, t_start, bit_in_byte) identifies a class-bit. *)
  let distinct = Hashtbl.create 256 in
  List.iter
    (fun target ->
      match target with
      | Benign -> ()
      | Class (c, bit) ->
          let key = (c.Defuse.byte, c.Defuse.t_start, bit) in
          if not (Hashtbl.mem distinct key) then
            Hashtbl.replace distinct key (c, bit))
    targets;
  let jobs =
    Hashtbl.fold (fun key (c, bit) acc -> (key, c, bit) :: acc) distinct []
  in
  let jobs =
    List.sort
      (fun (_, c1, _) (_, c2, _) -> compare c1.Defuse.t_end c2.Defuse.t_end)
      jobs
  in
  let session = Injector.session (provider_for golden provider) in
  let results = Hashtbl.create (List.length jobs) in
  List.iter
    (fun (key, c, bit) ->
      let coord = Coordspace.canonical_injection c ~bit_in_byte:bit in
      Hashtbl.replace results key (Injector.session_run_at session coord))
    jobs;
  let outcome_of = function
    | Benign -> Outcome.No_effect
    | Class (c, bit) -> Hashtbl.find results (c.Defuse.byte, c.Defuse.t_start, bit)
  in
  (List.map outcome_of targets, Hashtbl.length results)

let make_estimate ~population ~samples outcomes conducted =
  let failures = List.length (List.filter Outcome.is_failure outcomes) in
  {
    population;
    samples;
    failures;
    outcome_counts = tally outcomes;
    conducted;
  }

let uniform_raw ?provider rng ~samples golden =
  let defuse = golden.Golden.defuse in
  let total_cycles = golden.Golden.cycles in
  let ram_size = golden.Golden.program.Program.ram_size in
  let targets =
    List.init samples (fun _ ->
        let coord = Coordspace.sample_uniform rng ~total_cycles ~ram_size in
        let cls, bit = Coordspace.class_and_bit defuse coord in
        match cls.Defuse.kind with
        | Defuse.Experiment -> Class (cls, bit)
        | Defuse.Overwritten | Defuse.Dormant -> Benign)
  in
  let outcomes, conducted = resolve ?provider golden targets in
  make_estimate
    ~population:(Coordspace.size ~total_cycles ~ram_size)
    ~samples outcomes conducted

let uniform_effective ?provider rng ~samples golden =
  let defuse = golden.Golden.defuse in
  let classes = Defuse.experiment_classes defuse in
  if Array.length classes = 0 then
    make_estimate ~population:0 ~samples [] 0
  else begin
    (* Prefix sums of per-bit class weights; each class contributes its
       weight once per bit, i.e. 8·weight coordinates. *)
    let n = Array.length classes in
    let prefix = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      prefix.(i + 1) <- prefix.(i) + (8 * Defuse.weight classes.(i))
    done;
    let population = prefix.(n) in
    let pick () =
      let x = Prng.int rng population in
      (* Binary search: greatest i with prefix.(i) <= x. *)
      let rec search lo hi =
        if hi - lo <= 1 then lo
        else
          let mid = (lo + hi) / 2 in
          if prefix.(mid) <= x then search mid hi else search lo mid
      in
      let i = search 0 n in
      let within = x - prefix.(i) in
      let bit = within mod 8 in
      Class (classes.(i), bit)
    in
    let targets = List.init samples (fun _ -> pick ()) in
    let outcomes, conducted = resolve ?provider golden targets in
    make_estimate ~population ~samples outcomes conducted
  end

(* Oracle variants: draw the same sample streams but read outcomes from a
   completed pruned scan instead of conducting injections.  The machine is
   deterministic and pruning is lossless, so for the same PRNG state these
   produce estimates identical to their conducting counterparts — which
   lets the CLI reuse a parallel (or journal-resumed) campaign as the
   sampling oracle. *)

let uniform_raw_oracle rng ~samples scan =
  let expand = Scan.expander scan in
  let total_cycles = scan.Scan.cycles in
  let ram_size = scan.Scan.ram_bytes in
  let outcomes =
    List.init samples (fun _ ->
        expand (Coordspace.sample_uniform rng ~total_cycles ~ram_size))
  in
  make_estimate
    ~population:(Coordspace.size ~total_cycles ~ram_size)
    ~samples outcomes 0

let biased_per_class_oracle rng ~samples golden scan =
  let defuse = golden.Golden.defuse in
  let classes = Defuse.experiment_classes defuse in
  let expand = Scan.expander scan in
  let total_cycles = golden.Golden.cycles in
  let ram_size = golden.Golden.program.Program.ram_size in
  let outcomes =
    if Array.length classes = 0 then []
    else
      List.init samples (fun _ ->
          let c = classes.(Prng.int rng (Array.length classes)) in
          let bit_in_byte = Prng.int rng 8 in
          expand (Coordspace.canonical_injection c ~bit_in_byte))
  in
  make_estimate
    ~population:(Coordspace.size ~total_cycles ~ram_size)
    ~samples outcomes 0

let biased_per_class ?provider rng ~samples golden =
  let defuse = golden.Golden.defuse in
  let classes = Defuse.experiment_classes defuse in
  let total_cycles = golden.Golden.cycles in
  let ram_size = golden.Golden.program.Program.ram_size in
  let targets =
    if Array.length classes = 0 then []
    else
      List.init samples (fun _ ->
          let c = classes.(Prng.int rng (Array.length classes)) in
          Class (c, Prng.int rng 8))
  in
  let outcomes, conducted = resolve ?provider golden targets in
  make_estimate
    ~population:(Coordspace.size ~total_cycles ~ram_size)
    ~samples outcomes conducted
