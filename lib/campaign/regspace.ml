let register_count = 15
let pseudo_ram_bytes = 4 * register_count

let defs_uses = Isa.defs_uses

type t = { golden : Golden.t; reg_defuse : Defuse.t }

let pseudo_addr r = 4 * (Isa.reg_index r - 1)

let analyze ?limit program =
  let golden = Golden.run ?limit program in
  let trace = Trace.create ~ram_size:pseudo_ram_bytes in
  let exec_tracer ~cycle instr =
    let writes, reads = defs_uses instr in
    (* Reads happen before the write within the cycle; Defuse relies on
       that ordering for same-cycle read+write of one register. *)
    List.iter
      (fun r ->
        Trace.add trace ~cycle ~addr:(pseudo_addr r) ~width:4 ~kind:Trace.Read)
      reads;
    List.iter
      (fun r ->
        Trace.add trace ~cycle ~addr:(pseudo_addr r) ~width:4 ~kind:Trace.Write)
      writes
  in
  let machine = Machine.create ~exec_tracer program in
  (match Machine.run machine ~limit:(golden.Golden.cycles + 1) with
  | Machine.Halted -> ()
  | reason ->
      (* The machine is deterministic; a divergence here is a bug. *)
      invalid_arg
        (Format.asprintf "Regspace.analyze: register trace run stopped with %a"
           Machine.pp_stop_reason reason));
  Trace.seal trace ~total_cycles:golden.Golden.cycles;
  { golden; reg_defuse = Defuse.analyze trace }

let fault_space_size t = Defuse.fault_space_size t.reg_defuse

let coord_of_bit bit =
  let reg = 1 + (bit / 32) in
  (reg, bit mod 32)

let classes t = Defuse.experiment_classes t.reg_defuse

let conduct session (c : Defuse.byte_class) ~bit_in_byte =
  let reg, bit = coord_of_bit ((c.Defuse.byte * 8) + bit_in_byte) in
  Injector.session_run_flip session ~cycle:c.Defuse.t_end ~flip:(fun machine ->
      Machine.flip_reg_bit machine ~reg ~bit)

let provider_for golden = function
  | Some p ->
      if Injector.provider_golden p != golden then
        invalid_arg "Regspace: provider was built over a different golden run";
      p
  | None -> Injector.plan golden

let scan ?(variant = "baseline") ?provider ?(progress = Scan.no_progress) t =
  let classes = classes t in
  let order = Array.init (Array.length classes) (fun i -> i) in
  Array.sort
    (fun a b -> compare classes.(a).Defuse.t_end classes.(b).Defuse.t_end)
    order;
  let session = Injector.session (provider_for t.golden provider) in
  let total = Array.length classes in
  let results = Array.make (8 * total) None in
  let tally = Outcome.tally_create () in
  Array.iteri
    (fun rank class_index ->
      let c = classes.(class_index) in
      for bit_in_byte = 0 to 7 do
        let outcome = conduct session c ~bit_in_byte in
        Outcome.tally_add tally outcome;
        results.((class_index * 8) + bit_in_byte) <-
          Some
            {
              Scan.byte = c.Defuse.byte;
              t_start = c.Defuse.t_start;
              t_end = c.Defuse.t_end;
              bit_in_byte;
              outcome;
            }
      done;
      progress ~done_:(rank + 1) ~total ~tally)
    order;
  let experiments =
    Array.map (function Some e -> e | None -> assert false) results
  in
  {
    Scan.name = t.golden.Golden.program.Program.name;
    variant;
    cycles = t.golden.Golden.cycles;
    ram_bytes = pseudo_ram_bytes;
    experiments;
    benign_weight = Defuse.known_benign_weight t.reg_defuse;
  }
