(** Fault sampling (Sections III-B, III-E and V-C of the paper).

    Three samplers are provided:

    - {!uniform_raw} — the correct procedure: coordinates drawn uniformly
      from the raw, unpruned fault space.  Samples landing in the same
      def/use class share one conducted experiment, but {e every sample
      counts} in the estimate (avoiding Pitfall 2).
    - {!uniform_effective} — the Corollary-1-aware refinement: the
      population is reduced to the coordinates {e not} known a-priori
      benign (w′ ≤ w); results must then be extrapolated to w′.
    - {!biased_per_class} — the {e wrong} procedure that Pitfall 2 warns
      about: def/use classes sampled uniformly, ignoring their weights.
      Included to reproduce the bias quantitatively. *)

type estimate = {
  population : int;
      (** Size of the sampled population: w for {!uniform_raw} and
          {!biased_per_class}, w′ for {!uniform_effective}. *)
  samples : int;  (** Number of samples drawn, N_sampled. *)
  failures : int;  (** Failing samples, F_sampled. *)
  outcome_counts : (Outcome.t * int) list;
      (** Sample counts per outcome (sums to [samples]). *)
  conducted : int;
      (** Distinct FI experiments actually executed (≤ samples, thanks to
          class memoisation and a-priori-benign skipping). *)
}

val failure_fraction : estimate -> float
(** F_sampled / N_sampled. *)

val uniform_raw :
  ?provider:Injector.provider -> Prng.t -> samples:int -> Golden.t -> estimate
(** Correct raw-space sampling.  Distinct experiments behind the samples
    are conducted through [provider] (default: a fresh checkpoint plan,
    as in {!Scan.pruned}).

    @raise Invalid_argument if [provider] was built over a different
    golden run. *)

val uniform_effective :
  ?provider:Injector.provider -> Prng.t -> samples:int -> Golden.t -> estimate
(** Sampling restricted to the effective population w′ (experiment
    classes only), weighted by class size. *)

val biased_per_class :
  ?provider:Injector.provider -> Prng.t -> samples:int -> Golden.t -> estimate
(** Pitfall 2: classes drawn uniformly regardless of weight.  The
    [population] reported is w (what a naive evaluator would assume). *)

(** {1 Oracle samplers}

    Variants that read outcomes from a completed pruned {!Scan.t} instead
    of conducting injections.  Because the machine is deterministic and
    pruning is lossless, these yield estimates {e identical} to their
    conducting counterparts for the same PRNG state (property-tested) —
    they exist so a parallel or journal-resumed campaign can serve as the
    sampling oracle.  Their [conducted] field is [0]. *)

val uniform_raw_oracle : Prng.t -> samples:int -> Scan.t -> estimate
(** {!uniform_raw} against a scan oracle. *)

val biased_per_class_oracle :
  Prng.t -> samples:int -> Golden.t -> Scan.t -> estimate
(** {!biased_per_class} against a scan oracle (the golden run supplies
    the class inventory to draw from). *)
