type experiment = {
  byte : int;
  t_start : int;
  t_end : int;
  bit_in_byte : int;
  outcome : Outcome.t;
}

let experiment_weight e = e.t_end - e.t_start + 1

type t = {
  name : string;
  variant : string;
  cycles : int;
  ram_bytes : int;
  experiments : experiment array;
  benign_weight : int;
}

let fault_space_size t = t.cycles * t.ram_bytes * 8

type progress = done_:int -> total:int -> tally:Outcome.tally -> unit

let no_progress ~done_:_ ~total:_ ~tally:_ = ()

let conduct_class session (c : Defuse.byte_class) ~bit_in_byte =
  Injector.session_run_at session (Coordspace.canonical_injection c ~bit_in_byte)

let provider_for golden = function
  | Some p ->
      if Injector.provider_golden p != golden then
        invalid_arg "Scan: provider was built over a different golden run";
      p
  | None -> Injector.plan golden

let pruned ?(variant = "baseline") ?provider ?(progress = no_progress) golden =
  let defuse = golden.Golden.defuse in
  let classes = Defuse.experiment_classes defuse in
  (* Sessions require non-decreasing injection cycles; classes are
     sorted by (byte, t_start), so sort a copy by t_end. *)
  let order = Array.init (Array.length classes) (fun i -> i) in
  Array.sort
    (fun a b -> compare classes.(a).Defuse.t_end classes.(b).Defuse.t_end)
    order;
  let session = Injector.session (provider_for golden provider) in
  let total = Array.length classes in
  let results = Array.make (8 * total) None in
  let tally = Outcome.tally_create () in
  Array.iteri
    (fun rank class_index ->
      let c = classes.(class_index) in
      for bit_in_byte = 0 to 7 do
        let outcome = conduct_class session c ~bit_in_byte in
        Outcome.tally_add tally outcome;
        results.((class_index * 8) + bit_in_byte) <-
          Some
            {
              byte = c.Defuse.byte;
              t_start = c.Defuse.t_start;
              t_end = c.Defuse.t_end;
              bit_in_byte;
              outcome;
            }
      done;
      progress ~done_:(rank + 1) ~total ~tally)
    order;
  let experiments =
    Array.map
      (function
        | Some e -> e
        | None -> assert false (* every slot is filled above *))
      results
  in
  {
    name = golden.Golden.program.Program.name;
    variant;
    cycles = golden.Golden.cycles;
    ram_bytes = golden.Golden.program.Program.ram_size;
    experiments;
    benign_weight = Defuse.known_benign_weight defuse;
  }

let brute_force ?variant:_ golden =
  let total_cycles = golden.Golden.cycles in
  let ram_size = golden.Golden.program.Program.ram_size in
  let out = ref [] in
  Coordspace.iter ~total_cycles ~ram_size (fun coord ->
      out := (coord, Injector.run_at golden coord) :: !out);
  Array.of_list (List.rev !out)

let expander t =
  (* Index experiments per byte, sorted by t_start, for binary search. *)
  let per_byte = Hashtbl.create 256 in
  Array.iter
    (fun e ->
      let key = (e.byte, e.bit_in_byte) in
      let existing = Option.value ~default:[] (Hashtbl.find_opt per_byte key) in
      Hashtbl.replace per_byte key (e :: existing))
    t.experiments;
  let sorted = Hashtbl.create 256 in
  Hashtbl.iter
    (fun key items ->
      let arr = Array.of_list items in
      Array.sort (fun a b -> compare a.t_start b.t_start) arr;
      Hashtbl.replace sorted key arr)
    per_byte;
  fun (coord : Coordspace.coord) ->
    let byte = coord.Coordspace.bit / 8 in
    let bit_in_byte = coord.Coordspace.bit mod 8 in
    let cycle = coord.Coordspace.cycle in
    match Hashtbl.find_opt sorted (byte, bit_in_byte) with
    | None -> Outcome.No_effect
    | Some arr ->
        (* Binary search for t_start <= cycle <= t_end. *)
        let rec search lo hi =
          if lo >= hi then Outcome.No_effect
          else
            let mid = (lo + hi) / 2 in
            let e = arr.(mid) in
            if cycle < e.t_start then search lo mid
            else if cycle > e.t_end then search (mid + 1) hi
            else e.outcome
        in
        search 0 (Array.length arr)

let outcome_at t coord = expander t coord
