(** Single-experiment execution.

    One FI experiment: run the benchmark from reset until just before the
    injection cycle, flip one bit, resume to completion (or watchdog),
    and classify the outcome against the golden run — the procedure of
    Section III-B of the paper.

    Experiments are conducted through a {e session provider}: the
    per-campaign object that owns whatever acceleration state the
    experiments share, and hands out independent {!session}s.  Serial
    scans, samplers and every engine backend consume the same provider
    abstraction, so they all share one conduction code path.

    Two providers exist.  {!replay} re-executes from reset for every
    session (the textbook procedure; the reference semantics).  {!plan}
    replays the golden execution once, capturing a {!Machine.Snapshot}
    ladder every [stride] cycles, and then

    - starts each session's pristine machine from the nearest checkpoint
      at or below its first injection cycle instead of from reset, and
    - classifies a faulty run as soon as it provably re-converges with
      the golden execution at a checkpoint (pc, cycle and every
      still-live RAM byte and register agree — liveness comes from the
      golden def/use trace), or provably diverges forever (its execution
      state repeats, which on a deterministic machine is an infinite
      loop), instead of simulating the remaining cycles.

    Both shortcuts are exact on the deterministic machine — outcomes are
    bit-identical to {!replay} (property-tested differentially) — so the
    checkpoint stride is a pure performance knob: it is deliberately
    excluded from campaign fingerprints and result-cache keys. *)

type provider
(** A session provider for one golden run. *)

val replay : Golden.t -> provider
(** The restart-from-reset reference provider. *)

val plan : ?stride:int -> Golden.t -> provider
(** Checkpoint-plan provider with a ladder every [stride] cycles
    (default {!default_stride}).  Costs one extra golden-speed replay
    plus [cycles/stride] machine snapshots up front.  [stride <= 0]
    degrades to {!replay}. *)

val default_stride : int
(** 128 — around a hundred checkpoints for the bundled kernels; memory
    cost is [cycles/stride] RAM images. *)

val provider_golden : provider -> Golden.t
(** The golden run the provider was built over. *)

type session
(** An injection session over monotonically non-decreasing injection
    cycles: one pristine machine rolled forward (or hopped forward along
    the provider's checkpoint ladder) between experiments. *)

val session : provider -> session
(** Fresh session positioned at reset. *)

val session_run_at : session -> Coordspace.coord -> Outcome.t
(** Conduct one experiment at a fault-space coordinate on the session's
    pristine machine.  Injection cycles must be presented in
    non-decreasing order.

    @raise Invalid_argument if the coordinate lies outside the fault
    space, or on a decreasing injection cycle. *)

val session_run_flip :
  session -> cycle:int -> flip:(Machine.t -> unit) -> Outcome.t
(** Generalised injection: advance to [cycle − 1], fork, apply [flip]
    (any state mutation — e.g. a register bit flip for the Section-VI-B
    extension) and classify the resumed run.  Same monotonicity
    requirement as {!session_run_at}.

    @raise Invalid_argument on a decreasing injection cycle. *)

val run_at : Golden.t -> Coordspace.coord -> Outcome.t
(** One-shot experiment at an arbitrary coordinate: a plan-of-one,
    conducted on a throwaway {!replay} session (building a checkpoint
    ladder for a single experiment would cost more than the experiment).

    @raise Invalid_argument if [coord] lies outside the fault space. *)
