let check_coord golden coord =
  let total_cycles = golden.Golden.cycles in
  let ram_size = golden.Golden.program.Program.ram_size in
  if not (Coordspace.contains ~total_cycles ~ram_size coord) then
    invalid_arg
      (Format.asprintf "Injector: coordinate %a outside fault space"
         Coordspace.pp_coord coord)

let classify_stopped golden machine stop =
  Outcome.classify ~golden_output:golden.Golden.output
    ~golden_event_count:golden.Golden.event_count ~stop
    ~output:(Machine.serial_output machine)
    ~event_count:(Machine.event_count machine)

let finish golden machine =
  let stop = Machine.run machine ~limit:(Golden.timeout_limit golden) in
  classify_stopped golden machine stop

(* ------------------------------------------------------------------ *)
(* Checkpoint plans                                                   *)
(* ------------------------------------------------------------------ *)

let default_stride = 128

(* A checkpoint ladder over the golden execution, plus per-checkpoint
   live-in masks that make convergence comparisons sound: a faulty run
   that agrees with a golden checkpoint on pc, cycle count and every RAM
   byte / register the golden tail still reads before overwriting
   provably replays that tail, so its outcome is computable without
   simulating it. *)
(* A rendezvous anchor: the golden state just after emitting serial
   byte [position], for catching cycle-shifted re-convergence.  A
   faulty run that rejoins the golden instruction stream with a cycle
   offset never satisfies [converges_with] (cycle counts differ at
   every ladder entry), but when it emits output byte [n] it is — by
   construction — about to replay golden's tail from golden's byte-[n]
   state.  That emission is an exact, cheaply detectable rendezvous
   point. *)
type anchor = {
  a_cycle : int; (* golden cycle just after emitting the byte *)
  a_snap : Machine.Snapshot.t;
  a_ram_live : int array;
  a_reg_mask : int;
}

type plan = {
  stride : int;
  ladder : Machine.Snapshot.t array; (* ascending cycles, running states *)
  ladder_cycles : int array;
  ram_live : int array array; (* per ladder entry: live-in RAM bytes *)
  reg_mask : int array; (* per ladder entry: live-in register bitmask *)
  anchor_at : anchor option array; (* indexed by serial byte position *)
  trap_bits : Bytes.t; (* anchored positions, as a Machine trap bitmap *)
  shift_index : (int, int) Hashtbl.t;
      (* golden {!Machine.state_hash} at every cycle -> that cycle, for
         guessing the offset of cycle-shifted re-convergence *)
}

(* Walk one location's chronological access list ([(cycle, is_read)],
   reads before writes within a cycle) against the ascending ladder
   cycles: the location is live-in at checkpoint [c] iff its first
   access after [c] is a read. *)
let fold_live_in ~ladder_cycles accesses ~live =
  let nl = Array.length ladder_cycles in
  let rec fill i accesses =
    if i < nl then
      match accesses with
      | [] -> () (* never accessed again: dead for every later entry *)
      | (a, is_read) :: rest ->
          if a <= ladder_cycles.(i) then fill i rest
          else begin
            if is_read then live i;
            fill (i + 1) accesses
          end
  in
  fill 0 accesses

(* Replay the golden execution once more (plain compiled machine, no
   tracer), picking serial anchor positions — the first byte emitted at
   least [stride] cycles after the previous anchor, as
   [(position, cycle, snapshot)] in ascending order — and indexing the
   golden {!Machine.state_hash} of every cycle for shift guessing. *)
let golden_survey golden ~stride =
  let glen = String.length golden.Golden.output in
  let shift_index = Hashtbl.create (2 * golden.Golden.cycles) in
  let machine = Machine.create golden.Golden.program in
  let last = ref (-stride) in
  let prev_len = ref 0 in
  let points = ref [] in
  while Machine.stopped machine = None do
    Machine.step machine;
    if Machine.stopped machine = None then
      Hashtbl.add shift_index
        (Machine.state_hash machine)
        (Machine.cycle machine);
    let n = Machine.serial_length machine in
    if n > !prev_len then begin
      prev_len := n;
      let c = Machine.cycle machine in
      if c >= !last + stride && n <= glen then begin
        last := c;
        points := (n - 1, c, Machine.Snapshot.capture machine) :: !points
      end
    end
  done;
  (List.rev !points, shift_index)

let build_plan golden ~stride =
  (* Replay the golden execution once, tracing register accesses for
     the register live-in masks and capturing the checkpoint ladder. *)
  let reg_acc = Array.make 16 [] in
  let exec_tracer ~cycle instr =
    let writes, reads = Isa.defs_uses instr in
    List.iter
      (fun r ->
        let i = Isa.reg_index r in
        reg_acc.(i) <- (cycle, true) :: reg_acc.(i))
      reads;
    List.iter
      (fun r ->
        let i = Isa.reg_index r in
        reg_acc.(i) <- (cycle, false) :: reg_acc.(i))
      writes
  in
  let machine = Machine.create ~exec_tracer golden.Golden.program in
  let stop, ladder =
    Machine.run_checkpointed machine ~stride
      ~limit:(golden.Golden.cycles + 1)
  in
  (match stop with
  | Machine.Halted -> ()
  | reason ->
      (* The machine is deterministic; a divergence here is a bug. *)
      invalid_arg
        (Format.asprintf "Injector: checkpoint replay stopped with %a"
           Machine.pp_stop_reason reason));
  let ladder_cycles = Array.map Machine.Snapshot.cycle ladder in
  let nl = Array.length ladder_cycles in
  let points, shift_index = golden_survey golden ~stride in
  let anchor_cycles = Array.of_list (List.map (fun (_, c, _) -> c) points) in
  let na = Array.length anchor_cycles in
  let ram_size = golden.Golden.program.Program.ram_size in
  let ram_acc = Array.make ram_size [] in
  Trace.iter_byte_accesses golden.Golden.trace (fun ~byte ~cycle ~kind ->
      ram_acc.(byte) <- (cycle, kind = Trace.Read) :: ram_acc.(byte));
  let live_lists = Array.make nl [] in
  let a_live_lists = Array.make na [] in
  for b = ram_size - 1 downto 0 do
    let accesses =
      List.sort
        (fun (c1, r1) (c2, r2) ->
          if c1 <> c2 then compare c1 c2 else compare r2 r1 (* reads first *))
        (List.rev ram_acc.(b))
    in
    fold_live_in ~ladder_cycles accesses ~live:(fun i ->
        live_lists.(i) <- b :: live_lists.(i));
    fold_live_in ~ladder_cycles:anchor_cycles accesses ~live:(fun i ->
        a_live_lists.(i) <- b :: a_live_lists.(i))
  done;
  let reg_mask = Array.make nl 0 in
  let a_reg_mask = Array.make na 0 in
  for r = 1 to 15 do
    let accesses = List.rev reg_acc.(r) in
    fold_live_in ~ladder_cycles accesses ~live:(fun i ->
        reg_mask.(i) <- reg_mask.(i) lor (1 lsl r));
    fold_live_in ~ladder_cycles:anchor_cycles accesses ~live:(fun i ->
        a_reg_mask.(i) <- a_reg_mask.(i) lor (1 lsl r))
  done;
  let glen = String.length golden.Golden.output in
  let anchor_at = Array.make glen None in
  let trap_bits =
    if points = [] then Bytes.empty
    else Bytes.make ((glen + 7) / 8) '\000'
  in
  List.iteri
    (fun i (p, c, snap) ->
      anchor_at.(p) <-
        Some
          {
            a_cycle = c;
            a_snap = snap;
            a_ram_live = Array.of_list a_live_lists.(i);
            a_reg_mask = a_reg_mask.(i);
          };
      Bytes.set trap_bits (p lsr 3)
        (Char.chr (Char.code (Bytes.get trap_bits (p lsr 3)) lor (1 lsl (p land 7)))))
    points;
  {
    stride;
    ladder;
    ladder_cycles;
    ram_live = Array.map Array.of_list live_lists;
    reg_mask;
    anchor_at;
    trap_bits;
    shift_index;
  }

(* Outcome of a run that provably re-converged with the golden
   execution at checkpoint [snap] (a ladder entry or a rendezvous
   anchor): the tail replays golden, so splice the golden tail onto
   what the faulty run emitted so far.  Serial output and events are
   execution history, not machine state, so the splice is sound even
   when the prefixes disagree — the run just carries its corrupted
   prefix under the golden tail. *)
let spliced_outcome golden machine (snap : Machine.Snapshot.t) =
  let mark = Machine.Snapshot.serial_length snap in
  let event_count =
    Machine.event_count machine
    + (golden.Golden.event_count - Machine.Snapshot.event_count snap)
  in
  let golden_output = golden.Golden.output in
  let output =
    if Machine.serial_agrees machine ~prefix:golden_output ~len:mark then
      golden_output (* tail splice yields exactly the golden output *)
    else
      Machine.serial_output machine
      ^ String.sub golden_output mark (String.length golden_output - mark)
  in
  Outcome.classify ~golden_output ~golden_event_count:golden.Golden.event_count
    ~stop:Machine.Halted ~output ~event_count

(* A repeated execution state proves an infinite loop (detected by the
   machine's armed Brent hunter): classify as the watchdog would,
   without simulating to the cycle limit. *)
let timeout_outcome golden machine =
  classify_stopped golden machine Machine.Cycle_limit

(* A run that outlives the whole golden ladder can never converge any
   more — it is either going to stop on its own or spin to the
   watchdog.  Past that point, arm a cheap pc-recurrence probe: each
   time it fires (the run revisits an instruction — it is looping),
   attempt a {!Loopproof} non-termination proof.  Success classifies
   the run as the watchdog would; failure widens the probe window
   geometrically so analysis cost stays negligible even for loops the
   prover cannot crack. *)
let probe_window0 = 32

(* Consecutive failed ladder-boundary convergence checks (with no live
   shift hypothesis) before the pc-recurrence probe is armed early: a
   run that has been divergent for this many strides is usually either
   about to stop on its own or stuck in a loop, and the probe makes the
   latter cheap to prove long before the ladder runs out. *)
let probe_miss_arm = 6

let finish_planned plan golden machine =
  let limit = Golden.timeout_limit golden in
  let nl = Array.length plan.ladder in
  (* First ladder entry strictly ahead of the machine. *)
  let start =
    let cyc = Machine.cycle machine in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if plan.ladder_cycles.(mid) <= cyc then search (mid + 1) hi
        else search lo mid
    in
    search 0 nl
  in
  let window = ref probe_window0 in
  let armed = ref false in
  let delta = ref 0 in
  let dj = ref nl in (* next shifted ladder entry to test; [nl] = none *)
  let dfail = ref 0 in (* consecutive failed rendezvous tests *)
  let misses = ref 0 in
  let rec go i =
    (* Never arm while a shift hypothesis is live: a failed proof
       attempt steps the machine thousands of cycles past the shifted
       boundaries the hypothesis needs to test at.  Hypotheses are
       short-lived (see [dfail]), so loop-bound runs still get the
       probe promptly. *)
    if (i >= nl || !misses >= probe_miss_arm) && !dj >= nl && not !armed
    then begin
      Machine.probe_pc_recurrence ~window0:!window machine;
      armed := true
    end;
    let target =
      let ntarget =
        if i < nl then plan.ladder_cycles.(i)
        else min (Machine.cycle machine + plan.stride) limit
      in
      if !dj < nl then min ntarget (plan.ladder_cycles.(!dj) + !delta)
      else ntarget
    in
    Machine.run_until machine ~cycle:target;
    match Machine.stopped machine with
    | Some stop -> classify_stopped golden machine stop
    | None ->
        if Machine.take_serial_trap machine then begin
          (* The trap displaced any armed probe; re-arm on resume. *)
          armed := false;
          let n = Machine.serial_length machine in
          let hit =
            if n >= 1 && n - 1 < Array.length plan.anchor_at then
              match plan.anchor_at.(n - 1) with
              | Some a
                when Machine.rendezvous_with machine a.a_snap
                       ~ram_live:a.a_ram_live ~reg_mask:a.a_reg_mask
                     && Machine.cycle machine
                        + (golden.Golden.cycles - a.a_cycle)
                        <= limit ->
                  (* The run replays golden's tail shifted in time, and
                     the shifted finish still beats the watchdog. *)
                  Some a.a_snap
              | Some _ | None -> None
            else None
          in
          match hit with
          | Some snap -> spliced_outcome golden machine snap
          | None -> go i
        end
        else if Machine.pc_recurrence machine <> None then begin
          let proven = Loopproof.prove_no_halt machine ~limit in
          if proven then timeout_outcome golden machine
          else begin
            (* Unprovable loop (or a false alarm): space probes out and
               resume simulating — the proof attempt's steps were real
               execution, so the machine is simply further along. *)
            window := !window * 8;
            Machine.probe_pc_recurrence ~window0:!window machine;
            go i
          end
        end
        else begin
          let cyc = Machine.cycle machine in
          if !dj < nl && cyc >= plan.ladder_cycles.(!dj) + !delta then begin
            (* A shifted ladder boundary: test the shift hypothesis.
               [rendezvous_with] is sound at any cycle, so a hit proves
               the run replays golden's tail shifted by [delta]. *)
            let j = !dj in
            dj := j + 1;
            if
              Machine.rendezvous_with machine plan.ladder.(j)
                ~ram_live:plan.ram_live.(j) ~reg_mask:plan.reg_mask.(j)
              && cyc + (golden.Golden.cycles - plan.ladder_cycles.(j))
                 <= limit
            then spliced_outcome golden machine plan.ladder.(j)
            else begin
              incr dfail;
              if !dfail >= 24 then dj := nl (* hypothesis refuted *);
              go i
            end
          end
          else if i < nl && cyc = plan.ladder_cycles.(i) then
            if
              Machine.converges_with machine plan.ladder.(i)
                ~ram_live:plan.ram_live.(i) ~reg_mask:plan.reg_mask.(i)
            then spliced_outcome golden machine plan.ladder.(i)
            else begin
              (* Missed.  Maybe the run re-converged with a cycle
                 shift: a golden state-hash hit at another cycle names
                 the candidate offset, and the rendezvous tests above
                 verify or refute it soundly at shifted boundaries. *)
              (match
                 Hashtbl.find_opt plan.shift_index
                   (Machine.state_hash machine)
               with
              | Some g when g <> cyc ->
                  let d = cyc - g in
                  if d <> !delta || !dj >= nl then begin
                    dfail := 0;
                    delta := d;
                    (* First ladder entry whose shifted cycle is ahead. *)
                    let rec search lo hi =
                      if lo >= hi then lo
                      else
                        let mid = (lo + hi) / 2 in
                        if plan.ladder_cycles.(mid) + d <= cyc then
                          search (mid + 1) hi
                        else search lo mid
                    in
                    dj := search 0 nl
                  end
              | Some _ | None -> incr misses);
              go (i + 1)
            end
          else if cyc >= limit then timeout_outcome golden machine
          else go (if i < nl && cyc >= plan.ladder_cycles.(i) then i + 1 else i)
        end
  in
  go start

(* ------------------------------------------------------------------ *)
(* Session providers                                                  *)
(* ------------------------------------------------------------------ *)

type impl = Replay | Planned of plan
type provider = { p_golden : Golden.t; impl : impl }

let provider_golden p = p.p_golden
let replay golden = { p_golden = golden; impl = Replay }

let plan ?(stride = default_stride) golden =
  if stride <= 0 then replay golden
  else { p_golden = golden; impl = Planned (build_plan golden ~stride) }

type session = {
  provider : provider;
  mutable pristine : Machine.t;
  mutable at : int; (* cycles executed on the pristine machine *)
}

let session provider =
  {
    provider;
    pristine = Machine.create provider.p_golden.Golden.program;
    at = 0;
  }

(* Rolling [hop_min] cycles costs about as much as one checkpoint
   restore; hop only when the restore actually skips work. *)
let hop_min = 64

let advance s target =
  if target < s.at then
    invalid_arg "Injector.session_run_at: injection cycles must not decrease";
  (match s.provider.impl with
  | Planned plan when target > s.at ->
      (* Greatest ladder entry at or below [target]. *)
      let cycles = plan.ladder_cycles in
      let n = Array.length cycles in
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if cycles.(mid) <= target then search (mid + 1) hi
          else search lo mid
      in
      let i = search 0 n - 1 in
      if i >= 0 && cycles.(i) >= s.at + hop_min then begin
        s.pristine <- Machine.Snapshot.restore plan.ladder.(i) ~tracer:None;
        s.at <- cycles.(i)
      end
  | Planned _ | Replay -> ());
  if target > s.at then begin
    Machine.run_until s.pristine ~cycle:target;
    s.at <- target
  end

let session_run_flip s ~cycle ~flip =
  advance s (cycle - 1);
  let machine = Machine.fork s.pristine in
  flip machine;
  match s.provider.impl with
  | Replay -> finish s.provider.p_golden machine
  | Planned plan ->
      Machine.trap_serial machine ~positions:plan.trap_bits;
      finish_planned plan s.provider.p_golden machine

let session_run_at s coord =
  check_coord s.provider.p_golden coord;
  session_run_flip s ~cycle:coord.Coordspace.cycle ~flip:(fun machine ->
      Machine.flip_bit machine coord.Coordspace.bit)

let run_at golden coord =
  (* Plan-of-one: a throwaway replay session.  Building a ladder for a
     single experiment would cost more than the experiment. *)
  session_run_at (session (replay golden)) coord
