(** The journal catalogue: [fingerprint → path] index of campaign
    journals.

    When a spec's policy names a catalogue directory, the engine appends
    one line per closed journal to [<dir>/journals.idx], and a later
    [--resume] {e without} an explicit journal path finds its journal by
    campaign fingerprint instead.  The index is append-only (later
    entries supersede earlier ones for the same fingerprint) and tolerant
    of unparseable lines, in the same spirit as the journal itself. *)

val default_dir : string
(** ["_artifacts"] — the CLI's and benchmark harness's artifact cache. *)

val index_path : dir:string -> string
(** [<dir>/journals.idx]. *)

val ensure_dir : string -> unit
(** Create [dir] if missing (one level; ignores races and failures —
    callers get a clean error from the subsequent open instead). *)

val journal_path : dir:string -> fingerprint:int -> string
(** The default journal location for a campaign:
    [<dir>/fi-<fingerprint-hex>.journal]. *)

val lookup : dir:string -> fingerprint:int -> string option
(** Last catalogued path for this fingerprint, if any (missing index =
    no entries). *)

val record : dir:string -> fingerprint:int -> path:string -> unit
(** Append [fingerprint → path], creating directory and index on first
    use; a no-op if that mapping is already the current one. *)
