(** The journal catalogue: [fingerprint → path] index of campaign
    journals.

    When a spec's policy names a catalogue directory, the engine appends
    one line per closed journal to [<dir>/journals.idx], and a later
    [--resume] {e without} an explicit journal path finds its journal by
    campaign fingerprint instead.  The index is append-only (later
    entries supersede earlier ones for the same fingerprint) and tolerant
    of unparseable lines, in the same spirit as the journal itself. *)

val default_dir : string
(** ["_artifacts"] — the CLI's and benchmark harness's artifact cache. *)

val index_path : dir:string -> string
(** [<dir>/journals.idx]. *)

val ensure_dir : string -> unit
(** Create [dir] if missing (one level; ignores races and failures —
    callers get a clean error from the subsequent open instead). *)

val journal_path : dir:string -> fingerprint:int -> string
(** The default journal location for a campaign:
    [<dir>/fi-<fingerprint-hex>.journal]. *)

val lookup : dir:string -> fingerprint:int -> string option
(** Last catalogued path for this fingerprint, if any (missing index =
    no entries). *)

val record : dir:string -> fingerprint:int -> path:string -> unit
(** Append [fingerprint → path], creating directory and index on first
    use; a no-op if that mapping is already the current one.  The
    check-and-append runs under the index's {!Lockfile} — concurrent
    campaigns on one host (the service's normal case) cannot interleave
    index lines. *)

val rewrite : dir:string -> (int * string) list -> unit
(** Replace the whole index with these entries, atomically (write to a
    temp file, then rename).  Compaction's primitive. *)

type compaction = {
  examined : int;  (** Index lines parsed. *)
  kept : int;  (** Entries still in the index afterwards. *)
  folded : int;  (** Finished journals removed (results live in CSV). *)
  superseded : int;  (** Older duplicate entries dropped. *)
  dangling : int;  (** Entries whose journal file no longer exists. *)
}

val compact :
  ?dry_run:bool ->
  ?protect:(string -> bool) ->
  finished:(string -> bool) ->
  dir:string ->
  unit ->
  compaction
(** Fold the catalogue: drop superseded and dangling entries, and for
    every current entry whose journal [finished] judges complete
    (normally {!Runcell.journal_finished} — the campaign's results are
    then reproducible from the CSV store), delete the journal file and
    its entry.  Unfinished journals — including quarantine-degraded
    ones, which [--resume] can still heal — are kept, as is any journal
    [protect] claims (the CLI passes the result cache's
    {!Cache.referenced}: a cache-backed journal IS the cached result —
    deleting it would turn every future hit into a miss).  With
    [dry_run] nothing is deleted or rewritten; the returned summary
    reports what {e would} happen. *)
