let env_var = "FI_ENGINE_WORKER"
let torture_var = "FI_ENGINE_TORTURE"
let magic = "fiwork1\n"

type job = {
  spec : Spec.t;
  fingerprint : int;
  shard_ids : int array;
  segment : string;
  index : int;
}

(* The job crosses the pipe as [magic] + [Marshal] with [Closures]: the
   worker is a fork/exec of the very same executable, so code pointers
   captured by a [Spec.Build] thunk relocate correctly. *)
let encode_job (job : job) = magic ^ Marshal.to_string job [ Marshal.Closures ]

let segment_header ~fingerprint ~pid =
  Printf.sprintf "fi-segment v1 fingerprint=%s pid=%d" (Crc32.to_hex fingerprint)
    pid

let segment_fingerprint header =
  let prefix = "fi-segment v1 fingerprint=" in
  let plen = String.length prefix in
  if String.length header >= plen + 8 && String.sub header 0 plen = prefix then
    Crc32.of_hex (String.sub header plen 8)
  else None

(* ------------------------------------------------------------------ *)
(* Torture hook (crash injection for the engine's own tests)          *)
(* ------------------------------------------------------------------ *)

type torture_mode = Exit | Raise | Sigkill | Torn | Hang | Stall | Poison

type torture = { mode : torture_mode; after : int; only : int option }

let parse_torture = function
  | None | Some "" -> None
  | Some s -> (
      let mode_of = function
        | "exit" -> Some Exit
        | "raise" -> Some Raise
        | "sigkill" -> Some Sigkill
        | "torn" -> Some Torn
        | "hang" -> Some Hang
        | "stall" -> Some Stall
        | "poison" -> Some Poison
        | _ -> None
      in
      match String.split_on_char ':' s with
      | [ m; n ] -> (
          match (mode_of m, int_of_string_opt n) with
          | Some mode, Some after -> Some { mode; after; only = None }
          | _ -> None)
      | [ m; n; w ] -> (
          match (mode_of m, int_of_string_opt n, int_of_string_opt w) with
          | Some mode, Some after, Some only ->
              Some { mode; after; only = Some only }
          | _ -> None)
      | _ -> None)

let maybe_die torture ~index ~completed ~segment ~output =
  match torture with
  | Some t
    when t.mode <> Poison
         && (t.only = None || t.only = Some index)
         && completed = t.after -> (
      match t.mode with
      | Poison -> ()
      | Exit -> exit 7
      | Raise -> failwith "torture: injected worker fault"
      | Sigkill -> Unix.kill (Unix.getpid ()) Sys.sigkill
      | Torn ->
          (* A crash mid-append: raw partial record, no newline, then
             die without cleanup. *)
          let oc = open_out_gen [ Open_append; Open_binary ] 0o644 segment in
          output_string oc "deadbeef torn-rec";
          flush oc;
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | Hang ->
          (* Silent wedge: no heartbeat, no progress, never exits.  Only
             the parent's deadline can end this worker. *)
          while true do
            Unix.sleep 3600
          done
      | Stall ->
          (* Livelock: the worker stays chatty — heartbeats keep
             flowing — but shard progress stops forever. *)
          while true do
            output_string output "h\n";
            flush output;
            Unix.sleepf 0.02
          done)
  | Some _ | None -> ()

(* Poison is keyed by {e plan shard id}, not completed-shard count, so
   the fault deterministically follows one coordinate range through any
   re-dispatch — the shard kills every worker it is ever assigned to,
   which is exactly what quarantine exists for. *)
let maybe_poison torture ~index ~shard_id =
  match torture with
  | Some { mode = Poison; after; only }
    when (only = None || only = Some index) && shard_id = after ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* The worker side                                                    *)
(* ------------------------------------------------------------------ *)

let serve ~input ~output =
  set_binary_mode_in input true;
  let seen = really_input_string input (String.length magic) in
  if seen <> magic then failwith "worker: bad job magic on stdin";
  let job : job = Marshal.from_channel input in
  let cell = Runcell.analyse job.spec in
  let classes = cell.Runcell.classes in
  let plan = Runcell.plan_of_policy job.spec.Spec.policy classes in
  let fp = Runcell.fingerprint_cell cell ~plan in
  if fp <> job.fingerprint then
    failwith
      (Printf.sprintf
         "worker: cell fingerprint %s disagrees with the parent's %s \
          (nondeterministic build?)"
         (Crc32.to_hex fp)
         (Crc32.to_hex job.fingerprint));
  let shards_total = Array.length plan.Shard.shards in
  Array.iter
    (fun id ->
      if id < 0 || id >= shards_total then
        failwith (Printf.sprintf "worker: shard id %d out of range" id))
    job.shard_ids;
  let torture = parse_torture (Sys.getenv_opt torture_var) in
  let w =
    Journal.create job.segment
      ~header:(segment_header ~fingerprint:fp ~pid:(Unix.getpid ()))
  in
  (* Heartbeats: one [h] line per conducted class, throttled, so the
     parent can tell a slow shard from a hung worker.  Lost beats are
     harmless — the deadline just bites a little earlier. *)
  let last_beat = ref 0. in
  let heartbeat ~class_index:_ _ =
    let now = Unix.gettimeofday () in
    if now -. !last_beat >= 0.01 then (
      last_beat := now;
      output_string output "h\n";
      flush output)
  in
  Array.iteri
    (fun completed id ->
      maybe_die torture ~index:job.index ~completed ~segment:job.segment
        ~output;
      maybe_poison torture ~index:job.index ~shard_id:id;
      let shard = plan.Shard.shards.(id) in
      let buf =
        Runcell.conduct_shard ~on_class:heartbeat cell ~classes ~plan shard
      in
      Journal.append w (Runcell.record_payload shard buf);
      (* Doorbell: the record is fsync'd, the parent may merge it. *)
      Printf.fprintf output "s %d\n" id;
      flush output)
    job.shard_ids;
  maybe_die torture ~index:job.index ~completed:(Array.length job.shard_ids)
    ~segment:job.segment ~output;
  Journal.close w;
  output_string output "end\n";
  flush output

let guard () =
  match Sys.getenv_opt env_var with
  | Some "1" ->
      (try serve ~input:stdin ~output:stdout
       with exn ->
         Printf.eprintf "fi worker (pid %d): %s\n%!" (Unix.getpid ())
           (Printexc.to_string exn);
         exit 3);
      exit 0
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* The parent side                                                    *)
(* ------------------------------------------------------------------ *)

type child = {
  pid : int;
  index : int;
  status_fd : Unix.file_descr;
  segment : string;
  assigned : int array;
}

let spawn (job : job) =
  let job_r, job_w = Unix.pipe ~cloexec:true () in
  let st_r, st_w = Unix.pipe ~cloexec:true () in
  let env =
    Array.append (Unix.environment ()) [| Printf.sprintf "%s=1" env_var |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env job_r st_w Unix.stderr
  in
  Unix.close job_r;
  Unix.close st_w;
  (* Ship the job.  The child may already be dead (torture, OOM): a
     broken pipe here is a supervision event, not a parent crash — the
     caller must have SIGPIPE ignored, which turns it into EPIPE. *)
  (try Sysio.write_string job_w (encode_job job)
   with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> ());
  (try Unix.close job_w with Unix.Unix_error _ -> ());
  {
    pid;
    index = job.index;
    status_fd = st_r;
    segment = job.segment;
    assigned = job.shard_ids;
  }

let pid c = c.pid
let index c = c.index
let status_fd c = c.status_fd
let segment c = c.segment
let assigned c = c.assigned
let wait child = snd (Unix.waitpid [] child.pid)

let kill child =
  try Unix.kill child.pid Sys.sigkill
  with Unix.Unix_error _ -> () (* already reaped / gone *)
