let serve_var = "FI_ENGINE_NET_SERVE"

(* Supervision-loop patience for peers that connect but never speak:
   mutable so the torture suite can shrink them (a half-open peer then
   costs half a second, not the production ten). *)
let connect_timeout = ref 10.
let handshake_timeout = ref 10.

(* ------------------------------------------------------------------ *)
(* The wire job                                                       *)
(* ------------------------------------------------------------------ *)

(* Unlike the fork/exec worker's job, nothing here may capture code: the
   peer is another machine, so [Spec.Build] closures cannot cross.  The
   job is the Runcell-level cell description — the assembled program
   image plus the policy fields that shape the shard plan — and the
   worker re-derives everything else (golden run, fault-space classes,
   fingerprint) on its own silicon, refusing on disagreement.  Marshal
   without [Closures] is plain portable data; the handshake's binary
   digest pins both ends to the same executable, which makes the
   marshalling format (and the analysis) agree by construction. *)
type wire_job = {
  benchmark : string;
  variant : string;
  model : Faultspace.model;
  limit : int option;
  shard_size : int option;
  weighted : bool;
  stride : int option;
      (* checkpoint stride — a pure perf knob the peer honours locally;
         deliberately absent from the fingerprint it verifies. *)
  program : Program.t;
  fingerprint : int;
  shard_ids : int array;
  index : int;
}

let wire_magic = "fi-wire v1\n"

let encode_job (job : wire_job) = wire_magic ^ Marshal.to_string job []

let decode_job s =
  let mlen = String.length wire_magic in
  if String.length s <= mlen || String.sub s 0 mlen <> wire_magic then None
  else
    match (Marshal.from_string s mlen : wire_job) with
    | job -> Some job
    | exception _ -> None

let wire_of_spec (spec : Spec.t) ~program ~fingerprint ~shard_ids ~index =
  {
    benchmark = spec.Spec.benchmark;
    variant = spec.Spec.variant;
    model = spec.Spec.model;
    limit = spec.Spec.limit;
    shard_size = spec.Spec.policy.Spec.sharding.Spec.shard_size;
    weighted = spec.Spec.policy.Spec.sharding.Spec.weighted;
    stride = spec.Spec.policy.Spec.acceleration.Spec.checkpoint_stride;
    program;
    fingerprint;
    shard_ids;
    index;
  }

(* Only the plan-shaping policy fields (plus the checkpoint stride, so
   the peer accelerates the same way) cross the wire: journalling,
   resume and supervision belong to the conducting parent. *)
let spec_of_wire (job : wire_job) =
  {
    Spec.benchmark = job.benchmark;
    variant = job.variant;
    model = job.model;
    source = Spec.Build (fun () -> job.program);
    limit = job.limit;
    policy =
      Spec.make_policy ?shard_size:job.shard_size ~weighted:job.weighted
        ?checkpoint_stride:job.stride ();
  }

let program_of_spec (spec : Spec.t) =
  match spec.Spec.source with
  | Spec.Analysed_memory g -> g.Golden.program
  | Spec.Analysed_registers r -> r.Regspace.golden.Golden.program
  | Spec.Build build -> build ()

(* ------------------------------------------------------------------ *)
(* Client side (the conducting engine)                                *)
(* ------------------------------------------------------------------ *)

type client = {
  conn : Transport.conn;
  addr : Addr.t;
  index : int;
  assigned : int array;
}

let shake ?timeout ?secret conn ~fingerprint =
  let timeout = Option.value timeout ~default:!handshake_timeout in
  let mine = Handshake.hello ~fingerprint ?secret () in
  Transport.send conn Frame.Hello (Handshake.encode mine);
  match Transport.recv ~timeout conn with
  | None -> Error "connection closed during handshake"
  | Some (Frame.Err, msg) -> Error (Printf.sprintf "peer refused: %s" msg)
  | Some (Frame.Hello, payload) -> (
      match Handshake.decode payload with
      | None -> Error "peer sent a malformed hello"
      | Some theirs -> (
          match Handshake.check ?secret ~mine ~theirs () with
          | Ok () -> Ok theirs
          | Error _ as e -> e))
  | Some (kind, _) ->
      Error
        (Printf.sprintf "peer sent a %s frame instead of a hello"
           (Frame.kind_tag kind))

let with_conn ?timeout addr f =
  let timeout = Option.value timeout ~default:!connect_timeout in
  match Transport.connect ~timeout addr with
  | Error _ as e -> e
  | Ok conn -> (
      match f conn with
      | r -> r
      | exception Frame.Corrupt msg ->
          Transport.close conn;
          Error msg
      | exception Unix.Unix_error (err, _, _) ->
          Transport.close conn;
          Error (Unix.error_message err))

let probe ?secret addr =
  with_conn addr (fun conn ->
      let r = shake ?secret conn ~fingerprint:"" in
      Transport.close conn;
      r)

(* [patience] caps both the connect and handshake timeouts: the engine
   shortens it when re-dialling a host that already failed once, so a
   dead host costs the supervision loop seconds, not two full default
   timeouts on every backoff round. *)
let dispatch ?patience ?secret ~addr ~fingerprint ~program ~spec ~shard_ids
    ~index () =
  let cap dflt =
    match patience with Some p -> Float.min p dflt | None -> dflt
  in
  with_conn ~timeout:(cap !connect_timeout) addr (fun conn ->
      match
        shake conn
          ~timeout:(cap !handshake_timeout)
          ?secret
          ~fingerprint:(Crc32.to_hex fingerprint)
      with
      | Error _ as e ->
          Transport.close conn;
          e
      | Ok _ ->
          Transport.send conn Frame.Job
            (encode_job
               (wire_of_spec spec ~program ~fingerprint ~shard_ids ~index));
          Ok { conn; addr; index; assigned = shard_ids })

(* ------------------------------------------------------------------ *)
(* Worker side: conducting one connection                             *)
(* ------------------------------------------------------------------ *)

(* The net flavours of the crash-injection vocabulary (see
   {!Worker.torture_var}): same modes, but [Torn] streams a CRC-invalid
   record line instead of tearing a local segment file — the wire
   equivalent of a mid-append crash. *)
let net_die (torture : Worker.torture option) conn ~index ~completed =
  match torture with
  | Some t
    when t.Worker.mode <> Worker.Poison
         && (t.Worker.only = None || t.Worker.only = Some index)
         && completed = t.Worker.after -> (
      match t.Worker.mode with
      | Worker.Poison -> ()
      | Worker.Exit -> exit 7
      | Worker.Raise -> failwith "torture: injected remote-worker fault"
      | Worker.Sigkill -> Unix.kill (Unix.getpid ()) Sys.sigkill
      | Worker.Torn ->
          Transport.send conn Frame.Seg "deadbeef torn-rec";
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | Worker.Hang ->
          while true do
            Unix.sleep 3600
          done
      | Worker.Stall ->
          while true do
            Transport.send conn Frame.Door "h";
            Unix.sleepf 0.02
          done)
  | Some _ | None -> ()

let net_poison (torture : Worker.torture option) ~index ~shard_id =
  match torture with
  | Some { Worker.mode = Worker.Poison; after; only }
    when (only = None || only = Some index) && shard_id = after ->
      Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some _ | None -> ()

let conduct conn (job : wire_job) =
  let spec = spec_of_wire job in
  let cell = Runcell.analyse spec in
  let classes = cell.Runcell.classes in
  let plan = Runcell.plan_of_policy spec.Spec.policy classes in
  let fp = Runcell.fingerprint_cell cell ~plan in
  if fp <> job.fingerprint then
    failwith
      (Printf.sprintf
         "re-analysed cell fingerprint %s disagrees with the conductor's %s \
          (mismatched build or nondeterministic analysis?)"
         (Crc32.to_hex fp)
         (Crc32.to_hex job.fingerprint));
  let shards_total = Array.length plan.Shard.shards in
  Array.iter
    (fun id ->
      if id < 0 || id >= shards_total then
        failwith (Printf.sprintf "shard id %d out of range" id))
    job.shard_ids;
  let torture = Worker.parse_torture (Sys.getenv_opt Worker.torture_var) in
  Transport.send conn Frame.Seg
    (Journal.encode_line
       (Worker.segment_header ~fingerprint:fp ~pid:(Unix.getpid ())));
  let last_beat = ref 0. in
  let heartbeat ~class_index:_ _ =
    let now = Unix.gettimeofday () in
    if now -. !last_beat >= 0.01 then begin
      last_beat := now;
      Transport.send conn Frame.Door "h"
    end
  in
  Array.iteri
    (fun completed id ->
      net_die torture conn ~index:job.index ~completed;
      net_poison torture ~index:job.index ~shard_id:id;
      let shard = plan.Shard.shards.(id) in
      let buf =
        Runcell.conduct_shard ~on_class:heartbeat cell ~classes ~plan shard
      in
      Transport.send conn Frame.Seg
        (Journal.encode_line (Runcell.record_payload shard buf));
      Transport.send conn Frame.Door (Printf.sprintf "s %d" id))
    job.shard_ids;
  net_die torture conn ~index:job.index
    ~completed:(Array.length job.shard_ids);
  Transport.send conn Frame.Door "end"

let serve_connection ~capacity ?secret conn =
  match Transport.recv ~timeout:!handshake_timeout conn with
  | None -> () (* connected, said nothing, left — a port scan *)
  | Some (Frame.Hello, payload) -> (
      let mine = Handshake.hello ~capacity ?secret () in
      (match Handshake.decode payload with
      | None -> failwith "malformed hello"
      | Some theirs -> (
          match Handshake.check ?secret ~mine ~theirs () with
          | Ok () -> ()
          | Error msg ->
              Transport.send conn Frame.Err msg;
              failwith msg));
      Transport.send conn Frame.Hello (Handshake.encode mine);
      match Transport.recv ~timeout:!handshake_timeout conn with
      | None -> () (* a probe: hello exchange only *)
      | Some (Frame.Job, payload) -> (
          match decode_job payload with
          | None -> failwith "undecodable job payload"
          | Some job -> conduct conn job)
      | Some (kind, _) ->
          failwith
            (Printf.sprintf "expected a job frame, got %s"
               (Frame.kind_tag kind)))
  | Some (kind, _) ->
      failwith
        (Printf.sprintf "expected a hello frame, got %s" (Frame.kind_tag kind))

(* ------------------------------------------------------------------ *)
(* The daemon                                                         *)
(* ------------------------------------------------------------------ *)

let announce_line addr ~workers =
  Printf.sprintf "fi-net listening %s workers=%d digest=%s"
    (Addr.to_string addr) workers
    (Handshake.self_digest ())

let parse_announce line =
  match String.split_on_char ' ' line with
  | "fi-net" :: "listening" :: addr :: _ -> (
      match Addr.parse addr with Ok a -> Some a | Error _ -> None)
  | _ -> None

let serve ~listen ~workers ?secret ?(announce = fun _ -> ()) () =
  if workers < 1 then
    invalid_arg (Printf.sprintf "Remote.serve: workers %d" workers);
  match Transport.listen listen with
  | Error msg -> failwith msg
  | Ok (lfd, addr) ->
      ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
      announce (announce_line addr ~workers);
      let live = ref 0 in
      (* Non-blocking: drain every already-exited child.  Blocking:
         return after reaping ONE child — a single freed seat must
         unblock accept immediately (the caller's [while !live >=
         workers] re-checks), not wait for the whole wave to finish. *)
      let reap ~block =
        let flags = if block then [] else [ Unix.WNOHANG ] in
        let continue = ref (!live > 0) in
        while !continue do
          match Unix.waitpid flags (-1) with
          | 0, _ -> continue := false
          | _ ->
              decr live;
              if block || !live = 0 then continue := false
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              live := 0;
              continue := false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done
      in
      while true do
        reap ~block:false;
        while !live >= workers do
          reap ~block:true
        done;
        let conn = Transport.accept lfd in
        match Unix.fork () with
        | 0 ->
            Sysio.close_quietly lfd;
            (try
               serve_connection ~capacity:workers ?secret conn;
               Transport.close conn;
               exit 0
             with exn ->
               (try
                  Transport.send conn Frame.Err (Printexc.to_string exn);
                  Transport.close conn
                with _ -> ());
               Printf.eprintf "fi-net worker (pid %d): %s\n%!"
                 (Unix.getpid ()) (Printexc.to_string exn);
               exit 3)
        | _pid ->
            incr live;
            (* Close the parent's copy only — no shutdown, the child owns
               the connection. *)
            Sysio.close_quietly (Transport.fd conn)
      done

(* ------------------------------------------------------------------ *)
(* Re-exec entry point (tests, bench, and `fi-cli worker serve`)       *)
(* ------------------------------------------------------------------ *)

let guard () =
  match Sys.getenv_opt serve_var with
  | None | Some "" -> ()
  | Some value ->
      (try
         let bad () = failwith (Printf.sprintf "bad %s value %S" serve_var value) in
         let addr, workers, secret_file =
           match String.split_on_char ';' value with
           | [ addr; workers ] -> (addr, workers, None)
           | [ addr; workers; secret ] -> (addr, workers, Some secret)
           | _ -> bad ()
         in
         let secret =
           match secret_file with
           | None -> None
           | Some file -> (
               match Hmac.load_secret file with
               | Ok s -> Some s
               | Error msg -> failwith msg)
         in
         (match (Addr.parse addr, int_of_string_opt workers) with
         | Ok listen, Some workers ->
             (* Lead a fresh process group so killing the daemon
                (group) also takes down its conducting children. *)
             (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
             serve ~listen ~workers ?secret
               ~announce:(fun line ->
                 print_endline line;
                 flush stdout)
               ()
         | _ -> bad ());
         exit 0
       with exn ->
         Printf.eprintf "fi-net daemon (pid %d): %s\n%!" (Unix.getpid ())
           (Printexc.to_string exn);
         exit 3)

let spawn_daemon ?(listen = { Addr.host = "127.0.0.1"; port = 0 }) ~workers
    ?secret_file () =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let value =
    match secret_file with
    | None -> Printf.sprintf "%s;%d" (Addr.to_string listen) workers
    | Some file ->
        Printf.sprintf "%s;%d;%s" (Addr.to_string listen) workers file
  in
  let env =
    Array.append (Unix.environment ())
      [| Printf.sprintf "%s=%s" serve_var value |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  (* The hosting binary may print unrelated lines before [guard] runs
     (module initialisers — test registration, banners).  Skip until the
     announce line, within reason.  Leave the channel open afterwards:
     closing it would close the pipe and could SIGPIPE a chatty daemon;
     the descriptor dies with us. *)
  let rec await budget last =
    if budget = 0 then
      Error (Printf.sprintf "daemon announced %S instead of an address" last)
    else
      match input_line ic with
      | line -> (
          match parse_announce line with
          | Some addr -> Ok (pid, addr)
          | None -> await (budget - 1) line)
      | exception End_of_file ->
          ignore (Unix.waitpid [] pid);
          Error "daemon exited before announcing its address"
  in
  await 64 "<nothing>"

let kill_daemon pid =
  (try Unix.kill (-pid) Sys.sigkill
   with Unix.Unix_error _ -> (
     try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()));
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
