(** The cell conductor shared by the engine's backends.

    A {!cell} is a {!Spec.t} resolved to everything a conductor needs:
    the golden run, the fault-space partition, its RAM footprint and the
    per-experiment conductor of its space.  Both execution backends use
    this module — the {!Pool.Domains} scheduler inside {!Engine}, and the
    fork/exec'd worker processes of {!Worker} — so the campaign identity
    (fingerprints) and the journal wire format (header and shard-record
    payloads) are defined here exactly once. *)

exception Journal_mismatch of string
(** Re-exported as {!Engine.Journal_mismatch}. *)

val mismatch : ('a, unit, string, 'b) format4 -> 'a
(** [mismatch fmt ...] raises {!Journal_mismatch} with the formatted
    message. *)

type cell = {
  spec : Spec.t;
  golden : Golden.t;
  classes : Defuse.byte_class array;
      (** The fault model's experiment classes ([Faultspace.cell]'s),
          [t_end]-sorted. *)
  benign_weight : int;
      (** A-priori-benign fault-space weight of the model. *)
  ram_bytes : int;  (** Real, pseudo or synthetic row footprint. *)
  provider : unit -> Injector.provider;
      (** The session provider every conductor of this cell draws from —
          an [Injector.plan] at the policy's
          [acceleration.checkpoint_stride].  Deferred and memoised
          (domain-safely), so a parent process that only
          analyses/schedules never builds the checkpoint ladder; the
          first conducting caller builds it exactly once. *)
  conduct : Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t;
}

val analyse : Spec.t -> cell
(** Resolve a spec through its fault model ({!Faultspace.analyse} /
    {!Faultspace.of_golden} / {!Faultspace.of_regspace}), running the
    golden (and, for register cells, the register-trace) analysis if the
    source is a build thunk.
    @raise Invalid_argument if the spec's model contradicts its analysed
    source. *)

val fingerprint_of :
  tag:string ->
  name:string ->
  cycles:int ->
  ram_bytes:int ->
  classes:Defuse.byte_class array ->
  plan:Shard.plan ->
  int
(** CRC-32 campaign identity over the fault-model tag
    ({!Faultspace.tag}), program name, golden runtime, row footprint,
    shard geometry/sizing and full class list.  The legacy models keep
    their pre-subsystem tags, so their fingerprints are byte-identical
    to before. *)

val fingerprint_cell : cell -> plan:Shard.plan -> int

val plan_of_policy : Spec.policy -> Defuse.byte_class array -> Shard.plan
(** The shard plan a policy prescribes for a class list — the single
    place shard geometry is derived from a policy, shared by parent and
    worker processes so both always agree on shard ids. *)

val header_payload : cell -> plan:Shard.plan -> fp:int -> string
(** The campaign journal's header record. *)

val record_payload : Shard.t -> Bytes.t -> string
(** One journal record: [shard=<id> outcomes=<8×classes chars>]. *)

val parse_record : Shard.plan -> string -> (Shard.t * string) option
(** Parse a {!record_payload} back against [plan]; [None] on any
    malformation (bad id, wrong outcome-string length). *)

val header_shard_count : string -> int option
(** The [shards=N] token of a {!header_payload} ([None] for anything
    else, e.g. a worker segment header). *)

val header_model_tag : string -> string option
(** The [space=<tag>] token of a {!header_payload} — the fault model the
    journal was written under ([None] for non-engine headers).  Lets the
    CLI refuse a [--fault-model] that disagrees with an existing journal
    instead of silently truncating it. *)

val journal_model_tag : string -> string option
(** {!header_model_tag} of the journal at a path ([None] when the file
    is missing, unreadable or headerless). *)

type supervision =
  | Retry of { shard : int; attempt : int; cause : string }
      (** Shard [shard]'s worker died ([cause]); the supervisor
          re-dispatched it as attempt [attempt] (1-based). *)
  | Quarantine of { shard : int; attempts : int; cause : string }
      (** Shard [shard] exhausted its retry budget after [attempts]
          worker deaths and was isolated. *)

val supervision_payload : supervision -> string
(** The journal payload of a supervision event ([sup retry ...] /
    [sup quarantine ...]); [cause] is newline-sanitized.  Shares the
    campaign journal with shard records, so retry accounting and
    [--resume] compose: a resumed campaign restores each shard's burned
    attempt count before conducting anything. *)

val parse_supervision : string -> supervision option
(** Parse a {!supervision_payload} ([None] for any other payload). *)

val journal_finished : string -> bool
(** Whether [path] is a {e finished} campaign journal: replays [Clean]
    with an engine header, and every plan shard id has a record.  This
    is journal compaction's gate — only such journals may be folded
    into the CSV store and pruned.  Torn, corrupt, quarantine-degraded
    or foreign files are all [false]. *)

val conduct_shard :
  ?on_class:(class_index:int -> string -> unit) ->
  cell ->
  classes:Defuse.byte_class array ->
  plan:Shard.plan ->
  Shard.t ->
  Bytes.t
(** Conduct every experiment of one shard on a fresh session from the
    cell's provider (valid because injection cycles are non-decreasing
    within a shard) and return the packed outcome characters.
    [on_class] is called once per completed class with its index and its
    8 outcome characters — the hook the in-process backend uses for live
    tallies/progress. *)
