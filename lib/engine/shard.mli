(** Sharding a campaign's experiment classes into cycle-contiguous work
    units.

    A pruned campaign conducts one experiment per (experiment-class, bit)
    — whether the classes partition main memory (def/use pruning of
    {!Golden.t}) or the register file's pseudo-memory ({!Regspace.t}).
    The fast {!Injector.Checkpoint} strategy requires injection cycles to
    be non-decreasing {e within one session}, so the class list is first
    ranked by canonical injection cycle ([t_end]) — exactly as the serial
    conductors do — and then cut into contiguous rank intervals
    ({e shards}).  Each shard satisfies the monotonicity invariant on its
    own and can therefore run on its own checkpoint session, on any
    worker, in any order.

    The plan is a pure function of the class list, the shard size and the
    sizing policy — never of the worker count — so one journal written at
    [-j 8] can be resumed at [-j 1] and vice versa.  The sizing policy is
    part of the plan (and of the engine's journal fingerprint): two plans
    over the same classes with different policies are different
    campaigns. *)

type sizing =
  | By_count  (** Cut every [shard_size] classes (the default). *)
  | By_weight
      (** Cut by estimated conducted cycles ([t_end]-weighted), targeting
          the shard count the count-based policy would produce.  Evens
          out tail latency on campaigns whose injection cycles span
          orders of magnitude. *)

val sizing_tag : sizing -> string
(** ["count"] / ["weight"] — the tag recorded in journal headers. *)

type t = {
  id : int;  (** Dense shard index, [0 .. shards-1]. *)
  lo : int;  (** First rank (inclusive) in the t_end-sorted order. *)
  hi : int;  (** Last rank (exclusive). *)
}

type plan = {
  order : int array;
      (** [order.(rank)] is the experiment-class index (into the class
          array given to {!plan}) of the class with the [rank]-th
          smallest injection cycle. *)
  shards : t array;  (** Contiguous, in rank order, covering all ranks. *)
  shard_size : int;
      (** Nominal classes per shard.  Under [By_count] every shard except
          the last has exactly this many classes; under [By_weight] it
          only determines the target shard count. *)
  sizing : sizing;
  classes_total : int;
}

val classes_in : t -> int
(** Number of experiment classes in a shard ([hi - lo]). *)

val default_shard_size : classes:int -> int
(** Granularity heuristic: about 128 shards, at least 1 class each —
    fine-grained enough to balance any realistic worker count, coarse
    enough that per-shard session and journal overhead stay negligible. *)

val plan : ?shard_size:int -> ?weighted:bool -> Defuse.byte_class array -> plan
(** Rank the given experiment classes by [t_end] and cut them into
    shards — of [shard_size] classes each by default, or by estimated
    conducted cycles with [~weighted:true] ({!By_weight}).

    @raise Invalid_argument if [shard_size < 1]. *)
