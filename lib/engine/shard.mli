(** Sharding a pruned campaign into cycle-contiguous work units.

    A pruned campaign conducts one experiment per (experiment-class, bit).
    The fast {!Injector.Checkpoint} strategy requires injection cycles to
    be non-decreasing {e within one session}, so the class list is first
    ranked by canonical injection cycle ([t_end]) — exactly as the serial
    {!Scan.pruned} does — and then cut into contiguous rank intervals
    ({e shards}).  Each shard satisfies the monotonicity invariant on its
    own and can therefore run on its own checkpoint session, on any
    worker, in any order.

    The plan is a pure function of the def/use partition and the shard
    size — never of the worker count — so one journal written at [-j 8]
    can be resumed at [-j 1] and vice versa. *)

type t = {
  id : int;  (** Dense shard index, [0 .. shards-1]. *)
  lo : int;  (** First rank (inclusive) in the t_end-sorted order. *)
  hi : int;  (** Last rank (exclusive). *)
}

type plan = {
  order : int array;
      (** [order.(rank)] is the experiment-class index (into
          {!Defuse.experiment_classes}) of the class with the
          [rank]-th smallest injection cycle. *)
  shards : t array;  (** Contiguous, in rank order, covering all ranks. *)
  shard_size : int;  (** Classes per shard (the last may be smaller). *)
  classes_total : int;
}

val classes_in : t -> int
(** Number of experiment classes in a shard ([hi - lo]). *)

val default_shard_size : classes:int -> int
(** Granularity heuristic: about 128 shards, at least 1 class each —
    fine-grained enough to balance any realistic worker count, coarse
    enough that per-shard session and journal overhead stay negligible. *)

val plan : ?shard_size:int -> Defuse.t -> plan
(** Rank the experiment classes of a def/use partition by [t_end] and cut
    them into shards of [shard_size] classes.

    @raise Invalid_argument if [shard_size < 1]. *)
