(** First-class campaign specifications.

    A [Spec.t] names everything the campaign engine needs to conduct one
    {e cell} of an experiment matrix:

    - a {b fault model} — a pluggable {!Faultspace.model} value: the
      def/use-pruned memory bitflips of the paper ({!Faultspace.Bitflip_mem}),
      the register-file space of Section VI-B ({!Faultspace.Bitflip_reg}),
      multi-bit bursts ({!Faultspace.Burst}) or instruction skip
      ({!Faultspace.Skip});
    - a {b program cell} — benchmark name, variant name, and either a
      build thunk (compiled and analysed lazily by the engine) or an
      already-analysed {!Golden.t} / {!Regspace.t};
    - an {b execution policy} — four orthogonal concern groups:
      {!sharding} (shard geometry and sizing — the only group that is
      part of the campaign fingerprint), {!durability} (journal, resume,
      catalogue), {!supervision} (timeouts, retries, quarantine) and
      {!acceleration} (result cache, checkpoint stride) — pure
      throughput/robustness knobs that never shape outcomes.

    Specs are plain values: build one per matrix cell (see
    [Suite.spec_matrix] / [Suite.paper_specs]) and hand the whole list to
    [Engine.run_matrix], which schedules every cell's shards over one
    shared worker pool. *)

type source =
  | Build of (unit -> Program.t)
      (** Compile on demand; the engine runs the model's analysis
          itself. *)
  | Analysed_memory of Golden.t
      (** Pre-analysed golden run, for the memory-indexed models
          ({!Faultspace.Bitflip_mem}, {!Faultspace.Burst},
          {!Faultspace.Skip}). *)
  | Analysed_registers of Regspace.t
      (** Pre-analysed register-space cell
          ({!Faultspace.Bitflip_reg}). *)

type sharding = {
  shard_size : int option;  (** Classes per shard; [None] = default. *)
  weighted : bool;
      (** Size shards by estimated conducted cycles ([Shard.By_weight])
          instead of class count.  Part of the campaign fingerprint. *)
}

type durability = {
  journal : string option;  (** Explicit journal path. *)
  resume : bool;
      (** Recover completed shards from the journal (found at [journal],
          or looked up by fingerprint in the [catalogue]). *)
  catalogue : string option;
      (** Journal-catalogue directory.  When set and [journal] is
          [None], the engine journals to a fingerprint-derived path under
          this directory and records [fingerprint → path] in
          [<dir>/journals.idx] on close, so a later [resume] needs no
          explicit path. *)
}

type supervision = {
  shard_timeout : float option;
      (** Supervision deadline, in seconds, for one worker to make shard
          progress.  [None] derives a deadline from the observed shard
          rate once enough shards have completed (and imposes none
          before that).  A worker that blows the deadline is declared
          hung, SIGKILLed, and its unfinished shards retried.  Not part
          of the campaign fingerprint. *)
  max_retries : int;
      (** Retry budget {e per shard}: how many times a shard whose
          worker died (crash, hang, stall) is re-dispatched to a fresh
          worker before it is given up — quarantined if [quarantine],
          failed otherwise.  [0] disables automatic retry (the seed
          behaviour: a dead worker surfaces as [Engine.Worker_failed]
          and recovery is a manual [--resume]). *)
  quarantine : bool;
      (** Isolate a shard that exhausts [max_retries] instead of failing
          the cell: the campaign completes, the shard's classes stay
          unconducted, and the engine reports it in
          [Engine.result.quarantined].  With [quarantine = false] an
          exhausted shard raises [Engine.Worker_failed] as before. *)
  retry_backoff : float;
      (** Base, in seconds, of the exponential backoff before a shard's
          [n]-th retry dispatch: [retry_backoff *. 2. ** (n - 1)]. *)
}

type acceleration = {
  cache : string option;
      (** Result-cache directory ({!Cache}).  When set, the engine
          consults the content-addressed store before scheduling any
          shards — a hit replays the cached journal to bit-identical
          results with zero shard executions — and publishes this
          cell's journal on clean completion.  [None] disables both
          directions.  Not part of the campaign fingerprint. *)
  checkpoint_stride : int option;
      (** Checkpoint ladder stride, in cycles, for the snapshot-
          accelerated injection hot path ([Injector.plan]).  [None] uses
          [Injector.default_stride]; [Some n] with [n <= 0] disables the
          ladder entirely (restart-from-reset [Injector.replay]
          semantics).  A pure performance knob: outcomes are
          bit-identical at every stride, so it is deliberately excluded
          from campaign fingerprints and result-cache keys. *)
}

type policy = {
  sharding : sharding;
  durability : durability;
  supervision : supervision;
  acceleration : acceleration;
}

val default_sharding : sharding
val default_durability : durability
val default_supervision : supervision
val default_acceleration : acceleration

val default_policy : policy
(** No journal, no catalogue, no resume, count-sized default shards, no
    supervision ([shard_timeout = None], [max_retries = 0],
    [quarantine = false], [retry_backoff = 0.05]), no result cache, and
    the default checkpoint stride — outcome-wise, the seed engine's
    exact behaviour. *)

val make_policy :
  ?shard_size:int ->
  ?weighted:bool ->
  ?journal:string ->
  ?resume:bool ->
  ?catalogue:string ->
  ?shard_timeout:float ->
  ?max_retries:int ->
  ?quarantine:bool ->
  ?retry_backoff:float ->
  ?cache:string ->
  ?checkpoint_stride:int ->
  unit ->
  policy
(** Smart constructor over the flat leaf fields — every omitted label
    takes its {!default_policy} value, so call sites need not know the
    grouping.  [make_policy ()] = {!default_policy}. *)

val supervised : policy -> bool
(** Whether any supervision feature is on: an explicit [shard_timeout],
    a nonzero [max_retries], or [quarantine]. *)

type t = {
  benchmark : string;  (** e.g. ["bin_sem2"]. *)
  variant : string;  (** e.g. ["baseline"] or ["sum+dmr"]. *)
  model : Faultspace.model;
  source : source;  (** Must agree with [model] (constructors do). *)
  limit : int option;  (** Golden-run watchdog for [Build] sources. *)
  policy : policy;
}

val label : t -> string
(** ["bench/variant"] for {!Faultspace.Bitflip_mem}, with
    ["@registers"] appended for register cells and ["@<tag>"] for every
    other model — so each model gets its own per-cell journal under a
    matrix journal stem. *)

val build :
  ?variant:string ->
  ?limit:int ->
  ?policy:policy ->
  model:Faultspace.model ->
  benchmark:string ->
  (unit -> Program.t) ->
  t
(** Cell of an arbitrary fault model from a build thunk (default
    variant ["baseline"]). *)

val memory :
  ?variant:string ->
  ?limit:int ->
  ?policy:policy ->
  benchmark:string ->
  (unit -> Program.t) ->
  t
(** [build ~model:Faultspace.Bitflip_mem]. *)

val registers :
  ?variant:string ->
  ?limit:int ->
  ?policy:policy ->
  benchmark:string ->
  (unit -> Program.t) ->
  t
(** [build ~model:Faultspace.Bitflip_reg].  The default variant is
    ["baseline"], like every other constructor: the register-ness is the
    {e model}'s business and shows up in {!label}'s ["@registers"]
    suffix — callers pass the actual hardening variant so matrix
    reports never mislabel register cells. *)

val of_golden :
  ?variant:string -> ?policy:policy -> ?model:Faultspace.model -> Golden.t -> t
(** Cell from an existing golden run; [benchmark] is the program name.
    [model] (default {!Faultspace.Bitflip_mem}) may be any
    memory-indexed model.
    @raise Invalid_argument for {!Faultspace.Bitflip_reg} — a register
    cell needs the register analysis, use {!of_regspace}. *)

val of_regspace : ?variant:string -> ?policy:policy -> Regspace.t -> t
(** Register-space cell from an existing register analysis.  The
    default variant is ["baseline"] — pass the actual hardening variant
    (the analysis itself cannot know it). *)

val with_policy : policy -> t -> t
