exception Journal_mismatch of string

let mismatch fmt = Printf.ksprintf (fun s -> raise (Journal_mismatch s)) fmt

(* ------------------------------------------------------------------ *)
(* Analysed cells                                                     *)
(* ------------------------------------------------------------------ *)

(* A spec resolved to everything a conductor needs: the session base
   (golden run), the fault-space partition, and the per-experiment
   conductor of its space. *)
type cell = {
  spec : Spec.t;
  golden : Golden.t;
  defuse : Defuse.t;
  ram_bytes : int;
  provider : unit -> Injector.provider;
  conduct : Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t;
}

(* Deferred so that a parent process which only analyses (journals,
   shards, dispatches) never pays for the checkpoint ladder — only a
   process that actually conducts experiments builds it, exactly once.
   A mutex-guarded once-cell rather than [Lazy.t]: the domains backend
   forces it from several domains at once, which [Lazy] forbids. *)
let provider_of_policy (policy : Spec.policy) golden =
  let lock = Mutex.create () in
  let built = ref None in
  fun () ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match !built with
        | Some p -> p
        | None ->
            let p =
              match policy.Spec.acceleration.Spec.checkpoint_stride with
              | Some stride -> Injector.plan ~stride golden
              | None -> Injector.plan golden
            in
            built := Some p;
            p)

let memory_cell spec golden =
  {
    spec;
    golden;
    defuse = golden.Golden.defuse;
    ram_bytes = golden.Golden.program.Program.ram_size;
    provider = provider_of_policy spec.Spec.policy golden;
    conduct = Scan.conduct_class;
  }

let register_cell spec (r : Regspace.t) =
  {
    spec;
    golden = r.Regspace.golden;
    defuse = r.Regspace.reg_defuse;
    ram_bytes = Regspace.pseudo_ram_bytes;
    provider = provider_of_policy spec.Spec.policy r.Regspace.golden;
    conduct = Regspace.conduct;
  }

let analyse (spec : Spec.t) =
  match (spec.Spec.space, spec.Spec.source) with
  | Spec.Memory, Spec.Analysed_memory golden -> memory_cell spec golden
  | Spec.Memory, Spec.Build build ->
      memory_cell spec (Golden.run ?limit:spec.Spec.limit (build ()))
  | Spec.Registers, Spec.Analysed_registers r -> register_cell spec r
  | Spec.Registers, Spec.Build build ->
      register_cell spec (Regspace.analyze ?limit:spec.Spec.limit (build ()))
  | Spec.Memory, Spec.Analysed_registers _
  | Spec.Registers, Spec.Analysed_memory _ ->
      invalid_arg "Engine: spec space contradicts its analysed source"

(* ------------------------------------------------------------------ *)
(* Campaign identity and journal payloads                             *)
(* ------------------------------------------------------------------ *)

let fingerprint_of ~space ~name ~cycles ~ram_bytes
    ~(classes : Defuse.byte_class array) ~(plan : Shard.plan) =
  let buf = Buffer.create (64 + (Array.length classes * 12)) in
  Buffer.add_string buf (Spec.space_tag space);
  Buffer.add_char buf '|';
  Buffer.add_string buf name;
  Buffer.add_string buf
    (Printf.sprintf "|%d|%d|%d|%s|" cycles ram_bytes plan.Shard.shard_size
       (Shard.sizing_tag plan.Shard.sizing));
  Array.iter
    (fun (c : Defuse.byte_class) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d;" c.Defuse.byte c.Defuse.t_start
           c.Defuse.t_end))
    classes;
  Crc32.string (Buffer.contents buf)

let fingerprint_cell cell ~plan =
  fingerprint_of ~space:cell.spec.Spec.space
    ~name:cell.golden.Golden.program.Program.name ~cycles:cell.golden.Golden.cycles
    ~ram_bytes:cell.ram_bytes
    ~classes:(Defuse.experiment_classes cell.defuse)
    ~plan

let plan_of_policy (policy : Spec.policy) classes =
  Shard.plan
    ?shard_size:policy.Spec.sharding.Spec.shard_size
    ~weighted:policy.Spec.sharding.Spec.weighted classes

let header_payload cell ~(plan : Shard.plan) ~fp =
  Printf.sprintf
    "fi-engine v2 space=%s sizing=%s cycles=%d ram_bytes=%d classes=%d \
     shard_size=%d shards=%d fingerprint=%s name=%s"
    (Spec.space_tag cell.spec.Spec.space)
    (Shard.sizing_tag plan.Shard.sizing)
    cell.golden.Golden.cycles cell.ram_bytes plan.Shard.classes_total
    plan.Shard.shard_size
    (Array.length plan.Shard.shards)
    (Crc32.to_hex fp) cell.golden.Golden.program.Program.name

let key_int key tok =
  let p = key ^ "=" in
  let plen = String.length p in
  if String.length tok > plen && String.sub tok 0 plen = p then
    int_of_string_opt (String.sub tok plen (String.length tok - plen))
  else None

let header_shard_count header =
  (* "... shards=N ..." somewhere in a v2 header payload. *)
  List.find_map (key_int "shards") (String.split_on_char ' ' header)

let record_payload (shard : Shard.t) outcomes_buf =
  Printf.sprintf "shard=%d outcomes=%s" shard.Shard.id
    (Bytes.to_string outcomes_buf)

let parse_record (plan : Shard.plan) payload =
  match String.index_opt payload ' ' with
  | Some sp when String.length payload > 15 && String.sub payload 0 6 = "shard=" -> (
      let id = int_of_string_opt (String.sub payload 6 (sp - 6)) in
      let rest = String.sub payload (sp + 1) (String.length payload - sp - 1) in
      if String.length rest < 9 || String.sub rest 0 9 <> "outcomes=" then None
      else
        let outs = String.sub rest 9 (String.length rest - 9) in
        match id with
        | Some id when id >= 0 && id < Array.length plan.Shard.shards ->
            let shard = plan.Shard.shards.(id) in
            if String.length outs <> 8 * Shard.classes_in shard then None
            else Some (shard, outs)
        | Some _ | None -> None)
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Supervision records                                                *)
(* ------------------------------------------------------------------ *)

(* Supervision events share the campaign journal with shard records:
   [sup retry ...] / [sup quarantine ...] lines, so a resumed campaign
   knows how many retries a shard has already burned and which shards
   were given up.  The free-form [cause] comes last so it may contain
   spaces; newlines are sanitized away (the journal forbids them). *)

type supervision =
  | Retry of { shard : int; attempt : int; cause : string }
  | Quarantine of { shard : int; attempts : int; cause : string }

let sanitize_cause s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let supervision_payload = function
  | Retry { shard; attempt; cause } ->
      Printf.sprintf "sup retry shard=%d attempt=%d cause=%s" shard attempt
        (sanitize_cause cause)
  | Quarantine { shard; attempts; cause } ->
      Printf.sprintf "sup quarantine shard=%d attempts=%d cause=%s" shard
        attempts (sanitize_cause cause)

let parse_supervision payload =
  let marker = " cause=" in
  let mlen = String.length marker in
  let n = String.length payload in
  let rec find i =
    if i + mlen > n then None
    else if String.sub payload i mlen = marker then
      Some (String.sub payload 0 i, String.sub payload (i + mlen) (n - i - mlen))
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some (head, cause) -> (
      match String.split_on_char ' ' head with
      | [ "sup"; "retry"; sh; at ] -> (
          match (key_int "shard" sh, key_int "attempt" at) with
          | Some shard, Some attempt -> Some (Retry { shard; attempt; cause })
          | _ -> None)
      | [ "sup"; "quarantine"; sh; at ] -> (
          match (key_int "shard" sh, key_int "attempts" at) with
          | Some shard, Some attempts ->
              Some (Quarantine { shard; attempts; cause })
          | _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Journal completion (compaction's gate)                             *)
(* ------------------------------------------------------------------ *)

let journal_finished path =
  match Journal.replay path with
  | Some (header, records, Journal.Clean) -> (
      match header_shard_count header with
      | None -> false (* not an engine campaign header *)
      | Some total ->
          let seen = Array.make (max 1 total) false in
          List.iter
            (fun payload ->
              if String.length payload > 6 && String.sub payload 0 6 = "shard="
              then
                match String.index_opt payload ' ' with
                | Some sp -> (
                    match int_of_string_opt (String.sub payload 6 (sp - 6)) with
                    | Some id when id >= 0 && id < total -> seen.(id) <- true
                    | Some _ | None -> ())
                | None -> ())
            records;
          total = 0 || Array.for_all Fun.id seen)
  | Some (_, _, (Journal.Torn_tail _ | Journal.Corrupt_record _)) | None ->
      false

(* ------------------------------------------------------------------ *)
(* The single-shard conductor                                         *)
(* ------------------------------------------------------------------ *)

let conduct_shard ?(on_class = fun ~class_index:_ _ -> ()) cell
    ~(classes : Defuse.byte_class array) ~(plan : Shard.plan)
    (shard : Shard.t) =
  let session = Injector.session (cell.provider ()) in
  let n = Shard.classes_in shard in
  let buf = Bytes.create (8 * n) in
  for k = 0 to n - 1 do
    let class_index = plan.Shard.order.(shard.Shard.lo + k) in
    let c = classes.(class_index) in
    for bit_in_byte = 0 to 7 do
      let o = cell.conduct session c ~bit_in_byte in
      Bytes.set buf ((8 * k) + bit_in_byte) (Outcome.to_char o)
    done;
    on_class ~class_index (Bytes.sub_string buf (8 * k) 8)
  done;
  buf
