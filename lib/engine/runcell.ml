exception Journal_mismatch of string

let mismatch fmt = Printf.ksprintf (fun s -> raise (Journal_mismatch s)) fmt

(* ------------------------------------------------------------------ *)
(* Analysed cells                                                     *)
(* ------------------------------------------------------------------ *)

(* A spec resolved to everything a conductor needs: the session base
   (golden run), the fault model's class partition, and the
   per-experiment conductor of its space. *)
type cell = {
  spec : Spec.t;
  golden : Golden.t;
  classes : Defuse.byte_class array;
  benign_weight : int;
  ram_bytes : int;
  provider : unit -> Injector.provider;
  conduct : Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t;
}

(* Deferred so that a parent process which only analyses (journals,
   shards, dispatches) never pays for the checkpoint ladder — only a
   process that actually conducts experiments builds it, exactly once.
   A mutex-guarded once-cell rather than [Lazy.t]: the domains backend
   forces it from several domains at once, which [Lazy] forbids. *)
let provider_of_policy (policy : Spec.policy) golden =
  let lock = Mutex.create () in
  let built = ref None in
  fun () ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match !built with
        | Some p -> p
        | None ->
            let p =
              match policy.Spec.acceleration.Spec.checkpoint_stride with
              | Some stride -> Injector.plan ~stride golden
              | None -> Injector.plan golden
            in
            built := Some p;
            p)

let cell_of spec (fc : Faultspace.cell) =
  {
    spec;
    golden = fc.Faultspace.golden;
    classes = fc.Faultspace.classes;
    benign_weight = fc.Faultspace.benign_weight;
    ram_bytes = fc.Faultspace.ram_bytes;
    provider = provider_of_policy spec.Spec.policy fc.Faultspace.golden;
    conduct = fc.Faultspace.conduct;
  }

let analyse (spec : Spec.t) =
  let model = spec.Spec.model in
  match (model, spec.Spec.source) with
  | Faultspace.Bitflip_reg, Spec.Analysed_registers r ->
      cell_of spec (Faultspace.of_regspace r)
  | (Faultspace.Bitflip_mem | Faultspace.Burst _ | Faultspace.Skip),
      Spec.Analysed_memory golden ->
      cell_of spec (Faultspace.of_golden model golden)
  | _, Spec.Build build ->
      cell_of spec (Faultspace.analyse ?limit:spec.Spec.limit model (build ()))
  | Faultspace.Bitflip_reg, Spec.Analysed_memory _
  | (Faultspace.Bitflip_mem | Faultspace.Burst _ | Faultspace.Skip),
      Spec.Analysed_registers _ ->
      invalid_arg "Engine: spec fault model contradicts its analysed source"

(* ------------------------------------------------------------------ *)
(* Campaign identity and journal payloads                             *)
(* ------------------------------------------------------------------ *)

(* [tag] is the fault model's [Faultspace.tag].  The legacy models keep
   their pre-subsystem tags ("mem"/"reg"), so every fingerprint — and
   therefore every journal and cache key — they ever produced stays
   byte-identical. *)
let fingerprint_of ~tag ~name ~cycles ~ram_bytes
    ~(classes : Defuse.byte_class array) ~(plan : Shard.plan) =
  let buf = Buffer.create (64 + (Array.length classes * 12)) in
  Buffer.add_string buf tag;
  Buffer.add_char buf '|';
  Buffer.add_string buf name;
  Buffer.add_string buf
    (Printf.sprintf "|%d|%d|%d|%s|" cycles ram_bytes plan.Shard.shard_size
       (Shard.sizing_tag plan.Shard.sizing));
  Array.iter
    (fun (c : Defuse.byte_class) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d;" c.Defuse.byte c.Defuse.t_start
           c.Defuse.t_end))
    classes;
  Crc32.string (Buffer.contents buf)

let fingerprint_cell cell ~plan =
  fingerprint_of
    ~tag:(Faultspace.tag cell.spec.Spec.model)
    ~name:cell.golden.Golden.program.Program.name ~cycles:cell.golden.Golden.cycles
    ~ram_bytes:cell.ram_bytes ~classes:cell.classes ~plan

let plan_of_policy (policy : Spec.policy) classes =
  Shard.plan
    ?shard_size:policy.Spec.sharding.Spec.shard_size
    ~weighted:policy.Spec.sharding.Spec.weighted classes

(* The header's version string is "v2" for the two legacy models —
   keeping their journals byte-identical to pre-subsystem runs — and
   "v3" for every model added by the Faultspace subsystem.  The field
   layout is identical either way; the [space=] value is the model tag. *)
let header_payload cell ~(plan : Shard.plan) ~fp =
  let model = cell.spec.Spec.model in
  Printf.sprintf
    "fi-engine %s space=%s sizing=%s cycles=%d ram_bytes=%d classes=%d \
     shard_size=%d shards=%d fingerprint=%s name=%s"
    (if Faultspace.legacy model then "v2" else "v3")
    (Faultspace.tag model)
    (Shard.sizing_tag plan.Shard.sizing)
    cell.golden.Golden.cycles cell.ram_bytes plan.Shard.classes_total
    plan.Shard.shard_size
    (Array.length plan.Shard.shards)
    (Crc32.to_hex fp) cell.golden.Golden.program.Program.name

let key_int key tok =
  let p = key ^ "=" in
  let plen = String.length p in
  if String.length tok > plen && String.sub tok 0 plen = p then
    int_of_string_opt (String.sub tok plen (String.length tok - plen))
  else None

let header_shard_count header =
  (* "... shards=N ..." somewhere in a v2/v3 header payload. *)
  List.find_map (key_int "shards") (String.split_on_char ' ' header)

let header_model_tag header =
  (* "... space=<tag> ..." of an engine campaign header — [None] for
     anything that is not one (worker segments, foreign files). *)
  if String.length header < 10 || String.sub header 0 10 <> "fi-engine " then
    None
  else
    List.find_map
      (fun tok ->
        if String.length tok > 6 && String.sub tok 0 6 = "space=" then
          Some (String.sub tok 6 (String.length tok - 6))
        else None)
      (String.split_on_char ' ' header)

let journal_model_tag path =
  match Journal.replay path with
  | Some (header, _, _) -> header_model_tag header
  | None -> None

let record_payload (shard : Shard.t) outcomes_buf =
  Printf.sprintf "shard=%d outcomes=%s" shard.Shard.id
    (Bytes.to_string outcomes_buf)

let parse_record (plan : Shard.plan) payload =
  match String.index_opt payload ' ' with
  | Some sp when String.length payload > 15 && String.sub payload 0 6 = "shard=" -> (
      let id = int_of_string_opt (String.sub payload 6 (sp - 6)) in
      let rest = String.sub payload (sp + 1) (String.length payload - sp - 1) in
      if String.length rest < 9 || String.sub rest 0 9 <> "outcomes=" then None
      else
        let outs = String.sub rest 9 (String.length rest - 9) in
        match id with
        | Some id when id >= 0 && id < Array.length plan.Shard.shards ->
            let shard = plan.Shard.shards.(id) in
            if String.length outs <> 8 * Shard.classes_in shard then None
            else Some (shard, outs)
        | Some _ | None -> None)
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Supervision records                                                *)
(* ------------------------------------------------------------------ *)

(* Supervision events share the campaign journal with shard records:
   [sup retry ...] / [sup quarantine ...] lines, so a resumed campaign
   knows how many retries a shard has already burned and which shards
   were given up.  The free-form [cause] comes last so it may contain
   spaces; newlines are sanitized away (the journal forbids them). *)

type supervision =
  | Retry of { shard : int; attempt : int; cause : string }
  | Quarantine of { shard : int; attempts : int; cause : string }

let sanitize_cause s =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let supervision_payload = function
  | Retry { shard; attempt; cause } ->
      Printf.sprintf "sup retry shard=%d attempt=%d cause=%s" shard attempt
        (sanitize_cause cause)
  | Quarantine { shard; attempts; cause } ->
      Printf.sprintf "sup quarantine shard=%d attempts=%d cause=%s" shard
        attempts (sanitize_cause cause)

let parse_supervision payload =
  let marker = " cause=" in
  let mlen = String.length marker in
  let n = String.length payload in
  let rec find i =
    if i + mlen > n then None
    else if String.sub payload i mlen = marker then
      Some (String.sub payload 0 i, String.sub payload (i + mlen) (n - i - mlen))
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some (head, cause) -> (
      match String.split_on_char ' ' head with
      | [ "sup"; "retry"; sh; at ] -> (
          match (key_int "shard" sh, key_int "attempt" at) with
          | Some shard, Some attempt -> Some (Retry { shard; attempt; cause })
          | _ -> None)
      | [ "sup"; "quarantine"; sh; at ] -> (
          match (key_int "shard" sh, key_int "attempts" at) with
          | Some shard, Some attempts ->
              Some (Quarantine { shard; attempts; cause })
          | _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Journal completion (compaction's gate)                             *)
(* ------------------------------------------------------------------ *)

let journal_finished path =
  match Journal.replay path with
  | Some (header, records, Journal.Clean) -> (
      match header_shard_count header with
      | None -> false (* not an engine campaign header *)
      | Some total ->
          let seen = Array.make (max 1 total) false in
          List.iter
            (fun payload ->
              if String.length payload > 6 && String.sub payload 0 6 = "shard="
              then
                match String.index_opt payload ' ' with
                | Some sp -> (
                    match int_of_string_opt (String.sub payload 6 (sp - 6)) with
                    | Some id when id >= 0 && id < total -> seen.(id) <- true
                    | Some _ | None -> ())
                | None -> ())
            records;
          total = 0 || Array.for_all Fun.id seen)
  | Some (_, _, (Journal.Torn_tail _ | Journal.Corrupt_record _)) | None ->
      false

(* ------------------------------------------------------------------ *)
(* The single-shard conductor                                         *)
(* ------------------------------------------------------------------ *)

let conduct_shard ?(on_class = fun ~class_index:_ _ -> ()) cell
    ~(classes : Defuse.byte_class array) ~(plan : Shard.plan)
    (shard : Shard.t) =
  let session = Injector.session (cell.provider ()) in
  let n = Shard.classes_in shard in
  let buf = Bytes.create (8 * n) in
  for k = 0 to n - 1 do
    let class_index = plan.Shard.order.(shard.Shard.lo + k) in
    let c = classes.(class_index) in
    for bit_in_byte = 0 to 7 do
      let o = cell.conduct session c ~bit_in_byte in
      Bytes.set buf ((8 * k) + bit_in_byte) (Outcome.to_char o)
    done;
    on_class ~class_index (Bytes.sub_string buf (8 * k) 8)
  done;
  buf
