type snapshot = {
  classes_done : int;
  classes_total : int;
  experiments_done : int;
  shards_done : int;
  shards_total : int;
  resumed_classes : int;
  retries : int;
  kills : int;
  quarantined_shards : int;
  quarantined_classes : int;
  elapsed : float;
  rate : float;
  eta : float option;
  tally : Outcome.tally;
}

type hook = snapshot -> unit

(* Quarantined classes will never be conducted: a degraded campaign
   that has accounted every other class is finished, not 99% done. *)
let finished s = s.classes_done + s.quarantined_classes >= s.classes_total

let make ~classes_done ~classes_total ~shards_done ~shards_total
    ~resumed_classes ?(retries = 0) ?(kills = 0) ?(quarantined_shards = 0)
    ?(quarantined_classes = 0) ~elapsed ~tally () =
  let conducted = 8 * (classes_done - resumed_classes) in
  let rate =
    if conducted > 0 && elapsed > 0. then float_of_int conducted /. elapsed
    else 0.
  in
  let remaining = classes_total - classes_done - quarantined_classes in
  let eta =
    if rate <= 0. || remaining <= 0 then None
    else Some (float_of_int (8 * remaining) /. rate)
  in
  {
    classes_done;
    classes_total;
    experiments_done = 8 * classes_done;
    shards_done;
    shards_total;
    resumed_classes;
    retries;
    kills;
    quarantined_shards;
    quarantined_classes;
    elapsed;
    rate;
    eta;
    tally = Outcome.tally_copy tally;
  }

let pp_duration ppf seconds =
  if seconds < 60. then Format.fprintf ppf "%.1fs" seconds
  else if seconds < 3600. then
    Format.fprintf ppf "%dm%02ds"
      (int_of_float seconds / 60)
      (int_of_float seconds mod 60)
  else
    Format.fprintf ppf "%dh%02dm"
      (int_of_float seconds / 3600)
      (int_of_float seconds mod 3600 / 60)

let render s =
  let pct =
    if s.classes_total = 0 then 100.
    else 100. *. float_of_int s.classes_done /. float_of_int s.classes_total
  in
  let bar_width = 10 in
  let filled =
    if s.classes_total = 0 then bar_width
    else bar_width * s.classes_done / s.classes_total
  in
  let bar = String.make filled '#' ^ String.make (bar_width - filled) '.' in
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "[%s] %5.1f%% %d/%d classes" bar pct s.classes_done
       s.classes_total);
  if s.shards_total > 1 then
    Buffer.add_string buf
      (Printf.sprintf " | shard %d/%d" s.shards_done s.shards_total);
  if s.rate > 0. then
    Buffer.add_string buf (Printf.sprintf " | %.0f exp/s" s.rate);
  (match s.eta with
  | Some eta ->
      Buffer.add_string buf
        (Format.asprintf " | ETA %a" pp_duration eta)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf " | %d failures" (Outcome.tally_failures s.tally));
  if s.resumed_classes > 0 then
    Buffer.add_string buf (Printf.sprintf " | %d resumed" s.resumed_classes);
  if s.retries > 0 || s.kills > 0 then
    Buffer.add_string buf
      (Printf.sprintf " | %d retries/%d kills" s.retries s.kills);
  if s.quarantined_shards > 0 then
    Buffer.add_string buf
      (Printf.sprintf " | %d quarantined" s.quarantined_shards);
  Buffer.contents buf

let throttled ?(interval = 0.1) ?(now = Unix.gettimeofday) hook =
  let last = ref neg_infinity in
  fun s ->
    let t = now () in
    if finished s || t -. !last >= interval then begin
      last := t;
      hook s
    end
