(** The fork/exec worker process of the {!Pool.Processes} backend.

    A worker is this very executable re-exec'd with {!env_var} set: the
    first thing every engine-hosting binary does is call {!guard}, which
    diverts such a process into {!serve} before any other code runs.
    The parent ships one {!job} — a marshalled {!Spec.t} (the [Closures]
    flag relocates [Spec.Build] thunks, valid because parent and child
    are the same binary), the campaign fingerprint, a shard-id range and
    a segment path — down the child's stdin.  The worker re-analyses the
    cell, checks its fingerprint against the parent's (a loud failure if
    the build is nondeterministic), conducts its shards in order, and
    appends each result record to its own CRC-guarded journal {e
    segment} (same record format as the campaign journal, distinct
    [fi-segment v1] header).  After each fsync'd append it writes a
    doorbell line ([s <id>\n]) to stdout, so the parent can merge the
    segment incrementally; EOF on that pipe is the parent's death
    notice, whatever the cause.

    The journal is the only shared state: a worker killed mid-shard
    leaves at most a torn segment tail, which the parent's merge
    ignores, so the shard stays unfinished and [--resume] replays it. *)

val env_var : string
(** ["FI_ENGINE_WORKER"] — set to ["1"] in a worker's environment. *)

val torture_var : string
(** ["FI_ENGINE_TORTURE"] — fault-injection hook for the engine's own
    torture tests: ["MODE:N"] or ["MODE:N:WORKER"] makes a worker (the
    [WORKER]-indexed one, or all) misbehave once it has completed [N]
    shards.  [MODE] is [exit] (exit code 7), [raise] (uncaught
    exception, exit 3), [sigkill] (SIGKILL itself between shards),
    [torn] (append a raw partial record, then SIGKILL — a crash
    mid-append), [hang] (sleep forever: no heartbeat, no progress — only
    a supervision deadline ends it) or [stall] (livelock: heartbeats
    keep flowing but shard progress stops).  [poison:S[:W]] is
    different: [S] is a {e plan shard id}, and the worker SIGKILLs
    itself immediately before conducting that shard — the deterministic
    poison coordinate that exercises shard quarantine, since it follows
    the shard through every retry.  Unset, empty or unparseable values
    inject nothing. *)

type torture_mode = Exit | Raise | Sigkill | Torn | Hang | Stall | Poison

type torture = { mode : torture_mode; after : int; only : int option }
(** A parsed {!torture_var} value.  Exposed (with {!parse_torture}) so
    the socket transport's remote workers ({!Remote}) honour the same
    crash-injection vocabulary as the fork/exec workers — the torture
    matrix then drives both backends from one environment variable. *)

val parse_torture : string option -> torture option
(** Parse a {!torture_var} value; [None] on unset/empty/unparseable. *)

type job = {
  spec : Spec.t;
  fingerprint : int;  (** Parent's campaign fingerprint; verified. *)
  shard_ids : int array;  (** Plan shard ids to conduct, in order. *)
  segment : string;  (** Journal-segment path to (re)create. *)
  index : int;
      (** Spawn ordinal within the cell (retry workers get fresh
          indices), for diagnostics and [torture] targeting. *)
}

val segment_header : fingerprint:int -> pid:int -> string
val segment_fingerprint : string -> int option
(** Parse a segment header back to its fingerprint ([None] if the
    payload is not a segment header). *)

val serve : input:in_channel -> output:out_channel -> unit
(** The worker main loop: read one job from [input], conduct it, journal
    to the segment, doorbell on [output].  Raises on any protocol or
    fingerprint violation — {!guard} turns that into exit code 3. *)

val guard : unit -> unit
(** Call first in every [main] of a binary that runs campaigns (the CLI,
    the test runners).  If {!env_var} is set, runs {!serve} over
    stdin/stdout and exits (0 on success, 3 on failure) — otherwise
    returns immediately. *)

type child
(** A spawned worker, parent side. *)

val spawn : job -> child
(** Fork/exec [Sys.executable_name] with {!env_var} set and ship it
    [job].  The caller must be ignoring [SIGPIPE] (the engine's
    processes scheduler is): a child that dies before reading its job
    surfaces as a supervision event, not a parent crash. *)

val pid : child -> int
val index : child -> int
val status_fd : child -> Unix.file_descr
(** The doorbell pipe's read end: [h] heartbeat lines while a shard is
    being conducted (one per class, throttled), [s <id>] per completed
    shard, [end] on clean completion, EOF when the child is gone.  The
    caller closes it. *)

val segment : child -> string
val assigned : child -> int array

val wait : child -> Unix.process_status
(** [waitpid] (blocking; call after EOF on {!status_fd} — or after
    {!kill}). *)

val kill : child -> unit
(** SIGKILL the worker (no-op if it is already gone).  The supervisor's
    answer to a blown deadline; follow with {!wait} to reap it. *)
