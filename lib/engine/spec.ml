type space = Memory | Registers

let space_tag = function Memory -> "mem" | Registers -> "reg"

type source =
  | Build of (unit -> Program.t)
  | Analysed_memory of Golden.t
  | Analysed_registers of Regspace.t

type policy = {
  shard_size : int option;
  weighted : bool;
  journal : string option;
  resume : bool;
  catalogue : string option;
  shard_timeout : float option;
  max_retries : int;
  quarantine : bool;
  retry_backoff : float;
  cache : string option;
}

let default_policy =
  {
    shard_size = None;
    weighted = false;
    journal = None;
    resume = false;
    catalogue = None;
    shard_timeout = None;
    max_retries = 0;
    quarantine = false;
    retry_backoff = 0.05;
    cache = None;
  }

let supervised policy =
  policy.shard_timeout <> None || policy.max_retries > 0 || policy.quarantine

type t = {
  benchmark : string;
  variant : string;
  space : space;
  source : source;
  limit : int option;
  policy : policy;
}

let label t =
  match t.space with
  | Memory -> Printf.sprintf "%s/%s" t.benchmark t.variant
  | Registers -> Printf.sprintf "%s/%s@registers" t.benchmark t.variant

let memory ?(variant = "baseline") ?limit ?(policy = default_policy) ~benchmark
    build =
  { benchmark; variant; space = Memory; source = Build build; limit; policy }

let registers ?(variant = "registers") ?limit ?(policy = default_policy)
    ~benchmark build =
  { benchmark; variant; space = Registers; source = Build build; limit; policy }

let of_golden ?(variant = "baseline") ?(policy = default_policy) golden =
  {
    benchmark = golden.Golden.program.Program.name;
    variant;
    space = Memory;
    source = Analysed_memory golden;
    limit = None;
    policy;
  }

let of_regspace ?(variant = "registers") ?(policy = default_policy) r =
  {
    benchmark = r.Regspace.golden.Golden.program.Program.name;
    variant;
    space = Registers;
    source = Analysed_registers r;
    limit = None;
    policy;
  }

let with_policy policy t = { t with policy }
