type source =
  | Build of (unit -> Program.t)
  | Analysed_memory of Golden.t
  | Analysed_registers of Regspace.t

type sharding = { shard_size : int option; weighted : bool }

type durability = {
  journal : string option;
  resume : bool;
  catalogue : string option;
}

type supervision = {
  shard_timeout : float option;
  max_retries : int;
  quarantine : bool;
  retry_backoff : float;
}

type acceleration = { cache : string option; checkpoint_stride : int option }

type policy = {
  sharding : sharding;
  durability : durability;
  supervision : supervision;
  acceleration : acceleration;
}

let default_sharding = { shard_size = None; weighted = false }
let default_durability = { journal = None; resume = false; catalogue = None }

let default_supervision =
  { shard_timeout = None; max_retries = 0; quarantine = false;
    retry_backoff = 0.05 }

let default_acceleration = { cache = None; checkpoint_stride = None }

let default_policy =
  {
    sharding = default_sharding;
    durability = default_durability;
    supervision = default_supervision;
    acceleration = default_acceleration;
  }

let make_policy ?shard_size ?(weighted = false) ?journal ?(resume = false)
    ?catalogue ?shard_timeout ?(max_retries = 0) ?(quarantine = false)
    ?(retry_backoff = 0.05) ?cache ?checkpoint_stride () =
  {
    sharding = { shard_size; weighted };
    durability = { journal; resume; catalogue };
    supervision = { shard_timeout; max_retries; quarantine; retry_backoff };
    acceleration = { cache; checkpoint_stride };
  }

let supervised policy =
  policy.supervision.shard_timeout <> None
  || policy.supervision.max_retries > 0
  || policy.supervision.quarantine

type t = {
  benchmark : string;
  variant : string;
  model : Faultspace.model;
  source : source;
  limit : int option;
  policy : policy;
}

let label t =
  match t.model with
  | Faultspace.Bitflip_mem -> Printf.sprintf "%s/%s" t.benchmark t.variant
  | Faultspace.Bitflip_reg ->
      Printf.sprintf "%s/%s@registers" t.benchmark t.variant
  | m -> Printf.sprintf "%s/%s@%s" t.benchmark t.variant (Faultspace.tag m)

let build ?(variant = "baseline") ?limit ?(policy = default_policy) ~model
    ~benchmark build =
  { benchmark; variant; model; source = Build build; limit; policy }

let memory ?variant ?limit ?policy ~benchmark b =
  build ?variant ?limit ?policy ~model:Faultspace.Bitflip_mem ~benchmark b

let registers ?variant ?limit ?policy ~benchmark b =
  build ?variant ?limit ?policy ~model:Faultspace.Bitflip_reg ~benchmark b

let of_golden ?(variant = "baseline") ?(policy = default_policy)
    ?(model = Faultspace.Bitflip_mem) golden =
  (match model with
  | Faultspace.Bitflip_reg ->
      invalid_arg "Spec.of_golden: Bitflip_reg needs of_regspace"
  | _ -> ());
  {
    benchmark = golden.Golden.program.Program.name;
    variant;
    model;
    source = Analysed_memory golden;
    limit = None;
    policy;
  }

let of_regspace ?(variant = "baseline") ?(policy = default_policy) r =
  {
    benchmark = r.Regspace.golden.Golden.program.Program.name;
    variant;
    model = Faultspace.Bitflip_reg;
    source = Analysed_registers r;
    limit = None;
    policy;
  }

let with_policy policy t = { t with policy }
