(** A minimal Domain-based worker pool (OCaml 5 stdlib only).

    Tasks are indices [0 .. tasks-1], claimed from an atomic counter in
    ascending order, so earlier tasks start earlier regardless of the
    worker count — there is no queue to build and no per-task
    allocation.  [run] blocks until every task has finished.

    With [jobs <= 1] (or fewer than two tasks) no domain is spawned and
    tasks run inline on the calling domain in index order; this path is
    what makes [-j 1] behave exactly like a serial loop. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    available parallelism (1 on a single-core host). *)

val run : jobs:int -> tasks:int -> (int -> unit) -> unit
(** [run ~jobs ~tasks f] executes [f i] once for every
    [i] in [0 .. tasks-1] on up to [jobs] domains (never more than
    [tasks]).  If one or more tasks raise, the remaining claimed tasks
    still finish, no new tasks are claimed, and the first exception is
    re-raised after all workers have joined.

    @raise Invalid_argument if [jobs < 1] or [tasks < 0]. *)
