(** Worker-pool backends: a minimal Domain pool (OCaml 5 stdlib only)
    plus the backend selector shared by every engine entry point.

    {!Domains} tasks are indices [0 .. tasks-1], claimed from an atomic
    counter in ascending order, so earlier tasks start earlier regardless
    of the worker count — there is no queue to build and no per-task
    allocation.  [run] blocks until every task has finished.

    With [jobs <= 1] (or fewer than two tasks) no domain is spawned and
    tasks run inline on the calling domain in index order; this path is
    what makes [-j 1] behave exactly like a serial loop.

    The {!Processes} backend is scheduled by {!Engine} itself (it needs
    specs, journals and supervision — see {!Worker}); this module only
    names it, so [--backend] means the same thing everywhere. *)

type backend =
  | Domains  (** Shared-memory OCaml 5 domains — one process. *)
  | Processes
      (** Fork/exec'd worker processes, one journal segment each;
          supervised by the parent, crash-tolerant under [--resume]. *)
  | Sockets of string list
      (** Remote worker daemons ([fi-cli worker serve]) addressed as
          ["HOST:PORT"] strings; jobs and journal-segment records cross
          framed TCP connections ({!Remote}), the journal stays the only
          shared state.  The list must be non-empty. *)

val backend_tag : backend -> string
(** ["domains"] / ["processes"] / ["sockets"] — the CLI and
    bench-artifact spelling. *)

val backend_of_string : string -> backend option
(** ["sockets"] parses to [Sockets []] — a naming, not a runnable
    backend; callers must supply the host list (the CLI's
    [--workers]). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the runtime's estimate of
    available parallelism (1 on a single-core host). *)

val resolve_jobs : ?backend:backend -> ?jobs:int -> unit -> int
(** The one place a requested worker count becomes an actual one, shared
    by the engine and the CLI so no two subcommands (or backends) can
    disagree about [-j]:

    - Local backends ([Domains], [Processes], or no [backend]): [None]
      and [Some 0] mean {!default_jobs}[ ()]; [Some n ≥ 1] means [n]
      workers total.
    - [Sockets]: [-j] bounds {e per-remote-host} concurrency — [Some n ≥
      1] means at most [n] simultaneous connections to each host; [None]
      and [Some 0] return [0], the "let each daemon decide" sentinel
      (the engine then uses the capacity each daemon advertises in its
      handshake).

    @raise Invalid_argument if [jobs] is negative, with a message that
    says so and points at [0] as the all-cores (or daemon-decides)
    spelling. *)

val run :
  ?deadline:float ->
  ?on_stall:(stalled_for:float -> unit) ->
  jobs:int ->
  tasks:int ->
  (int -> unit) ->
  unit
(** [run ~jobs ~tasks f] executes [f i] once for every
    [i] in [0 .. tasks-1] on up to [jobs] domains (never more than
    [tasks]).  If one or more tasks raise, the remaining claimed tasks
    still finish, no new tasks are claimed, and the first exception is
    re-raised after all workers have joined.

    [deadline] arms a watchdog domain: if no task completes for
    [deadline] seconds while work remains, [on_stall] fires (once per
    stall episode; re-armed by the next completion).  Unlike the
    processes backend there is no kill path — domains share the heap,
    so a hung domain is {e reported}, not SIGKILLed, and [run] still
    joins it.  No watchdog runs on the inline ([jobs = 1] or
    [tasks <= 1]) path.

    @raise Invalid_argument if [jobs < 1] or [tasks < 0]. *)
