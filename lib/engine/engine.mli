(** Parallel, journaled, resumable campaign execution.

    This is the reproduction's equivalent of the paper's campaign server
    (Section V): a campaign {!Spec.t} names a fault space (def/use-pruned
    memory, or the register file of Section VI-B), a program cell and an
    execution policy; the engine cuts the space's experiment-class list
    into cycle-contiguous {!Shard}s, executes them on a {!Pool} of OCaml
    5 domains — each shard on its own {!Injector.Checkpoint} session,
    which is valid because injection cycles are non-decreasing within a
    shard — and merges results by class index, so every returned
    {!Scan.t} is bit-identical to its serial counterpart
    ({!Scan.pruned} / {!Regspace.scan}) for {e any} worker count.

    {!run_matrix} drives a whole experiment matrix (a list of specs)
    through {e one} shared pool: workers drain the first cell's shards
    and spill into the next as slots free up, with a per-cell journal
    each and one aggregate {!Progress.hook} across the matrix.

    Journals are keyed by a campaign fingerprint (space tag, program
    name, golden runtime, memory size, sizing policy, full class list
    and shard layout); resuming against a different campaign — including
    a register journal against a memory campaign or vice versa — raises
    {!Journal_mismatch} instead of corrupting results.  When a policy
    names a {!Catalog} directory, journal paths are derived from the
    fingerprint and indexed in [journals.idx], so [resume] needs no
    explicit path. *)

exception Journal_mismatch of string
(** The journal at the given path belongs to a different campaign (or
    its records contradict the current shard plan). *)

val fingerprint : Golden.t -> plan:Shard.plan -> int
(** CRC-32 identity of the memory-space campaign over [golden] under
    [plan]; two campaigns merge-compatibly iff their fingerprints
    agree. *)

val fingerprint_spec : Spec.t -> int
(** The fingerprint of the campaign a spec describes (analysing the cell
    if its source is a build thunk).  Covers the space tag and the
    policy's shard geometry and sizing, so the same program in memory
    and register space — or under count- and weight-sized shards — gets
    distinct journals. *)

val run_matrix :
  ?jobs:int ->
  ?progress:(Spec.t -> Scan.progress) ->
  ?observe:Progress.hook ->
  Spec.t list ->
  Scan.t list
(** [run_matrix specs] conducts every cell of the matrix over one shared
    worker pool and returns the scans in spec order.

    - [jobs] — worker domains for the whole matrix (default
      {!Pool.default_jobs}[ ()]).
    - [progress] — per-cell campaign callback factory: called once per
      spec at setup, and the resulting {!Scan.progress} observes that
      cell exactly as {!Scan.pruned}'s would (once per conducted class,
      plus once up-front with the resumed count if journal shards were
      recovered).
    - [observe] — one aggregate {!Progress.hook} whose counters span the
      whole matrix (total classes, shards, resumed classes and outcome
      tally across all cells).

    Journalling is governed by each spec's {!Spec.policy}: per-cell
    journals (explicit paths or catalogue-derived), per-cell resume.  On
    exit — normal or exceptional — every opened journal is closed and
    catalogued, so a matrix interrupted mid-cell resumes with all
    completed shards of {e every} cell recovered.

    Each returned scan is structurally equal to its serial counterpart
    ([Scan.pruned] for memory cells, [Regspace.scan] for register cells)
    for any [jobs] — property-tested for [-j] ∈ {1, 2, 4}.

    @raise Journal_mismatch when resuming against a foreign journal.
    @raise Invalid_argument if [jobs < 1], or some policy sets [resume]
    with neither [journal] nor [catalogue]. *)

val run_spec :
  ?jobs:int ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  Spec.t ->
  Scan.t
(** The single-cell matrix: [run_spec spec = List.hd (run_matrix [spec])]
    with a plain {!Scan.progress} callback. *)

val run :
  ?variant:string ->
  ?jobs:int ->
  ?shard_size:int ->
  ?journal:string ->
  ?resume:bool ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  Golden.t ->
  Scan.t
(** [run golden] conducts the complete pruned memory campaign — a thin
    compatibility wrapper over {!run_spec} with
    [Spec.of_golden ~policy golden].  Prefer {!run_spec}: it reaches the
    register space, weighted shard sizing and the journal catalogue,
    which this signature predates.

    - [jobs] — worker domains (default {!Pool.default_jobs}[ ()]);
      [-j 1] runs inline, still sharded and journal-compatible with any
      other worker count.
    - [shard_size] — classes per shard (default
      {!Shard.default_shard_size}); must match between a journal's
      writer and its resumer (it is part of the fingerprint).
    - [journal] — write the append-only journal to this path.
    - [resume] — with [journal], recover completed shards from an
      existing journal first (a missing or empty journal file simply
      starts fresh).
    - [progress] / [observe] — as in {!run_matrix}, for the one cell.

    The returned scan satisfies [run golden = Scan.pruned golden]
    (structural equality) — property-tested for [-j] ∈ {1, 2, 4}.

    @raise Journal_mismatch when resuming against a foreign journal.
    @raise Invalid_argument if [jobs < 1] or [resume] without [journal]. *)
