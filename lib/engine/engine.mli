(** Parallel, journaled, resumable campaign execution.

    This is the reproduction's equivalent of the paper's campaign server
    (Section V): the def/use experiment-class list is cut into
    cycle-contiguous {!Shard}s, shards execute on a {!Pool} of OCaml 5
    domains — each on its own {!Injector.Checkpoint} session, which is
    valid because injection cycles are non-decreasing within a shard —
    and results are merged by class index, so the returned {!Scan.t} is
    bit-identical to the serial {!Scan.pruned} for {e any} worker count.

    With [~journal:path] every completed shard is appended (fsync'd,
    CRC-guarded) to an on-disk {!Journal}; a later run with
    [~resume:true] recovers those shards without re-conducting a single
    experiment and finishes the rest.  The journal is keyed by a campaign
    fingerprint (program name, golden runtime, memory size, full class
    list and shard layout), so resuming against a different campaign
    raises {!Journal_mismatch} instead of corrupting results. *)

exception Journal_mismatch of string
(** The journal at the given path belongs to a different campaign (or
    its records contradict the current shard plan). *)

val fingerprint : Golden.t -> plan:Shard.plan -> int
(** CRC-32 of the campaign identity; two campaigns merge-compatibly iff
    their fingerprints agree. *)

val run :
  ?variant:string ->
  ?jobs:int ->
  ?shard_size:int ->
  ?journal:string ->
  ?resume:bool ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  Golden.t ->
  Scan.t
(** [run golden] conducts the complete pruned campaign.

    - [jobs] — worker domains (default
      {!Pool.default_jobs}[ ()]); [-j 1] runs inline, still
      sharded and journal-compatible with any other worker count.
    - [shard_size] — classes per shard (default
      {!Shard.default_shard_size}); must match between a journal's writer
      and its resumer (it is part of the fingerprint).
    - [journal] — write the append-only journal to this path.
    - [resume] — with [journal], recover completed shards from an
      existing journal first (a missing or empty journal file simply
      starts fresh).
    - [progress] — the shared per-class campaign callback
      ({!Scan.progress}); called (under a lock, possibly from worker
      domains) once per {e conducted} class in completion order, and once
      up-front with the resumed class count if any shards were recovered.
    - [observe] — the engine's richer {!Progress.hook}; called whenever
      [progress] is, plus once per completed shard and once at start.
      Wrap it in {!Progress.throttled} for terminal rendering.

    The returned scan satisfies [run golden = Scan.pruned golden]
    (structural equality) — property-tested for [-j] ∈ {1, 2, 4}.

    @raise Journal_mismatch when resuming against a foreign journal.
    @raise Invalid_argument if [jobs < 1] or [resume] without [journal]. *)
