(** Parallel, journaled, resumable campaign execution.

    This is the reproduction's equivalent of the paper's campaign server
    (Section V): a campaign {!Spec.t} names a fault space (def/use-pruned
    memory, or the register file of Section VI-B), a program cell and an
    execution policy; the engine cuts the space's experiment-class list
    into cycle-contiguous {!Shard}s, executes them on a worker pool —
    each shard on its own {!Injector.Checkpoint} session, which is valid
    because injection cycles are non-decreasing within a shard — and
    merges results by class index, so every returned {!Scan.t} is
    bit-identical to its serial counterpart ({!Scan.pruned} /
    {!Regspace.scan}) for {e any} worker count and {e either} backend.

    Two {!Pool.backend}s conduct the shards:

    - {!Pool.Domains} (default) — shared-memory OCaml 5 domains inside
      this process, one pool across the whole matrix.
    - {!Pool.Processes} — fork/exec'd {!Worker} processes.  Each worker
      receives a marshalled spec plus a shard-id range over a pipe and
      appends results to its own CRC-guarded journal {e segment}; the
      parent merges segments into the campaign journal as doorbells
      arrive, so the journal is the only state crossing the process
      boundary.  A worker that exits nonzero, dies on a signal or writes
      a corrupt segment leaves its unfinished shards unmerged; the
      parent drives every other worker and cell to completion first
      (maximal journal progress), then raises {!Worker_failed} — and a
      [resume] run replays exactly the missing shards.

    {!run_matrix} drives a whole experiment matrix (a list of specs)
    with a per-cell journal each and one aggregate {!Progress.hook}
    across the matrix.

    Journals are keyed by a campaign fingerprint (space tag, program
    name, golden runtime, memory size, sizing policy, full class list
    and shard layout); resuming against a different campaign — including
    a register journal against a memory campaign or vice versa — raises
    {!Journal_mismatch} instead of corrupting results.  A journal whose
    {e middle} fails its CRC (storage corruption, as opposed to the torn
    tail a crash leaves) is likewise rejected.  When a policy names a
    {!Catalog} directory, journal paths are derived from the fingerprint
    and indexed in [journals.idx], so [resume] needs no explicit path. *)

exception Journal_mismatch of string
(** The journal at the given path belongs to a different campaign, its
    records contradict the current shard plan, or a complete record
    fails its CRC (storage corruption — only a torn {e tail} is a normal
    crash artifact). *)

exception Worker_failed of string
(** A {!Pool.Processes} worker died (nonzero exit, signal) or wrote a
    corrupt segment.  Raised only after every other worker and cell has
    been driven as far as it will go and all journals are closed, so a
    [resume] run replays exactly the shards the message lists. *)

val fingerprint : Golden.t -> plan:Shard.plan -> int
(** CRC-32 identity of the memory-space campaign over [golden] under
    [plan]; two campaigns merge-compatibly iff their fingerprints
    agree. *)

val fingerprint_spec : Spec.t -> int
(** The fingerprint of the campaign a spec describes (analysing the cell
    if its source is a build thunk).  Covers the space tag and the
    policy's shard geometry and sizing, so the same program in memory
    and register space — or under count- and weight-sized shards — gets
    distinct journals. *)

val run_matrix :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?progress:(Spec.t -> Scan.progress) ->
  ?observe:Progress.hook ->
  Spec.t list ->
  Scan.t list
(** [run_matrix specs] conducts every cell of the matrix and returns the
    scans in spec order.

    - [backend] — {!Pool.Domains} (default): one shared domain pool over
      the whole matrix, workers drain the first cell's shards and spill
      into the next as slots free up.  {!Pool.Processes}: cells run in
      sequence, each fanned out over up to [jobs] fork/exec'd worker
      processes ({!Worker}).
    - [jobs] — worker count, resolved by {!Pool.resolve_jobs}: [0] (or
      omitted) means {!Pool.default_jobs}[ ()].
    - [progress] — per-cell campaign callback factory: called once per
      spec at setup, and the resulting {!Scan.progress} observes that
      cell exactly as {!Scan.pruned}'s would (once per conducted class,
      plus once up-front with the resumed count if journal shards were
      recovered).
    - [observe] — one aggregate {!Progress.hook} whose counters span the
      whole matrix (total classes, shards, resumed classes and outcome
      tally across all cells).

    Journalling is governed by each spec's {!Spec.policy}: per-cell
    journals (explicit paths or catalogue-derived), per-cell resume.  On
    exit — normal or exceptional — every opened journal is closed and
    catalogued, so a matrix interrupted mid-cell resumes with all
    completed shards of {e every} cell recovered.

    Each returned scan is structurally equal to its serial counterpart
    ([Scan.pruned] for memory cells, [Regspace.scan] for register cells)
    for any [jobs] and either backend — property-tested.

    @raise Journal_mismatch when resuming against a foreign or corrupt
    journal.
    @raise Worker_failed when a process-backend worker dies.
    @raise Invalid_argument if [jobs < 0], or some policy sets [resume]
    with neither [journal] nor [catalogue]. *)

val run_spec :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  Spec.t ->
  Scan.t
(** The single-cell matrix: [run_spec spec = List.hd (run_matrix [spec])]
    with a plain {!Scan.progress} callback. *)

val run :
  ?variant:string ->
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?shard_size:int ->
  ?journal:string ->
  ?resume:bool ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  Golden.t ->
  Scan.t
(** [run golden] conducts the complete pruned memory campaign — a thin
    compatibility wrapper over {!run_spec} with
    [Spec.of_golden ~policy golden].  Prefer {!run_spec}: it reaches the
    register space, weighted shard sizing and the journal catalogue,
    which this signature predates.

    - [backend] — as in {!run_matrix}.
    - [jobs] — worker count ([0]/omitted = {!Pool.default_jobs}[ ()]);
      [-j 1] runs inline, still sharded and journal-compatible with any
      other worker count.
    - [shard_size] — classes per shard (default
      {!Shard.default_shard_size}); must match between a journal's
      writer and its resumer (it is part of the fingerprint).
    - [journal] — write the append-only journal to this path.
    - [resume] — with [journal], recover completed shards from an
      existing journal first (a missing or empty journal file simply
      starts fresh).
    - [progress] / [observe] — as in {!run_matrix}, for the one cell.

    The returned scan satisfies [run golden = Scan.pruned golden]
    (structural equality) — property-tested for [-j] ∈ {1, 2, 4}.

    @raise Journal_mismatch when resuming against a foreign journal.
    @raise Worker_failed when a process-backend worker dies.
    @raise Invalid_argument if [jobs < 0] or [resume] without
    [journal]. *)
