(** Parallel, journaled, resumable campaign execution.

    This is the reproduction's equivalent of the paper's campaign server
    (Section V): a campaign {!Spec.t} names a fault space (def/use-pruned
    memory, or the register file of Section VI-B), a program cell and an
    execution policy; the engine cuts the space's experiment-class list
    into cycle-contiguous {!Shard}s, executes them on a worker pool —
    each shard on its own {!Injector.Checkpoint} session, which is valid
    because injection cycles are non-decreasing within a shard — and
    merges results by class index, so every returned {!Scan.t} is
    bit-identical to its serial counterpart ({!Scan.pruned} /
    {!Regspace.scan}) for {e any} worker count and {e any} backend.

    Three {!Pool.backend}s conduct the shards:

    - {!Pool.Domains} (default) — shared-memory OCaml 5 domains inside
      this process, one pool across the whole matrix.
    - {!Pool.Processes} — fork/exec'd {!Worker} processes.  Each worker
      receives a marshalled spec plus a shard-id range over a pipe and
      appends results to its own CRC-guarded journal {e segment}; the
      parent merges segments into the campaign journal as doorbells
      arrive, so the journal is the only state crossing the process
      boundary.  A worker that exits nonzero, dies on a signal or writes
      a corrupt segment leaves its unfinished shards unmerged; the
      parent drives every other worker and cell to completion first
      (maximal journal progress), then raises {!Worker_failed} — and a
      [resume] run replays exactly the missing shards.
    - {!Pool.Sockets} — {!Remote} worker daemons reached over TCP
      ([fi-cli worker serve] on each host).  Every connection opens
      with a protocol-version + binary-digest handshake; jobs carry the
      cell {e description} (program image, policy, shard ids — never
      closures), which the daemon re-analyses, refusing on campaign-
      fingerprint disagreement.  Results stream back as the same
      CRC-guarded journal-record lines a local segment holds, merged by
      the same dedup/CRC/fingerprint checks, so the §9 guarantees carry
      over verbatim; a vanished daemon is a dead worker, and [resume]
      heals its campaign on a fresh fleet.  [jobs] bounds {e per-host}
      concurrency ([0] adopts each daemon's advertised capacity).

    {2 Supervision}

    With a supervising policy ({!Spec.supervised}: an explicit
    [shard_timeout], [max_retries > 0] or [quarantine]), the processes
    and sockets backends are {e self-healing} — campaigns complete,
    bit-identical to the serial scan, despite crashing, hanging or
    stalling workers (for remote workers, SIGKILL becomes connection
    teardown and a heartbeat is a [Door] frame; the supervision logic
    is shared):

    - {b Deadlines.}  Workers heartbeat on their doorbell pipe (one
      line per conducted class).  A worker that completes no shard
      within the deadline — [shard_timeout], or 8× the observed mean
      per-worker shard time when unset — is declared hung (silent) or
      stalled (heartbeats without progress), SIGKILLed, and its torn
      segment tail discarded.
    - {b Bounded retry.}  A dead worker's unfinished shards return to
      the dispatch queue; the shard being conducted at death is
      charged a retry attempt only when the worker completed no shard
      of its assignment (a death after progress requeues without
      burning budget).  Re-dispatch backs off exponentially
      ([retry_backoff × 2ⁿ⁻¹]) and each shard's budget is
      [max_retries].  Every retry is journaled as a supervision record,
      so retry accounting survives [resume].
    - {b Quarantine.}  A shard that exhausts its budget is isolated
      when [quarantine] is set: the campaign completes, every other
      shard's results are returned, and the shard is reported in
      {!result.quarantined} (its classes keep the [No_effect]
      placeholder in the scan — consult [quarantined] before treating a
      scan as complete).  With [quarantine] unset, exhaustion raises
      {!Worker_failed} as before.

    The scan-only entry points ({!run_matrix}, {!run_spec}, {!run})
    never return a silently degraded scan: if anything was quarantined
    they raise {!Worker_failed}.  Use {!run_matrix_results} /
    {!run_spec_result} to receive the quarantine report instead.

    {!run_matrix} drives a whole experiment matrix (a list of specs)
    with a per-cell journal each and one aggregate {!Progress.hook}
    across the matrix.

    Journals are keyed by a campaign fingerprint (space tag, program
    name, golden runtime, memory size, sizing policy, full class list
    and shard layout); resuming against a different campaign — including
    a register journal against a memory campaign or vice versa — raises
    {!Journal_mismatch} instead of corrupting results.  A journal whose
    {e middle} fails its CRC (storage corruption, as opposed to the torn
    tail a crash leaves) is likewise rejected.  When a policy names a
    {!Catalog} directory, journal paths are derived from the fingerprint
    and indexed in [journals.idx], so [resume] needs no explicit path.

    {2 The result cache}

    When a policy names a {!Cache} directory, every cell is looked up in
    the content-addressed result store {e before} any shard is
    scheduled.  The cell key ({!Cache.cell_key}) digests the program
    image, the fault-space tag and the plan-shaping policy fields
    (experiment limit, shard size, weighted sizing) — everything that
    determines results; supervision and journal placement are excluded
    because they cannot change them.  A hit replays the published
    journal through the same parse/apply path a [resume] uses (header
    equality, per-record CRC, per-shard dedup), so cached results are
    bit-identical to a fresh run by construction, with {e zero} shard
    executions — {!result.cached} reports it.  Anything short of a
    complete, header-matching journal covering every shard is a miss
    and the cell conducts normally: in particular a quarantine-degraded
    journal can never be served as a hit, and on clean completion a
    cell is only published when nothing was quarantined. *)

exception Journal_mismatch of string
(** The journal at the given path belongs to a different campaign, its
    records contradict the current shard plan, or a complete record
    fails its CRC (storage corruption — only a torn {e tail} is a normal
    crash artifact). *)

exception Worker_failed of string
(** A {!Pool.Processes} worker died (nonzero exit, signal) or wrote a
    corrupt segment — and supervision either was off or exhausted a
    shard's retry budget with [quarantine] unset; or a scan-only entry
    point had quarantined shards to report.  Raised only after every
    other worker and cell has been driven as far as it will go and all
    journals are closed, so a [resume] run replays exactly the shards
    the message lists. *)

type quarantined = {
  q_cell : string;  (** The cell's {!Spec.label}. *)
  q_shard : int;  (** Plan shard id. *)
  q_classes : int;  (** Experiment classes the shard carries. *)
  q_class_indices : int array;
      (** Their class indices — the exact coordinates left unconducted. *)
  q_attempts : int;  (** Worker deaths charged before isolation. *)
  q_cause : string;  (** The last worker's cause of death. *)
}
(** One shard given up after killing its worker [max_retries + 1]
    times. *)

type result = {
  scan : Scan.t;
  quarantined : quarantined list;
  cached : bool;
      (** The whole cell was served from the {!Cache} result store:
          outcomes replayed from a published journal, zero shards
          executed.  Always [false] when the policy's [cache] is
          [None]. *)
}
(** A cell's outcome under supervision.  [quarantined = []] means the
    scan is complete and bit-identical to its serial counterpart;
    otherwise the listed shards' classes hold [No_effect] placeholders
    and every other class is still exact. *)

val fingerprint : Golden.t -> plan:Shard.plan -> int
(** CRC-32 identity of the memory-space campaign over [golden] under
    [plan]; two campaigns merge-compatibly iff their fingerprints
    agree. *)

val fingerprint_spec : Spec.t -> int
(** The fingerprint of the campaign a spec describes (analysing the cell
    if its source is a build thunk).  Covers the space tag and the
    policy's shard geometry and sizing, so the same program in memory
    and register space — or under count- and weight-sized shards — gets
    distinct journals. *)

val run_matrix_results :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?progress:(Spec.t -> Scan.progress) ->
  ?observe:Progress.hook ->
  ?on_event:(string -> unit) ->
  ?secret:string ->
  Spec.t list ->
  result list
(** The supervision-aware matrix entry point: like {!run_matrix} but
    returns each cell's {!result} — scan plus quarantine report plus
    cache provenance — instead of raising on quarantined shards.
    Cells whose policy names a {!Cache} directory are consulted in the
    result store first (see the module preamble); hits skip scheduling
    entirely and return with [cached = true].  [on_event] receives one
    human-readable line per supervision event (worker killed on
    deadline, shard retry dispatched, shard quarantined, domain-pool
    stall), as they happen; it defaults to silence.  [secret] arms
    shared-secret handshake authentication towards every
    {!Pool.Sockets} worker daemon (which must have been started with
    the same secret). *)

val run_spec_result :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  ?on_event:(string -> unit) ->
  ?secret:string ->
  Spec.t ->
  result
(** The single-cell {!run_matrix_results}. *)

val run_matrix :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?progress:(Spec.t -> Scan.progress) ->
  ?observe:Progress.hook ->
  Spec.t list ->
  Scan.t list
(** [run_matrix specs] conducts every cell of the matrix and returns the
    scans in spec order.  Raises {!Worker_failed} if supervision
    quarantined anything — this entry point never returns a silently
    degraded scan.

    - [backend] — {!Pool.Domains} (default): one shared domain pool over
      the whole matrix, workers drain the first cell's shards and spill
      into the next as slots free up.  {!Pool.Processes}: cells run in
      sequence, each fanned out over up to [jobs] fork/exec'd worker
      processes ({!Worker}).  {!Pool.Sockets}: like [Processes], but
      the workers are {!Remote} daemons on the named [HOST:PORT]s and
      [jobs] bounds per-host concurrency.
    - [jobs] — worker count, resolved by {!Pool.resolve_jobs}: [0] (or
      omitted) means {!Pool.default_jobs}[ ()].
    - [progress] — per-cell campaign callback factory: called once per
      spec at setup, and the resulting {!Scan.progress} observes that
      cell exactly as {!Scan.pruned}'s would (once per conducted class,
      plus once up-front with the resumed count if journal shards were
      recovered).
    - [observe] — one aggregate {!Progress.hook} whose counters span the
      whole matrix (total classes, shards, resumed classes and outcome
      tally across all cells).

    Journalling is governed by each spec's {!Spec.policy}: per-cell
    journals (explicit paths or catalogue-derived), per-cell resume.  On
    exit — normal or exceptional — every opened journal is closed and
    catalogued, so a matrix interrupted mid-cell resumes with all
    completed shards of {e every} cell recovered.

    Each returned scan is structurally equal to its serial counterpart
    ([Scan.pruned] for memory cells, [Regspace.scan] for register cells)
    for any [jobs] and any backend — property-tested.

    @raise Journal_mismatch when resuming against a foreign or corrupt
    journal.
    @raise Worker_failed when a process-backend worker or a remote
    worker dies (or a sockets fleet is unreachable or mismatched).
    @raise Invalid_argument if [jobs < 0], or some policy sets [resume]
    with neither [journal] nor [catalogue]. *)

val run_spec :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  Spec.t ->
  Scan.t
(** The single-cell matrix: [run_spec spec = List.hd (run_matrix [spec])]
    with a plain {!Scan.progress} callback. *)

val run_sampled :
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?progress:Scan.progress ->
  seed:int64 ->
  samples:int ->
  Spec.t ->
  Scan.t * Sampler.estimate
(** [run_sampled ~seed ~samples spec] conducts the cell's full campaign
    through {!run_spec} (any backend, bit-identical as always) and then
    draws a {!Sampler.uniform_raw_oracle} estimate of [samples]
    coordinates against the completed scan, from a fresh
    [Prng.create ~seed].  Because the oracle sampler is property-tested
    identical to its conducting counterpart, the estimate is exactly what
    a sampled campaign with that PRNG state would have produced — while
    the full scan stays available for exact metrics.  This is the
    fuzzer's sampled-campaign path: the differential driver decides the
    dilution predicate on the exact scans and reports the sampled
    extrapolations alongside.

    @raise Invalid_argument if [samples <= 0]. *)

val run :
  ?variant:string ->
  ?backend:Pool.backend ->
  ?jobs:int ->
  ?shard_size:int ->
  ?journal:string ->
  ?resume:bool ->
  ?progress:Scan.progress ->
  ?observe:Progress.hook ->
  Golden.t ->
  Scan.t
(** [run golden] conducts the complete pruned memory campaign — a thin
    compatibility wrapper over {!run_spec} with
    [Spec.of_golden ~policy golden].  Prefer {!run_spec}: it reaches the
    register space, weighted shard sizing and the journal catalogue,
    which this signature predates.

    - [backend] — as in {!run_matrix}.
    - [jobs] — worker count ([0]/omitted = {!Pool.default_jobs}[ ()]);
      [-j 1] runs inline, still sharded and journal-compatible with any
      other worker count.
    - [shard_size] — classes per shard (default
      {!Shard.default_shard_size}); must match between a journal's
      writer and its resumer (it is part of the fingerprint).
    - [journal] — write the append-only journal to this path.
    - [resume] — with [journal], recover completed shards from an
      existing journal first (a missing or empty journal file simply
      starts fresh).
    - [progress] / [observe] — as in {!run_matrix}, for the one cell.

    The returned scan satisfies [run golden = Scan.pruned golden]
    (structural equality) — property-tested for [-j] ∈ {1, 2, 4}.

    @raise Journal_mismatch when resuming against a foreign journal.
    @raise Worker_failed when a process-backend worker dies.
    @raise Invalid_argument if [jobs < 0] or [resume] without
    [journal]. *)
