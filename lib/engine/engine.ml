exception Journal_mismatch of string

let mismatch fmt = Printf.ksprintf (fun s -> raise (Journal_mismatch s)) fmt

(* ------------------------------------------------------------------ *)
(* Campaign identity and journal payloads                             *)
(* ------------------------------------------------------------------ *)

let fingerprint golden ~(plan : Shard.plan) =
  let classes = Defuse.experiment_classes golden.Golden.defuse in
  let buf = Buffer.create (32 + (Array.length classes * 12)) in
  Buffer.add_string buf golden.Golden.program.Program.name;
  Buffer.add_string buf
    (Printf.sprintf "|%d|%d|%d|" golden.Golden.cycles
       golden.Golden.program.Program.ram_size plan.Shard.shard_size);
  Array.iter
    (fun (c : Defuse.byte_class) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d;" c.Defuse.byte c.Defuse.t_start
           c.Defuse.t_end))
    classes;
  Crc32.string (Buffer.contents buf)

let header_payload golden ~(plan : Shard.plan) =
  Printf.sprintf
    "fi-engine v1 cycles=%d ram_bytes=%d classes=%d shard_size=%d shards=%d \
     fingerprint=%s name=%s"
    golden.Golden.cycles golden.Golden.program.Program.ram_size
    plan.Shard.classes_total plan.Shard.shard_size
    (Array.length plan.Shard.shards)
    (Crc32.to_hex (fingerprint golden ~plan))
    golden.Golden.program.Program.name

let record_payload (shard : Shard.t) outcomes_buf =
  Printf.sprintf "shard=%d outcomes=%s" shard.Shard.id
    (Bytes.to_string outcomes_buf)

let parse_record (plan : Shard.plan) payload =
  match String.index_opt payload ' ' with
  | Some sp when String.length payload > 15 && String.sub payload 0 6 = "shard=" -> (
      let id = int_of_string_opt (String.sub payload 6 (sp - 6)) in
      let rest = String.sub payload (sp + 1) (String.length payload - sp - 1) in
      if String.length rest < 9 || String.sub rest 0 9 <> "outcomes=" then None
      else
        let outs = String.sub rest 9 (String.length rest - 9) in
        match id with
        | Some id when id >= 0 && id < Array.length plan.Shard.shards ->
            let shard = plan.Shard.shards.(id) in
            if String.length outs <> 8 * Shard.classes_in shard then None
            else Some (shard, outs)
        | Some _ | None -> None)
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* The campaign                                                       *)
(* ------------------------------------------------------------------ *)

let run ?(variant = "baseline") ?jobs ?shard_size ?journal ?(resume = false)
    ?(progress = Scan.no_progress) ?(observe = fun _ -> ()) golden =
  let jobs =
    match jobs with
    | None -> Pool.default_jobs ()
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Printf.sprintf "Engine.run: jobs %d" j)
  in
  if resume && journal = None then
    invalid_arg "Engine.run: ~resume requires ~journal";
  let defuse = golden.Golden.defuse in
  let classes = Defuse.experiment_classes defuse in
  let plan = Shard.plan ?shard_size defuse in
  let total = plan.Shard.classes_total in
  let n_shards = Array.length plan.Shard.shards in
  let header = header_payload golden ~plan in
  (* Outcome store, indexed like the serial scan: class_index*8 + bit. *)
  let outcomes = Array.make (8 * total) Outcome.No_effect in
  let shard_done = Array.make n_shards false in
  let tally = Outcome.tally_create () in
  let apply_record (shard : Shard.t) outs =
    for k = 0 to Shard.classes_in shard - 1 do
      let class_index = plan.Shard.order.(shard.Shard.lo + k) in
      for bit = 0 to 7 do
        match Outcome.of_char outs.[(8 * k) + bit] with
        | Some o ->
            outcomes.((class_index * 8) + bit) <- o;
            Outcome.tally_add tally o
        | None ->
            mismatch "journal record for shard %d holds invalid outcome %C"
              shard.Shard.id
              outs.[(8 * k) + bit]
      done
    done
  in
  (* Open (and on resume, replay) the journal. *)
  let writer =
    match journal with
    | None -> None
    | Some path ->
        let fresh () = Some (Journal.create path ~header) in
        if not resume then fresh ()
        else (
          match Journal.open_resume path with
          | None -> fresh ()
          | Some (w, hdr, records) ->
              if hdr <> header then begin
                Journal.close w;
                mismatch
                  "journal %s belongs to a different campaign\n\
                  \  journal: %s\n\
                  \  current: %s"
                  path hdr header
              end;
              List.iter
                (fun r ->
                  match parse_record plan r with
                  | Some (shard, outs) when not shard_done.(shard.Shard.id) ->
                      apply_record shard outs;
                      shard_done.(shard.Shard.id) <- true
                  | Some (shard, _) ->
                      mismatch "journal has duplicate record for shard %d"
                        shard.Shard.id
                  | None -> mismatch "journal has malformed record %S" r)
                records;
              Some w)
  in
  let resumed_classes =
    Array.fold_left
      (fun acc (s : Shard.t) ->
        if shard_done.(s.Shard.id) then acc + Shard.classes_in s else acc)
      0 plan.Shard.shards
  in
  let resumed_shards =
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 shard_done
  in
  let pending =
    Array.of_list
      (List.filter
         (fun (s : Shard.t) -> not shard_done.(s.Shard.id))
         (Array.to_list plan.Shard.shards))
  in
  let t0 = Unix.gettimeofday () in
  let mu = Mutex.create () in
  let classes_done = ref resumed_classes in
  let shards_done = ref resumed_shards in
  let emit_observe () =
    observe
      (Progress.make ~classes_done:!classes_done ~classes_total:total
         ~shards_done:!shards_done ~shards_total:n_shards ~resumed_classes
         ~elapsed:(Unix.gettimeofday () -. t0)
         ~tally)
  in
  if resumed_classes > 0 then progress ~done_:resumed_classes ~total ~tally;
  emit_observe ();
  let conduct_shard (shard : Shard.t) =
    let session = Injector.session golden in
    let n = Shard.classes_in shard in
    let buf = Bytes.create (8 * n) in
    for k = 0 to n - 1 do
      let class_index = plan.Shard.order.(shard.Shard.lo + k) in
      let c = classes.(class_index) in
      for bit_in_byte = 0 to 7 do
        let coord = Faultspace.canonical_injection c ~bit_in_byte in
        let o = Injector.session_run_at session coord in
        outcomes.((class_index * 8) + bit_in_byte) <- o;
        Bytes.set buf ((8 * k) + bit_in_byte) (Outcome.to_char o)
      done;
      Mutex.protect mu (fun () ->
          for bit = 0 to 7 do
            match Outcome.of_char (Bytes.get buf ((8 * k) + bit)) with
            | Some o -> Outcome.tally_add tally o
            | None -> assert false
          done;
          incr classes_done;
          progress ~done_:!classes_done ~total ~tally;
          emit_observe ())
    done;
    Mutex.protect mu (fun () ->
        (match writer with
        | Some w -> Journal.append w (record_payload shard buf)
        | None -> ());
        shard_done.(shard.Shard.id) <- true;
        incr shards_done;
        emit_observe ())
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close writer)
    (fun () ->
      Pool.run ~jobs ~tasks:(Array.length pending) (fun i ->
          conduct_shard pending.(i)));
  assert (Array.for_all Fun.id shard_done);
  (* Deterministic merge: identical construction to the serial scan. *)
  let experiments =
    Array.init (8 * total) (fun idx ->
        let c = classes.(idx / 8) in
        {
          Scan.byte = c.Defuse.byte;
          t_start = c.Defuse.t_start;
          t_end = c.Defuse.t_end;
          bit_in_byte = idx mod 8;
          outcome = outcomes.(idx);
        })
  in
  {
    Scan.name = golden.Golden.program.Program.name;
    variant;
    cycles = golden.Golden.cycles;
    ram_bytes = golden.Golden.program.Program.ram_size;
    experiments;
    benign_weight = Defuse.known_benign_weight defuse;
  }
