exception Journal_mismatch = Runcell.Journal_mismatch

exception Worker_failed of string

let mismatch = Runcell.mismatch

(* ------------------------------------------------------------------ *)
(* Campaign identity (public API; the definitions live in Runcell)     *)
(* ------------------------------------------------------------------ *)

let fingerprint golden ~(plan : Shard.plan) =
  Runcell.fingerprint_of ~space:Spec.Memory
    ~name:golden.Golden.program.Program.name ~cycles:golden.Golden.cycles
    ~ram_bytes:golden.Golden.program.Program.ram_size
    ~classes:(Defuse.experiment_classes golden.Golden.defuse)
    ~plan

let fingerprint_spec spec =
  let cell = Runcell.analyse spec in
  let plan =
    Runcell.plan_of_policy spec.Spec.policy
      (Defuse.experiment_classes cell.Runcell.defuse)
  in
  Runcell.fingerprint_cell cell ~plan

(* ------------------------------------------------------------------ *)
(* Journal resolution (explicit path or catalogue)                    *)
(* ------------------------------------------------------------------ *)

let resolve_journal ~fingerprint (policy : Spec.policy) =
  match policy.Spec.journal with
  | Some path -> Some path
  | None -> (
      match policy.Spec.catalogue with
      | None -> None
      | Some dir ->
          Catalog.ensure_dir dir;
          if policy.Spec.resume then
            Some
              (match Catalog.lookup ~dir ~fingerprint with
              | Some path -> path
              | None -> Catalog.journal_path ~dir ~fingerprint)
          else Some (Catalog.journal_path ~dir ~fingerprint))

(* ------------------------------------------------------------------ *)
(* Per-cell runtime state                                             *)
(* ------------------------------------------------------------------ *)

type runtime = {
  cell : Runcell.cell;
  classes : Defuse.byte_class array;
  plan : Shard.plan;
  fp : int;
  outcomes : Outcome.t array;
  shard_done : bool array;
  tally : Outcome.tally;
  progress : Scan.progress;
  journal_path : string option;
  mutable writer : Journal.writer option;
  resumed_classes : int;
  resumed_shards : int;
  mutable classes_done : int;
  mutable shards_done : int;
}

let setup cell ~progress =
  let classes = Defuse.experiment_classes cell.Runcell.defuse in
  let policy = cell.Runcell.spec.Spec.policy in
  let plan = Runcell.plan_of_policy policy classes in
  let fp = Runcell.fingerprint_cell cell ~plan in
  let header = Runcell.header_payload cell ~plan ~fp in
  let total = plan.Shard.classes_total in
  let outcomes = Array.make (8 * total) Outcome.No_effect in
  let shard_done = Array.make (Array.length plan.Shard.shards) false in
  let tally = Outcome.tally_create () in
  let apply_record (shard : Shard.t) outs =
    for k = 0 to Shard.classes_in shard - 1 do
      let class_index = plan.Shard.order.(shard.Shard.lo + k) in
      for bit = 0 to 7 do
        match Outcome.of_char outs.[(8 * k) + bit] with
        | Some o ->
            outcomes.((class_index * 8) + bit) <- o;
            Outcome.tally_add tally o
        | None ->
            mismatch "journal record for shard %d holds invalid outcome %C"
              shard.Shard.id
              outs.[(8 * k) + bit]
      done
    done
  in
  let journal_path = resolve_journal ~fingerprint:fp policy in
  let writer =
    match journal_path with
    | None -> None
    | Some path ->
        let fresh () = Some (Journal.create path ~header) in
        if not policy.Spec.resume then fresh ()
        else (
          match Journal.replay path with
          | Some (_, _, Journal.Corrupt_record { line }) ->
              mismatch
                "journal %s: CRC-invalid record at line %d — refusing to \
                 resume a corrupt journal (a crash leaves a torn tail, not \
                 mid-file corruption); delete it to re-run from scratch"
                path line
          | Some _ | None -> (
              match Journal.open_resume path with
              | None -> fresh ()
              | Some (w, hdr, records) ->
                  if hdr <> header then begin
                    Journal.close w;
                    mismatch
                      "journal %s belongs to a different campaign\n\
                      \  journal: %s\n\
                      \  current: %s"
                      path hdr header
                  end;
                  List.iter
                    (fun r ->
                      match Runcell.parse_record plan r with
                      | Some (shard, outs) when not shard_done.(shard.Shard.id)
                        ->
                          apply_record shard outs;
                          shard_done.(shard.Shard.id) <- true
                      | Some (shard, _) ->
                          mismatch "journal has duplicate record for shard %d"
                            shard.Shard.id
                      | None -> mismatch "journal has malformed record %S" r)
                    records;
                  Some w))
  in
  let resumed_classes =
    Array.fold_left
      (fun acc (s : Shard.t) ->
        if shard_done.(s.Shard.id) then acc + Shard.classes_in s else acc)
      0 plan.Shard.shards
  in
  let resumed_shards =
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 shard_done
  in
  {
    cell;
    classes;
    plan;
    fp;
    outcomes;
    shard_done;
    tally;
    progress;
    journal_path;
    writer;
    resumed_classes;
    resumed_shards;
    classes_done = resumed_classes;
    shards_done = resumed_shards;
  }

(* ------------------------------------------------------------------ *)
(* Process-backend supervision state                                  *)
(* ------------------------------------------------------------------ *)

(* One record per spawned worker: its doorbell pipe, the read cursor
   into its journal segment, and what became of it. *)
type tracked = {
  child : Worker.child;
  t_rt : runtime;
  mutable seg_fd : Unix.file_descr option;
  mutable seg_pending : string;  (** Partial trailing segment line. *)
  mutable header_ok : bool;
  mutable corrupt : string option;
  mutable eof : bool;
  mutable status : Unix.process_status option;
}

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else Printf.sprintf "signal %d" s

(* ------------------------------------------------------------------ *)
(* The matrix scheduler                                               *)
(* ------------------------------------------------------------------ *)

let run_matrix ?(backend = Pool.Domains) ?jobs ?progress ?(observe = fun _ -> ())
    specs =
  let jobs = Pool.resolve_jobs ?jobs () in
  let progress_of =
    match progress with None -> fun _ -> Scan.no_progress | Some p -> p
  in
  List.iter
    (fun (s : Spec.t) ->
      let p = s.Spec.policy in
      if p.Spec.resume && p.Spec.journal = None && p.Spec.catalogue = None then
        invalid_arg "Engine.run: ~resume requires ~journal")
    specs;
  let cells = List.map Runcell.analyse specs in
  let rts = ref [] in
  let finally () =
    List.iter
      (fun rt ->
        Option.iter Journal.close rt.writer;
        match
          (rt.journal_path, rt.cell.Runcell.spec.Spec.policy.Spec.catalogue)
        with
        | Some path, Some dir -> (
            try Catalog.record ~dir ~fingerprint:rt.fp ~path
            with Sys_error _ -> ())
        | _ -> ())
      !rts
  in
  Fun.protect ~finally (fun () ->
      List.iter
        (fun cell ->
          rts :=
            setup cell ~progress:(progress_of cell.Runcell.spec) :: !rts)
        cells;
      let rts_in_order = List.rev !rts in
      (* Aggregate counters across the whole matrix. *)
      let agg_classes_total =
        List.fold_left (fun a rt -> a + rt.plan.Shard.classes_total) 0
          rts_in_order
      in
      let agg_shards_total =
        List.fold_left
          (fun a rt -> a + Array.length rt.plan.Shard.shards)
          0 rts_in_order
      in
      let agg_resumed =
        List.fold_left (fun a rt -> a + rt.resumed_classes) 0 rts_in_order
      in
      let agg_tally = Outcome.tally_create () in
      List.iter
        (fun rt -> Outcome.tally_merge ~into:agg_tally rt.tally)
        rts_in_order;
      let agg_classes_done = ref agg_resumed in
      let agg_shards_done =
        ref (List.fold_left (fun a rt -> a + rt.resumed_shards) 0 rts_in_order)
      in
      let t0 = Unix.gettimeofday () in
      let mu = Mutex.create () in
      let emit_observe () =
        observe
          (Progress.make ~classes_done:!agg_classes_done
             ~classes_total:agg_classes_total ~shards_done:!agg_shards_done
             ~shards_total:agg_shards_total ~resumed_classes:agg_resumed
             ~elapsed:(Unix.gettimeofday () -. t0)
             ~tally:agg_tally)
      in
      List.iter
        (fun rt ->
          if rt.resumed_classes > 0 then
            rt.progress ~done_:rt.resumed_classes
              ~total:rt.plan.Shard.classes_total ~tally:rt.tally)
        rts_in_order;
      emit_observe ();

      (* -------------------------------------------------------------- *)
      (* Domains backend: one shared pool over every pending shard of
         every cell; tasks are claimed in cell order, so workers drain
         cell 1 first but spill into cell 2 as soon as slots free up —
         no back-to-back barrier between cells. *)
      (* -------------------------------------------------------------- *)
      let conduct_domains () =
        let pending =
          Array.of_list
            (List.concat_map
               (fun rt ->
                 List.filter_map
                   (fun (s : Shard.t) ->
                     if rt.shard_done.(s.Shard.id) then None else Some (rt, s))
                   (Array.to_list rt.plan.Shard.shards))
               rts_in_order)
        in
        let conduct_shard (rt, (shard : Shard.t)) =
          let buf =
            Runcell.conduct_shard rt.cell ~classes:rt.classes ~plan:rt.plan
              shard ~on_class:(fun ~class_index chars ->
                for bit = 0 to 7 do
                  match Outcome.of_char chars.[bit] with
                  | Some o -> rt.outcomes.((class_index * 8) + bit) <- o
                  | None -> assert false
                done;
                Mutex.protect mu (fun () ->
                    String.iter
                      (fun ch ->
                        match Outcome.of_char ch with
                        | Some o ->
                            Outcome.tally_add rt.tally o;
                            Outcome.tally_add agg_tally o
                        | None -> assert false)
                      chars;
                    rt.classes_done <- rt.classes_done + 1;
                    incr agg_classes_done;
                    rt.progress ~done_:rt.classes_done
                      ~total:rt.plan.Shard.classes_total ~tally:rt.tally;
                    emit_observe ()))
          in
          Mutex.protect mu (fun () ->
              (match rt.writer with
              | Some w -> Journal.append w (Runcell.record_payload shard buf)
              | None -> ());
              rt.shard_done.(shard.Shard.id) <- true;
              rt.shards_done <- rt.shards_done + 1;
              incr agg_shards_done;
              emit_observe ())
        in
        Pool.run ~jobs ~tasks:(Array.length pending) (fun i ->
            conduct_shard pending.(i))
      in

      (* -------------------------------------------------------------- *)
      (* Processes backend: fork/exec'd workers, one journal segment
         each, merged into the campaign journal as doorbells arrive.
         Cells run one after another (each gets the full worker count);
         a dead or corrupt worker is recorded and reported after every
         cell has been driven as far as it will go, so the journals hold
         maximal progress for --resume. *)
      (* -------------------------------------------------------------- *)
      let apply_shard_live rt (shard : Shard.t) outs =
        let n = Shard.classes_in shard in
        for k = 0 to n - 1 do
          let class_index = rt.plan.Shard.order.(shard.Shard.lo + k) in
          for bit = 0 to 7 do
            match Outcome.of_char outs.[(8 * k) + bit] with
            | Some o ->
                rt.outcomes.((class_index * 8) + bit) <- o;
                Outcome.tally_add rt.tally o;
                Outcome.tally_add agg_tally o
            | None ->
                mismatch "segment record for shard %d holds invalid outcome %C"
                  shard.Shard.id
                  outs.[(8 * k) + bit]
          done;
          rt.classes_done <- rt.classes_done + 1;
          incr agg_classes_done;
          rt.progress ~done_:rt.classes_done ~total:rt.plan.Shard.classes_total
            ~tally:rt.tally
        done;
        (match rt.writer with
        | Some w ->
            Journal.append w
              (Runcell.record_payload shard (Bytes.of_string outs))
        | None -> ());
        rt.shard_done.(shard.Shard.id) <- true;
        rt.shards_done <- rt.shards_done + 1;
        incr agg_shards_done;
        emit_observe ()
      in
      let merge_line t line =
        if t.corrupt = None then
          match Journal.decode_line line with
          | None ->
              t.corrupt <-
                Some
                  (Printf.sprintf "wrote a CRC-invalid segment line in %s"
                     (Worker.segment t.child))
          | Some payload ->
              if not t.header_ok then (
                match Worker.segment_fingerprint payload with
                | Some fp when fp = t.t_rt.fp -> t.header_ok <- true
                | Some _ ->
                    t.corrupt <-
                      Some "wrote a segment for a different campaign"
                | None -> t.corrupt <- Some "wrote a malformed segment header")
              else
                match Runcell.parse_record t.t_rt.plan payload with
                | None -> t.corrupt <- Some "wrote a malformed segment record"
                | Some (shard, outs) ->
                    if not t.t_rt.shard_done.(shard.Shard.id) then
                      apply_shard_live t.t_rt shard outs
      in
      (* Tail the segment from the last read position; complete lines are
         merged, a trailing partial line (torn tail) stays pending. *)
      let drain t =
        (match t.seg_fd with
        | None -> (
            try
              t.seg_fd <-
                Some (Unix.openfile (Worker.segment t.child) [ Unix.O_RDONLY ] 0)
            with Unix.Unix_error _ -> ())
        | Some _ -> ());
        match t.seg_fd with
        | None -> ()
        | Some fd ->
            let chunk = Bytes.create 65536 in
            let data = Buffer.create 256 in
            Buffer.add_string data t.seg_pending;
            let continue = ref true in
            while !continue do
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> continue := false
              | n -> Buffer.add_subbytes data chunk 0 n
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done;
            let text = Buffer.contents data in
            let len = String.length text in
            let start = ref 0 in
            let stop = ref false in
            while not !stop do
              match String.index_from_opt text !start '\n' with
              | None ->
                  t.seg_pending <- String.sub text !start (len - !start);
                  stop := true
              | Some nl ->
                  merge_line t (String.sub text !start (nl - !start));
                  start := nl + 1
            done
      in
      let verdict t failures =
        let rt = t.t_rt in
        let unfinished =
          List.filter
            (fun id -> not rt.shard_done.(id))
            (Array.to_list (Worker.assigned t.child))
        in
        let fail reason =
          failures :=
            Printf.sprintf "%s: worker %d (pid %d) %s%s"
              (Spec.label rt.cell.Runcell.spec)
              (Worker.index t.child) (Worker.pid t.child) reason
              (match unfinished with
              | [] -> ""
              | ids ->
                  Printf.sprintf
                    "; shard%s %s unfinished — run again with --resume to \
                     replay"
                    (if List.length ids > 1 then "s" else "")
                    (String.concat "," (List.map string_of_int ids)))
            :: !failures
        in
        (match (t.corrupt, t.status, unfinished) with
        | Some c, _, _ -> fail c
        | None, Some (Unix.WEXITED 0), [] -> ()
        | None, Some (Unix.WEXITED 0), _ :: _ ->
            fail "exited 0 with unfinished shards"
        | None, Some (Unix.WEXITED n), _ ->
            fail (Printf.sprintf "exited with code %d" n)
        | None, Some (Unix.WSIGNALED s), _ ->
            fail (Printf.sprintf "was killed by %s" (signal_name s))
        | None, Some (Unix.WSTOPPED s), _ ->
            fail (Printf.sprintf "stopped by %s" (signal_name s))
        | None, None, _ -> fail "was never reaped");
        (* Everything merged lives in the campaign journal (when there is
           one); the segment is scratch.  Keep it only as corruption
           evidence. *)
        if t.corrupt = None then
          try Sys.remove (Worker.segment t.child) with Sys_error _ -> ()
      in
      let run_cell_processes rt failures =
        let pending_ids =
          Array.of_list
            (List.filter_map
               (fun (s : Shard.t) ->
                 if rt.shard_done.(s.Shard.id) then None else Some s.Shard.id)
               (Array.to_list rt.plan.Shard.shards))
        in
        let n = Array.length pending_ids in
        if n > 0 then begin
          let workers = min jobs n in
          let seg_path i =
            match rt.journal_path with
            | Some p -> Printf.sprintf "%s.seg%d" p i
            | None -> Filename.temp_file "fi-segment" ".journal"
          in
          let tracked =
            List.init workers (fun i ->
                let lo = i * n / workers and hi = (i + 1) * n / workers in
                let job =
                  {
                    Worker.spec = rt.cell.Runcell.spec;
                    fingerprint = rt.fp;
                    shard_ids = Array.sub pending_ids lo (hi - lo);
                    segment = seg_path i;
                    index = i;
                  }
                in
                {
                  child = Worker.spawn job;
                  t_rt = rt;
                  seg_fd = None;
                  seg_pending = "";
                  header_ok = false;
                  corrupt = None;
                  eof = false;
                  status = None;
                })
          in
          let buf = Bytes.create 4096 in
          let live () = List.filter (fun t -> not t.eof) tracked in
          let rec supervise () =
            match live () with
            | [] -> ()
            | alive ->
                let fds = List.map (fun t -> Worker.status_fd t.child) alive in
                let readable, _, _ =
                  try Unix.select fds [] [] 0.5
                  with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
                in
                List.iter
                  (fun t ->
                    let fd = Worker.status_fd t.child in
                    if List.mem fd readable then
                      let k =
                        try Unix.read fd buf 0 (Bytes.length buf)
                        with Unix.Unix_error _ -> 0
                      in
                      if k = 0 then begin
                        t.eof <- true;
                        t.status <- Some (Worker.wait t.child);
                        try Unix.close fd with Unix.Unix_error _ -> ()
                      end)
                  alive;
                (* Merge whatever the doorbells (or deaths) made visible. *)
                List.iter drain tracked;
                supervise ()
          in
          supervise ();
          List.iter drain tracked;
          List.iter
            (fun t ->
              match t.seg_fd with
              | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
              | None -> ())
            tracked;
          List.iter (fun t -> verdict t failures) tracked
        end
      in
      let conduct_processes () =
        let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
        let failures = ref [] in
        Fun.protect
          ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev)
          (fun () ->
            List.iter (fun rt -> run_cell_processes rt failures) rts_in_order);
        match List.rev !failures with
        | [] -> ()
        | fs -> raise (Worker_failed (String.concat "\n" fs))
      in

      (match backend with
      | Pool.Domains -> conduct_domains ()
      | Pool.Processes -> conduct_processes ());

      List.map
        (fun rt ->
          assert (Array.for_all Fun.id rt.shard_done);
          let total = rt.plan.Shard.classes_total in
          (* Deterministic merge: identical construction to the serial
             conductors. *)
          let experiments =
            Array.init (8 * total) (fun idx ->
                let c = rt.classes.(idx / 8) in
                {
                  Scan.byte = c.Defuse.byte;
                  t_start = c.Defuse.t_start;
                  t_end = c.Defuse.t_end;
                  bit_in_byte = idx mod 8;
                  outcome = rt.outcomes.(idx);
                })
          in
          {
            Scan.name = rt.cell.Runcell.golden.Golden.program.Program.name;
            variant = rt.cell.Runcell.spec.Spec.variant;
            cycles = rt.cell.Runcell.golden.Golden.cycles;
            ram_bytes = rt.cell.Runcell.ram_bytes;
            experiments;
            benign_weight =
              Defuse.known_benign_weight rt.cell.Runcell.defuse;
          })
        rts_in_order)

let run_spec ?backend ?jobs ?progress ?observe spec =
  match
    run_matrix ?backend ?jobs
      ?progress:(Option.map (fun p _ -> p) progress)
      ?observe [ spec ]
  with
  | [ scan ] -> scan
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Compatibility wrapper: the PR-1 single-campaign entry point         *)
(* ------------------------------------------------------------------ *)

let run ?(variant = "baseline") ?backend ?jobs ?shard_size ?journal
    ?(resume = false) ?progress ?observe golden =
  if resume && journal = None then
    invalid_arg "Engine.run: ~resume requires ~journal";
  let policy = { Spec.default_policy with shard_size; journal; resume } in
  run_spec ?backend ?jobs ?progress ?observe
    (Spec.of_golden ~variant ~policy golden)
