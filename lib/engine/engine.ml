exception Journal_mismatch of string

let mismatch fmt = Printf.ksprintf (fun s -> raise (Journal_mismatch s)) fmt

(* ------------------------------------------------------------------ *)
(* Analysed cells                                                     *)
(* ------------------------------------------------------------------ *)

(* A spec resolved to everything the scheduler needs: the session base
   (golden run), the fault-space partition, and the per-experiment
   conductor of its space. *)
type cell = {
  spec : Spec.t;
  golden : Golden.t;
  defuse : Defuse.t;
  ram_bytes : int;
  conduct : Injector.session -> Defuse.byte_class -> bit_in_byte:int -> Outcome.t;
}

let memory_cell spec golden =
  {
    spec;
    golden;
    defuse = golden.Golden.defuse;
    ram_bytes = golden.Golden.program.Program.ram_size;
    conduct = Scan.conduct_class;
  }

let register_cell spec (r : Regspace.t) =
  {
    spec;
    golden = r.Regspace.golden;
    defuse = r.Regspace.reg_defuse;
    ram_bytes = Regspace.pseudo_ram_bytes;
    conduct = Regspace.conduct;
  }

let analyse (spec : Spec.t) =
  match (spec.Spec.space, spec.Spec.source) with
  | Spec.Memory, Spec.Analysed_memory golden -> memory_cell spec golden
  | Spec.Memory, Spec.Build build ->
      memory_cell spec (Golden.run ?limit:spec.Spec.limit (build ()))
  | Spec.Registers, Spec.Analysed_registers r -> register_cell spec r
  | Spec.Registers, Spec.Build build ->
      register_cell spec (Regspace.analyze ?limit:spec.Spec.limit (build ()))
  | Spec.Memory, Spec.Analysed_registers _
  | Spec.Registers, Spec.Analysed_memory _ ->
      invalid_arg "Engine: spec space contradicts its analysed source"

(* ------------------------------------------------------------------ *)
(* Campaign identity and journal payloads                             *)
(* ------------------------------------------------------------------ *)

let fingerprint_of ~space ~name ~cycles ~ram_bytes
    ~(classes : Defuse.byte_class array) ~(plan : Shard.plan) =
  let buf = Buffer.create (64 + (Array.length classes * 12)) in
  Buffer.add_string buf (Spec.space_tag space);
  Buffer.add_char buf '|';
  Buffer.add_string buf name;
  Buffer.add_string buf
    (Printf.sprintf "|%d|%d|%d|%s|" cycles ram_bytes plan.Shard.shard_size
       (Shard.sizing_tag plan.Shard.sizing));
  Array.iter
    (fun (c : Defuse.byte_class) ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d;" c.Defuse.byte c.Defuse.t_start
           c.Defuse.t_end))
    classes;
  Crc32.string (Buffer.contents buf)

let fingerprint_cell cell ~plan =
  fingerprint_of ~space:cell.spec.Spec.space
    ~name:cell.golden.Golden.program.Program.name ~cycles:cell.golden.Golden.cycles
    ~ram_bytes:cell.ram_bytes
    ~classes:(Defuse.experiment_classes cell.defuse)
    ~plan

let fingerprint golden ~(plan : Shard.plan) =
  fingerprint_of ~space:Spec.Memory ~name:golden.Golden.program.Program.name
    ~cycles:golden.Golden.cycles
    ~ram_bytes:golden.Golden.program.Program.ram_size
    ~classes:(Defuse.experiment_classes golden.Golden.defuse)
    ~plan

let plan_of_policy (policy : Spec.policy) classes =
  Shard.plan ?shard_size:policy.Spec.shard_size ~weighted:policy.Spec.weighted
    classes

let fingerprint_spec spec =
  let cell = analyse spec in
  let plan =
    plan_of_policy spec.Spec.policy (Defuse.experiment_classes cell.defuse)
  in
  fingerprint_cell cell ~plan

let header_payload cell ~(plan : Shard.plan) ~fp =
  Printf.sprintf
    "fi-engine v2 space=%s sizing=%s cycles=%d ram_bytes=%d classes=%d \
     shard_size=%d shards=%d fingerprint=%s name=%s"
    (Spec.space_tag cell.spec.Spec.space)
    (Shard.sizing_tag plan.Shard.sizing)
    cell.golden.Golden.cycles cell.ram_bytes plan.Shard.classes_total
    plan.Shard.shard_size
    (Array.length plan.Shard.shards)
    (Crc32.to_hex fp) cell.golden.Golden.program.Program.name

let record_payload (shard : Shard.t) outcomes_buf =
  Printf.sprintf "shard=%d outcomes=%s" shard.Shard.id
    (Bytes.to_string outcomes_buf)

let parse_record (plan : Shard.plan) payload =
  match String.index_opt payload ' ' with
  | Some sp when String.length payload > 15 && String.sub payload 0 6 = "shard=" -> (
      let id = int_of_string_opt (String.sub payload 6 (sp - 6)) in
      let rest = String.sub payload (sp + 1) (String.length payload - sp - 1) in
      if String.length rest < 9 || String.sub rest 0 9 <> "outcomes=" then None
      else
        let outs = String.sub rest 9 (String.length rest - 9) in
        match id with
        | Some id when id >= 0 && id < Array.length plan.Shard.shards ->
            let shard = plan.Shard.shards.(id) in
            if String.length outs <> 8 * Shard.classes_in shard then None
            else Some (shard, outs)
        | Some _ | None -> None)
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Journal resolution (explicit path or catalogue)                    *)
(* ------------------------------------------------------------------ *)

let resolve_journal ~fingerprint (policy : Spec.policy) =
  match policy.Spec.journal with
  | Some path -> Some path
  | None -> (
      match policy.Spec.catalogue with
      | None -> None
      | Some dir ->
          Catalog.ensure_dir dir;
          if policy.Spec.resume then
            Some
              (match Catalog.lookup ~dir ~fingerprint with
              | Some path -> path
              | None -> Catalog.journal_path ~dir ~fingerprint)
          else Some (Catalog.journal_path ~dir ~fingerprint))

(* ------------------------------------------------------------------ *)
(* Per-cell runtime state                                             *)
(* ------------------------------------------------------------------ *)

type runtime = {
  cell : cell;
  classes : Defuse.byte_class array;
  plan : Shard.plan;
  fp : int;
  outcomes : Outcome.t array;
  shard_done : bool array;
  tally : Outcome.tally;
  progress : Scan.progress;
  journal_path : string option;
  mutable writer : Journal.writer option;
  resumed_classes : int;
  resumed_shards : int;
  mutable classes_done : int;
  mutable shards_done : int;
}

let setup cell ~progress =
  let classes = Defuse.experiment_classes cell.defuse in
  let policy = cell.spec.Spec.policy in
  let plan = plan_of_policy policy classes in
  let fp = fingerprint_cell cell ~plan in
  let header = header_payload cell ~plan ~fp in
  let total = plan.Shard.classes_total in
  let outcomes = Array.make (8 * total) Outcome.No_effect in
  let shard_done = Array.make (Array.length plan.Shard.shards) false in
  let tally = Outcome.tally_create () in
  let apply_record (shard : Shard.t) outs =
    for k = 0 to Shard.classes_in shard - 1 do
      let class_index = plan.Shard.order.(shard.Shard.lo + k) in
      for bit = 0 to 7 do
        match Outcome.of_char outs.[(8 * k) + bit] with
        | Some o ->
            outcomes.((class_index * 8) + bit) <- o;
            Outcome.tally_add tally o
        | None ->
            mismatch "journal record for shard %d holds invalid outcome %C"
              shard.Shard.id
              outs.[(8 * k) + bit]
      done
    done
  in
  let journal_path = resolve_journal ~fingerprint:fp policy in
  let writer =
    match journal_path with
    | None -> None
    | Some path ->
        let fresh () = Some (Journal.create path ~header) in
        if not policy.Spec.resume then fresh ()
        else (
          match Journal.open_resume path with
          | None -> fresh ()
          | Some (w, hdr, records) ->
              if hdr <> header then begin
                Journal.close w;
                mismatch
                  "journal %s belongs to a different campaign\n\
                  \  journal: %s\n\
                  \  current: %s"
                  path hdr header
              end;
              List.iter
                (fun r ->
                  match parse_record plan r with
                  | Some (shard, outs) when not shard_done.(shard.Shard.id) ->
                      apply_record shard outs;
                      shard_done.(shard.Shard.id) <- true
                  | Some (shard, _) ->
                      mismatch "journal has duplicate record for shard %d"
                        shard.Shard.id
                  | None -> mismatch "journal has malformed record %S" r)
                records;
              Some w)
  in
  let resumed_classes =
    Array.fold_left
      (fun acc (s : Shard.t) ->
        if shard_done.(s.Shard.id) then acc + Shard.classes_in s else acc)
      0 plan.Shard.shards
  in
  let resumed_shards =
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 shard_done
  in
  {
    cell;
    classes;
    plan;
    fp;
    outcomes;
    shard_done;
    tally;
    progress;
    journal_path;
    writer;
    resumed_classes;
    resumed_shards;
    classes_done = resumed_classes;
    shards_done = resumed_shards;
  }

(* ------------------------------------------------------------------ *)
(* The matrix scheduler                                               *)
(* ------------------------------------------------------------------ *)

let run_matrix ?jobs ?progress ?(observe = fun _ -> ()) specs =
  let jobs =
    match jobs with
    | None -> Pool.default_jobs ()
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Printf.sprintf "Engine.run: jobs %d" j)
  in
  let progress_of =
    match progress with None -> fun _ -> Scan.no_progress | Some p -> p
  in
  List.iter
    (fun (s : Spec.t) ->
      let p = s.Spec.policy in
      if p.Spec.resume && p.Spec.journal = None && p.Spec.catalogue = None then
        invalid_arg "Engine.run: ~resume requires ~journal")
    specs;
  let cells = List.map analyse specs in
  let rts = ref [] in
  let finally () =
    List.iter
      (fun rt ->
        Option.iter Journal.close rt.writer;
        match (rt.journal_path, rt.cell.spec.Spec.policy.Spec.catalogue) with
        | Some path, Some dir -> (
            try Catalog.record ~dir ~fingerprint:rt.fp ~path
            with Sys_error _ -> ())
        | _ -> ())
      !rts
  in
  Fun.protect ~finally (fun () ->
      List.iter
        (fun cell ->
          rts := setup cell ~progress:(progress_of cell.spec) :: !rts)
        cells;
      let rts_in_order = List.rev !rts in
      (* Aggregate counters across the whole matrix. *)
      let agg_classes_total =
        List.fold_left (fun a rt -> a + rt.plan.Shard.classes_total) 0
          rts_in_order
      in
      let agg_shards_total =
        List.fold_left
          (fun a rt -> a + Array.length rt.plan.Shard.shards)
          0 rts_in_order
      in
      let agg_resumed =
        List.fold_left (fun a rt -> a + rt.resumed_classes) 0 rts_in_order
      in
      let agg_tally = Outcome.tally_create () in
      List.iter
        (fun rt -> Outcome.tally_merge ~into:agg_tally rt.tally)
        rts_in_order;
      let agg_classes_done = ref agg_resumed in
      let agg_shards_done =
        ref (List.fold_left (fun a rt -> a + rt.resumed_shards) 0 rts_in_order)
      in
      let t0 = Unix.gettimeofday () in
      let mu = Mutex.create () in
      let emit_observe () =
        observe
          (Progress.make ~classes_done:!agg_classes_done
             ~classes_total:agg_classes_total ~shards_done:!agg_shards_done
             ~shards_total:agg_shards_total ~resumed_classes:agg_resumed
             ~elapsed:(Unix.gettimeofday () -. t0)
             ~tally:agg_tally)
      in
      List.iter
        (fun rt ->
          if rt.resumed_classes > 0 then
            rt.progress ~done_:rt.resumed_classes
              ~total:rt.plan.Shard.classes_total ~tally:rt.tally)
        rts_in_order;
      emit_observe ();
      (* One shared pool over every pending shard of every cell; tasks
         are claimed in cell order, so workers drain cell 1 first but
         spill into cell 2 as soon as slots free up — no back-to-back
         barrier between cells. *)
      let pending =
        Array.of_list
          (List.concat_map
             (fun rt ->
               List.filter_map
                 (fun (s : Shard.t) ->
                   if rt.shard_done.(s.Shard.id) then None else Some (rt, s))
                 (Array.to_list rt.plan.Shard.shards))
             rts_in_order)
      in
      let conduct_shard (rt, (shard : Shard.t)) =
        let session = Injector.session rt.cell.golden in
        let n = Shard.classes_in shard in
        let buf = Bytes.create (8 * n) in
        for k = 0 to n - 1 do
          let class_index = rt.plan.Shard.order.(shard.Shard.lo + k) in
          let c = rt.classes.(class_index) in
          for bit_in_byte = 0 to 7 do
            let o = rt.cell.conduct session c ~bit_in_byte in
            rt.outcomes.((class_index * 8) + bit_in_byte) <- o;
            Bytes.set buf ((8 * k) + bit_in_byte) (Outcome.to_char o)
          done;
          Mutex.protect mu (fun () ->
              for bit = 0 to 7 do
                match Outcome.of_char (Bytes.get buf ((8 * k) + bit)) with
                | Some o ->
                    Outcome.tally_add rt.tally o;
                    Outcome.tally_add agg_tally o
                | None -> assert false
              done;
              rt.classes_done <- rt.classes_done + 1;
              incr agg_classes_done;
              rt.progress ~done_:rt.classes_done
                ~total:rt.plan.Shard.classes_total ~tally:rt.tally;
              emit_observe ())
        done;
        Mutex.protect mu (fun () ->
            (match rt.writer with
            | Some w -> Journal.append w (record_payload shard buf)
            | None -> ());
            rt.shard_done.(shard.Shard.id) <- true;
            rt.shards_done <- rt.shards_done + 1;
            incr agg_shards_done;
            emit_observe ())
      in
      Pool.run ~jobs ~tasks:(Array.length pending) (fun i ->
          conduct_shard pending.(i));
      List.map
        (fun rt ->
          assert (Array.for_all Fun.id rt.shard_done);
          let total = rt.plan.Shard.classes_total in
          (* Deterministic merge: identical construction to the serial
             conductors. *)
          let experiments =
            Array.init (8 * total) (fun idx ->
                let c = rt.classes.(idx / 8) in
                {
                  Scan.byte = c.Defuse.byte;
                  t_start = c.Defuse.t_start;
                  t_end = c.Defuse.t_end;
                  bit_in_byte = idx mod 8;
                  outcome = rt.outcomes.(idx);
                })
          in
          {
            Scan.name = rt.cell.golden.Golden.program.Program.name;
            variant = rt.cell.spec.Spec.variant;
            cycles = rt.cell.golden.Golden.cycles;
            ram_bytes = rt.cell.ram_bytes;
            experiments;
            benign_weight = Defuse.known_benign_weight rt.cell.defuse;
          })
        rts_in_order)

let run_spec ?jobs ?progress ?observe spec =
  match
    run_matrix ?jobs
      ?progress:(Option.map (fun p _ -> p) progress)
      ?observe [ spec ]
  with
  | [ scan ] -> scan
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Compatibility wrapper: the PR-1 single-campaign entry point         *)
(* ------------------------------------------------------------------ *)

let run ?(variant = "baseline") ?jobs ?shard_size ?journal ?(resume = false)
    ?progress ?observe golden =
  if resume && journal = None then
    invalid_arg "Engine.run: ~resume requires ~journal";
  let policy = { Spec.default_policy with shard_size; journal; resume } in
  run_spec ?jobs ?progress ?observe (Spec.of_golden ~variant ~policy golden)
