exception Journal_mismatch = Runcell.Journal_mismatch

exception Worker_failed of string

let mismatch = Runcell.mismatch

(* ------------------------------------------------------------------ *)
(* Campaign identity (public API; the definitions live in Runcell)     *)
(* ------------------------------------------------------------------ *)

let fingerprint golden ~(plan : Shard.plan) =
  Runcell.fingerprint_of ~tag:(Faultspace.tag Faultspace.Bitflip_mem)
    ~name:golden.Golden.program.Program.name ~cycles:golden.Golden.cycles
    ~ram_bytes:golden.Golden.program.Program.ram_size
    ~classes:(Defuse.experiment_classes golden.Golden.defuse)
    ~plan

let fingerprint_spec spec =
  let cell = Runcell.analyse spec in
  let plan =
    Runcell.plan_of_policy spec.Spec.policy cell.Runcell.classes
  in
  Runcell.fingerprint_cell cell ~plan

(* ------------------------------------------------------------------ *)
(* Results (scan + quarantine report)                                 *)
(* ------------------------------------------------------------------ *)

type quarantined = {
  q_cell : string;
  q_shard : int;
  q_classes : int;
  q_class_indices : int array;
  q_attempts : int;
  q_cause : string;
}

type result = {
  scan : Scan.t;
  quarantined : quarantined list;
  cached : bool;  (** Served from the result store — zero shards executed. *)
}

(* ------------------------------------------------------------------ *)
(* Journal resolution (explicit path or catalogue)                    *)
(* ------------------------------------------------------------------ *)

let resolve_journal ~fingerprint (policy : Spec.policy) =
  match policy.Spec.durability.Spec.journal with
  | Some path -> Some path
  | None -> (
      match policy.Spec.durability.Spec.catalogue with
      | None -> None
      | Some dir ->
          Catalog.ensure_dir dir;
          if policy.Spec.durability.Spec.resume then
            Some
              (match Catalog.lookup ~dir ~fingerprint with
              | Some path -> path
              | None -> Catalog.journal_path ~dir ~fingerprint)
          else Some (Catalog.journal_path ~dir ~fingerprint))

(* ------------------------------------------------------------------ *)
(* Per-cell runtime state                                             *)
(* ------------------------------------------------------------------ *)

type runtime = {
  cell : Runcell.cell;
  classes : Defuse.byte_class array;
  plan : Shard.plan;
  fp : int;
  outcomes : Outcome.t array;
  shard_done : bool array;
  retries : int array;  (** Retry attempts burned, per shard. *)
  quarantined : bool array;
  mutable q_info : (int * int * string) list;  (** Newest first. *)
  tally : Outcome.tally;
  progress : Scan.progress;
  journal_path : string option;
  mutable writer : Journal.writer option;
  resumed_classes : int;
  resumed_shards : int;
  mutable classes_done : int;
  mutable shards_done : int;
  cache_key : string option;  (** {!Cache.cell_key}, when caching is on. *)
  from_cache : bool;  (** Whole cell replayed from the result store. *)
}

let setup cell ~progress =
  let classes = cell.Runcell.classes in
  let policy = cell.Runcell.spec.Spec.policy in
  let plan = Runcell.plan_of_policy policy classes in
  let fp = Runcell.fingerprint_cell cell ~plan in
  let header = Runcell.header_payload cell ~plan ~fp in
  let total = plan.Shard.classes_total in
  let outcomes = Array.make (8 * total) Outcome.No_effect in
  let shard_done = Array.make (Array.length plan.Shard.shards) false in
  let retries = Array.make (Array.length plan.Shard.shards) 0 in
  let tally = Outcome.tally_create () in
  let apply_record (shard : Shard.t) outs =
    for k = 0 to Shard.classes_in shard - 1 do
      let class_index = plan.Shard.order.(shard.Shard.lo + k) in
      for bit = 0 to 7 do
        match Outcome.of_char outs.[(8 * k) + bit] with
        | Some o ->
            outcomes.((class_index * 8) + bit) <- o;
            Outcome.tally_add tally o
        | None ->
            mismatch "journal record for shard %d holds invalid outcome %C"
              shard.Shard.id
              outs.[(8 * k) + bit]
      done
    done
  in
  (* --------------------------------------------------------------- *)
  (* Result-store consult.  The cell key fingerprints everything that
     determines results (program image × fault space × plan-shaping
     policy); a published journal under that key replays through the
     same parse/apply path a --resume uses, so a hit is bit-identical
     to a fresh run and costs zero shard executions.  Anything short
     of a complete, header-matching, every-shard-covered journal is
     treated as a miss — in particular a quarantine-degraded journal,
     which lacks records for its quarantined shards. *)
  (* --------------------------------------------------------------- *)
  let cache_key =
    match policy.Spec.acceleration.Spec.cache with
    | None -> None
    | Some _ ->
        let image =
          Digest.to_hex
            (Digest.string
               (Marshal.to_string cell.Runcell.golden.Golden.program []))
        in
        Some
          (Cache.cell_key ~image
             ~space:(Faultspace.tag cell.Runcell.spec.Spec.model)
             ~limit:cell.Runcell.spec.Spec.limit
             ~shard_size:policy.Spec.sharding.Spec.shard_size ~weighted:policy.Spec.sharding.Spec.weighted)
  in
  let cached_records =
    match (policy.Spec.acceleration.Spec.cache, cache_key) with
    | Some dir, Some key -> (
        match Cache.lookup ~dir key with
        | Some e when e.Cache.fingerprint = fp -> (
            match Journal.replay e.Cache.path with
            | Some (hdr, records, Journal.Clean) when hdr = header ->
                Some records
            | Some _ | None | (exception Sys_error _) -> None)
        | Some _ | None -> None)
    | _ -> None
  in
  let from_cache =
    match cached_records with
    | None -> false
    | Some records -> (
        (* Validate before touching any state: every shard covered
           exactly once by a well-formed record with sane outcome
           characters.  Validation failure is a miss, never an error —
           the run falls through to conducting normally. *)
        let exception Unservable in
        match
          let seen = Array.make (Array.length plan.Shard.shards) false in
          let parsed =
            List.filter_map
              (fun r ->
                if Runcell.parse_supervision r <> None then None
                else
                  match Runcell.parse_record plan r with
                  | Some ((shard : Shard.t), outs) ->
                      if
                        seen.(shard.Shard.id)
                        || not
                             (String.for_all
                                (fun c -> Outcome.of_char c <> None)
                                outs)
                      then raise Unservable;
                      seen.(shard.Shard.id) <- true;
                      Some (shard, outs)
                  | None -> raise Unservable)
              records
          in
          if not (Array.for_all Fun.id seen) then raise Unservable;
          parsed
        with
        | parsed ->
            List.iter
              (fun ((shard : Shard.t), outs) ->
                apply_record shard outs;
                shard_done.(shard.Shard.id) <- true)
              parsed;
            true
        | exception Unservable -> false)
  in
  let journal_path =
    if from_cache then None else resolve_journal ~fingerprint:fp policy
  in
  let writer =
    match journal_path with
    | None -> None
    | Some path ->
        let fresh () = Some (Journal.create path ~header) in
        if not policy.Spec.durability.Spec.resume then fresh ()
        else (
          match Journal.replay path with
          | Some (_, _, Journal.Corrupt_record { line }) ->
              mismatch
                "journal %s: CRC-invalid record at line %d — refusing to \
                 resume a corrupt journal (a crash leaves a torn tail, not \
                 mid-file corruption); delete it to re-run from scratch"
                path line
          | Some _ | None -> (
              match Journal.open_resume path with
              | None -> fresh ()
              | Some (w, hdr, records) ->
                  if hdr <> header then begin
                    Journal.close w;
                    mismatch
                      "journal %s belongs to a different campaign\n\
                      \  journal: %s\n\
                      \  current: %s"
                      path hdr header
                  end;
                  List.iter
                    (fun r ->
                      match Runcell.parse_supervision r with
                      | Some (Runcell.Retry { shard; attempt; _ }) ->
                          (* Resume composes with retry accounting: the
                             budget a shard burned before the crash stays
                             burned. *)
                          if shard >= 0 && shard < Array.length retries then
                            retries.(shard) <- max retries.(shard) attempt
                      | Some (Runcell.Quarantine _) ->
                          (* Informational: a resumed campaign gives the
                             shard a fresh dispatch (its burned retries
                             above still count). *)
                          ()
                      | None -> (
                          match Runcell.parse_record plan r with
                          | Some (shard, outs)
                            when not shard_done.(shard.Shard.id) ->
                              apply_record shard outs;
                              shard_done.(shard.Shard.id) <- true
                          | Some (shard, _) ->
                              mismatch
                                "journal has duplicate record for shard %d"
                                shard.Shard.id
                          | None -> mismatch "journal has malformed record %S" r))
                    records;
                  Some w))
  in
  let resumed_classes =
    Array.fold_left
      (fun acc (s : Shard.t) ->
        if shard_done.(s.Shard.id) then acc + Shard.classes_in s else acc)
      0 plan.Shard.shards
  in
  let resumed_shards =
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 shard_done
  in
  {
    cell;
    classes;
    plan;
    fp;
    outcomes;
    shard_done;
    retries;
    quarantined = Array.make (Array.length plan.Shard.shards) false;
    q_info = [];
    tally;
    progress;
    journal_path;
    writer;
    resumed_classes;
    resumed_shards;
    classes_done = resumed_classes;
    shards_done = resumed_shards;
    cache_key;
    from_cache;
  }

(* ------------------------------------------------------------------ *)
(* Worker-backend supervision state (Processes and Sockets)           *)
(* ------------------------------------------------------------------ *)

(* How a cell's shards reach their workers: the fork/exec backend with
   a total seat count, or the sockets backend with one seat cap per
   probed daemon host. *)
type cell_mode =
  | Local_processes of int
  | Remote_hosts of (Addr.t * int) array

(* The supervisor's handle on one spawned worker.  [Piped] is a local
   fork/exec child (doorbell pipe + journal segment).  [Netted] is a
   connection to a remote daemon's worker: the same two streams arrive
   re-framed ([Door] and [Seg] frames), and tearing the connection down
   replaces SIGKILL.  [Stillborn] is a dispatch that never produced a
   worker (connect or handshake failure): it settles through the
   ordinary supervision path, so refusals and dead hosts earn retries,
   backoff and quarantine exactly like any other worker death. *)
type link =
  | Piped of Worker.child
  | Netted of Remote.client
  | Stillborn of { sb_index : int; sb_assigned : int array; sb_peer : string }

let link_assigned = function
  | Piped c -> Worker.assigned c
  | Netted (c : Remote.client) -> c.Remote.assigned
  | Stillborn s -> s.sb_assigned

let link_who = function
  | Piped c ->
      Printf.sprintf "worker %d (pid %d)" (Worker.index c) (Worker.pid c)
  | Netted c ->
      Printf.sprintf "remote worker %d (%s)" c.Remote.index
        (Transport.peer c.Remote.conn)
  | Stillborn s -> Printf.sprintf "remote worker %d (%s)" s.sb_index s.sb_peer

(* One record per spawned worker: its event stream, heartbeat clocks,
   the read cursor into its journal segment (local workers), and what
   became of it. *)
type tracked = {
  link : link;
  t_rt : runtime;
  spawned_at : float;
  mutable last_beat : float;  (** Last doorbell activity seen. *)
  mutable last_progress : float;  (** Last [s]/[end] doorbell line. *)
  mutable st_pending : string;  (** Partial trailing doorbell line. *)
  mutable seg_fd : Unix.file_descr option;
  mutable seg_pending : string;  (** Partial trailing segment line. *)
  mutable header_ok : bool;
  mutable corrupt : string option;
  mutable killed : string option;  (** Supervisor teardown reason. *)
  mutable remote_err : string option;  (** [Err] frame / frame corruption. *)
  mutable eof : bool;
  mutable status : Unix.process_status option;
  mutable settled : bool;
}

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else Printf.sprintf "signal %d" s

(* Protocol lines on the doorbell (pipe lines or [Door] frames): [h] is
   a heartbeat, [s <id>] and [end] are shard progress (and count as
   beats too).  Anything else is stray stdout from the hosted binary's
   own initialisation (the worker is a re-exec of whatever executable
   embeds the engine) and must NOT count as a heartbeat — otherwise one
   banner line at startup makes a genuinely hung worker look merely
   stalled.  Distinguishing beats from progress is what separates a
   hung worker (silent) from a stalled one (chatty, but going
   nowhere). *)
let note_door_line t line now =
  if line = "end" || (String.length line >= 2 && String.sub line 0 2 = "s ")
  then begin
    t.last_beat <- now;
    t.last_progress <- now
  end
  else if line = "h" then t.last_beat <- now

let note_status_data t data now =
  let rec go = function
    | [] -> ()
    | [ tail ] -> t.st_pending <- tail
    | line :: rest ->
        note_door_line t line now;
        go rest
  in
  go (String.split_on_char '\n' (t.st_pending ^ data))

(* When supervision is on but no [--shard-timeout] was given and no
   shard has completed yet, this ceiling bounds the wait for the very
   first completion (otherwise a campaign whose every worker hangs at
   shard 0 would give the derived deadline nothing to derive from). *)
let bootstrap_deadline = 60.

(* ------------------------------------------------------------------ *)
(* The matrix scheduler                                               *)
(* ------------------------------------------------------------------ *)

let run_matrix_results ?(backend = Pool.Domains) ?jobs ?progress
    ?(observe = fun _ -> ()) ?(on_event = fun _ -> ()) ?secret specs =
  let jobs = Pool.resolve_jobs ~backend ?jobs () in
  let worker_hosts =
    match backend with
    | Pool.Sockets [] ->
        invalid_arg
          "Engine.run: the sockets backend needs at least one HOST:PORT \
           worker address (--workers)"
    | Pool.Sockets hosts -> List.map Addr.parse_exn hosts
    | Pool.Domains | Pool.Processes -> []
  in
  let progress_of =
    match progress with None -> fun _ -> Scan.no_progress | Some p -> p
  in
  List.iter
    (fun (s : Spec.t) ->
      let p = s.Spec.policy in
      if p.Spec.durability.Spec.resume && p.Spec.durability.Spec.journal = None && p.Spec.durability.Spec.catalogue = None then
        invalid_arg "Engine.run: ~resume requires ~journal")
    specs;
  let cells = List.map Runcell.analyse specs in
  let rts = ref [] in
  let finally () =
    List.iter
      (fun rt ->
        Option.iter Journal.close rt.writer;
        match
          (rt.journal_path, rt.cell.Runcell.spec.Spec.policy.Spec.durability.Spec.catalogue)
        with
        | Some path, Some dir -> (
            try Catalog.record ~dir ~fingerprint:rt.fp ~path
            with Sys_error _ -> ())
        | _ -> ())
      !rts
  in
  Fun.protect ~finally (fun () ->
      List.iter
        (fun cell ->
          rts :=
            setup cell ~progress:(progress_of cell.Runcell.spec) :: !rts)
        cells;
      let rts_in_order = List.rev !rts in
      (* Aggregate counters across the whole matrix. *)
      let agg_classes_total =
        List.fold_left (fun a rt -> a + rt.plan.Shard.classes_total) 0
          rts_in_order
      in
      let agg_shards_total =
        List.fold_left
          (fun a rt -> a + Array.length rt.plan.Shard.shards)
          0 rts_in_order
      in
      let agg_resumed =
        List.fold_left (fun a rt -> a + rt.resumed_classes) 0 rts_in_order
      in
      let agg_tally = Outcome.tally_create () in
      List.iter
        (fun rt -> Outcome.tally_merge ~into:agg_tally rt.tally)
        rts_in_order;
      let agg_classes_done = ref agg_resumed in
      let agg_resumed_shards =
        List.fold_left (fun a rt -> a + rt.resumed_shards) 0 rts_in_order
      in
      let agg_shards_done = ref agg_resumed_shards in
      let agg_retries = ref 0 in
      let agg_kills = ref 0 in
      let agg_q_shards = ref 0 in
      let agg_q_classes = ref 0 in
      let t0 = Unix.gettimeofday () in
      let mu = Mutex.create () in
      let emit_observe () =
        observe
          (Progress.make ~classes_done:!agg_classes_done
             ~classes_total:agg_classes_total ~shards_done:!agg_shards_done
             ~shards_total:agg_shards_total ~resumed_classes:agg_resumed
             ~retries:!agg_retries ~kills:!agg_kills
             ~quarantined_shards:!agg_q_shards
             ~quarantined_classes:!agg_q_classes
             ~elapsed:(Unix.gettimeofday () -. t0)
             ~tally:agg_tally ())
      in
      List.iter
        (fun rt ->
          if rt.resumed_classes > 0 then
            rt.progress ~done_:rt.resumed_classes
              ~total:rt.plan.Shard.classes_total ~tally:rt.tally)
        rts_in_order;
      emit_observe ();

      (* -------------------------------------------------------------- *)
      (* Domains backend: one shared pool over every pending shard of
         every cell; tasks are claimed in cell order, so workers drain
         cell 1 first but spill into cell 2 as soon as slots free up —
         no back-to-back barrier between cells.  Supervision here is
         report-only: domains share the heap and cannot be SIGKILLed,
         so a blown deadline fires [on_event] and the pool still joins
         every domain. *)
      (* -------------------------------------------------------------- *)
      let conduct_domains () =
        let pending =
          Array.of_list
            (List.concat_map
               (fun rt ->
                 List.filter_map
                   (fun (s : Shard.t) ->
                     if rt.shard_done.(s.Shard.id) then None else Some (rt, s))
                   (Array.to_list rt.plan.Shard.shards))
               rts_in_order)
        in
        let conduct_shard (rt, (shard : Shard.t)) =
          let buf =
            Runcell.conduct_shard rt.cell ~classes:rt.classes ~plan:rt.plan
              shard ~on_class:(fun ~class_index chars ->
                for bit = 0 to 7 do
                  match Outcome.of_char chars.[bit] with
                  | Some o -> rt.outcomes.((class_index * 8) + bit) <- o
                  | None -> assert false
                done;
                Mutex.protect mu (fun () ->
                    String.iter
                      (fun ch ->
                        match Outcome.of_char ch with
                        | Some o ->
                            Outcome.tally_add rt.tally o;
                            Outcome.tally_add agg_tally o
                        | None -> assert false)
                      chars;
                    rt.classes_done <- rt.classes_done + 1;
                    incr agg_classes_done;
                    rt.progress ~done_:rt.classes_done
                      ~total:rt.plan.Shard.classes_total ~tally:rt.tally;
                    emit_observe ()))
          in
          Mutex.protect mu (fun () ->
              (match rt.writer with
              | Some w -> Journal.append w (Runcell.record_payload shard buf)
              | None -> ());
              rt.shard_done.(shard.Shard.id) <- true;
              rt.shards_done <- rt.shards_done + 1;
              incr agg_shards_done;
              emit_observe ())
        in
        let deadline =
          List.fold_left
            (fun acc (s : Spec.t) ->
              match (s.Spec.policy.Spec.supervision.Spec.shard_timeout, acc) with
              | None, acc -> acc
              | Some t, None -> Some t
              | Some t, Some a -> Some (Float.min t a))
            None specs
        in
        let on_stall ~stalled_for =
          on_event
            (Printf.sprintf
               "domain pool stalled: no shard completed for %.1fs (hung \
                domain?) — still waiting, domains cannot be killed"
               stalled_for)
        in
        Pool.run ?deadline ~on_stall ~jobs ~tasks:(Array.length pending)
          (fun i -> conduct_shard pending.(i))
      in

      (* -------------------------------------------------------------- *)
      (* Processes backend: fork/exec'd workers, one journal segment
         each, merged into the campaign journal as doorbells arrive.
         Cells run one after another (each gets the full worker count).
         With supervision off (the library default policy), a dead or
         corrupt worker is recorded and reported after every cell has
         been driven as far as it will go — the seed behaviour.  With
         supervision on, a dead/hung/stalled worker's unfinished shards
         are re-dispatched (bounded, with backoff), and a shard that
         exhausts its budget is quarantined or failed per policy. *)
      (* -------------------------------------------------------------- *)
      let apply_shard_live rt (shard : Shard.t) outs =
        let n = Shard.classes_in shard in
        for k = 0 to n - 1 do
          let class_index = rt.plan.Shard.order.(shard.Shard.lo + k) in
          for bit = 0 to 7 do
            match Outcome.of_char outs.[(8 * k) + bit] with
            | Some o ->
                rt.outcomes.((class_index * 8) + bit) <- o;
                Outcome.tally_add rt.tally o;
                Outcome.tally_add agg_tally o
            | None ->
                mismatch "segment record for shard %d holds invalid outcome %C"
                  shard.Shard.id
                  outs.[(8 * k) + bit]
          done;
          rt.classes_done <- rt.classes_done + 1;
          incr agg_classes_done;
          rt.progress ~done_:rt.classes_done ~total:rt.plan.Shard.classes_total
            ~tally:rt.tally
        done;
        (match rt.writer with
        | Some w ->
            Journal.append w
              (Runcell.record_payload shard (Bytes.of_string outs))
        | None -> ());
        rt.shard_done.(shard.Shard.id) <- true;
        rt.shards_done <- rt.shards_done + 1;
        incr agg_shards_done;
        emit_observe ()
      in
      (* One merge path for both worker backends: a local worker's
         journal segment and a remote worker's [Seg] frame stream carry
         the same CRC-guarded lines (header first, then one record per
         shard), so the dedup / fingerprint / corruption verdicts cannot
         diverge between them. *)
      let merge_line t line =
        let source () =
          match t.link with
          | Piped c -> Printf.sprintf "segment line in %s" (Worker.segment c)
          | Netted _ | Stillborn _ -> "record line over its connection"
        in
        if t.corrupt = None then
          match Journal.decode_line line with
          | None ->
              t.corrupt <-
                Some (Printf.sprintf "wrote a CRC-invalid %s" (source ()))
          | Some payload ->
              if not t.header_ok then (
                match Worker.segment_fingerprint payload with
                | Some fp when fp = t.t_rt.fp -> t.header_ok <- true
                | Some _ ->
                    t.corrupt <-
                      Some "wrote a segment for a different campaign"
                | None -> t.corrupt <- Some "wrote a malformed segment header")
              else
                match Runcell.parse_record t.t_rt.plan payload with
                | None -> t.corrupt <- Some "wrote a malformed segment record"
                | Some (shard, outs) ->
                    if not t.t_rt.shard_done.(shard.Shard.id) then
                      apply_shard_live t.t_rt shard outs
      in
      (* Tail a local worker's segment from the last read position;
         complete lines are merged, a trailing partial line (torn tail)
         stays pending.  Remote workers have no segment file — their
         lines were merged as [Seg] frames arrived — so this is a no-op
         for them. *)
      let drain t =
        match t.link with
        | Netted _ | Stillborn _ -> ()
        | Piped child -> (
            (match t.seg_fd with
            | None -> (
                try
                  t.seg_fd <-
                    Some
                      (Unix.openfile (Worker.segment child) [ Unix.O_RDONLY ] 0)
                with Unix.Unix_error _ -> ())
            | Some _ -> ());
            match t.seg_fd with
            | None -> ()
            | Some fd ->
                let chunk = Bytes.create 65536 in
                let data = Buffer.create 256 in
                Buffer.add_string data t.seg_pending;
                let continue = ref true in
                while !continue do
                  match Sysio.read_once fd chunk 0 (Bytes.length chunk) with
                  | 0 -> continue := false
                  | n -> Buffer.add_subbytes data chunk 0 n
                done;
                let text = Buffer.contents data in
                let len = String.length text in
                let start = ref 0 in
                let stop = ref false in
                while not !stop do
                  match String.index_from_opt text !start '\n' with
                  | None ->
                      t.seg_pending <- String.sub text !start (len - !start);
                      stop := true
                  | Some nl ->
                      merge_line t (String.sub text !start (nl - !start));
                      start := nl + 1
                done)
      in
      let status_cause t =
        match (t.killed, t.corrupt, t.link) with
        | Some reason, _, _ -> reason
        | None, Some c, _ -> c
        | None, None, (Netted _ | Stillborn _) -> (
            match t.remote_err with
            | Some e -> e
            | None -> "closed its connection with unfinished shards")
        | None, None, Piped _ -> (
            match t.status with
            | Some (Unix.WEXITED 0) -> "exited 0 with unfinished shards"
            | Some (Unix.WEXITED n) -> Printf.sprintf "exited with code %d" n
            | Some (Unix.WSIGNALED s) ->
                Printf.sprintf "was killed by %s" (signal_name s)
            | Some (Unix.WSTOPPED s) ->
                Printf.sprintf "stopped by %s" (signal_name s)
            | None -> "was never reaped")
      in
      (* Everything a remote worker says arrives as frames; doorbell
         lines and segment lines feed the exact machinery the pipe
         backend uses. *)
      let handle_frame t (kind, payload) =
        match kind with
        | Frame.Door -> note_door_line t payload (Unix.gettimeofday ())
        | Frame.Seg -> merge_line t payload
        | Frame.Err ->
            if t.remote_err = None then
              t.remote_err <- Some (Printf.sprintf "reported: %s" payload)
        | Frame.Hello | Frame.Job | Frame.Submit | Frame.Stat | Frame.Prog
        | Frame.Res ->
            if t.remote_err = None then
              t.remote_err <-
                Some
                  (Printf.sprintf "sent an unexpected %s frame"
                     (Frame.kind_tag kind))
      in
      let run_cell mode rt failures =
        let policy = rt.cell.Runcell.spec.Spec.policy in
        let sup = Spec.supervised policy in
        let max_retries = policy.Spec.supervision.Spec.max_retries in
        let label = Spec.label rt.cell.Runcell.spec in
        let capacity =
          match mode with
          | Local_processes jobs -> jobs
          | Remote_hosts seats ->
              Array.fold_left (fun acc (_, cap) -> acc + cap) 0 seats
        in
        let pending_ids =
          Array.of_list
            (List.filter_map
               (fun (s : Shard.t) ->
                 if rt.shard_done.(s.Shard.id) then None else Some s.Shard.id)
               (Array.to_list rt.plan.Shard.shards))
        in
        let n = Array.length pending_ids in
        if n > 0 then begin
          let spawn_counter = ref 0 in
          let tracked = ref [] in
          (* Hosts whose last dispatch failed: re-dials get a short
             patience so a dead host stalls the (blocking, serial)
             dispatch path for a couple of seconds, not the full
             connect+handshake timeouts on every backoff round. *)
          let suspect_hosts : (Addr.t, unit) Hashtbl.t = Hashtbl.create 4 in
          let redial_patience = 2.0 in
          (* (shard id, earliest dispatch time); dispatch sorts by id. *)
          let queue = ref (List.map (fun id -> (id, 0.)) (Array.to_list pending_ids)) in
          let seg_path i =
            match rt.journal_path with
            | Some p -> Printf.sprintf "%s.seg%d" p i
            | None -> Filename.temp_file "fi-segment" ".journal"
          in
          let live () = List.filter (fun t -> not t.eof) !tracked in
          (* Per-host seat accounting for the sockets backend: a host's
             live connections occupy its seats; stillborn dispatches
             never do. *)
          let host_live addr =
            List.fold_left
              (fun acc t ->
                match t.link with
                | Netted c when (not t.eof) && c.Remote.addr = addr -> acc + 1
                | _ -> acc)
              0 !tracked
          in
          let free_seats () =
            match mode with
            | Local_processes jobs -> jobs - List.length (live ())
            | Remote_hosts seats ->
                Array.fold_left
                  (fun acc (addr, cap) -> acc + max 0 (cap - host_live addr))
                  0 seats
          in
          let pick_host seats =
            Array.fold_left
              (fun acc (addr, cap) ->
                let free = cap - host_live addr in
                match acc with
                | Some (_, best) when best >= free -> acc
                | _ -> if free > 0 then Some (addr, free) else acc)
              None seats
          in
          let make_tracked ?err link now =
            {
              link;
              t_rt = rt;
              spawned_at = now;
              last_beat = now;
              last_progress = now;
              st_pending = "";
              seg_fd = None;
              seg_pending = "";
              header_ok = false;
              corrupt = None;
              killed = None;
              remote_err = err;
              eof = (match link with Stillborn _ -> true | _ -> false);
              status = None;
              settled = false;
            }
          in
          let spawn_one shard_ids =
            let idx = !spawn_counter in
            incr spawn_counter;
            let now = Unix.gettimeofday () in
            let entry =
              match mode with
              | Local_processes _ ->
                  let job =
                    {
                      Worker.spec = rt.cell.Runcell.spec;
                      fingerprint = rt.fp;
                      shard_ids;
                      segment = seg_path idx;
                      index = idx;
                    }
                  in
                  make_tracked (Piped (Worker.spawn job)) now
              | Remote_hosts seats -> (
                  let stillborn peer err =
                    make_tracked ~err
                      (Stillborn
                         {
                           sb_index = idx;
                           sb_assigned = shard_ids;
                           sb_peer = peer;
                         })
                      now
                  in
                  match pick_host seats with
                  | None -> stillborn "no host" "had no free worker seat"
                  | Some (addr, _) -> (
                      let patience =
                        if Hashtbl.mem suspect_hosts addr then
                          Some redial_patience
                        else None
                      in
                      match
                        Remote.dispatch ?patience ?secret ~addr
                          ~fingerprint:rt.fp
                          ~program:rt.cell.Runcell.golden.Golden.program
                          ~spec:rt.cell.Runcell.spec ~shard_ids ~index:idx ()
                      with
                      | Ok client ->
                          Hashtbl.remove suspect_hosts addr;
                          make_tracked (Netted client) now
                      | Error msg ->
                          Hashtbl.replace suspect_hosts addr ();
                          stillborn (Addr.to_string addr) msg))
            in
            tracked := entry :: !tracked
          in
          let spawn_workers ids k =
            let n = Array.length ids in
            let k = min k n in
            for i = 0 to k - 1 do
              let lo = i * n / k and hi = (i + 1) * n / k in
              spawn_one (Array.sub ids lo (hi - lo))
            done
          in
          let dispatch () =
            let free = free_seats () in
            if free > 0 && !queue <> [] then begin
              let now = Unix.gettimeofday () in
              let eligible, later =
                List.partition (fun (_, nb) -> nb <= now) !queue
              in
              if eligible <> [] then begin
                queue := later;
                let ids = Array.of_list (List.map fst eligible) in
                Array.sort compare ids;
                spawn_workers ids free
              end
            end
          in
          (* The shard deadline: explicit policy, else derived from the
             observed shard rate (8× the mean per-worker shard time seen
             so far across the matrix), else the bootstrap ceiling. *)
          let current_deadline () =
            if not sup then None
            else
              match policy.Spec.supervision.Spec.shard_timeout with
              | Some t -> Some t
              | None ->
                  let completions = !agg_shards_done - agg_resumed_shards in
                  if completions > 0 then
                    Some
                      (Float.max 1.0
                         (8. *. float_of_int capacity
                         *. (Unix.gettimeofday () -. t0)
                         /. float_of_int completions))
                  else Some bootstrap_deadline
          in
          let requeue ids nb =
            queue := !queue @ List.map (fun id -> (id, nb)) ids
          in
          let settle t =
            t.settled <- true;
            drain t;
            (match t.seg_fd with
            | Some fd ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                t.seg_fd <- None
            | None -> ());
            let unfinished =
              List.filter
                (fun id -> not (rt.shard_done.(id) || rt.quarantined.(id)))
                (Array.to_list (link_assigned t.link))
            in
            let clean =
              t.killed = None && t.corrupt = None
              && unfinished = []
              && (match t.link with
                 | Piped _ -> t.status = Some (Unix.WEXITED 0)
                 | Netted _ -> t.remote_err = None
                 | Stillborn _ -> false)
            in
            if not clean then begin
              let cause = status_cause t in
              let who = link_who t.link in
              if not sup then
                failures :=
                  Printf.sprintf "%s: %s %s%s" label who cause
                    (match unfinished with
                    | [] -> ""
                    | ids ->
                        Printf.sprintf
                          "; shard%s %s unfinished — run again with --resume \
                           to replay"
                          (if List.length ids > 1 then "s" else "")
                          (String.concat "," (List.map string_of_int ids)))
                  :: !failures
              else
                match unfinished with
                | [] ->
                    (* Died after finishing everything it was assigned:
                       nothing to recover. *)
                    on_event
                      (Printf.sprintf
                         "%s: %s %s (all assigned shards complete; nothing to \
                          retry)"
                         label who cause)
                | first :: rest ->
                    (* Charge a retry attempt only when the worker made
                       NO progress: then [first] — the shard being
                       conducted at death — is the prime suspect.  A
                       worker that completed shards before dying is
                       evidence of a transient or positional fault, not
                       of [first] being poisonous, and charging it would
                       let sustained churn quarantine healthy shards
                       (every death would bill whichever shard happened
                       to be next in line).  Termination is preserved:
                       an uncharged requeue always comes with at least
                       one newly completed shard, so there can be at
                       most [shards_total] of them — and a genuinely
                       poisoned shard still converges to quarantine,
                       because once its neighbours drain it is
                       dispatched at the head of a queue and every
                       death then charges it. *)
                    let progressed =
                      List.length unfinished
                      < Array.length (link_assigned t.link)
                    in
                    if not progressed then
                      rt.retries.(first) <- rt.retries.(first) + 1;
                    let attempt = rt.retries.(first) in
                    if (not progressed) && attempt > max_retries then
                      if policy.Spec.supervision.Spec.quarantine then begin
                        rt.quarantined.(first) <- true;
                        rt.q_info <- (first, attempt, cause) :: rt.q_info;
                        incr agg_q_shards;
                        agg_q_classes :=
                          !agg_q_classes
                          + Shard.classes_in rt.plan.Shard.shards.(first);
                        (match rt.writer with
                        | Some w ->
                            Journal.append w
                              (Runcell.supervision_payload
                                 (Runcell.Quarantine
                                    { shard = first; attempts = attempt; cause }))
                        | None -> ());
                        on_event
                          (Printf.sprintf
                             "%s: shard %d quarantined after %d failed \
                              attempt%s (last: %s %s)"
                             label first attempt
                             (if attempt > 1 then "s" else "")
                             who cause);
                        if rest <> [] then requeue rest (Unix.gettimeofday ());
                        emit_observe ()
                      end
                      else begin
                        failures :=
                          Printf.sprintf
                            "%s: shard %d failed %d time%s (last: %s %s); \
                             retry budget exhausted — run again with --resume \
                             to replay"
                            label first attempt
                            (if attempt > 1 then "s" else "")
                            who cause
                          :: !failures;
                        (* Still drive the untouched shards to completion:
                           maximal journal progress for --resume. *)
                        if rest <> [] then requeue rest (Unix.gettimeofday ())
                      end
                    else begin
                      (* Journal the budget change only when there is
                         one: uncharged requeues leave nothing for
                         --resume to restore. *)
                      if not progressed then
                        (match rt.writer with
                        | Some w ->
                            Journal.append w
                              (Runcell.supervision_payload
                                 (Runcell.Retry
                                    { shard = first; attempt; cause }))
                        | None -> ());
                      incr agg_retries;
                      let delay =
                        policy.Spec.supervision.Spec.retry_backoff
                        *. (2. ** float_of_int (max 0 (attempt - 1)))
                      in
                      requeue unfinished (Unix.gettimeofday () +. delay);
                      on_event
                        (Printf.sprintf
                           "%s: %s %s; retrying shard%s %s (%s, backoff %.2fs)"
                           label who cause
                           (if List.length unfinished > 1 then "s" else "")
                           (String.concat ","
                              (List.map string_of_int unfinished))
                           (if progressed then
                              "no charge — worker had completed shards"
                            else
                              Printf.sprintf "attempt %d/%d for shard %d"
                                attempt max_retries first)
                           delay);
                      emit_observe ()
                    end
            end;
            (* Everything merged lives in the campaign journal (when
               there is one); the segment is scratch.  Keep it only as
               corruption evidence.  A remote worker's "segment" is its
               connection — just make sure it is torn down. *)
            match t.link with
            | Piped c ->
                if t.corrupt = None then (
                  try Sys.remove (Worker.segment c) with Sys_error _ -> ())
            | Netted c -> Transport.close c.Remote.conn
            | Stillborn _ -> ()
          in
          let buf = Bytes.create 4096 in
          let rec supervise () =
            dispatch ();
            (* Stillborn dispatches are born settled-pending: push them
               through supervision now so their shards requeue (with
               retries and backoff) even when nothing else is alive. *)
            List.iter
              (fun t -> if t.eof && not t.settled then settle t)
              !tracked;
            match (live (), !queue) with
            | [], [] -> ()
            | [], q ->
                (* Everything is backing off; sleep to the earliest
                   dispatch time. *)
                let now = Unix.gettimeofday () in
                let earliest =
                  List.fold_left (fun a (_, nb) -> Float.min a nb) infinity q
                in
                if earliest > now then
                  Unix.sleepf (Float.min 0.5 (earliest -. now));
                supervise ()
            | alive, _ ->
                let now = Unix.gettimeofday () in
                let timeout =
                  let t_dl =
                    match current_deadline () with
                    | None -> 0.5
                    | Some dl ->
                        List.fold_left
                          (fun acc t ->
                            Float.min acc (dl -. (now -. t.last_progress)))
                          0.5 alive
                  in
                  let t_nb =
                    List.fold_left
                      (fun acc (_, nb) -> Float.min acc (nb -. now))
                      t_dl !queue
                  in
                  Float.max 0.01 (Float.min 0.5 t_nb)
                in
                let link_fd t =
                  match t.link with
                  | Piped c -> Some (Worker.status_fd c)
                  | Netted c -> Some (Transport.fd c.Remote.conn)
                  | Stillborn _ -> None
                in
                let fds = List.filter_map link_fd alive in
                let readable = Sysio.select_read fds timeout in
                List.iter
                  (fun t ->
                    match t.link with
                    | Stillborn _ -> ()
                    | Piped c -> (
                        let fd = Worker.status_fd c in
                        if List.mem fd readable then
                          match Sysio.read_avail fd buf with
                          | `Nothing -> ()
                          | `Data k ->
                              note_status_data t
                                (Bytes.sub_string buf 0 k)
                                (Unix.gettimeofday ())
                          | `Eof ->
                              t.eof <- true;
                              t.status <- Some (Worker.wait c);
                              Sysio.close_quietly fd)
                    | Netted c ->
                        if List.mem (Transport.fd c.Remote.conn) readable then (
                          match Transport.pump c.Remote.conn with
                          | `Frames frames ->
                              List.iter (handle_frame t) frames
                          | `Eof ->
                              t.eof <- true;
                              Transport.close c.Remote.conn
                          | `Corrupt msg ->
                              if t.remote_err = None then
                                t.remote_err <-
                                  Some
                                    (Printf.sprintf "sent a corrupt frame (%s)"
                                       msg);
                              t.eof <- true;
                              Transport.close c.Remote.conn))
                  alive;
                (* Merge whatever the doorbells (or deaths) made
                   visible. *)
                List.iter (fun t -> if not t.settled then drain t) !tracked;
                List.iter
                  (fun t -> if t.eof && not t.settled then settle t)
                  !tracked;
                (* Deadline pass: kill what stopped progressing. *)
                (match current_deadline () with
                | None -> ()
                | Some dl ->
                    let now = Unix.gettimeofday () in
                    List.iter
                      (fun t ->
                        if (not t.eof) && t.killed = None then
                          let stuck = now -. t.last_progress in
                          if stuck > dl then begin
                            let reason =
                              if now -. t.last_beat > dl then
                                Printf.sprintf
                                  "hung (no heartbeat for %.1fs, deadline \
                                   %.1fs)"
                                  (now -. t.last_beat) dl
                              else
                                Printf.sprintf
                                  "stalled (heartbeats flowing but no shard \
                                   completed for %.1fs, deadline %.1fs)"
                                  stuck dl
                            in
                            t.killed <- Some reason;
                            incr agg_kills;
                            let how =
                              match t.link with
                              | Piped c ->
                                  Worker.kill c;
                                  "SIGKILLed"
                              | Netted c ->
                                  (* Teardown replaces SIGKILL: a remote
                                     worker whose socket dies stops
                                     mattering, whatever it is doing. *)
                                  Transport.close c.Remote.conn;
                                  t.eof <- true;
                                  "connection torn down"
                              | Stillborn _ -> "stillborn"
                            in
                            on_event
                              (Printf.sprintf "%s: %s %s — %s" label
                                 (link_who t.link) reason how);
                            emit_observe ()
                          end)
                      (live ()));
                supervise ()
          in
          supervise ();
          (* Belt and braces: every worker is dead and settled here. *)
          List.iter (fun t -> if not t.settled then settle t) !tracked
        end
      in
      (* Both worker backends run under SIGPIPE-ignore: a worker (or
         daemon) that dies mid-write must surface as a supervision
         event, never as a parent crash.  [make_mode] runs inside the
         protected region because the sockets backend probes its hosts
         (connect + hello) before conducting anything — unreachable
         hosts, protocol mismatches and foreign binaries fail fast,
         before a single shard is dispatched. *)
      let conduct_workers make_mode =
        let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
        let failures = ref [] in
        Fun.protect
          ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev)
          (fun () ->
            let mode = make_mode () in
            List.iter (fun rt -> run_cell mode rt failures) rts_in_order);
        match List.rev !failures with
        | [] -> ()
        | fs -> raise (Worker_failed (String.concat "\n" fs))
      in
      let probe_hosts () =
        Remote_hosts
          (Array.of_list
             (List.map
                (fun addr ->
                  match Remote.probe ?secret addr with
                  | Ok h ->
                      (* -j bounds per-host concurrency; 0 defers to the
                         capacity the daemon advertised in its hello. *)
                      let cap =
                        if jobs = 0 then max 1 h.Handshake.capacity else jobs
                      in
                      (addr, cap)
                  | Error msg ->
                      raise
                        (Worker_failed
                           (Printf.sprintf "worker host %s: %s"
                              (Addr.to_string addr) msg)))
                worker_hosts))
      in

      (match backend with
      | Pool.Domains -> conduct_domains ()
      | Pool.Processes -> conduct_workers (fun () -> Local_processes jobs)
      | Pool.Sockets _ -> conduct_workers probe_hosts);

      List.map
        (fun rt ->
          assert (
            Array.for_all Fun.id
              (Array.mapi
                 (fun i d -> d || rt.quarantined.(i))
                 rt.shard_done));
          let total = rt.plan.Shard.classes_total in
          (* Deterministic merge: identical construction to the serial
             conductors.  Quarantined classes keep the No_effect
             placeholder — callers must consult [quarantined] before
             treating the scan as complete. *)
          let experiments =
            Array.init (8 * total) (fun idx ->
                let c = rt.classes.(idx / 8) in
                {
                  Scan.byte = c.Defuse.byte;
                  t_start = c.Defuse.t_start;
                  t_end = c.Defuse.t_end;
                  bit_in_byte = idx mod 8;
                  outcome = rt.outcomes.(idx);
                })
          in
          let scan =
            {
              Scan.name = rt.cell.Runcell.golden.Golden.program.Program.name;
              variant = rt.cell.Runcell.spec.Spec.variant;
              cycles = rt.cell.Runcell.golden.Golden.cycles;
              ram_bytes = rt.cell.Runcell.ram_bytes;
              experiments;
              benign_weight = rt.cell.Runcell.benign_weight;
            }
          in
          let quarantined =
            List.rev_map
              (fun (shard_id, attempts, cause) ->
                let s = rt.plan.Shard.shards.(shard_id) in
                {
                  q_cell = Spec.label rt.cell.Runcell.spec;
                  q_shard = shard_id;
                  q_classes = Shard.classes_in s;
                  q_class_indices =
                    Array.init (Shard.classes_in s) (fun k ->
                        rt.plan.Shard.order.(s.Shard.lo + k));
                  q_attempts = attempts;
                  q_cause = cause;
                })
              rt.q_info
          in
          (* Publish to the result store only what a future consult can
             trust blindly: a freshly conducted cell whose every shard
             completed and whose journal is on disk.  A quarantined cell
             never publishes — its journal lacks the quarantined shards'
             records, and serving it as a hit would launder a degraded
             run into a complete one. *)
          (match
             (rt.cell.Runcell.spec.Spec.policy.Spec.acceleration.Spec.cache, rt.cache_key,
              rt.journal_path)
           with
          | Some dir, Some key, Some path
            when (not rt.from_cache)
                 && quarantined = []
                 && Array.for_all Fun.id rt.shard_done -> (
              try Cache.publish ~dir ~key ~fingerprint:rt.fp ~path
              with Sys_error _ | Unix.Unix_error _ -> ())
          | _ -> ());
          { scan; quarantined; cached = rt.from_cache })
        rts_in_order)

let run_spec_result ?backend ?jobs ?progress ?observe ?on_event ?secret spec =
  match
    run_matrix_results ?backend ?jobs
      ?progress:(Option.map (fun p _ -> p) progress)
      ?observe ?on_event ?secret [ spec ]
  with
  | [ r ] -> r
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Scan-only wrappers: quarantine degrades to Worker_failed            *)
(* ------------------------------------------------------------------ *)

let quarantine_failure qs =
  Worker_failed
    (String.concat "\n"
       (List.map
          (fun q ->
            Printf.sprintf
              "%s: shard %d (%d classes) quarantined after %d attempts (%s)"
              q.q_cell q.q_shard q.q_classes q.q_attempts q.q_cause)
          qs))

let run_matrix ?backend ?jobs ?progress ?observe specs =
  let results = run_matrix_results ?backend ?jobs ?progress ?observe specs in
  (match List.concat_map (fun (r : result) -> r.quarantined) results with
  | [] -> ()
  | qs -> raise (quarantine_failure qs));
  List.map (fun r -> r.scan) results

let run_spec ?backend ?jobs ?progress ?observe spec =
  match
    run_matrix ?backend ?jobs
      ?progress:(Option.map (fun p _ -> p) progress)
      ?observe [ spec ]
  with
  | [ scan ] -> scan
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Sampled-campaign helper: full scan + oracle estimate                *)
(* ------------------------------------------------------------------ *)

let run_sampled ?backend ?jobs ?progress ~seed ~samples spec =
  if samples <= 0 then invalid_arg "Engine.run_sampled: samples must be > 0";
  let scan = run_spec ?backend ?jobs ?progress spec in
  let rng = Prng.create ~seed in
  (scan, Sampler.uniform_raw_oracle rng ~samples scan)

(* ------------------------------------------------------------------ *)
(* Compatibility wrapper: the PR-1 single-campaign entry point         *)
(* ------------------------------------------------------------------ *)

let run ?(variant = "baseline") ?backend ?jobs ?shard_size ?journal
    ?(resume = false) ?progress ?observe golden =
  if resume && journal = None then
    invalid_arg "Engine.run: ~resume requires ~journal";
  let policy = Spec.make_policy ?shard_size ?journal ~resume () in
  run_spec ?backend ?jobs ?progress ?observe
    (Spec.of_golden ~variant ~policy golden)
