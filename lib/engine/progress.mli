(** Campaign observability: rates, ETA and live progress rendering.

    The engine reports through two channels.  The per-class
    {!Scan.progress} callback is shared with the serial conductors; this
    module adds the engine's richer {e observability hook}: a {!snapshot}
    of the whole campaign (shards, experiments/second, ETA, outcome
    tallies) delivered after every completed class and shard.  Snapshots
    are immutable copies — safe to retain, ship to another domain, or
    render from a UI thread. *)

type snapshot = {
  classes_done : int;  (** Classes complete, including resumed ones. *)
  classes_total : int;
  experiments_done : int;  (** [8 ×] classes_done. *)
  shards_done : int;  (** Shards complete, including resumed ones. *)
  shards_total : int;
  resumed_classes : int;
      (** Classes recovered from the journal rather than conducted. *)
  retries : int;
      (** Supervision re-dispatch events: each time a dead or killed
          worker's unfinished shards went back on the queue. *)
  kills : int;
      (** Workers SIGKILLed by the supervisor for blowing the shard
          deadline (hung or stalled). *)
  quarantined_shards : int;  (** Shards isolated after budget exhaustion. *)
  quarantined_classes : int;
      (** Classes those shards carry — never conducted this run. *)
  elapsed : float;  (** Seconds since the engine started. *)
  rate : float;
      (** Experiments conducted (resumed ones excluded) per second of
          elapsed wall-clock; [0.] until the first class completes. *)
  eta : float option;
      (** Estimated seconds to completion at the current rate. *)
  tally : Outcome.tally;  (** Outcome counts; a private copy. *)
}

type hook = snapshot -> unit

val finished : snapshot -> bool
(** Conducted plus quarantined classes cover the space: a
    quarantine-degraded campaign that accounted everything else is
    finished, not forever 99% done. *)

val make :
  classes_done:int ->
  classes_total:int ->
  shards_done:int ->
  shards_total:int ->
  resumed_classes:int ->
  ?retries:int ->
  ?kills:int ->
  ?quarantined_shards:int ->
  ?quarantined_classes:int ->
  elapsed:float ->
  tally:Outcome.tally ->
  unit ->
  snapshot
(** Derive the computed fields ([experiments_done], [rate], [eta]) from
    the raw counters.  Copies [tally].  The supervision counters default
    to [0] (an unsupervised campaign). *)

val render : snapshot -> string
(** One-line live progress suitable for a [\r]-refreshed terminal, e.g.
    ["[#######...] 61.2% 1788/2920 classes | 9 exp/ms | ETA 4.2s | 1033 failures"]. *)

val throttled : ?interval:float -> ?now:(unit -> float) -> hook -> hook
(** Rate-limit a hook to at most one call per [interval] seconds
    (default [0.1]); snapshots with {!finished} always pass through so
    the final state is never dropped. *)
