type writer = { fd : Unix.file_descr; mutable closed : bool }

let encode_line payload =
  if String.contains payload '\n' then
    invalid_arg "Journal.encode_line: payload contains a newline";
  Printf.sprintf "%s %s" (Crc32.to_hex (Crc32.string payload)) payload

let append w payload =
  if w.closed then invalid_arg "Journal.append: closed";
  if String.contains payload '\n' then
    invalid_arg "Journal.append: payload contains a newline";
  Sysio.write_string w.fd (encode_line payload ^ "\n");
  Unix.fsync w.fd

let close w =
  if not w.closed then begin
    w.closed <- true;
    Unix.close w.fd
  end

let create path ~header =
  let fd = Unix.openfile path [ Unix.O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let w = { fd; closed = false } in
  append w header;
  w

let decode_line line =
  if String.length line >= 9 && line.[8] = ' ' then
    match Crc32.of_hex (String.sub line 0 8) with
    | Some crc ->
        let payload = String.sub line 9 (String.length line - 9) in
        if crc = Crc32.string payload then Some payload else None
    | None -> None
  else None

type recovery =
  | Clean
  | Torn_tail of int
  | Corrupt_record of { line : int }

(* Scan the raw bytes for the longest prefix of valid records.  Returns
   the records' payloads, the byte length of that prefix, and how the
   scan ended: [Clean] (every byte accounted for), [Torn_tail] (the last
   line has no terminating newline — the signature of a crashed append),
   or [Corrupt_record] (a {e complete} line fails its CRC — a single
   writer cannot produce that by crashing, so the storage, not the
   campaign, is at fault). *)
let scan_prefix text =
  let len = String.length text in
  let records = ref [] in
  let pos = ref 0 in
  let line = ref 0 in
  let recovery = ref Clean in
  let stop = ref false in
  while (not !stop) && !pos < len do
    incr line;
    match String.index_from_opt text !pos '\n' with
    | None ->
        recovery := Torn_tail (len - !pos);
        stop := true
    | Some nl -> (
        match decode_line (String.sub text !pos (nl - !pos)) with
        | Some payload ->
            records := payload :: !records;
            pos := nl + 1
        | None ->
            recovery := Corrupt_record { line = !line };
            stop := true)
  done;
  (List.rev !records, !pos, !recovery)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Some text

let load path =
  match read_file path with
  | None -> None
  | Some text -> (
      match scan_prefix text with
      | header :: records, _, _ -> Some (header, records)
      | [], _, _ -> None)

let replay path =
  match read_file path with
  | None -> None
  | Some text -> (
      match scan_prefix text with
      | header :: records, _, recovery -> Some (header, records, recovery)
      | [], _, _ -> None)

let open_resume path =
  match read_file path with
  | None -> None
  | Some text -> (
      match scan_prefix text with
      | [], _, _ -> None
      | header :: records, prefix_len, _ ->
          let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd prefix_len;
          ignore (Unix.lseek fd prefix_len Unix.SEEK_SET);
          Some ({ fd; closed = false }, header, records))
