(** The distributed flavour of the campaign worker: remote daemons
    reached over {!Transport} connections, the {!Pool.Sockets} backend's
    other half.

    Where the fork/exec worker ({!Worker}) ships a marshalled closure
    down a pipe, a remote job must cross machines, so nothing in it may
    capture code: {!wire_job} is the Runcell-level cell description —
    the assembled program image, the plan-shaping policy fields and the
    campaign fingerprint — marshalled {e without} [Closures].  The
    worker re-analyses the cell from scratch and refuses (an {!Frame.Err}
    frame, then close) if its own fingerprint disagrees, so a campaign's
    results stay bit-identical however its shards are placed.

    Protocol, client → worker: [Hello] (version + binary digest +
    campaign fingerprint), worker answers [Hello] (version + digest +
    advertised capacity) or [Err]; then one [Job] frame.  Worker →
    client while conducting: [Seg] frames each carrying one
    journal-format line (the [fi-segment v1] header first, then one
    CRC-guarded record per shard) and [Door] frames carrying the
    doorbell lines ([h] / [s <id>] / [end]) — the same two streams the
    pipe worker produces, re-framed, so the engine merges and supervises
    both backends with the same machinery.  Teardown of the connection
    replaces [SIGKILL]: a worker whose socket dies stops mattering, and
    its unfinished shards are requeued exactly as for a killed process.

    The daemon ([fi-cli worker serve], or any binary whose main calls
    {!guard}) forks one child per accepted connection, at most [workers]
    conducting at once. *)

val serve_var : string
(** ["FI_ENGINE_NET_SERVE"] — ["HOST:PORT;WORKERS"] (optionally
    ["HOST:PORT;WORKERS;SECRET_FILE"]) in the environment diverts
    {!guard} into {!serve}: how tests and the bench spawn a loopback
    daemon by re-exec'ing themselves ({!spawn_daemon}). *)

val connect_timeout : float ref
val handshake_timeout : float ref
(** Patience for connecting to and handshaking with a peer (seconds,
    default 10).  Mutable so the torture suite can make half-open-peer
    tests fast; production code leaves them alone. *)

(** {1 Wire job} *)

type wire_job = {
  benchmark : string;
  variant : string;
  model : Faultspace.model;
  limit : int option;
  shard_size : int option;
  weighted : bool;
  stride : int option;
      (** The conductor's checkpoint stride, honoured by the peer so both
          ends accelerate identically.  A pure perf knob — not part of
          the fingerprint the peer verifies (outcomes are bit-identical
          at any stride). *)
  program : Program.t;  (** The assembled image — plain data. *)
  fingerprint : int;  (** Conductor's campaign fingerprint; verified. *)
  shard_ids : int array;
  index : int;  (** Spawn ordinal, for diagnostics and torture. *)
}

val encode_job : wire_job -> string
(** Versioned wire format: a [fi-wire v1] magic then [Marshal] {e
    without} [Closures] — sound because {!Handshake.check} already
    pinned both ends to byte-identical binaries. *)

val decode_job : string -> wire_job option

val wire_of_spec :
  Spec.t ->
  program:Program.t ->
  fingerprint:int ->
  shard_ids:int array ->
  index:int ->
  wire_job

val spec_of_wire : wire_job -> Spec.t
(** Rebuild a [Spec.Build] spec around the shipped image.  Only the
    plan-shaping policy fields cross the wire; journalling, resume and
    supervision stay with the conducting parent. *)

val program_of_spec : Spec.t -> Program.t
(** Extract the program image a spec describes (building it if the
    source is a thunk). *)

(** {1 Client side (the conducting engine)} *)

type client = {
  conn : Transport.conn;
  addr : Addr.t;
  index : int;
  assigned : int array;
}

val shake :
  ?timeout:float ->
  ?secret:string ->
  Transport.conn ->
  fingerprint:string ->
  (Handshake.hello, string) result
(** The client half of the hello exchange on an open connection: send
    ours, await theirs, {!Handshake.check}.  Shared with the campaign
    service's thin clients, which handshake against the same binary
    digest (and, when armed, the same shared secret) as worker
    dispatch. *)

val probe : ?secret:string -> Addr.t -> (Handshake.hello, string) result
(** Connect, exchange hellos, close.  How the engine validates every
    [--workers] host up front (unreachable, wrong version, wrong
    binary, wrong shared secret) and learns its advertised capacity. *)

val dispatch :
  ?patience:float ->
  ?secret:string ->
  addr:Addr.t ->
  fingerprint:int ->
  program:Program.t ->
  spec:Spec.t ->
  shard_ids:int array ->
  index:int ->
  unit ->
  (client, string) result
(** Connect, handshake, ship one job.  [Error] covers refusal, timeout
    and connection failure — the engine turns it into a stillborn worker
    and lets supervision retry.  [patience] caps the connect and
    handshake timeouts (whichever is smaller wins): the engine shortens
    re-dials to hosts that already failed once so a dead host cannot
    stall the supervision loop for the full default timeouts on every
    backoff round. *)

(** {1 Worker side} *)

val serve_connection : capacity:int -> ?secret:string -> Transport.conn -> unit
(** Conduct one connection: handshake (refusing on version, digest or
    shared-secret mismatch), then at most one job.  Raises on protocol
    violations and fingerprint disagreement — the daemon's
    per-connection child turns that into an [Err] frame and exit
    code 3. *)

val serve :
  listen:Addr.t ->
  workers:int ->
  ?secret:string ->
  ?announce:(string -> unit) ->
  unit ->
  unit
(** The daemon: bind (port [0] lets the kernel pick), call [announce]
    with the [fi-net listening HOST:PORT …] line (actual port), then
    accept forever, forking one child per connection with at most
    [workers] conducting at once.  Never returns normally. *)

val announce_line : Addr.t -> workers:int -> string
val parse_announce : string -> Addr.t option

val guard : unit -> unit
(** Call right after {!Worker.guard} in every engine-hosting main: if
    {!serve_var} is set, become a daemon (announcing on stdout, leading
    a fresh process group so killing the group takes the conducting
    children too) and never return. *)

val spawn_daemon :
  ?listen:Addr.t ->
  workers:int ->
  ?secret_file:string ->
  unit ->
  (int * Addr.t, string) result
(** Re-exec this executable as a daemon ({!serve_var}) and read the
    announced address back (default listen: [127.0.0.1:0]).  Returns
    the daemon's pid and actual address.  [secret_file] arms
    shared-secret auth on the spawned daemon.  Test/bench harness. *)

val kill_daemon : int -> unit
(** SIGKILL the daemon's process group (conducting children included)
    and reap it — the torture suite's cluster-power-cut. *)
