type backend = Domains | Processes | Sockets of string list

let backend_tag = function
  | Domains -> "domains"
  | Processes -> "processes"
  | Sockets _ -> "sockets"

let backend_of_string = function
  | "domains" -> Some Domains
  | "processes" -> Some Processes
  | "sockets" -> Some (Sockets [])
  | _ -> None

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs ?backend ?jobs () =
  match (backend, jobs) with
  (* Remote hosts size themselves: 0 defers to each daemon's advertised
     capacity, anything positive bounds the per-host connection count.
     Local backends have no daemon to defer to, so 0 means all cores. *)
  | Some (Sockets _), (None | Some 0) -> 0
  | (None | Some (Domains | Processes)), (None | Some 0) -> default_jobs ()
  | _, Some j when j >= 1 -> j
  | Some (Sockets _), Some j ->
      invalid_arg
        (Printf.sprintf
           "Pool.resolve_jobs: negative job count %d (use 0 to let each \
            worker daemon decide)"
           j)
  | _, Some j ->
      invalid_arg
        (Printf.sprintf
           "Pool.resolve_jobs: negative job count %d (use 0 for all cores)" j)

let run_inline tasks f =
  for i = 0 to tasks - 1 do
    f i
  done

let run ?deadline ?(on_stall = fun ~stalled_for:_ -> ()) ~jobs ~tasks f =
  if jobs < 1 then invalid_arg (Printf.sprintf "Pool.run: jobs %d" jobs);
  if tasks < 0 then invalid_arg (Printf.sprintf "Pool.run: tasks %d" tasks);
  if jobs = 1 || tasks <= 1 then run_inline tasks f
  else begin
    let next = Atomic.make 0 in
    let completed = Atomic.make 0 in
    let all_done = Atomic.make false in
    let failed = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= tasks || Atomic.get failed <> None then continue := false
        else begin
          (try f i
           with exn ->
             let bt = Printexc.get_raw_backtrace () in
             (* Keep the first failure; losing later ones is fine. *)
             ignore (Atomic.compare_and_set failed None (Some (exn, bt)));
             continue := false);
          Atomic.incr completed
        end
      done
    in
    (* The watchdog cannot SIGKILL a domain the way the processes
       scheduler kills a worker — domains share the heap — so a stalled
       pool is {e reported} (once per stall episode), never abandoned:
       we still join every domain. *)
    let monitor =
      match deadline with
      | None -> None
      | Some deadline ->
          Some
            (Domain.spawn (fun () ->
                 let last_count = ref (Atomic.get completed) in
                 let last_change = ref (Unix.gettimeofday ()) in
                 let reported = ref false in
                 while not (Atomic.get all_done) do
                   Unix.sleepf (Float.min 0.05 (deadline /. 4.));
                   let c = Atomic.get completed in
                   let now = Unix.gettimeofday () in
                   if c <> !last_count then begin
                     last_count := c;
                     last_change := now;
                     reported := false
                   end
                   else if
                     (not !reported)
                     && now -. !last_change >= deadline
                     && not (Atomic.get all_done)
                   then begin
                     reported := true;
                     on_stall ~stalled_for:(now -. !last_change)
                   end
                 done))
    in
    let domains =
      List.init (min jobs tasks - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    Atomic.set all_done true;
    Option.iter Domain.join monitor;
    match Atomic.get failed with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end
