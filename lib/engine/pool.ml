type backend = Domains | Processes

let backend_tag = function Domains -> "domains" | Processes -> "processes"

let backend_of_string = function
  | "domains" -> Some Domains
  | "processes" -> Some Processes
  | _ -> None

let default_jobs () = Domain.recommended_domain_count ()

let resolve_jobs ?jobs () =
  match jobs with
  | None | Some 0 -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some j -> invalid_arg (Printf.sprintf "Pool.resolve_jobs: jobs %d" j)

let run_inline tasks f =
  for i = 0 to tasks - 1 do
    f i
  done

let run ~jobs ~tasks f =
  if jobs < 1 then invalid_arg (Printf.sprintf "Pool.run: jobs %d" jobs);
  if tasks < 0 then invalid_arg (Printf.sprintf "Pool.run: tasks %d" tasks);
  if jobs = 1 || tasks <= 1 then run_inline tasks f
  else begin
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= tasks || Atomic.get failed <> None then continue := false
        else
          try f i
          with exn ->
            let bt = Printexc.get_raw_backtrace () in
            (* Keep the first failure; losing later ones is fine. *)
            ignore (Atomic.compare_and_set failed None (Some (exn, bt)));
            continue := false
      done
    in
    let domains =
      List.init (min jobs tasks - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join domains;
    match Atomic.get failed with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end
