(** Append-only, CRC-guarded campaign journal.

    The durability layer of the campaign engine: one line per record,
    each record a [crc32(payload)] in hex, a space, and the payload
    (which must not contain newlines).  Every append is a single
    [write(2)] followed by [fsync(2)], so after a crash the file is a
    valid record sequence plus at most one torn tail line.

    {!load} accepts exactly that: it returns the longest valid prefix of
    records and ignores anything after the first malformed or
    CRC-mismatching line.  {!open_resume} additionally truncates the file
    back to that valid prefix so that subsequent appends never merge into
    a torn tail.

    The journal is format-agnostic — payload syntax belongs to the
    caller ({!Engine} stores one header record and one record per
    completed shard). *)

type writer

val create : string -> header:string -> writer
(** [create path ~header] truncates/creates [path] and appends the
    [header] payload as the first record (fsync'd, like every record). *)

val append : writer -> string -> unit
(** Append one record and fsync.
    @raise Invalid_argument if the payload contains a newline. *)

val close : writer -> unit

val load : string -> (string * string list) option
(** [load path] is [Some (header, records)] — the first record and the
    remaining valid prefix — or [None] if the file is missing, empty or
    its header record is torn. *)

val open_resume : string -> (writer * string * string list) option
(** Like {!load}, but also truncates the file to the valid prefix and
    returns a writer positioned there, ready to append the remaining
    records. *)
