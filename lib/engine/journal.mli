(** Append-only, CRC-guarded campaign journal.

    The durability layer of the campaign engine: one line per record,
    each record a [crc32(payload)] in hex, a space, and the payload
    (which must not contain newlines).  Every append is a single
    [write(2)] followed by [fsync(2)], so after a crash the file is a
    valid record sequence plus at most one torn tail line.

    {!load} accepts exactly that: it returns the longest valid prefix of
    records and ignores anything after the first malformed or
    CRC-mismatching line.  {!replay} additionally classifies {e why} the
    prefix ended ({!recovery}), which is what lets the engine tell a
    crash artifact (torn tail — resumable) from storage corruption
    (a complete line with a bad CRC — rejected loudly rather than
    silently skewing weighted tallies).  {!open_resume} truncates the
    file back to the valid prefix so that subsequent appends never merge
    into a torn tail.

    The journal is format-agnostic — payload syntax belongs to the
    caller ({!Engine} stores one header record and one record per
    completed shard; {!Worker} segments store a segment header and the
    same shard records). *)

type writer

val create : string -> header:string -> writer
(** [create path ~header] truncates/creates [path] and appends the
    [header] payload as the first record (fsync'd, like every record). *)

val append : writer -> string -> unit
(** Append one record and fsync.
    @raise Invalid_argument if the payload contains a newline. *)

val close : writer -> unit

val encode_line : string -> string
(** Render one payload as a journal line (CRC hex, space, payload; no
    trailing newline) — the inverse of {!decode_line}.  Exposed for the
    socket transport, whose remote workers stream journal-format lines
    in {!Frame.Seg} frames instead of appending to a local segment.
    @raise Invalid_argument if the payload contains a newline. *)

val decode_line : string -> string option
(** Decode one journal line (without its newline) to its payload; [None]
    if the line is malformed or its CRC does not match.  Exposed for
    incremental readers (the engine tails worker journal segments as
    they grow). *)

type recovery =
  | Clean  (** Every byte of the file is a valid record. *)
  | Torn_tail of int
      (** The last line has no terminating newline ([n] bytes dropped) —
          the expected artifact of a crashed append; safe to resume. *)
  | Corrupt_record of { line : int }
      (** A {e complete} line (1-based [line]) fails its CRC.  A single
          sequential writer cannot produce this by crashing — the
          storage lied.  The engine refuses to resume such a journal. *)

val load : string -> (string * string list) option
(** [load path] is [Some (header, records)] — the first record and the
    remaining valid prefix — or [None] if the file is missing, empty or
    its header record is torn. *)

val replay : string -> (string * string list * recovery) option
(** Like {!load}, read-only, but also reports how the valid prefix
    ended.  This is the engine's resume gate: [Corrupt_record] makes it
    reject the journal instead of silently dropping the suffix. *)

val open_resume : string -> (writer * string * string list) option
(** Like {!load}, but also truncates the file to the valid prefix and
    returns a writer positioned there, ready to append the remaining
    records.  Callers that must distinguish corruption from a torn tail
    check {!replay} first — truncation destroys the evidence. *)
