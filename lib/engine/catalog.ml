let default_dir = "_artifacts"

let index_path ~dir = Filename.concat dir "journals.idx"

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let journal_path ~dir ~fingerprint =
  Filename.concat dir (Printf.sprintf "fi-%s.journal" (Crc32.to_hex fingerprint))

(* One line per entry: 8 hex digits, a space, the journal path (which may
   itself contain spaces).  Later entries win, so re-recording a
   fingerprint supersedes rather than edits. *)
let parse_line line =
  if String.length line >= 10 && line.[8] = ' ' then
    match Crc32.of_hex (String.sub line 0 8) with
    | Some fp -> Some (fp, String.sub line 9 (String.length line - 9))
    | None -> None
  else None

let entries ~dir =
  match open_in_bin (index_path ~dir) with
  | exception Sys_error _ -> []
  | ic ->
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.filter_map parse_line (String.split_on_char '\n' text)

let lookup ~dir ~fingerprint =
  List.fold_left
    (fun acc (fp, path) -> if fp = fingerprint then Some path else acc)
    None (entries ~dir)

(* The lock brackets the read-check AND the append: with concurrent
   campaigns on one host (the service's normal case), check-then-append
   without exclusion can interleave two half-lines into junk. *)
let record ~dir ~fingerprint ~path =
  ensure_dir dir;
  Lockfile.with_lock (index_path ~dir) (fun () ->
      if lookup ~dir ~fingerprint <> Some path then begin
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644
            (index_path ~dir)
        in
        Printf.fprintf oc "%s %s\n" (Crc32.to_hex fingerprint) path;
        close_out oc
      end)

(* ------------------------------------------------------------------ *)
(* Compaction                                                         *)
(* ------------------------------------------------------------------ *)

let rewrite ~dir entries =
  ensure_dir dir;
  let tmp = index_path ~dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iter
    (fun (fp, path) -> Printf.fprintf oc "%s %s\n" (Crc32.to_hex fp) path)
    entries;
  close_out oc;
  Sys.rename tmp (index_path ~dir)

type compaction = {
  examined : int;
  kept : int;
  folded : int;
  superseded : int;
  dangling : int;
}

let compact ?(dry_run = false) ?(protect = fun _ -> false) ~finished ~dir () =
  let all = entries ~dir in
  let examined = List.length all in
  (* Later entries win: walk newest-first, keep the first occurrence of
     each fingerprint, drop the rest as superseded. *)
  let seen = Hashtbl.create 16 in
  let current =
    List.fold_left
      (fun acc (fp, path) ->
        if Hashtbl.mem seen fp then acc
        else begin
          Hashtbl.add seen fp ();
          (fp, path) :: acc
        end)
      [] (List.rev all)
  in
  let superseded = examined - List.length current in
  let folded = ref 0 and dangling = ref 0 in
  let kept =
    List.filter
      (fun (_, path) ->
        if not (Sys.file_exists path) then begin
          incr dangling;
          false
        end
        else if finished path && not (protect path) then begin
          incr folded;
          if not dry_run then (try Sys.remove path with Sys_error _ -> ());
          false
        end
        else true)
      current
  in
  if not dry_run then rewrite ~dir kept;
  {
    examined;
    kept = List.length kept;
    folded = !folded;
    superseded;
    dangling = !dangling;
  }
