type t = { id : int; lo : int; hi : int }

type plan = {
  order : int array;
  shards : t array;
  shard_size : int;
  classes_total : int;
}

let classes_in s = s.hi - s.lo

let default_shard_size ~classes = max 1 ((classes + 127) / 128)

let plan ?shard_size defuse =
  let classes = Defuse.experiment_classes defuse in
  let total = Array.length classes in
  let shard_size =
    match shard_size with
    | None -> default_shard_size ~classes:total
    | Some n when n >= 1 -> n
    | Some n -> invalid_arg (Printf.sprintf "Shard.plan: shard_size %d" n)
  in
  (* Identical ranking to the serial Scan.pruned: a plain sort by t_end.
     Ties may land in any order — harmless, because results are merged by
     class index, not by rank — but the sort is deterministic for a given
     input, which keeps journal shard contents reproducible. *)
  let order = Array.init total (fun i -> i) in
  Array.sort
    (fun a b -> compare classes.(a).Defuse.t_end classes.(b).Defuse.t_end)
    order;
  let shard_count = (total + shard_size - 1) / shard_size in
  let shards =
    Array.init shard_count (fun id ->
        { id; lo = id * shard_size; hi = min total ((id + 1) * shard_size) })
  in
  { order; shards; shard_size; classes_total = total }
