type sizing = By_count | By_weight

let sizing_tag = function By_count -> "count" | By_weight -> "weight"

type t = { id : int; lo : int; hi : int }

type plan = {
  order : int array;
  shards : t array;
  shard_size : int;
  sizing : sizing;
  classes_total : int;
}

let classes_in s = s.hi - s.lo

let default_shard_size ~classes = max 1 ((classes + 127) / 128)

let plan ?shard_size ?(weighted = false) (classes : Defuse.byte_class array) =
  let total = Array.length classes in
  let shard_size =
    match shard_size with
    | None -> default_shard_size ~classes:total
    | Some n when n >= 1 -> n
    | Some n -> invalid_arg (Printf.sprintf "Shard.plan: shard_size %d" n)
  in
  (* Identical ranking to the serial Scan.pruned: a plain sort by t_end.
     Ties may land in any order — harmless, because results are merged by
     class index, not by rank — but the sort is deterministic for a given
     input, which keeps journal shard contents reproducible. *)
  let order = Array.init total (fun i -> i) in
  Array.sort
    (fun a b -> compare classes.(a).Defuse.t_end classes.(b).Defuse.t_end)
    order;
  let shards =
    if not weighted then
      let shard_count = (total + shard_size - 1) / shard_size in
      Array.init shard_count (fun id ->
          { id; lo = id * shard_size; hi = min total ((id + 1) * shard_size) })
    else begin
      (* Cut by estimated conducted cycles instead of class count.  An
         experiment injected at t_end costs about t_end cycles of forward
         execution before the flip, so rank r is weighted t_end(r) + 1.
         Target the shard count the count-based policy would produce and
         cut greedily once a shard's weight reaches the even share — late
         (expensive) ranks then land in smaller shards, evening out the
         tail on wide campaigns. *)
      let weight r = classes.(order.(r)).Defuse.t_end + 1 in
      let total_weight = ref 0 in
      for r = 0 to total - 1 do
        total_weight := !total_weight + weight r
      done;
      let target_shards = max 1 ((total + shard_size - 1) / shard_size) in
      let target = max 1 ((!total_weight + target_shards - 1) / target_shards) in
      let cuts = ref [] in
      let acc = ref 0 in
      for r = 0 to total - 1 do
        acc := !acc + weight r;
        if !acc >= target then begin
          cuts := (r + 1) :: !cuts;
          acc := 0
        end
      done;
      let cuts =
        match !cuts with
        | hi :: _ when hi = total -> List.rev !cuts
        | rest -> List.rev (total :: rest)
      in
      let bounds = Array.of_list cuts in
      Array.init (Array.length bounds) (fun id ->
          { id; lo = (if id = 0 then 0 else bounds.(id - 1)); hi = bounds.(id) })
    end
  in
  let shards = if total = 0 then [||] else shards in
  {
    order;
    shards;
    shard_size;
    sizing = (if weighted then By_weight else By_count);
    classes_total = total;
  }
