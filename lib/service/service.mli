(** Campaign-as-a-service: a resident daemon that accepts fault-injection
    campaign specs over the framed {!Frame} protocol, executes them on
    its configured backend (local pools or a {!Remote} worker fleet),
    streams progress back, and serves repeat submissions straight from
    the {!Cache} result store without touching the fleet.

    The daemon ([fi-cli serve]) holds one listening socket.  Each client
    connection carries one job: hello exchange (version + binary digest
    + optional shared-secret tag, exactly as worker dispatch), a
    [Submit] frame with the versioned submission payload, then [Stat] /
    [Prog] progress lines until the [Res] frame with every cell's
    result.  Jobs from different client hosts are queued fairly
    ({!Fairq}: FIFO within a host, round-robin across hosts) with a
    bounded per-host admission window; the fleet conducts one campaign
    at a time.  Submissions whose every cell is already published in
    the result store bypass the queue entirely and are answered
    immediately by a dedicated local replay — a cache hit is never
    delayed behind someone else's campaign.

    A client that disconnects mid-run does not kill its campaign: the
    runner finishes, publishes the cells to the result store, and the
    work is a cache hit for whoever asks next. *)

val serve_var : string
(** Environment variable carrying a hex-encoded daemon {!config}; set
    by {!spawn_daemon}, consumed by {!guard}. *)

val handshake_timeout : float ref

(** {2 Wire formats}

    Versioned, magic-prefixed, [Marshal] {e without} closures — sound
    because the handshake's binary digest pins both ends to the same
    executable, same as {!Remote}'s job wire format. *)

type wire_cell = {
  c_benchmark : string;
  c_variant : string;
  c_model : Faultspace.model;
  c_limit : int option;
  c_shard_size : int option;
  c_weighted : bool;
  c_program : Program.t;  (** The assembled image — never a closure. *)
}
(** One cell of a submission: the program image plus the plan-shaping
    spec fields.  Execution policy (journalling, supervision, caching)
    is the {e service's} to decide — submitters describe the campaign,
    not how the daemon runs it. *)

type wire_quarantined = {
  wq_shard : int;
  wq_classes : int;
  wq_attempts : int;
  wq_cause : string;
}

type wire_result = {
  r_label : string;
  r_scan : Scan.t;
  r_cached : bool;  (** Served from the result store — zero shards run. *)
  r_quarantined : wire_quarantined list;
}

val encode_submission : wire_cell list -> string
val decode_submission : string -> wire_cell list option
val encode_results : wire_result list -> string
val decode_results : string -> wire_result list option

val cell_of_spec : Spec.t -> wire_cell
(** Flatten a local {!Spec.t} (assembling its image if the source is a
    build thunk) into its wire description. *)

(** {2 Daemon} *)

type config = {
  listen : string;  (** HOST:PORT, port 0 = kernel-assigned. *)
  workers : string list;  (** Remote fleet; [[]] = run locally. *)
  local_backend : string;  (** {!Pool.backend_of_string} tag used when no fleet. *)
  jobs : int;  (** 0 = {!Pool.default_jobs}. *)
  window : int;  (** {!Fairq} admission window, per client host. *)
  artifacts : string;  (** Catalogue + result-store directory. *)
  secret_file : string option;
      (** Arms shared-secret handshake auth for clients {e and} towards
          fleet workers. *)
}

val default_config : config

val serve : ?config:config -> ?announce:(string -> unit) -> unit -> unit
(** Run the daemon loop; never returns normally.  [announce] receives
    the one-line listening banner (host, actual port, binary digest)
    once the socket is bound.
    @raise Failure on bind failure, bad backend tag or unreadable
    secret file. *)

val announce_line : Addr.t -> string
val parse_announce : string -> Addr.t option

val guard : unit -> unit
(** Call first thing in [main].  No-op unless {!serve_var} is set, in
    which case this process {e is} a service daemon: detach into a new
    session, serve forever, never return.  Exit code 3 on startup
    failure. *)

val spawn_daemon : ?config:config -> unit -> (int * Addr.t, string) result
(** Re-exec this binary as a service daemon ({!guard} path) and await
    its announce line.  Returns the daemon's pid and actual bound
    address.  Test and bench harness — production deployments run
    [fi-cli serve] directly. *)

val kill_daemon : int -> unit
(** SIGKILL the daemon's process group and reap it. *)

(** {2 Thin clients} *)

val submit :
  ?secret:string ->
  ?on_progress:(string -> unit) ->
  addr:Addr.t ->
  wire_cell list ->
  (wire_result list, string) result
(** Connect, handshake, submit the cells, stream progress lines into
    [on_progress], return the per-cell results.  [Error] covers
    refusal (auth, admission window, malformed payload), transport
    failure, and a daemon that died mid-campaign. *)

val status : ?secret:string -> addr:Addr.t -> unit -> (string, string) result
(** One-line daemon status: connected clients, queue depth, fleet
    busyness, published cache cells. *)
