(** Fair FIFO-per-client admission queue — the campaign service's job
    queue.

    Jobs are FIFO {e within} a client and round-robin {e across}
    clients: with clients A (three queued jobs) and B (one), service
    order is A1 B1 A2 A3 — a flooding client delays only itself.  The
    admission window bounds each client's pending jobs; {!admit}
    refuses past it so back-pressure is explicit and immediate. *)

type 'a t

val create : window:int -> 'a t
(** @raise Invalid_argument if [window < 1]. *)

val admit : 'a t -> client:string -> 'a -> (int, string) result
(** Enqueue for [client]; [Ok depth] is the client's queue depth after
    admission, [Error] explains a refused (window-full) submission. *)

val take : 'a t -> (string * 'a) option
(** Next job in round-robin-across-clients, FIFO-within-client order. *)

val pending : 'a t -> int
(** Jobs queued across all clients. *)

val pending_for : 'a t -> string -> int
val clients : 'a t -> int
