let serve_var = "FI_ENGINE_SVC_SERVE"

(* Handshake patience, mutable for the same reason as {!Remote}'s: the
   torture suite makes half-open peers cheap. *)
let handshake_timeout = ref 10.

(* ------------------------------------------------------------------ *)
(* Wire formats                                                       *)
(* ------------------------------------------------------------------ *)

(* Like {!Remote.wire_job}, a submission carries cell DESCRIPTIONS —
   assembled images plus plan-shaping policy fields — never closures.
   Marshal without [Closures] is sound because the handshake's binary
   digest already pinned both ends to the same executable. *)
type wire_cell = {
  c_benchmark : string;
  c_variant : string;
  c_model : Faultspace.model;
  c_limit : int option;
  c_shard_size : int option;
  c_weighted : bool;
  c_program : Program.t;
}

type wire_quarantined = {
  wq_shard : int;
  wq_classes : int;
  wq_attempts : int;
  wq_cause : string;
}

type wire_result = {
  r_label : string;
  r_scan : Scan.t;
  r_cached : bool;  (** Served from the result store — zero shards run. *)
  r_quarantined : wire_quarantined list;
}

let submit_magic = "fi-svc v1\n"
let result_magic = "fi-res v1\n"

let with_magic magic v = magic ^ Marshal.to_string v []

let of_magic : 'a. string -> string -> 'a option =
 fun magic s ->
  let mlen = String.length magic in
  if String.length s <= mlen || String.sub s 0 mlen <> magic then None
  else match Marshal.from_string s mlen with
    | v -> Some v
    | exception _ -> None

let encode_submission (cells : wire_cell list) = with_magic submit_magic cells

let decode_submission s : wire_cell list option = of_magic submit_magic s

let encode_results (rs : wire_result list) = with_magic result_magic rs

let decode_results s : wire_result list option = of_magic result_magic s

let cell_of_spec (spec : Spec.t) =
  {
    c_benchmark = spec.Spec.benchmark;
    c_variant = spec.Spec.variant;
    c_model = spec.Spec.model;
    c_limit = spec.Spec.limit;
    c_shard_size = spec.Spec.policy.Spec.sharding.Spec.shard_size;
    c_weighted = spec.Spec.policy.Spec.sharding.Spec.weighted;
    c_program = Remote.program_of_spec spec;
  }

(* The daemon-side spec: the service's own policy (journalling into its
   artifact directory, caching, supervision) around the client's cell. *)
let spec_of_cell ~policy (c : wire_cell) =
  {
    Spec.benchmark = c.c_benchmark;
    variant = c.c_variant;
    model = c.c_model;
    source = Spec.Build (fun () -> c.c_program);
    limit = c.c_limit;
    policy =
      {
        policy with
        Spec.sharding =
          { Spec.shard_size = c.c_shard_size; weighted = c.c_weighted };
      };
  }

(* The same key the engine will derive in [setup] — consulted by the
   daemon up front so a fully cached submission is served immediately,
   bypassing both the admission queue and the worker fleet. *)
let cell_key ~dir:_ (c : wire_cell) =
  let image = Digest.to_hex (Digest.string (Marshal.to_string c.c_program [])) in
  Cache.cell_key ~image
    ~space:(Faultspace.tag c.c_model)
    ~limit:c.c_limit ~shard_size:c.c_shard_size ~weighted:c.c_weighted

let fully_cached ~dir cells =
  cells <> []
  && List.for_all
       (fun c -> Cache.lookup ~dir (cell_key ~dir c) <> None)
       cells

(* ------------------------------------------------------------------ *)
(* Daemon configuration                                               *)
(* ------------------------------------------------------------------ *)

type config = {
  listen : string;  (** HOST:PORT, port 0 = kernel-assigned. *)
  workers : string list;  (** Remote fleet; [[]] = run locally. *)
  local_backend : string;  (** {!Pool.backend_tag} used when no fleet. *)
  jobs : int;
  window : int;  (** {!Fairq} admission window, per client host. *)
  artifacts : string;  (** Catalogue + result-store directory. *)
  secret_file : string option;
}

let default_config =
  {
    listen = "127.0.0.1:0";
    workers = [];
    local_backend = "domains";
    jobs = 0;
    window = 4;
    artifacts = Catalog.default_dir;
    secret_file = None;
  }

let backend_of_config cfg =
  match cfg.workers with
  | [] -> (
      match Pool.backend_of_string cfg.local_backend with
      | Some b -> b
      | None ->
          failwith
            (Printf.sprintf "unknown service backend %S" cfg.local_backend))
  | hosts -> Pool.Sockets hosts

let announce_line addr =
  Printf.sprintf "fi-svc listening %s digest=%s" (Addr.to_string addr)
    (Handshake.self_digest ())

let parse_announce line =
  match String.split_on_char ' ' line with
  | "fi-svc" :: "listening" :: addr :: _ -> (
      match Addr.parse addr with Ok a -> Some a | Error _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The runner child                                                   *)
(* ------------------------------------------------------------------ *)

(* One forked child per admitted job.  It inherits the client's
   connection and streams progress and the final result straight to the
   submitter; the parent loop never blocks on a campaign.  A client that
   disconnects mid-run turns the child's sends into EPIPE — swallowed
   (SIGPIPE is ignored daemon-wide), so the campaign still finishes and
   its cells are still published to the result store for the next
   submitter. *)
let run_job ~cfg ~secret conn cells =
  let policy =
    Spec.make_policy ~catalogue:cfg.artifacts ~cache:cfg.artifacts
      ~max_retries:2 ~quarantine:true ()
  in
  let specs = List.map (spec_of_cell ~policy) cells in
  let lost = ref false in
  let say kind payload =
    if not !lost then
      try Transport.send conn kind payload
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      -> lost := true
  in
  (* A fully cached submission never touches the fleet: the engine's
     consult runs under a local backend, so a busy (or absent) fleet
     cannot delay a hit.  [serve_loop] only routes here when every cell
     is already published. *)
  let backend =
    if fully_cached ~dir:cfg.artifacts cells then Pool.Domains
    else backend_of_config cfg
  in
  match
    Engine.run_matrix_results ~backend ~jobs:cfg.jobs
      ~observe:
        (Progress.throttled (fun snap -> say Frame.Prog (Progress.render snap)))
      ~on_event:(fun msg -> say Frame.Stat (Printf.sprintf "supervision %s" msg))
      ?secret specs
  with
  | results ->
      let wired =
        List.map2
          (fun spec (r : Engine.result) ->
            {
              r_label = Spec.label spec;
              r_scan = r.Engine.scan;
              r_cached = r.Engine.cached;
              r_quarantined =
                List.map
                  (fun (q : Engine.quarantined) ->
                    {
                      wq_shard = q.Engine.q_shard;
                      wq_classes = q.Engine.q_classes;
                      wq_attempts = q.Engine.q_attempts;
                      wq_cause = q.Engine.q_cause;
                    })
                  r.Engine.quarantined;
            })
          specs results
      in
      say Frame.Res (encode_results wired)
  | exception exn -> say Frame.Err (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* The daemon                                                         *)
(* ------------------------------------------------------------------ *)

(* Parent-side state for one connected client. *)
type session = {
  s_conn : Transport.conn;
  s_host : string;  (** Fairness key: the peer's host part. *)
  mutable s_submitted : bool;  (** One job per connection. *)
  mutable s_running : bool;  (** A runner child owns the reply stream. *)
}

let host_of_peer peer =
  match String.rindex_opt peer ':' with
  | Some i -> String.sub peer 0 i
  | None -> peer

let serve ?(config = default_config) ?(announce = fun _ -> ()) () =
  let cfg = config in
  let secret =
    match cfg.secret_file with
    | None -> None
    | Some file -> (
        match Hmac.load_secret file with
        | Ok s -> Some s
        | Error msg -> failwith msg)
  in
  let listen_addr = Addr.parse_exn cfg.listen in
  match Transport.listen listen_addr with
  | Error msg -> failwith msg
  | Ok (lfd, addr) ->
      ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
      Catalog.ensure_dir cfg.artifacts;
      announce (announce_line addr);
      let sessions : (Unix.file_descr, session) Hashtbl.t = Hashtbl.create 8 in
      let queue : (session * wire_cell list) Fairq.t =
        Fairq.create ~window:cfg.window
      in
      (* The fleet (or the local pool) conducts one campaign at a time:
         queued jobs wait their fair turn.  Cache-hit jobs fork
         immediately and don't occupy the seat. *)
      let fleet_pid = ref None in
      let hit_pids = ref [] in
      let drop s =
        Hashtbl.remove sessions (Transport.fd s.s_conn);
        Transport.close s.s_conn
      in
      (* After forking a runner the parent parks the session: the child
         owns the reply stream; the parent only watches for EOF so a
         vanished client is cleaned up promptly. *)
      let reap () =
        let finish pid =
          if !fleet_pid = Some pid then fleet_pid := None;
          hit_pids := List.filter (fun p -> p <> pid) !hit_pids
        in
        let rec go () =
          match Unix.waitpid [ Unix.WNOHANG ] (-1) with
          | 0, _ -> ()
          | pid, _ ->
              finish pid;
              go ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        in
        go ()
      in
      let fork_runner s cells =
        match Unix.fork () with
        | 0 ->
            Sysio.close_quietly lfd;
            Hashtbl.iter
              (fun fd _ ->
                if fd <> Transport.fd s.s_conn then Sysio.close_quietly fd)
              sessions;
            (try run_job ~cfg ~secret s.s_conn cells
             with exn ->
               Printf.eprintf "fi-svc runner (pid %d): %s\n%!" (Unix.getpid ())
                 (Printexc.to_string exn));
            exit 0
        | pid ->
            s.s_running <- true;
            pid
      in
      let status_line () =
        Printf.sprintf
          "fi-svc status clients=%d queued=%d busy=%b cached-cells=%d window=%d"
          (Hashtbl.length sessions) (Fairq.pending queue)
          (!fleet_pid <> None)
          (List.length (Cache.entries ~dir:cfg.artifacts))
          cfg.window
      in
      let handle_submit s payload =
        match decode_submission payload with
        | None ->
            Transport.send s.s_conn Frame.Err "undecodable submission payload";
            drop s
        | Some [] ->
            Transport.send s.s_conn Frame.Err "empty submission";
            drop s
        | Some _ when s.s_submitted ->
            Transport.send s.s_conn Frame.Err
              "one submission per connection — reconnect for the next job"
        | Some cells ->
            s.s_submitted <- true;
            if fully_cached ~dir:cfg.artifacts cells then begin
              (* Cache hit: serve instantly, off-queue, fleet untouched. *)
              Transport.send s.s_conn Frame.Stat "cache-hit serving";
              hit_pids := fork_runner s cells :: !hit_pids
            end
            else (
              match Fairq.admit queue ~client:s.s_host (s, cells) with
              | Ok depth ->
                  Transport.send s.s_conn Frame.Stat
                    (Printf.sprintf "queued depth=%d" depth)
              | Error msg ->
                  Transport.send s.s_conn Frame.Err msg;
                  drop s)
      in
      let handle_frame s (kind, payload) =
        match kind with
        | Frame.Submit -> handle_submit s payload
        | Frame.Stat -> Transport.send s.s_conn Frame.Stat (status_line ())
        | Frame.Hello -> () (* tolerated: re-hello is a no-op *)
        | Frame.Job | Frame.Door | Frame.Seg | Frame.Err | Frame.Prog
        | Frame.Res ->
            Transport.send s.s_conn Frame.Err
              (Printf.sprintf "unexpected %s frame" (Frame.kind_tag kind));
            drop s
      in
      let accept_one () =
        let conn = Transport.accept lfd in
        match Transport.recv ~timeout:!handshake_timeout conn with
        | Some (Frame.Hello, payload) -> (
            let mine = Handshake.hello ?secret () in
            match Handshake.decode payload with
            | None -> Transport.close conn
            | Some theirs -> (
                match Handshake.check ?secret ~mine ~theirs () with
                | Error msg ->
                    (try Transport.send conn Frame.Err msg
                     with Unix.Unix_error _ -> ());
                    Transport.close conn
                | Ok () ->
                    Transport.send conn Frame.Hello (Handshake.encode mine);
                    Hashtbl.replace sessions (Transport.fd conn)
                      {
                        s_conn = conn;
                        s_host = host_of_peer (Transport.peer conn);
                        s_submitted = false;
                        s_running = false;
                      }))
        | Some _ | None -> Transport.close conn
        | exception Frame.Corrupt _ -> Transport.close conn
        | exception Unix.Unix_error _ -> Transport.close conn
      in
      while true do
        reap ();
        (* One fleet campaign at a time; pop the next fair job. *)
        (if !fleet_pid = None then
           match Fairq.take queue with
           | Some (_, (s, cells)) -> fleet_pid := Some (fork_runner s cells)
           | None -> ());
        let fds =
          lfd
          :: Hashtbl.fold
               (fun fd s acc -> if s.s_running then acc else fd :: acc)
               sessions []
        in
        let ready = Sysio.select_read fds 0.2 in
        List.iter
          (fun fd ->
            if fd = lfd then accept_one ()
            else
              match Hashtbl.find_opt sessions fd with
              | None -> ()
              | Some s -> (
                  match Transport.pump s.s_conn with
                  | `Eof | `Corrupt _ -> drop s
                  | `Frames frames -> (
                      try List.iter (handle_frame s) frames
                      with Unix.Unix_error _ -> drop s)))
          ready;
        (* Sessions whose runner finished linger only until EOF; poll
           them cheaply so a completed client that closed its end is
           released. *)
        Hashtbl.iter
          (fun fd s ->
            if s.s_running then
              match Sysio.select_read [ fd ] 0. with
              | [ _ ] -> (
                  match Transport.pump s.s_conn with
                  | `Eof | `Corrupt _ -> drop s
                  | `Frames _ -> ())
              | _ -> ())
          (Hashtbl.copy sessions)
      done

(* ------------------------------------------------------------------ *)
(* Re-exec entry point and test/bench harness                         *)
(* ------------------------------------------------------------------ *)

let hex_encode s =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init (String.length s) (fun i -> Char.code s.[i])))

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    match
      String.init (n / 2) (fun i ->
          Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
    with
    | v -> Some v
    | exception _ -> None

let guard () =
  match Sys.getenv_opt serve_var with
  | None | Some "" -> ()
  | Some value ->
      (try
         (match Option.bind (hex_decode value) (of_magic submit_magic) with
         | None -> failwith (Printf.sprintf "bad %s value" serve_var)
         | Some (config : config) ->
             (try ignore (Unix.setsid ()) with Unix.Unix_error _ -> ());
             serve ~config
               ~announce:(fun line ->
                 print_endline line;
                 flush stdout)
               ());
         exit 0
       with exn ->
         Printf.eprintf "fi-svc daemon (pid %d): %s\n%!" (Unix.getpid ())
           (Printexc.to_string exn);
         exit 3)

let spawn_daemon ?(config = default_config) () =
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let env =
    Array.append (Unix.environment ())
      [|
        Printf.sprintf "%s=%s" serve_var
          (hex_encode (with_magic submit_magic config));
      |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let rec await budget last =
    if budget = 0 then
      Error (Printf.sprintf "daemon announced %S instead of an address" last)
    else
      match input_line ic with
      | line -> (
          match parse_announce line with
          | Some addr -> Ok (pid, addr)
          | None -> await (budget - 1) line)
      | exception End_of_file ->
          ignore (Unix.waitpid [] pid);
          Error "daemon exited before announcing its address"
  in
  await 64 "<nothing>"

let kill_daemon pid =
  (try Unix.kill (-pid) Sys.sigkill
   with Unix.Unix_error _ -> (
     try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()));
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Thin clients (fi-cli submit / status)                              *)
(* ------------------------------------------------------------------ *)

let with_service ?secret addr f =
  match Transport.connect addr with
  | Error _ as e -> e
  | Ok conn ->
      let tidy r =
        Transport.close conn;
        r
      in
      (match Remote.shake ?secret conn ~fingerprint:"" with
      | Error msg -> tidy (Error msg)
      | Ok _ -> (
          match f conn with
          | r -> tidy r
          | exception Frame.Corrupt msg -> tidy (Error msg)
          | exception Unix.Unix_error (err, _, _) ->
              tidy (Error (Unix.error_message err))))

let submit ?secret ?(on_progress = fun _ -> ()) ~addr cells =
  with_service ?secret addr (fun conn ->
      Transport.send conn Frame.Submit (encode_submission cells);
      let rec await () =
        match Transport.recv conn with
        | None -> Error "service closed the connection before a result"
        | Some (Frame.Stat, line) | Some (Frame.Prog, line) ->
            on_progress line;
            await ()
        | Some (Frame.Res, payload) -> (
            match decode_results payload with
            | Some rs -> Ok rs
            | None -> Error "undecodable result payload")
        | Some (Frame.Err, msg) -> Error (Printf.sprintf "service refused: %s" msg)
        | Some (kind, _) ->
            Error
              (Printf.sprintf "service sent an unexpected %s frame"
                 (Frame.kind_tag kind))
      in
      await ())

let status ?secret ~addr () =
  with_service ?secret addr (fun conn ->
      Transport.send conn Frame.Stat "";
      match Transport.recv ~timeout:!handshake_timeout conn with
      | Some (Frame.Stat, line) -> Ok line
      | Some (Frame.Err, msg) -> Error (Printf.sprintf "service refused: %s" msg)
      | Some (kind, _) ->
          Error
            (Printf.sprintf "service sent an unexpected %s frame"
               (Frame.kind_tag kind))
      | None -> Error "service closed the connection")
