(* Fair FIFO-per-client admission queue.

   One FIFO per client key, served round-robin across keys: a client
   that floods the service delays only its own later jobs, never
   another client's first.  The admission window bounds how much any
   one client may have pending — refusal is immediate and explicit, so
   back-pressure reaches the submitter instead of growing an unbounded
   heap in the daemon. *)

type 'a t = {
  window : int;
  queues : (string, 'a Queue.t) Hashtbl.t;
  mutable ring : string list;  (** Clients with pending jobs; head serves next. *)
}

let create ~window =
  if window < 1 then invalid_arg (Printf.sprintf "Fairq.create: window %d" window);
  { window; queues = Hashtbl.create 8; ring = [] }

let pending_for t client =
  match Hashtbl.find_opt t.queues client with
  | None -> 0
  | Some q -> Queue.length q

let pending t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0

let clients t = List.length t.ring

let admit t ~client job =
  let depth = pending_for t client in
  if depth >= t.window then
    Error
      (Printf.sprintf
         "admission window full: client %s already has %d job%s queued"
         client depth
         (if depth > 1 then "s" else ""))
  else begin
    let q =
      match Hashtbl.find_opt t.queues client with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add t.queues client q;
          t.ring <- t.ring @ [ client ];
          q
    in
    Queue.add job q;
    Ok (depth + 1)
  end

let take t =
  match t.ring with
  | [] -> None
  | client :: rest ->
      let q = Hashtbl.find t.queues client in
      let job = Queue.pop q in
      if Queue.is_empty q then begin
        Hashtbl.remove t.queues client;
        t.ring <- rest
      end
      else t.ring <- rest @ [ client ];
      Some (client, job)
