(** Textual serialization of MIR programs.

    Corpus entries mined by the susceptibility fuzzer ({!Fi_fuzz}) are
    checked into version control and replayed across hosts and OCaml
    versions, so they cannot rely on [Marshal]: this module renders a
    {!Mir.prog} as a stable s-expression text and parses it back to a
    structurally identical value.

    The format is versioned by the leading atom ([mir-v1]); any future
    change to the MIR surface bumps it, so stale corpus entries fail
    loudly at parse time instead of silently re-interpreting. *)

val to_string : Mir.prog -> string
(** Render a program.  [of_string (to_string p) = Ok p] for every
    checkable program (property-tested on fuzzer-generated programs). *)

val of_string : string -> (Mir.prog, string) result
(** Parse a rendered program.  The result is {e not} re-checked — run
    {!Check.check} before compiling untrusted text. *)
