(* Versioned s-expression round-trip for MIR programs.

   The encoder quotes every string (names may collide with keywords,
   Out_str payloads are arbitrary bytes); the decoder accepts bare atoms
   and quoted strings interchangeably, so hand-edited corpus entries
   stay parseable. *)

let version = "mir-v1"

(* ------------------------------------------------------------------ *)
(* S-expressions                                                      *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | List of sexp list

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let is_bare = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '+' | '_' | '\'' | '.' ->
      true
  | _ -> false

let quote b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string b (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec render b = function
  | Atom s ->
      if s <> "" && String.for_all is_bare s then Buffer.add_string b s
      else quote b s
  | List items ->
      Buffer.add_char b '(';
      List.iteri
        (fun k item ->
          if k > 0 then Buffer.add_char b ' ';
          render b item)
        items;
      Buffer.add_char b ')'

(* One token / sexp reader over a string with a mutable cursor. *)
let parse_sexps text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let skip_ws () =
    let continue_ = ref true in
    while !continue_ do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          incr pos;
          continue_ := true
      | Some ';' ->
          (* comment to end of line *)
          while !pos < n && text.[!pos] <> '\n' do
            incr pos
          done
      | _ -> continue_ := false
    done
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit %C" c
  in
  let read_quoted () =
    incr pos (* opening quote *);
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match text.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          if !pos + 1 >= n then fail "unterminated escape";
          (match text.[!pos + 1] with
          | '"' -> Buffer.add_char b '"'; pos := !pos + 2
          | '\\' -> Buffer.add_char b '\\'; pos := !pos + 2
          | 'n' -> Buffer.add_char b '\n'; pos := !pos + 2
          | 'r' -> Buffer.add_char b '\r'; pos := !pos + 2
          | 't' -> Buffer.add_char b '\t'; pos := !pos + 2
          | 'x' ->
              if !pos + 3 >= n then fail "unterminated \\x escape";
              Buffer.add_char b
                (Char.chr
                   ((16 * hex_digit text.[!pos + 2]) + hex_digit text.[!pos + 3]));
              pos := !pos + 4
          | c -> fail "unknown escape \\%C" c);
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let read_bare () =
    let start = !pos in
    while !pos < n && is_bare text.[!pos] do
      incr pos
    done;
    if !pos = start then fail "unexpected character %C" text.[!pos];
    String.sub text start (!pos - start)
  in
  let rec read_sexp () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
        incr pos;
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          match peek () with
          | None -> fail "unterminated list"
          | Some ')' -> incr pos
          | Some _ ->
              items := read_sexp () :: !items;
              items_loop ()
        in
        items_loop ();
        List (List.rev !items)
    | Some ')' -> fail "unexpected ')'"
    | Some '"' -> Atom (read_quoted ())
    | Some _ -> Atom (read_bare ())
  in
  let sexps = ref [] in
  skip_ws ();
  while !pos < n do
    sexps := read_sexp () :: !sexps;
    skip_ws ()
  done;
  List.rev !sexps

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let atom s = Atom s
let str s = Atom s (* rendered quoted unless it is a bare identifier *)
let int_atom n = Atom (string_of_int n)
let i32_atom v = Atom (Int32.to_string v)

let binop_name = function
  | Mir.Add -> "add"
  | Mir.Sub -> "sub"
  | Mir.Mul -> "mul"
  | Mir.Divu -> "divu"
  | Mir.Remu -> "remu"
  | Mir.And -> "and"
  | Mir.Or -> "or"
  | Mir.Xor -> "xor"
  | Mir.Shl -> "shl"
  | Mir.Shr -> "shr"

let cmpop_name = function
  | Mir.Eq -> "eq"
  | Mir.Ne -> "ne"
  | Mir.Lt -> "lt"
  | Mir.Ge -> "ge"
  | Mir.Ltu -> "ltu"
  | Mir.Geu -> "geu"

let rec sexp_of_expr = function
  | Mir.Int v -> List [ atom "i"; i32_atom v ]
  | Mir.Global g -> List [ atom "g"; str g ]
  | Mir.Elem (a, e) -> List [ atom "elem"; str a; sexp_of_expr e ]
  | Mir.Byte (a, e) -> List [ atom "byte"; str a; sexp_of_expr e ]
  | Mir.Local l -> List [ atom "l"; str l ]
  | Mir.Bin (op, a, b) ->
      List [ atom (binop_name op); sexp_of_expr a; sexp_of_expr b ]
  | Mir.Cmp (op, a, b) ->
      List [ atom (cmpop_name op); sexp_of_expr a; sexp_of_expr b ]
  | Mir.Call (f, args) ->
      List (atom "call" :: str f :: List.map sexp_of_expr args)

let rec sexp_of_stmt = function
  | Mir.Set_global (g, e) -> List [ atom "setg"; str g; sexp_of_expr e ]
  | Mir.Set_elem (a, i, v) ->
      List [ atom "sete"; str a; sexp_of_expr i; sexp_of_expr v ]
  | Mir.Set_byte (a, i, v) ->
      List [ atom "setb"; str a; sexp_of_expr i; sexp_of_expr v ]
  | Mir.Set_local (l, e) -> List [ atom "setl"; str l; sexp_of_expr e ]
  | Mir.If (c, t, e) ->
      List
        [
          atom "if"; sexp_of_expr c;
          List (atom "then" :: List.map sexp_of_stmt t);
          List (atom "else" :: List.map sexp_of_stmt e);
        ]
  | Mir.While (c, body) ->
      List (atom "while" :: sexp_of_expr c :: List.map sexp_of_stmt body)
  | Mir.Do_call (f, args) ->
      List (atom "docall" :: str f :: List.map sexp_of_expr args)
  | Mir.Return None -> List [ atom "ret" ]
  | Mir.Return (Some e) -> List [ atom "ret"; sexp_of_expr e ]
  | Mir.Out e -> List [ atom "out"; sexp_of_expr e ]
  | Mir.Out_str s -> List [ atom "outstr"; str s ]
  | Mir.Detect v -> List [ atom "detect"; i32_atom v ]
  | Mir.Panic v -> List [ atom "panic"; i32_atom v ]

let sexp_of_ty = function
  | Mir.I32 -> atom "i32"
  | Mir.Words n -> List [ atom "words"; int_atom n ]
  | Mir.Byte_array n -> List [ atom "bytes"; int_atom n ]

let sexp_of_global (g : Mir.global) =
  List
    (atom "global" :: str g.Mir.g_name :: sexp_of_ty g.Mir.g_ty
    :: (if g.Mir.g_protected then [ atom "protected" ] else [])
    @ [ List (atom "init" :: List.map i32_atom g.Mir.g_init) ])

let sexp_of_func (f : Mir.func) =
  List
    (atom "func" :: str f.Mir.f_name
    :: List (atom "params" :: List.map str f.Mir.f_params)
    :: List (atom "locals" :: List.map str f.Mir.f_locals)
    :: List (atom "protects" :: List.map str f.Mir.f_protects)
    :: List.map sexp_of_stmt f.Mir.f_body)

let to_string (p : Mir.prog) =
  let b = Buffer.create 1024 in
  let line sexp =
    render b sexp;
    Buffer.add_char b '\n'
  in
  line (Atom version);
  line (List [ atom "name"; str p.Mir.p_name ]);
  line (List [ atom "stack"; int_atom p.Mir.p_stack_bytes ]);
  List.iter (fun g -> line (sexp_of_global g)) p.Mir.p_globals;
  List.iter (fun f -> line (sexp_of_func f)) p.Mir.p_funcs;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Decoding                                                           *)
(* ------------------------------------------------------------------ *)

let as_string = function
  | Atom s -> s
  | List _ -> fail "expected a string, got a list"

let as_int sexp =
  match int_of_string_opt (as_string sexp) with
  | Some n -> n
  | None -> fail "expected an integer, got %S" (as_string sexp)

let as_i32 sexp =
  match Int32.of_string_opt (as_string sexp) with
  | Some v -> v
  | None -> fail "expected an int32, got %S" (as_string sexp)

let binop_of_name = function
  | "add" -> Some Mir.Add
  | "sub" -> Some Mir.Sub
  | "mul" -> Some Mir.Mul
  | "divu" -> Some Mir.Divu
  | "remu" -> Some Mir.Remu
  | "and" -> Some Mir.And
  | "or" -> Some Mir.Or
  | "xor" -> Some Mir.Xor
  | "shl" -> Some Mir.Shl
  | "shr" -> Some Mir.Shr
  | _ -> None

let cmpop_of_name = function
  | "eq" -> Some Mir.Eq
  | "ne" -> Some Mir.Ne
  | "lt" -> Some Mir.Lt
  | "ge" -> Some Mir.Ge
  | "ltu" -> Some Mir.Ltu
  | "geu" -> Some Mir.Geu
  | _ -> None

let rec expr_of_sexp = function
  | Atom s -> fail "bare atom %S where an expression was expected" s
  | List (Atom "i" :: [ v ]) -> Mir.Int (as_i32 v)
  | List (Atom "g" :: [ g ]) -> Mir.Global (as_string g)
  | List (Atom "elem" :: [ a; e ]) -> Mir.Elem (as_string a, expr_of_sexp e)
  | List (Atom "byte" :: [ a; e ]) -> Mir.Byte (as_string a, expr_of_sexp e)
  | List (Atom "l" :: [ l ]) -> Mir.Local (as_string l)
  | List (Atom "call" :: f :: args) ->
      Mir.Call (as_string f, List.map expr_of_sexp args)
  | List [ Atom op; a; b ] -> (
      match (binop_of_name op, cmpop_of_name op) with
      | Some bop, _ -> Mir.Bin (bop, expr_of_sexp a, expr_of_sexp b)
      | None, Some cop -> Mir.Cmp (cop, expr_of_sexp a, expr_of_sexp b)
      | None, None -> fail "unknown operator %S" op)
  | List _ -> fail "malformed expression"

let rec stmt_of_sexp = function
  | Atom s -> fail "bare atom %S where a statement was expected" s
  | List (Atom "setg" :: [ g; e ]) ->
      Mir.Set_global (as_string g, expr_of_sexp e)
  | List (Atom "sete" :: [ a; i; v ]) ->
      Mir.Set_elem (as_string a, expr_of_sexp i, expr_of_sexp v)
  | List (Atom "setb" :: [ a; i; v ]) ->
      Mir.Set_byte (as_string a, expr_of_sexp i, expr_of_sexp v)
  | List (Atom "setl" :: [ l; e ]) ->
      Mir.Set_local (as_string l, expr_of_sexp e)
  | List (Atom "if" :: [ c; List (Atom "then" :: t); List (Atom "else" :: e) ])
    ->
      Mir.If (expr_of_sexp c, List.map stmt_of_sexp t, List.map stmt_of_sexp e)
  | List (Atom "while" :: c :: body) ->
      Mir.While (expr_of_sexp c, List.map stmt_of_sexp body)
  | List (Atom "docall" :: f :: args) ->
      Mir.Do_call (as_string f, List.map expr_of_sexp args)
  | List [ Atom "ret" ] -> Mir.Return None
  | List (Atom "ret" :: [ e ]) -> Mir.Return (Some (expr_of_sexp e))
  | List (Atom "out" :: [ e ]) -> Mir.Out (expr_of_sexp e)
  | List (Atom "outstr" :: [ s ]) -> Mir.Out_str (as_string s)
  | List (Atom "detect" :: [ v ]) -> Mir.Detect (as_i32 v)
  | List (Atom "panic" :: [ v ]) -> Mir.Panic (as_i32 v)
  | List (Atom kw :: _) -> fail "unknown statement %S" kw
  | List _ -> fail "malformed statement"

let ty_of_sexp = function
  | Atom "i32" -> Mir.I32
  | List [ Atom "words"; n ] -> Mir.Words (as_int n)
  | List [ Atom "bytes"; n ] -> Mir.Byte_array (as_int n)
  | Atom s -> fail "unknown type %S" s
  | List _ -> fail "malformed type"

let global_of_sexp = function
  | List (Atom "global" :: name :: ty :: rest) ->
      let protected, rest =
        match rest with
        | Atom "protected" :: rest -> (true, rest)
        | rest -> (false, rest)
      in
      let init =
        match rest with
        | [ List (Atom "init" :: vs) ] -> List.map as_i32 vs
        | [] -> []
        | _ -> fail "malformed global %S" (as_string name)
      in
      {
        Mir.g_name = as_string name;
        g_ty = ty_of_sexp ty;
        g_init = init;
        g_protected = protected;
      }
  | _ -> fail "expected (global ...)"

let func_of_sexp = function
  | List
      (Atom "func" :: name
      :: List (Atom "params" :: params)
      :: List (Atom "locals" :: locals)
      :: List (Atom "protects" :: protects)
      :: body) ->
      {
        Mir.f_name = as_string name;
        f_params = List.map as_string params;
        f_locals = List.map as_string locals;
        f_protects = List.map as_string protects;
        f_body = List.map stmt_of_sexp body;
      }
  | _ -> fail "expected (func ...)"

let of_string text =
  match parse_sexps text with
  | exception Parse msg -> Error ("mir-text: " ^ msg)
  | Atom v :: items when v = version -> (
      try
        let name = ref None and stack = ref None in
        let globals = ref [] and funcs = ref [] in
        List.iter
          (fun item ->
            match item with
            | List [ Atom "name"; n ] -> name := Some (as_string n)
            | List [ Atom "stack"; n ] -> stack := Some (as_int n)
            | List (Atom "global" :: _) ->
                globals := global_of_sexp item :: !globals
            | List (Atom "func" :: _) -> funcs := func_of_sexp item :: !funcs
            | List (Atom kw :: _) -> fail "unknown section %S" kw
            | _ -> fail "malformed section")
          items;
        match (!name, !stack) with
        | Some p_name, Some p_stack_bytes ->
            Ok
              {
                Mir.p_name;
                p_globals = List.rev !globals;
                p_funcs = List.rev !funcs;
                p_stack_bytes;
              }
        | None, _ -> Error "mir-text: missing (name ...)"
        | _, None -> Error "mir-text: missing (stack ...)"
      with Parse msg -> Error ("mir-text: " ^ msg))
  | Atom v :: _ -> Error (Printf.sprintf "mir-text: version %S, want %S" v version)
  | _ -> Error "mir-text: missing version header"
