(** The content-addressed result store: [cell key → finished journal].

    A campaign cell's key ({!cell_key}) is a stable fingerprint of
    everything that determines its results — program image digest,
    fault space, and the plan-shaping execution policy (experiment
    limit, shard size, weighted sampling).  Any campaign or matrix that
    reaches a cell whose key is already in the store gets the finished
    journal for free; the engine replays it through the same
    CRC/fingerprint-guarded merge path a [--resume] uses, so a cache
    hit is bit-identical to a fresh run by construction.

    The store is a sibling of the journal catalogue ({e journals.idx}):
    one append-only line index per artifact directory, later entries
    winning, junk lines skipped, writers serialised by {!Lockfile}.
    Only {e finished, unquarantined} journals may be published — the
    engine enforces that; the store just records the mapping. *)

val index_name : string
(** ["results.idx"]. *)

val index_path : dir:string -> string
val ensure_dir : string -> unit

val key_length : int
(** Length of every {!cell_key} (32: hex MD5). *)

val cell_key :
  image:string ->
  space:string ->
  limit:int option ->
  shard_size:int option ->
  weighted:bool ->
  string
(** Hex MD5 over a versioned canonical rendering of the cell identity.
    [image] is the program-image digest (hex), [space] the fault-space
    tag.  Supervision and journal-placement policy are deliberately
    excluded: they cannot change results. *)

type entry = {
  key : string;  (** {!cell_key} hex. *)
  fingerprint : int;  (** Campaign CRC-32 the journal must carry. *)
  path : string;  (** The finished journal. *)
}

val parse_line : string -> entry option
val encode_line : entry -> string

val entries : dir:string -> entry list
(** All parseable index lines, in file order (missing index = none). *)

val lookup : dir:string -> string -> entry option
(** Latest entry for this key, if any. *)

val publish : dir:string -> key:string -> fingerprint:int -> path:string -> unit
(** Append [key → (fingerprint, path)] under the index lock, creating
    directory and index on first use; a no-op if that mapping is
    already current.  Callers must only publish journals that are
    complete and unquarantined. *)

val referenced : dir:string -> string -> bool
(** Membership test over every journal path the store references —
    compaction uses it to keep cache-backed journals alive. *)
