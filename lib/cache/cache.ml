(* The content-addressed result store.

   A campaign cell that has finished anywhere need never run again: its
   key is a stable fingerprint of everything that determines its results
   — the assembled program image, the fault space, and the plan-shaping
   execution policy — and the store maps that key to the finished
   journal, which replays through the engine's normal CRC/fingerprint
   merge path to bit-identical results.

   This generalises the journal catalogue (journals.idx): the catalogue
   answers "where is MY campaign's journal" (keyed by campaign CRC, for
   --resume); the store answers "has ANYONE finished this cell" (keyed
   by content, for free re-runs).  Both are append-only line indexes,
   later entries winning, tolerant of junk lines. *)

let index_name = "results.idx"

let index_path ~dir = Filename.concat dir index_name

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Keying                                                             *)
(* ------------------------------------------------------------------ *)

(* The key folds in exactly the inputs that shape the cell's outcome
   table and shard geometry, under a versioned label so a future keying
   change invalidates cleanly rather than aliasing.  Supervision and
   journalling policy are deliberately absent: retries, timeouts and
   journal placement cannot change results, and including them would
   shatter the cache across equivalent runs. *)
let cell_key ~image ~space ~limit ~shard_size ~weighted =
  let opt = function None -> "none" | Some n -> string_of_int n in
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "fi-cache v1|image=%s|space=%s|limit=%s|shard=%s|weighted=%b"
          image space (opt limit) (opt shard_size) weighted))

let key_length = 32 (* hex MD5 *)

(* ------------------------------------------------------------------ *)
(* The index                                                          *)
(* ------------------------------------------------------------------ *)

type entry = {
  key : string;  (** {!cell_key} hex. *)
  fingerprint : int;  (** Campaign CRC-32 of the journal's campaign. *)
  path : string;  (** The finished journal. *)
}

let is_hex s = String.for_all (function
  | '0' .. '9' | 'a' .. 'f' -> true
  | _ -> false) s

(* One line per entry: 32-hex key, space, 8-hex campaign fingerprint,
   space, journal path (which may itself contain spaces). *)
let parse_line line =
  if
    String.length line >= key_length + 11
    && line.[key_length] = ' '
    && line.[key_length + 9] = ' '
  then
    let key = String.sub line 0 key_length in
    let fp_hex = String.sub line (key_length + 1) 8 in
    let path =
      String.sub line (key_length + 10) (String.length line - key_length - 10)
    in
    if is_hex key then
      match int_of_string_opt ("0x" ^ fp_hex) with
      | Some fingerprint when is_hex fp_hex -> Some { key; fingerprint; path }
      | _ -> None
    else None
  else None

let encode_line e = Printf.sprintf "%s %08x %s" e.key e.fingerprint e.path

let entries ~dir =
  match open_in_bin (index_path ~dir) with
  | exception Sys_error _ -> []
  | ic ->
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      List.filter_map parse_line (String.split_on_char '\n' text)

let lookup ~dir key =
  List.fold_left
    (fun acc e -> if e.key = key then Some e else acc)
    None (entries ~dir)

let publish ~dir ~key ~fingerprint ~path =
  ensure_dir dir;
  Lockfile.with_lock (index_path ~dir) (fun () ->
      (* Re-check under the lock: a concurrent campaign may have
         published the same cell while we were finishing ours. *)
      match lookup ~dir key with
      | Some e when e.fingerprint = fingerprint && e.path = path -> ()
      | _ ->
          let oc =
            open_out_gen
              [ Open_append; Open_creat; Open_binary ]
              0o644 (index_path ~dir)
          in
          output_string oc (encode_line { key; fingerprint; path } ^ "\n");
          close_out oc)

let referenced ~dir =
  let paths = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace paths e.path ()) (entries ~dir);
  fun path -> Hashtbl.mem paths path
