(* Advisory whole-file locking over [Unix.lockf], used to serialise
   index appenders: once campaigns run as a service, two writers on one
   host are the normal case, and unserialised appends can interleave
   half-lines.

   The lock lives in a sidecar [<path>.lock] file rather than on the
   index itself: compaction replaces the index inode (tmp + rename), and
   a lock taken on the old inode would silently stop excluding writers
   that open the new one.  The sidecar is never renamed, so its inode —
   and the exclusion it provides — is stable. *)

let lock_path path = path ^ ".lock"

let rec lockf_retry fd cmd =
  try Unix.lockf fd cmd 0
  with Unix.Unix_error (Unix.EINTR, _, _) -> lockf_retry fd cmd

let with_lock path f =
  let fd =
    Unix.openfile (lock_path path) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  let release () =
    (try lockf_retry fd Unix.F_ULOCK with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  (try lockf_retry fd Unix.F_LOCK
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise exn);
  match f () with
  | v ->
      release ();
      v
  | exception exn ->
      release ();
      raise exn
