(** Advisory whole-file locks ([Unix.lockf]) for index writers.

    The lock is a sidecar [<path>.lock] file, not the index itself —
    compaction replaces the index inode by rename, which would strand a
    lock taken on the old inode while new writers lock the new one.
    Locks are per-process (lockf semantics): this serialises processes,
    which is the concurrency the service introduces. *)

val lock_path : string -> string
(** [path ^ ".lock"] — the sidecar the lock is taken on. *)

val with_lock : string -> (unit -> 'a) -> 'a
(** [with_lock path f] runs [f] holding an exclusive advisory lock
    keyed to [path] (blocking until free), releasing on return or
    exception.  Creates the sidecar on first use. *)
