(** The metrics under study.

    This module implements both the classic fault-coverage factor (whose
    unfitness for program comparison is the paper's central result) and
    the proposed objective metric — absolute failure counts, extrapolated
    to the fault-space size when sampling is used (Section V). *)

val failure_count : ?policy:Accounting.t -> Scan.t -> int
(** [failure_count scan] is F: under the default {!Accounting.correct}
    policy, the number of fault-space coordinates whose injection leads to
    a failure (each experiment counted with its class weight) — the
    paper's comparison metric.  Under an [Unweighted] policy it is the raw
    number of failing experiments (Figure 2d). *)

val no_effect_count : ?policy:Accounting.t -> Scan.t -> int
(** Benign counterpart of {!failure_count}.  Under [Full_space] policies
    this includes the a-priori benign coordinates. *)

val experiment_total : ?policy:Accounting.t -> Scan.t -> int
(** The denominator N implied by the policy: fault-space size [w] for
    [Full_space]+[Weighted], total conducted weight w′ for
    [Conducted_only]+[Weighted], or plain experiment counts when
    unweighted. *)

val coverage : ?policy:Accounting.t -> Scan.t -> float
(** Fault-coverage factor c = 1 − F/N under the given accounting policy
    (Equation 2).  Correct-policy coverage equals
    P(No Effect | 1 fault) exactly for a full scan — and is still unfit
    for comparing {e different} programs (Section IV). *)

val outcome_histogram :
  ?policy:Accounting.t -> Scan.t -> (Outcome.t * int) list
(** Per-outcome totals under the policy (zero-count outcomes omitted). *)

val coverage_improves :
  ?policy:Accounting.t -> baseline:Scan.t -> Scan.t -> bool
(** [coverage hardened > coverage baseline], decided {e exactly}: with
    F and N integers under the policy, the float inequality
    1 − F_h/N_h > 1 − F_b/N_b is evaluated as F_h·N_b < F_b·N_h by
    integer cross-multiplication, so the verdict is identical on every
    host and never flips on a rounding boundary.  (The fuzzer's
    dilution-delusion predicate replays bit-identically because of
    this.)  Empty denominators count as perfect coverage, matching
    {!coverage}. *)

val failure_probability :
  ?rate:Fit_rate.t -> ?ns_per_cycle:float -> Scan.t -> float
(** Equation 5: P(Failure) ≈ F·g·e^{−gw}, the absolute per-run failure
    probability under real-world soft-error rates.  Defaults:
    {!Fit_rate.mean_published} and 1 ns per cycle (1 GHz). *)

val extrapolated_failures : Sampler.estimate -> float
(** Corollary 2 of Pitfall 3:
    F_extrapolated = population × F_sampled / N_sampled. *)

val extrapolated_outcome :
  Sampler.estimate -> Outcome.t -> float
(** Same extrapolation applied to an individual failure mode (the
    generalisation of Section VI-B). *)
