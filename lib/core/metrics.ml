let weight_of ~(policy : Accounting.t) e =
  match policy.Accounting.weighting with
  | Accounting.Weighted -> Scan.experiment_weight e
  | Accounting.Unweighted -> 1

let failure_count ?(policy = Accounting.correct) (scan : Scan.t) =
  Array.fold_left
    (fun acc e ->
      if Outcome.is_failure e.Scan.outcome then acc + weight_of ~policy e
      else acc)
    0 scan.Scan.experiments

let conducted_total ~policy (scan : Scan.t) =
  Array.fold_left (fun acc e -> acc + weight_of ~policy e) 0 scan.Scan.experiments

let experiment_total ?(policy = Accounting.correct) (scan : Scan.t) =
  match (policy.Accounting.population, policy.Accounting.weighting) with
  | Accounting.Full_space, Accounting.Weighted -> Scan.fault_space_size scan
  | Accounting.Full_space, Accounting.Unweighted ->
      (* No meaningful "unweighted full space" exists: a-priori benign
         regions were never split into experiments.  Count conducted
         experiments plus one unit per benign class is not well-defined
         either, so we fall back to conducted experiments — this is what
         papers that fall into Pitfall 1 implicitly do. *)
      Array.length scan.Scan.experiments
  | Accounting.Conducted_only, _ -> conducted_total ~policy scan

let no_effect_count ?(policy = Accounting.correct) (scan : Scan.t) =
  let conducted_benign =
    Array.fold_left
      (fun acc e ->
        if Outcome.is_benign e.Scan.outcome then acc + weight_of ~policy e
        else acc)
      0 scan.Scan.experiments
  in
  match (policy.Accounting.population, policy.Accounting.weighting) with
  | Accounting.Full_space, Accounting.Weighted ->
      conducted_benign + scan.Scan.benign_weight
  | Accounting.Full_space, Accounting.Unweighted
  | Accounting.Conducted_only, _ ->
      conducted_benign

let coverage ?(policy = Accounting.correct) scan =
  let n = experiment_total ~policy scan in
  if n = 0 then 1.0
  else 1.0 -. (float_of_int (failure_count ~policy scan) /. float_of_int n)

let outcome_histogram ?(policy = Accounting.correct) (scan : Scan.t) =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun e ->
      let w = weight_of ~policy e in
      Hashtbl.replace counts e.Scan.outcome
        (w + Option.value ~default:0 (Hashtbl.find_opt counts e.Scan.outcome)))
    scan.Scan.experiments;
  (match (policy.Accounting.population, policy.Accounting.weighting) with
  | Accounting.Full_space, Accounting.Weighted ->
      Hashtbl.replace counts Outcome.No_effect
        (scan.Scan.benign_weight
        + Option.value ~default:0 (Hashtbl.find_opt counts Outcome.No_effect))
  | _ -> ());
  List.filter_map
    (fun o ->
      match Hashtbl.find_opt counts o with
      | Some n when n > 0 -> Some (o, n)
      | Some _ | None -> None)
    Outcome.all

let coverage_improves ?(policy = Accounting.correct) ~baseline hardened =
  let f_b = failure_count ~policy baseline
  and f_h = failure_count ~policy hardened
  and n_b = experiment_total ~policy baseline
  and n_h = experiment_total ~policy hardened in
  (* coverage = 1 − F/N with the empty space counting as coverage 1. *)
  match (n_b = 0, n_h = 0) with
  | true, true -> false (* both perfect: no strict improvement *)
  | false, true -> failure_count ~policy baseline > 0
  | true, false -> false
  | false, false -> f_h * n_b < f_b * n_h

let failure_probability ?(rate = Fit_rate.mean_published)
    ?(ns_per_cycle = 1.0) (scan : Scan.t) =
  let f = float_of_int (failure_count ~policy:Accounting.correct scan) in
  let g = Fit_rate.per_bit_per_ns rate in
  let w_ns_bits =
    float_of_int scan.Scan.cycles *. ns_per_cycle
    *. float_of_int (scan.Scan.ram_bytes * 8)
  in
  (* Equation 5: F·g·e^{-gw}.  F is in bit·cycles; one cycle is
     ns_per_cycle, so the conversion factor is applied to g·w only — F·g
     already carries 1/(ns·bit) × bit·cycle, normalised per cycle. *)
  f *. ns_per_cycle *. g *. exp (-.(g *. w_ns_bits))

let extrapolated_failures (e : Sampler.estimate) =
  if e.Sampler.samples = 0 then 0.0
  else
    float_of_int e.Sampler.population
    *. float_of_int e.Sampler.failures
    /. float_of_int e.Sampler.samples

let extrapolated_outcome (e : Sampler.estimate) outcome =
  if e.Sampler.samples = 0 then 0.0
  else
    let count =
      Option.value ~default:0 (List.assoc_opt outcome e.Sampler.outcome_counts)
    in
    float_of_int e.Sampler.population
    *. float_of_int count
    /. float_of_int e.Sampler.samples
