(** The paper's three pitfalls, packaged as analyses over campaign data so
    reports, examples and tests all share one implementation. *)

(** {1 Pitfall 1: unweighted result accounting} *)

type pitfall1 = {
  unweighted_coverage : float;  (** Figure 2a style. *)
  weighted_coverage : float;  (** Figure 2b style. *)
  delta_percent_points : float;
      (** weighted − unweighted, in percent points.  The paper reports
          9.1–33.2 pp underestimation on its benchmarks. *)
  unweighted_failures : int;  (** Figure 2d style. *)
  weighted_failures : int;  (** Figure 2e style. *)
}

val analyze_pitfall1 : Scan.t -> pitfall1
(** Both accountings of one campaign, side by side. *)

(** {1 Pitfall 2: biased sampling} *)

type pitfall2 = {
  ground_truth_failure_fraction : float;
      (** F/w from the full scan: what an unbiased estimator converges
          to. *)
  correct_estimate : float;
      (** Failure fraction from raw-space sampling. *)
  biased_estimate : float;
      (** Failure fraction from per-class sampling, rescaled to the same
          population the naive evaluator assumes. *)
  bias : float;
      (** |biased − truth| − |correct − truth|: positive when per-class
          sampling is farther from the truth. *)
}

val analyze_pitfall2 :
  scan:Scan.t ->
  correct:Sampler.estimate ->
  biased:Sampler.estimate ->
  pitfall2

(** {1 Pitfall 3: fault coverage as a comparison metric} *)

type pitfall3 = {
  baseline_coverage : float;
  hardened_coverage : float;
  coverage_says : Compare.verdict;
      (** What comparing coverage percentages would conclude. *)
  failure_ratio : float;  (** The objective r = F_h / F_b. *)
  truth_says : Compare.verdict;  (** What the objective metric concludes. *)
  misleading : bool;
      (** The dangerous case: the two verdicts disagree (as for sync2, and
          for the DFT-"hardened" Hi program). *)
}

val analyze_pitfall3 : baseline:Scan.t -> hardened:Scan.t -> pitfall3

(** {1 The dilution delusion (Section IV, the "Hi" kernel)}

    The sharpest form of Pitfall 3: a hardening variant whose fault
    coverage {e strictly improves} while its weighted absolute failure
    count {e strictly rises} — the variant looks better under the
    coverage metric and is objectively worse.  Unlike {!pitfall3}'s
    [misleading] flag (float coverage, verdict bands), this predicate is
    decided on exact integers ({!Metrics.coverage_improves}), so a mined
    counterexample replays bit-identically across hosts. *)

type dilution = {
  baseline_failures : int;  (** Weighted F_b. *)
  hardened_failures : int;  (** Weighted F_h > F_b. *)
  baseline_space : int;  (** w_b = N under the correct policy. *)
  hardened_space : int;  (** w_h. *)
}

val dilution_delusion :
  baseline:Scan.t -> hardened:Scan.t -> dilution option
(** [Some] iff coverage strictly improves ([F_h·w_b < F_b·w_h]) {e and}
    absolute failures strictly rise ([F_h > F_b]), under
    {!Accounting.correct}. *)

val pp_dilution : Format.formatter -> dilution -> unit

val pp_pitfall1 : Format.formatter -> pitfall1 -> unit
val pp_pitfall2 : Format.formatter -> pitfall2 -> unit
val pp_pitfall3 : Format.formatter -> pitfall3 -> unit
