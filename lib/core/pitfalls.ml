type pitfall1 = {
  unweighted_coverage : float;
  weighted_coverage : float;
  delta_percent_points : float;
  unweighted_failures : int;
  weighted_failures : int;
}

let analyze_pitfall1 scan =
  let unweighted_coverage =
    Metrics.coverage ~policy:Accounting.pitfall1 scan
  in
  let weighted_coverage = Metrics.coverage ~policy:Accounting.correct scan in
  {
    unweighted_coverage;
    weighted_coverage;
    delta_percent_points = 100.0 *. (weighted_coverage -. unweighted_coverage);
    unweighted_failures = Metrics.failure_count ~policy:Accounting.pitfall1 scan;
    weighted_failures = Metrics.failure_count ~policy:Accounting.correct scan;
  }

type pitfall2 = {
  ground_truth_failure_fraction : float;
  correct_estimate : float;
  biased_estimate : float;
  bias : float;
}

let analyze_pitfall2 ~scan ~correct ~biased =
  let w = float_of_int (Scan.fault_space_size scan) in
  let truth = float_of_int (Metrics.failure_count scan) /. w in
  let correct_estimate = Sampler.failure_fraction correct in
  let biased_estimate = Sampler.failure_fraction biased in
  {
    ground_truth_failure_fraction = truth;
    correct_estimate;
    biased_estimate;
    bias =
      Float.abs (biased_estimate -. truth)
      -. Float.abs (correct_estimate -. truth);
  }

type pitfall3 = {
  baseline_coverage : float;
  hardened_coverage : float;
  coverage_says : Compare.verdict;
  failure_ratio : float;
  truth_says : Compare.verdict;
  misleading : bool;
}

let analyze_pitfall3 ~baseline ~hardened =
  let baseline_coverage = Metrics.coverage baseline in
  let hardened_coverage = Metrics.coverage hardened in
  let coverage_says = Compare.coverage_comparison ~baseline ~hardened () in
  let failure_ratio = Compare.ratio ~baseline ~hardened in
  let truth_says = Compare.verdict_of_ratio failure_ratio in
  {
    baseline_coverage;
    hardened_coverage;
    coverage_says;
    failure_ratio;
    truth_says;
    misleading = coverage_says <> truth_says;
  }

type dilution = {
  baseline_failures : int;
  hardened_failures : int;
  baseline_space : int;
  hardened_space : int;
}

let dilution_delusion ~baseline ~hardened =
  let f_b = Metrics.failure_count baseline
  and f_h = Metrics.failure_count hardened in
  if f_h > f_b && Metrics.coverage_improves ~baseline hardened then
    Some
      {
        baseline_failures = f_b;
        hardened_failures = f_h;
        baseline_space = Metrics.experiment_total baseline;
        hardened_space = Metrics.experiment_total hardened;
      }
  else None

let pp_dilution ppf d =
  Format.fprintf ppf
    "F %d/%d -> %d/%d: failures x%.3f while coverage %.4f%% -> %.4f%%"
    d.baseline_failures d.baseline_space d.hardened_failures d.hardened_space
    (float_of_int d.hardened_failures /. float_of_int d.baseline_failures)
    (100.0
    *. (1.0
       -. float_of_int d.baseline_failures /. float_of_int d.baseline_space))
    (100.0
    *. (1.0
       -. float_of_int d.hardened_failures /. float_of_int d.hardened_space))

let pp_pitfall1 ppf p =
  Format.fprintf ppf
    "coverage unweighted %.2f%% vs weighted %.2f%% (Δ %.1f pp); failures \
     unweighted %d vs weighted %d"
    (100.0 *. p.unweighted_coverage)
    (100.0 *. p.weighted_coverage)
    p.delta_percent_points p.unweighted_failures p.weighted_failures

let pp_pitfall2 ppf p =
  Format.fprintf ppf
    "truth %.3e, raw-space sampling %.3e, per-class sampling %.3e (excess \
     bias %.3e)"
    p.ground_truth_failure_fraction p.correct_estimate p.biased_estimate
    p.bias

let pp_pitfall3 ppf p =
  Format.fprintf ppf
    "coverage %.2f%% -> %.2f%% says %a; failure ratio r = %.3f says %a%s"
    (100.0 *. p.baseline_coverage)
    (100.0 *. p.hardened_coverage)
    Compare.pp_verdict p.coverage_says p.failure_ratio Compare.pp_verdict
    p.truth_says
    (if p.misleading then " [MISLEADING]" else "")
