; checksum.s — a hand-written benchmark for the textual assembler.
;
; Computes an 8-bit rotating checksum over a message held in RAM (the
; fault-susceptible region) against an expected value held in ROM (the
; immune region), and reports PASS/FAIL plus the checksum digits.
;
;   dune exec bin/fi_cli.exe -- run asm/checksum.s
;   dune exec bin/fi_cli.exe -- campaign asm/checksum.s
;
; The message bytes live in RAM from reset until the checksum loop reads
; them — long lifetimes, so most of this program's failure mass sits in
; the message buffer, a miniature of the paper's "critical data" story.

.ram 64
.data
message:  .ascii "fault injection"
msg_len:  .word 15
.rodata
expected: .word 49

.text
main:
    li   r1, message       ; cursor
    lw   r2, msg_len       ; remaining
    li   r3, 0             ; checksum accumulator
loop:
    lb   r4, 0(r1)
    add  r3, r3, r4        ; sum += byte
    shli r5, r3, 1         ; rotate-ish: sum = ((sum<<1) | (sum>>7)) & 0xFF
    shri r6, r3, 7
    or   r3, r5, r6
    andi r3, r3, 0xFF
    addi r1, r1, 1
    subi r2, r2, 1
    bne  r2, r0, loop

    ; compare with the expected value from ROM
    li   r7, expected
    lw   r8, 0(r7)
    li   r9, 0x300000      ; serial port
    beq  r3, r8, pass
    li   r10, 'F'
    sb   r10, 0(r9)
    jmp  digits
pass:
    li   r10, 'P'
    sb   r10, 0(r9)
digits:
    ; print the checksum as three decimal digits
    li   r11, 100
    divu r12, r3, r11
    addi r12, r12, 48
    sb   r12, 0(r9)
    remu r12, r3, r11
    li   r11, 10
    divu r5, r12, r11
    addi r5, r5, 48
    sb   r5, 0(r9)
    remu r5, r12, r11
    addi r5, r5, 48
    sb   r5, 0(r9)
    li   r5, 10
    sb   r5, 0(r9)         ; newline
    halt
