; sort.s — bubble sort over a RAM-resident array, then print it.
;
;   dune exec bin/fi_cli.exe -- run asm/sort.s
;   dune exec bin/fi_cli.exe -- trace asm/sort.s
;
; Sorting is a classic FI workload: array cells are written and read many
; times, producing short def/use lifetimes early and long tails late —
; the opposite lifetime profile of checksum.s.

.ram 96
.data
values: .word 7 3 9 1 8 2 6 4
count:  .word 8

.text
main:
    lw   r1, count        ; n
outer:
    subi r1, r1, 1
    beq  r1, r0, print
    li   r2, 0            ; i = 0
    li   r3, values
inner:
    lw   r4, 0(r3)
    lw   r5, 4(r3)
    bge  r5, r4, no_swap  ; already ordered
    sw   r5, 0(r3)
    sw   r4, 4(r3)
no_swap:
    addi r3, r3, 4
    addi r2, r2, 1
    blt  r2, r1, inner
    jmp  outer

print:
    lw   r1, count
    li   r3, values
    li   r9, 0x300000     ; serial port
emit:
    lw   r4, 0(r3)
    addi r4, r4, 48       ; single digits by construction
    sb   r4, 0(r9)
    addi r3, r3, 4
    subi r1, r1, 1
    bne  r1, r0, emit
    li   r4, 10
    sb   r4, 0(r9)
    halt
