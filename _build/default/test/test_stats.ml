(* Tests for the numerical substrate: special functions, Poisson,
   binomial, FIT rates, confidence intervals, summaries. *)

let close ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. Float.max 1.0 (Float.abs expected)
  then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

(* ------------------------------------------------------------------ *)
(* Special functions                                                  *)
(* ------------------------------------------------------------------ *)

let test_log_gamma () =
  close "lnGamma(1)" 0.0 (Special.log_gamma 1.0) ~eps:1e-10;
  close "lnGamma(5) = ln 24" (log 24.0) (Special.log_gamma 5.0);
  close "lnGamma(0.5) = ln sqrt(pi)"
    (0.5 *. log Float.pi)
    (Special.log_gamma 0.5);
  close "lnGamma(10.3)" (Special.log_gamma 10.3)
    (log 9.3 +. Special.log_gamma 9.3)

let test_log_factorial () =
  close "0!" 0.0 (Special.log_factorial 0) ~eps:1e-12;
  close "5!" (log 120.0) (Special.log_factorial 5);
  close "20!" (log 2432902008176640000.0) (Special.log_factorial 20);
  close "200! recurrence"
    (Special.log_factorial 200)
    (log 200.0 +. Special.log_factorial 199);
  Alcotest.check_raises "negative"
    (Invalid_argument "Special.log_factorial: negative argument") (fun () ->
      ignore (Special.log_factorial (-1)))

let test_gamma_p () =
  (* P(1, x) = 1 - e^-x *)
  close "P(1, 2)" (1.0 -. exp (-2.0)) (Special.regularized_gamma_p 1.0 2.0);
  close "P(a, 0)" 0.0 (Special.regularized_gamma_p 3.0 0.0) ~eps:1e-12;
  close "P + Q = 1" 1.0
    (Special.regularized_gamma_p 2.5 3.0 +. Special.regularized_gamma_q 2.5 3.0);
  (* Monotonicity in x. *)
  let p1 = Special.regularized_gamma_p 2.0 1.0 in
  let p2 = Special.regularized_gamma_p 2.0 2.0 in
  Alcotest.(check bool) "monotone" true (p2 > p1)

let test_beta () =
  close "I_x(1,1) = x" 0.37 (Special.regularized_beta 0.37 ~a:1.0 ~b:1.0);
  close "I_0" 0.0 (Special.regularized_beta 0.0 ~a:2.0 ~b:3.0) ~eps:1e-12;
  close "I_1" 1.0 (Special.regularized_beta 1.0 ~a:2.0 ~b:3.0) ~eps:1e-12;
  (* Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a) *)
  close "symmetry"
    (Special.regularized_beta 0.3 ~a:2.0 ~b:5.0)
    (1.0 -. Special.regularized_beta 0.7 ~a:5.0 ~b:2.0)

let test_erf () =
  close "erf(0)" 0.0 (Special.erf 0.0) ~eps:1e-12;
  close "erf(1)" 0.8427007929497149 (Special.erf 1.0) ~eps:1e-7;
  close "erf(-1) odd" (-.Special.erf 1.0) (Special.erf (-1.0))

let test_inverse_normal () =
  close "median" 0.0 (Special.inverse_normal_cdf 0.5) ~eps:1e-8;
  close "97.5%" 1.959963984540054 (Special.inverse_normal_cdf 0.975) ~eps:1e-6;
  close "2.5%" (-1.959963984540054) (Special.inverse_normal_cdf 0.025)
    ~eps:1e-6;
  close "99.5%" 2.5758293035489004 (Special.inverse_normal_cdf 0.995) ~eps:1e-6;
  Alcotest.check_raises "domain"
    (Invalid_argument "Special.inverse_normal_cdf: p outside (0,1)") (fun () ->
      ignore (Special.inverse_normal_cdf 0.0))

(* ------------------------------------------------------------------ *)
(* Poisson                                                            *)
(* ------------------------------------------------------------------ *)

let test_poisson_pmf () =
  close "P_2(0)" (exp (-2.0)) (Poisson.pmf ~lambda:2.0 0);
  close "P_2(1)" (2.0 *. exp (-2.0)) (Poisson.pmf ~lambda:2.0 1);
  close "P_2(3)" (8.0 /. 6.0 *. exp (-2.0)) (Poisson.pmf ~lambda:2.0 3);
  close "P_0(0)" 1.0 (Poisson.pmf ~lambda:0.0 0) ~eps:1e-12

let test_poisson_pmf_sums_to_one () =
  let lambda = 4.5 in
  let total = ref 0.0 in
  for k = 0 to 80 do
    total := !total +. Poisson.pmf ~lambda k
  done;
  close "sum" 1.0 !total ~eps:1e-10

let test_poisson_cdf () =
  let lambda = 3.3 in
  let partial = ref 0.0 in
  for k = 0 to 10 do
    partial := !partial +. Poisson.pmf ~lambda k;
    close
      (Printf.sprintf "cdf k=%d" k)
      !partial
      (Poisson.cdf ~lambda k)
      ~eps:1e-9
  done

let test_poisson_extreme_lambda () =
  (* The Table-I regime: lambda ~ 1.66e-14. *)
  let lambda = 1.66e-14 in
  close "P(0) ~ 1" 1.0 (Poisson.pmf ~lambda 0) ~eps:1e-10;
  close "P(1) ~ lambda" lambda (Poisson.pmf ~lambda 1) ~eps:1e-10;
  close "P(2) ~ lambda^2/2"
    (lambda *. lambda /. 2.0)
    (Poisson.pmf ~lambda 2)
    ~eps:1e-8

let test_poisson_sample_mean () =
  let rng = Prng.create ~seed:21L in
  let lambda = 6.0 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Poisson.sample rng ~lambda
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "sample mean near lambda" true
    (Float.abs (mean -. lambda) < 0.1)

(* ------------------------------------------------------------------ *)
(* Binomial                                                           *)
(* ------------------------------------------------------------------ *)

let test_binomial_pmf () =
  close "B(4,0.5) at 2" 0.375 (Binomial.pmf ~n:4 ~p:0.5 2);
  close "B(n,p) at 0" (0.7 ** 10.0) (Binomial.pmf ~n:10 ~p:0.3 0);
  close "sum to 1"
    1.0
    (List.fold_left ( +. ) 0.0
       (List.init 13 (fun k -> Binomial.pmf ~n:12 ~p:0.37 k)))
    ~eps:1e-10

let test_binomial_cdf () =
  let n = 15 and p = 0.42 in
  let partial = ref 0.0 in
  for k = 0 to n do
    partial := !partial +. Binomial.pmf ~n ~p k;
    close (Printf.sprintf "cdf %d" k) !partial (Binomial.cdf ~n ~p k) ~eps:1e-8
  done

let test_binomial_log_choose () =
  close "C(10,3)" (log 120.0) (Binomial.log_choose 10 3);
  close "symmetry" (Binomial.log_choose 20 6) (Binomial.log_choose 20 14)

let test_poisson_approximates_binomial () =
  (* The paper's Section III-A argument: faults per run are binomial with
     tiny p; Poisson(np) approximates it. *)
  let n = 1_000_000 and p = 2e-6 in
  let lambda = float_of_int n *. p in
  for k = 0 to 5 do
    let b = Binomial.pmf ~n ~p k in
    let po = Poisson.pmf ~lambda k in
    if Float.abs (b -. po) > 1e-4 *. Float.max b 1e-12 +. 1e-9 then
      Alcotest.failf "k=%d: binomial %.6e vs poisson %.6e" k b po
  done

(* ------------------------------------------------------------------ *)
(* FIT rates                                                          *)
(* ------------------------------------------------------------------ *)

let test_fit_mean () =
  close "mean of published rates" 0.057
    (Fit_rate.to_float Fit_rate.mean_published)
    ~eps:1e-12

let test_fit_per_bit_per_ns () =
  (* paper: ~1.6e-29 per ns and bit *)
  let g = Fit_rate.per_bit_per_ns Fit_rate.mean_published in
  Alcotest.(check bool) "order of magnitude" true
    (g > 1.5e-29 && g < 1.7e-29)

let test_fit_lambda () =
  let lambda =
    Fit_rate.lambda Fit_rate.mean_published ~cycles:1_000_000_000
      ~ns_per_cycle:1.0 ~bits:(1 lsl 20)
  in
  (* g*dt*dm = 1.583e-29 * 1e9 * 1048576 ~ 1.66e-14 *)
  Alcotest.(check bool) "lambda magnitude" true
    (lambda > 1.5e-14 && lambda < 1.8e-14)

let test_fit_negative () =
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Fit_rate.of_fit_per_mbit: negative rate") (fun () ->
      ignore (Fit_rate.of_fit_per_mbit (-1.0)))

(* ------------------------------------------------------------------ *)
(* Confidence intervals                                               *)
(* ------------------------------------------------------------------ *)

let test_wilson_contains_estimate () =
  let { Confidence.lower; upper } =
    Confidence.wilson ~fails:30 ~trials:100 ~confidence:0.95
  in
  Alcotest.(check bool) "contains p-hat" true (lower < 0.3 && upper > 0.3);
  Alcotest.(check bool) "proper interval" true (0.0 <= lower && upper <= 1.0)

let test_wilson_narrows () =
  let i1 = Confidence.wilson ~fails:30 ~trials:100 ~confidence:0.95 in
  let i2 = Confidence.wilson ~fails:300 ~trials:1000 ~confidence:0.95 in
  Alcotest.(check bool) "narrower with more trials" true
    (i2.Confidence.upper -. i2.Confidence.lower
    < i1.Confidence.upper -. i1.Confidence.lower)

let test_clopper_pearson_conservative () =
  let w = Confidence.wilson ~fails:5 ~trials:50 ~confidence:0.95 in
  let cp = Confidence.clopper_pearson ~fails:5 ~trials:50 ~confidence:0.95 in
  Alcotest.(check bool) "CP at least as wide" true
    (cp.Confidence.upper -. cp.Confidence.lower
     >= w.Confidence.upper -. w.Confidence.lower -. 1e-9)

let test_clopper_pearson_edges () =
  let cp0 = Confidence.clopper_pearson ~fails:0 ~trials:20 ~confidence:0.95 in
  close "lower at 0 fails" 0.0 cp0.Confidence.lower ~eps:1e-12;
  let cpn = Confidence.clopper_pearson ~fails:20 ~trials:20 ~confidence:0.95 in
  close "upper at all fails" 1.0 cpn.Confidence.upper ~eps:1e-12

let test_wald_domain () =
  Alcotest.check_raises "fails > trials"
    (Invalid_argument "Confidence: fails outside [0, trials]") (fun () ->
      ignore (Confidence.wald ~fails:5 ~trials:4 ~confidence:0.9))

let test_sample_size () =
  let n1 = Confidence.sample_size ~half_width:0.01 ~confidence:0.95 ~worst_case_p:0.5 in
  (* classic 9604 *)
  Alcotest.(check int) "classic n" 9604 n1;
  let n2 = Confidence.sample_size ~half_width:0.02 ~confidence:0.95 ~worst_case_p:0.5 in
  Alcotest.(check bool) "smaller for wider interval" true (n2 < n1)

(* ------------------------------------------------------------------ *)
(* Summary                                                            *)
(* ------------------------------------------------------------------ *)

let test_summary_moments () =
  let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  let s = Summary.of_array data in
  Alcotest.(check int) "count" 8 (Summary.count s);
  close "mean" 5.0 (Summary.mean s);
  close "variance" (32.0 /. 7.0) (Summary.variance s);
  close "min" 2.0 (Summary.min s);
  close "max" 9.0 (Summary.max s)

let test_summary_empty () =
  let s = Summary.create () in
  close "mean of empty" 0.0 (Summary.mean s) ~eps:1e-12;
  close "variance of empty" 0.0 (Summary.variance s) ~eps:1e-12;
  Alcotest.(check bool) "min nan" true (Float.is_nan (Summary.min s))

let qcheck_summary_matches_reference =
  QCheck.Test.make ~name:"Summary matches direct computation" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_bound_exclusive 1000.0))
    (fun data ->
      let a = Array.of_list data in
      let s = Summary.of_array a in
      let n = float_of_int (Array.length a) in
      let mean = Array.fold_left ( +. ) 0.0 a /. n in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
        /. (n -. 1.0)
      in
      Float.abs (Summary.mean s -. mean) < 1e-6
      && Float.abs (Summary.variance s -. var) < 1e-4)

let suite =
  ( "stats",
    [
      Alcotest.test_case "log_gamma" `Quick test_log_gamma;
      Alcotest.test_case "log_factorial" `Quick test_log_factorial;
      Alcotest.test_case "incomplete gamma" `Quick test_gamma_p;
      Alcotest.test_case "incomplete beta" `Quick test_beta;
      Alcotest.test_case "erf" `Quick test_erf;
      Alcotest.test_case "inverse normal cdf" `Quick test_inverse_normal;
      Alcotest.test_case "poisson pmf" `Quick test_poisson_pmf;
      Alcotest.test_case "poisson pmf sums to 1" `Quick
        test_poisson_pmf_sums_to_one;
      Alcotest.test_case "poisson cdf" `Quick test_poisson_cdf;
      Alcotest.test_case "poisson extreme lambda" `Quick
        test_poisson_extreme_lambda;
      Alcotest.test_case "poisson sampling" `Quick test_poisson_sample_mean;
      Alcotest.test_case "binomial pmf" `Quick test_binomial_pmf;
      Alcotest.test_case "binomial cdf" `Quick test_binomial_cdf;
      Alcotest.test_case "binomial log_choose" `Quick test_binomial_log_choose;
      Alcotest.test_case "poisson approximates binomial" `Quick
        test_poisson_approximates_binomial;
      Alcotest.test_case "fit mean" `Quick test_fit_mean;
      Alcotest.test_case "fit per bit per ns" `Quick test_fit_per_bit_per_ns;
      Alcotest.test_case "fit lambda" `Quick test_fit_lambda;
      Alcotest.test_case "fit negative" `Quick test_fit_negative;
      Alcotest.test_case "wilson contains estimate" `Quick
        test_wilson_contains_estimate;
      Alcotest.test_case "wilson narrows" `Quick test_wilson_narrows;
      Alcotest.test_case "clopper-pearson conservative" `Quick
        test_clopper_pearson_conservative;
      Alcotest.test_case "clopper-pearson edges" `Quick
        test_clopper_pearson_edges;
      Alcotest.test_case "wald domain" `Quick test_wald_domain;
      Alcotest.test_case "sample size" `Quick test_sample_size;
      Alcotest.test_case "summary moments" `Quick test_summary_moments;
      Alcotest.test_case "summary empty" `Quick test_summary_empty;
      QCheck_alcotest.to_alcotest qcheck_summary_matches_reference;
    ] )
