(* Tests for the paper's contribution: accounting policies, metrics,
   comparison, MWTF and the three pitfall analyses — pinned to the exact
   Section-IV numbers of the "Hi" Gedankenexperiment. *)

let hi_golden = lazy (Golden.run (Hi.program ()))
let hi_scan = lazy (Scan.pruned (Lazy.force hi_golden))
let dft_golden = lazy (Golden.run (Hi.dft ()))
let dft_scan = lazy (Scan.pruned ~variant:"dft" (Lazy.force dft_golden))
let dft'_scan = lazy (Scan.pruned ~variant:"dft'" (Golden.run (Hi.dft' ())))

let close what expected actual =
  if Float.abs (expected -. actual) > 1e-9 then
    Alcotest.failf "%s: expected %g, got %g" what expected actual

(* ------------------------------------------------------------------ *)
(* Metrics on Hi (Section IV numbers)                                 *)
(* ------------------------------------------------------------------ *)

let test_hi_baseline_coverage () =
  (* c_baseline = 1 - 48/128 = 62.5 % *)
  close "coverage" 0.625 (Metrics.coverage (Lazy.force hi_scan))

let test_hi_dft_coverage () =
  (* c_hardened = 1 - 48/192 = 75.0 % *)
  close "DFT coverage" 0.75 (Metrics.coverage (Lazy.force dft_scan));
  Alcotest.(check int) "F unchanged" 48
    (Metrics.failure_count (Lazy.force dft_scan))

let test_hi_dft'_coverage () =
  (* DFT' restores 75 % even under full-space weighting, and keeps its
     inflation under the activated-only restriction, because the
     dilution loads are genuine activations. *)
  close "DFT' coverage" 0.75 (Metrics.coverage (Lazy.force dft'_scan));
  Alcotest.(check int) "F unchanged" 48
    (Metrics.failure_count (Lazy.force dft'_scan));
  let activated_base =
    Metrics.coverage ~policy:Accounting.activated_only (Lazy.force hi_scan)
  in
  let activated_dft' =
    Metrics.coverage ~policy:Accounting.activated_only (Lazy.force dft'_scan)
  in
  Alcotest.(check bool) "activated-only coverage also inflated" true
    (activated_dft' > activated_base)

let test_hi_policies () =
  let scan = Lazy.force hi_scan in
  (* Unweighted, conducted-only: all 16 experiments fail. *)
  close "pitfall-1 coverage" 0.0
    (Metrics.coverage ~policy:Accounting.pitfall1 scan);
  Alcotest.(check int) "unweighted F" 16
    (Metrics.failure_count ~policy:Accounting.pitfall1 scan);
  (* Weighted, conducted-only: 48 of 48 conducted coordinates fail. *)
  close "activated-only coverage" 0.0
    (Metrics.coverage ~policy:Accounting.activated_only scan);
  Alcotest.(check int) "activated population" 48
    (Metrics.experiment_total ~policy:Accounting.activated_only scan)

let test_no_effect_count () =
  let scan = Lazy.force hi_scan in
  Alcotest.(check int) "benign coordinates" 80 (Metrics.no_effect_count scan);
  Alcotest.(check int) "failures + benign = w" 128
    (Metrics.no_effect_count scan + Metrics.failure_count scan)

let test_outcome_histogram () =
  let scan = Lazy.force hi_scan in
  let hist = Metrics.outcome_histogram scan in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  Alcotest.(check int) "histogram covers w" 128 total;
  Alcotest.(check (option int)) "sdc mass" (Some 48)
    (List.assoc_opt Outcome.Sdc hist)

let test_failure_probability () =
  let scan = Lazy.force hi_scan in
  let p = Metrics.failure_probability scan in
  (* F*g with F=48 bit-cycles, g~1.58e-29 => ~7.6e-28. *)
  Alcotest.(check bool) "magnitude" true (p > 5e-28 && p < 1e-27);
  (* Proportional to F: DFT has identical F hence identical P. *)
  close "dilution cannot change P(Failure)" p
    (Metrics.failure_probability (Lazy.force dft_scan))

let test_extrapolation () =
  let g = Lazy.force hi_golden in
  let rng = Prng.create ~seed:3L in
  let est = Sampler.uniform_raw rng ~samples:6000 g in
  let extrapolated = Metrics.extrapolated_failures est in
  Alcotest.(check bool) "near true F=48" true
    (Float.abs (extrapolated -. 48.0) < 5.0);
  let sdc = Metrics.extrapolated_outcome est Outcome.Sdc in
  Alcotest.(check bool) "per-outcome extrapolation consistent" true
    (Float.abs (sdc -. extrapolated) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Comparison                                                         *)
(* ------------------------------------------------------------------ *)

let test_ratio_dilution () =
  let r =
    Compare.ratio ~baseline:(Lazy.force hi_scan) ~hardened:(Lazy.force dft_scan)
  in
  close "r = 1 for dilution" 1.0 r;
  Alcotest.(check bool) "indistinguishable" true
    (Compare.verdict_of_ratio r = Compare.Indistinguishable)

let test_verdicts () =
  Alcotest.(check bool) "improves" true
    (Compare.verdict_of_ratio 0.5 = Compare.Improves);
  Alcotest.(check bool) "worsens" true
    (Compare.verdict_of_ratio 5.0 = Compare.Worsens);
  Alcotest.(check bool) "nan" true
    (Compare.verdict_of_ratio Float.nan = Compare.Indistinguishable)

let test_coverage_comparison_fooled () =
  (* Coverage says DFT improves; failure counts say indistinguishable. *)
  let baseline = Lazy.force hi_scan and hardened = Lazy.force dft_scan in
  Alcotest.(check bool) "coverage fooled" true
    (Compare.coverage_comparison ~baseline ~hardened () = Compare.Improves);
  Alcotest.(check bool) "failure metric not fooled" true
    (Compare.failure_comparison ~baseline ~hardened
    = Compare.Indistinguishable)

let test_ratio_sampled () =
  let g_base = Lazy.force hi_golden in
  let g_dft = Lazy.force dft_golden in
  let rng = Prng.create ~seed:11L in
  let est_base = Sampler.uniform_raw rng ~samples:8000 g_base in
  let est_dft = Sampler.uniform_raw rng ~samples:8000 g_dft in
  let r = Compare.ratio_sampled ~baseline:est_base ~hardened:est_dft in
  Alcotest.(check bool) "sampled ratio near 1" true (Float.abs (r -. 1.0) < 0.25)

(* ------------------------------------------------------------------ *)
(* MWTF                                                               *)
(* ------------------------------------------------------------------ *)

let test_mwtf () =
  let base = Lazy.force hi_scan and dft = Lazy.force dft_scan in
  let m_base = Mwtf.runs_to_failure base in
  Alcotest.(check bool) "finite and huge" true
    (Float.is_finite m_base && m_base > 1e20);
  (* Same F, same work unit => same MWTF: relative = 1. *)
  close "dilution does not improve MWTF" 1.0
    (Mwtf.relative ~baseline:base ~hardened:dft ())

let test_mwtf_failure_free () =
  (* A scan with zero failures has infinite MWTF. *)
  let scan =
    { (Lazy.force hi_scan) with
      Scan.experiments =
        Array.map
          (fun e -> { e with Scan.outcome = Outcome.No_effect })
          (Lazy.force hi_scan).Scan.experiments }
  in
  Alcotest.(check bool) "infinite" true
    (Mwtf.runs_to_failure scan = infinity)

(* ------------------------------------------------------------------ *)
(* Pitfall analyses                                                   *)
(* ------------------------------------------------------------------ *)

let test_pitfall1_analysis () =
  let p = Pitfalls.analyze_pitfall1 (Lazy.force hi_scan) in
  close "unweighted" 0.0 p.Pitfalls.unweighted_coverage;
  close "weighted" 0.625 p.Pitfalls.weighted_coverage;
  close "delta" 62.5 p.Pitfalls.delta_percent_points;
  Alcotest.(check int) "unweighted F" 16 p.Pitfalls.unweighted_failures;
  Alcotest.(check int) "weighted F" 48 p.Pitfalls.weighted_failures

let test_pitfall2_analysis () =
  let g = Lazy.force hi_golden in
  let scan = Lazy.force hi_scan in
  let rng = Prng.create ~seed:9L in
  let correct = Sampler.uniform_raw rng ~samples:3000 g in
  let biased = Sampler.biased_per_class rng ~samples:3000 g in
  let p = Pitfalls.analyze_pitfall2 ~scan ~correct ~biased in
  close "truth" 0.375 p.Pitfalls.ground_truth_failure_fraction;
  close "biased = 1.0 on Hi" 1.0 p.Pitfalls.biased_estimate;
  Alcotest.(check bool) "bias is positive" true (p.Pitfalls.bias > 0.5)

let test_pitfall3_analysis () =
  let p =
    Pitfalls.analyze_pitfall3 ~baseline:(Lazy.force hi_scan)
      ~hardened:(Lazy.force dft_scan)
  in
  Alcotest.(check bool) "coverage says improves" true
    (p.Pitfalls.coverage_says = Compare.Improves);
  Alcotest.(check bool) "truth says indistinguishable" true
    (p.Pitfalls.truth_says = Compare.Indistinguishable);
  Alcotest.(check bool) "flagged misleading" true p.Pitfalls.misleading;
  close "ratio" 1.0 p.Pitfalls.failure_ratio

let test_pitfall_pps () =
  (* The printers must at least render without exception and mention the
     key numbers. *)
  let s1 =
    Format.asprintf "%a" Pitfalls.pp_pitfall1
      (Pitfalls.analyze_pitfall1 (Lazy.force hi_scan))
  in
  Alcotest.(check bool) "pitfall1 text" true
    (Astring_contains.contains s1 "62.50%");
  let s3 =
    Format.asprintf "%a" Pitfalls.pp_pitfall3
      (Pitfalls.analyze_pitfall3 ~baseline:(Lazy.force hi_scan)
         ~hardened:(Lazy.force dft_scan))
  in
  Alcotest.(check bool) "pitfall3 flags" true
    (Astring_contains.contains s3 "MISLEADING")

let test_accounting_pp () =
  Alcotest.(check string) "correct" "weighted/full-space"
    (Format.asprintf "%a" Accounting.pp Accounting.correct);
  Alcotest.(check string) "pitfall1" "unweighted/conducted-only"
    (Format.asprintf "%a" Accounting.pp Accounting.pitfall1)

let suite =
  ( "core",
    [
      Alcotest.test_case "hi baseline coverage 62.5%" `Quick
        test_hi_baseline_coverage;
      Alcotest.test_case "hi DFT coverage 75%" `Quick test_hi_dft_coverage;
      Alcotest.test_case "hi DFT' coverage 75%" `Quick test_hi_dft'_coverage;
      Alcotest.test_case "accounting policies on hi" `Quick test_hi_policies;
      Alcotest.test_case "no-effect counts" `Quick test_no_effect_count;
      Alcotest.test_case "outcome histogram" `Quick test_outcome_histogram;
      Alcotest.test_case "failure probability (Equation 5)" `Quick
        test_failure_probability;
      Alcotest.test_case "extrapolation (corollary 2)" `Quick test_extrapolation;
      Alcotest.test_case "dilution ratio = 1" `Quick test_ratio_dilution;
      Alcotest.test_case "verdicts" `Quick test_verdicts;
      Alcotest.test_case "coverage comparison fooled" `Quick
        test_coverage_comparison_fooled;
      Alcotest.test_case "sampled ratio" `Quick test_ratio_sampled;
      Alcotest.test_case "mwtf" `Quick test_mwtf;
      Alcotest.test_case "mwtf failure-free" `Quick test_mwtf_failure_free;
      Alcotest.test_case "pitfall 1 analysis" `Quick test_pitfall1_analysis;
      Alcotest.test_case "pitfall 2 analysis" `Quick test_pitfall2_analysis;
      Alcotest.test_case "pitfall 3 analysis" `Quick test_pitfall3_analysis;
      Alcotest.test_case "pitfall printers" `Quick test_pitfall_pps;
      Alcotest.test_case "accounting printers" `Quick test_accounting_pp;
    ] )
