(* Tests for the kernel substrate and the benchmark suite: golden
   behaviour of every variant, kernel-object semantics, the scheduler,
   and the "Hi" fixture with its dilution variants. *)

let run_image image ~limit =
  let m = Machine.create image in
  let reason = Machine.run m ~limit in
  (Machine.serial_output m, reason)

let golden_output image =
  let output, reason = run_image image ~limit:10_000_000 in
  Alcotest.(check bool)
    (Format.asprintf "halted (%a)" Machine.pp_stop_reason reason)
    true (reason = Machine.Halted);
  output

(* ------------------------------------------------------------------ *)
(* Kernel objects, driven through small MIR programs                  *)
(* ------------------------------------------------------------------ *)

let kernel_prog body ~locals =
  let open Builder in
  prog ~name:"kt" ~stack:192
    (Kernel_lib.globals ~protect_objects:false ())
    ([ func "main" ~locals body ]
    @ Kernel_lib.funcs ~protect_objects:false ()
    @ stdlib)

let test_semaphores () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "a"; "b"; "c" ]
      [
        Mir.Set_local ("a", call "k_sem_trywait" [ i 0 ]) (* empty: 0 *);
        call_ "k_sem_post" [ i 0 ];
        call_ "k_sem_post" [ i 0 ];
        Mir.Set_local ("b", call "k_sem_trywait" [ i 0 ]) (* 1 *);
        Mir.Set_local ("c", call "k_sem_trywait" [ i 0 ]) (* 1 *);
        call_ out_dec [ l "a" ];
        call_ out_dec [ l "b" ];
        call_ out_dec [ l "c" ];
        Mir.Set_local ("a", call "k_sem_trywait" [ i 0 ]) (* empty again *);
        call_ out_dec [ l "a" ];
        ret_unit;
      ]
  in
  Alcotest.(check string) "semaphore protocol" "0110"
    (golden_output (Codegen.compile p))

let test_mutex () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "a"; "b"; "c" ]
      [
        Mir.Set_local ("a", call "k_mtx_trylock" [ i 0; i 1 ]) (* free: 1 *);
        Mir.Set_local ("b", call "k_mtx_trylock" [ i 0; i 2 ]) (* held: 0 *);
        call_ "k_mtx_unlock" [ i 0 ];
        Mir.Set_local ("c", call "k_mtx_trylock" [ i 0; i 2 ]) (* free: 1 *);
        call_ out_dec [ l "a" ];
        call_ out_dec [ l "b" ];
        call_ out_dec [ l "c" ];
        ret_unit;
      ]
  in
  Alcotest.(check string) "mutex protocol" "101"
    (golden_output (Codegen.compile p))

let test_mailbox_fifo () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "ok"; "v" ]
      [
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 5 ]);
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 6 ]);
        Mir.Set_local ("v", call "k_mbox_tryget" []);
        call_ out_dec [ l "v" ];
        Mir.Set_local ("v", call "k_mbox_tryget" []);
        call_ out_dec [ l "v" ];
        ret_unit;
      ]
  in
  Alcotest.(check string) "fifo order" "56" (golden_output (Codegen.compile p))

let test_mailbox_full_empty () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "ok"; "v" ]
      [
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 1 ]);
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 2 ]);
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 3 ]);
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 4 ]);
        (* capacity is 4: the fifth put must fail *)
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 5 ]);
        call_ out_dec [ l "ok" ];
        Mir.Set_local ("v", call "k_mbox_tryget" []);
        call_ out_dec [ l "v" ];
        (* after one get there is room again *)
        Mir.Set_local ("ok", call "k_mbox_tryput" [ i 6 ]);
        call_ out_dec [ l "ok" ];
        ret_unit;
      ]
  in
  Alcotest.(check string) "full then room" "011"
    (golden_output (Codegen.compile p))

let test_mailbox_empty_get () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "v" ]
      [
        Mir.Set_local ("v", call "k_mbox_tryget" []);
        Mir.If (l "v" <: i 0, [ out_str "empty" ], [ out_str "value" ]);
        ret_unit;
      ]
  in
  Alcotest.(check string) "empty get" "empty" (golden_output (Codegen.compile p))

let test_event_flags () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "a"; "b"; "c" ]
      [
        call_ "k_flag_set" [ i 0b01 ];
        Mir.Set_local ("a", call "k_flag_poll_and" [ i 0b11 ]) (* missing bit 2: 0 *);
        call_ "k_flag_set" [ i 0b10 ];
        Mir.Set_local ("b", call "k_flag_poll_and" [ i 0b11 ]) (* both: 1, consumed *);
        Mir.Set_local ("c", call "k_flag_poll_and" [ i 0b11 ]) (* consumed: 0 *);
        call_ out_dec [ l "a" ];
        call_ out_dec [ l "b" ];
        call_ out_dec [ l "c" ];
        (* poll_or grabs only the requested subset *)
        call_ "k_flag_set" [ i 0b110 ];
        Mir.Set_local ("a", call "k_flag_poll_or" [ i 0b010 ]);
        call_ out_dec [ l "a" ];
        Mir.Set_local ("b", call "k_flag_poll_or" [ i 0b100 ]);
        call_ out_dec [ l "b" ];
        ret_unit;
      ]
  in
  Alcotest.(check string) "flags protocol" "01024"
    (golden_output (Codegen.compile p))

let test_flag1_pairing () =
  (* rounds rounds collected; checksum deterministic. *)
  let output = golden_output (Flag1.baseline ()) in
  Alcotest.(check bool) "8 rounds" true
    (Astring_contains.contains output "flag1 8 ")

let test_thread_accounting () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "n" ]
      [
        Mir.Set_local ("n", call "k_alive" []);
        call_ out_dec [ l "n" ];
        call_ "k_thread_done" [ i 0 ];
        call_ "k_thread_done" [ i 3 ];
        Mir.Set_local ("n", call "k_alive" []);
        call_ out_dec [ l "n" ];
        ret_unit;
      ]
  in
  Alcotest.(check string) "alive counting" "42"
    (golden_output (Codegen.compile p))

let test_klog_records () =
  let open Builder in
  let p =
    kernel_prog ~locals:[ "ok" ]
      [
        Mir.Set_local ("ok", call "k_sem_trywait" [ i 0 ]);
        call_ "k_sem_post" [ i 1 ];
        call_ out_dec [ g "klog_pos" ];
        ret_unit;
      ]
  in
  Alcotest.(check string) "two kernel events logged" "2"
    (golden_output (Codegen.compile p))

(* ------------------------------------------------------------------ *)
(* Benchmark golden behaviour                                         *)
(* ------------------------------------------------------------------ *)

let test_suite_all_run () =
  List.iter
    (fun (e : Suite.entry) ->
      let image = e.Suite.build () in
      let output = golden_output image in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s produces output" e.Suite.benchmark
           (Suite.variant_name e.Suite.variant))
        true
        (String.length output > 0))
    Suite.all

let test_variants_agree () =
  (* Hardening must not change functional behaviour. *)
  List.iter
    (fun benchmark ->
      let get variant =
        match Suite.find ~benchmark ~variant with
        | Some e -> golden_output (e.Suite.build ())
        | None -> Alcotest.failf "missing %s" benchmark
      in
      let base = get Suite.Baseline in
      Alcotest.(check string) (benchmark ^ " sum+dmr") base (get Suite.Sum_dmr);
      Alcotest.(check string) (benchmark ^ " tmr") base (get Suite.Tmr))
    [ "bin_sem2"; "sync2"; "mutex1"; "mbox1"; "flag1" ]

let test_bin_sem2_round_count () =
  (* 8 rounds per thread, two threads: the record counter reaches 16. *)
  let output = golden_output (Bin_sem2.baseline ()) in
  Alcotest.(check bool) "counter 16" true
    (Astring_contains.contains output "bin_sem2 16 ")

let test_bin_sem2_rounds_parameter () =
  let output = golden_output (Bin_sem2.baseline ~rounds:3 ()) in
  Alcotest.(check bool) "counter 6" true
    (Astring_contains.contains output "bin_sem2 6 ")

let test_sync2_item_count () =
  (* 8 items of 4 digits each, space-separated. *)
  let output = golden_output (Sync2.baseline ()) in
  let spaces = String.fold_left (fun n c -> if c = ' ' then n + 1 else n) 0 output in
  Alcotest.(check int) "8 values printed" (1 + 8) spaces

let test_mutex1_total () =
  (* 3 threads x 8 rounds = 24 increments. *)
  let output = golden_output (Mutex1.baseline ()) in
  Alcotest.(check bool) "counter 24" true
    (Astring_contains.contains output "mutex1 24 ")

let test_mbox1_sum () =
  (* Messages are 7k+1 for k in 0..9: sum = 7*45 + 10 = 325. *)
  let output = golden_output (Mbox1.baseline ()) in
  Alcotest.(check bool) "sum 325" true
    (Astring_contains.contains output "mbox1 325 ")

let test_hardened_overhead_direction () =
  List.iter
    (fun (name, base, hard) ->
      let gb = Golden.run (base ()) and gh = Golden.run (hard ()) in
      Alcotest.(check bool) (name ^ " slower hardened") true
        (gh.Golden.cycles > gb.Golden.cycles);
      Alcotest.(check bool) (name ^ " bigger hardened") true
        (gh.Golden.program.Program.ram_size > gb.Golden.program.Program.ram_size))
    Suite.paper_pairs

let test_sync2_runtime_explosion () =
  (* The paper's sync2 story requires an extreme hardening slowdown. *)
  let gb = Golden.run (Sync2.baseline ()) in
  let gh = Golden.run (Sync2.sum_dmr ()) in
  let ratio = float_of_int gh.Golden.cycles /. float_of_int gb.Golden.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.1f > 4" ratio)
    true (ratio > 4.0)

(* ------------------------------------------------------------------ *)
(* Hi and its dilutions (Section IV arithmetic)                       *)
(* ------------------------------------------------------------------ *)

let test_hi_program () =
  let image = Hi.program () in
  Alcotest.(check int) "8 instructions" 8 (Program.code_length image);
  Alcotest.(check int) "2 bytes of RAM" 2 image.Program.ram_size;
  Alcotest.(check string) "says Hi" "Hi" (golden_output image)

let test_hi_dft () =
  let image = Hi.dft () in
  Alcotest.(check int) "12 instructions" 12 (Program.code_length image);
  Alcotest.(check string) "still says Hi" "Hi" (golden_output image);
  let golden = Golden.run image in
  Alcotest.(check int) "12 cycles" 12 golden.Golden.cycles;
  Alcotest.(check int) "fault space 192" 192 (Golden.fault_space_size golden)

let test_hi_dft' () =
  let image = Hi.dft' () in
  Alcotest.(check string) "still says Hi" "Hi" (golden_output image);
  let golden = Golden.run image in
  Alcotest.(check int) "12 cycles" 12 golden.Golden.cycles;
  (* The dilution loads create additional activated (experiment)
     classes, unlike plain NOP dilution. *)
  let dft_golden = Golden.run (Hi.dft ()) in
  Alcotest.(check bool) "more experiments than DFT" true
    (Defuse.experiment_count golden.Golden.defuse
    > Defuse.experiment_count dft_golden.Golden.defuse)

let test_hi_dft_memory () =
  let image = Hi.dft_memory () in
  Alcotest.(check string) "still says Hi" "Hi" (golden_output image);
  let golden = Golden.run image in
  Alcotest.(check int) "8 cycles unchanged" 8 golden.Golden.cycles;
  Alcotest.(check int) "fault space 256" 256 (Golden.fault_space_size golden)

let test_transform_rejects_branchy_prologue () =
  Alcotest.check_raises "branch in prologue"
    (Invalid_argument "Transform.prepend: prologue must be branch-free")
    (fun () -> ignore (Transform.prepend [ Isa.Jmp 0 ] (Hi.program ())))

let test_transform_retargets () =
  (* A program with a branch keeps working after NOP prepending. *)
  let src =
    {|
    .text
    main:
        li r1, 3
        li r4, 0x300000
    loop:
        addi r2, r2, 1
        subi r1, r1, 1
        bne r1, r0, loop
        addi r2, r2, 48
        sb r2, 0(r4)
        halt
    |}
  in
  let image = Assembler.assemble_exn ~name:"b" src in
  let diluted = Transform.dilute_nops ~cycles:5 image in
  Alcotest.(check string) "same output" (golden_output image)
    (golden_output diluted)

let suite =
  ( "kernel",
    [
      Alcotest.test_case "semaphores" `Quick test_semaphores;
      Alcotest.test_case "mutex" `Quick test_mutex;
      Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
      Alcotest.test_case "mailbox full/empty" `Quick test_mailbox_full_empty;
      Alcotest.test_case "mailbox empty get" `Quick test_mailbox_empty_get;
      Alcotest.test_case "thread accounting" `Quick test_thread_accounting;
      Alcotest.test_case "kernel event log" `Quick test_klog_records;
      Alcotest.test_case "event flags" `Quick test_event_flags;
      Alcotest.test_case "flag1 pairing" `Quick test_flag1_pairing;
      Alcotest.test_case "all suite entries run" `Slow test_suite_all_run;
      Alcotest.test_case "variants agree" `Slow test_variants_agree;
      Alcotest.test_case "bin_sem2 rounds" `Quick test_bin_sem2_round_count;
      Alcotest.test_case "bin_sem2 rounds parameter" `Quick
        test_bin_sem2_rounds_parameter;
      Alcotest.test_case "sync2 items" `Quick test_sync2_item_count;
      Alcotest.test_case "mutex1 total" `Quick test_mutex1_total;
      Alcotest.test_case "mbox1 sum" `Quick test_mbox1_sum;
      Alcotest.test_case "hardening overhead direction" `Slow
        test_hardened_overhead_direction;
      Alcotest.test_case "sync2 runtime explosion" `Slow
        test_sync2_runtime_explosion;
      Alcotest.test_case "hi program" `Quick test_hi_program;
      Alcotest.test_case "hi DFT" `Quick test_hi_dft;
      Alcotest.test_case "hi DFT'" `Quick test_hi_dft';
      Alcotest.test_case "hi memory dilution" `Quick test_hi_dft_memory;
      Alcotest.test_case "transform rejects branches" `Quick
        test_transform_rejects_branchy_prologue;
      Alcotest.test_case "transform retargets" `Quick test_transform_retargets;
    ] )
