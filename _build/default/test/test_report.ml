(* Tests for the reporting layer: tables, bar charts, fault-space maps
   and the figure generators. *)

let contains = Astring_contains.contains

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t =
    Table.create
      ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.row t [ "alpha"; "1" ];
  Table.row t [ "b"; "22" ];
  let text = Table.render t in
  Alcotest.(check bool) "header" true (contains text "name");
  (* Right-aligned numbers end in the same column. *)
  let lines = String.split_on_char '\n' text in
  let data = List.filteri (fun i _ -> i >= 2) lines in
  match List.filter (fun l -> String.trim l <> "") data with
  | [ l1; l2 ] ->
      Alcotest.(check int) "aligned" (String.length l1) (String.length l2)
  | _ -> Alcotest.fail "unexpected table shape"

let test_table_arity () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.row: wrong number of cells") (fun () ->
      Table.row t [ "x"; "y" ])

let test_table_rule () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Table.row t [ "1" ];
  Table.rule t;
  Table.row t [ "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check bool) "has extra rule" true
    (List.length (List.filter (fun l -> l <> "" && String.for_all (( = ) '-') l) lines) >= 2)

(* ------------------------------------------------------------------ *)
(* Bar chart                                                          *)
(* ------------------------------------------------------------------ *)

let test_barchart () =
  let text = Barchart.render ~width:10 [ ("a", 10.0); ("bb", 5.0) ] in
  Alcotest.(check bool) "max bar full" true (contains text "##########");
  Alcotest.(check bool) "half bar" true (contains text "#####");
  Alcotest.(check bool) "labels" true (contains text "bb")

let test_barchart_zero () =
  let text = Barchart.render [ ("a", 0.0) ] in
  Alcotest.(check bool) "no bars" true (not (contains text "#"))

(* ------------------------------------------------------------------ *)
(* Fault maps                                                         *)
(* ------------------------------------------------------------------ *)

let hi_golden = lazy (Golden.run (Hi.program ()))

let count_char c s = String.fold_left (fun n x -> if x = c then n + 1 else n) 0 s

let test_access_map () =
  let map = Faultmap.access_map_golden (Lazy.force hi_golden) in
  (* Per byte: one W marks 8 rows, one R marks 8 rows. *)
  Alcotest.(check int) "W marks" 16 (count_char 'W' map);
  Alcotest.(check int) "R marks" 16 (count_char 'R' map);
  Alcotest.(check int) "16 bit rows" 16 (count_char '\n' map - 1)

let test_outcome_map () =
  let golden = Lazy.force hi_golden in
  let scan = Scan.pruned golden in
  let map = Faultmap.outcome_map golden scan in
  (* Failing coordinates excluding the R/W event columns: each byte's
     experiment interval spans 3 cycles of which one is the R event
     itself, so 2 x 8 bits x 2 bytes = 32 'X' cells are drawn. *)
  Alcotest.(check int) "X cells" 32 (count_char 'X' map);
  Alcotest.(check int) "no benign experiment cells on hi" 0 (count_char 'o' map)

(* ------------------------------------------------------------------ *)
(* Figures                                                            *)
(* ------------------------------------------------------------------ *)

let test_table1 () =
  let text = Figures.table1 () in
  Alcotest.(check bool) "rate" true (contains text "0.057");
  Alcotest.(check bool) "k column" true (contains text "P(k faults)");
  Alcotest.(check bool) "negligible multi-fault" true (contains text ">=2")

let test_figure1 () =
  let text = Figures.figure1 () in
  Alcotest.(check bool) "weight 7 class" true (contains text "7");
  Alcotest.(check bool) "8 experiments" true (contains text "experiments after pruning: 8")

let test_figure3 () =
  let text = Figures.figure3 () in
  Alcotest.(check bool) "baseline coverage" true (contains text "62.5");
  Alcotest.(check bool) "diluted coverage" true (contains text "75.0");
  Alcotest.(check bool) "failure count constant" true (contains text "F = 48")

let test_pruning_stats () =
  let text = Figures.pruning_stats [ ("hi", Lazy.force hi_golden) ] in
  Alcotest.(check bool) "row present" true (contains text "hi");
  Alcotest.(check bool) "raw size" true (contains text "128")

let test_pitfall2_figure () =
  let golden = Lazy.force hi_golden in
  let scan = Scan.pruned golden in
  let text = Figures.pitfall2 ~samples:1024 scan golden in
  Alcotest.(check bool) "truth column" true (contains text "0.37500");
  Alcotest.(check bool) "biased converges to 1" true (contains text "1.00000")

let test_pitfall3_figure () =
  let golden = Lazy.force hi_golden in
  let scan = Scan.pruned golden in
  let dft_g = Golden.run (Hi.dft ()) in
  let dft_s = Scan.pruned ~variant:"dft" dft_g in
  let text =
    Figures.pitfall3_extrapolation
      [ ("hi", scan, golden); ("hi+dft", dft_s, dft_g) ]
  in
  Alcotest.(check bool) "full-scan column" true (contains text "48")

let test_figure2_renders () =
  (* figure2 only needs scans; use hi and its dilution as a cheap pair. *)
  let sb = Scan.pruned (Lazy.force hi_golden) in
  let sh = Scan.pruned ~variant:"sum+dmr" (Golden.run (Hi.dft ())) in
  let text = Figures.figure2 [ ("hi", sb, sh) ] in
  Alcotest.(check bool) "panel a" true (contains text "(a) fault coverage");
  Alcotest.(check bool) "panel e" true (contains text "(e) absolute failure");
  Alcotest.(check bool) "panel g" true (contains text "runtime");
  Alcotest.(check bool) "misleading flagged" true (contains text "MISLEADING")

let test_ablation () =
  let scan = Scan.pruned (Lazy.force hi_golden) in
  let text = Figures.ablation [ ("hi", scan) ] in
  Alcotest.(check bool) "has MWTF column" true (contains text "MWTF")

let test_run_pair_cache () =
  let dir = Filename.temp_file "fipit" "" in
  Sys.remove dir;
  Unix_mkdir.mkdir dir;
  let calls = ref 0 in
  let build () =
    incr calls;
    Hi.program ()
  in
  let sb1, _ =
    Figures.run_pair ~cache_dir:dir ~name:"hi" ~baseline:build
      ~hardened:(fun () -> Hi.dft ())
      ()
  in
  let calls_after_first = !calls in
  let sb2, _ =
    Figures.run_pair ~cache_dir:dir ~name:"hi" ~baseline:build
      ~hardened:(fun () -> Hi.dft ())
      ()
  in
  Alcotest.(check int) "builder not re-invoked" calls_after_first !calls;
  Alcotest.(check int) "same results from cache"
    (Metrics.failure_count sb1)
    (Metrics.failure_count sb2)

let suite =
  ( "report",
    [
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table arity" `Quick test_table_arity;
      Alcotest.test_case "table rule" `Quick test_table_rule;
      Alcotest.test_case "barchart" `Quick test_barchart;
      Alcotest.test_case "barchart zero" `Quick test_barchart_zero;
      Alcotest.test_case "access map" `Quick test_access_map;
      Alcotest.test_case "outcome map" `Quick test_outcome_map;
      Alcotest.test_case "table 1" `Quick test_table1;
      Alcotest.test_case "figure 1" `Quick test_figure1;
      Alcotest.test_case "figure 3" `Quick test_figure3;
      Alcotest.test_case "pruning stats" `Quick test_pruning_stats;
      Alcotest.test_case "pitfall 2 figure" `Quick test_pitfall2_figure;
      Alcotest.test_case "pitfall 3 figure" `Quick test_pitfall3_figure;
      Alcotest.test_case "figure 2 renders" `Quick test_figure2_renders;
      Alcotest.test_case "ablation" `Quick test_ablation;
      Alcotest.test_case "run_pair cache" `Quick test_run_pair_cache;
    ] )
