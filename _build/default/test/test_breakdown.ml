(* Tests for the failure-mass attribution analysis. *)

let test_hi_single_region () =
  (* Hi carries no data symbols: everything lands in one region whose
     mass is the Section-IV F = 48. *)
  let golden = Golden.run (Hi.program ()) in
  let scan = Scan.pruned golden in
  match Breakdown.by_region scan golden.Golden.program with
  | [ r ] ->
      Alcotest.(check string) "name" "<all ram>" r.Breakdown.name;
      Alcotest.(check int) "mass = F" 48 r.Breakdown.failure_mass;
      Alcotest.(check int) "extent" 2 r.Breakdown.bytes
  | rs -> Alcotest.failf "expected one region, got %d" (List.length rs)

let fixture () =
  let open Builder in
  prog ~name:"bd" ~stack:96
    [
      (* Read at the very end: long lifetime, fails. *)
      array "hot" 2 ~init:[ 11; 22 ];
      (* Written every iteration, never read: benign. *)
      array "cold" 2;
    ]
    ([
       func "main" ~locals:[ "k" ]
         (for_ "k" ~from:(Builder.i 0) ~below:(Builder.i 6)
            [ set_elem "cold" (l "k" %: Builder.i 2) (l "k") ]
         @ [
             call_ out_dec [ elem "hot" (Builder.i 0) +: elem "hot" (Builder.i 1) ];
             ret_unit;
           ]);
     ]
    @ stdlib)

let test_attribution () =
  let image = Codegen.compile (fixture ()) in
  let golden = Golden.run image in
  let scan = Scan.pruned golden in
  let regions = Breakdown.by_region scan image in
  let find name =
    List.find (fun r -> r.Breakdown.name = name) regions
  in
  let hot = find "hot" and cold = find "cold" and stack = find "<stack>" in
  Alcotest.(check bool) "hot data fails" true (hot.Breakdown.failure_mass > 0);
  Alcotest.(check int) "write-only data is benign" 0 cold.Breakdown.failure_mass;
  Alcotest.(check bool) "stack region present" true (stack.Breakdown.bytes > 0);
  (* Masses never exceed the scan total. *)
  let total =
    List.fold_left (fun acc r -> acc + r.Breakdown.failure_mass) 0 regions
  in
  Alcotest.(check int) "regions partition F" (Metrics.failure_count scan) total

let test_sorted_output () =
  let image = Codegen.compile (fixture ()) in
  let scan = Scan.pruned (Golden.run image) in
  let masses =
    List.map (fun r -> r.Breakdown.failure_mass) (Breakdown.by_region scan image)
  in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) masses) masses

let test_render () =
  let image = Codegen.compile (fixture ()) in
  let scan = Scan.pruned (Golden.run image) in
  let text = Figures.breakdown scan image in
  Alcotest.(check bool) "mentions hot" true (Astring_contains.contains text "hot");
  Alcotest.(check bool) "mentions stack" true
    (Astring_contains.contains text "<stack>")

let test_stack_sentinel_positions () =
  let image = Codegen.compile (fixture ()) in
  (* hot(8B) + cold(8B) => __stack at 16. *)
  Alcotest.(check (option int)) "sentinel" (Some 16)
    (Program.find_data_symbol image "__stack")

let suite =
  ( "breakdown",
    [
      Alcotest.test_case "hi single region" `Quick test_hi_single_region;
      Alcotest.test_case "attribution" `Quick test_attribution;
      Alcotest.test_case "sorted output" `Quick test_sorted_output;
      Alcotest.test_case "render" `Quick test_render;
      Alcotest.test_case "stack sentinel" `Quick test_stack_sentinel_positions;
    ] )
