(* Tests for the ISA: registers, printing, encoding round-trips, the
   assembler DSL and the textual assembler. *)

let instr = Alcotest.testable Isa.pp_instr Isa.equal_instr

(* ------------------------------------------------------------------ *)
(* Registers & instruction helpers                                    *)
(* ------------------------------------------------------------------ *)

let test_reg_bounds () =
  Alcotest.(check int) "index" 7 (Isa.reg_index (Isa.reg 7));
  Alcotest.check_raises "too large" (Invalid_argument "Isa.reg: index outside [0,15]")
    (fun () -> ignore (Isa.reg 16));
  Alcotest.check_raises "negative" (Invalid_argument "Isa.reg: index outside [0,15]")
    (fun () -> ignore (Isa.reg (-1)))

let test_reg_aliases () =
  Alcotest.(check int) "sp" 13 (Isa.reg_index Isa.sp);
  Alcotest.(check int) "fp" 14 (Isa.reg_index Isa.fp);
  Alcotest.(check int) "ra" 15 (Isa.reg_index Isa.ra);
  Alcotest.(check int) "r0" 0 (Isa.reg_index Isa.r0)

let test_pp () =
  let s i = Format.asprintf "%a" Isa.pp_instr i in
  Alcotest.(check string) "li" "li r1, 42" (s (Isa.Li (Isa.reg 1, 42l)));
  Alcotest.(check string) "lw" "lw r3, 8(sp)" (s (Isa.Lw (Isa.reg 3, Isa.sp, 8l)));
  Alcotest.(check string) "beq" "bne r1, r2, 7"
    (s (Isa.Beq (Isa.reg 1, Isa.reg 2, 7, Isa.Ne)));
  Alcotest.(check string) "add" "add r1, r2, r3"
    (s (Isa.Alu (Isa.Add, Isa.reg 1, Isa.reg 2, Isa.reg 3)))

let test_classification () =
  Alcotest.(check bool) "lb is load" true (Isa.is_load (Isa.Lb (Isa.reg 1, Isa.r0, 0l)));
  Alcotest.(check bool) "sw is store" true (Isa.is_store (Isa.Sw (Isa.reg 1, Isa.r0, 0l)));
  Alcotest.(check bool) "nop is neither" false (Isa.is_load Isa.Nop || Isa.is_store Isa.Nop)

let test_branch_targets () =
  Alcotest.(check (list int)) "jmp" [ 5 ] (Isa.branch_targets (Isa.Jmp 5));
  Alcotest.(check (list int)) "beq" [ 3 ]
    (Isa.branch_targets (Isa.Beq (Isa.r0, Isa.r0, 3, Isa.Eq)));
  Alcotest.(check (list int)) "jr none" [] (Isa.branch_targets (Isa.Jr Isa.ra))

(* ------------------------------------------------------------------ *)
(* Encoding                                                           *)
(* ------------------------------------------------------------------ *)

let roundtrip i =
  match Encoding.encode i with
  | Error e -> Alcotest.failf "encode: %a" Encoding.pp_error e
  | Ok w -> (
      match Encoding.decode w with
      | Error e -> Alcotest.failf "decode: %a" Encoding.pp_error e
      | Ok i' -> Alcotest.check instr "roundtrip" i i')

let test_encode_samples () =
  List.iter roundtrip
    [
      Isa.Nop;
      Isa.Halt;
      Isa.Li (Isa.reg 4, -123456l);
      Isa.Alu (Isa.Sltu, Isa.reg 15, Isa.reg 1, Isa.reg 9);
      Isa.Alui (Isa.Sar, Isa.reg 2, Isa.reg 3, -42l);
      Isa.Lb (Isa.reg 1, Isa.reg 2, 1024l);
      Isa.Lw (Isa.reg 1, Isa.reg 2, -4l);
      Isa.Sb (Isa.reg 5, Isa.reg 6, 0l);
      Isa.Sw (Isa.reg 7, Isa.reg 8, 262000l);
      Isa.Beq (Isa.reg 1, Isa.reg 2, 65535, Isa.Geu);
      Isa.Jmp 262143;
      Isa.Jal (Isa.ra, 12345);
      Isa.Jr (Isa.reg 11);
    ]

let test_encodable_limits () =
  Alcotest.(check bool) "li max" true (Encoding.encodable (Isa.Li (Isa.r0, 4194303l)));
  Alcotest.(check bool) "li too big" false (Encoding.encodable (Isa.Li (Isa.r0, 4194304l)));
  Alcotest.(check bool) "li min" true (Encoding.encodable (Isa.Li (Isa.r0, -4194304l)));
  Alcotest.(check bool) "alui limit" false
    (Encoding.encodable (Isa.Alui (Isa.Add, Isa.r0, Isa.r0, 16384l)));
  Alcotest.(check bool) "branch target" false
    (Encoding.encodable (Isa.Beq (Isa.r0, Isa.r0, 65536, Isa.Eq)))

let test_encode_error () =
  (match Encoding.encode (Isa.Li (Isa.r0, 100_000_000l)) with
  | Error (Encoding.Immediate_out_of_range _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected immediate error");
  match Encoding.encode (Isa.Jmp 1_000_000) with
  | Error (Encoding.Target_out_of_range _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected target error"

let test_decode_bad_opcode () =
  match Encoding.decode 0xF8000000l with
  | Error (Encoding.Bad_opcode _) -> ()
  | Ok i -> Alcotest.failf "decoded %a" Isa.pp_instr i
  | Error e -> Alcotest.failf "wrong error %a" Encoding.pp_error e

let test_encode_program () =
  let prog = [| Isa.Nop; Isa.Li (Isa.reg 1, 7l); Isa.Halt |] in
  match Encoding.encode_program prog with
  | Error e -> Alcotest.failf "encode_program: %a" Encoding.pp_error e
  | Ok words -> (
      match Encoding.decode_program words with
      | Error e -> Alcotest.failf "decode_program: %a" Encoding.pp_error e
      | Ok prog' -> Alcotest.(check (array instr)) "roundtrip" prog prog')

(* qcheck generator for encodable instructions *)
let gen_instr =
  let open QCheck.Gen in
  let reg = map Isa.reg (int_range 0 15) in
  let alu_op =
    oneofl
      [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Divu; Isa.Remu; Isa.And; Isa.Or;
        Isa.Xor; Isa.Shl; Isa.Shr; Isa.Sar; Isa.Slt; Isa.Sltu ]
  in
  let cond = oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge; Isa.Ltu; Isa.Geu ] in
  let imm23 = map Int32.of_int (int_range (-4194304) 4194303) in
  let imm15 = map Int32.of_int (int_range (-16384) 16383) in
  let off19 = map Int32.of_int (int_range (-262144) 262143) in
  oneof
    [
      return Isa.Nop;
      return Isa.Halt;
      map2 (fun r v -> Isa.Li (r, v)) reg imm23;
      map3 (fun op (a, b) c -> Isa.Alu (op, a, b, c)) alu_op (pair reg reg) reg;
      map3 (fun op (a, b) v -> Isa.Alui (op, a, b, v)) alu_op (pair reg reg) imm15;
      map3 (fun a b o -> Isa.Lb (a, b, o)) reg reg off19;
      map3 (fun a b o -> Isa.Lw (a, b, o)) reg reg off19;
      map3 (fun a b o -> Isa.Sb (a, b, o)) reg reg off19;
      map3 (fun a b o -> Isa.Sw (a, b, o)) reg reg off19;
      map3
        (fun (a, b) t c -> Isa.Beq (a, b, t, c))
        (pair reg reg) (int_range 0 65535) cond;
      map (fun t -> Isa.Jmp t) (int_range 0 262143);
      map2 (fun r t -> Isa.Jal (r, t)) reg (int_range 0 4194303);
      map (fun r -> Isa.Jr r) reg;
    ]

let arbitrary_instr =
  QCheck.make ~print:(Format.asprintf "%a" Isa.pp_instr) gen_instr

let qcheck_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arbitrary_instr
    (fun i ->
      match Encoding.encode i with
      | Error _ -> false
      | Ok w -> (
          match Encoding.decode w with
          | Ok i' -> Isa.equal_instr i i'
          | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Asm DSL                                                            *)
(* ------------------------------------------------------------------ *)

let test_asm_resolve () =
  let code, symbols =
    Asm.resolve_exn
      [
        Asm.label "start";
        Asm.lii (Isa.reg 1) 3;
        Asm.label "loop";
        Asm.alui Isa.Sub (Isa.reg 1) (Isa.reg 1) 1;
        Asm.branch Isa.Ne (Isa.reg 1) Isa.r0 "loop";
        Asm.jump "end";
        Asm.nop;
        Asm.label "end";
        Asm.halt;
      ]
  in
  Alcotest.(check int) "length" 6 (Array.length code);
  Alcotest.(check (list (pair string int)))
    "symbols"
    [ ("start", 0); ("loop", 1); ("end", 5) ]
    symbols;
  Alcotest.check instr "branch resolved"
    (Isa.Beq (Isa.reg 1, Isa.r0, 1, Isa.Ne))
    code.(2);
  Alcotest.check instr "jump resolved" (Isa.Jmp 5) code.(3)

let test_asm_duplicate_label () =
  match Asm.resolve [ Asm.label "x"; Asm.nop; Asm.label "x" ] with
  | Error (Asm.Duplicate_label "x") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected duplicate label"

let test_asm_undefined_label () =
  match Asm.resolve [ Asm.jump "nowhere" ] with
  | Error (Asm.Undefined_label "nowhere") -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected undefined label"

let test_asm_call_ret () =
  let code, _ = Asm.resolve_exn [ Asm.call "f"; Asm.halt; Asm.label "f"; Asm.ret ] in
  Alcotest.check instr "call" (Isa.Jal (Isa.ra, 2)) code.(0);
  Alcotest.check instr "ret" (Isa.Jr Isa.ra) code.(2)

(* ------------------------------------------------------------------ *)
(* Textual assembler                                                  *)
(* ------------------------------------------------------------------ *)

let run_source src =
  let image = Assembler.assemble_exn ~name:"t" src in
  let m = Machine.create image in
  ignore (Machine.run m ~limit:100_000);
  (Machine.serial_output m, Machine.stopped m)

let test_assembler_hello () =
  let output, stop =
    run_source
      {|
      .rodata
      msg: .ascii "ok\n"
      .text
      main:
          li   r1, msg
          li   r2, 0x300000
          lb   r3, 0(r1)
          sb   r3, 0(r2)
          lb   r3, 1(r1)
          sb   r3, 0(r2)
          lb   r3, 2(r1)
          sb   r3, 0(r2)
          halt
      |}
  in
  Alcotest.(check string) "output" "ok\n" output;
  Alcotest.(check bool) "halted" true (stop = Some Machine.Halted)

let test_assembler_data_and_loop () =
  let output, _ =
    run_source
      {|
      .ram 64
      .data
      counter: .word 3
      .text
      main:
          lw   r1, counter
      loop:
          addi r2, r2, 1
          subi r1, r1, 1
          bne  r1, r0, loop
          addi r2, r2, 48      ; '0' + 3
          li   r3, 0x300000
          sb   r2, 0(r3)
          halt
      |}
  in
  Alcotest.(check string) "looped thrice" "3" output

let test_assembler_errors () =
  let expect_error src =
    match Assembler.assemble ~name:"t" src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected assembly error"
  in
  expect_error ".text\nmain:\n  bogus r1, r2\n  halt";
  expect_error ".text\nmain:\n  li r99, 1\n  halt";
  expect_error ".text\nmain:\n  jmp nowhere\n  halt";
  expect_error ".text\nmain:\nmain:\n  halt";
  expect_error ".text\n  li r1, notalabel\n  halt"

let test_assembler_char_literals () =
  let output, _ =
    run_source
      {|
      .text
      main:
          li r1, 'A'
          li r2, 0x300000
          sb r1, 0(r2)
          halt
      |}
  in
  Alcotest.(check string) "char literal" "A" output

let test_disassemble_roundtrip () =
  let src =
    {|
    .ram 64
    .data
    v: .word 5
    .text
    main:
        lw r1, v
        addi r1, r1, 1
        li r3, 0x300000
        addi r2, r1, 48
        sb r2, 0(r3)
        halt
    |}
  in
  let image = Assembler.assemble_exn ~name:"t" src in
  let listing = Assembler.disassemble image in
  let image2 = Assembler.assemble_exn ~name:"t2" listing in
  let run image =
    let m = Machine.create image in
    ignore (Machine.run m ~limit:10_000);
    Machine.serial_output m
  in
  Alcotest.(check string) "same behaviour" (run image) (run image2)

let suite =
  ( "isa",
    [
      Alcotest.test_case "reg bounds" `Quick test_reg_bounds;
      Alcotest.test_case "reg aliases" `Quick test_reg_aliases;
      Alcotest.test_case "instruction printing" `Quick test_pp;
      Alcotest.test_case "load/store classification" `Quick test_classification;
      Alcotest.test_case "branch targets" `Quick test_branch_targets;
      Alcotest.test_case "encode samples" `Quick test_encode_samples;
      Alcotest.test_case "encodable limits" `Quick test_encodable_limits;
      Alcotest.test_case "encode errors" `Quick test_encode_error;
      Alcotest.test_case "decode bad opcode" `Quick test_decode_bad_opcode;
      Alcotest.test_case "encode whole program" `Quick test_encode_program;
      QCheck_alcotest.to_alcotest qcheck_roundtrip;
      Alcotest.test_case "asm resolve" `Quick test_asm_resolve;
      Alcotest.test_case "asm duplicate label" `Quick test_asm_duplicate_label;
      Alcotest.test_case "asm undefined label" `Quick test_asm_undefined_label;
      Alcotest.test_case "asm call/ret" `Quick test_asm_call_ret;
      Alcotest.test_case "assembler hello" `Quick test_assembler_hello;
      Alcotest.test_case "assembler data+loop" `Quick test_assembler_data_and_loop;
      Alcotest.test_case "assembler errors" `Quick test_assembler_errors;
      Alcotest.test_case "assembler char literals" `Quick test_assembler_char_literals;
      Alcotest.test_case "disassemble roundtrip" `Quick test_disassemble_roundtrip;
    ] )
