(* Tests for the register fault-space extension (Section VI-B), pinned to
   hand-derived register def/use facts of the Hi program. *)

let hi = lazy (Regspace.analyze (Hi.program ()))

let test_defs_uses () =
  let r = Isa.reg in
  let check instr expected_writes expected_reads =
    let writes, reads = Regspace.defs_uses instr in
    Alcotest.(check (list int)) "writes" expected_writes
      (List.map Isa.reg_index writes);
    Alcotest.(check (list int)) "reads" expected_reads
      (List.map Isa.reg_index reads)
  in
  check (Isa.Alu (Isa.Add, r 1, r 2, r 3)) [ 1 ] [ 2; 3 ];
  check (Isa.Alui (Isa.Sub, r 4, r 5, 1l)) [ 4 ] [ 5 ];
  check (Isa.Li (r 6, 0l)) [ 6 ] [];
  check (Isa.Lw (r 7, r 8, 0l)) [ 7 ] [ 8 ];
  check (Isa.Sw (r 9, r 10, 0l)) [] [ 9; 10 ];
  check (Isa.Beq (r 1, r 2, 0, Isa.Eq)) [] [ 1; 2 ];
  check (Isa.Jal (Isa.ra, 0)) [ 15 ] [];
  check (Isa.Jr (r 11)) [] [ 11 ];
  check Isa.Nop [] [];
  (* r0 is excluded on both sides. *)
  check (Isa.Alu (Isa.Add, r 0, r 0, r 1)) [] [ 1 ];
  check (Isa.Sb (r 1, r 0, 0l)) [] [ 1 ]

let test_hi_register_space_size () =
  let t = Lazy.force hi in
  Alcotest.(check int) "w = 8 cycles x 480 bits" (8 * 480)
    (Regspace.fault_space_size t)

let test_hi_register_classes () =
  let t = Lazy.force hi in
  let d = t.Regspace.reg_defuse in
  (* r1 ('H') read at cycle 1: class [1,1]; r3 (ROM base) read at 2:
     [1,2]; r7 (serial) read at 5 and 7: [1,5] and [6,7]; r2 written at 2
     then read at 3: [3,3]; r4 [5,5]; r5 [7,7]. *)
  (* 7 register-level experiment intervals, each spanning the 4 pseudo-
     bytes of its register => 28 byte-classes, 224 experiments. *)
  let experiment_classes = Defuse.experiment_classes d in
  Alcotest.(check int) "28 experiment byte-classes" 28
    (Array.length experiment_classes);
  Alcotest.(check int) "224 experiments" 224 (Defuse.experiment_count d);
  (* Spot-check the r1 class: pseudo-byte 0 (register 1, low byte). *)
  let c = Defuse.find d ~cycle:1 ~byte:0 in
  Alcotest.(check bool) "r1 low byte is a [1,1] experiment" true
    (c.Defuse.t_start = 1 && c.Defuse.t_end = 1 && c.Defuse.kind = Defuse.Experiment)

let test_coord_of_bit () =
  Alcotest.(check (pair int int)) "first bit" (1, 0) (Regspace.coord_of_bit 0);
  Alcotest.(check (pair int int)) "r1 bit 31" (1, 31) (Regspace.coord_of_bit 31);
  Alcotest.(check (pair int int)) "r2 bit 0" (2, 0) (Regspace.coord_of_bit 32);
  Alcotest.(check (pair int int)) "last" (15, 31) (Regspace.coord_of_bit 479)

let test_hi_register_scan () =
  let t = Lazy.force hi in
  let scan = Regspace.scan t in
  Alcotest.(check int) "pseudo ram" 60 scan.Scan.ram_bytes;
  Alcotest.(check int) "w consistent" (8 * 480) (Scan.fault_space_size scan);
  (* Low byte of r1 (the 'H' about to be stored): all 8 bits corrupt the
     output => SDC.  High bytes of r1: sb stores only the low byte =>
     benign. *)
  let outcome_of ~byte ~bit_in_byte =
    let e =
      Array.to_list scan.Scan.experiments
      |> List.find (fun (e : Scan.experiment) ->
             e.Scan.byte = byte && e.Scan.bit_in_byte = bit_in_byte
             && e.Scan.t_end = 1)
    in
    e.Scan.outcome
  in
  for b = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "r1 low bit %d fails" b)
      true
      (Outcome.is_failure (outcome_of ~byte:0 ~bit_in_byte:b))
  done;
  for b = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "r1 high bit %d benign" b)
      true
      (Outcome.is_benign (outcome_of ~byte:3 ~bit_in_byte:b))
  done;
  (* The metrics layer works unchanged on register scans. *)
  let coverage = Metrics.coverage scan in
  Alcotest.(check bool) "coverage within (0,1)" true
    (coverage > 0.0 && coverage < 1.0);
  Alcotest.(check bool) "some failures" true (Metrics.failure_count scan > 0)

let test_register_flip_primitive () =
  let m = Machine.create (Hi.program ()) in
  Machine.flip_reg_bit m ~reg:1 ~bit:0;
  Alcotest.(check int32) "H xor 1 = I"
    (Int32.of_int (Char.code 'I'))
    (Machine.reg m (Isa.reg 1));
  Alcotest.check_raises "r0 rejected"
    (Invalid_argument "Machine.flip_reg_bit: register outside [1,15]")
    (fun () -> Machine.flip_reg_bit m ~reg:0 ~bit:0);
  Alcotest.check_raises "bit 32 rejected"
    (Invalid_argument "Machine.flip_reg_bit: bit outside [0,31]") (fun () ->
      Machine.flip_reg_bit m ~reg:1 ~bit:32)

let test_register_partition_invariant () =
  (* Register def/use classes partition the register fault space for a
     real compiled program. *)
  let t = Regspace.analyze (Mbox1.baseline ()) in
  let d = t.Regspace.reg_defuse in
  let total =
    8 * Array.fold_left (fun acc c -> acc + Defuse.weight c) 0 (Defuse.classes d)
  in
  Alcotest.(check int) "weights partition w" (Regspace.fault_space_size t) total

let test_cross_layer_sizes_differ () =
  (* The Section VI-C setup: same program, two layers, different w. *)
  let t = Lazy.force hi in
  Alcotest.(check bool) "register w != memory w" true
    (Regspace.fault_space_size t <> Golden.fault_space_size t.Regspace.golden)

let suite =
  ( "regspace",
    [
      Alcotest.test_case "defs/uses per instruction" `Quick test_defs_uses;
      Alcotest.test_case "hi register space size" `Quick
        test_hi_register_space_size;
      Alcotest.test_case "hi register classes" `Quick test_hi_register_classes;
      Alcotest.test_case "coord_of_bit" `Quick test_coord_of_bit;
      Alcotest.test_case "hi register scan" `Quick test_hi_register_scan;
      Alcotest.test_case "register flip primitive" `Quick
        test_register_flip_primitive;
      Alcotest.test_case "register partition invariant" `Quick
        test_register_partition_invariant;
      Alcotest.test_case "cross-layer sizes differ" `Quick
        test_cross_layer_sizes_differ;
    ] )
