(* Tests for the deterministic PRNG. *)

let test_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_replays () =
  let a = Prng.create ~seed:7L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  for _ = 1 to 100 do
    Alcotest.(check int64) "copy replays" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_split_independent () =
  let a = Prng.create ~seed:7L in
  let b = Prng.split a in
  (* Not a statistical test — just that both still produce values and are
     not identical streams. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.next_int64 a) (Prng.next_int64 b) then incr same
  done;
  Alcotest.(check bool) "split stream differs" true (!same < 4)

let test_int_bounds () =
  let g = Prng.create ~seed:3L in
  for _ = 1 to 10_000 do
    let v = Prng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.fail "Prng.int out of bounds"
  done

let test_int_invalid () =
  let g = Prng.create ~seed:3L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_covers_all () =
  let g = Prng.create ~seed:11L in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Prng.int g 5) <- true
  done;
  Array.iteri
    (fun i b -> Alcotest.(check bool) (Printf.sprintf "value %d seen" i) true b)
    seen

let test_int64_bounds () =
  let g = Prng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let v = Prng.int64 g 1000L in
    if Int64.compare v 0L < 0 || Int64.compare v 1000L >= 0 then
      Alcotest.fail "Prng.int64 out of bounds"
  done

let test_float_bounds () =
  let g = Prng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let v = Prng.float g 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Prng.float out of bounds"
  done

let test_float_mean () =
  let g = Prng.create ~seed:9L in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float g 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_bool_balance () =
  let g = Prng.create ~seed:13L in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.bool g then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "bool balanced" true (Float.abs (frac -. 0.5) < 0.01)

let test_shuffle_permutation () =
  let g = Prng.create ~seed:17L in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 50 (fun i -> i))
    sorted

let test_choose_member () =
  let g = Prng.create ~seed:19L in
  let a = [| 2; 4; 8 |] in
  for _ = 1 to 100 do
    let v = Prng.choose g a in
    Alcotest.(check bool) "member" true (Array.exists (( = ) v) a)
  done

let test_choose_empty () =
  let g = Prng.create ~seed:19L in
  Alcotest.check_raises "empty array"
    (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Prng.choose g [||]))

let test_bits30_range () =
  let g = Prng.create ~seed:23L in
  for _ = 1 to 10_000 do
    let v = Prng.bits30 g in
    if v < 0 || v >= 1 lsl 30 then Alcotest.fail "bits30 out of range"
  done

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int always within bound" ~count:500
    QCheck.(pair (int_bound 1_000_000) small_int)
    (fun (bound, seed) ->
      let bound = bound + 1 in
      let g = Prng.create ~seed:(Int64.of_int seed) in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "copy replays" `Quick test_copy_replays;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "int bounds" `Quick test_int_bounds;
      Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
      Alcotest.test_case "int covers range" `Quick test_int_covers_all;
      Alcotest.test_case "int64 bounds" `Quick test_int64_bounds;
      Alcotest.test_case "float bounds" `Quick test_float_bounds;
      Alcotest.test_case "float mean" `Quick test_float_mean;
      Alcotest.test_case "bool balance" `Quick test_bool_balance;
      Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "choose member" `Quick test_choose_member;
      Alcotest.test_case "choose empty" `Quick test_choose_empty;
      Alcotest.test_case "bits30 range" `Quick test_bits30_range;
      QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
    ] )
