(* Minimal mkdir without depending on unix in the test runner. *)
let mkdir path = if not (Sys.file_exists path) then Sys.mkdir path 0o755
