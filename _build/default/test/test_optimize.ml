(* Tests for the MIR optimisation passes: semantics preservation
   (differential against the interpreter), specific rewrites, and the
   fault-space effect. *)

let run_prog p =
  let image = Codegen.compile p in
  let m = Machine.create image in
  let reason = Machine.run m ~limit:1_000_000 in
  (Machine.serial_output m, reason)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                   *)
(* ------------------------------------------------------------------ *)

let test_fold_arithmetic () =
  let open Builder in
  let folded = Optimize.const_fold
      (prog ~name:"cf" [ global "x" ]
         [ func "main" [ setg "x" ((i 6 *: i 7) -: i 2); ret_unit ] ])
  in
  match (List.hd folded.Mir.p_funcs).Mir.f_body with
  | [ Mir.Set_global ("x", Mir.Int 40l); Mir.Return None ] -> ()
  | body ->
      Alcotest.failf "unexpected body: %a" (Format.pp_print_list Mir.pp_stmt)
        body

let test_fold_branches () =
  let open Builder in
  let folded =
    Optimize.const_fold
      (prog ~name:"cf" []
         [
           func "main"
             (if_else (i 1 >: i 0) [ out_str "yes" ] [ out_str "no" ]
             @ [ while_ (i 0) [ out_str "never" ]; ret_unit ]);
         ])
  in
  match (List.hd folded.Mir.p_funcs).Mir.f_body with
  | [ Mir.Out_str "yes"; Mir.Return None ] -> ()
  | body ->
      Alcotest.failf "unexpected body: %a" (Format.pp_print_list Mir.pp_stmt)
        body

let test_fold_preserves_div_by_zero () =
  let open Builder in
  let p =
    prog ~name:"cf" [ global "x" ]
      [ func "main" [ setg "x" (i 1 /: i 0); ret_unit ] ]
  in
  let folded = Optimize.const_fold p in
  let _, reason = run_prog folded in
  Alcotest.(check bool) "trap survives folding" true
    (reason = Machine.Trapped Machine.Division_by_zero)

let test_fold_machine_semantics () =
  (* Folding must agree with the machine on wrap-around. *)
  let open Builder in
  let folded =
    Optimize.const_fold
      (prog ~name:"cf" [ global "x" ]
         [ func "main" [ setg "x" (i32 0x7FFFFFFFl +: i 1); ret_unit ] ])
  in
  match (List.hd folded.Mir.p_funcs).Mir.f_body with
  | [ Mir.Set_global ("x", Mir.Int v); Mir.Return None ] ->
      Alcotest.(check int32) "wraps" Int32.min_int v
  | _ -> Alcotest.fail "not folded"

(* ------------------------------------------------------------------ *)
(* Dead-store elimination                                             *)
(* ------------------------------------------------------------------ *)

let count_stmts (p : Mir.prog) =
  let rec stmts body =
    List.fold_left
      (fun acc s ->
        acc + 1
        +
        match (s : Mir.stmt) with
        | Mir.If (_, t, e) -> stmts t + stmts e
        | Mir.While (_, b) -> stmts b
        | _ -> 0)
      0 body
  in
  List.fold_left (fun acc f -> acc + stmts f.Mir.f_body) 0 p.Mir.p_funcs

let test_dse_removes_dead_store () =
  let open Builder in
  let p =
    prog ~name:"dse" [ global "x" ]
      [
        func "main" ~locals:[ "a"; "b" ]
          [
            set "a" (i 1);
            set "a" (i 2) (* first store dead *);
            set "b" (i 9) (* never read: dead *);
            setg "x" (l "a");
            ret_unit;
          ];
      ]
  in
  let opt = Optimize.dead_store_elim p in
  Alcotest.(check int) "two stores removed" (count_stmts p - 2) (count_stmts opt);
  Alcotest.(check bool) "behaviour preserved" true
    (run_prog p = run_prog opt)

let test_dse_keeps_loop_carried () =
  let open Builder in
  let p =
    prog ~name:"dse" []
      ([
         func "main" ~locals:[ "acc"; "k" ]
           ([ set "acc" (i 0) ]
           @ for_ "k" ~from:(i 0) ~below:(i 5)
               [ set "acc" (l "acc" +: l "k") ]
           @ [ call_ out_dec [ l "acc" ]; ret_unit ]);
       ]
      @ stdlib)
  in
  let opt = Optimize.dead_store_elim p in
  (* The loop-carried accumulator must survive. *)
  Alcotest.(check bool) "same output" true (run_prog p = run_prog opt);
  let output, _ = run_prog opt in
  Alcotest.(check string) "sum 0..4" "10" output

let test_dse_keeps_call_effects () =
  let open Builder in
  let p =
    prog ~name:"dse" [ global "g" ]
      [
        func "bump" [ setg "g" (Mir.Global "g" +: i 1); ret (i 0) ];
        func "main" ~locals:[ "dead" ]
          [
            set "dead" (call "bump" []) (* result dead, effect is not *);
            out (Mir.Global "g" +: i 48);
            ret_unit;
          ];
      ]
  in
  let opt = Optimize.dead_store_elim p in
  let output, _ = run_prog opt in
  Alcotest.(check string) "call effect kept" "1" output;
  (* And the store became a bare call. *)
  let main = Option.get (Mir.find_func opt "main") in
  Alcotest.(check bool) "rewritten to Do_call" true
    (List.exists (function Mir.Do_call ("bump", _) -> true | _ -> false)
       main.Mir.f_body)

let test_dse_drops_unreachable () =
  let open Builder in
  let p =
    prog ~name:"dse" []
      [ func "main" [ ret_unit; out_str "never" ] ]
  in
  let opt = Optimize.dead_store_elim p in
  let main = Option.get (Mir.find_func opt "main") in
  Alcotest.(check int) "only the return remains" 1 (List.length main.Mir.f_body)

let test_optimize_shrinks_fault_space () =
  let open Builder in
  (* A program with lots of dead computation into locals. *)
  let p =
    prog ~name:"waste" [ global "x" ]
      ([
         func "main" ~locals:[ "t"; "u"; "k" ]
           (for_ "k" ~from:(i 0) ~below:(i 10)
              [
                set "t" (l "k" *: i 17) (* dead *);
                set "u" (i 3 +: i 4) (* dead and constant *);
                setg "x" (Mir.Global "x" +: l "k");
              ]
           @ [ call_ out_dec [ g "x" ]; ret_unit ]);
       ]
      @ stdlib)
  in
  let opt = Optimize.optimize p in
  let gb = Golden.run (Codegen.compile p) in
  let go = Golden.run (Codegen.compile opt) in
  Alcotest.(check string) "same output" gb.Golden.output go.Golden.output;
  Alcotest.(check bool) "optimised is faster" true
    (go.Golden.cycles < gb.Golden.cycles);
  Alcotest.(check bool) "fault space shrank" true
    (Golden.fault_space_size go < Golden.fault_space_size gb)

(* Differential property: optimisation preserves behaviour on random
   small programs. *)
let gen_prog =
  let open QCheck.Gen in
  let* seed = int_range 0 10_000 in
  let open Builder in
  let c1 = (seed mod 13) + 1 and c2 = (seed / 13 mod 7) + 1 in
  return
    (prog ~name:"rand" [ global "x" ~init:[ seed mod 5 ]; array "a" 3 ]
       ([
          func "helper" ~params:[ "v" ] ~locals:[ "w" ]
            [
              set "w" (l "v" *: i c1);
              set "w" (l "w" +: i c2);
              ret (l "w");
            ];
          func "main" ~locals:[ "t"; "dead"; "k" ]
            ([
               set "dead" (i 42);
               set "t" (call "helper" [ i (seed mod 9) ]);
               set_elem "a" (i 1) (l "t" &: i 0xFF);
             ]
            @ for_ "k" ~from:(i 0) ~below:(i (1 + (seed mod 4)))
                [
                  setg "x" (Mir.Global "x" +: elem "a" (i 1));
                  set "dead" (l "dead" +: i 1);
                ]
            @ if_else
                (Mir.Global "x" >: i c1)
                [ call_ out_dec [ g "x" ] ]
                [ out_str "small" ]
            @ [ ret_unit ]);
        ]
       @ stdlib))

let qcheck_optimize_preserves =
  QCheck.Test.make ~name:"optimize preserves behaviour" ~count:40
    (QCheck.make gen_prog) (fun p ->
      run_prog p = run_prog (Optimize.optimize p))

let suite =
  ( "optimize",
    [
      Alcotest.test_case "fold arithmetic" `Quick test_fold_arithmetic;
      Alcotest.test_case "fold branches" `Quick test_fold_branches;
      Alcotest.test_case "folding keeps div-by-zero" `Quick
        test_fold_preserves_div_by_zero;
      Alcotest.test_case "folding uses machine semantics" `Quick
        test_fold_machine_semantics;
      Alcotest.test_case "dse removes dead stores" `Quick
        test_dse_removes_dead_store;
      Alcotest.test_case "dse keeps loop-carried values" `Quick
        test_dse_keeps_loop_carried;
      Alcotest.test_case "dse keeps call effects" `Quick
        test_dse_keeps_call_effects;
      Alcotest.test_case "dse drops unreachable code" `Quick
        test_dse_drops_unreachable;
      Alcotest.test_case "optimisation shrinks the fault space" `Quick
        test_optimize_shrinks_fault_space;
      QCheck_alcotest.to_alcotest qcheck_optimize_preserves;
    ] )
