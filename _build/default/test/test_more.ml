(* Additional depth: fuzzing the decoder, differential ALU testing at
   machine level, def/use lookup consistency, sampler agreement, CSV of
   register scans, and the sampled figure generator. *)

(* ------------------------------------------------------------------ *)
(* Decoder fuzzing                                                    *)
(* ------------------------------------------------------------------ *)

let qcheck_decode_total =
  QCheck.Test.make ~name:"decode never raises on arbitrary words"
    ~count:5000
    QCheck.(map Int32.of_int int)
    (fun w ->
      match Encoding.decode w with
      | Ok instr -> (
          (* Whatever decodes must re-encode to something decodable. *)
          match Encoding.encode instr with
          | Ok _ -> true
          | Error _ -> Encoding.encodable instr = false)
      | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Machine-level ALU differential                                     *)
(* ------------------------------------------------------------------ *)

let machine_alu op a b =
  let r = Isa.reg in
  let p =
    Program.make ~name:"alu"
      ~code:[| Isa.Alu (op, r 3, r 1, r 2); Isa.Halt |]
      ~reg_init:[ (r 1, a); (r 2, b) ]
      ~ram_size:16 ()
  in
  let m = Machine.create p in
  match Machine.run m ~limit:10 with
  | Machine.Halted -> Some (Machine.reg m (r 3))
  | Machine.Trapped Machine.Division_by_zero -> None
  | _ -> Some 0xDEADl

let reference_alu op a b =
  let open Int32 in
  let sh = to_int (logand b 31l) in
  match (op : Isa.alu_op) with
  | Isa.Add -> Some (add a b)
  | Isa.Sub -> Some (sub a b)
  | Isa.Mul -> Some (mul a b)
  | Isa.Divu -> if equal b 0l then None else Some (unsigned_div a b)
  | Isa.Remu -> if equal b 0l then None else Some (unsigned_rem a b)
  | Isa.And -> Some (logand a b)
  | Isa.Or -> Some (logor a b)
  | Isa.Xor -> Some (logxor a b)
  | Isa.Shl -> Some (shift_left a sh)
  | Isa.Shr -> Some (shift_right_logical a sh)
  | Isa.Sar -> Some (shift_right a sh)
  | Isa.Slt -> Some (if compare a b < 0 then 1l else 0l)
  | Isa.Sltu -> Some (if unsigned_compare a b < 0 then 1l else 0l)

let qcheck_machine_alu =
  QCheck.Test.make ~name:"machine ALU matches Int32 reference" ~count:800
    (QCheck.make
       QCheck.Gen.(
         triple
           (oneofl
              [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Divu; Isa.Remu; Isa.And;
                Isa.Or; Isa.Xor; Isa.Shl; Isa.Shr; Isa.Sar; Isa.Slt;
                Isa.Sltu ])
           (map Int32.of_int int) (map Int32.of_int int)))
    (fun (op, a, b) -> machine_alu op a b = reference_alu op a b)

(* ------------------------------------------------------------------ *)
(* Def/use: binary-search lookup equals linear scan                   *)
(* ------------------------------------------------------------------ *)

let qcheck_find_equals_linear =
  QCheck.Test.make ~name:"Defuse.find equals linear scan" ~count:100
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (let golden = lazy (Golden.run (Hi.dft' ())) in
     fun (a, b) ->
       let d = (Lazy.force golden).Golden.defuse in
       let cycle = 1 + (a mod Defuse.total_cycles d) in
       let byte = b mod Defuse.ram_size d in
       let found = Defuse.find d ~cycle ~byte in
       let linear =
         Array.to_list (Defuse.classes d)
         |> List.find (fun (c : Defuse.byte_class) ->
                c.Defuse.byte = byte && c.Defuse.t_start <= cycle
                && cycle <= c.Defuse.t_end)
       in
       found = linear)

(* ------------------------------------------------------------------ *)
(* Samplers agree on the failure fraction                             *)
(* ------------------------------------------------------------------ *)

let test_samplers_agree () =
  (* uniform_raw and uniform_effective estimate the same F (the former
     via the failure fraction of w, the latter via w'). *)
  let golden = Golden.run (Mbox1.baseline ~items:4 ()) in
  let scan = Scan.pruned golden in
  let truth = float_of_int (Metrics.failure_count scan) in
  let est_raw =
    Sampler.uniform_raw (Prng.create ~seed:4L) ~samples:20_000 golden
  in
  let est_eff =
    Sampler.uniform_effective (Prng.create ~seed:5L) ~samples:20_000 golden
  in
  let f_raw = Metrics.extrapolated_failures est_raw in
  let f_eff = Metrics.extrapolated_failures est_eff in
  let close a = Float.abs (a -. truth) /. truth < 0.15 in
  Alcotest.(check bool)
    (Printf.sprintf "raw %.0f near truth %.0f" f_raw truth)
    true (close f_raw);
  Alcotest.(check bool)
    (Printf.sprintf "effective %.0f near truth %.0f" f_eff truth)
    true (close f_eff);
  (* The effective sampler conducts no experiments for benign classes,
     so its estimate has lower variance per conducted experiment; at
     minimum its population is smaller. *)
  Alcotest.(check bool) "w' < w" true
    (est_eff.Sampler.population < est_raw.Sampler.population)

(* ------------------------------------------------------------------ *)
(* Register scans through CSV                                         *)
(* ------------------------------------------------------------------ *)

let test_register_scan_csv () =
  let scan = Regspace.scan (Regspace.analyze (Hi.program ())) in
  match Csv_io.of_string (Csv_io.to_string scan) with
  | Error e -> Alcotest.fail e
  | Ok scan' ->
      Alcotest.(check int) "F preserved"
        (Metrics.failure_count scan)
        (Metrics.failure_count scan');
      Alcotest.(check int) "pseudo-ram preserved" 60 scan'.Scan.ram_bytes

(* ------------------------------------------------------------------ *)
(* Sampled figure generator                                           *)
(* ------------------------------------------------------------------ *)

let test_figure2_sampled () =
  (* Use the real (small) mbox1 pair through the Suite so the generator's
     golden-rebuild path is exercised. *)
  let sb = Scan.pruned (Golden.run (Mbox1.baseline ())) in
  let sh =
    Scan.pruned ~variant:"sum+dmr" (Golden.run (Mbox1.sum_dmr ()))
  in
  let text = Figures.figure2_sampled ~samples:2000 [ ("mbox1", sb, sh) ] in
  Alcotest.(check bool) "has CI column" true
    (Astring_contains.contains text "95% CI");
  Alcotest.(check bool) "both variants" true
    (Astring_contains.contains text "mbox1/baseline"
    && Astring_contains.contains text "mbox1/sum+dmr")

(* ------------------------------------------------------------------ *)
(* Dilution invariants as properties                                  *)
(* ------------------------------------------------------------------ *)

let qcheck_dilution_never_changes_f =
  QCheck.Test.make ~name:"NOP dilution never changes F" ~count:8
    QCheck.(int_bound 12)
    (fun nops ->
      let base = Golden.run (Hi.program ()) in
      let diluted = Golden.run (Hi.dft ~nops ()) in
      let f_base = Metrics.failure_count (Scan.pruned base) in
      let f_diluted = Metrics.failure_count (Scan.pruned diluted) in
      f_base = f_diluted
      && Golden.fault_space_size diluted
         = Golden.fault_space_size base + (nops * 16))

let qcheck_memory_dilution_inflates_coverage =
  QCheck.Test.make ~name:"memory padding monotonically inflates coverage"
    ~count:6
    QCheck.(int_bound 8)
    (fun extra ->
      let bytes = extra + 1 in
      let base = Scan.pruned (Golden.run (Hi.program ())) in
      let padded =
        Scan.pruned (Golden.run (Hi.dft_memory ~bytes ()))
      in
      Metrics.coverage padded > Metrics.coverage base
      && Metrics.failure_count padded = Metrics.failure_count base)

(* ------------------------------------------------------------------ *)
(* Machine: MMIO reads, word store to serial                          *)
(* ------------------------------------------------------------------ *)

let test_mmio_read_is_zero () =
  let r = Isa.reg in
  let p =
    Program.make ~name:"mmio"
      ~code:
        [|
          Isa.Li (r 1, Int32.of_int Memmap.serial_port);
          Isa.Lb (r 2, r 1, 0l);
          Isa.Halt;
        |]
      ~reg_init:[ (r 2, 77l) ]
      ~ram_size:16 ()
  in
  let m = Machine.create p in
  ignore (Machine.run m ~limit:10);
  Alcotest.(check int32) "mmio reads as zero" 0l (Machine.reg m (r 2))

let test_serial_word_store () =
  let r = Isa.reg in
  let p =
    Program.make ~name:"ser"
      ~code:
        [|
          Isa.Li (r 1, Int32.of_int Memmap.serial_port);
          Isa.Li (r 2, 0x4241l) (* 'A' in the low byte *);
          Isa.Sw (r 2, r 1, 0l);
          Isa.Halt;
        |]
      ~ram_size:16 ()
  in
  let m = Machine.create p in
  ignore (Machine.run m ~limit:10);
  Alcotest.(check string) "low byte only" "A" (Machine.serial_output m)

let suite =
  ( "more",
    [
      QCheck_alcotest.to_alcotest qcheck_decode_total;
      QCheck_alcotest.to_alcotest qcheck_machine_alu;
      QCheck_alcotest.to_alcotest qcheck_find_equals_linear;
      Alcotest.test_case "samplers agree" `Slow test_samplers_agree;
      Alcotest.test_case "register scan through CSV" `Quick
        test_register_scan_csv;
      Alcotest.test_case "sampled figure 2" `Slow test_figure2_sampled;
      QCheck_alcotest.to_alcotest qcheck_dilution_never_changes_f;
      QCheck_alcotest.to_alcotest qcheck_memory_dilution_inflates_coverage;
      Alcotest.test_case "mmio reads zero" `Quick test_mmio_read_is_zero;
      Alcotest.test_case "serial word store" `Quick test_serial_word_store;
    ] )
