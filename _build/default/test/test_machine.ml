(* Tests for the machine simulator: instruction semantics, memory map,
   traps, MMIO devices, determinism, injection primitives, snapshots. *)

let stop = Alcotest.testable Machine.pp_stop_reason ( = )

let program ?rom ?ram_init ?reg_init ?(ram_size = 64) code =
  Program.make ~name:"test" ~code:(Array.of_list code) ?rom ?ram_init ?reg_init
    ~ram_size ()

let run ?limit p =
  let m = Machine.create p in
  let reason = Machine.run m ~limit:(Option.value ~default:10_000 limit) in
  (m, reason)

let r = Isa.reg

(* ------------------------------------------------------------------ *)
(* ALU semantics                                                      *)
(* ------------------------------------------------------------------ *)

let alu_result op a b =
  let p =
    program
      [
        Isa.Li (r 1, a);
        Isa.Li (r 2, b);
        Isa.Alu (op, r 3, r 1, r 2);
        Isa.Halt;
      ]
  in
  let m, reason = run p in
  Alcotest.check stop "halted" Machine.Halted reason;
  Machine.reg m (r 3)

let test_alu_add_overflow () =
  Alcotest.(check int32) "wraps" Int32.min_int
    (alu_result Isa.Add 2147483647l 1l)

let test_alu_sub () =
  Alcotest.(check int32) "sub" (-5l) (alu_result Isa.Sub 5l 10l)

let test_alu_mul () =
  Alcotest.(check int32) "mul wraps" 1l (alu_result Isa.Mul 2147483647l 2147483647l)

let test_alu_divu () =
  Alcotest.(check int32) "unsigned division" 2147483647l
    (alu_result Isa.Divu (-2l) 2l)
  (* 0xFFFFFFFE / 2 = 0x7FFFFFFF *)

let test_alu_remu () =
  Alcotest.(check int32) "unsigned remainder" 3l (alu_result Isa.Remu 23l 5l)

let test_alu_div_by_zero () =
  let p =
    program [ Isa.Li (r 1, 1l); Isa.Alu (Isa.Divu, r 2, r 1, r 0); Isa.Halt ]
  in
  let _, reason = run p in
  Alcotest.check stop "trap" (Machine.Trapped Machine.Division_by_zero) reason

let test_alu_logic () =
  Alcotest.(check int32) "and" 0b1000l (alu_result Isa.And 0b1100l 0b1010l);
  Alcotest.(check int32) "or" 0b1110l (alu_result Isa.Or 0b1100l 0b1010l);
  Alcotest.(check int32) "xor" 0b0110l (alu_result Isa.Xor 0b1100l 0b1010l)

let test_alu_shifts () =
  Alcotest.(check int32) "shl" 40l (alu_result Isa.Shl 5l 3l);
  Alcotest.(check int32) "shr logical" 0x7FFFFFFFl (alu_result Isa.Shr (-1l) 1l);
  Alcotest.(check int32) "sar arithmetic" (-1l) (alu_result Isa.Sar (-1l) 1l);
  Alcotest.(check int32) "shift amount masked" 10l (alu_result Isa.Shl 5l 33l)

let test_alu_slt () =
  Alcotest.(check int32) "signed lt" 1l (alu_result Isa.Slt (-1l) 0l);
  Alcotest.(check int32) "unsigned lt" 0l (alu_result Isa.Sltu (-1l) 0l)

let test_r0_hardwired () =
  let p = program [ Isa.Li (r 0, 99l); Isa.Alu (Isa.Add, r 1, r 0, r 0); Isa.Halt ] in
  let m, _ = run p in
  Alcotest.(check int32) "r0 stays zero" 0l (Machine.reg m (r 1))

(* ------------------------------------------------------------------ *)
(* Memory & MMIO                                                      *)
(* ------------------------------------------------------------------ *)

let test_byte_store_load () =
  let p =
    program
      [
        Isa.Li (r 1, 0xABl);
        Isa.Sb (r 1, r 0, 5l);
        Isa.Lb (r 2, r 0, 5l);
        Isa.Halt;
      ]
  in
  let m, _ = run p in
  Alcotest.(check int32) "roundtrip" 0xABl (Machine.reg m (r 2));
  Alcotest.(check int) "in ram" 0xAB (Machine.read_ram_byte m 5)

let test_word_endianness () =
  let p =
    program
      [
        Isa.Li (r 1, 0x11223344l);
        Isa.Sw (r 1, r 0, 8l);
        Isa.Lb (r 2, r 0, 8l);
        Isa.Lb (r 3, r 0, 11l);
        Isa.Halt;
      ]
  in
  let m, _ = run p in
  Alcotest.(check int32) "little-endian low byte" 0x44l (Machine.reg m (r 2));
  Alcotest.(check int32) "high byte" 0x11l (Machine.reg m (r 3))

let test_misaligned_word () =
  let p = program [ Isa.Li (r 1, 1l); Isa.Sw (r 1, r 0, 2l); Isa.Halt ] in
  let _, reason = run p in
  Alcotest.check stop "trap" (Machine.Trapped (Machine.Misaligned_access 2)) reason

let test_unmapped_access () =
  let p = program [ Isa.Lb (r 1, r 0, 9999l); Isa.Halt ] in
  let _, reason = run p in
  Alcotest.check stop "trap" (Machine.Trapped (Machine.Unmapped_access 9999)) reason

let test_rom_read () =
  let p =
    program ~rom:(Bytes.of_string "Z")
      [
        Isa.Li (r 1, Int32.of_int Memmap.rom_base);
        Isa.Lb (r 2, r 1, 0l);
        Isa.Halt;
      ]
  in
  let m, _ = run p in
  Alcotest.(check int32) "rom byte" (Int32.of_int (Char.code 'Z')) (Machine.reg m (r 2))

let test_rom_write_traps () =
  let p =
    program
      [
        Isa.Li (r 1, Int32.of_int Memmap.rom_base);
        Isa.Sb (r 1, r 1, 0l);
        Isa.Halt;
      ]
  in
  let _, reason = run p in
  Alcotest.check stop "trap"
    (Machine.Trapped (Machine.Rom_write Memmap.rom_base))
    reason

let test_serial_output () =
  let p =
    program
      [
        Isa.Li (r 1, Int32.of_int Memmap.serial_port);
        Isa.Li (r 2, 72l);
        Isa.Sb (r 2, r 1, 0l);
        Isa.Li (r 2, 105l);
        Isa.Sb (r 2, r 1, 0l);
        Isa.Halt;
      ]
  in
  let m, _ = run p in
  Alcotest.(check string) "serial" "Hi" (Machine.serial_output m)

let test_detect_port () =
  let p =
    program
      [
        Isa.Li (r 1, Int32.of_int Memmap.detect_port);
        Isa.Li (r 2, 1l);
        Isa.Sw (r 2, r 1, 0l);
        Isa.Halt;
      ]
  in
  let m, _ = run p in
  match Machine.detection_events m with
  | [ (cycle, code) ] ->
      Alcotest.(check int32) "code" 1l code;
      Alcotest.(check int) "cycle" 3 cycle
  | events -> Alcotest.failf "expected 1 event, got %d" (List.length events)

let test_panic_port () =
  let p =
    program
      [
        Isa.Li (r 1, Int32.of_int Memmap.panic_port);
        Isa.Li (r 2, 0xDEADl);
        Isa.Sw (r 2, r 1, 0l);
        Isa.Halt;
      ]
  in
  let _, reason = run p in
  Alcotest.check stop "panic" (Machine.Panicked 0xDEADl) reason

let test_ram_init_and_reg_init () =
  let p =
    program
      ~ram_init:[ (4, Bytes.of_string "\x2A") ]
      ~reg_init:[ (r 5, 17l) ]
      [ Isa.Lb (r 1, r 0, 4l); Isa.Alu (Isa.Add, r 2, r 1, r 5); Isa.Halt ]
  in
  let m, _ = run p in
  Alcotest.(check int32) "init applied" 59l (Machine.reg m (r 2))

(* ------------------------------------------------------------------ *)
(* Control flow                                                       *)
(* ------------------------------------------------------------------ *)

let test_call_return () =
  (* main: jal f; halt.  f: r1 <- 7; jr ra *)
  let p =
    program
      [
        Isa.Jal (Isa.ra, 2);
        Isa.Halt;
        Isa.Li (r 1, 7l);
        Isa.Jr Isa.ra;
      ]
  in
  let m, reason = run p in
  Alcotest.check stop "halted" Machine.Halted reason;
  Alcotest.(check int32) "callee ran" 7l (Machine.reg m (r 1));
  Alcotest.(check int) "cycles" 4 (Machine.cycle m)

let test_bad_jump_traps () =
  let p = program [ Isa.Li (r 1, 999l); Isa.Jr (r 1) ] in
  let _, reason = run p in
  Alcotest.check stop "trap" (Machine.Trapped (Machine.Bad_pc 999)) reason

let test_fallthrough_end_traps () =
  let p = program [ Isa.Nop ] in
  let _, reason = run p in
  Alcotest.check stop "trap" (Machine.Trapped (Machine.Bad_pc 1)) reason

let test_cycle_limit () =
  let p = program [ Isa.Jmp 0 ] in
  let _, reason = run ~limit:100 p in
  Alcotest.check stop "limit" Machine.Cycle_limit reason

let test_branch_conditions () =
  (* For each cond, branch taken iff cond holds on (1, 2). *)
  let taken c a b =
    let p =
      program
        [
          Isa.Li (r 1, a);
          Isa.Li (r 2, b);
          Isa.Beq (r 1, r 2, 5, c);
          Isa.Li (r 3, 0l);
          Isa.Halt;
          Isa.Li (r 3, 1l);
          Isa.Halt;
        ]
    in
    let m, _ = run p in
    Machine.reg m (r 3) = 1l
  in
  Alcotest.(check bool) "eq" true (taken Isa.Eq 5l 5l);
  Alcotest.(check bool) "eq false" false (taken Isa.Eq 5l 6l);
  Alcotest.(check bool) "ne" true (taken Isa.Ne 5l 6l);
  Alcotest.(check bool) "lt signed" true (taken Isa.Lt (-1l) 0l);
  Alcotest.(check bool) "ltu unsigned" false (taken Isa.Ltu (-1l) 0l);
  Alcotest.(check bool) "ge" true (taken Isa.Ge 3l 3l);
  Alcotest.(check bool) "geu" true (taken Isa.Geu (-1l) 0l)

(* ------------------------------------------------------------------ *)
(* Determinism, injection, snapshots                                  *)
(* ------------------------------------------------------------------ *)

let loop_program =
  (* Accumulates into RAM over many cycles. *)
  program ~ram_size:64
    [
      Isa.Li (r 1, 25l);
      Isa.Lw (r 2, r 0, 0l);
      Isa.Alu (Isa.Add, r 2, r 2, r 1);
      Isa.Sw (r 2, r 0, 0l);
      Isa.Alui (Isa.Sub, r 1, r 1, 1l);
      Isa.Beq (r 1, r 0, 1, Isa.Ne);
      Isa.Halt;
    ]

let test_determinism () =
  let snapshot m = (Machine.cycle m, Machine.serial_output m, Machine.pc m) in
  let m1, _ = run loop_program in
  let m2, _ = run loop_program in
  Alcotest.(check bool) "identical" true (snapshot m1 = snapshot m2);
  Alcotest.(check int) "ram equal" (Machine.read_ram_byte m1 0)
    (Machine.read_ram_byte m2 0)

let test_flip_bit () =
  let m = Machine.create loop_program in
  Machine.flip_bit m 3;
  Alcotest.(check int) "bit 3 of byte 0" 8 (Machine.read_ram_byte m 0);
  Machine.flip_bit m 3;
  Alcotest.(check int) "flip back" 0 (Machine.read_ram_byte m 0);
  Alcotest.check_raises "outside ram"
    (Invalid_argument "Machine.flip_bit: offset 100 outside RAM") (fun () ->
      Machine.flip_bit m 800)

let test_run_until () =
  let m = Machine.create loop_program in
  Machine.run_until m ~cycle:10;
  Alcotest.(check int) "paused at cycle" 10 (Machine.cycle m);
  Alcotest.(check bool) "not stopped" true (Machine.stopped m = None);
  ignore (Machine.run m ~limit:10_000);
  Alcotest.(check bool) "finished" true (Machine.stopped m = Some Machine.Halted)

let test_snapshot_equivalence () =
  (* Running straight vs capture/restore mid-way must agree exactly. *)
  let m1 = Machine.create loop_program in
  ignore (Machine.run m1 ~limit:10_000);
  let m2 = Machine.create loop_program in
  Machine.run_until m2 ~cycle:37;
  let snap = Machine.Snapshot.capture m2 in
  let m3 = Machine.Snapshot.restore snap ~tracer:None in
  ignore (Machine.run m3 ~limit:10_000);
  Alcotest.(check int) "cycles equal" (Machine.cycle m1) (Machine.cycle m3);
  Alcotest.(check int) "ram equal" (Machine.read_ram_byte m1 0)
    (Machine.read_ram_byte m3 0)

let test_snapshot_isolation () =
  let m = Machine.create loop_program in
  Machine.run_until m ~cycle:20;
  let snap = Machine.Snapshot.capture m in
  let fork = Machine.Snapshot.restore snap ~tracer:None in
  Machine.flip_bit fork 0;
  Alcotest.(check bool) "original unaffected" true
    (Machine.read_ram_byte m 0 <> Machine.read_ram_byte fork 0
    || Machine.read_ram_byte m 0 land 1 = 0)

let test_tracer_records () =
  let events = ref [] in
  let tracer ~cycle ~addr ~width ~kind =
    events := (cycle, addr, width, kind) :: !events
  in
  let p =
    program
      [
        Isa.Li (r 1, 7l);
        Isa.Sw (r 1, r 0, 4l);
        Isa.Lb (r 2, r 0, 4l);
        Isa.Halt;
      ]
  in
  let m = Machine.create ~tracer p in
  ignore (Machine.run m ~limit:100);
  Alcotest.(check (list (triple int int int)))
    "accesses"
    [ (2, 4, 4); (3, 4, 1) ]
    (List.rev_map (fun (c, a, w, _) -> (c, a, w)) !events)

let suite =
  ( "machine",
    [
      Alcotest.test_case "add overflow wraps" `Quick test_alu_add_overflow;
      Alcotest.test_case "sub" `Quick test_alu_sub;
      Alcotest.test_case "mul wraps" `Quick test_alu_mul;
      Alcotest.test_case "divu" `Quick test_alu_divu;
      Alcotest.test_case "remu" `Quick test_alu_remu;
      Alcotest.test_case "division by zero traps" `Quick test_alu_div_by_zero;
      Alcotest.test_case "logic ops" `Quick test_alu_logic;
      Alcotest.test_case "shifts" `Quick test_alu_shifts;
      Alcotest.test_case "set-less-than" `Quick test_alu_slt;
      Alcotest.test_case "r0 hardwired to zero" `Quick test_r0_hardwired;
      Alcotest.test_case "byte store/load" `Quick test_byte_store_load;
      Alcotest.test_case "word endianness" `Quick test_word_endianness;
      Alcotest.test_case "misaligned word traps" `Quick test_misaligned_word;
      Alcotest.test_case "unmapped access traps" `Quick test_unmapped_access;
      Alcotest.test_case "rom read" `Quick test_rom_read;
      Alcotest.test_case "rom write traps" `Quick test_rom_write_traps;
      Alcotest.test_case "serial output" `Quick test_serial_output;
      Alcotest.test_case "detect port" `Quick test_detect_port;
      Alcotest.test_case "panic port" `Quick test_panic_port;
      Alcotest.test_case "ram/reg init" `Quick test_ram_init_and_reg_init;
      Alcotest.test_case "call/return" `Quick test_call_return;
      Alcotest.test_case "bad jump traps" `Quick test_bad_jump_traps;
      Alcotest.test_case "fallthrough end traps" `Quick test_fallthrough_end_traps;
      Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
      Alcotest.test_case "branch conditions" `Quick test_branch_conditions;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "flip_bit" `Quick test_flip_bit;
      Alcotest.test_case "run_until" `Quick test_run_until;
      Alcotest.test_case "snapshot equivalence" `Quick test_snapshot_equivalence;
      Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
      Alcotest.test_case "tracer records RAM accesses" `Quick test_tracer_records;
    ] )
