test/test_core.ml: Accounting Alcotest Array Astring_contains Compare Float Format Golden Hi Lazy List Metrics Mwtf Outcome Pitfalls Prng Sampler Scan
