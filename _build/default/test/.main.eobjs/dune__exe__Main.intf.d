test/main.mli:
