test/test_isa.ml: Alcotest Array Asm Assembler Encoding Format Int32 Isa List Machine QCheck QCheck_alcotest
