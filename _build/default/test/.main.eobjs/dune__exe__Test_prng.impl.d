test/test_prng.ml: Alcotest Array Float Int64 Printf Prng QCheck QCheck_alcotest
