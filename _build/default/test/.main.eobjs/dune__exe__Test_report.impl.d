test/test_report.ml: Alcotest Astring_contains Barchart Faultmap Figures Filename Golden Hi Lazy List Metrics Scan String Sys Table Unix_mkdir
