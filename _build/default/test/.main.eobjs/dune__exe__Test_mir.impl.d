test/test_mir.ml: Alcotest Astring_contains Builder Check Codegen Event_codes Format Golden Harden Int32 List Machine Mir Option Program QCheck QCheck_alcotest
