test/test_machine.ml: Alcotest Array Bytes Char Int32 Isa List Machine Memmap Option Program
