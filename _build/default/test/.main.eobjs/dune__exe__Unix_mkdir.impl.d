test/unix_mkdir.ml: Sys
