test/test_optimize.ml: Alcotest Builder Codegen Format Golden Int32 List Machine Mir Optimize Option QCheck QCheck_alcotest
