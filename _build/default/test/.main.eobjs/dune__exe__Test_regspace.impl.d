test/test_regspace.ml: Alcotest Array Char Defuse Golden Hi Int32 Isa Lazy List Machine Mbox1 Metrics Outcome Printf Regspace Scan
