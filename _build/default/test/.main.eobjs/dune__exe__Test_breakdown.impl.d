test/test_breakdown.ml: Alcotest Astring_contains Breakdown Builder Codegen Figures Golden Hi List Metrics Program Scan
