test/test_trace.ml: Alcotest Array Defuse Faultspace Hashtbl List Prng QCheck QCheck_alcotest Stdlib Trace
