test/test_stats.ml: Alcotest Array Binomial Confidence Fit_rate Float Gen List Poisson Printf Prng QCheck QCheck_alcotest Special Summary
