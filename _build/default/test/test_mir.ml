(* Tests for the MIR language: checker rules, builder combinators, code
   generation semantics (differentially against OCaml's 32-bit
   arithmetic), and the hardening passes. *)

let compile_and_run ?(limit = 1_000_000) p =
  let image = Codegen.compile p in
  let m = Machine.create image in
  let reason = Machine.run m ~limit in
  (Machine.serial_output m, reason, m)

let output_of p =
  let out, reason, _ = compile_and_run p in
  Alcotest.(check bool)
    (Format.asprintf "halted (got %a)" Machine.pp_stop_reason reason)
    true (reason = Machine.Halted);
  out

(* ------------------------------------------------------------------ *)
(* Checker                                                            *)
(* ------------------------------------------------------------------ *)

let expect_invalid build =
  match build () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected checker rejection"

let test_check_no_main () =
  expect_invalid (fun () ->
      Builder.prog ~name:"t" [] [ Builder.func "not_main" [ Builder.ret_unit ] ])

let test_check_main_params () =
  expect_invalid (fun () ->
      Builder.prog ~name:"t" []
        [ Builder.func "main" ~params:[ "x" ] [ Builder.ret_unit ] ])

let test_check_unknown_global () =
  expect_invalid (fun () ->
      Builder.prog ~name:"t" []
        [ Builder.func "main" [ Builder.setg "nope" (Builder.i 1) ] ])

let test_check_unknown_local () =
  expect_invalid (fun () ->
      Builder.prog ~name:"t" []
        [ Builder.func "main" [ Builder.set "nope" (Builder.i 1) ] ])

let test_check_arity () =
  expect_invalid (fun () ->
      Builder.prog ~name:"t" []
        [
          Builder.func "f" ~params:[ "a"; "b" ] [ Builder.ret_unit ];
          Builder.func "main" [ Builder.call_ "f" [ Builder.i 1 ] ];
        ])

let test_check_call_not_at_root () =
  expect_invalid (fun () ->
      let open Builder in
      prog ~name:"t" []
        [
          func "f" [ ret (i 1) ];
          func "main" ~locals:[ "x" ]
            [ set "x" (call "f" [] +: i 1); ret_unit ];
        ])

let test_check_too_many_params () =
  expect_invalid (fun () ->
      Builder.prog ~name:"t" []
        [
          Builder.func "f" ~params:[ "a"; "b"; "c"; "d"; "e" ] [ Builder.ret_unit ];
          Builder.func "main" [ Builder.ret_unit ];
        ])

let test_check_duplicate_local () =
  expect_invalid (fun () ->
      Builder.prog ~name:"t" []
        [ Builder.func "main" ~locals:[ "x"; "x" ] [ Builder.ret_unit ] ])

let test_check_type_misuse () =
  expect_invalid (fun () ->
      let open Builder in
      prog ~name:"t" [ array "a" 4 ] [ func "main" [ setg "a" (i 1) ] ]);
  expect_invalid (fun () ->
      let open Builder in
      prog ~name:"t" [ global "s" ] [ func "main" [ set_elem "s" (i 0) (i 1) ] ])

let test_check_register_budget () =
  (* A right-nested expression requiring more than 9 registers. *)
  let open Builder in
  let rec deep n = if n = 0 then i 1 else Mir.Bin (Mir.Add, i 1, deep (n - 1)) in
  expect_invalid (fun () ->
      prog ~name:"t" [ global "x" ]
        [ func "main" [ setg "x" (deep 12); ret_unit ] ])

let test_check_protect_rules () =
  expect_invalid (fun () ->
      let open Builder in
      prog ~name:"t" [ global "x" ]
        [ func "main" ~protects:[ "x" ] [ ret_unit ] ])
  (* protecting an unprotected global is an error *)

let test_register_need () =
  let open Builder in
  Alcotest.(check int) "leaf" 1 (Check.register_need (i 5));
  Alcotest.(check int) "left chain" 2
    (Check.register_need (i 1 +: i 2 +: i 3 +: i 4));
  Alcotest.(check int) "right nest" 3
    (Check.register_need (Mir.Bin (Mir.Add, i 1, Mir.Bin (Mir.Add, i 2, i 3))))

(* ------------------------------------------------------------------ *)
(* Codegen semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_arith_program () =
  let open Builder in
  let p =
    prog ~name:"arith" [ global "x" ]
      ([
         func "main" ~locals:[ "a" ]
           ([
              set "a" (i 6 *: i 7);
              setg "x" (l "a" -: i 2);
              call_ out_dec [ g "x" ];
              ret_unit;
            ]);
       ]
      @ stdlib)
  in
  Alcotest.(check string) "42-2" "40" (output_of p)

let test_if_else () =
  let open Builder in
  let p =
    prog ~name:"ifelse" []
      [
        func "main" ~locals:[ "x" ]
          ([ set "x" (i 5) ]
          @ if_else (l "x" >: i 3) [ out_str "big" ] [ out_str "small" ]
          @ [ ret_unit ]);
      ]
  in
  Alcotest.(check string) "then branch" "big" (output_of p)

let test_while_loop () =
  let open Builder in
  let p =
    prog ~name:"loop" []
      ([
         func "main" ~locals:[ "n"; "acc" ]
           [
             set "n" (i 5);
             set "acc" (i 0);
             while_ (l "n" >: i 0)
               [ set "acc" (l "acc" +: l "n"); set "n" (l "n" -: i 1) ];
             call_ out_dec [ l "acc" ];
             ret_unit;
           ];
       ]
      @ stdlib)
  in
  Alcotest.(check string) "sum 1..5" "15" (output_of p)

let test_function_calls () =
  let open Builder in
  let p =
    prog ~name:"calls" []
      ([
         func "add3" ~params:[ "a"; "b"; "c" ] [ ret (l "a" +: l "b" +: l "c") ];
         func "twice" ~params:[ "x" ] ~locals:[ "t" ]
           [ set "t" (call "add3" [ l "x"; l "x"; i 0 ]); ret (l "t") ];
         func "main" ~locals:[ "r" ]
           [
             set "r" (call "twice" [ i 21 ]);
             call_ out_dec [ l "r" ];
             ret_unit;
           ];
       ]
      @ stdlib)
  in
  Alcotest.(check string) "nested calls" "42" (output_of p)

let test_recursion () =
  let open Builder in
  let p =
    prog ~name:"fact" ~stack:512 []
      ([
         func "fact" ~params:[ "n" ] ~locals:[ "r" ]
           (if_else (l "n" <=: i 1) [ ret (i 1) ]
              [
                set "r" (call "fact" [ l "n" -: i 1 ]);
                ret (l "n" *: l "r");
              ]);
         func "main" ~locals:[ "r" ]
           [
             set "r" (call "fact" [ i 6 ]);
             call_ out_dec [ l "r" ];
             ret_unit;
           ];
       ]
      @ stdlib)
  in
  Alcotest.(check string) "6!" "720" (output_of p)

let test_arrays_and_bytes () =
  let open Builder in
  let p =
    prog ~name:"arr" [ array "w" 4 ~init:[ 10; 20; 30 ]; bytes_ "b" 4 ~init:"AB" ]
      ([
         func "main" ~locals:[ "s" ]
           [
             set_elem "w" (i 3) (elem "w" (i 0) +: elem "w" (i 1));
             set "s" (elem "w" (i 3) +: elem "w" (i 2));
             call_ out_dec [ l "s" ];
             set_byte "b" (i 2) (byte "b" (i 0) +: i 2);
             out (byte "b" (i 2));
             out (byte "b" (i 1));
             ret_unit;
           ];
       ]
      @ stdlib)
  in
  Alcotest.(check string) "array ops" "60CB" (output_of p)

let test_out_dec_values () =
  let open Builder in
  let p =
    prog ~name:"dec" []
      ([
         func "main"
           [
             call_ out_dec [ i 0 ];
             out (i 32);
             call_ out_dec [ i 7 ];
             out (i 32);
             call_ out_dec [ i 1000000 ];
             ret_unit;
           ];
       ]
      @ stdlib)
  in
  Alcotest.(check string) "decimal printing" "0 7 1000000" (output_of p)

let test_out_dec4 () =
  let open Builder in
  let p =
    prog ~name:"dec4" []
      [
        func "main"
          (out_dec4 (i 42) @ out_dec4 (i 9999) @ out_dec4 (i 0) @ [ ret_unit ]);
      ]
  in
  Alcotest.(check string) "fixed four digits" "004299990000" (output_of p)

let test_large_constants () =
  let open Builder in
  let p =
    prog ~name:"bigconst" [ global "x" ]
      ([
         func "main"
           [
             setg "x" (i32 0x7FFFFFFFl);
             call_ out_dec [ g "x" ];
             ret_unit;
           ];
       ]
      @ stdlib)
  in
  Alcotest.(check string) "int32 max" "2147483647" (output_of p)

(* Differential test: MIR binary/compare ops match OCaml 32-bit
   semantics for random unsigned operands. *)
let reference_binop op a b =
  let open Int32 in
  let mask_shift b = to_int (logand b 31l) in
  match (op : Mir.binop) with
  | Mir.Add -> add a b
  | Mir.Sub -> sub a b
  | Mir.Mul -> mul a b
  | Mir.Divu -> unsigned_div a b
  | Mir.Remu -> unsigned_rem a b
  | Mir.And -> logand a b
  | Mir.Or -> logor a b
  | Mir.Xor -> logxor a b
  | Mir.Shl -> shift_left a (mask_shift b)
  | Mir.Shr -> shift_right_logical a (mask_shift b)

let reference_cmp op a b =
  let unsigned_lt a b = Int32.unsigned_compare a b < 0 in
  let holds =
    match (op : Mir.cmpop) with
    | Mir.Eq -> Int32.equal a b
    | Mir.Ne -> not (Int32.equal a b)
    | Mir.Lt -> Int32.compare a b < 0
    | Mir.Ge -> Int32.compare a b >= 0
    | Mir.Ltu -> unsigned_lt a b
    | Mir.Geu -> not (unsigned_lt a b)
  in
  if holds then 1l else 0l

let run_expr expr =
  let open Builder in
  let p =
    prog ~name:"expr" [ global "x" ]
      [ func "main" [ setg "x" expr; ret_unit ] ]
  in
  let image = Codegen.compile p in
  let m = Machine.create image in
  (match Machine.run m ~limit:100_000 with
  | Machine.Halted -> ()
  | reason ->
      Alcotest.failf "expr program stopped: %a" Machine.pp_stop_reason reason);
  let addr =
    match Program.find_data_symbol image "x" with
    | Some a -> a
    | None -> Alcotest.fail "no symbol x"
  in
  let b i = Int32.of_int (Machine.read_ram_byte m (addr + i)) in
  Int32.logor
    (Int32.logor (b 0) (Int32.shift_left (b 1) 8))
    (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24))

let gen_op =
  QCheck.Gen.oneofl
    [ Mir.Add; Mir.Sub; Mir.Mul; Mir.Divu; Mir.Remu; Mir.And; Mir.Or;
      Mir.Xor; Mir.Shl; Mir.Shr ]

let gen_cmp =
  QCheck.Gen.oneofl [ Mir.Eq; Mir.Ne; Mir.Lt; Mir.Ge; Mir.Ltu; Mir.Geu ]

let qcheck_binop_semantics =
  QCheck.Test.make ~name:"compiled binops match Int32 semantics" ~count:150
    (QCheck.make
       QCheck.Gen.(triple gen_op (map Int32.of_int int) (map Int32.of_int int)))
    (fun (op, a, b) ->
      QCheck.assume
        (not ((op = Mir.Divu || op = Mir.Remu) && Int32.equal b 0l));
      let got = run_expr (Mir.Bin (op, Mir.Int a, Mir.Int b)) in
      Int32.equal got (reference_binop op a b))

let qcheck_cmp_semantics =
  QCheck.Test.make ~name:"compiled comparisons match Int32 semantics"
    ~count:150
    (QCheck.make
       QCheck.Gen.(triple gen_cmp (map Int32.of_int int) (map Int32.of_int int)))
    (fun (op, a, b) ->
      let got = run_expr (Mir.Cmp (op, Mir.Int a, Mir.Int b)) in
      Int32.equal got (reference_cmp op a b))

let test_div_by_zero_traps () =
  let open Builder in
  let p =
    prog ~name:"div0" [ global "x" ]
      [ func "main" [ setg "x" (i 1 /: i 0); ret_unit ] ]
  in
  let _, reason, _ = compile_and_run p in
  Alcotest.(check bool) "trap" true
    (reason = Machine.Trapped Machine.Division_by_zero)

(* ------------------------------------------------------------------ *)
(* Hardening passes                                                   *)
(* ------------------------------------------------------------------ *)

let protected_prog () =
  let open Builder in
  prog ~name:"prot"
    [ array ~protected:true "data" 4 ~init:[ 11; 22; 33; 44 ]; global "sum" ]
    ([
       func "reader" ~locals:[ "k"; "s" ] ~protects:[ "data" ]
         ([ set "s" (i 0) ]
         @ for_ "k" ~from:(i 0) ~below:(i 4)
             [ set "s" (l "s" +: elem "data" (l "k")) ]
         @ [ ret (l "s") ]);
       func "main" ~locals:[ "r" ]
         [
           set "r" (call "reader" []);
           call_ out_dec [ l "r" ];
           ret_unit;
         ];
     ]
    @ stdlib)

let test_harden_preserves_behaviour () =
  let base = protected_prog () in
  let out_base = output_of base in
  Alcotest.(check string) "baseline output" "110" out_base;
  Alcotest.(check string) "sum+dmr same output" out_base
    (output_of (Harden.sum_dmr base));
  Alcotest.(check string) "tmr same output" out_base
    (output_of (Harden.tmr base))

let test_harden_names () =
  let p = Harden.sum_dmr (protected_prog ()) in
  Alcotest.(check string) "suffix" "prot+sumdmr" p.Mir.p_name;
  Alcotest.(check bool) "replica exists" true
    (Mir.find_global p "__data_r" <> None);
  Alcotest.(check bool) "checksums exist" true
    (Mir.find_global p "__data_s" <> None && Mir.find_global p "__data_rs" <> None);
  Alcotest.(check bool) "check function" true
    (Mir.find_func p "__check_data" <> None)

let flip_protected_and_run pass =
  (* Flip a bit of the protected array mid-run (while it is idle) and
     check the mechanism repairs it: output correct + corrected event. *)
  let image = Codegen.compile (pass (protected_prog ())) in
  let addr =
    match Program.find_data_symbol image "data" with
    | Some a -> a
    | None -> Alcotest.fail "no data symbol"
  in
  let m = Machine.create image in
  Machine.run_until m ~cycle:4;
  (* before the reader runs *)
  Machine.flip_bit m ((addr * 8) + 5);
  let reason = Machine.run m ~limit:100_000 in
  (Machine.serial_output m, reason, Machine.detection_events m)

let test_sum_dmr_corrects () =
  let output, reason, events = flip_protected_and_run Harden.sum_dmr in
  Alcotest.(check bool) "halted" true (reason = Machine.Halted);
  Alcotest.(check string) "output correct" "110" output;
  Alcotest.(check bool) "corrected event" true
    (List.exists (fun (_, code) -> Int32.equal code Event_codes.corrected) events)

let test_tmr_corrects () =
  let output, reason, events = flip_protected_and_run Harden.tmr in
  Alcotest.(check bool) "halted" true (reason = Machine.Halted);
  Alcotest.(check string) "output correct" "110" output;
  Alcotest.(check bool) "corrected event" true
    (List.exists (fun (_, code) -> Int32.equal code Event_codes.corrected) events)

let test_baseline_does_not_correct () =
  let image = Codegen.compile (protected_prog ()) in
  let addr = Option.get (Program.find_data_symbol image "data") in
  let m = Machine.create image in
  Machine.run_until m ~cycle:4;
  Machine.flip_bit m ((addr * 8) + 5);
  let reason = Machine.run m ~limit:100_000 in
  Alcotest.(check bool) "halted" true (reason = Machine.Halted);
  Alcotest.(check bool) "output corrupted" true
    (Machine.serial_output m <> "110")

let test_sum_dmr_fail_stop_on_double_fault () =
  (* Corrupt primary AND replica: SUM+DMR must detect and fail-stop
     rather than silently continue. *)
  let image = Codegen.compile (Harden.sum_dmr (protected_prog ())) in
  let data = Option.get (Program.find_data_symbol image "data") in
  let replica = Option.get (Program.find_data_symbol image "__data_r") in
  let m = Machine.create image in
  Machine.run_until m ~cycle:4;
  Machine.flip_bit m ((data * 8) + 1);
  Machine.flip_bit m ((replica * 8) + 2);
  let reason = Machine.run m ~limit:100_000 in
  (match reason with
  | Machine.Panicked _ -> ()
  | other ->
      Alcotest.failf "expected fail-stop, got %a" Machine.pp_stop_reason other);
  Alcotest.(check bool) "detected event" true
    (List.exists
       (fun (_, code) -> Int32.equal code Event_codes.detected)
       (Machine.detection_events m))

let test_harden_grows_fault_space () =
  let base = Codegen.compile (protected_prog ()) in
  let hard = Codegen.compile (Harden.sum_dmr (protected_prog ())) in
  Alcotest.(check bool) "more RAM" true
    (hard.Program.ram_size > base.Program.ram_size);
  let gb = Golden.run base and gh = Golden.run hard in
  Alcotest.(check bool) "longer runtime" true (gh.Golden.cycles > gb.Golden.cycles)

let test_harden_no_protected_globals () =
  let open Builder in
  let p = prog ~name:"plain" [] [ func "main" [ ret_unit ] ] in
  let h = Harden.sum_dmr p in
  Alcotest.(check string) "renamed only" "plain+sumdmr" h.Mir.p_name;
  Alcotest.(check int) "no new globals" 0 (List.length h.Mir.p_globals)

(* ------------------------------------------------------------------ *)
(* Pretty-printing smoke                                              *)
(* ------------------------------------------------------------------ *)

let test_pp_prog () =
  let text = Format.asprintf "%a" Mir.pp_prog (protected_prog ()) in
  Alcotest.(check bool) "mentions globals" true
    (Astring_contains.contains text "protected data");
  Alcotest.(check bool) "mentions main" true
    (Astring_contains.contains text "fn main")

let suite =
  ( "mir",
    [
      Alcotest.test_case "check: no main" `Quick test_check_no_main;
      Alcotest.test_case "check: main params" `Quick test_check_main_params;
      Alcotest.test_case "check: unknown global" `Quick test_check_unknown_global;
      Alcotest.test_case "check: unknown local" `Quick test_check_unknown_local;
      Alcotest.test_case "check: arity" `Quick test_check_arity;
      Alcotest.test_case "check: call position" `Quick test_check_call_not_at_root;
      Alcotest.test_case "check: too many params" `Quick test_check_too_many_params;
      Alcotest.test_case "check: duplicate local" `Quick test_check_duplicate_local;
      Alcotest.test_case "check: type misuse" `Quick test_check_type_misuse;
      Alcotest.test_case "check: register budget" `Quick test_check_register_budget;
      Alcotest.test_case "check: protect rules" `Quick test_check_protect_rules;
      Alcotest.test_case "register need" `Quick test_register_need;
      Alcotest.test_case "arithmetic program" `Quick test_arith_program;
      Alcotest.test_case "if/else" `Quick test_if_else;
      Alcotest.test_case "while loop" `Quick test_while_loop;
      Alcotest.test_case "function calls" `Quick test_function_calls;
      Alcotest.test_case "recursion" `Quick test_recursion;
      Alcotest.test_case "arrays and bytes" `Quick test_arrays_and_bytes;
      Alcotest.test_case "decimal printing" `Quick test_out_dec_values;
      Alcotest.test_case "out_dec4" `Quick test_out_dec4;
      Alcotest.test_case "large constants" `Quick test_large_constants;
      QCheck_alcotest.to_alcotest qcheck_binop_semantics;
      QCheck_alcotest.to_alcotest qcheck_cmp_semantics;
      Alcotest.test_case "division by zero traps" `Quick test_div_by_zero_traps;
      Alcotest.test_case "hardening preserves behaviour" `Quick
        test_harden_preserves_behaviour;
      Alcotest.test_case "hardening names" `Quick test_harden_names;
      Alcotest.test_case "sum+dmr corrects single flip" `Quick test_sum_dmr_corrects;
      Alcotest.test_case "tmr corrects single flip" `Quick test_tmr_corrects;
      Alcotest.test_case "baseline does not correct" `Quick
        test_baseline_does_not_correct;
      Alcotest.test_case "sum+dmr fail-stops on double fault" `Quick
        test_sum_dmr_fail_stop_on_double_fault;
      Alcotest.test_case "hardening grows fault space" `Quick
        test_harden_grows_fault_space;
      Alcotest.test_case "hardening without protected globals" `Quick
        test_harden_no_protected_globals;
      Alcotest.test_case "pp smoke" `Quick test_pp_prog;
    ] )
