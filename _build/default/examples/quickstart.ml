(* Quickstart: assemble a small program, run it, and measure its
   susceptibility to soft errors with a full pruned FI campaign.

     dune exec examples/quickstart.exe *)

let source =
  {|
  ; Sum the numbers 1..10 held in RAM, then print the total.
  .ram 96
  .data
  numbers: .word 1 2 3 4 5 6 7 8 9 10
  total:   .word 0
  .text
  main:
      li   r1, 10        ; counter
      li   r2, numbers   ; cursor
  loop:
      lw   r3, 0(r2)
      lw   r4, total
      add  r4, r4, r3
      sw   r4, total
      addi r2, r2, 4
      subi r1, r1, 1
      bne  r1, r0, loop
      ; print the total (two digits) and a newline
      lw   r4, total
      divui r5, r4, 10
      addi r5, r5, 48
      li   r6, 0x300000  ; serial port
      sb   r5, 0(r6)
      remui r5, r4, 10
      addi r5, r5, 48
      sb   r5, 0(r6)
      li   r5, 10
      sb   r5, 0(r6)
      halt
  |}

let () =
  (* 1. Assemble. *)
  let image = Assembler.assemble_exn ~name:"quickstart" source in

  (* 2. Run it normally and observe the serial output. *)
  let machine = Machine.create image in
  let stop = Machine.run machine ~limit:100_000 in
  Format.printf "run: %a, output %S after %d cycles@." Machine.pp_stop_reason
    stop
    (Machine.serial_output machine)
    (Machine.cycle machine);

  (* 3. Golden run: traces every RAM access and partitions the fault
     space into def/use equivalence classes. *)
  let golden = Golden.run image in
  Format.printf "%a@." Golden.pp_summary golden;

  (* 4. Full pruned campaign: one injection per class and bit. *)
  let scan = Scan.pruned golden in

  (* 5. Metrics — weighted (correct) and unweighted (Pitfall 1). *)
  Format.printf "fault coverage (weighted)   : %.2f%%@."
    (100.0 *. Metrics.coverage scan);
  Format.printf "fault coverage (unweighted) : %.2f%%   <- Pitfall 1@."
    (100.0 *. Metrics.coverage ~policy:Accounting.pitfall1 scan);
  Format.printf "absolute failures (weighted): %d bit-cycles@."
    (Metrics.failure_count scan);
  Format.printf "P(Failure) per run          : %.3e@."
    (Metrics.failure_probability scan);
  Format.printf "outcomes:@.";
  List.iter
    (fun (o, n) -> Format.printf "  %-18s %8d@." (Outcome.to_string o) n)
    (Metrics.outcome_histogram scan)
