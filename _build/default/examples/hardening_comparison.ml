(* Build your own protected application in MIR, harden it with SUM+DMR
   and TMR, and compare the variants with both the (unsound) coverage
   metric and the paper's objective metric.

     dune exec examples/hardening_comparison.exe

   The application: a tiny sensor-fusion loop.  A calibration table
   (critical, long-lived) converts raw readings; readings are folded into
   a protected running state; the final state is printed. *)

let sensor_app () =
  let open Builder in
  prog ~name:"sensor" ~stack:160
    [
      (* Critical data: marked protected, so hardening passes guard it. *)
      array ~protected:true "calib" 12
        ~init:[ 3; 5; 7; 9; 11; 13; 15; 17; 19; 21; 23; 25 ];
      array ~protected:true "state" 2 ~init:[ 0; 1 ];
      (* Scratch data: unprotected by design. *)
      array "raw" 8 ~init:[ 14; 3; 9; 27; 5; 21; 8; 16 ];
    ]
    ([
       (* All access to the critical objects goes through this function,
          which declares them in [protects] — the hardening passes weave
          a check at entry and a replica update at exit. *)
       func "absorb" ~params:[ "value" ] ~locals:[ "corrected" ]
         ~protects:[ "calib"; "state" ]
         [
           set "corrected"
             (l "value" *: elem "calib" (l "value" %: i 12) &: i 0xFFFF);
           set_elem "state" (i 0) (elem "state" (i 0) +: l "corrected");
           set_elem "state" (i 1)
             ((elem "state" (i 1) *: i 31) +: l "corrected" &: i 0xFFFF);
           ret_unit;
         ];
       func "main" ~locals:[ "k" ]
         (for_ "k" ~from:(i 0) ~below:(i 8)
            [ call_ "absorb" [ elem "raw" (l "k") ] ]
         @ [
             out_str "state ";
             call_ out_dec [ elem "state" (i 0) ];
             out (i 32);
             call_ out_dec [ elem "state" (i 1) ];
             out_str "\n";
             ret_unit;
           ]);
     ]
    @ stdlib)

let campaign name mir_prog =
  let image = Codegen.compile mir_prog in
  let golden = Golden.run image in
  Format.printf "%-14s %a@." name Golden.pp_summary golden;
  Scan.pruned ~variant:name golden

let () =
  let base_prog = sensor_app () in
  Format.printf "-- the application --@.%a@." Mir.pp_prog base_prog;

  let baseline = campaign "baseline" base_prog in
  let sum_dmr = campaign "sum+dmr" (Harden.sum_dmr base_prog) in
  let tmr = campaign "tmr" (Harden.tmr base_prog) in

  Format.printf "@.-- metrics --@.";
  print_string
    (Figures.ablation
       [ ("baseline", baseline); ("sum+dmr", sum_dmr); ("tmr", tmr) ]);

  Format.printf "@.-- verdicts --@.";
  List.iter
    (fun (name, hardened) ->
      let p = Pitfalls.analyze_pitfall3 ~baseline ~hardened in
      Format.printf "%-8s %a@." name Pitfalls.pp_pitfall3 p)
    [ ("sum+dmr", sum_dmr); ("tmr", tmr) ];

  Format.printf
    "@.Note how coverage always \"improves\" (the hardened fault space is@.\
     diluted by runtime and replica memory), while the absolute failure@.\
     count may go either way — that is exactly Pitfall 3.@."
