(* The "dilution delusion" of Section IV, step by step: an obviously
   useless program transformation (prepending NOPs) inflates the
   fault-coverage metric while the program's actual susceptibility —
   its absolute failure count — is unchanged.

     dune exec examples/dilution_delusion.exe *)

let campaign name image =
  let golden = Golden.run image in
  let scan = Scan.pruned ~variant:name golden in
  (name, golden, scan)

let () =
  let variants =
    [
      campaign "baseline" (Hi.program ());
      (* "Dilution Fault Tolerance": 4 NOPs prepended. *)
      campaign "DFT" (Hi.dft ());
      (* DFT': dilution loads, so the added coordinates count even under
         the count-only-activated-faults repair. *)
      campaign "DFT'" (Hi.dft' ());
      (* The space-dimension variant: 2 unused RAM bytes. *)
      campaign "DFT-mem" (Hi.dft_memory ());
    ]
  in

  Format.printf "The Hi program and its \"hardened\" dilution variants:@.@.";
  List.iter
    (fun (name, golden, scan) ->
      Format.printf
        "%-9s dt=%2d cycles, dm=%d bytes, w=%3d | coverage %.1f%% | F = %d | \
         output %S@."
        name scan.Scan.cycles scan.Scan.ram_bytes
        (Scan.fault_space_size scan)
        (100.0 *. Metrics.coverage scan)
        (Metrics.failure_count scan)
        golden.Golden.output)
    variants;

  (* The fault-space maps make the trick visible: the failing region is
     identical, only benign space is added around it. *)
  List.iter
    (fun (name, golden, scan) ->
      Format.printf "@.%s:@.%s" name (Faultmap.outcome_map golden scan))
    variants;
  Format.printf "@.%s@." Faultmap.legend;

  (* The verdicts: coverage is fooled, absolute failure counts are not. *)
  let _, _, base = List.hd variants in
  List.iter
    (fun (name, _, hardened) ->
      if hardened != base then begin
        let p = Pitfalls.analyze_pitfall3 ~baseline:base ~hardened in
        Format.printf "baseline vs %-8s %a@." name Pitfalls.pp_pitfall3 p
      end)
    variants;

  Format.printf
    "@.Conclusion (Section IV): with fault spaces of different sizes the@.\
     coverage percentages are not relative to a common base; only the@.\
     extrapolated absolute failure count is a valid comparison metric.@."
