(* Sampling-based campaigns done right and wrong (Pitfalls 2 and 3):

   - the correct procedure samples coordinates uniformly from the raw
     fault space and extrapolates failure counts to the population size;
   - sampling def/use classes uniformly (ignoring their weights) biases
     the estimate — Pitfall 2;
   - comparing raw sampled counts across programs with different
     fault-space sizes inverts verdicts — Pitfall 3, corollary 2.

     dune exec examples/sampling_pitfalls.exe *)

let () =
  let image = Mbox1.baseline () in
  let golden = Golden.run image in
  Format.printf "%a@.@." Golden.pp_summary golden;

  (* Ground truth from the full pruned scan. *)
  let scan = Scan.pruned golden in
  let truth_fraction =
    float_of_int (Metrics.failure_count scan)
    /. float_of_int (Scan.fault_space_size scan)
  in
  Format.printf "ground truth: F = %d of w = %d (%.5f)@.@."
    (Metrics.failure_count scan)
    (Scan.fault_space_size scan)
    truth_fraction;

  (* Correct and biased estimators at increasing sample sizes. *)
  Format.printf "%8s  %22s  %22s@." "N" "uniform raw (correct)"
    "per-class (pitfall 2)";
  List.iter
    (fun n ->
      let rng1 = Prng.create ~seed:1L in
      let rng2 = Prng.create ~seed:2L in
      let correct = Sampler.uniform_raw rng1 ~samples:n golden in
      let biased = Sampler.biased_per_class rng2 ~samples:n golden in
      let ci est =
        Confidence.wilson ~fails:est.Sampler.failures
          ~trials:est.Sampler.samples ~confidence:0.95
      in
      Format.printf "%8d  %10.5f %a  %10.5f %a@." n
        (Sampler.failure_fraction correct)
        Confidence.pp_interval (ci correct)
        (Sampler.failure_fraction biased)
        Confidence.pp_interval (ci biased))
    [ 500; 2000; 8000 ];

  (* How many samples for a +-1% estimate at 95% confidence? *)
  Format.printf "@.samples for a +-1%% interval at 95%%: %d@."
    (Confidence.sample_size ~half_width:0.01 ~confidence:0.95
       ~worst_case_p:truth_fraction);

  (* Corollary 2: raw counts vs extrapolation across two variants. *)
  let hardened = Mbox1.sum_dmr () in
  let golden_h = Golden.run hardened in
  let scan_h = Scan.pruned golden_h in
  let rng = Prng.create ~seed:3L in
  let est_b = Sampler.uniform_raw rng ~samples:4000 golden in
  let est_h = Sampler.uniform_raw rng ~samples:4000 golden_h in
  Format.printf "@.with N = 4000 samples each:@.";
  Format.printf "  baseline: F_sampled = %4d -> F_extrapolated = %10.0f (true %d)@."
    est_b.Sampler.failures
    (Metrics.extrapolated_failures est_b)
    (Metrics.failure_count scan);
  Format.printf "  hardened: F_sampled = %4d -> F_extrapolated = %10.0f (true %d)@."
    est_h.Sampler.failures
    (Metrics.extrapolated_failures est_h)
    (Metrics.failure_count scan_h);
  Format.printf "  raw-count ratio %.2f vs extrapolated ratio %.2f@."
    (float_of_int est_h.Sampler.failures /. float_of_int est_b.Sampler.failures)
    (Compare.ratio_sampled ~baseline:est_b ~hardened:est_h);
  Format.printf
    "@.The raw sampled counts are incomparable across variants — only the@.\
     extrapolated counts order the variants correctly (Section V-C).@."
