examples/sampling_pitfalls.ml: Compare Confidence Format Golden List Mbox1 Metrics Prng Sampler Scan
