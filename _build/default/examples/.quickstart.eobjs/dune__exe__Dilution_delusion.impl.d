examples/dilution_delusion.ml: Faultmap Format Golden Hi List Metrics Pitfalls Scan
