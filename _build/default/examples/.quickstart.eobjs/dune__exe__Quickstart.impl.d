examples/quickstart.ml: Accounting Assembler Format Golden List Machine Metrics Outcome Scan
