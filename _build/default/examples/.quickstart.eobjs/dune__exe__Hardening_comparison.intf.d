examples/hardening_comparison.mli:
