examples/dilution_delusion.mli:
