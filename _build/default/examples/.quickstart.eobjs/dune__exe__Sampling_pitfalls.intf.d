examples/sampling_pitfalls.mli:
