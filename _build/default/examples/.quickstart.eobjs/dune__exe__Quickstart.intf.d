examples/quickstart.mli:
