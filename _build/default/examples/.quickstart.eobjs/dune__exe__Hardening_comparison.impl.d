examples/hardening_comparison.ml: Builder Codegen Figures Format Golden Harden List Mir Pitfalls Scan
