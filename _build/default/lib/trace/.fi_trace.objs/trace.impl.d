lib/trace/trace.ml: Array Format
