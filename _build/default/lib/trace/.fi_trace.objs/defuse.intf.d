lib/trace/defuse.mli: Format Trace
