lib/trace/faultspace.mli: Defuse Format Prng
