lib/trace/faultspace.ml: Defuse Format Prng
