lib/trace/defuse.ml: Array Format List Trace
