type class_kind = Experiment | Overwritten | Dormant

let pp_class_kind ppf = function
  | Experiment -> Format.pp_print_string ppf "experiment"
  | Overwritten -> Format.pp_print_string ppf "overwritten"
  | Dormant -> Format.pp_print_string ppf "dormant"

type byte_class = {
  byte : int;
  t_start : int;
  t_end : int;
  kind : class_kind;
}

let weight c = c.t_end - c.t_start + 1

type t = {
  ram : int;
  cycles : int;
  all : byte_class array;
  (* Per byte: offset into [all] of this byte's first class, classes of one
     byte being contiguous and sorted by t_start.  Length ram+1 (fencepost). *)
  byte_offset : int array;
}

let ram_size t = t.ram
let total_cycles t = t.cycles
let fault_space_size t = t.cycles * t.ram * 8
let classes t = t.all

let analyze trace =
  let ram = Trace.ram_size trace in
  let cycles = Trace.total_cycles trace in
  (* Gather per-byte access lists (cycle, kind), in execution order. *)
  let accesses : (int * Trace.kind) list array = Array.make ram [] in
  Trace.iter_byte_accesses trace (fun ~byte ~cycle ~kind ->
      accesses.(byte) <- (cycle, kind) :: accesses.(byte));
  let out = ref [] in
  let out_count = ref 0 in
  let byte_offset = Array.make (ram + 1) 0 in
  for byte = 0 to ram - 1 do
    byte_offset.(byte) <- !out_count;
    let acc = List.rev accesses.(byte) in
    (* Walk intervals.  prev = cycle of previous access (0 = initial
       contents, defined at reset). *)
    let emit c =
      out := c :: !out;
      incr out_count
    in
    let rec walk prev = function
      | [] ->
          if prev < cycles then
            emit { byte; t_start = prev + 1; t_end = cycles; kind = Dormant }
      | (cycle, kind) :: rest ->
          (* Two accesses in the same cycle to the same byte cannot occur
             (one instruction makes at most one access per byte), but the
             initial def and a cycle-0 access could never collide since
             cycles start at 1. *)
          if cycle > prev then begin
            let k =
              match (kind : Trace.kind) with
              | Read -> Experiment
              | Write -> Overwritten
            in
            emit { byte; t_start = prev + 1; t_end = cycle; kind = k }
          end;
          walk cycle rest
    in
    walk 0 acc
  done;
  byte_offset.(ram) <- !out_count;
  let all = Array.of_list (List.rev !out) in
  { ram; cycles; all; byte_offset }

let experiment_classes t =
  Array.of_list
    (Array.fold_right
       (fun c acc -> if c.kind = Experiment then c :: acc else acc)
       t.all [])

let experiment_count t =
  8 * Array.fold_left (fun n c -> if c.kind = Experiment then n + 1 else n) 0 t.all

let known_benign_weight t =
  8
  * Array.fold_left
      (fun n c -> if c.kind = Experiment then n else n + weight c)
      0 t.all

let find t ~cycle ~byte =
  if byte < 0 || byte >= t.ram then invalid_arg "Defuse.find: byte outside RAM";
  if cycle < 1 || cycle > t.cycles then
    invalid_arg "Defuse.find: cycle outside run";
  let lo = t.byte_offset.(byte) and hi = t.byte_offset.(byte + 1) in
  (* Binary search for the class with t_start <= cycle <= t_end. *)
  let rec search lo hi =
    if lo >= hi then invalid_arg "Defuse.find: coordinate not covered"
    else
      let mid = (lo + hi) / 2 in
      let c = t.all.(mid) in
      if cycle < c.t_start then search lo mid
      else if cycle > c.t_end then search (mid + 1) hi
      else c
  in
  search lo hi

let pruning_factor t =
  let experiments = experiment_count t in
  if experiments = 0 then infinity
  else float_of_int (fault_space_size t) /. float_of_int experiments
