(** Def/use fault-space pruning (Section III-C of the paper).

    The fault space of a run is the grid [cycles × memory bits].  All
    coordinates of one bit between two consecutive accesses are
    *equivalent*: a fault there is first activated (if ever) by the next
    read.  This module partitions the complete fault space of a sealed
    trace into equivalence classes:

    - a class whose interval ends in a {e read} requires one FI
      experiment, canonically injected at the read's cycle;
    - a class whose interval ends in a {e write} is a-priori benign (the
      fault is overwritten before activation);
    - the class after a bit's last access, and all classes of bits that
      are never accessed, are a-priori benign (dormant faults).

    The partition is exact: every coordinate belongs to exactly one class,
    and the sum of all class weights equals the fault-space size.  Both
    properties are enforced by the test suite against brute-force scans.

    Byte-granularity accesses mean all 8 bits of a byte share interval
    boundaries, so classes are stored per byte; an *experiment* is a
    (byte-class, bit-in-byte) pair because different bits of the same
    interval may produce different outcomes. *)

type class_kind =
  | Experiment  (** Interval ends in a read: outcome unknown, inject. *)
  | Overwritten (** Interval ends in a write: a-priori "No Effect". *)
  | Dormant     (** No further access: a-priori "No Effect". *)

val pp_class_kind : Format.formatter -> class_kind -> unit

type byte_class = {
  byte : int;  (** RAM byte offset. *)
  t_start : int;  (** First cycle of the interval (>= 1). *)
  t_end : int;  (** Last cycle; for [Experiment] this is the injection point (the read's cycle). *)
  kind : class_kind;
}

val weight : byte_class -> int
(** [t_end − t_start + 1]: the number of fault-space coordinates each bit
    of this class represents (the "data lifetime" of Pitfall 1). *)

type t
(** The complete partition for one golden run. *)

val analyze : Trace.t -> t
(** Partition the fault space of a sealed trace.

    @raise Invalid_argument if the trace is not sealed. *)

val ram_size : t -> int
val total_cycles : t -> int

val fault_space_size : t -> int
(** [total_cycles × ram_size × 8] — the paper's [w] (in bit·cycles). *)

val classes : t -> byte_class array
(** All classes, sorted by [(byte, t_start)]. *)

val experiment_classes : t -> byte_class array
(** Only the [Experiment] classes.  The number of FI experiments needed
    for a full fault-space scan is [8 × Array.length] of this. *)

val experiment_count : t -> int
(** [8 ×] number of experiment byte-classes — what FAIL* would run. *)

val known_benign_weight : t -> int
(** Total fault-space coordinates (bit·cycles) covered by [Overwritten]
    and [Dormant] classes. *)

val find : t -> cycle:int -> byte:int -> byte_class
(** [find t ~cycle ~byte] is the unique class containing coordinate
    [(cycle, byte)] (any bit of the byte), by binary search.

    @raise Invalid_argument outside the fault space. *)

val pruning_factor : t -> float
(** Raw fault-space size divided by the number of experiments — the
    efficiency of pruning (the paper reports 1.5·10⁸ → 19 553 for sync2,
    a factor of ≈ 7 700). *)
