(** Memory-access traces.

    A golden (fault-free) run of a benchmark is observed through the
    machine's tracer hook; the recorded sequence of RAM accesses is the
    input to def/use pruning (Section III-C of the paper).  ROM and MMIO
    accesses are not recorded — they are outside the fault space. *)

type kind = Read | Write

val pp_kind : Format.formatter -> kind -> unit
(** ["R"] or ["W"], matching Figure 1 of the paper. *)

type entry = { cycle : int; addr : int; width : int; kind : kind }
(** One access: instruction at [cycle] touched [width] bytes starting at
    RAM offset [addr]. *)

type t
(** A trace under construction or sealed. *)

val create : ram_size:int -> t
(** Empty trace for a machine with [ram_size] bytes of RAM. *)

val add : t -> cycle:int -> addr:int -> width:int -> kind:kind -> unit
(** Append one access.  Cycles must be non-decreasing.

    @raise Invalid_argument on out-of-range or out-of-order accesses. *)

val seal : t -> total_cycles:int -> unit
(** Declare the run finished after [total_cycles] executed instructions.
    No further {!add} is allowed.

    @raise Invalid_argument if an access beyond [total_cycles] was
    recorded. *)

val ram_size : t -> int
val total_cycles : t -> int
(** @raise Invalid_argument if the trace is not sealed. *)

val length : t -> int
(** Number of recorded accesses. *)

val entries : t -> entry array
(** All accesses in execution order (a copy). *)

val iter_byte_accesses : t -> (byte:int -> cycle:int -> kind:kind -> unit) -> unit
(** Visit every (byte, access) pair: a [width]-byte access yields [width]
    visits.  Order: execution order. *)
