type kind = Read | Write

let pp_kind ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"

type entry = { cycle : int; addr : int; width : int; kind : kind }

type t = {
  ram : int;
  mutable items : entry array;
  mutable len : int;
  mutable last_cycle : int;
  mutable cycles : int option; (* Some after seal *)
}

let create ~ram_size =
  if ram_size <= 0 then invalid_arg "Trace.create: ram_size must be positive";
  { ram = ram_size; items = Array.make 1024 { cycle = 0; addr = 0; width = 0; kind = Read };
    len = 0; last_cycle = 0; cycles = None }

let add t ~cycle ~addr ~width ~kind =
  if t.cycles <> None then invalid_arg "Trace.add: trace already sealed";
  if cycle < t.last_cycle then invalid_arg "Trace.add: cycles must be non-decreasing";
  if cycle < 1 then invalid_arg "Trace.add: cycle must be >= 1";
  if addr < 0 || addr + width > t.ram then
    invalid_arg "Trace.add: access outside RAM";
  if width <> 1 && width <> 4 then invalid_arg "Trace.add: width must be 1 or 4";
  if t.len = Array.length t.items then begin
    let bigger = Array.make (2 * t.len) t.items.(0) in
    Array.blit t.items 0 bigger 0 t.len;
    t.items <- bigger
  end;
  t.items.(t.len) <- { cycle; addr; width; kind };
  t.len <- t.len + 1;
  t.last_cycle <- cycle

let seal t ~total_cycles =
  if total_cycles < t.last_cycle then
    invalid_arg "Trace.seal: accesses recorded beyond total_cycles";
  t.cycles <- Some total_cycles

let ram_size t = t.ram

let total_cycles t =
  match t.cycles with
  | Some c -> c
  | None -> invalid_arg "Trace.total_cycles: trace not sealed"

let length t = t.len
let entries t = Array.sub t.items 0 t.len

let iter_byte_accesses t f =
  for i = 0 to t.len - 1 do
    let e = t.items.(i) in
    for b = e.addr to e.addr + e.width - 1 do
      f ~byte:b ~cycle:e.cycle ~kind:e.kind
    done
  done
