let items_default = 8
let table_words = 6

let build items =
  let open Builder in
  let table_init =
    List.init table_words (fun k -> ((k * 37) + 11) land 0xFF)
  in
  let globals =
    Kernel_lib.globals ~protect_sched:true ~protect_log:true ~protect_objects:true ()
    @ [
        array ~protected:true "table" table_words ~init:table_init;
        array "xlog" items;
        global "produced";
        global "consumed";
      ]
  in
  (* The consumer's computation: two table lookups folded together.
     Reads of [table] go through this function so SUM+DMR instruments
     them (object enter/leave). *)
  let fold =
    func "fold_item" ~params:[ "v" ] ~locals:[ "a"; "b" ]
      ~protects:[ "table" ]
      [
        set "a" (elem "table" (l "v" %: i table_words));
        set "b" (elem "table" (l "v" *: i 3 %: i table_words));
        ret ((l "a" *: i 5) +: l "b" +: l "v");
      ]
  in
  let producer =
    func "producer_step" ~locals:[ "ok" ]
      (if_else
         (g "produced" >=: i items)
         [ call_ "k_thread_done" [ i 0 ]; ret_unit ]
         [
           Mir.Set_local
             ("ok", call "k_mbox_tryput" [ (g "produced" *: i 5) +: i 3 ]);
           Mir.If
             ( l "ok",
               [
                 call_ "k_sem_post" [ i 0 ];
                 setg "produced" (g "produced" +: i 1);
               ],
               [] );
           ret_unit;
         ])
  in
  let consumer =
    func "consumer_step" ~locals:[ "got"; "v"; "r" ]
      [
        Mir.Set_local ("got", call "k_sem_trywait" [ i 0 ]);
        Mir.If
          ( l "got",
            [
              Mir.Set_local ("v", call "k_mbox_tryget" []);
              Mir.Set_local ("r", call "fold_item" [ l "v" ]);
              set_elem "xlog" (g "consumed") (l "r");
              setg "consumed" (g "consumed" +: i 1);
              Mir.If
                ( g "consumed" >=: i items,
                  [ call_ "k_thread_done" [ i 1 ] ],
                  [] );
            ],
            [] );
        ret_unit;
      ]
  in
  let main =
    func "main" ~locals:[ "__alive"; "k" ]
      (Kernel_lib.scheduler ~nthreads:2 ~dispatch:(fun tid ->
           [ call_ (if tid = 0 then "producer_step" else "consumer_step") [] ])
      @ [ out_str "sync2 " ]
      @ for_ "k" ~from:(i 0) ~below:(i items)
          (out_dec4 (elem "xlog" (l "k")) @ [ out (i 32) ])
      @ [ out_str "done\n"; ret_unit ])
  in
  prog ~name:"sync2" ~stack:160 globals
    ([ fold; producer; consumer; main ]
    @ Kernel_lib.funcs ~protect_sched:true ~protect_log:true ~protect_objects:true ()
    @ stdlib)

let program ?(items = items_default) () = build items
let baseline ?items () = Codegen.compile (program ?items ())
let sum_dmr ?items () = Codegen.compile (Harden.sum_dmr (program ?items ()))
let tmr ?items () = Codegen.compile (Harden.tmr (program ?items ()))
