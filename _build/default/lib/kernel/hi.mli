(** The "Hi" Gedankenexperiment program of Section IV, reproduced with the
    paper's exact fault-space arithmetic: 8 instructions (one cycle each)
    over 2 bytes of RAM give a fault space of 8 × 16 = 128 coordinates, of
    which exactly 48 are failures — fault coverage 62.5 %.

    Schedule (cycle: instruction):
    {v
    1: sb  'H' -> msg[0]      (W)    5: sb r4 -> serial
    2: lb  'i' from ROM              6: lb r5 <- msg[1]  (R)
    3: sb  'i' -> msg[1]      (W)    7: sb r5 -> serial
    4: lb  r4 <- msg[0]       (R)    8: halt
    v}

    [msg\[0\]] lives cycles 2–4 and [msg\[1\]] lives 4–6: 3 cycles × 8 bits
    × 2 bytes = 48 failing coordinates. *)

val program : unit -> Program.t
(** The baseline program; golden output is ["Hi"]. *)

val dft : ?nops:int -> unit -> Program.t
(** "Dilution Fault Tolerance": [nops] (default 4) NOPs prepended.  With
    the default, coverage inflates to 75.0 % while the failure count
    stays 48. *)

val dft' : ?loads:int -> unit -> Program.t
(** DFT′: dilution by [loads] (default 4) alternating reads of the two
    message bytes, so the added fault-space coordinates count as
    "activated" — defeating the count-only-activated-faults repair of
    the coverage metric (Section IV-B). *)

val dft_memory : ?bytes:int -> unit -> Program.t
(** Space-dimension dilution: [bytes] (default 2) unused RAM bytes
    appended (Section IV-C notes DFT "could also simply have used more
    memory"). *)
