(** The mini operating-system kernel, written in MIR.

    The paper's benchmarks are eCos kernel test programs; this module
    provides the kernel substrate they run on here: a cooperative
    run-to-completion scheduler (threads are step functions driven
    round-robin until all terminate), counting/binary semaphores, mutexes
    and mailboxes.  Kernel objects live in globals — exactly the
    "critical data with long lifetimes" the paper's SUM+DMR mechanism
    targets, so benchmarks mark them protected and list them in the
    [f_protects] of the kernel entry points that touch them.

    Thread state encoding in [thr_state]: 0 = ready, 1 = done.
    Semaphores: [sem_val.(id)] is the counter.  Mutexes:
    [mtx_owner.(id)] is 0 when free, otherwise owner tid + 1.
    Mailboxes: one shared ring buffer of [mbox_cap] words with head/tail
    counters.

    All kernel entry points are [try_]-style (non-blocking): blocking is
    expressed by a thread step function returning without progress, as in
    protothread systems.  This keeps the machine deterministic and the
    scheduler trivial while exercising the same data structures a
    blocking kernel would.  DESIGN.md documents this substitution. *)

val nthreads_max : int
(** Capacity of the thread table (4). *)

val nsems_max : int
(** Capacity of the semaphore table (4). *)

val nmutex_max : int
(** Capacity of the mutex table (2). *)

val mbox_cap : int
(** Ring-buffer capacity in words (4). *)

val klog_words : int
(** Size of the kernel event-trace ring (32 words). *)

val globals :
  ?protect_sched:bool ->
  ?protect_log:bool ->
  protect_objects:bool ->
  unit ->
  Mir.global list
(** Kernel data structures.  With [protect_objects] the semaphore, mutex
    and mailbox tables are marked protected; with [protect_sched]
    (default false) the thread table is too.  Each benchmark decides how
    much of the kernel it protects, exactly like configuring the paper's
    GOP library per object class. *)

val funcs :
  ?protect_sched:bool ->
  ?protect_log:bool ->
  protect_objects:bool ->
  unit ->
  Mir.func list
(** Kernel entry points:
    [k_sem_trywait(id) -> 0/1], [k_sem_post(id)],
    [k_mtx_trylock(id, tid) -> 0/1], [k_mtx_unlock(id)],
    [k_mbox_tryput(v) -> 0/1], [k_mbox_tryget() -> value | -1],
    [k_flag_set(bits)], [k_flag_poll_and(mask) -> 0/1] (consume when all
    present), [k_flag_poll_or(mask) -> grabbed bits],
    [k_thread_done(tid)], [k_alive() -> count], [k_log(op)].
    Every kernel entry point records itself in the [klog] event ring;
    with [protect_log], the ring is a protected object — checked and
    updated on {e every} kernel call, the configuration whose runtime
    cost dominates hardened sync2.
    When [protect_objects] (or [protect_sched]) is set, the entry points
    carry the matching [f_protects] annotations so {!Harden} instruments
    them. *)

val scheduler : nthreads:int -> dispatch:(int -> Mir.stmt list) -> Mir.stmt list
(** Round-robin scheduler body for [main]: loops while any thread is
    ready, dispatching each ready thread's step via [dispatch tid] (which
    must produce statements calling the thread's step function).  The
    enclosing [main] must declare a local named ["__alive"]. *)
