let nthreads_max = 4
let nsems_max = 4
let nmutex_max = 2
let mbox_cap = 4
let klog_words = 32

let globals ?(protect_sched = false) ?(protect_log = false) ~protect_objects
    () =
  let open Builder in
  [
    array ~protected:protect_sched "thr_state" nthreads_max;
    array ~protected:protect_objects "sem_val" nsems_max;
    array ~protected:protect_objects "mtx_owner" nmutex_max;
    array ~protected:protect_objects "mbox_ring" mbox_cap;
    global ~protected:protect_objects "mbox_head";
    global ~protected:protect_objects "mbox_tail";
    global ~protected:protect_objects "flag_val";
    (* Kernel event trace: a write-only ring recording every kernel entry
       (the kind of instrumentation buffer eCos keeps per object).  Only
       consulted post-mortem, so in an unhardened system faults in it are
       almost always overwritten before activation. *)
    array ~protected:protect_log "klog" klog_words;
    global "klog_pos";
  ]

let funcs ?(protect_sched = false) ?(protect_log = false) ~protect_objects
    () =
  let open Builder in
  let p names = if protect_objects then names else [] in
  let ps names = if protect_sched then names else [] in
  let pl names = if protect_log then names else [] in
  let log op = call_ "k_log" [ i op ] in
  [
    func "k_log" ~params:[ "op" ] ~protects:(pl [ "klog" ])
      [
        set_elem "klog" (g "klog_pos" %: i klog_words) (l "op");
        setg "klog_pos" (g "klog_pos" +: i 1);
        ret_unit;
      ];
    func "k_sem_trywait" ~params:[ "id" ] ~protects:(p [ "sem_val" ])
      (log 1
      :: if_else
         (elem "sem_val" (l "id") >: i 0)
         [ set_elem "sem_val" (l "id") (elem "sem_val" (l "id") -: i 1);
           ret (i 1) ]
         [ ret (i 0) ]);
    func "k_sem_post" ~params:[ "id" ] ~protects:(p [ "sem_val" ])
      [ log 2;
        set_elem "sem_val" (l "id") (elem "sem_val" (l "id") +: i 1);
        ret_unit ];
    func "k_mtx_trylock" ~params:[ "id"; "tid" ] ~protects:(p [ "mtx_owner" ])
      (log 3
      :: if_else
         (elem "mtx_owner" (l "id") =: i 0)
         [ set_elem "mtx_owner" (l "id") (l "tid" +: i 1); ret (i 1) ]
         [ ret (i 0) ]);
    func "k_mtx_unlock" ~params:[ "id" ] ~protects:(p [ "mtx_owner" ])
      [ log 4; set_elem "mtx_owner" (l "id") (i 0); ret_unit ];
    func "k_mbox_tryput" ~params:[ "v" ] ~locals:[ "used" ]
      ~protects:(p [ "mbox_ring"; "mbox_head"; "mbox_tail" ])
      ([ log 5; set "used" (g "mbox_head" -: g "mbox_tail") ]
      @ if_else
          (geu (l "used") (i mbox_cap))
          [ ret (i 0) ]
          [ set_elem "mbox_ring" (g "mbox_head" %: i mbox_cap) (l "v");
            setg "mbox_head" (g "mbox_head" +: i 1);
            ret (i 1) ]);
    func "k_mbox_tryget" ~locals:[ "v" ]
      ~protects:(p [ "mbox_ring"; "mbox_head"; "mbox_tail" ])
      (log 6
      :: if_else
         (g "mbox_tail" =: g "mbox_head")
         [ ret (i 0 -: i 1) ]
         [ set "v" (elem "mbox_ring" (g "mbox_tail" %: i mbox_cap));
           setg "mbox_tail" (g "mbox_tail" +: i 1);
           ret (l "v") ]);
    func "k_flag_set" ~params:[ "bits" ] ~protects:(p [ "flag_val" ])
      [ log 7; setg "flag_val" (g "flag_val" |: l "bits"); ret_unit ];
    func "k_flag_poll_and" ~params:[ "mask" ] ~protects:(p [ "flag_val" ])
      (log 8
      :: if_else
           ((g "flag_val" &: l "mask") =: l "mask")
           [ setg "flag_val" (g "flag_val" &: (l "mask" ^: i (-1)));
             ret (i 1) ]
           [ ret (i 0) ]);
    func "k_flag_poll_or" ~params:[ "mask" ] ~locals:[ "got" ]
      ~protects:(p [ "flag_val" ])
      (log 9
      :: [ set "got" (g "flag_val" &: l "mask") ]
      @ if_ (l "got" <>: i 0)
          [ setg "flag_val" (g "flag_val" &: (l "got" ^: i (-1))) ]
      @ [ ret (l "got") ]);
    func "k_thread_done" ~params:[ "tid" ] ~protects:(ps [ "thr_state" ])
      [ set_elem "thr_state" (l "tid") (i 1); ret_unit ];
    func "k_alive" ~locals:[ "t"; "n" ] ~protects:(ps [ "thr_state" ])
      ([ set "n" (i 0) ]
      @ for_ "t" ~from:(i 0) ~below:(i nthreads_max)
          (if_ (elem "thr_state" (l "t") =: i 0) [ set "n" (l "n" +: i 1) ])
      @ [ ret (l "n") ]);
  ]

let scheduler ~nthreads ~dispatch =
  let open Builder in
  (* Threads beyond [nthreads] are marked done up front so k_alive counts
     only real threads. *)
  let retire =
    List.init (nthreads_max - nthreads) (fun k ->
        call_ "k_thread_done" [ i (nthreads + k) ])
  in
  retire
  @ [
      set "__alive" (call "k_alive" []);
      while_
        (l "__alive" >: i 0)
        (List.concat
           (List.init nthreads (fun tid ->
                if_ (elem "thr_state" (i tid) =: i 0) (dispatch tid)))
        @ [ set "__alive" (call "k_alive" []) ]);
    ]
