lib/kernel/mbox1.mli: Mir Program
