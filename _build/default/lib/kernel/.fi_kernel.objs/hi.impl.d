lib/kernel/hi.ml: Bytes Char Int32 Isa Memmap Program Transform
