lib/kernel/sync2.ml: Builder Codegen Harden Kernel_lib List Mir
