lib/kernel/bin_sem2.mli: Mir Program
