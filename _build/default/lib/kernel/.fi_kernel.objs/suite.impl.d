lib/kernel/suite.ml: Bin_sem2 Flag1 List Mbox1 Mutex1 Program Sync2
