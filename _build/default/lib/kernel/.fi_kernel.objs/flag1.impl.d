lib/kernel/flag1.ml: Builder Codegen Harden Kernel_lib Mir Printf
