lib/kernel/mutex1.mli: Mir Program
