lib/kernel/mutex1.ml: Builder Codegen Harden Kernel_lib Mir
