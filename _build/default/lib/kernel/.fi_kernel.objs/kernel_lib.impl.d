lib/kernel/kernel_lib.ml: Builder List
