lib/kernel/flag1.mli: Mir Program
