lib/kernel/suite.mli: Program
