lib/kernel/kernel_lib.mli: Mir
