lib/kernel/bin_sem2.ml: Builder Codegen Harden Kernel_lib List Mir
