lib/kernel/hi.mli: Program
