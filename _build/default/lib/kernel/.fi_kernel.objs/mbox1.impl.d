lib/kernel/mbox1.ml: Builder Codegen Harden Kernel_lib Mir
