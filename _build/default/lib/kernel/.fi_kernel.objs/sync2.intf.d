lib/kernel/sync2.mli: Mir Program
