(** The [bin_sem2] benchmark — modeled on the eCos kernel test of the same
    name used in the paper: two threads alternately pass two binary
    semaphores and take turns mutating a shared record, whose final value
    is printed.

    Critical (protected) data: the semaphore table, the shared record
    [rec_state], and the read-mostly [params] table consulted every round
    — long-lifetime data whose corruption silently corrupts the final
    output in the baseline.  SUM+DMR detects and repairs such corruption
    at kernel/record entry points, which is why this benchmark {e
    genuinely improves} under hardening (paper Figure 2e, left group). *)

val rounds_default : int
(** Ping-pong rounds per thread (8). *)

val program : ?rounds:int -> unit -> Mir.prog
(** Baseline MIR program (protection annotations present but inert until
    a {!Harden} pass runs). *)

val baseline : ?rounds:int -> unit -> Program.t
(** Compiled baseline. *)

val sum_dmr : ?rounds:int -> unit -> Program.t
(** Compiled SUM+DMR-hardened variant. *)

val tmr : ?rounds:int -> unit -> Program.t
(** Compiled TMR-hardened variant (extension). *)
