(** The [mutex1] benchmark (additional eCos-style kernel test): three
    threads increment a shared protected counter under a mutex; the final
    total is printed.  Exercises the mutex kernel object and contention
    in the cooperative scheduler. *)

val rounds_default : int
(** Increments per thread (8). *)

val program : ?rounds:int -> unit -> Mir.prog
val baseline : ?rounds:int -> unit -> Program.t
val sum_dmr : ?rounds:int -> unit -> Program.t
val tmr : ?rounds:int -> unit -> Program.t
