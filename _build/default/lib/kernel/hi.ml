let program () =
  let open Isa in
  let rH = reg 1 in
  let rRom = reg 3 in
  let rSerial = reg 7 in
  let r2 = reg 2 in
  let r4 = reg 4 in
  let r5 = reg 5 in
  let code =
    [|
      Sb (rH, r0, 0l) (* 1: msg[0] <- 'H' *);
      Lb (r2, rRom, 0l) (* 2: r2 <- 'i' (ROM, immune) *);
      Sb (r2, r0, 1l) (* 3: msg[1] <- 'i' *);
      Lb (r4, r0, 0l) (* 4: r4 <- msg[0] *);
      Sb (r4, rSerial, 0l) (* 5: serial <- r4 *);
      Lb (r5, r0, 1l) (* 6: r5 <- msg[1] *);
      Sb (r5, rSerial, 0l) (* 7: serial <- r5 *);
      Halt (* 8 *);
    |]
  in
  Program.make ~name:"hi" ~code
    ~rom:(Bytes.of_string "i")
    ~reg_init:
      [
        (rH, Int32.of_int (Char.code 'H'));
        (rRom, Int32.of_int Memmap.rom_base);
        (rSerial, Int32.of_int Memmap.serial_port);
      ]
    ~symbols:[ ("main", 0) ]
    ~ram_size:2 ()

let dft ?(nops = 4) () = Transform.dilute_nops ~cycles:nops (program ())

let dft' ?(loads = 4) () =
  Transform.dilute_loads ~cycles:loads ~addrs:[ 0; 1 ] (program ())

let dft_memory ?(bytes = 2) () = Transform.dilute_memory ~bytes (program ())
