let rounds_default = 8
let params_words = 48

let build rounds =
  let open Builder in
  let params_init =
    List.init params_words (fun k -> ((k * 13) + 7) land 0xFF)
  in
  let globals =
    (* The critical long-lived data: the shared record (including the
       round counter), a sizeable read-mostly parameter table consulted
       every round, and the scheduler's thread table.  The semaphores
       themselves are hot, tiny and self-healing in practice, so this
       benchmark leaves them unprotected — mirroring a configuration
       where GOP is applied to application objects and scheduler state. *)
    Kernel_lib.globals ~protect_sched:true ~protect_objects:false ()
    @ [
        array ~protected:true "rec_state" 4 ~init:[ 0; 1; 0; 0 ];
        array ~protected:true "params" params_words ~init:params_init;
      ]
  in
  (* The per-round critical-section work: a couple of parameter lookups
     folded into the record.  Returns the new round counter.  Writes only
     [rec_state]; [params] is read-only here (check-only under SUM+DMR).
     Access to the protected objects is brief — the long idle time
     between rounds is where baseline corruption accumulates and where
     the check-at-entry recovers it. *)
  let rec_update =
    func "rec_update" ~params:[ "tid" ] ~locals:[ "c"; "t" ]
      ~protects:[ "rec_state"; "params" ]
      [
        set "c" (elem "rec_state" (i 0) +: i 1);
        set_elem "rec_state" (i 0) (l "c");
        set "t"
          ((elem "rec_state" (i 1) *: elem "params" (l "c" %: i params_words))
          +: elem "params" (l "c" *: i 7 %: i params_words)
          &: i 0xFFFF);
        set_elem "rec_state" (i 1) (l "t");
        set_elem "rec_state" (i 2)
          (elem "rec_state" (i 2) +: (l "t" ^: l "tid"));
        set_elem "rec_state" (i 3) (l "tid");
        ret (l "c");
      ]
  in
  (* Unprotected between-rounds work (message formatting, bookkeeping,
     ... — anything that does not touch the critical objects).  Keeps the
     protected data idle for most of the round. *)
  (* A mostly-register delay: each iteration performs four deep
     expression chains over one local, so RAM traffic per cycle stays
     low while the protected objects sit idle. *)
  let churn x =
    ((((((l x *: i 29) +: i 7) ^: i 45) *: i 13) +: i 5) &: i 0xFFFFF)
  in
  let spin =
    func "spin" ~params:[ "n" ] ~locals:[ "s"; "x" ]
      ([ set "x" (i 1) ]
      @ for_ "s" ~from:(i 0) ~below:(l "n")
          [ set "x" (churn "x"); set "x" (churn "x"); set "x" (churn "x");
            set "x" (churn "x") ]
      @ [ ret (l "x") ])
  in
  let step name ~tid ~wait_sem ~post_sem ~done_at =
    func name ~locals:[ "got"; "c" ]
      [
        Mir.Set_local ("got", call "k_sem_trywait" [ i wait_sem ]);
        Mir.If
          ( l "got",
            [
              Mir.Set_local ("c", call "rec_update" [ i tid ]);
              call_ "k_sem_post" [ i post_sem ];
              call_ "spin" [ i 8 ];
              Mir.If
                ( l "c" >=: i done_at,
                  [ call_ "k_thread_done" [ i tid ] ],
                  [] );
            ],
            [] );
        ret_unit;
      ]
  in
  (* Ping performs the odd-numbered updates, pong the even ones; each
     thread retires after its own N rounds. *)
  let ping =
    step "ping_step" ~tid:0 ~wait_sem:0 ~post_sem:1
      ~done_at:((2 * rounds) - 1)
  in
  let pong =
    step "pong_step" ~tid:1 ~wait_sem:1 ~post_sem:0 ~done_at:(2 * rounds)
  in
  let main =
    func "main" ~locals:[ "__alive" ]
      ([ call_ "k_sem_post" [ i 0 ] ]
      @ Kernel_lib.scheduler ~nthreads:2 ~dispatch:(fun tid ->
            [ call_ (if tid = 0 then "ping_step" else "pong_step") [] ])
      @ [
          out_str "bin_sem2 ";
          call_ out_dec [ elem "rec_state" (i 0) ];
          out (i 32);
          call_ out_dec [ elem "rec_state" (i 1) ];
          out (i 32);
          call_ out_dec [ elem "rec_state" (i 2) ];
          out (i 32);
          call_ out_dec [ elem "rec_state" (i 3) ];
          out_str " done\n";
          ret_unit;
        ])
  in
  prog ~name:"bin_sem2" ~stack:160 globals
    ([ rec_update; spin; ping; pong; main ]
    @ Kernel_lib.funcs ~protect_sched:true ~protect_objects:false ()
    @ stdlib)

let program ?(rounds = rounds_default) () = build rounds
let baseline ?rounds () = Codegen.compile (program ?rounds ())
let sum_dmr ?rounds () = Codegen.compile (Harden.sum_dmr (program ?rounds ()))
let tmr ?rounds () = Codegen.compile (Harden.tmr (program ?rounds ()))
