(** The [sync2] benchmark — modeled on the eCos synchronisation test used
    in the paper: a producer/consumer pair coupled through a counting
    semaphore and a mailbox.  The consumer folds each received item
    through a sizeable protected lookup table and appends the result to an
    {e unprotected} log that is only printed after all threads finish.

    This benchmark reproduces the paper's headline case: under SUM+DMR
    the protected table and kernel objects are checked/updated on every
    kernel call, inflating the runtime severely; the unprotected log's
    data lifetimes stretch with the runtime, so the {e absolute failure
    count increases} (by > 5× in the paper) even though the fault-coverage
    metric — diluted by the enlarged fault space — still looks better
    (paper Figures 2b vs 2e, right group). *)

val items_default : int
(** Items produced/consumed (8). *)

val table_words : int
(** Size of the protected lookup table (6 words). *)

val program : ?items:int -> unit -> Mir.prog
(** Baseline MIR program. *)

val baseline : ?items:int -> unit -> Program.t
val sum_dmr : ?items:int -> unit -> Program.t
val tmr : ?items:int -> unit -> Program.t
