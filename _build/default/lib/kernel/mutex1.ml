let rounds_default = 8

let build rounds =
  let open Builder in
  let globals =
    Kernel_lib.globals ~protect_objects:true ()
    @ [
        array ~protected:true "shared" 2 ~init:[ 0; 1 ];
        array "done_rounds" 3;
      ]
  in
  let work =
    func "bump_shared" ~params:[ "tid" ] ~protects:[ "shared" ]
      [
        set_elem "shared" (i 0) (elem "shared" (i 0) +: i 1);
        set_elem "shared" (i 1)
          ((elem "shared" (i 1) *: i 3) +: l "tid" &: i 0xFFFF);
        ret_unit;
      ]
  in
  let step =
    func "worker_step" ~params:[ "tid" ] ~locals:[ "ok" ]
      [
        Mir.Set_local ("ok", call "k_mtx_trylock" [ i 0; l "tid" ]);
        Mir.If
          ( l "ok",
            [
              call_ "bump_shared" [ l "tid" ];
              call_ "k_mtx_unlock" [ i 0 ];
              set_elem "done_rounds" (l "tid")
                (elem "done_rounds" (l "tid") +: i 1);
              Mir.If
                ( elem "done_rounds" (l "tid") >=: i rounds,
                  [ call_ "k_thread_done" [ l "tid" ] ],
                  [] );
            ],
            [] );
        ret_unit;
      ]
  in
  let main =
    func "main" ~locals:[ "__alive" ]
      (Kernel_lib.scheduler ~nthreads:3 ~dispatch:(fun tid ->
           [ call_ "worker_step" [ i tid ] ])
      @ [
          out_str "mutex1 ";
          call_ out_dec [ elem "shared" (i 0) ];
          out (i 32);
          call_ out_dec [ elem "shared" (i 1) ];
          out_str " done\n";
          ret_unit;
        ])
  in
  prog ~name:"mutex1" ~stack:160 globals
    ([ work; step; main ] @ Kernel_lib.funcs ~protect_objects:true () @ stdlib)

let program ?(rounds = rounds_default) () = build rounds
let baseline ?rounds () = Codegen.compile (program ?rounds ())
let sum_dmr ?rounds () = Codegen.compile (Harden.sum_dmr (program ?rounds ()))
let tmr ?rounds () = Codegen.compile (Harden.tmr (program ?rounds ()))
