(** The [flag1] benchmark (additional eCos-style kernel test): two setter
    threads each raise their event bit once per round; a collector thread
    polls for the conjunction of both bits, consumes them, and folds the
    round number into a protected record.  Exercises the event-flags
    kernel object under contention. *)

val rounds_default : int
(** Collector rounds (8). *)

val program : ?rounds:int -> unit -> Mir.prog
val baseline : ?rounds:int -> unit -> Program.t
val sum_dmr : ?rounds:int -> unit -> Program.t
val tmr : ?rounds:int -> unit -> Program.t
