(** The [mbox1] benchmark (additional eCos-style kernel test): a producer
    streams a sequence of values through the kernel mailbox; the consumer
    accumulates them and the total is printed.  Exercises the ring-buffer
    mailbox including the buffer-full/buffer-empty paths. *)

val items_default : int
(** Messages passed (10). *)

val program : ?items:int -> unit -> Mir.prog
val baseline : ?items:int -> unit -> Program.t
val sum_dmr : ?items:int -> unit -> Program.t
val tmr : ?items:int -> unit -> Program.t
