let rounds_default = 8

let build rounds =
  let open Builder in
  let globals =
    Kernel_lib.globals ~protect_objects:true ()
    @ [
        array ~protected:true "collected" 2;
        array "set_rounds" 2;
        global "got_rounds";
      ]
  in
  (* A setter may run at most one round ahead of the collector, so the
     benchmark terminates deterministically under round-robin. *)
  let setter tid bit =
    func
      (Printf.sprintf "setter%d_step" tid)
      [
        Mir.If
          ( elem "set_rounds" (i tid) >=: i rounds,
            [ call_ "k_thread_done" [ i tid ]; ret_unit ],
            [] );
        Mir.If
          ( elem "set_rounds" (i tid) <=: g "got_rounds",
            [
              call_ "k_flag_set" [ i bit ];
              set_elem "set_rounds" (i tid) (elem "set_rounds" (i tid) +: i 1);
            ],
            [] );
        ret_unit;
      ]
  in
  let collector =
    func "collector_step" ~locals:[ "ok" ]
      [
        Mir.Set_local ("ok", call "k_flag_poll_and" [ i 0b11 ]);
        Mir.If
          ( l "ok",
            [
              call_ "fold_round" [ g "got_rounds" ];
              setg "got_rounds" (g "got_rounds" +: i 1);
              Mir.If
                ( g "got_rounds" >=: i rounds,
                  [ call_ "k_thread_done" [ i 2 ] ],
                  [] );
            ],
            [] );
        ret_unit;
      ]
  in
  let fold_round =
    func "fold_round" ~params:[ "n" ] ~protects:[ "collected" ]
      [
        set_elem "collected" (i 0) (elem "collected" (i 0) +: i 1);
        set_elem "collected" (i 1)
          ((elem "collected" (i 1) *: i 5) +: l "n" &: i 0xFFFF);
        ret_unit;
      ]
  in
  let main =
    func "main" ~locals:[ "__alive" ]
      (Kernel_lib.scheduler ~nthreads:3 ~dispatch:(fun tid ->
           [
             call_
               (match tid with
               | 0 -> "setter0_step"
               | 1 -> "setter1_step"
               | _ -> "collector_step")
               [];
           ])
      @ [
          out_str "flag1 ";
          call_ out_dec [ elem "collected" (i 0) ];
          out (i 32);
          call_ out_dec [ elem "collected" (i 1) ];
          out_str " done\n";
          ret_unit;
        ])
  in
  prog ~name:"flag1" ~stack:160 globals
    ([ fold_round; setter 0 1; setter 1 2; collector; main ]
    @ Kernel_lib.funcs ~protect_objects:true ()
    @ stdlib)

let program ?(rounds = rounds_default) () = build rounds
let baseline ?rounds () = Codegen.compile (program ?rounds ())
let sum_dmr ?rounds () = Codegen.compile (Harden.sum_dmr (program ?rounds ()))
let tmr ?rounds () = Codegen.compile (Harden.tmr (program ?rounds ()))
