let items_default = 10

let build items =
  let open Builder in
  let globals =
    Kernel_lib.globals ~protect_objects:true ()
    @ [
        array ~protected:true "totals" 2;
        global "sent";
        global "received";
      ]
  in
  let accumulate =
    func "accumulate" ~params:[ "v" ] ~protects:[ "totals" ]
      [
        set_elem "totals" (i 0) (elem "totals" (i 0) +: l "v");
        set_elem "totals" (i 1) (elem "totals" (i 1) ^: (l "v" *: i 9));
        ret_unit;
      ]
  in
  let producer =
    func "producer_step" ~locals:[ "ok" ]
      (if_else
         (g "sent" >=: i items)
         [ call_ "k_thread_done" [ i 0 ]; ret_unit ]
         [
           Mir.Set_local ("ok", call "k_mbox_tryput" [ (g "sent" *: i 7) +: i 1 ]);
           Mir.If (l "ok", [ setg "sent" (g "sent" +: i 1) ], []);
           ret_unit;
         ])
  in
  let consumer =
    func "consumer_step" ~locals:[ "v" ]
      [
        Mir.Set_local ("v", call "k_mbox_tryget" []);
        Mir.If
          ( l "v" >=: i 0,
            [
              call_ "accumulate" [ l "v" ];
              setg "received" (g "received" +: i 1);
              Mir.If
                ( g "received" >=: i items,
                  [ call_ "k_thread_done" [ i 1 ] ],
                  [] );
            ],
            [] );
        ret_unit;
      ]
  in
  let main =
    func "main" ~locals:[ "__alive" ]
      (Kernel_lib.scheduler ~nthreads:2 ~dispatch:(fun tid ->
           [ call_ (if tid = 0 then "producer_step" else "consumer_step") [] ])
      @ [
          out_str "mbox1 ";
          call_ out_dec [ elem "totals" (i 0) ];
          out (i 32);
          call_ out_dec [ elem "totals" (i 1) ];
          out_str " done\n";
          ret_unit;
        ])
  in
  prog ~name:"mbox1" ~stack:160 globals
    ([ accumulate; producer; consumer; main ]
    @ Kernel_lib.funcs ~protect_objects:true ()
    @ stdlib)

let program ?(items = items_default) () = build items
let baseline ?items () = Codegen.compile (program ?items ())
let sum_dmr ?items () = Codegen.compile (Harden.sum_dmr (program ?items ()))
let tmr ?items () = Codegen.compile (Harden.tmr (program ?items ()))
