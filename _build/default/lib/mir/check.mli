(** Static validation of MIR programs.

    The code generator is deliberately simple — it never spills expression
    temporaries and supports calls only at statement roots — so this
    checker enforces the rules that make that simplicity sound:

    - a [main] function with no parameters exists;
    - every referenced global/local/function exists, with matching arity
      and at most 4 parameters;
    - parameter and local names within a function are distinct;
    - [Call] appears only as a whole statement or as the root expression
      of [Set_local]/[Set_global]/[Return];
    - expression register need stays within the budget (9 registers at
      statement roots, 6 inside call arguments);
    - initialisers fit their type; protected globals are scalars or word
      arrays; [f_protects] names protected globals. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

val register_need : Mir.expr -> int
(** Ershov-style register requirement of an expression under the
    evaluate-left-into-dst scheme of {!Codegen}. *)

val check : Mir.prog -> (unit, error list) result
(** All violations, or [Ok ()]. *)

val check_exn : Mir.prog -> unit
(** @raise Invalid_argument with rendered errors. *)
