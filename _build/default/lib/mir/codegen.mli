(** MIR → ISA code generation.

    Compilation model:
    - registers [r1]–[r9] hold expression temporaries (never spilled;
      {!Check} bounds expression depth), [r10] holds a pending store
      address within one statement, [r11]/[r12] are per-instruction
      scratch, [sp]/[fp]/[ra] follow the ISA conventions;
    - each function gets a stack frame [locals… | saved ra | saved fp]
      addressed from [fp]; parameters arrive in [r1]–[r4] and are stored
      into their slots on entry, so locals and parameters are ordinary
      RAM — and therefore part of the fault space, like compiler-managed
      stacks on real hardware;
    - the program entry sets up [sp], calls [main] and halts. *)

val compile : Mir.prog -> Program.t
(** [compile p] checks [p] ({!Check.check_exn}) and generates the
    executable image.

    @raise Invalid_argument if the program is invalid. *)

val compile_statements : Mir.prog -> Asm.stmt list
(** The assembly stream before label resolution — for inspection and
    tests. *)
