(** Software-based hardware fault-tolerance passes over MIR.

    These reproduce the class of mechanisms evaluated in the paper:
    the authors' library [8] protects "critical data with long lifetimes"
    by weaving checksum and replication maintenance around the functions
    that use the data (Generic Object Protection).  Here, globals marked
    [g_protected] are the critical objects, and functions listing them in
    [f_protects] are instrumented: an integrity {e check} (with recovery)
    runs at function entry, and a replica/checksum {e update} runs at
    every function exit.

    Functions that only {e read} a protected object receive check-only
    instrumentation (no exit update) — the "get" flavour of the paper's
    GOP weaving; functions that write it get check-and-update.

    Detected-and-corrected errors are reported through the detection port
    ({!Event_codes.corrected}) and classify as benign; uncorrectable mismatches
    report {!Event_codes.detected} and fail-stop (panic code 0xDEAD).

    The passes are purely source-to-source: the output is an ordinary MIR
    program whose fault-space dimensions (runtime and memory overhead)
    honestly reflect the mechanism's cost — the property the paper's
    dilution argument (Section IV) turns on. *)

val sum_dmr : Mir.prog -> Mir.prog
(** SUM+DMR, the paper's evaluated configuration: each protected global
    gets one replica plus an additive checksum per copy.  Check: if the
    primary checksum mismatches, restore from the replica when the
    replica's checksum validates, else fail-stop.  Program name gains
    ["+sumdmr"]. *)

val tmr : Mir.prog -> Mir.prog
(** Triple modular redundancy (extension): two replicas, per-word
    majority vote at check time.  Name gains ["+tmr"]. *)

val protected_globals : Mir.prog -> Mir.global list
(** The globals a pass would protect (in declaration order). *)
