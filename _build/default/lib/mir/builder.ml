let i n = Mir.Int (Int32.of_int n)
let i32 v = Mir.Int v
let g name = Mir.Global name
let l name = Mir.Local name
let elem name idx = Mir.Elem (name, idx)
let byte name idx = Mir.Byte (name, idx)
let call f args = Mir.Call (f, args)

let ( +: ) a b = Mir.Bin (Mir.Add, a, b)
let ( -: ) a b = Mir.Bin (Mir.Sub, a, b)
let ( *: ) a b = Mir.Bin (Mir.Mul, a, b)
let ( /: ) a b = Mir.Bin (Mir.Divu, a, b)
let ( %: ) a b = Mir.Bin (Mir.Remu, a, b)
let ( &: ) a b = Mir.Bin (Mir.And, a, b)
let ( |: ) a b = Mir.Bin (Mir.Or, a, b)
let ( ^: ) a b = Mir.Bin (Mir.Xor, a, b)
let ( <<: ) a b = Mir.Bin (Mir.Shl, a, b)
let ( >>: ) a b = Mir.Bin (Mir.Shr, a, b)
let ( =: ) a b = Mir.Cmp (Mir.Eq, a, b)
let ( <>: ) a b = Mir.Cmp (Mir.Ne, a, b)
let ( <: ) a b = Mir.Cmp (Mir.Lt, a, b)
let ( >=: ) a b = Mir.Cmp (Mir.Ge, a, b)
let ( <=: ) a b = Mir.Cmp (Mir.Ge, b, a)
let ( >: ) a b = Mir.Cmp (Mir.Lt, b, a)
let ltu a b = Mir.Cmp (Mir.Ltu, a, b)
let geu a b = Mir.Cmp (Mir.Geu, a, b)

let set x e = Mir.Set_local (x, e)
let setg x e = Mir.Set_global (x, e)
let set_elem a idx v = Mir.Set_elem (a, idx, v)
let set_byte a idx v = Mir.Set_byte (a, idx, v)
let incr x = Mir.Set_local (x, l x +: i 1)
let if_ c t = [ Mir.If (c, t, []) ]
let if_else c t e = [ Mir.If (c, t, e) ]
let while_ c body = Mir.While (c, body)

let for_ x ~from ~below body =
  [ set x from; while_ (Mir.Cmp (Mir.Ltu, l x, below)) (body @ [ incr x ]) ]

let call_ f args = Mir.Do_call (f, args)

let out_dec4 e =
  (* Four fixed digits, generated inline: almost no RAM traffic, unlike
     the general __out_dec loop. *)
  [
    Mir.Out (Mir.Bin (Mir.Add, Mir.Bin (Mir.Remu, Mir.Bin (Mir.Divu, e, Mir.Int 1000l), Mir.Int 10l), Mir.Int 48l));
    Mir.Out (Mir.Bin (Mir.Add, Mir.Bin (Mir.Remu, Mir.Bin (Mir.Divu, e, Mir.Int 100l), Mir.Int 10l), Mir.Int 48l));
    Mir.Out (Mir.Bin (Mir.Add, Mir.Bin (Mir.Remu, Mir.Bin (Mir.Divu, e, Mir.Int 10l), Mir.Int 10l), Mir.Int 48l));
    Mir.Out (Mir.Bin (Mir.Add, Mir.Bin (Mir.Remu, e, Mir.Int 10l), Mir.Int 48l));
  ]
let ret e = Mir.Return (Some e)
let ret_unit = Mir.Return None
let out e = Mir.Out e
let out_str s = Mir.Out_str s
let out_dec = "__out_dec"
let detect code = Mir.Detect (Int32.of_int code)
let panic code = Mir.Panic (Int32.of_int code)

let global ?(protected = false) ?(init = []) name =
  {
    Mir.g_name = name;
    g_ty = Mir.I32;
    g_init = List.map Int32.of_int init;
    g_protected = protected;
  }

let array ?(protected = false) ?(init = []) name len =
  {
    Mir.g_name = name;
    g_ty = Mir.Words len;
    g_init = List.map Int32.of_int init;
    g_protected = protected;
  }

let bytes_ ?init name len =
  let g_init =
    match init with
    | None -> []
    | Some s -> List.init (String.length s) (fun k -> Int32.of_int (Char.code s.[k]))
  in
  { Mir.g_name = name; g_ty = Mir.Byte_array len; g_init; g_protected = false }

let func ?(params = []) ?(locals = []) ?(protects = []) name body =
  {
    Mir.f_name = name;
    f_params = params;
    f_locals = locals;
    f_body = body;
    f_protects = protects;
  }

(* Decimal printing: repeatedly divide by 10 into a small digit buffer on
   the stack?  MIR has no local arrays, so build digits by place value. *)
let stdlib =
  [
    func "__out_dec" ~params:[ "v" ] ~locals:[ "div"; "digit"; "started" ]
      [
        set "started" (i 0);
        set "div" (i 1_000_000_000);
        while_
          (Mir.Cmp (Mir.Ltu, i 0, l "div"))
          [
            set "digit" (l "v" /: l "div" %: i 10);
            Mir.If
              ( Mir.Bin (Mir.Or, l "started", l "digit"),
                [ out (l "digit" +: i 48); set "started" (i 1) ],
                [] );
            set "div" (l "div" /: i 10);
          ];
        Mir.If (Mir.Cmp (Mir.Eq, l "started", i 0), [ out (i 48) ], []);
        ret_unit;
      ];
  ]

let prog ?(stack = 192) ~name globals funcs =
  let p =
    {
      Mir.p_name = name;
      p_globals = globals;
      p_funcs = funcs;
      p_stack_bytes = stack;
    }
  in
  Check.check_exn p;
  p
