type ty = I32 | Words of int | Byte_array of int

type global = {
  g_name : string;
  g_ty : ty;
  g_init : int32 list;
  g_protected : bool;
}

type binop = Add | Sub | Mul | Divu | Remu | And | Or | Xor | Shl | Shr

type cmpop = Eq | Ne | Lt | Ge | Ltu | Geu

type expr =
  | Int of int32
  | Global of string
  | Elem of string * expr
  | Byte of string * expr
  | Local of string
  | Bin of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | Call of string * expr list

type stmt =
  | Set_global of string * expr
  | Set_elem of string * expr * expr
  | Set_byte of string * expr * expr
  | Set_local of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_call of string * expr list
  | Return of expr option
  | Out of expr
  | Out_str of string
  | Detect of int32
  | Panic of int32

type func = {
  f_name : string;
  f_params : string list;
  f_locals : string list;
  f_body : stmt list;
  f_protects : string list;
}

type prog = {
  p_name : string;
  p_globals : global list;
  p_funcs : func list;
  p_stack_bytes : int;
}

let pp_ty ppf = function
  | I32 -> Format.pp_print_string ppf "i32"
  | Words n -> Format.fprintf ppf "i32[%d]" n
  | Byte_array n -> Format.fprintf ppf "u8[%d]" n

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Divu -> "/"
  | Remu -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let cmpop_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Ge -> ">="
  | Ltu -> "<u"
  | Geu -> ">=u"

let rec pp_expr ppf = function
  | Int v -> Format.fprintf ppf "%ld" v
  | Global g -> Format.pp_print_string ppf g
  | Elem (g, i) -> Format.fprintf ppf "%s[%a]" g pp_expr i
  | Byte (g, i) -> Format.fprintf ppf "%s.[%a]" g pp_expr i
  | Local x -> Format.pp_print_string ppf x
  | Bin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Cmp (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (cmpop_name op) pp_expr b
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args

let rec pp_stmt ppf = function
  | Set_global (g, e) -> Format.fprintf ppf "%s = %a;" g pp_expr e
  | Set_elem (g, i, v) ->
      Format.fprintf ppf "%s[%a] = %a;" g pp_expr i pp_expr v
  | Set_byte (g, i, v) ->
      Format.fprintf ppf "%s.[%a] = %a;" g pp_expr i pp_expr v
  | Set_local (x, e) -> Format.fprintf ppf "%s = %a;" x pp_expr e
  | If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_expr c pp_block t;
      if e <> [] then Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_block e
  | While (c, body) ->
      Format.fprintf ppf "@[<v 2>while %a {@,%a@]@,}" pp_expr c pp_block body
  | Do_call (f, args) -> pp_expr ppf (Call (f, args)); Format.pp_print_string ppf ";"
  | Return None -> Format.pp_print_string ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Out e -> Format.fprintf ppf "out %a;" pp_expr e
  | Out_str s -> Format.fprintf ppf "out %S;" s
  | Detect code -> Format.fprintf ppf "detect %ld;" code
  | Panic code -> Format.fprintf ppf "panic %ld;" code

and pp_block ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>fn %s(%s)%s {@,%a@]@,}" f.f_name
    (String.concat ", " f.f_params)
    (match f.f_locals with
    | [] -> ""
    | ls -> Printf.sprintf " locals(%s)" (String.concat ", " ls))
    pp_block f.f_body

let pp_prog ppf p =
  Format.fprintf ppf "@[<v>// program %s@," p.p_name;
  List.iter
    (fun g ->
      Format.fprintf ppf "%s%s : %a;@,"
        (if g.g_protected then "protected " else "")
        g.g_name pp_ty g.g_ty)
    p.p_globals;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_func f) p.p_funcs;
  Format.fprintf ppf "@]"

let size_bytes = function
  | I32 -> 4
  | Words n -> 4 * n
  | Byte_array n -> 4 * ((n + 3) / 4)

let find_func p name = List.find_opt (fun f -> f.f_name = name) p.p_funcs

let find_global p name =
  List.find_opt (fun g -> g.g_name = name) p.p_globals
