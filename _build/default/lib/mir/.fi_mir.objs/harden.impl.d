lib/mir/harden.ml: Builder Check Event_codes Int32 List Mir
