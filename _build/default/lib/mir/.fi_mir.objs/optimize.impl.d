lib/mir/optimize.ml: Int32 List Mir Set String
