lib/mir/codegen.ml: Asm Char Check Int32 Isa Layout List Memmap Mir Printf Program String
