lib/mir/layout.ml: Bytes Char Hashtbl Int32 List Mir
