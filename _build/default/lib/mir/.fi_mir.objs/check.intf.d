lib/mir/check.mli: Format Mir
