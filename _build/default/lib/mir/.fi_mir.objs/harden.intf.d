lib/mir/harden.mli: Mir
