lib/mir/layout.mli: Mir
