lib/mir/mir.ml: Format List Printf String
