lib/mir/builder.ml: Char Check Int32 List Mir String
