lib/mir/builder.mli: Mir
