lib/mir/codegen.mli: Asm Mir Program
