lib/mir/mir.mli: Format
