lib/mir/optimize.mli: Mir
