lib/mir/check.ml: Format Hashtbl List Mir Stdlib
