type error = { where : string; what : string }

let pp_error ppf { where; what } = Format.fprintf ppf "%s: %s" where what

let rec register_need : Mir.expr -> int = function
  | Mir.Int _ | Mir.Global _ | Mir.Local _ -> 1
  | Mir.Elem (_, i) | Mir.Byte (_, i) -> register_need i
  | Mir.Bin (_, l, r) | Mir.Cmp (_, l, r) ->
      Stdlib.max (register_need l) (1 + register_need r)
  | Mir.Call _ -> 1 (* result arrives in r1; arg needs checked separately *)

let statement_budget = 9
let call_arg_budget = 6

let check (p : Mir.prog) =
  let errors = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errors := { where; what } :: !errors) fmt
  in
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Mir.global) ->
      if Hashtbl.mem globals g.Mir.g_name then
        err "globals" "duplicate global %S" g.Mir.g_name
      else Hashtbl.replace globals g.Mir.g_name g;
      let cap =
        match g.Mir.g_ty with
        | Mir.I32 -> 1
        | Mir.Words n -> n
        | Mir.Byte_array n -> n
      in
      if List.length g.Mir.g_init > cap then
        err g.Mir.g_name "initialiser longer than type";
      (match g.Mir.g_ty with
      | Mir.Byte_array _ when g.Mir.g_protected ->
          err g.Mir.g_name "protected byte arrays are not supported"
      | Mir.I32 | Mir.Words _ | Mir.Byte_array _ -> ()))
    p.Mir.p_globals;
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun (f : Mir.func) ->
      if Hashtbl.mem funcs f.Mir.f_name then
        err "functions" "duplicate function %S" f.Mir.f_name
      else Hashtbl.replace funcs f.Mir.f_name f)
    p.Mir.p_funcs;
  (match Hashtbl.find_opt funcs "main" with
  | None -> err p.Mir.p_name "no main function"
  | Some f ->
      if f.Mir.f_params <> [] then err "main" "main must take no parameters");
  if p.Mir.p_stack_bytes < 16 then
    err p.Mir.p_name "stack must be at least 16 bytes";
  let check_func (f : Mir.func) =
    let where = f.Mir.f_name in
    if List.length f.Mir.f_params > 4 then err where "more than 4 parameters";
    let slots = f.Mir.f_params @ f.Mir.f_locals in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun s ->
        if Hashtbl.mem seen s then err where "duplicate local/param %S" s
        else Hashtbl.replace seen s ())
      slots;
    List.iter
      (fun g ->
        match Hashtbl.find_opt globals g with
        | None -> err where "f_protects names unknown global %S" g
        | Some gl ->
            if not gl.Mir.g_protected then
              err where "f_protects names unprotected global %S" g)
      f.Mir.f_protects;
    let global_kind name =
      match Hashtbl.find_opt globals name with
      | None ->
          err where "unknown global %S" name;
          None
      | Some g -> Some g.Mir.g_ty
    in
    let rec expr ?(call_ok = false) ~budget (e : Mir.expr) =
      if register_need e > budget then
        err where "expression exceeds register budget (%d > %d): %a"
          (register_need e) budget Mir.pp_expr e;
      match e with
      | Mir.Int _ -> ()
      | Mir.Global g -> (
          match global_kind g with
          | Some Mir.I32 | None -> ()
          | Some (Mir.Words _ | Mir.Byte_array _) ->
              err where "global %S used as scalar" g)
      | Mir.Elem (g, i) ->
          (match global_kind g with
          | Some (Mir.Words _) | None -> ()
          | Some (Mir.I32 | Mir.Byte_array _) ->
              err where "global %S is not a word array" g);
          expr ~budget i
      | Mir.Byte (g, i) ->
          (match global_kind g with
          | Some (Mir.Byte_array _) | None -> ()
          | Some (Mir.I32 | Mir.Words _) ->
              err where "global %S is not a byte array" g);
          expr ~budget i
      | Mir.Local x ->
          if not (List.mem x slots) then err where "unknown local %S" x
      | Mir.Bin (_, l, r) | Mir.Cmp (_, l, r) ->
          expr ~budget l;
          expr ~budget:(budget - 1) r
      | Mir.Call (fn, args) ->
          if not call_ok then
            err where "call to %S not at statement root" fn;
          (match Hashtbl.find_opt funcs fn with
          | None -> err where "unknown function %S" fn
          | Some callee ->
              if List.length callee.Mir.f_params <> List.length args then
                err where "arity mismatch calling %S" fn);
          List.iter (expr ~budget:call_arg_budget) args
    in
    let rec stmt (s : Mir.stmt) =
      match s with
      | Mir.Set_global (g, e) ->
          (match global_kind g with
          | Some Mir.I32 | None -> ()
          | Some (Mir.Words _ | Mir.Byte_array _) ->
              err where "global %S assigned as scalar" g);
          expr ~call_ok:true ~budget:statement_budget e
      | Mir.Set_elem (g, i, v) ->
          (match global_kind g with
          | Some (Mir.Words _) | None -> ()
          | Some (Mir.I32 | Mir.Byte_array _) ->
              err where "global %S is not a word array" g);
          expr ~budget:statement_budget i;
          expr ~budget:(statement_budget - 1) v
      | Mir.Set_byte (g, i, v) ->
          (match global_kind g with
          | Some (Mir.Byte_array _) | None -> ()
          | Some (Mir.I32 | Mir.Words _) ->
              err where "global %S is not a byte array" g);
          expr ~budget:statement_budget i;
          expr ~budget:(statement_budget - 1) v
      | Mir.Set_local (x, e) ->
          if not (List.mem x slots) then err where "unknown local %S" x;
          expr ~call_ok:true ~budget:statement_budget e
      | Mir.If (c, t, e) ->
          expr ~budget:statement_budget c;
          List.iter stmt t;
          List.iter stmt e
      | Mir.While (c, body) ->
          expr ~budget:statement_budget c;
          List.iter stmt body
      | Mir.Do_call (fn, args) ->
          expr ~call_ok:true ~budget:statement_budget (Mir.Call (fn, args))
      | Mir.Return None -> ()
      | Mir.Return (Some e) -> expr ~call_ok:true ~budget:statement_budget e
      | Mir.Out e -> expr ~budget:statement_budget e
      | Mir.Out_str _ | Mir.Detect _ | Mir.Panic _ -> ()
    in
    List.iter stmt f.Mir.f_body
  in
  List.iter check_func p.Mir.p_funcs;
  match List.rev !errors with [] -> Ok () | errs -> Error errs

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error errs ->
      invalid_arg
        (Format.asprintf "Check.check(%s):@ %a" p.Mir.p_name
           (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_error)
           errs)
