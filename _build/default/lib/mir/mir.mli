(** MIR — the mini intermediate representation.

    The kernel and the benchmark programs are written in this small
    imperative language and compiled to the ISA by {!Codegen}.  Software
    fault-tolerance mechanisms (SUM+DMR, TMR — see {!Harden}) are
    source-to-source passes over MIR, mirroring how the paper's
    Generic Object Protection weaves checksum/replica maintenance into
    C++ classes [8].

    Language shape: 32-bit scalars, global word/byte arrays, functions
    with up to 4 parameters and scalar locals, structured control flow.
    Restrictions enforced by {!Check}: calls appear only at statement
    level (as a whole statement or the root of an assignment), and
    expression depth is bounded by the register budget — the code
    generator never spills temporaries. *)

type ty =
  | I32  (** One 32-bit word. *)
  | Words of int  (** Word array; the length is in words. *)
  | Byte_array of int  (** Byte array; the length is in bytes. *)

type global = {
  g_name : string;
  g_ty : ty;
  g_init : int32 list;
      (** Word (or byte) initialisers; shorter than the type means
          zero-filled.  These become [ram_init] — defined at cycle 0. *)
  g_protected : bool;
      (** Marked "critical data" — hardening passes protect exactly the
          globals with this flag. *)
}

type binop =
  | Add | Sub | Mul | Divu | Remu | And | Or | Xor | Shl | Shr

type cmpop = Eq | Ne | Lt | Ge | Ltu | Geu

type expr =
  | Int of int32
  | Global of string  (** Value of a scalar global. *)
  | Elem of string * expr  (** Word-array element. *)
  | Byte of string * expr  (** Byte-array element (zero-extended). *)
  | Local of string  (** Value of a local or parameter. *)
  | Bin of binop * expr * expr
  | Cmp of cmpop * expr * expr  (** 1 when true, 0 when false. *)
  | Call of string * expr list
      (** Only allowed as the root expression of a statement. *)

type stmt =
  | Set_global of string * expr
  | Set_elem of string * expr * expr  (** array, index, value. *)
  | Set_byte of string * expr * expr
  | Set_local of string * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do_call of string * expr list  (** Call for effect. *)
  | Return of expr option
  | Out of expr  (** Write the low byte to the serial port. *)
  | Out_str of string  (** Emit a constant string (no RAM traffic). *)
  | Detect of int32  (** Report a detection event. *)
  | Panic of int32  (** Fail-stop. *)

type func = {
  f_name : string;
  f_params : string list;  (** At most 4. *)
  f_locals : string list;  (** Scalar stack slots. *)
  f_body : stmt list;
  f_protects : string list;
      (** Protected globals this function works on; hardening passes
          insert integrity checks at entry and replica updates at every
          exit of such functions (object enter/leave instrumentation). *)
}

type prog = {
  p_name : string;
  p_globals : global list;
  p_funcs : func list;  (** Must include ["main"] (no params). *)
  p_stack_bytes : int;  (** Stack reservation above the globals. *)
}

val pp_ty : Format.formatter -> ty -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
val pp_prog : Format.formatter -> prog -> unit

val size_bytes : ty -> int
(** Storage size, word-aligned ([Byte_array] lengths are rounded up). *)

val find_func : prog -> string -> func option
val find_global : prog -> string -> global option
