let r n = Isa.reg n

let fits_s15 v = v >= -16384 && v <= 16383
let fits_s23 v = v >= -4194304 && v <= 4194303

(* Materialise an arbitrary 32-bit constant into [dst]. *)
let load_const dst v =
  let open Asm in
  let vi = Int32.to_int v land 0xFFFFFFFF in
  let signed = if vi land 0x80000000 <> 0 then vi - 0x100000000 else vi in
  if fits_s23 signed then [ li dst v ]
  else
    let hi = vi lsr 12 in
    let lo = vi land 0xFFF in
    [ lii dst hi; alui Isa.Shl dst dst 12; alui Isa.Or dst dst lo ]

type env = {
  layout : Layout.t;
  slots : (string * int) list; (* local/param -> frame slot index *)
  nslots : int;
  fname : string;
  mutable label_counter : int;
}

let slot env x = 4 * List.assoc x env.slots
let frame_size env = (4 * env.nslots) + 8

let fresh env tag =
  env.label_counter <- env.label_counter + 1;
  Printf.sprintf "L__%s__%s_%d" env.fname tag env.label_counter

let exit_label fname = Printf.sprintf "F__%s__exit" fname
let func_label fname = Printf.sprintf "F__%s" fname

let binop_alu : Mir.binop -> Isa.alu_op = function
  | Mir.Add -> Isa.Add
  | Mir.Sub -> Isa.Sub
  | Mir.Mul -> Isa.Mul
  | Mir.Divu -> Isa.Divu
  | Mir.Remu -> Isa.Remu
  | Mir.And -> Isa.And
  | Mir.Or -> Isa.Or
  | Mir.Xor -> Isa.Xor
  | Mir.Shl -> Isa.Shl
  | Mir.Shr -> Isa.Shr

(* Evaluate [e] into register [dst]; [avail] are scratch registers none of
   which is live.  Emission order is left-to-right, so [dst] holds the
   left operand while the right operand evaluates into [List.hd avail]. *)
let rec gen_expr env ~dst ~avail (e : Mir.expr) : Asm.stmt list =
  let open Asm in
  match e with
  | Mir.Int v -> load_const dst v
  | Mir.Local x -> [ lw dst Isa.fp (slot env x) ]
  | Mir.Global g -> [ lw dst Isa.r0 (Layout.offset env.layout g) ]
  | Mir.Elem (g, i) ->
      gen_expr env ~dst ~avail i
      @ [ alui Isa.Shl dst dst 2; lw dst dst (Layout.offset env.layout g) ]
  | Mir.Byte (g, i) ->
      gen_expr env ~dst ~avail i
      @ [ lb dst dst (Layout.offset env.layout g) ]
  | Mir.Bin (op, l, rhs) -> (
      match rhs with
      | Mir.Int v
        when fits_s15 (Int32.to_int v)
             && (match op with Mir.Mul | Mir.Divu | Mir.Remu -> false | _ -> true)
        ->
          gen_expr env ~dst ~avail l
          @ [ alui (binop_alu op) dst dst (Int32.to_int v) ]
      | _ ->
          let tmp, rest =
            match avail with
            | t :: rest -> (r t, rest)
            | [] -> invalid_arg "Codegen: register budget exhausted"
          in
          (* The left result is the only live value while the right
             operand evaluates, so the left may scratch all of [avail]. *)
          gen_expr env ~dst ~avail l
          @ gen_expr env ~dst:tmp ~avail:rest rhs
          @ [ alu (binop_alu op) dst dst tmp ])
  | Mir.Cmp (op, l, rhs) ->
      let tmp, rest =
        match avail with
        | t :: rest -> (r t, rest)
        | [] -> invalid_arg "Codegen: register budget exhausted"
      in
      let operands =
        gen_expr env ~dst ~avail l @ gen_expr env ~dst:tmp ~avail:rest rhs
      in
      let finish =
        match op with
        | Mir.Lt -> [ alu Isa.Slt dst dst tmp ]
        | Mir.Ltu -> [ alu Isa.Sltu dst dst tmp ]
        | Mir.Ge -> [ alu Isa.Slt dst dst tmp; alui Isa.Xor dst dst 1 ]
        | Mir.Geu -> [ alu Isa.Sltu dst dst tmp; alui Isa.Xor dst dst 1 ]
        | Mir.Eq -> [ alu Isa.Sub dst dst tmp; alui Isa.Sltu dst dst 1 ]
        | Mir.Ne -> [ alu Isa.Sub dst dst tmp; alu Isa.Sltu dst Isa.r0 dst ]
      in
      operands @ finish
  | Mir.Call _ ->
      (* Checker guarantees calls appear only at statement roots, which
         are handled in gen_stmt. *)
      assert false

(* Evaluate call arguments into r5..r8, move into r1..r4, call. *)
and gen_call env fname args : Asm.stmt list =
  let open Asm in
  let staging = [ 5; 6; 7; 8 ] in
  let arg_avail = [ 1; 2; 3; 4; 9 ] in
  let evals =
    List.concat
      (List.mapi
         (fun i a ->
           gen_expr env ~dst:(r (List.nth staging i)) ~avail:arg_avail a)
         args)
  in
  let moves = List.mapi (fun i _ -> mov (r (i + 1)) (r (List.nth staging i))) args in
  evals @ moves @ [ call (func_label fname) ]

let rec gen_stmt env (s : Mir.stmt) : Asm.stmt list =
  let open Asm in
  let r1 = r 1 in
  let full = [ 2; 3; 4; 5; 6; 7; 8; 9 ] in
  let eval_root e =
    match e with
    | Mir.Call (f, args) -> gen_call env f args
    | _ -> gen_expr env ~dst:r1 ~avail:full e
  in
  match s with
  | Mir.Set_local (x, e) -> eval_root e @ [ sw r1 Isa.fp (slot env x) ]
  | Mir.Set_global (g, e) ->
      eval_root e @ [ sw r1 Isa.r0 (Layout.offset env.layout g) ]
  | Mir.Set_elem (g, i, v) ->
      let addr = r 10 in
      gen_expr env ~dst:r1 ~avail:full i
      @ [ alui Isa.Shl r1 r1 2; mov addr r1 ]
      @ gen_expr env ~dst:r1 ~avail:full v
      @ [ sw r1 addr (Layout.offset env.layout g) ]
  | Mir.Set_byte (g, i, v) ->
      let addr = r 10 in
      gen_expr env ~dst:r1 ~avail:full i
      @ [ mov addr r1 ]
      @ gen_expr env ~dst:r1 ~avail:full v
      @ [ sb r1 addr (Layout.offset env.layout g) ]
  | Mir.If (c, t, e) ->
      let else_l = fresh env "else" in
      let end_l = fresh env "endif" in
      gen_expr env ~dst:r1 ~avail:full c
      @ [ branch Isa.Eq r1 Isa.r0 (if e = [] then end_l else else_l) ]
      @ List.concat_map (gen_stmt env) t
      @ (if e = [] then []
         else (jump end_l :: label else_l :: List.concat_map (gen_stmt env) e))
      @ [ label end_l ]
  | Mir.While (c, body) ->
      let loop_l = fresh env "loop" in
      let end_l = fresh env "endloop" in
      [ label loop_l ]
      @ gen_expr env ~dst:r1 ~avail:full c
      @ [ branch Isa.Eq r1 Isa.r0 end_l ]
      @ List.concat_map (gen_stmt env) body
      @ [ jump loop_l; label end_l ]
  | Mir.Do_call (f, args) -> gen_call env f args
  | Mir.Return None -> [ jump (exit_label env.fname) ]
  | Mir.Return (Some e) -> eval_root e @ [ jump (exit_label env.fname) ]
  | Mir.Out e ->
      gen_expr env ~dst:r1 ~avail:full e
      @ [ lii (r 11) Memmap.serial_port; sb r1 (r 11) 0 ]
  | Mir.Out_str s ->
      List.concat_map
        (fun ch ->
          [ lii r1 (Char.code ch); lii (r 11) Memmap.serial_port;
            sb r1 (r 11) 0 ])
        (List.init (String.length s) (String.get s))
  | Mir.Detect code ->
      [ li r1 code; lii (r 11) Memmap.detect_port; sw r1 (r 11) 0 ]
  | Mir.Panic code ->
      [ li r1 code; lii (r 11) Memmap.panic_port; sw r1 (r 11) 0 ]

let gen_func layout (f : Mir.func) : Asm.stmt list =
  let open Asm in
  let names = f.Mir.f_params @ f.Mir.f_locals in
  let env =
    {
      layout;
      slots = List.mapi (fun i x -> (x, i)) names;
      nslots = List.length names;
      fname = f.Mir.f_name;
      label_counter = 0;
    }
  in
  let fsize = frame_size env in
  let ra_off = 4 * env.nslots in
  let prologue =
    [ comment (Printf.sprintf "function %s" f.Mir.f_name);
      label (func_label f.Mir.f_name);
      alui Isa.Sub Isa.sp Isa.sp fsize;
      sw Isa.ra Isa.sp ra_off;
      sw Isa.fp Isa.sp (ra_off + 4);
      mov Isa.fp Isa.sp ]
    @ List.mapi (fun i p -> sw (r (i + 1)) Isa.fp (slot env p)) f.Mir.f_params
  in
  let body = List.concat_map (gen_stmt env) f.Mir.f_body in
  let epilogue =
    [ label (exit_label f.Mir.f_name);
      mov (r 11) Isa.fp;
      lw Isa.ra (r 11) ra_off;
      lw Isa.fp (r 11) (ra_off + 4);
      alui Isa.Add Isa.sp (r 11) fsize;
      ret ]
  in
  prologue @ body @ epilogue

let compile_statements (p : Mir.prog) : Asm.stmt list =
  Check.check_exn p;
  let layout = Layout.of_prog p in
  let open Asm in
  let entry =
    [ comment "entry";
      lii Isa.sp (Layout.ram_size layout);
      call (func_label "main");
      halt ]
  in
  entry @ List.concat_map (gen_func layout) p.Mir.p_funcs

let compile (p : Mir.prog) =
  let layout = Layout.of_prog p in
  let stmts = compile_statements p in
  let code, symbols = Asm.resolve_exn stmts in
  Program.make ~name:p.Mir.p_name ~code ~ram_init:(Layout.ram_init layout)
    ~symbols
    ~data_symbols:
      (Layout.data_symbols layout @ [ ("__stack", Layout.data_bytes layout) ])
    ~ram_size:(Layout.ram_size layout) ()
