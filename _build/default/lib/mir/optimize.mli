(** Classical optimisation passes over MIR.

    Besides making generated code smaller, these passes matter to the
    fault-injection methodology itself: optimisation changes a program's
    runtime, memory traffic and data lifetimes — i.e. its fault space —
    so the same source exhibits different susceptibility depending on how
    it was compiled.  The benchmark harness's [optimization] artifact
    quantifies this with the paper's metrics (and shows, once more, that
    fault coverage and absolute failure counts can disagree about which
    compilation is "safer").

    Both passes are semantics-preserving for halting programs: outputs,
    detection events and final global state are unchanged
    (property-tested against the interpreter). *)

val const_fold : Mir.prog -> Mir.prog
(** Evaluate integer operators with constant operands (32-bit machine
    semantics), resolve branches on constant conditions, and drop
    [while 0] loops.  Division by a constant zero is {e not} folded — the
    runtime trap is preserved. *)

val dead_store_elim : Mir.prog -> Mir.prog
(** Backwards liveness analysis per function: assignments to locals that
    are never read afterwards are removed ([x = call f(...)] becomes a
    bare call to keep the effect); statements after a [return] are
    dropped.  Globals and memory stores are never considered dead — they
    are visible to other functions and to campaign output. *)

val optimize : Mir.prog -> Mir.prog
(** [const_fold] then [dead_store_elim], iterated to a fixpoint. *)
