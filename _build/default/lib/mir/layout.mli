(** Data layout: assigns every global a RAM offset, reserves the stack,
    and derives the program's RAM size — the Δm dimension of its fault
    space (memory overhead of hardening passes shows up here, exactly as
    the paper's Figure 2g reports memory usage per variant). *)

type t

val of_prog : Mir.prog -> t

val offset : t -> string -> int
(** RAM byte offset of a global.

    @raise Not_found for unknown globals. *)

val data_bytes : t -> int
(** Bytes occupied by globals (word-aligned). *)

val ram_size : t -> int
(** Total RAM: globals plus the stack reservation; the initial stack
    pointer. *)

val ram_init : t -> (int * bytes) list
(** Initial RAM chunks from global initialisers. *)

val data_symbols : t -> (string * int) list
(** Global name → offset table, for program metadata. *)
