(** Combinators for writing MIR programs in OCaml.

    The kernel and benchmarks are written with these; they keep program
    text close to the pseudo-code in the eCos sources the paper's
    benchmarks come from:

    {[
      let open Builder in
      func "ping" ~locals:[ "round" ]
        [ set "round" (i 0);
          while_ (l "round" <: i 16)
            [ call_ "sem_post" [ i 0 ]; incr "round" ];
          ret_unit ]
    ]} *)

(** {1 Expressions} *)

val i : int -> Mir.expr
(** Integer literal. *)

val i32 : int32 -> Mir.expr
val g : string -> Mir.expr
(** Scalar global. *)

val l : string -> Mir.expr
(** Local / parameter. *)

val elem : string -> Mir.expr -> Mir.expr
(** Word-array element. *)

val byte : string -> Mir.expr -> Mir.expr
(** Byte-array element. *)

val call : string -> Mir.expr list -> Mir.expr
(** Call expression (statement-root positions only). *)

val ( +: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( -: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( *: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( /: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( %: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( &: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( |: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( ^: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( <<: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( >>: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( =: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( <>: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( <: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( >=: ) : Mir.expr -> Mir.expr -> Mir.expr
val ( <=: ) : Mir.expr -> Mir.expr -> Mir.expr
(** [a <=: b] is [b >=: a]. *)

val ( >: ) : Mir.expr -> Mir.expr -> Mir.expr
(** [a >: b] is [b <: a]. *)

val ltu : Mir.expr -> Mir.expr -> Mir.expr
val geu : Mir.expr -> Mir.expr -> Mir.expr

(** {1 Statements} *)

val set : string -> Mir.expr -> Mir.stmt
(** Assign a local. *)

val setg : string -> Mir.expr -> Mir.stmt
(** Assign a scalar global. *)

val set_elem : string -> Mir.expr -> Mir.expr -> Mir.stmt
val set_byte : string -> Mir.expr -> Mir.expr -> Mir.stmt
val incr : string -> Mir.stmt
(** [x = x + 1] on a local. *)

val if_ : Mir.expr -> Mir.stmt list -> Mir.stmt list
(** [if_ c t] returns a single-statement list, convenient for nesting. *)

val if_else : Mir.expr -> Mir.stmt list -> Mir.stmt list -> Mir.stmt list
val while_ : Mir.expr -> Mir.stmt list -> Mir.stmt
val for_ : string -> from:Mir.expr -> below:Mir.expr -> Mir.stmt list -> Mir.stmt list
(** [for_ "i" ~from ~below body]: counted loop over a local. *)

val call_ : string -> Mir.expr list -> Mir.stmt

val out_dec4 : Mir.expr -> Mir.stmt list
(** Inline statements printing the expression as exactly four decimal
    digits (modulo 10⁴ per digit position, so corruption anywhere in the
    word still perturbs the output).  Far cheaper than [__out_dec] —
    used where printing cost would otherwise dominate a benchmark. *)

val ret : Mir.expr -> Mir.stmt
val ret_unit : Mir.stmt
val out : Mir.expr -> Mir.stmt
val out_str : string -> Mir.stmt
val out_dec : string
(** Name of a library function printing a value in decimal; include
    {!stdlib} in the program and call [call_ out_dec [e]]. *)

val detect : int -> Mir.stmt
val panic : int -> Mir.stmt

(** {1 Declarations} *)

val global : ?protected:bool -> ?init:int list -> string -> Mir.global
(** Scalar global. *)

val array : ?protected:bool -> ?init:int list -> string -> int -> Mir.global
(** Word array of given length. *)

val bytes_ : ?init:string -> string -> int -> Mir.global
(** Byte array (never protected). *)

val func :
  ?params:string list ->
  ?locals:string list ->
  ?protects:string list ->
  string ->
  Mir.stmt list ->
  Mir.func

val prog :
  ?stack:int -> name:string -> Mir.global list -> Mir.func list -> Mir.prog
(** Assemble and {e check} a program (default stack: 192 bytes).

    @raise Invalid_argument if {!Check} rejects it. *)

val stdlib : Mir.func list
(** Small runtime library: [__out_dec] (decimal printing). *)
