let protected_globals (p : Mir.prog) =
  List.filter (fun g -> g.Mir.g_protected) p.Mir.p_globals

let panic_code = 0xDEAD

let replica_name g = "__" ^ g ^ "_r"
let replica2_name g = "__" ^ g ^ "_r2"
let sum_name g = "__" ^ g ^ "_s"
let rsum_name g = "__" ^ g ^ "_rs"
let check_name g = "__check_" ^ g
let update_name g = "__update_" ^ g

let words_of (g : Mir.global) =
  match g.Mir.g_ty with
  | Mir.I32 -> 1
  | Mir.Words n -> n
  | Mir.Byte_array _ ->
      invalid_arg "Harden: protected byte arrays are not supported"

(* Word initialisers padded with zeroes to the full length. *)
let full_init (g : Mir.global) =
  let n = words_of g in
  let init = g.Mir.g_init in
  List.init n (fun k ->
      match List.nth_opt init k with Some v -> v | None -> 0l)

let checksum_init g =
  List.fold_left
    (fun acc v -> Int32.add acc v)
    0l (full_init g)

(* Does the function body write global [name] directly?  Functions that
   only read a protected object need no replica update on exit — the
   check-only "get" instrumentation of the paper's GOP library. *)
let writes_global name (f : Mir.func) =
  let rec stmt s =
    match (s : Mir.stmt) with
    | Mir.Set_global (g, _) | Mir.Set_elem (g, _, _) | Mir.Set_byte (g, _, _)
      ->
        g = name
    | Mir.If (_, t, e) -> List.exists stmt t || List.exists stmt e
    | Mir.While (_, body) -> List.exists stmt body
    | Mir.Set_local _ | Mir.Do_call _ | Mir.Return _ | Mir.Out _
    | Mir.Out_str _ | Mir.Detect _ | Mir.Panic _ ->
        false
  in
  List.exists stmt f.Mir.f_body

(* Instrument statements: prefix every [Return] (and the implicit return
   at the end of the body) with the update calls. *)
let rec instrument_stmts updates stmts =
  List.concat_map
    (fun s ->
      match (s : Mir.stmt) with
      | Mir.Return _ -> updates @ [ s ]
      | Mir.If (c, t, e) ->
          [ Mir.If (c, instrument_stmts updates t, instrument_stmts updates e) ]
      | Mir.While (c, body) -> [ Mir.While (c, instrument_stmts updates body) ]
      | Mir.Set_global _ | Mir.Set_elem _ | Mir.Set_byte _ | Mir.Set_local _
      | Mir.Do_call _ | Mir.Out _ | Mir.Out_str _ | Mir.Detect _ | Mir.Panic _
        ->
          [ s ])
    stmts

let instrument_func ~checks ~updates (f : Mir.func) =
  if f.Mir.f_protects = [] then f
  else
    let entry = List.concat_map checks f.Mir.f_protects in
    let written = List.filter (fun g -> writes_global g f) f.Mir.f_protects in
    let exits = List.concat_map updates written in
    let body = entry @ instrument_stmts exits f.Mir.f_body in
    (* Ensure updates also run on fall-through function ends. *)
    let body =
      match List.rev f.Mir.f_body with
      | Mir.Return _ :: _ -> body
      | _ -> body @ exits
    in
    { f with Mir.f_body = body; f_protects = f.Mir.f_protects }

(* ------------------------------------------------------------------ *)
(* SUM+DMR                                                            *)
(* ------------------------------------------------------------------ *)

let sum_dmr_scalar_funcs (gv : Mir.global) =
  let open Builder in
  let name = gv.Mir.g_name in
  let r = replica_name name
  and s = sum_name name
  and rs = rsum_name name in
  [
    func (check_name name)
      (if_else
         (Mir.Global name <>: Mir.Global s)
         (if_else
            (Mir.Global r =: Mir.Global rs)
            [ setg name (Mir.Global r); setg s (Mir.Global rs);
              detect (Int32.to_int Event_codes.corrected) ]
            [ detect (Int32.to_int Event_codes.detected); panic panic_code ])
         []
      @ [ ret_unit ]);
    func (update_name name)
      [ setg r (Mir.Global name); setg s (Mir.Global name);
        setg rs (Mir.Global name); ret_unit ];
  ]

(* A left-deep addition chain over all words of [arr]: evaluates in two
   registers and touches no stack slot — the unrolled checksum code a
   template-based GOP implementation generates. *)
let unrolled_sum arr n =
  let open Builder in
  let rec chain k acc = if k = n then acc else chain (k + 1) (acc +: elem arr (i k)) in
  chain 1 (elem arr (i 0))

let sum_dmr_array_funcs (gv : Mir.global) n =
  let open Builder in
  let name = gv.Mir.g_name in
  let r = replica_name name
  and s = sum_name name
  and rs = rsum_name name in
  let copy ~src ~dst =
    List.init n (fun k -> set_elem dst (i k) (elem src (i k)))
  in
  [
    func (check_name name) ~locals:[ "acc" ]
      ([ set "acc" (unrolled_sum name n) ]
      @ if_else
          (l "acc" <>: Mir.Global s)
          (if_else
             (unrolled_sum r n =: Mir.Global rs)
             (copy ~src:r ~dst:name
             @ [ setg s (Mir.Global rs);
                 detect (Int32.to_int Event_codes.corrected) ])
             [ detect (Int32.to_int Event_codes.detected); panic panic_code ])
          []
      @ [ ret_unit ]);
    func (update_name name)
      (copy ~src:name ~dst:r
      @ [ setg s (unrolled_sum name n);
          setg rs (Mir.Global s);
          ret_unit ]);
  ]

let sum_dmr (p : Mir.prog) =
  let prot = protected_globals p in
  if prot = [] then { p with Mir.p_name = p.Mir.p_name ^ "+sumdmr" }
  else begin
    let extra_globals =
      List.concat_map
        (fun (g : Mir.global) ->
          let init = full_init g in
          let csum = checksum_init g in
          [
            { Mir.g_name = replica_name g.Mir.g_name; g_ty = g.Mir.g_ty;
              g_init = init; g_protected = false };
            { Mir.g_name = sum_name g.Mir.g_name; g_ty = Mir.I32;
              g_init = [ csum ]; g_protected = false };
            { Mir.g_name = rsum_name g.Mir.g_name; g_ty = Mir.I32;
              g_init = [ csum ]; g_protected = false };
          ])
        prot
    in
    let extra_funcs =
      List.concat_map
        (fun (g : Mir.global) ->
          match g.Mir.g_ty with
          | Mir.I32 -> sum_dmr_scalar_funcs g
          | Mir.Words n -> sum_dmr_array_funcs g n
          | Mir.Byte_array _ ->
              invalid_arg "Harden.sum_dmr: protected byte array")
        prot
    in
    let checks gname = [ Mir.Do_call (check_name gname, []) ] in
    let updates gname = [ Mir.Do_call (update_name gname, []) ] in
    let funcs =
      List.map (instrument_func ~checks ~updates) p.Mir.p_funcs @ extra_funcs
    in
    let prog =
      {
        Mir.p_name = p.Mir.p_name ^ "+sumdmr";
        p_globals = p.Mir.p_globals @ extra_globals;
        p_funcs = funcs;
        p_stack_bytes = p.Mir.p_stack_bytes;
      }
    in
    Check.check_exn prog;
    prog
  end

(* ------------------------------------------------------------------ *)
(* TMR                                                                *)
(* ------------------------------------------------------------------ *)

let tmr_funcs (gv : Mir.global) =
  let open Builder in
  let name = gv.Mir.g_name in
  let n = words_of gv in
  let r1 = replica_name name and r2 = replica2_name name in
  (* Uniform word access: scalars are handled via a 1-word loop over the
     same Elem forms only when the global is an array; scalars get direct
     forms. *)
  match gv.Mir.g_ty with
  | Mir.I32 ->
      [
        func (check_name name)
          (if_
             (Mir.Global name <>: Mir.Global r1)
             (if_else
                (Mir.Global r1 =: Mir.Global r2)
                [ setg name (Mir.Global r1);
                  detect (Int32.to_int Event_codes.corrected) ]
                (if_else
                   (Mir.Global name =: Mir.Global r2)
                   [ setg r1 (Mir.Global name);
                     detect (Int32.to_int Event_codes.corrected) ]
                   [ detect (Int32.to_int Event_codes.detected);
                     panic panic_code ]))
          @ if_
              (Mir.Global name <>: Mir.Global r2)
              [ setg r2 (Mir.Global name);
                detect (Int32.to_int Event_codes.corrected) ]
          @ [ ret_unit ]);
        func (update_name name)
          [ setg r1 (Mir.Global name); setg r2 (Mir.Global name); ret_unit ];
      ]
  | Mir.Words _ ->
      [
        func (check_name name) ~locals:[ "k" ]
          (for_ "k" ~from:(i 0) ~below:(i n)
             (if_
                (elem name (l "k") <>: elem r1 (l "k"))
                (if_else
                   (elem r1 (l "k") =: elem r2 (l "k"))
                   [ set_elem name (l "k") (elem r1 (l "k"));
                     detect (Int32.to_int Event_codes.corrected) ]
                   (if_else
                      (elem name (l "k") =: elem r2 (l "k"))
                      [ set_elem r1 (l "k") (elem name (l "k"));
                        detect (Int32.to_int Event_codes.corrected) ]
                      [ detect (Int32.to_int Event_codes.detected);
                        panic panic_code ]))
             @ if_
                 (elem name (l "k") <>: elem r2 (l "k"))
                 [ set_elem r2 (l "k") (elem name (l "k"));
                   detect (Int32.to_int Event_codes.corrected) ])
          @ [ ret_unit ]);
        func (update_name name) ~locals:[ "k" ]
          (for_ "k" ~from:(i 0) ~below:(i n)
             [
               set_elem r1 (l "k") (elem name (l "k"));
               set_elem r2 (l "k") (elem name (l "k"));
             ]
          @ [ ret_unit ]);
      ]
  | Mir.Byte_array _ -> invalid_arg "Harden.tmr: protected byte array"

let tmr (p : Mir.prog) =
  let prot = protected_globals p in
  if prot = [] then { p with Mir.p_name = p.Mir.p_name ^ "+tmr" }
  else begin
    let extra_globals =
      List.concat_map
        (fun (g : Mir.global) ->
          let init = full_init g in
          [
            { Mir.g_name = replica_name g.Mir.g_name; g_ty = g.Mir.g_ty;
              g_init = init; g_protected = false };
            { Mir.g_name = replica2_name g.Mir.g_name; g_ty = g.Mir.g_ty;
              g_init = init; g_protected = false };
          ])
        prot
    in
    let extra_funcs = List.concat_map tmr_funcs prot in
    let checks gname = [ Mir.Do_call (check_name gname, []) ] in
    let updates gname = [ Mir.Do_call (update_name gname, []) ] in
    let funcs =
      List.map (instrument_func ~checks ~updates) p.Mir.p_funcs @ extra_funcs
    in
    let prog =
      {
        Mir.p_name = p.Mir.p_name ^ "+tmr";
        p_globals = p.Mir.p_globals @ extra_globals;
        p_funcs = funcs;
        p_stack_bytes = p.Mir.p_stack_bytes;
      }
    in
    Check.check_exn prog;
    prog
  end
