module SS = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Constant folding                                                   *)
(* ------------------------------------------------------------------ *)

(* 32-bit machine semantics, mirroring Machine.alu_eval. *)
let eval_binop op a b =
  let open Int32 in
  let shift = to_int (logand b 31l) in
  match (op : Mir.binop) with
  | Mir.Add -> Some (add a b)
  | Mir.Sub -> Some (sub a b)
  | Mir.Mul -> Some (mul a b)
  | Mir.Divu -> if equal b 0l then None else Some (unsigned_div a b)
  | Mir.Remu -> if equal b 0l then None else Some (unsigned_rem a b)
  | Mir.And -> Some (logand a b)
  | Mir.Or -> Some (logor a b)
  | Mir.Xor -> Some (logxor a b)
  | Mir.Shl -> Some (shift_left a shift)
  | Mir.Shr -> Some (shift_right_logical a shift)

let eval_cmpop op a b =
  let unsigned_lt a b = Int32.unsigned_compare a b < 0 in
  let holds =
    match (op : Mir.cmpop) with
    | Mir.Eq -> Int32.equal a b
    | Mir.Ne -> not (Int32.equal a b)
    | Mir.Lt -> Int32.compare a b < 0
    | Mir.Ge -> Int32.compare a b >= 0
    | Mir.Ltu -> unsigned_lt a b
    | Mir.Geu -> not (unsigned_lt a b)
  in
  if holds then 1l else 0l

let rec fold_expr (e : Mir.expr) : Mir.expr =
  match e with
  | Mir.Int _ | Mir.Global _ | Mir.Local _ -> e
  | Mir.Elem (g, i) -> Mir.Elem (g, fold_expr i)
  | Mir.Byte (g, i) -> Mir.Byte (g, fold_expr i)
  | Mir.Bin (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (a, b) with
      | Mir.Int va, Mir.Int vb -> (
          match eval_binop op va vb with
          | Some v -> Mir.Int v
          | None -> Mir.Bin (op, a, b))
      | _ -> Mir.Bin (op, a, b))
  | Mir.Cmp (op, a, b) -> (
      let a = fold_expr a and b = fold_expr b in
      match (a, b) with
      | Mir.Int va, Mir.Int vb -> Mir.Int (eval_cmpop op va vb)
      | _ -> Mir.Cmp (op, a, b))
  | Mir.Call (f, args) -> Mir.Call (f, List.map fold_expr args)

let rec fold_stmts stmts = List.concat_map fold_stmt stmts

and fold_stmt (s : Mir.stmt) : Mir.stmt list =
  match s with
  | Mir.Set_global (g, e) -> [ Mir.Set_global (g, fold_expr e) ]
  | Mir.Set_elem (g, i, v) -> [ Mir.Set_elem (g, fold_expr i, fold_expr v) ]
  | Mir.Set_byte (g, i, v) -> [ Mir.Set_byte (g, fold_expr i, fold_expr v) ]
  | Mir.Set_local (x, e) -> [ Mir.Set_local (x, fold_expr e) ]
  | Mir.If (c, t, e) -> (
      match fold_expr c with
      | Mir.Int 0l -> fold_stmts e
      | Mir.Int _ -> fold_stmts t
      | c -> [ Mir.If (c, fold_stmts t, fold_stmts e) ])
  | Mir.While (c, body) -> (
      match fold_expr c with
      | Mir.Int 0l -> []
      | c -> [ Mir.While (c, fold_stmts body) ])
  | Mir.Do_call (f, args) -> [ Mir.Do_call (f, List.map fold_expr args) ]
  | Mir.Return (Some e) -> [ Mir.Return (Some (fold_expr e)) ]
  | Mir.Return None | Mir.Out_str _ | Mir.Detect _ | Mir.Panic _ -> [ s ]
  | Mir.Out e -> [ Mir.Out (fold_expr e) ]

let const_fold (p : Mir.prog) =
  {
    p with
    Mir.p_funcs =
      List.map
        (fun f -> { f with Mir.f_body = fold_stmts f.Mir.f_body })
        p.Mir.p_funcs;
  }

(* ------------------------------------------------------------------ *)
(* Dead-store elimination                                             *)
(* ------------------------------------------------------------------ *)

let rec expr_reads (e : Mir.expr) : SS.t =
  match e with
  | Mir.Int _ | Mir.Global _ -> SS.empty
  | Mir.Local x -> SS.singleton x
  | Mir.Elem (_, i) | Mir.Byte (_, i) -> expr_reads i
  | Mir.Bin (_, a, b) | Mir.Cmp (_, a, b) -> SS.union (expr_reads a) (expr_reads b)
  | Mir.Call (_, args) ->
      List.fold_left (fun acc a -> SS.union acc (expr_reads a)) SS.empty args

(* Backwards pass over a statement list: returns (live-in, rewritten
   statements).  [live] is the live-out set. *)
let rec eliminate_block stmts ~live =
  match stmts with
  | [] -> (live, [])
  | s :: rest ->
      let live_after_s, rest' = eliminate_block rest ~live in
      let live_in, s' = eliminate_stmt s ~live:live_after_s in
      (live_in, s' @ rest')

and eliminate_stmt (s : Mir.stmt) ~live =
  match s with
  | Mir.Set_local (x, e) when not (SS.mem x live) -> (
      (* The stored value is never read: keep only the call effect. *)
      match e with
      | Mir.Call (f, args) ->
          let reads = expr_reads e in
          (SS.union live reads, [ Mir.Do_call (f, args) ])
      | _ -> (live, []))
  | Mir.Set_local (x, e) ->
      (SS.union (SS.remove x live) (expr_reads e), [ s ])
  | Mir.Set_global (_, e) | Mir.Out e ->
      (SS.union live (expr_reads e), [ s ])
  | Mir.Set_elem (_, i, v) | Mir.Set_byte (_, i, v) ->
      (SS.union live (SS.union (expr_reads i) (expr_reads v)), [ s ])
  | Mir.Do_call (_, args) ->
      ( List.fold_left (fun acc a -> SS.union acc (expr_reads a)) live args,
        [ s ] )
  | Mir.Return None -> (SS.empty, [ s ])
  | Mir.Return (Some e) -> (expr_reads e, [ s ])
  | Mir.Out_str _ | Mir.Detect _ | Mir.Panic _ -> (live, [ s ])
  | Mir.If (c, t, e) ->
      let live_t, t' = eliminate_block t ~live in
      let live_e, e' = eliminate_block e ~live in
      ( SS.union (expr_reads c) (SS.union live_t live_e),
        [ Mir.If (c, t', e') ] )
  | Mir.While (c, body) ->
      (* Fixpoint on the loop-carried live set. *)
      let rec converge live_loop =
        let live_body, _ = eliminate_block body ~live:live_loop in
        let next = SS.union live_loop (SS.union (expr_reads c) live_body) in
        if SS.equal next live_loop then live_loop else converge next
      in
      let live_loop = converge (SS.union live (expr_reads c)) in
      let _, body' = eliminate_block body ~live:live_loop in
      (live_loop, [ Mir.While (c, body') ])

(* Drop statements after a Return within one block (unreachable). *)
let rec drop_after_return stmts =
  match stmts with
  | [] -> []
  | (Mir.Return _ as r) :: _ :: _ -> [ r ]
  | Mir.If (c, t, e) :: rest ->
      Mir.If (c, drop_after_return t, drop_after_return e)
      :: drop_after_return rest
  | Mir.While (c, body) :: rest ->
      Mir.While (c, drop_after_return body) :: drop_after_return rest
  | s :: rest -> s :: drop_after_return rest

let dead_store_elim (p : Mir.prog) =
  let clean (f : Mir.func) =
    let body = drop_after_return f.Mir.f_body in
    let _, body = eliminate_block body ~live:SS.empty in
    { f with Mir.f_body = body }
  in
  { p with Mir.p_funcs = List.map clean p.Mir.p_funcs }

let rec optimize (p : Mir.prog) =
  let next = dead_store_elim (const_fold p) in
  if next = p then p else optimize next
