type t = {
  offsets : (string, int) Hashtbl.t;
  data_bytes : int;
  ram_size : int;
  ram_init : (int * bytes) list;
  data_symbols : (string * int) list;
}

let of_prog (p : Mir.prog) =
  let offsets = Hashtbl.create 16 in
  let next = ref 0 in
  let chunks = ref [] in
  let symbols = ref [] in
  List.iter
    (fun (g : Mir.global) ->
      let off = !next in
      Hashtbl.replace offsets g.Mir.g_name off;
      symbols := (g.Mir.g_name, off) :: !symbols;
      next := off + Mir.size_bytes g.Mir.g_ty;
      if g.Mir.g_init <> [] then begin
        let data =
          match g.Mir.g_ty with
          | Mir.Byte_array _ ->
              let b = Bytes.create (List.length g.Mir.g_init) in
              List.iteri
                (fun i v -> Bytes.set b i (Char.chr (Int32.to_int v land 0xFF)))
                g.Mir.g_init;
              b
          | Mir.I32 | Mir.Words _ ->
              let b = Bytes.create (4 * List.length g.Mir.g_init) in
              List.iteri
                (fun i v ->
                  let v = Int32.to_int v land 0xFFFFFFFF in
                  Bytes.set b (4 * i) (Char.chr (v land 0xFF));
                  Bytes.set b ((4 * i) + 1) (Char.chr ((v lsr 8) land 0xFF));
                  Bytes.set b ((4 * i) + 2) (Char.chr ((v lsr 16) land 0xFF));
                  Bytes.set b ((4 * i) + 3) (Char.chr ((v lsr 24) land 0xFF)))
                g.Mir.g_init;
              b
        in
        chunks := (off, data) :: !chunks
      end)
    p.Mir.p_globals;
  let data_bytes = !next in
  let stack = ((p.Mir.p_stack_bytes + 3) / 4) * 4 in
  {
    offsets;
    data_bytes;
    ram_size = data_bytes + stack;
    ram_init = List.rev !chunks;
    data_symbols = List.rev !symbols;
  }

let offset t name =
  match Hashtbl.find_opt t.offsets name with
  | Some off -> off
  | None -> raise Not_found

let data_bytes t = t.data_bytes
let ram_size t = t.ram_size
let ram_init t = t.ram_init
let data_symbols t = t.data_symbols
