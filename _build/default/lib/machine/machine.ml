type trap =
  | Misaligned_access of int
  | Unmapped_access of int
  | Rom_write of int
  | Division_by_zero
  | Bad_pc of int

let pp_trap ppf = function
  | Misaligned_access a -> Format.fprintf ppf "misaligned access at 0x%x" a
  | Unmapped_access a -> Format.fprintf ppf "unmapped access at 0x%x" a
  | Rom_write a -> Format.fprintf ppf "write to ROM at 0x%x" a
  | Division_by_zero -> Format.pp_print_string ppf "division by zero"
  | Bad_pc pc -> Format.fprintf ppf "control transfer to bad pc %d" pc

type stop_reason =
  | Halted
  | Trapped of trap
  | Panicked of int32
  | Cycle_limit

let pp_stop_reason ppf = function
  | Halted -> Format.pp_print_string ppf "halted"
  | Trapped t -> Format.fprintf ppf "trapped: %a" pp_trap t
  | Panicked code -> Format.fprintf ppf "panicked (code %ld)" code
  | Cycle_limit -> Format.pp_print_string ppf "cycle limit exceeded"

type access_kind = Read | Write

type tracer = cycle:int -> addr:int -> width:int -> kind:access_kind -> unit

type exec_tracer = cycle:int -> Isa.instr -> unit

type t = {
  prog : Program.t;
  code : Isa.instr array;
  rom : bytes;
  ram : Bytes.t;
  regs : int array; (* values masked to 32 bits, unsigned representation *)
  mutable pc : int;
  mutable cyc : int;
  serial : Buffer.t;
  mutable events : (int * int32) list; (* reversed *)
  mutable stop : stop_reason option;
  tracer : tracer option;
  exec_tracer : exec_tracer option;
}

let create ?tracer ?exec_tracer prog =
  let regs = Array.make 16 0 in
  List.iter
    (fun (r, v) ->
      let i = Isa.reg_index r in
      if i <> 0 then regs.(i) <- Int32.to_int v land 0xFFFFFFFF)
    prog.Program.reg_init;
  {
    prog;
    code = prog.Program.code;
    rom = prog.Program.rom;
    ram = Program.initial_ram prog;
    regs;
    pc = 0;
    cyc = 0;
    serial = Buffer.create 64;
    events = [];
    stop = None;
    tracer;
    exec_tracer;
  }

let program m = m.prog
let cycle m = m.cyc
let pc m = m.pc
let stopped m = m.stop
let serial_output m = Buffer.contents m.serial
let detection_events m = List.rev m.events

let mask32 = 0xFFFFFFFF
let to_u32 v = v land mask32

(* Signed view of a 32-bit unsigned representation. *)
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let reg m r =
  let i = Isa.reg_index r in
  if i = 0 then 0l else Int32.of_int (signed m.regs.(i))

let set_reg m r v =
  let i = Isa.reg_index r in
  if i <> 0 then m.regs.(i) <- to_u32 (Int32.to_int v land mask32)

let check_ram m off what =
  if off < 0 || off >= Bytes.length m.ram then
    invalid_arg (Printf.sprintf "Machine.%s: offset %d outside RAM" what off)

let read_ram_byte m off =
  check_ram m off "read_ram_byte";
  Char.code (Bytes.get m.ram off)

let write_ram_byte m off v =
  check_ram m off "write_ram_byte";
  Bytes.set m.ram off (Char.chr (v land 0xFF))

let flip_bit m bit =
  let off = bit / 8 in
  check_ram m off "flip_bit";
  let b = Char.code (Bytes.get m.ram off) in
  Bytes.set m.ram off (Char.chr (b lxor (1 lsl (bit mod 8))))

let flip_reg_bit m ~reg ~bit =
  if reg < 1 || reg > 15 then
    invalid_arg "Machine.flip_reg_bit: register outside [1,15]";
  if bit < 0 || bit > 31 then
    invalid_arg "Machine.flip_reg_bit: bit outside [0,31]";
  m.regs.(reg) <- m.regs.(reg) lxor (1 lsl bit)

(* ------------------------------------------------------------------ *)
(* Memory system                                                      *)
(* ------------------------------------------------------------------ *)

exception Stop of stop_reason

let trace m ~addr ~width ~kind =
  match m.tracer with
  | Some f -> f ~cycle:m.cyc ~addr ~width ~kind
  | None -> ()

let rom_byte m off = if off < Bytes.length m.rom then Char.code (Bytes.get m.rom off) else 0

let load_byte m addr =
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      trace m ~addr ~width:1 ~kind:Read;
      (* classify proved the bound *)
      Char.code (Bytes.unsafe_get m.ram addr)
  | Memmap.Rom -> rom_byte m (addr - Memmap.rom_base)
  | Memmap.Mmio -> 0
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

let load_word m addr =
  if addr land 3 <> 0 then raise (Stop (Trapped (Misaligned_access addr)));
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      if addr + 3 >= Bytes.length m.ram then
        raise (Stop (Trapped (Unmapped_access addr)));
      trace m ~addr ~width:4 ~kind:Read;
      let b i = Char.code (Bytes.unsafe_get m.ram (addr + i)) in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  | Memmap.Rom ->
      let off = addr - Memmap.rom_base in
      let b i = rom_byte m (off + i) in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
  | Memmap.Mmio -> 0
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

let mmio_store m addr value =
  if addr = Memmap.serial_port then
    Buffer.add_char m.serial (Char.chr (value land 0xFF))
  else if addr = Memmap.detect_port then
    m.events <- (m.cyc, Int32.of_int (signed value)) :: m.events
  else if addr = Memmap.panic_port then
    raise (Stop (Panicked (Int32.of_int (signed value))))
  else () (* other MMIO slots: ignored *)

let store_byte m addr value =
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      trace m ~addr ~width:1 ~kind:Write;
      Bytes.set m.ram addr (Char.chr (value land 0xFF))
  | Memmap.Rom -> raise (Stop (Trapped (Rom_write addr)))
  | Memmap.Mmio -> mmio_store m addr value
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

let store_word m addr value =
  if addr land 3 <> 0 then raise (Stop (Trapped (Misaligned_access addr)));
  match Memmap.classify ~ram_size:(Bytes.length m.ram) addr with
  | Memmap.Ram ->
      if addr + 3 >= Bytes.length m.ram then
        raise (Stop (Trapped (Unmapped_access addr)));
      trace m ~addr ~width:4 ~kind:Write;
      Bytes.set m.ram addr (Char.chr (value land 0xFF));
      Bytes.set m.ram (addr + 1) (Char.chr ((value lsr 8) land 0xFF));
      Bytes.set m.ram (addr + 2) (Char.chr ((value lsr 16) land 0xFF));
      Bytes.set m.ram (addr + 3) (Char.chr ((value lsr 24) land 0xFF))
  | Memmap.Rom -> raise (Stop (Trapped (Rom_write addr)))
  | Memmap.Mmio -> mmio_store m addr value
  | Memmap.Unmapped -> raise (Stop (Trapped (Unmapped_access addr)))

(* ------------------------------------------------------------------ *)
(* Execution                                                          *)
(* ------------------------------------------------------------------ *)

let alu_eval op a b =
  (* a, b are unsigned 32-bit representations; result likewise. *)
  match (op : Isa.alu_op) with
  | Add -> to_u32 (a + b)
  | Sub -> to_u32 (a - b)
  | Mul -> to_u32 (a * b)
  | Divu ->
      if b = 0 then raise (Stop (Trapped Division_by_zero)) else to_u32 (a / b)
  | Remu ->
      if b = 0 then raise (Stop (Trapped Division_by_zero))
      else to_u32 (a mod b)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> to_u32 (a lsl (b land 31))
  | Shr -> a lsr (b land 31)
  | Sar -> to_u32 (signed a asr (b land 31))
  | Slt -> if signed a < signed b then 1 else 0
  | Sltu -> if a < b then 1 else 0

let cond_eval c a b =
  match (c : Isa.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> signed a < signed b
  | Ge -> signed a >= signed b
  | Ltu -> a < b
  | Geu -> a >= b

let get m i = if i = 0 then 0 else m.regs.(i)
let set m i v = if i <> 0 then m.regs.(i) <- v

let jump_to m target =
  if target < 0 || target >= Array.length m.code then
    raise (Stop (Trapped (Bad_pc target)))
  else m.pc <- target

let imm32 v = to_u32 (Int32.to_int v land mask32)

let execute m instr =
  let ri r = Isa.reg_index r in
  match (instr : Isa.instr) with
  | Nop -> m.pc <- m.pc + 1
  | Halt -> raise (Stop Halted)
  | Li (rd, imm) ->
      set m (ri rd) (imm32 imm);
      m.pc <- m.pc + 1
  | Alu (op, rd, rs1, rs2) ->
      set m (ri rd) (alu_eval op (get m (ri rs1)) (get m (ri rs2)));
      m.pc <- m.pc + 1
  | Alui (op, rd, rs1, imm) ->
      set m (ri rd) (alu_eval op (get m (ri rs1)) (imm32 imm));
      m.pc <- m.pc + 1
  | Lb (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      set m (ri rd) (load_byte m addr);
      m.pc <- m.pc + 1
  | Lw (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      set m (ri rd) (load_word m addr);
      m.pc <- m.pc + 1
  | Sb (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      store_byte m addr (get m (ri rd));
      m.pc <- m.pc + 1
  | Sw (rd, rs, off) ->
      let addr = to_u32 (get m (ri rs) + Int32.to_int off) in
      store_word m addr (get m (ri rd));
      m.pc <- m.pc + 1
  | Beq (rs1, rs2, target, c) ->
      if cond_eval c (get m (ri rs1)) (get m (ri rs2)) then jump_to m target
      else m.pc <- m.pc + 1
  | Jmp target -> jump_to m target
  | Jal (rd, target) ->
      set m (ri rd) (m.pc + 1);
      jump_to m target
  | Jr rs ->
      let target = get m (ri rs) in
      jump_to m target

let step m =
  match m.stop with
  | Some _ -> ()
  | None ->
      if m.pc < 0 || m.pc >= Array.length m.code then
        m.stop <- Some (Trapped (Bad_pc m.pc))
      else begin
        let instr = Array.unsafe_get m.code m.pc in
        m.cyc <- m.cyc + 1;
        (match m.exec_tracer with
        | Some f -> f ~cycle:m.cyc instr
        | None -> ());
        try execute m instr with Stop reason -> m.stop <- Some reason
      end

(* Hot path for [run]: no per-step [m.stop] rebinding beyond the loop. *)
let rec run_steps m limit =
  if m.cyc >= limit then m.stop <- Some Cycle_limit
  else if m.pc < 0 || m.pc >= Array.length m.code then
    m.stop <- Some (Trapped (Bad_pc m.pc))
  else begin
    let instr = Array.unsafe_get m.code m.pc in
    m.cyc <- m.cyc + 1;
    (match m.exec_tracer with
    | Some f -> f ~cycle:m.cyc instr
    | None -> ());
    (try execute m instr with Stop reason -> m.stop <- Some reason);
    if m.stop == None then run_steps m limit
  end

let run m ~limit =
  (match m.stop with None -> run_steps m limit | Some _ -> ());
  match m.stop with
  | Some reason -> reason
  | None -> assert false (* run_steps only returns once stopped *)

let run_until m ~cycle =
  while m.stop = None && m.cyc < cycle do
    step m
  done

module Snapshot = struct
  type machine = t

  type t = {
    s_prog : Program.t;
    s_ram : bytes;
    s_regs : int array;
    s_pc : int;
    s_cyc : int;
    s_serial : string;
    s_events : (int * int32) list;
    s_stop : stop_reason option;
  }

  let capture (m : machine) =
    {
      s_prog = m.prog;
      s_ram = Bytes.copy m.ram;
      s_regs = Array.copy m.regs;
      s_pc = m.pc;
      s_cyc = m.cyc;
      s_serial = Buffer.contents m.serial;
      s_events = m.events;
      s_stop = m.stop;
    }

  let restore s ~tracer : machine =
    let serial = Buffer.create (String.length s.s_serial + 64) in
    Buffer.add_string serial s.s_serial;
    {
      prog = s.s_prog;
      code = s.s_prog.Program.code;
      rom = s.s_prog.Program.rom;
      ram = Bytes.copy s.s_ram;
      regs = Array.copy s.s_regs;
      pc = s.s_pc;
      cyc = s.s_cyc;
      serial;
      events = s.s_events;
      stop = s.s_stop;
      tracer;
      exec_tracer = None;
    }
end
