(** The deterministic machine simulator.

    This is the substrate the paper assumes (Section II-C): a simple RISC
    CPU with classic in-order execution, no caches, a wait-free main
    memory, one cycle per instruction, executing its program from
    fault-immune ROM.  Benchmark runs are fully deterministic: the same
    program and initial state produce the exact same instruction and
    memory-access sequence, and the machine can be paused at an arbitrary
    cycle to inject a fault (flip a RAM bit) and resumed afterwards.

    Cycle numbering: the [t]-th executed instruction (1-indexed) executes
    *at* cycle [t].  A fault at coordinate [(t, bit)] is injected after
    [t−1] instructions have executed, i.e. immediately before instruction
    [t]; see {!Fi_trace.Faultspace} for the geometry. *)

(** CPU traps (abnormal termination causes). *)
type trap =
  | Misaligned_access of int  (** Word access to a non-4-aligned address. *)
  | Unmapped_access of int    (** Access outside RAM, ROM and MMIO. *)
  | Rom_write of int          (** Store into the ROM window. *)
  | Division_by_zero
  | Bad_pc of int             (** Control transfer outside the code. *)

val pp_trap : Format.formatter -> trap -> unit

(** Why a run stopped. *)
type stop_reason =
  | Halted              (** The program executed [halt] — normal exit. *)
  | Trapped of trap     (** CPU exception. *)
  | Panicked of int32   (** Software fail-stop via the panic MMIO port. *)
  | Cycle_limit         (** Watchdog: the cycle budget was exhausted. *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit

type access_kind = Read | Write

type tracer = cycle:int -> addr:int -> width:int -> kind:access_kind -> unit
(** Called once per RAM access (ROM and MMIO accesses are not part of the
    fault space and are not traced).  [addr] is the RAM byte offset of the
    first byte touched; [width] is 1 or 4. *)

type exec_tracer = cycle:int -> Isa.instr -> unit
(** Called once per executed instruction, before it executes.  Used by the
    register fault-space extension (Section VI-B of the paper) to derive
    per-cycle register def/use sets. *)

type t
(** A machine instance. *)

val create : ?tracer:tracer -> ?exec_tracer:exec_tracer -> Program.t -> t
(** [create program] is a machine reset to the program's initial state:
    [pc = 0], registers zero, RAM zeroed then initialised from
    [program.ram_init].  The optional [tracer] observes every RAM access;
    [exec_tracer] observes every executed instruction. *)

val program : t -> Program.t
val cycle : t -> int
(** Number of instructions executed so far. *)

val pc : t -> int
val stopped : t -> stop_reason option
val serial_output : t -> string
(** Bytes written to the serial port so far. *)

val detection_events : t -> (int * int32) list
(** Detection events [(cycle, code)] recorded through the detect port, in
    chronological order.  By convention the kernel writes
    {!Event_codes.corrected} when a fault-tolerance mechanism repaired an error
    and {!Event_codes.detected} when it only detected one. *)

val reg : t -> Isa.reg -> int32
(** Current register value ([r0] always reads 0). *)

val set_reg : t -> Isa.reg -> int32 -> unit
(** Poke a register (used by tests; not by campaigns). *)

val read_ram_byte : t -> int -> int
(** [read_ram_byte m off] inspects RAM without tracing.

    @raise Invalid_argument outside RAM. *)

val write_ram_byte : t -> int -> int -> unit
(** Poke RAM without tracing (used by tests). *)

val flip_bit : t -> int -> unit
(** [flip_bit m bit] flips RAM bit [bit] (byte [bit / 8], bit
    [bit mod 8]) — the fault-injection primitive.  Not traced: a fault is
    not a program memory access.

    @raise Invalid_argument outside RAM. *)

val flip_reg_bit : t -> reg:int -> bit:int -> unit
(** [flip_reg_bit m ~reg ~bit] flips bit [bit] (0–31) of register [reg]
    (1–15) — the injection primitive of the register fault-space
    extension.  Flips of [r0] are rejected: it is hardwired to zero.

    @raise Invalid_argument outside the register file. *)

val step : t -> unit
(** Execute one instruction (no-op if the machine has stopped). *)

val run : t -> limit:int -> stop_reason
(** [run m ~limit] executes until the machine stops or [limit] total
    cycles have been executed; in the latter case the machine is stopped
    with [Cycle_limit].  Idempotent on stopped machines. *)

val run_until : t -> cycle:int -> unit
(** [run_until m ~cycle] executes until [cycle m = cycle] (i.e. exactly
    [cycle] instructions have executed) or the machine stops earlier.
    Used to position the machine just before a fault-injection point. *)

(** Deep-copyable machine state, for checkpoint-based campaign
    acceleration. *)
module Snapshot : sig
  type machine := t
  type t

  val capture : machine -> t
  (** Freeze the complete machine state. *)

  val restore : t -> tracer:tracer option -> machine
  (** Materialise a fresh machine from the snapshot; the new machine is
      independent of both the snapshot and the original. *)
end
