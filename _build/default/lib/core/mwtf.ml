let runs_to_failure ?rate ?ns_per_cycle scan =
  let p = Metrics.failure_probability ?rate ?ns_per_cycle scan in
  if p <= 0.0 then infinity else 1.0 /. p

let relative ?rate ?ns_per_cycle ~baseline ~hardened () =
  runs_to_failure ?rate ?ns_per_cycle hardened
  /. runs_to_failure ?rate ?ns_per_cycle baseline
