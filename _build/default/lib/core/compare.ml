type verdict = Improves | Worsens | Indistinguishable

let pp_verdict ppf = function
  | Improves -> Format.pp_print_string ppf "improves"
  | Worsens -> Format.pp_print_string ppf "worsens"
  | Indistinguishable -> Format.pp_print_string ppf "indistinguishable"

let ratio ~baseline ~hardened =
  let fb = float_of_int (Metrics.failure_count baseline) in
  let fh = float_of_int (Metrics.failure_count hardened) in
  fh /. fb

let ratio_sampled ~baseline ~hardened =
  Metrics.extrapolated_failures hardened
  /. Metrics.extrapolated_failures baseline

let verdict_of_ratio r =
  if Float.is_nan r then Indistinguishable
  else if r < 1.0 then Improves
  else if r > 1.0 then Worsens
  else Indistinguishable

let coverage_comparison ?(policy = Accounting.correct) ~baseline ~hardened () =
  let cb = Metrics.coverage ~policy baseline in
  let ch = Metrics.coverage ~policy hardened in
  if ch > cb then Improves else if ch < cb then Worsens else Indistinguishable

let failure_comparison ~baseline ~hardened =
  verdict_of_ratio (ratio ~baseline ~hardened)
