(** Failure-mass attribution: which data is actually vulnerable?

    Campaign totals say *how much* a program fails; this analysis says
    *where*: the weighted failure mass of every data region (global
    variables, and the stack above them).  It is the tool that explains
    the benchmark shapes in EXPERIMENTS.md — e.g. that hardened sync2's
    failures concentrate in the unprotected result log whose lifetimes
    the hardening overhead stretched. *)

type region = {
  name : string;  (** Data symbol, or ["<stack>"]. *)
  first_byte : int;  (** RAM offset of the region start. *)
  bytes : int;  (** Region extent. *)
  failure_mass : int;  (** Weighted failing bit·cycles inside the region. *)
  byte_equivalents : float;
      (** [failure_mass / (8·Δt)]: how many always-failing bytes the mass
          amounts to — comparable across variants with different
          runtimes. *)
}

val by_region : Scan.t -> Program.t -> region list
(** Regions in decreasing [failure_mass] order.  Region extents come from
    consecutive data symbols; compiled programs and assembled sources
    carry a ["__stack"] sentinel marking where the globals end.  Regions
    with zero failure mass are included (with zeroes) so reports show
    protected data going quiet.  Rendering lives in
    {!Figures.breakdown}. *)
