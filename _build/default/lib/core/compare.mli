(** Benchmark comparison (Section V of the paper).

    The ground truth for "did hardening help?" is the ratio of absolute
    failure probabilities, r = P(Failure)_hardened / P(Failure)_baseline,
    which by Equation 6 reduces to the ratio of (extrapolated) absolute
    failure counts.  [r < 1] means the hardened variant improves on the
    baseline. *)

type verdict = Improves | Worsens | Indistinguishable

val pp_verdict : Format.formatter -> verdict -> unit

val ratio : baseline:Scan.t -> hardened:Scan.t -> float
(** r = F_hardened / F_baseline using weighted full-scan failure counts —
    the paper's Section V summary formula with w = N.  [infinity] when the
    baseline has zero failures but the hardened variant does not; [nan]
    when both are zero. *)

val ratio_sampled :
  baseline:Sampler.estimate -> hardened:Sampler.estimate -> float
(** The sampled form:
    r = (w_h · F_h / N_h) / (w_b · F_b / N_b), i.e. the ratio of
    extrapolated failure counts (avoiding Corollary 2 of Pitfall 3). *)

val verdict_of_ratio : float -> verdict
(** [Improves] below 1, [Worsens] above, [Indistinguishable] at exactly 1
    (or [nan]). *)

val coverage_comparison :
  ?policy:Accounting.t -> baseline:Scan.t -> hardened:Scan.t -> unit -> verdict
(** What the (unsound) fault-coverage metric would conclude: [Improves]
    iff hardened coverage exceeds baseline coverage.  Exposed so reports
    can show coverage-based and failure-count-based verdicts side by side
    — their disagreement on programs like sync2 is the paper's headline
    result. *)

val failure_comparison : baseline:Scan.t -> hardened:Scan.t -> verdict
(** The correct verdict, [verdict_of_ratio (ratio ...)]. *)
