(** Result-accounting policies.

    How raw campaign results are turned into numbers is exactly where the
    paper's pitfalls live, so the policy is an explicit value rather than
    an implicit convention:

    - [weighting]: whether each def/use experiment result is multiplied by
      its equivalence-class size (the data lifetime).  [Unweighted] is
      Pitfall 1; [Weighted] is correct for the uniform fault model.
    - [population]: which coordinates form the denominator of coverage-
      style metrics.  [Full_space] includes the a-priori benign
      coordinates (the paper argues there is no plausible reason to omit
      them); [Conducted_only] restricts to conducted experiments — the
      restriction advocated by Barbosa et al. that Section IV-B shows to
      be gameable (DFT′). *)

type weighting = Weighted | Unweighted
type population = Full_space | Conducted_only

type t = { weighting : weighting; population : population }

val correct : t
(** [{ weighting = Weighted; population = Full_space }] — the only policy
    under which coverage is a faithful estimate of
    P(No Effect | 1 fault) for the uniform fault model. *)

val pitfall1 : t
(** [{ weighting = Unweighted; population = Conducted_only }] — raw
    experiment counting, as criticised in Section III-D. *)

val activated_only : t
(** [{ weighting = Weighted; population = Conducted_only }] — weighted,
    but counting only "activated" faults (Barbosa et al.). *)

val pp : Format.formatter -> t -> unit
