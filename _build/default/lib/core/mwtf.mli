(** Mean Work To Failure (Reis et al. [41]), provided as the related-work
    metric the paper discusses: it captures the performance/reliability
    tradeoff by normalising failures to completed {e work units} rather
    than to time or fault counts.

    We instantiate "one work unit" as one completed benchmark run, so
    MWTF = 1 / P(Failure per run), with P(Failure) from Equation 5 of the
    paper.  Unlike fault coverage, MWTF correctly penalises hardening
    overhead (a longer run accumulates more faults per unit of work) — it
    orders variants the same way as the paper's absolute-failure-count
    metric when the work definition matches the benchmark run. *)

val runs_to_failure :
  ?rate:Fit_rate.t -> ?ns_per_cycle:float -> Scan.t -> float
(** Expected number of benchmark runs until the first failure,
    1 / P(Failure).  [infinity] for failure-free scans. *)

val relative :
  ?rate:Fit_rate.t ->
  ?ns_per_cycle:float ->
  baseline:Scan.t ->
  hardened:Scan.t ->
  unit ->
  float
(** MWTF_hardened / MWTF_baseline: above 1 means hardening pays off per
    unit of work.  Equal to 1/r of {!Compare.ratio} up to the (tiny)
    e^{−gw} correction. *)
