type weighting = Weighted | Unweighted
type population = Full_space | Conducted_only

type t = { weighting : weighting; population : population }

let correct = { weighting = Weighted; population = Full_space }
let pitfall1 = { weighting = Unweighted; population = Conducted_only }
let activated_only = { weighting = Weighted; population = Conducted_only }

let pp ppf { weighting; population } =
  Format.fprintf ppf "%s/%s"
    (match weighting with Weighted -> "weighted" | Unweighted -> "unweighted")
    (match population with
    | Full_space -> "full-space"
    | Conducted_only -> "conducted-only")
