type region = {
  name : string;
  first_byte : int;
  bytes : int;
  failure_mass : int;
  byte_equivalents : float;
}

let regions_of (image : Program.t) =
  let syms =
    (* ROM symbols (rodata labels) are outside the fault space. *)
    List.filter (fun (_, off) -> off < image.Program.ram_size)
      image.Program.data_symbols
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  (* Consecutive symbols bound each region; the __stack sentinel (when
     present) separates globals from the stack. *)
  let rec spans = function
    | (name, off) :: ((_, next) :: _ as rest) -> (name, off, next) :: spans rest
    | [ (name, off) ] -> [ (name, off, image.Program.ram_size) ]
    | [] -> [ ("<all ram>", 0, image.Program.ram_size) ]
  in
  List.map
    (fun (name, lo, hi) ->
      ((if name = "__stack" then "<stack>" else name), lo, hi))
    (spans syms)

let by_region (scan : Scan.t) (image : Program.t) =
  let spans = Array.of_list (regions_of image) in
  let mass = Array.make (Array.length spans) 0 in
  let index_of byte =
    let rec search lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        let _, l, h = spans.(mid) in
        if byte < l then search lo mid
        else if byte >= h then search (mid + 1) hi
        else Some mid
    in
    search 0 (Array.length spans)
  in
  Array.iter
    (fun (e : Scan.experiment) ->
      if Outcome.is_failure e.Scan.outcome then
        match index_of e.Scan.byte with
        | Some k -> mass.(k) <- mass.(k) + Scan.experiment_weight e
        | None -> ())
    scan.Scan.experiments;
  let denom = float_of_int (8 * scan.Scan.cycles) in
  Array.to_list
    (Array.mapi
       (fun k (name, lo, hi) ->
         {
           name;
           first_byte = lo;
           bytes = hi - lo;
           failure_mass = mass.(k);
           byte_equivalents = float_of_int mass.(k) /. denom;
         })
       spans)
  |> List.sort (fun a b -> compare b.failure_mass a.failure_mass)
