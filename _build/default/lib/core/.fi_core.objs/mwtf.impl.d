lib/core/mwtf.ml: Metrics
