lib/core/accounting.ml: Format
