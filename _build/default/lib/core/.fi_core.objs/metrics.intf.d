lib/core/metrics.mli: Accounting Fit_rate Outcome Sampler Scan
