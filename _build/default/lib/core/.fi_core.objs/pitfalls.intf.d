lib/core/pitfalls.mli: Compare Format Sampler Scan
