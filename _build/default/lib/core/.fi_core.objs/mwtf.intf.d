lib/core/mwtf.mli: Fit_rate Scan
