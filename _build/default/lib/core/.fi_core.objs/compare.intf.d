lib/core/compare.mli: Accounting Format Sampler Scan
