lib/core/breakdown.ml: Array List Outcome Program Scan
