lib/core/pitfalls.ml: Accounting Compare Float Format Metrics Sampler Scan
