lib/core/breakdown.mli: Program Scan
