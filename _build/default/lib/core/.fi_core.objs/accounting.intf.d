lib/core/accounting.mli: Format
