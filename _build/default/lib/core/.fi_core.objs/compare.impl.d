lib/core/compare.ml: Accounting Float Format Metrics
