lib/core/metrics.ml: Accounting Array Fit_rate Hashtbl List Option Outcome Sampler Scan
