type error =
  | Immediate_out_of_range of Isa.instr
  | Target_out_of_range of Isa.instr
  | Bad_opcode of int32
  | Bad_field of int32 * string

let pp_error ppf = function
  | Immediate_out_of_range i ->
      Format.fprintf ppf "immediate out of range in: %a" Isa.pp_instr i
  | Target_out_of_range i ->
      Format.fprintf ppf "branch target out of range in: %a" Isa.pp_instr i
  | Bad_opcode w -> Format.fprintf ppf "bad opcode in word 0x%08lx" w
  | Bad_field (w, what) ->
      Format.fprintf ppf "bad %s field in word 0x%08lx" what w

(* Opcodes. *)
let op_nop = 0
let op_halt = 1
let op_li = 2
let op_alu = 3
let op_alui = 4
let op_lb = 5
let op_lw = 6
let op_sb = 7
let op_sw = 8
let op_branch = 9
let op_jmp = 10
let op_jal = 11
let op_jr = 12

let alu_code : Isa.alu_op -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Divu -> 3
  | Remu -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9
  | Sar -> 10
  | Slt -> 11
  | Sltu -> 12

let alu_of_code : int -> Isa.alu_op option = function
  | 0 -> Some Add
  | 1 -> Some Sub
  | 2 -> Some Mul
  | 3 -> Some Divu
  | 4 -> Some Remu
  | 5 -> Some And
  | 6 -> Some Or
  | 7 -> Some Xor
  | 8 -> Some Shl
  | 9 -> Some Shr
  | 10 -> Some Sar
  | 11 -> Some Slt
  | 12 -> Some Sltu
  | _ -> None

let cond_code : Isa.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Ltu -> 4
  | Geu -> 5

let cond_of_code : int -> Isa.cond option = function
  | 0 -> Some Eq
  | 1 -> Some Ne
  | 2 -> Some Lt
  | 3 -> Some Ge
  | 4 -> Some Ltu
  | 5 -> Some Geu
  | _ -> None

let fits_signed ~bits (v : int32) =
  let lo = Int32.neg (Int32.shift_left 1l (bits - 1)) in
  let hi = Int32.sub (Int32.shift_left 1l (bits - 1)) 1l in
  Int32.compare v lo >= 0 && Int32.compare v hi <= 0

let fits_unsigned ~bits v = v >= 0 && v < 1 lsl bits

let encodable (i : Isa.instr) =
  match i with
  | Nop | Halt | Alu _ | Jr _ -> true
  | Li (_, imm) -> fits_signed ~bits:23 imm
  | Alui (_, _, _, imm) -> fits_signed ~bits:15 imm
  | Lb (_, _, off) | Lw (_, _, off) | Sb (_, _, off) | Sw (_, _, off) ->
      fits_signed ~bits:19 off
  | Beq (_, _, t, _) -> fits_unsigned ~bits:16 t
  | Jmp t -> fits_unsigned ~bits:18 t
  | Jal (_, t) -> fits_unsigned ~bits:23 t

(* Field packing helpers working on plain ints (words fit in 62 bits). *)
let mask bits = (1 lsl bits) - 1
let put value ~at ~bits word = word lor ((value land mask bits) lsl at)
let get word ~at ~bits = (word lsr at) land mask bits

let signed_of ~bits raw =
  if raw land (1 lsl (bits - 1)) <> 0 then raw - (1 lsl bits) else raw

let to_word i = Int32.of_int (i land 0xFFFFFFFF)
let of_word w = Int32.to_int w land 0xFFFFFFFF

let encode (i : Isa.instr) =
  if not (encodable i) then
    match i with
    | Beq _ | Jmp _ | Jal _ -> Error (Target_out_of_range i)
    | _ -> Error (Immediate_out_of_range i)
  else
    let op o = o lsl 27 in
    let r (rg : Isa.reg) = Isa.reg_index rg in
    let word =
      match i with
      | Nop -> op op_nop
      | Halt -> op op_halt
      | Li (rd, imm) ->
          op op_li |> put (r rd) ~at:23 ~bits:4
          |> put (Int32.to_int imm) ~at:0 ~bits:23
      | Alu (o, rd, rs1, rs2) ->
          op op_alu |> put (r rd) ~at:23 ~bits:4
          |> put (r rs1) ~at:19 ~bits:4
          |> put (r rs2) ~at:15 ~bits:4
          |> put (alu_code o) ~at:11 ~bits:4
      | Alui (o, rd, rs1, imm) ->
          op op_alui |> put (r rd) ~at:23 ~bits:4
          |> put (r rs1) ~at:19 ~bits:4
          |> put (alu_code o) ~at:15 ~bits:4
          |> put (Int32.to_int imm) ~at:0 ~bits:15
      | Lb (rd, rs, off) ->
          op op_lb |> put (r rd) ~at:23 ~bits:4
          |> put (r rs) ~at:19 ~bits:4
          |> put (Int32.to_int off) ~at:0 ~bits:19
      | Lw (rd, rs, off) ->
          op op_lw |> put (r rd) ~at:23 ~bits:4
          |> put (r rs) ~at:19 ~bits:4
          |> put (Int32.to_int off) ~at:0 ~bits:19
      | Sb (rd, rs, off) ->
          op op_sb |> put (r rd) ~at:23 ~bits:4
          |> put (r rs) ~at:19 ~bits:4
          |> put (Int32.to_int off) ~at:0 ~bits:19
      | Sw (rd, rs, off) ->
          op op_sw |> put (r rd) ~at:23 ~bits:4
          |> put (r rs) ~at:19 ~bits:4
          |> put (Int32.to_int off) ~at:0 ~bits:19
      | Beq (rs1, rs2, t, c) ->
          op op_branch |> put (r rs1) ~at:23 ~bits:4
          |> put (r rs2) ~at:19 ~bits:4
          |> put (cond_code c) ~at:16 ~bits:3
          |> put t ~at:0 ~bits:16
      | Jmp t -> op op_jmp |> put t ~at:0 ~bits:18
      | Jal (rd, t) ->
          op op_jal |> put (r rd) ~at:23 ~bits:4 |> put t ~at:0 ~bits:23
      | Jr rs -> op op_jr |> put (r rs) ~at:23 ~bits:4
    in
    Ok (to_word word)

let decode (w : int32) =
  let word = of_word w in
  let opcode = get word ~at:27 ~bits:5 in
  let rd () = Isa.reg (get word ~at:23 ~bits:4) in
  let rs1 () = Isa.reg (get word ~at:19 ~bits:4) in
  let rs2 () = Isa.reg (get word ~at:15 ~bits:4) in
  let ( let* ) = Result.bind in
  if opcode = op_nop then Ok Isa.Nop
  else if opcode = op_halt then Ok Isa.Halt
  else if opcode = op_li then
    Ok (Isa.Li (rd (), Int32.of_int (signed_of ~bits:23 (get word ~at:0 ~bits:23))))
  else if opcode = op_alu then
    let* o =
      match alu_of_code (get word ~at:11 ~bits:4) with
      | Some o -> Ok o
      | None -> Error (Bad_field (w, "alu subop"))
    in
    Ok (Isa.Alu (o, rd (), rs1 (), rs2 ()))
  else if opcode = op_alui then
    let* o =
      match alu_of_code (get word ~at:15 ~bits:4) with
      | Some o -> Ok o
      | None -> Error (Bad_field (w, "alu subop"))
    in
    Ok (Isa.Alui (o, rd (), rs1 (), Int32.of_int (signed_of ~bits:15 (get word ~at:0 ~bits:15))))
  else if opcode = op_lb || opcode = op_lw || opcode = op_sb || opcode = op_sw
  then
    let off = Int32.of_int (signed_of ~bits:19 (get word ~at:0 ~bits:19)) in
    let rs = rs1 () in
    let rd = rd () in
    if opcode = op_lb then Ok (Isa.Lb (rd, rs, off))
    else if opcode = op_lw then Ok (Isa.Lw (rd, rs, off))
    else if opcode = op_sb then Ok (Isa.Sb (rd, rs, off))
    else Ok (Isa.Sw (rd, rs, off))
  else if opcode = op_branch then
    let* c =
      match cond_of_code (get word ~at:16 ~bits:3) with
      | Some c -> Ok c
      | None -> Error (Bad_field (w, "branch condition"))
    in
    Ok (Isa.Beq (rd (), rs1 (), get word ~at:0 ~bits:16, c))
  else if opcode = op_jmp then Ok (Isa.Jmp (get word ~at:0 ~bits:18))
  else if opcode = op_jal then Ok (Isa.Jal (rd (), get word ~at:0 ~bits:23))
  else if opcode = op_jr then Ok (Isa.Jr (rd ()))
  else Error (Bad_opcode w)

let encode_program instrs =
  let out = Array.make (Array.length instrs) 0l in
  let rec loop i =
    if i = Array.length instrs then Ok out
    else
      match encode instrs.(i) with
      | Ok w ->
          out.(i) <- w;
          loop (i + 1)
      | Error e -> Error e
  in
  loop 0

let decode_program words =
  let out = Array.make (Array.length words) Isa.Nop in
  let rec loop i =
    if i = Array.length words then Ok out
    else
      match decode words.(i) with
      | Ok instr ->
          out.(i) <- instr;
          loop (i + 1)
      | Error e -> Error e
  in
  loop 0
