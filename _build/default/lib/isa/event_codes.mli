(** Detection-event codes written to {!Memmap.detect_port} by software
    fault-tolerance mechanisms.

    These mirror the experiment-outcome bookkeeping of the FAIL* campaigns
    in the paper (Section II-D): a run that stays output-correct {e and}
    reported only [corrected] events is classified as benign
    ("Detected & Corrected", coalesced into "No Effect" by the paper). *)

val corrected : int32
(** 1 — an error was detected and repaired (e.g. SUM+DMR restored a
    protected object from its replica). *)

val detected : int32
(** 2 — an error was detected but not repaired; the mechanism is expected
    to fail-stop immediately after reporting. *)

val pp : Format.formatter -> int32 -> unit
(** Symbolic rendering of a code. *)
