type error = { line : int; message : string }

let pp_error ppf { line; message } =
  Format.fprintf ppf "line %d: %s" line message

exception Fail of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Fail { line; message })) fmt

type section = Text | Data | Rodata

(* ------------------------------------------------------------------ *)
(* Lexing                                                             *)
(* ------------------------------------------------------------------ *)

let strip_comment s =
  (* Remove ;- or #-comments, but not inside string literals. *)
  let buf = Buffer.create (String.length s) in
  let in_string = ref false in
  (try
     String.iter
       (fun c ->
         if c = '"' then begin
           in_string := not !in_string;
           Buffer.add_char buf c
         end
         else if (c = ';' || c = '#') && not !in_string then raise Exit
         else Buffer.add_char buf c)
       s
   with Exit -> ());
  Buffer.contents buf

let split_tokens line_no s =
  (* Split on whitespace and commas; keep "..." strings and off(reg)
     together. *)
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let in_string = ref false in
  String.iter
    (fun c ->
      if !in_string then begin
        Buffer.add_char buf c;
        if c = '"' then in_string := false
      end
      else
        match c with
        | '"' ->
            Buffer.add_char buf c;
            in_string := true
        | ' ' | '\t' | ',' -> flush ()
        | c -> Buffer.add_char buf c)
    s;
  if !in_string then fail line_no "unterminated string literal";
  flush ();
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Operand parsing                                                    *)
(* ------------------------------------------------------------------ *)

let parse_reg line tok =
  match String.lowercase_ascii tok with
  | "sp" -> Isa.sp
  | "fp" -> Isa.fp
  | "ra" -> Isa.ra
  | "zero" -> Isa.r0
  | s when String.length s >= 2 && s.[0] = 'r' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i when i >= 0 && i <= 15 -> Isa.reg i
      | Some _ | None -> fail line "bad register %S" tok)
  | _ -> fail line "expected register, got %S" tok

let parse_imm ~data_labels line tok =
  let literal t =
    if String.length t >= 3 && t.[0] = '\'' && t.[String.length t - 1] = '\''
    then
      if String.length t = 3 then Some (Char.code t.[1])
      else if t = "'\\n'" then Some (Char.code '\n')
      else if t = "'\\t'" then Some (Char.code '\t')
      else if t = "'\\0'" then Some 0
      else if t = "'\\''" then Some (Char.code '\'')
      else None
    else int_of_string_opt t
  in
  match literal tok with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt data_labels tok with
      | Some addr -> addr
      | None -> fail line "bad immediate or unknown data label %S" tok)

let parse_mem ~data_labels line tok =
  (* "off(reg)" or "(reg)" or "label" (absolute, base r0). *)
  match String.index_opt tok '(' with
  | Some open_paren ->
      if tok.[String.length tok - 1] <> ')' then
        fail line "bad memory operand %S" tok;
      let off_str = String.sub tok 0 open_paren in
      let reg_str =
        String.sub tok (open_paren + 1) (String.length tok - open_paren - 2)
      in
      let off =
        if off_str = "" then 0 else parse_imm ~data_labels line off_str
      in
      (parse_reg line reg_str, off)
  | None -> (Isa.r0, parse_imm ~data_labels line tok)

(* ------------------------------------------------------------------ *)
(* Data directives                                                    *)
(* ------------------------------------------------------------------ *)

let parse_string line tok =
  if String.length tok < 2 || tok.[0] <> '"' || tok.[String.length tok - 1] <> '"'
  then fail line "expected string literal, got %S" tok;
  let body = String.sub tok 1 (String.length tok - 2) in
  (* Handle the escapes we need: \n \t \0 \\ *)
  let buf = Buffer.create (String.length body) in
  let i = ref 0 in
  while !i < String.length body do
    (if body.[!i] = '\\' && !i + 1 < String.length body then begin
       (match body.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | '0' -> Buffer.add_char buf '\000'
       | '\\' -> Buffer.add_char buf '\\'
       | c -> fail line "unknown escape '\\%c'" c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf body.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Assembly                                                           *)
(* ------------------------------------------------------------------ *)

type line_item = { no : int; label : option_label; body : string list }
and option_label = string option

let assemble ~name source =
  try
    let raw_lines = String.split_on_char '\n' source in
    (* Phase 0: normalise into (line_no, optional label, tokens). *)
    let items =
      List.mapi
        (fun idx raw ->
          let no = idx + 1 in
          let tokens = split_tokens no (strip_comment raw) in
          match tokens with
          | [] -> { no; label = None; body = [] }
          | first :: rest when String.length first > 1
                               && first.[String.length first - 1] = ':' ->
              let label = String.sub first 0 (String.length first - 1) in
              { no; label = Some label; body = rest }
          | body -> { no; label = None; body })
        raw_lines
    in
    (* Phase 1: lay out .data (RAM) and .rodata (ROM); collect data labels
       as absolute addresses.  Also note declared RAM size. *)
    let data_labels = Hashtbl.create 32 in
    let data_buf = Buffer.create 64 in
    let rodata_buf = Buffer.create 64 in
    let ram_decl = ref None in
    let section = ref Text in
    let align4 buf =
      while Buffer.length buf mod 4 <> 0 do
        Buffer.add_char buf '\000'
      done
    in
    let add_word buf v =
      align4 buf;
      let v = Int32.of_int v in
      Buffer.add_char buf (Char.chr (Int32.to_int (Int32.logand v 0xFFl)));
      Buffer.add_char buf
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl)));
      Buffer.add_char buf
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFl)));
      Buffer.add_char buf
        (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xFFl)))
    in
    let current_data_addr () =
      match !section with
      | Data -> Buffer.length data_buf
      | Rodata -> Memmap.rom_base + Buffer.length rodata_buf
      | Text -> 0
    in
    let data_directive no = function
      | ".word" :: values ->
          let buf = if !section = Data then data_buf else rodata_buf in
          align4 buf;
          List.iter
            (fun v -> add_word buf (parse_imm ~data_labels no v))
            values
      | ".byte" :: values ->
          let buf = if !section = Data then data_buf else rodata_buf in
          List.iter
            (fun v ->
              Buffer.add_char buf
                (Char.chr (parse_imm ~data_labels no v land 0xFF)))
            values
      | [ ".space"; n ] ->
          let buf = if !section = Data then data_buf else rodata_buf in
          let n = parse_imm ~data_labels no n in
          if n < 0 then fail no ".space with negative size";
          Buffer.add_string buf (String.make n '\000')
      | [ ".ascii"; s ] ->
          let buf = if !section = Data then data_buf else rodata_buf in
          Buffer.add_string buf (parse_string no s)
      | [ ".align" ] ->
          align4 (if !section = Data then data_buf else rodata_buf)
      | tok :: _ -> fail no "unknown data directive %S" tok
      | [] -> ()
    in
    List.iter
      (fun { no; label; body } ->
        match body with
        | [ ".ram"; n ] -> ram_decl := Some (parse_imm ~data_labels no n)
        | [ ".data" ] -> section := Data
        | [ ".rodata" ] -> section := Rodata
        | [ ".text" ] -> section := Text
        | body -> (
            match !section with
            | Text -> () (* handled in phase 2 *)
            | Data | Rodata ->
                (match label with
                | Some l ->
                    (* .word alignment happens before the label would point
                       at the padding; align eagerly for word directives. *)
                    (match body with
                    | ".word" :: _ | ".align" :: _ ->
                        align4 (if !section = Data then data_buf else rodata_buf)
                    | _ -> ());
                    if Hashtbl.mem data_labels l then
                      fail no "duplicate data label %S" l;
                    Hashtbl.add data_labels l (current_data_addr ())
                | None -> ());
                data_directive no body))
      items;
    (* Phase 2: parse .text into Asm statements. *)
    let stmts = ref [] in
    let push s = stmts := s :: !stmts in
    let section = ref Text in
    let imm no tok = parse_imm ~data_labels no tok in
    let alu_ops =
      [ ("add", Isa.Add); ("sub", Isa.Sub); ("mul", Isa.Mul);
        ("divu", Isa.Divu); ("remu", Isa.Remu); ("and", Isa.And);
        ("or", Isa.Or); ("xor", Isa.Xor); ("shl", Isa.Shl); ("shr", Isa.Shr);
        ("sar", Isa.Sar); ("slt", Isa.Slt); ("sltu", Isa.Sltu) ]
    in
    let conds =
      [ ("beq", Isa.Eq); ("bne", Isa.Ne); ("blt", Isa.Lt); ("bge", Isa.Ge);
        ("bltu", Isa.Ltu); ("bgeu", Isa.Geu) ]
    in
    let parse_instr no mnemonic operands =
      let m = String.lowercase_ascii mnemonic in
      match (m, operands) with
      | "nop", [] -> push Asm.nop
      | "halt", [] -> push Asm.halt
      | ("li" | "la"), [ rd; v ] ->
          push (Asm.lii (parse_reg no rd) (imm no v))
      | "mov", [ rd; rs ] -> push (Asm.mov (parse_reg no rd) (parse_reg no rs))
      | "lb", [ rd; mem ] ->
          let base, off = parse_mem ~data_labels no mem in
          push (Asm.lb (parse_reg no rd) base off)
      | "lw", [ rd; mem ] ->
          let base, off = parse_mem ~data_labels no mem in
          push (Asm.lw (parse_reg no rd) base off)
      | "sb", [ rd; mem ] ->
          let base, off = parse_mem ~data_labels no mem in
          push (Asm.sb (parse_reg no rd) base off)
      | "sw", [ rd; mem ] ->
          let base, off = parse_mem ~data_labels no mem in
          push (Asm.sw (parse_reg no rd) base off)
      | "jmp", [ l ] -> push (Asm.jump l)
      | "call", [ l ] -> push (Asm.call l)
      | "jal", [ rd; l ] -> push (Asm.Jal_to (parse_reg no rd, l))
      | "jr", [ rs ] -> push (Asm.jr (parse_reg no rs))
      | "ret", [] -> push Asm.ret
      | _ -> (
          match List.assoc_opt m conds with
          | Some c -> (
              match operands with
              | [ rs1; rs2; l ] ->
                  push (Asm.branch c (parse_reg no rs1) (parse_reg no rs2) l)
              | _ -> fail no "branch %s expects: rs1, rs2, label" m)
          | None -> (
              match List.assoc_opt m alu_ops with
              | Some op -> (
                  match operands with
                  | [ rd; rs1; rs2 ] ->
                      push
                        (Asm.alu op (parse_reg no rd) (parse_reg no rs1)
                           (parse_reg no rs2))
                  | _ -> fail no "%s expects: rd, rs1, rs2" m)
              | None -> (
                  (* Immediate ALU forms: "addi" etc. *)
                  let n = String.length m in
                  if n > 1 && m.[n - 1] = 'i' then
                    match List.assoc_opt (String.sub m 0 (n - 1)) alu_ops with
                    | Some op -> (
                        match operands with
                        | [ rd; rs1; v ] ->
                            push
                              (Asm.alui op (parse_reg no rd) (parse_reg no rs1)
                                 (imm no v))
                        | _ -> fail no "%s expects: rd, rs1, imm" m)
                    | None -> fail no "unknown mnemonic %S" mnemonic
                  else fail no "unknown mnemonic %S" mnemonic)))
    in
    List.iter
      (fun { no; label; body } ->
        match body with
        | [ ".ram"; _ ] -> ()
        | [ ".data" ] | [ ".rodata" ] -> section := Data
        | [ ".text" ] -> section := Text
        | body -> (
            match !section with
            | Data | Rodata -> ()
            | Text -> (
                (match label with Some l -> push (Asm.label l) | None -> ());
                match body with
                | [] -> ()
                | mnemonic :: operands -> parse_instr no mnemonic operands)))
      items;
    let code, symbols =
      match Asm.resolve (List.rev !stmts) with
      | Ok result -> result
      | Error e -> fail 0 "%s" (Format.asprintf "%a" Asm.pp_error e)
    in
    if Array.length code = 0 then fail 0 "no .text instructions";
    let data = Buffer.to_bytes data_buf in
    let default_ram =
      let used = Bytes.length data in
      let rounded = ((used + 64 + 3) / 4) * 4 in
      Stdlib.max 64 rounded
    in
    let ram_size =
      match !ram_decl with
      | Some n -> n
      | None -> default_ram
    in
    if Bytes.length data > ram_size then
      fail 0 ".data section (%d bytes) exceeds .ram size (%d bytes)"
        (Bytes.length data) ram_size;
    let ram_init = if Bytes.length data = 0 then [] else [ (0, data) ] in
    let data_symbols =
      Hashtbl.fold (fun l addr acc -> (l, addr) :: acc) data_labels []
      |> List.cons ("__stack", Bytes.length data)
      |> List.sort (fun (_, a) (_, b) -> compare a b)
    in
    Ok
      (Program.make ~name ~code ~rom:(Buffer.to_bytes rodata_buf) ~ram_init
         ~symbols ~data_symbols ~ram_size ())
  with
  | Fail e -> Error e
  | Invalid_argument msg -> Error { line = 0; message = msg }

let assemble_exn ~name source =
  match assemble ~name source with
  | Ok p -> p
  | Error e ->
      invalid_arg (Format.asprintf "Assembler.assemble(%s): %a" name pp_error e)

let disassemble (p : Program.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "; %s\n.ram %d\n" p.name p.ram_size;
  if p.ram_init <> [] then begin
    add ".data\n";
    List.iter
      (fun (off, data) ->
        add "; chunk at offset %d\n" off;
        Bytes.iter (fun c -> add ".byte %d\n" (Char.code c)) data)
      p.ram_init
  end;
  if Bytes.length p.rom > 0 then begin
    add ".rodata\n";
    Bytes.iter (fun c -> add ".byte %d\n" (Char.code c)) p.rom
  end;
  add ".text\n";
  let labels_at = Hashtbl.create 16 in
  List.iter (fun (l, idx) -> Hashtbl.replace labels_at idx l) p.symbols;
  Array.iteri
    (fun idx instr ->
      (match Hashtbl.find_opt labels_at idx with
      | Some l -> add "%s:\n" l
      | None -> ());
      add "    %s\n" (Format.asprintf "%a" Isa.pp_instr instr))
    p.code;
  Buffer.contents buf
