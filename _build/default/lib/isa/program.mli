(** A complete executable image: code, read-only data, initial RAM
    contents, and the RAM size that defines the memory dimension Δm of the
    fault space. *)

type t = {
  name : string;  (** Benchmark identifier used in reports. *)
  code : Isa.instr array;  (** Instruction stream; entry point is index 0. *)
  rom : bytes;  (** Constant data, mapped at {!Memmap.rom_base}; immune to faults. *)
  ram_size : int;  (** Bytes of fault-susceptible RAM; Δm = 8·[ram_size] bits. *)
  ram_init : (int * bytes) list;
      (** Initial RAM contents as (offset, data) chunks, applied at reset.
          Initialised bytes count as defined at cycle 0 for def/use
          analysis. *)
  reg_init : (Isa.reg * int32) list;
      (** Initial register values, applied at reset (all other registers
          are zero).  Used by hand-written fixtures such as the paper's
          "Hi" program; compiled programs leave this empty. *)
  symbols : (string * int) list;
      (** Code labels, for diagnostics and disassembly. *)
  data_symbols : (string * int) list;
      (** Data labels (absolute addresses), for diagnostics. *)
}

val make :
  name:string ->
  code:Isa.instr array ->
  ?rom:bytes ->
  ?ram_init:(int * bytes) list ->
  ?reg_init:(Isa.reg * int32) list ->
  ?symbols:(string * int) list ->
  ?data_symbols:(string * int) list ->
  ram_size:int ->
  unit ->
  t
(** Smart constructor; validates that branch targets are inside the code,
    RAM size is positive, and initial chunks fit in RAM.

    @raise Invalid_argument on malformed images. *)

val code_length : t -> int
(** Number of instructions. *)

val find_symbol : t -> string -> int option
(** Look up a code label. *)

val find_data_symbol : t -> string -> int option
(** Look up a data label (absolute address). *)

val initial_ram : t -> bytes
(** A fresh RAM image of [ram_size] zero bytes with [ram_init] applied. *)

val pp_listing : Format.formatter -> t -> unit
(** Disassembly listing with labels and instruction indices. *)
