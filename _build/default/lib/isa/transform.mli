(** ISA-level program transformations.

    The home of "Dilution Fault Tolerance" (Section IV of the paper): a
    deliberately useless transformation that inflates a benchmark's fault
    space (runtime and/or memory) without changing its behaviour — thereby
    inflating the fault-coverage metric while the absolute failure count
    stays exactly the same.  These exist to demonstrate why fault coverage
    must not be used for program comparison.

    Prepending instructions shifts all absolute branch targets; the
    transforms retarget direct control transfers automatically.  Programs
    whose registers hold {e code} addresses as data (computed jumps beyond
    return addresses produced after the prologue) would not survive
    retargeting — no program in this repository does that, and the MIR
    compiler never emits such code. *)

val prepend : ?suffix:string -> Isa.instr list -> Program.t -> Program.t
(** [prepend prologue p] inserts [prologue] before [p]'s entry point and
    retargets all direct branches.  The prologue must not contain direct
    control transfers.  [suffix] (default ["+prologue"]) is appended to
    the program name.

    @raise Invalid_argument if the prologue contains branches. *)

val dilute_nops : cycles:int -> Program.t -> Program.t
(** DFT: prepend [cycles] NOP instructions, extending the benchmark's
    runtime Δt and thus its fault space, with all added coordinates
    a-priori benign.  Name suffix ["+dft<N>"]. *)

val dilute_loads : cycles:int -> addrs:int list -> Program.t -> Program.t
(** DFT′: prepend [cycles] byte loads into a scratch register (r9),
    cycling over RAM addresses [addrs].  Like {!dilute_nops}, but the
    added fault-space coordinates are {e activated} (the corrupted value
    is loaded and discarded), defeating the "count only activated faults"
    repair of the coverage metric.  Name suffix ["+dft'<N>"].

    @raise Invalid_argument if [addrs] is empty or an address is outside
    RAM. *)

val dilute_memory : bytes:int -> Program.t -> Program.t
(** The space-dimension dilution mentioned in Section IV-C: enlarge RAM by
    [bytes] unused bytes.  Runtime is unchanged; the fault space grows by
    [bytes × 8 × Δt] dormant coordinates.  Name suffix ["+pad<N>"]. *)
