(** Label-based assembly builder.

    Code generators (the MIR compiler, the hand-written kernel stubs, the
    textual assembler) emit a statement list in which control transfers
    name labels; {!resolve} performs the classic two-pass assembly into an
    [Isa.instr array] with absolute instruction indices. *)

type stmt =
  | Label of string  (** Defines a code position; emits no instruction. *)
  | Ins of Isa.instr
      (** A concrete instruction.  Control-flow instructions with already-
          absolute targets are allowed but rarely useful here. *)
  | Branch of Isa.cond * Isa.reg * Isa.reg * string
      (** Conditional branch to a label. *)
  | Jump of string  (** Unconditional jump to a label. *)
  | Call of string  (** [jal ra, label]. *)
  | Jal_to of Isa.reg * string  (** [jal rd, label] with explicit link register. *)
  | Comment of string  (** Ignored by {!resolve}; kept for listings. *)

type error =
  | Duplicate_label of string
  | Undefined_label of string

val pp_error : Format.formatter -> error -> unit

val resolve : stmt list -> (Isa.instr array * (string * int) list, error) result
(** [resolve stmts] assembles the statements, returning the instruction
    array and the label table (label → instruction index). *)

val resolve_exn : stmt list -> Isa.instr array * (string * int) list
(** Like {!resolve}.
    @raise Invalid_argument on assembly errors. *)

(** Convenience constructors, so emitters read like assembly text. *)

val label : string -> stmt
val nop : stmt
val halt : stmt
val li : Isa.reg -> int32 -> stmt
val lii : Isa.reg -> int -> stmt
(** [li] taking an OCaml [int] immediate. *)

val alu : Isa.alu_op -> Isa.reg -> Isa.reg -> Isa.reg -> stmt
val alui : Isa.alu_op -> Isa.reg -> Isa.reg -> int -> stmt
val mov : Isa.reg -> Isa.reg -> stmt
(** [mov rd rs] is [add rd, rs, r0]. *)

val lb : Isa.reg -> Isa.reg -> int -> stmt
val lw : Isa.reg -> Isa.reg -> int -> stmt
val sb : Isa.reg -> Isa.reg -> int -> stmt
val sw : Isa.reg -> Isa.reg -> int -> stmt
val branch : Isa.cond -> Isa.reg -> Isa.reg -> string -> stmt
val jump : string -> stmt
val call : string -> stmt
val ret : stmt
(** [jr ra]. *)

val jr : Isa.reg -> stmt
val comment : string -> stmt
