lib/isa/program.mli: Format Isa
