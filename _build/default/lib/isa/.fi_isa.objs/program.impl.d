lib/isa/program.ml: Array Bytes Format Hashtbl Isa List Option Printf
