lib/isa/encoding.ml: Array Format Int32 Isa Result
