lib/isa/assembler.ml: Array Asm Buffer Bytes Char Format Hashtbl Int32 Isa List Memmap Printf Program Stdlib String
