lib/isa/event_codes.mli: Format
