lib/isa/assembler.mli: Format Program
