lib/isa/event_codes.ml: Format Int32
