lib/isa/transform.ml: Array Int32 Isa List Printf Program
