lib/isa/asm.mli: Format Isa
