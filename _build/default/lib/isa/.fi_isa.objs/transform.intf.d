lib/isa/transform.mli: Isa Program
