lib/isa/asm.ml: Array Format Hashtbl Int32 Isa List Result
