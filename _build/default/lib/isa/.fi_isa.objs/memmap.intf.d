lib/isa/memmap.mli:
