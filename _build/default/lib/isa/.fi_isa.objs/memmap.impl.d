lib/isa/memmap.ml:
