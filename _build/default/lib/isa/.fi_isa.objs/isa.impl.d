lib/isa/isa.ml: Format
