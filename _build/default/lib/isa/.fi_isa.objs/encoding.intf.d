lib/isa/encoding.mli: Format Isa
