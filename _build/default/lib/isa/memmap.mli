(** The machine's physical address map.

    Three regions exist, mirroring the paper's model: fault-susceptible
    RAM (the fault space), fault-immune ROM data (constants; "the CPU
    executes programs from read-only memory", and we extend the same
    immunity to constant data), and memory-mapped I/O devices.  Only RAM
    bits are part of the fault space. *)

val ram_base : int
(** 0x0000_0000.  RAM occupies [\[ram_base, ram_base + ram_size)]. *)

val rom_base : int
(** 0x0010_0000.  Read-only constant data. *)

val rom_limit : int
(** Exclusive upper bound of the ROM data window (1 MiB). *)

val mmio_base : int
(** 0x0030_0000 — low enough that device addresses fit a single [li]. *)

val serial_port : int
(** Byte store here appends one character to the serial output — the
    observable behaviour failure detection compares against the golden
    run. *)

val detect_port : int
(** Word store here records a detection event: a fault-tolerance
    mechanism noticed (and possibly corrected) an error.  The stored
    value is an event code; see {!Event_codes}. *)

val panic_port : int
(** Word store here terminates the run as a detected, unrecoverable
    failure (fail-stop). *)

type region = Ram | Rom | Mmio | Unmapped

val classify : ram_size:int -> int -> region
(** [classify ~ram_size addr] is the region containing byte address
    [addr]. *)
