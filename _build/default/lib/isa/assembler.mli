(** Textual assembler.

    Parses a small but complete assembly language into a {!Program.t}:

    {v
    ; comments start with ';' or '#'
    .ram 256                 ; fault-susceptible RAM size in bytes
    .data                    ; initialised RAM data (part of the fault space)
    counter:  .word 0
    buffer:   .space 16
    greeting: .ascii "Hi"
    .rodata                  ; ROM constants (immune to faults)
    table:    .word 1 2 3 4
    .text
    main:
        li   r1, greeting    ; data labels are usable as immediates
        lb   r2, 0(r1)
        li   r3, 0xF00000    ; serial port
        sb   r2, 0(r3)
        beq  r2, r0, done
        jmp  main
    done:
        halt
    v}

    Mnemonics: [nop halt li la mov] / [add sub mul divu remu and or xor shl
    shr sar slt sltu] (and their [...i] immediate forms) / [lb lw sb sw] /
    [beq bne blt bge bltu bgeu] / [jmp jal jr call ret].
    Registers: [r0]–[r15] with aliases [sp]=r13, [fp]=r14, [ra]=r15.
    Immediates: decimal, [0x] hex, ['c'] character, or a data label. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit
(** Prints as ["line N: message"]. *)

val assemble : name:string -> string -> (Program.t, error) result
(** [assemble ~name source] parses and assembles [source]. *)

val assemble_exn : name:string -> string -> Program.t
(** Like {!assemble}.
    @raise Invalid_argument with a rendered error on failure. *)

val disassemble : Program.t -> string
(** Round-trippable textual listing of a program's code section (data
    sections are emitted as [.word] dumps). *)
