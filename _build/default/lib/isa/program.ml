type t = {
  name : string;
  code : Isa.instr array;
  rom : bytes;
  ram_size : int;
  ram_init : (int * bytes) list;
  reg_init : (Isa.reg * int32) list;
  symbols : (string * int) list;
  data_symbols : (string * int) list;
}

let make ~name ~code ?(rom = Bytes.empty) ?(ram_init = []) ?(reg_init = [])
    ?(symbols = []) ?(data_symbols = []) ~ram_size () =
  if ram_size <= 0 then invalid_arg "Program.make: ram_size must be positive";
  let n = Array.length code in
  if n = 0 then invalid_arg "Program.make: empty code";
  Array.iteri
    (fun idx instr ->
      List.iter
        (fun t ->
          if t < 0 || t >= n then
            invalid_arg
              (Printf.sprintf
                 "Program.make(%s): instruction %d branches to %d, outside \
                  [0,%d)"
                 name idx t n))
        (Isa.branch_targets instr))
    code;
  List.iter
    (fun (off, data) ->
      if off < 0 || off + Bytes.length data > ram_size then
        invalid_arg
          (Printf.sprintf
             "Program.make(%s): ram_init chunk at %d (+%d) outside RAM of %d \
              bytes"
             name off (Bytes.length data) ram_size))
    ram_init;
  { name; code; rom; ram_size; ram_init; reg_init; symbols; data_symbols }

let code_length t = Array.length t.code
let find_symbol t name = List.assoc_opt name t.symbols
let find_data_symbol t name = List.assoc_opt name t.data_symbols

let initial_ram t =
  let ram = Bytes.make t.ram_size '\000' in
  List.iter
    (fun (off, data) -> Bytes.blit data 0 ram off (Bytes.length data))
    t.ram_init;
  ram

let pp_listing ppf t =
  let labels_at = Hashtbl.create 16 in
  List.iter
    (fun (name, idx) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt labels_at idx) in
      Hashtbl.replace labels_at idx (name :: existing))
    t.symbols;
  Format.fprintf ppf "@[<v>; program %s (%d instructions, %d bytes RAM)@,"
    t.name (Array.length t.code) t.ram_size;
  Array.iteri
    (fun idx instr ->
      (match Hashtbl.find_opt labels_at idx with
      | Some names -> List.iter (Format.fprintf ppf "%s:@,") (List.rev names)
      | None -> ());
      Format.fprintf ppf "  %4d  %a@," idx Isa.pp_instr instr)
    t.code;
  Format.fprintf ppf "@]"
