let corrected = 1l
let detected = 2l

let pp ppf code =
  if Int32.equal code corrected then Format.pp_print_string ppf "corrected"
  else if Int32.equal code detected then Format.pp_print_string ppf "detected"
  else Format.fprintf ppf "event(%ld)" code
