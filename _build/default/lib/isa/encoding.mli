(** Binary encoding of instructions into 32-bit words.

    The encoding exists so that programs have a concrete machine
    representation (useful for hashing, storage, and the textual
    assembler's object output) and is exercised by round-trip property
    tests.  Field layout (bit 31 is the MSB):

    {v
    opcode : [31:27]            (5 bits)
    Li     : rd [26:23], imm [22:0]  signed 23-bit
    Alu    : rd [26:23], rs1 [22:19], rs2 [18:15], subop [14:11]
    Alui   : rd [26:23], rs1 [22:19], subop [18:15], imm [14:0] signed
    Ld/St  : rd [26:23], rs  [22:19], off [18:0] signed 19-bit
    Branch : rs1 [26:23], rs2 [22:19], cond [18:16], target [15:0]
    Jmp    : target [17:0]
    Jal    : rd [26:23], target [22:0]
    Jr     : rs [26:23]
    v} *)

type error =
  | Immediate_out_of_range of Isa.instr
  | Target_out_of_range of Isa.instr
  | Bad_opcode of int32
  | Bad_field of int32 * string

val pp_error : Format.formatter -> error -> unit

val encodable : Isa.instr -> bool
(** Whether all immediates and targets fit their fields. *)

val encode : Isa.instr -> (int32, error) result
(** Encode one instruction. *)

val decode : int32 -> (Isa.instr, error) result
(** Decode one word.  [decode (encode i) = Ok i] for every encodable
    [i] (property-tested). *)

val encode_program : Isa.instr array -> (int32 array, error) result
(** Encode a whole instruction stream, failing on the first problem. *)

val decode_program : int32 array -> (Isa.instr array, error) result
(** Inverse of {!encode_program}. *)
