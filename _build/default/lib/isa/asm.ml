type stmt =
  | Label of string
  | Ins of Isa.instr
  | Branch of Isa.cond * Isa.reg * Isa.reg * string
  | Jump of string
  | Call of string
  | Jal_to of Isa.reg * string
  | Comment of string

type error = Duplicate_label of string | Undefined_label of string

let pp_error ppf = function
  | Duplicate_label l -> Format.fprintf ppf "duplicate label %S" l
  | Undefined_label l -> Format.fprintf ppf "undefined label %S" l

let resolve stmts =
  let table = Hashtbl.create 64 in
  (* Pass 1: assign instruction indices to labels. *)
  let rec index_labels pos = function
    | [] -> Ok ()
    | Label name :: rest ->
        if Hashtbl.mem table name then Error (Duplicate_label name)
        else begin
          Hashtbl.add table name pos;
          index_labels pos rest
        end
    | Comment _ :: rest -> index_labels pos rest
    | (Ins _ | Branch _ | Jump _ | Call _ | Jal_to _) :: rest ->
        index_labels (pos + 1) rest
  in
  let ( let* ) = Result.bind in
  let* () = index_labels 0 stmts in
  let lookup name =
    match Hashtbl.find_opt table name with
    | Some idx -> Ok idx
    | None -> Error (Undefined_label name)
  in
  let rec emit acc = function
    | [] -> Ok (List.rev acc)
    | (Label _ | Comment _) :: rest -> emit acc rest
    | Ins i :: rest -> emit (i :: acc) rest
    | Branch (c, rs1, rs2, l) :: rest ->
        let* t = lookup l in
        emit (Isa.Beq (rs1, rs2, t, c) :: acc) rest
    | Jump l :: rest ->
        let* t = lookup l in
        emit (Isa.Jmp t :: acc) rest
    | Call l :: rest ->
        let* t = lookup l in
        emit (Isa.Jal (Isa.ra, t) :: acc) rest
    | Jal_to (rd, l) :: rest ->
        let* t = lookup l in
        emit (Isa.Jal (rd, t) :: acc) rest
  in
  let* instrs = emit [] stmts in
  let symbols =
    Hashtbl.fold (fun name idx acc -> (name, idx) :: acc) table []
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  Ok (Array.of_list instrs, symbols)

let resolve_exn stmts =
  match resolve stmts with
  | Ok result -> result
  | Error e -> invalid_arg (Format.asprintf "Asm.resolve: %a" pp_error e)

let label name = Label name
let nop = Ins Isa.Nop
let halt = Ins Isa.Halt
let li rd imm = Ins (Isa.Li (rd, imm))
let lii rd imm = Ins (Isa.Li (rd, Int32.of_int imm))
let alu op rd rs1 rs2 = Ins (Isa.Alu (op, rd, rs1, rs2))
let alui op rd rs1 imm = Ins (Isa.Alui (op, rd, rs1, Int32.of_int imm))
let mov rd rs = Ins (Isa.Alu (Isa.Add, rd, rs, Isa.r0))
let lb rd rs off = Ins (Isa.Lb (rd, rs, Int32.of_int off))
let lw rd rs off = Ins (Isa.Lw (rd, rs, Int32.of_int off))
let sb rd rs off = Ins (Isa.Sb (rd, rs, Int32.of_int off))
let sw rd rs off = Ins (Isa.Sw (rd, rs, Int32.of_int off))
let branch c rs1 rs2 l = Branch (c, rs1, rs2, l)
let jump l = Jump l
let call l = Call l
let ret = Ins (Isa.Jr Isa.ra)
let jr rs = Ins (Isa.Jr rs)
let comment text = Comment text
