let ram_base = 0x0000_0000
let rom_base = 0x0010_0000
let rom_limit = 0x0020_0000
let mmio_base = 0x0030_0000
let serial_port = mmio_base
let detect_port = mmio_base + 4
let panic_port = mmio_base + 8

type region = Ram | Rom | Mmio | Unmapped

let classify ~ram_size addr =
  if addr >= ram_base && addr < ram_base + ram_size then Ram
  else if addr >= rom_base && addr < rom_limit then Rom
  else if addr >= mmio_base && addr < mmio_base + 16 then Mmio
  else Unmapped
