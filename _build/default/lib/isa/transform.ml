let retarget shift instr =
  match (instr : Isa.instr) with
  | Isa.Beq (rs1, rs2, t, c) -> Isa.Beq (rs1, rs2, t + shift, c)
  | Isa.Jmp t -> Isa.Jmp (t + shift)
  | Isa.Jal (rd, t) -> Isa.Jal (rd, t + shift)
  | ( Isa.Nop | Isa.Halt | Isa.Li _ | Isa.Alu _ | Isa.Alui _ | Isa.Lb _
    | Isa.Lw _ | Isa.Sb _ | Isa.Sw _ | Isa.Jr _ ) as i ->
      i

let prepend ?(suffix = "+prologue") prologue (p : Program.t) =
  List.iter
    (fun i ->
      if Isa.branch_targets i <> [] || (match i with Isa.Jr _ -> true | _ -> false)
      then invalid_arg "Transform.prepend: prologue must be branch-free")
    prologue;
  let shift = List.length prologue in
  let code =
    Array.append (Array.of_list prologue) (Array.map (retarget shift) p.code)
  in
  let symbols = List.map (fun (l, i) -> (l, i + shift)) p.Program.symbols in
  Program.make ~name:(p.Program.name ^ suffix) ~code ~rom:p.Program.rom
    ~ram_init:p.Program.ram_init ~reg_init:p.Program.reg_init ~symbols
    ~data_symbols:p.Program.data_symbols ~ram_size:p.Program.ram_size ()

let dilute_nops ~cycles p =
  if cycles < 0 then invalid_arg "Transform.dilute_nops: negative count";
  prepend
    ~suffix:(Printf.sprintf "+dft%d" cycles)
    (List.init cycles (fun _ -> Isa.Nop))
    p

let dilute_loads ~cycles ~addrs p =
  if cycles < 0 then invalid_arg "Transform.dilute_loads: negative count";
  if addrs = [] then invalid_arg "Transform.dilute_loads: no addresses";
  List.iter
    (fun a ->
      if a < 0 || a >= p.Program.ram_size then
        invalid_arg "Transform.dilute_loads: address outside RAM")
    addrs;
  let addrs = Array.of_list addrs in
  let scratch = Isa.reg 9 in
  let prologue =
    List.init cycles (fun i ->
        Isa.Lb (scratch, Isa.r0, Int32.of_int addrs.(i mod Array.length addrs)))
  in
  prepend ~suffix:(Printf.sprintf "+dft'%d" cycles) prologue p

let dilute_memory ~bytes (p : Program.t) =
  if bytes < 0 then invalid_arg "Transform.dilute_memory: negative size";
  Program.make
    ~name:(Printf.sprintf "%s+pad%d" p.Program.name bytes)
    ~code:p.Program.code ~rom:p.Program.rom ~ram_init:p.Program.ram_init
    ~reg_init:p.Program.reg_init ~symbols:p.Program.symbols
    ~data_symbols:p.Program.data_symbols
    ~ram_size:(p.Program.ram_size + bytes)
    ()
