let render ?(width = 48) ?(unit_label = "") series =
  let label_width =
    List.fold_left (fun m (l, _) -> Stdlib.max m (String.length l)) 0 series
  in
  let peak = List.fold_left (fun m (_, v) -> Float.max m v) 0.0 series in
  let buf = Buffer.create 512 in
  List.iter
    (fun (label, value) ->
      let bar_len =
        if peak <= 0.0 then 0
        else int_of_float (Float.round (float_of_int width *. value /. peak))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%-*s %g%s\n" label_width label width
           (String.make bar_len '#')
           value unit_label))
    series;
  Buffer.contents buf

let print ?width ?unit_label series =
  print_string (render ?width ?unit_label series)
