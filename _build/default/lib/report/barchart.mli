(** Horizontal ASCII bar charts, used to render the Figure-2 panels. *)

val render :
  ?width:int ->
  ?unit_label:string ->
  (string * float) list ->
  string
(** [render series] draws one bar per (label, value); bars are scaled to
    the maximum value into [width] (default 48) characters.  Values are
    printed after each bar with [unit_label] appended. *)

val print : ?width:int -> ?unit_label:string -> (string * float) list -> unit
