(** ASCII rendering of fault spaces — reproduces the visual language of
    the paper's Figures 1 and 3: the grid of (cycle, bit) coordinates with
    read/write events, def/use equivalence classes and, when campaign
    results are supplied, per-coordinate outcomes.

    Only practical for tiny programs (the "Hi" example, the Figure 1
    illustration): one character per fault-space coordinate. *)

val access_map : trace:Trace.t -> defuse:Defuse.t -> string
(** One row per RAM bit (top = bit 0), one column per cycle.  ['W'] marks
    a write to the byte containing the bit, ['R'] a read, ['.'] an
    experiment coordinate (interval ending in a read), [' '] an a-priori
    benign coordinate. *)

val access_map_golden : Golden.t -> string
(** {!access_map} over a golden run's trace. *)

val outcome_map : Golden.t -> Scan.t -> string
(** Same geometry, coloured by results: ['X'] failing coordinate, ['o']
    conducted but benign, [' '] a-priori benign, with R/W event markers
    preserved. *)

val legend : string
(** Explanation of the symbols, for printing below a map. *)
