lib/report/barchart.ml: Buffer Float List Printf Stdlib String
