lib/report/table.ml: Array Buffer List Stdlib String
