lib/report/faultmap.mli: Defuse Golden Scan Trace
