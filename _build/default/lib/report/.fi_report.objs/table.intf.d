lib/report/table.mli:
