lib/report/figures.mli: Golden Program Regspace Scan
