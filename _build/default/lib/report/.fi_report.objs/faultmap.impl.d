lib/report/faultmap.ml: Array Buffer Defuse Faultspace Golden Outcome Printf Scan Trace
