lib/report/barchart.mli:
