type align = Left | Right

type line = Row of string list | Rule

type t = {
  columns : (string * align) list;
  mutable lines : line list; (* reversed *)
}

let create ~columns = { columns; lines = [] }

let row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.row: wrong number of cells";
  t.lines <- Row cells :: t.lines

let rule t = t.lines <- Rule :: t.lines

let render t =
  let headers = List.map fst t.columns in
  let aligns = List.map snd t.columns in
  let rows =
    headers :: List.filter_map (function Row r -> Some r | Rule -> None)
                 (List.rev t.lines)
  in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun cells ->
      List.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        cells)
    rows;
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let buf = Buffer.create 1024 in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  let emit_rule () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  emit_rule ();
  List.iter
    (function Row cells -> emit_row cells | Rule -> emit_rule ())
    (List.rev t.lines);
  Buffer.contents buf

let print t = print_string (render t)
