(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : columns:(string * align) list -> t
(** Header row with per-column alignment. *)

val row : t -> string list -> unit
(** Append a data row; must match the column count.

    @raise Invalid_argument on arity mismatch. *)

val rule : t -> unit
(** Append a horizontal rule. *)

val render : t -> string
(** The formatted table with padded columns. *)

val print : t -> unit
(** [render] to stdout. *)
