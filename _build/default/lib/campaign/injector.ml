type strategy = Restart | Checkpoint

let check_coord golden coord =
  let total_cycles = golden.Golden.cycles in
  let ram_size = golden.Golden.program.Program.ram_size in
  if not (Faultspace.contains ~total_cycles ~ram_size coord) then
    invalid_arg
      (Format.asprintf "Injector: coordinate %a outside fault space"
         Faultspace.pp_coord coord)

let finish golden machine =
  let stop = Machine.run machine ~limit:(Golden.timeout_limit golden) in
  Outcome.classify ~golden_output:golden.Golden.output
    ~golden_event_count:golden.Golden.event_count ~stop
    ~output:(Machine.serial_output machine)
    ~event_count:(List.length (Machine.detection_events machine))

let run_at golden coord =
  check_coord golden coord;
  let machine = Machine.create golden.Golden.program in
  Machine.run_until machine ~cycle:(coord.Faultspace.cycle - 1);
  Machine.flip_bit machine coord.Faultspace.bit;
  finish golden machine

type session = {
  golden : Golden.t;
  pristine : Machine.t;
  mutable at : int; (* cycles executed on the pristine machine *)
}

let session golden =
  { golden; pristine = Machine.create golden.Golden.program; at = 0 }

let session_run_flip s ~cycle ~flip =
  let target = cycle - 1 in
  if target < s.at then
    invalid_arg "Injector.session_run_at: injection cycles must not decrease";
  if target > s.at then begin
    Machine.run_until s.pristine ~cycle:target;
    s.at <- target
  end;
  let snapshot = Machine.Snapshot.capture s.pristine in
  let machine = Machine.Snapshot.restore snapshot ~tracer:None in
  flip machine;
  finish s.golden machine

let session_run_at s coord =
  check_coord s.golden coord;
  session_run_flip s ~cycle:coord.Faultspace.cycle ~flip:(fun machine ->
      Machine.flip_bit machine coord.Faultspace.bit)
