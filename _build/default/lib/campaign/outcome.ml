type t =
  | No_effect
  | Corrected
  | Sdc
  | Output_truncated
  | Detected_fail_stop
  | Trap_memory
  | Trap_cpu
  | Timeout

let all =
  [ No_effect; Corrected; Sdc; Output_truncated; Detected_fail_stop;
    Trap_memory; Trap_cpu; Timeout ]

let to_string = function
  | No_effect -> "no_effect"
  | Corrected -> "corrected"
  | Sdc -> "sdc"
  | Output_truncated -> "output_truncated"
  | Detected_fail_stop -> "detected_fail_stop"
  | Trap_memory -> "trap_memory"
  | Trap_cpu -> "trap_cpu"
  | Timeout -> "timeout"

let of_string = function
  | "no_effect" -> Some No_effect
  | "corrected" -> Some Corrected
  | "sdc" -> Some Sdc
  | "output_truncated" -> Some Output_truncated
  | "detected_fail_stop" -> Some Detected_fail_stop
  | "trap_memory" -> Some Trap_memory
  | "trap_cpu" -> Some Trap_cpu
  | "timeout" -> Some Timeout
  | _ -> None

let pp ppf o = Format.pp_print_string ppf (to_string o)

let is_benign = function
  | No_effect | Corrected -> true
  | Sdc | Output_truncated | Detected_fail_stop | Trap_memory | Trap_cpu
  | Timeout ->
      false

let is_failure o = not (is_benign o)

let is_prefix ~prefix s =
  String.length prefix < String.length s
  && String.equal prefix (String.sub s 0 (String.length prefix))

let classify ~golden_output ~golden_event_count ~stop ~output ~event_count =
  match (stop : Machine.stop_reason) with
  | Machine.Trapped (Misaligned_access _ | Unmapped_access _ | Rom_write _) ->
      Trap_memory
  | Machine.Trapped (Bad_pc _ | Division_by_zero) -> Trap_cpu
  | Machine.Panicked _ -> Detected_fail_stop
  | Machine.Cycle_limit -> Timeout
  | Machine.Halted ->
      if String.equal output golden_output then
        if event_count > golden_event_count then Corrected else No_effect
      else if is_prefix ~prefix:output golden_output then Output_truncated
      else Sdc
