(** The golden (fault-free) reference run.

    Every campaign starts with one traced, fault-free execution that
    defines correct behaviour (serial output), the benchmark's runtime Δt,
    and the memory-access trace from which def/use pruning derives the
    experiment plan. *)

type t = private {
  program : Program.t;
  output : string;  (** Correct serial output. *)
  cycles : int;  (** Δt: the benchmark's runtime in CPU cycles. *)
  event_count : int;  (** Detection events during the fault-free run (normally 0). *)
  trace : Trace.t;  (** Sealed access trace. *)
  defuse : Defuse.t;  (** Fault-space partition. *)
}

exception Golden_failed of Program.t * Machine.stop_reason
(** The fault-free run did not halt normally — the benchmark itself is
    broken (or the [limit] too small). *)

val run : ?limit:int -> Program.t -> t
(** [run program] executes the fault-free run with tracing.  [limit]
    bounds the run (default [50_000_000] cycles).

    @raise Golden_failed if the program does not halt normally. *)

val fault_space_size : t -> int
(** Raw fault-space size [w = Δt × 8·Δm]. *)

val timeout_limit : t -> int
(** Watchdog budget for experiment runs: [2×] the golden runtime plus a
    constant — generous enough for detection/correction detours, short
    enough to catch corrupted loop bounds. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, cycles, RAM, fault-space size, experiments. *)
