(** Single-experiment execution.

    One FI experiment: run the benchmark from reset until just before the
    injection cycle, flip one RAM bit, resume to completion (or watchdog),
    and classify the outcome against the golden run — the procedure of
    Section III-B of the paper.

    Two execution strategies are provided.  [Restart] re-executes from
    reset for every experiment (the textbook procedure).  [Checkpoint]
    keeps a pristine machine advanced monotonically through injection
    times and forks experiment runs from snapshots — observably identical
    (the machine is deterministic; property-tested) but much faster for
    campaigns with many injection points. *)

type strategy = Restart | Checkpoint

val run_at : Golden.t -> Faultspace.coord -> Outcome.t
(** [run_at golden coord] conducts a single experiment at an arbitrary
    fault-space coordinate (Restart strategy).

    @raise Invalid_argument if [coord] lies outside the fault space. *)

type session
(** Checkpointed injection session over monotonically non-decreasing
    injection cycles. *)

val session : Golden.t -> session
(** Fresh session positioned at reset. *)

val session_run_at : session -> Faultspace.coord -> Outcome.t
(** Like {!run_at} but reusing the session's pristine machine.  Injection
    cycles must be presented in non-decreasing order.

    @raise Invalid_argument on a decreasing injection cycle. *)

val session_run_flip :
  session -> cycle:int -> flip:(Machine.t -> unit) -> Outcome.t
(** Generalised injection: advance to [cycle − 1], fork, apply [flip]
    (any state mutation — e.g. a register bit flip for the Section-VI-B
    extension) and classify the resumed run.  Same monotonicity
    requirement as {!session_run_at}.

    @raise Invalid_argument on a decreasing injection cycle. *)
