type t = {
  program : Program.t;
  output : string;
  cycles : int;
  event_count : int;
  trace : Trace.t;
  defuse : Defuse.t;
}

exception Golden_failed of Program.t * Machine.stop_reason

let run ?(limit = 50_000_000) program =
  let trace = Trace.create ~ram_size:program.Program.ram_size in
  let tracer ~cycle ~addr ~width ~kind =
    let kind =
      match (kind : Machine.access_kind) with
      | Machine.Read -> Trace.Read
      | Machine.Write -> Trace.Write
    in
    Trace.add trace ~cycle ~addr ~width ~kind
  in
  let machine = Machine.create ~tracer program in
  match Machine.run machine ~limit with
  | Machine.Halted ->
      let cycles = Machine.cycle machine in
      Trace.seal trace ~total_cycles:cycles;
      {
        program;
        output = Machine.serial_output machine;
        cycles;
        event_count = List.length (Machine.detection_events machine);
        trace;
        defuse = Defuse.analyze trace;
      }
  | (Machine.Trapped _ | Machine.Panicked _ | Machine.Cycle_limit) as reason ->
      raise (Golden_failed (program, reason))

let fault_space_size g = Defuse.fault_space_size g.defuse

let timeout_limit g = (2 * g.cycles) + 2048

let pp_summary ppf g =
  Format.fprintf ppf
    "%s: %d cycles, %d bytes RAM, fault space w = %d bit-cycles, %d pruned \
     experiments (factor %.0f)"
    g.program.Program.name g.cycles g.program.Program.ram_size
    (fault_space_size g)
    (Defuse.experiment_count g.defuse)
    (Defuse.pruning_factor g.defuse)
