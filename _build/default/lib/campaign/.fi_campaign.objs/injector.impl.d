lib/campaign/injector.ml: Faultspace Format Golden List Machine Outcome Program
