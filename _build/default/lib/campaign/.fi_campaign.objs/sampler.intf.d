lib/campaign/sampler.mli: Golden Outcome Prng
