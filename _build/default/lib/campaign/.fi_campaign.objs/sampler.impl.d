lib/campaign/sampler.ml: Array Defuse Faultspace Golden Hashtbl Injector List Option Outcome Prng Program
