lib/campaign/regspace.ml: Array Defuse Format Golden Injector Isa List Machine Program Scan Trace
