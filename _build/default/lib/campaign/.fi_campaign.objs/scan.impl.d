lib/campaign/scan.ml: Array Defuse Faultspace Golden Hashtbl Injector List Option Outcome Program
