lib/campaign/outcome.ml: Format Machine String
