lib/campaign/scan.mli: Faultspace Golden Injector Outcome
