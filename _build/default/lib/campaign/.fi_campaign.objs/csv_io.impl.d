lib/campaign/csv_io.ml: Array Buffer Hashtbl List Outcome Printf Result Scan String
