lib/campaign/golden.mli: Defuse Format Machine Program Trace
