lib/campaign/injector.mli: Faultspace Golden Machine Outcome
