lib/campaign/golden.ml: Defuse Format List Machine Program Trace
