lib/campaign/regspace.mli: Defuse Golden Isa Program Scan
