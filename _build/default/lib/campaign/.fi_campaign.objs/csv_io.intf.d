lib/campaign/csv_io.mli: Scan
