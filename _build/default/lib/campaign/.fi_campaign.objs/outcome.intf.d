lib/campaign/outcome.mli: Format Machine
