let to_string (scan : Scan.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# name,%s\n" scan.Scan.name;
  add "# variant,%s\n" scan.Scan.variant;
  add "# cycles,%d\n" scan.Scan.cycles;
  add "# ram_bytes,%d\n" scan.Scan.ram_bytes;
  add "# benign_weight,%d\n" scan.Scan.benign_weight;
  add "byte,t_start,t_end,bit,outcome\n";
  Array.iter
    (fun (e : Scan.experiment) ->
      add "%d,%d,%d,%d,%s\n" e.Scan.byte e.Scan.t_start e.Scan.t_end
        e.Scan.bit_in_byte
        (Outcome.to_string e.Scan.outcome))
    scan.Scan.experiments;
  Buffer.contents buf

let save path scan =
  let oc = open_out path in
  (try output_string oc (to_string scan)
   with exn ->
     close_out_noerr oc;
     raise exn);
  close_out oc

let of_string text =
  let ( let* ) = Result.bind in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let meta = Hashtbl.create 8 in
  let rows = ref [] in
  let* () =
    List.fold_left
      (fun acc line ->
        let* () = acc in
        if String.length line > 2 && line.[0] = '#' then begin
          match String.split_on_char ',' (String.sub line 2 (String.length line - 2)) with
          | [ key; value ] ->
              Hashtbl.replace meta key value;
              Ok ()
          | _ -> Error (Printf.sprintf "bad header line: %s" line)
        end
        else if String.length line > 4 && String.sub line 0 4 = "byte" then Ok ()
        else begin
          rows := line :: !rows;
          Ok ()
        end)
      (Ok ()) lines
  in
  let lookup key =
    match Hashtbl.find_opt meta key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing header field %S" key)
  in
  let int_field key =
    let* v = lookup key in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "header field %S is not an integer" key)
  in
  let* name = lookup "name" in
  let* variant = lookup "variant" in
  let* cycles = int_field "cycles" in
  let* ram_bytes = int_field "ram_bytes" in
  let* benign_weight = int_field "benign_weight" in
  let parse_row line =
    match String.split_on_char ',' line with
    | [ byte; t_start; t_end; bit; outcome ] -> (
        match
          ( int_of_string_opt byte,
            int_of_string_opt t_start,
            int_of_string_opt t_end,
            int_of_string_opt bit,
            Outcome.of_string outcome )
        with
        | Some byte, Some t_start, Some t_end, Some bit_in_byte, Some outcome
          ->
            Ok { Scan.byte; t_start; t_end; bit_in_byte; outcome }
        | _ -> Error (Printf.sprintf "bad row: %s" line))
    | _ -> Error (Printf.sprintf "bad row: %s" line)
  in
  let* experiments =
    List.fold_left
      (fun acc line ->
        let* items = acc in
        let* row = parse_row line in
        Ok (row :: items))
      (Ok []) !rows
  in
  Ok
    {
      Scan.name;
      variant;
      cycles;
      ram_bytes;
      experiments = Array.of_list experiments;
      benign_weight;
    }

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      of_string text
